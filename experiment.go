package boomsim

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync"
	"time"

	"boomsim/internal/exp"
)

// ExperimentSpec is a declarative, versioned experiment definition: a
// hypothesis, a baseline scheme, candidate schemes (registry names or
// inline SchemeConfig JSON), a workload set, a seed list for replication, an
// optional parameter matrix, and machine-checked success criteria. Specs
// round-trip through JSON byte-identically (the checked-in paper claims
// under testdata/experiments/ are the worked examples; EXPERIMENTS.md is
// the authoring guide).
type ExperimentSpec = exp.Spec

// ExperimentCriterion is one machine-checked success condition of an
// ExperimentSpec: a threshold comparison on a derived metric (speedup,
// coverage, recovery), a headline Result field, or a dotted per-component
// registry statistic — judged on the sample mean ("point") or with
// CI-aware semantics ("ci").
type ExperimentCriterion = exp.Criterion

// ExperimentMatrix is an ExperimentSpec's optional parameter axes (BTB
// entries, LLC latency, footprint, predictor); their cross product
// multiplies the scheme x workload x seed sweep.
type ExperimentMatrix = exp.Matrix

// ExperimentWindow is an ExperimentSpec's measurement-methodology override.
type ExperimentWindow = exp.Window

// ExperimentReport is a finished experiment: aggregated metrics with
// mean/stderr/95% confidence intervals across seeds, one verdict per
// criterion, and the overall PASS/FAIL/INCONCLUSIVE outcome. Reports are
// deterministic plain data — byte-identical across parallelism levels and
// local/distributed execution — except for the single
// Header.GeneratedAt timestamp.
type ExperimentReport = exp.Report

// Experiment verdict values, from best to worst: every criterion's
// interval satisfied the comparison; some interval straddled its threshold
// (or too few seeds ran to estimate variance); some criterion's evidence
// contradicted it.
const (
	VerdictPass         = exp.VerdictPass
	VerdictInconclusive = exp.VerdictInconclusive
	VerdictFail         = exp.VerdictFail
)

// experimentEnv adapts the public registries to the experiment engine's
// validation hooks.
func experimentEnv() exp.Env {
	return exp.Env{
		HasScheme: func(name string) bool {
			_, err := schemeByName(name)
			return err == nil
		},
		HasWorkload: func(name string) bool {
			_, err := workloadByName(name)
			return err == nil
		},
		HasMetric: func(name string) bool {
			return headlineMetricNames()[name]
		},
		SchemeConfigName: func(raw json.RawMessage) (string, error) {
			cfg, err := ParseSchemeConfig(raw)
			if err != nil {
				return "", err
			}
			return cfg.Name, nil
		},
	}
}

// headlineMetricNames is the set of dotless metric names an experiment can
// reference: exactly the scalar fields flattenResult extracts from Result.
// Deriving the set from the same function that builds cell metrics keeps
// validation and evaluation incapable of disagreeing.
var headlineMetricNames = sync.OnceValue(func() map[string]bool {
	set := map[string]bool{}
	for name := range flattenResult(Result{}) {
		set[name] = true
	}
	return set
})

// flattenResult projects one Result onto the experiment engine's flat
// metric map: every headline scalar under its JSON field name, the stall
// class counts under stall_cycles_* names, and the full per-component
// registry under its dotted names.
func flattenResult(r Result) map[string]float64 {
	m := map[string]float64{
		"ipc":                        r.IPC,
		"instructions":               float64(r.Instructions),
		"cycles":                     float64(r.Cycles),
		"fetch_stall_cycles":         float64(r.FetchStallCycles),
		"stall_fraction":             r.StallFraction,
		"stall_cycles_sequential":    float64(r.StallCycles.Sequential),
		"stall_cycles_conditional":   float64(r.StallCycles.Conditional),
		"stall_cycles_unconditional": float64(r.StallCycles.Unconditional),
		"mispredict_squashes_per_ki": r.MispredictSquashesPerKI,
		"btb_miss_squashes_per_ki":   r.BTBMissSquashesPerKI,
		"btb_lookups":                float64(r.BTBLookups),
		"btb_misses":                 float64(r.BTBMisses),
		"btb_miss_rate":              r.BTBMissRate,
		"l1i_misses_per_ki":          r.L1IMissesPerKI,
		"prefetches":                 float64(r.Prefetches),
		"llc_accesses":               float64(r.LLCAccesses),
		"llc_misses":                 float64(r.LLCMisses),
		"predecoded_lines":           float64(r.PredecodedLines),
		"prefetch_meta_bytes":        float64(r.PrefetchMetaBytes),
		"storage_overhead_kb":        r.StorageOverheadKB,
	}
	for name, v := range r.Stats {
		m[name] = v
	}
	return m
}

// ParseExperimentSpec decodes and validates one JSON experiment spec.
// Unknown fields are rejected so typos surface instead of silently
// weakening an experiment; validation failures carry the typed sentinels
// (ErrInvalidSpec, ErrUnknownScheme, ErrUnknownWorkload, ErrUnknownMetric).
func ParseExperimentSpec(data []byte) (ExperimentSpec, error) {
	spec, err := exp.ParseSpec(data)
	if err != nil {
		return ExperimentSpec{}, mapExpError(err)
	}
	if err := spec.Validate(experimentEnv()); err != nil {
		return ExperimentSpec{}, mapExpError(err)
	}
	return spec, nil
}

// LoadExperimentSpec reads and validates a JSON experiment spec file (see
// EXPERIMENTS.md for the authoring guide and testdata/experiments/ for the
// paper's own claims as worked examples).
func LoadExperimentSpec(path string) (ExperimentSpec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return ExperimentSpec{}, fmt.Errorf("reading experiment spec: %w", err)
	}
	spec, err := ParseExperimentSpec(data)
	if err != nil {
		return ExperimentSpec{}, fmt.Errorf("%s: %w", path, err)
	}
	return spec, nil
}

// mapExpError rewraps the experiment engine's typed errors in the public
// sentinels so callers only ever match boomsim errors.
func mapExpError(err error) error {
	for _, m := range []struct{ from, to error }{
		{exp.ErrUnknownScheme, ErrUnknownScheme},
		{exp.ErrUnknownWorkload, ErrUnknownWorkload},
		{exp.ErrUnknownMetric, ErrUnknownMetric},
		{exp.ErrInvalidSpec, ErrInvalidSpec},
	} {
		if errors.Is(err, m.from) {
			return fmt.Errorf("%w%s", m.to, trimPrefix(err.Error(), m.from.Error()))
		}
	}
	return err
}

// trimPrefix drops the engine sentinel's own text from the detail message
// so the public error reads "boomsim: invalid experiment spec: <detail>"
// rather than repeating the internal prefix.
func trimPrefix(msg, prefix string) string {
	if len(msg) >= len(prefix) && msg[:len(prefix)] == prefix {
		return msg[len(prefix):]
	}
	return ": " + msg
}

// ExperimentOption configures RunExperiment.
type ExperimentOption func(*experimentConfig) error

type experimentConfig struct {
	parallelism int
	cluster     *Cluster
	timestamp   *string
}

// WithExperimentParallelism bounds local concurrency (0 or unset =
// GOMAXPROCS, 1 = sequential). Reports are byte-identical for every value.
func WithExperimentParallelism(n int) ExperimentOption {
	return func(c *experimentConfig) error {
		c.parallelism = n
		return nil
	}
}

// WithExperimentCluster fans the experiment's simulation matrix out over a
// pool of boomsimd workers instead of the local worker pool. The report is
// byte-identical to a local run of the same spec — every cell is a pure
// function of its configuration.
func WithExperimentCluster(cl *Cluster) ExperimentOption {
	return func(c *experimentConfig) error {
		if cl == nil {
			return fmt.Errorf("%w: nil experiment cluster", ErrInvalidOption)
		}
		c.cluster = cl
		return nil
	}
}

// WithExperimentTimestamp fixes the report's Header.GeneratedAt — the one
// field of a report that is not a pure function of the spec. The default
// is the current UTC time in RFC 3339; pass "" for a fully deterministic
// report (what the determinism tests and CI byte-identity checks use).
func WithExperimentTimestamp(ts string) ExperimentOption {
	return func(c *experimentConfig) error {
		c.timestamp = &ts
		return nil
	}
}

// RunExperiment executes one declarative experiment end to end: validate
// the spec, expand it to its simulation matrix (schemes x workloads x
// seeds x parameter points, baseline included), run the matrix on the
// local pool or a Cluster, aggregate every metric across seeds into
// mean/stderr/95% CI, judge each criterion, and return the self-contained
// report. Cancellation semantics match RunMatrix (ErrCanceled).
func RunExperiment(ctx context.Context, spec ExperimentSpec, opts ...ExperimentOption) (*ExperimentReport, error) {
	var cfg experimentConfig
	for _, opt := range opts {
		if err := opt(&cfg); err != nil {
			return nil, err
		}
	}
	env := experimentEnv()
	if err := spec.Validate(env); err != nil {
		return nil, mapExpError(err)
	}
	schemeNames, err := spec.SchemeNames(env)
	if err != nil {
		return nil, mapExpError(err)
	}

	// Inline configs, parsed once, addressable by their resolved name.
	inline := map[string]SchemeConfig{}
	for _, raw := range spec.SchemeConfigs {
		c, err := ParseSchemeConfig(raw)
		if err != nil {
			return nil, err
		}
		inline[c.Name] = c
	}

	// Expand the matrix in deterministic order: parameter points outermost,
	// then seeds, workloads, schemes — the grouping the report reads in.
	points := spec.Matrix.Points()
	type coord struct {
		scheme, workload string
		seed             uint64
		point            exp.Point
	}
	var (
		sims   []*Simulation
		coords []coord
	)
	for _, pt := range points {
		for _, seed := range spec.Seeds {
			for _, wl := range spec.Workloads {
				for _, scheme := range schemeNames {
					simOpts := []Option{
						WithScheme(scheme),
						WithWorkload(wl),
						WithSeeds(seed, seed),
					}
					if c, ok := inline[scheme]; ok {
						simOpts = append(simOpts, WithSchemeConfig(c))
					}
					if spec.Window != nil {
						simOpts = append(simOpts, WithWindow(spec.Window.Warm, spec.Window.Measure))
					}
					if pt.BTBEntries > 0 {
						simOpts = append(simOpts, WithBTBEntries(pt.BTBEntries))
					}
					if pt.LLCLatency > 0 {
						simOpts = append(simOpts, WithLLCLatency(pt.LLCLatency))
					}
					if pt.FootprintKB > 0 {
						simOpts = append(simOpts, WithFootprintKB(pt.FootprintKB))
					}
					if pt.Predictor != "" {
						simOpts = append(simOpts, WithPredictor(pt.Predictor))
					}
					s, err := New(simOpts...)
					if err != nil {
						return nil, fmt.Errorf("experiment %s: %s on %s: %w", spec.Name, scheme, wl, err)
					}
					sims = append(sims, s)
					coords = append(coords, coord{scheme, wl, seed, pt})
				}
			}
		}
	}

	var matrixOpts []MatrixOption
	if cfg.cluster != nil {
		matrixOpts = append(matrixOpts, WithCluster(cfg.cluster))
	} else if cfg.parallelism > 0 {
		matrixOpts = append(matrixOpts, WithParallelism(cfg.parallelism))
	}
	results, err := RunMatrix(ctx, sims, matrixOpts...)
	if err != nil {
		return nil, fmt.Errorf("experiment %s: %w", spec.Name, err)
	}

	cells := make([]exp.Cell, len(results))
	for i, r := range results {
		cells[i] = exp.Cell{
			Scheme:   coords[i].scheme,
			Workload: coords[i].workload,
			Seed:     coords[i].seed,
			Point:    coords[i].point,
			Metrics:  flattenResult(r),
		}
	}
	report, err := exp.BuildReport(&spec, schemeNames, cells)
	if err != nil {
		return nil, mapExpError(err)
	}
	if cfg.timestamp != nil {
		report.Header.GeneratedAt = *cfg.timestamp
	} else {
		report.Header.GeneratedAt = time.Now().UTC().Format(time.RFC3339)
	}
	return report, nil
}
