package boomsim

import "errors"

// Sentinel errors returned by the public API. Match them with errors.Is;
// the concrete errors wrap these with the offending name and the available
// alternatives.
var (
	// ErrUnknownScheme is returned by New when WithScheme names a scheme
	// that is not in the registry.
	ErrUnknownScheme = errors.New("boomsim: unknown scheme")

	// ErrUnknownWorkload is returned by New when WithWorkload names a
	// workload that is not in the registry.
	ErrUnknownWorkload = errors.New("boomsim: unknown workload")

	// ErrCanceled is returned by Run, RunCMP and RunMatrix when the context
	// fires before the simulation completes. It wraps the context's own
	// error, so errors.Is(err, context.Canceled) (or DeadlineExceeded)
	// also holds.
	ErrCanceled = errors.New("boomsim: run canceled")

	// ErrInvalidOption is returned by New when an option carries an
	// unusable value (zero measurement window, negative BTB size, unknown
	// predictor name, ...).
	ErrInvalidOption = errors.New("boomsim: invalid option")

	// ErrNoWorkers is returned by NewCluster and distributed runs when the
	// worker pool is empty or every worker is unreachable or has been
	// declared dead mid-sweep.
	ErrNoWorkers = errors.New("boomsim: no live cluster workers")

	// ErrWorkerFailed is returned by distributed runs when a matrix cell
	// exhausted its dispatch attempts across the pool.
	ErrWorkerFailed = errors.New("boomsim: cluster worker failed")

	// ErrCellTimeout is returned by distributed runs when a matrix cell
	// exhausted its retry wall-clock budget (WithCellTimeout): attempts
	// were still available, but the cell had been failing for too long.
	ErrCellTimeout = errors.New("boomsim: cluster cell timed out")

	// ErrJournalMismatch is returned by distributed runs when WithJournal
	// names a journal recorded for a different sweep; resuming it would
	// stitch two matrices together.
	ErrJournalMismatch = errors.New("boomsim: sweep journal belongs to a different matrix")

	// ErrInvalidSpec is returned by ParseExperimentSpec, LoadExperimentSpec
	// and RunExperiment when an experiment spec is structurally unusable:
	// wrong version, empty seed list, duplicate schemes, malformed
	// criteria, unknown fields.
	ErrInvalidSpec = errors.New("boomsim: invalid experiment spec")

	// ErrUnknownMetric is returned when an experiment criterion references
	// a metric that is neither derived (speedup, coverage, recovery), nor
	// a headline Result field, nor present in the judged scheme's
	// per-component statistics registry.
	ErrUnknownMetric = errors.New("boomsim: unknown experiment metric")
)
