package boomsim_test

import (
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"boomsim"
	"boomsim/internal/scheme"
	"boomsim/internal/workload"
)

// fastOpts keeps public-API tests inside CI budgets: a small image, short
// warm and measure windows.
func fastOpts(extra ...boomsim.Option) []boomsim.Option {
	opts := []boomsim.Option{
		boomsim.WithFootprintKB(256),
		boomsim.WithWindow(20_000, 60_000),
	}
	return append(opts, extra...)
}

func TestRegistryLookup(t *testing.T) {
	schemes := boomsim.Schemes()
	if len(schemes) < 15 {
		t.Fatalf("Schemes() lists %d entries, want the full lineup (>= 15)", len(schemes))
	}
	names := map[string]bool{}
	for _, s := range schemes {
		names[s.Name] = true
	}
	for _, want := range []string{"Base", "FDIP", "SHIFT", "Confluence", "Boomerang",
		"PIF", "2-Level BTB", "PhantomBTB", "Boomerang-N0", "Boomerang-Unthrottled"} {
		if !names[want] {
			t.Errorf("scheme %q missing from registry", want)
		}
	}
	for _, name := range boomsim.DefaultSchemes() {
		if !names[name] {
			t.Errorf("DefaultSchemes includes %q which is not registered", name)
		}
	}

	// Count only the built-in entries: other tests may have extended the
	// process-global registry (test order is not guaranteed).
	workloads := boomsim.Workloads()
	builtins := map[string]bool{}
	for _, w := range workloads {
		if !strings.HasPrefix(w.Name, "TestCustom") {
			builtins[w.Name] = true
		}
	}
	if len(builtins) != 7 { // Table II's six + SPEC-like
		t.Fatalf("Workloads() lists %d built-in entries, want 7", len(builtins))
	}
	for _, want := range []string{"Nutch", "Streaming", "Apache", "Zeus", "Oracle", "DB2", "SPEC-like"} {
		if !builtins[want] {
			t.Errorf("workload %q missing from registry", want)
		}
	}
	w, err := boomsim.LookupWorkload("DB2")
	if err != nil {
		t.Fatalf("LookupWorkload(DB2): %v", err)
	}
	if w.FootprintKB == 0 || w.Description == "" {
		t.Errorf("LookupWorkload(DB2) returned incomplete metadata: %+v", w)
	}
	s, err := boomsim.LookupScheme("Boomerang")
	if err != nil {
		t.Fatalf("LookupScheme(Boomerang): %v", err)
	}
	if s.StorageOverheadKB <= 0 || s.StorageOverheadKB > 1 {
		t.Errorf("Boomerang storage overhead = %v KB, want the paper's ~0.53", s.StorageOverheadKB)
	}
}

func TestUnknownNamesAreTypedErrors(t *testing.T) {
	if _, err := boomsim.New(boomsim.WithScheme("no-such-scheme")); !errors.Is(err, boomsim.ErrUnknownScheme) {
		t.Errorf("New(unknown scheme) = %v, want ErrUnknownScheme", err)
	} else if !strings.Contains(err.Error(), "no-such-scheme") {
		t.Errorf("error %q does not name the offending scheme", err)
	}
	if _, err := boomsim.New(boomsim.WithWorkload("no-such-workload")); !errors.Is(err, boomsim.ErrUnknownWorkload) {
		t.Errorf("New(unknown workload) = %v, want ErrUnknownWorkload", err)
	}
	if _, err := boomsim.LookupScheme("nope"); !errors.Is(err, boomsim.ErrUnknownScheme) {
		t.Errorf("LookupScheme(nope) = %v, want ErrUnknownScheme", err)
	}
	if _, err := boomsim.LookupWorkload("nope"); !errors.Is(err, boomsim.ErrUnknownWorkload) {
		t.Errorf("LookupWorkload(nope) = %v, want ErrUnknownWorkload", err)
	}
	if _, err := boomsim.BuildImage("nope", 1); !errors.Is(err, boomsim.ErrUnknownWorkload) {
		t.Errorf("BuildImage(nope) = %v, want ErrUnknownWorkload", err)
	}
}

func TestOptionValidation(t *testing.T) {
	cases := []struct {
		name string
		opt  boomsim.Option
	}{
		{"zero measure window", boomsim.WithWindow(1000, 0)},
		{"negative BTB", boomsim.WithBTBEntries(-4)},
		{"zero BTB", boomsim.WithBTBEntries(0)},
		{"negative LLC latency", boomsim.WithLLCLatency(-1)},
		{"unknown predictor", boomsim.WithPredictor("oracle")},
		{"negative footprint", boomsim.WithFootprintKB(-1)},
		{"negative max cycles", boomsim.WithMaxCycles(-1)},
		{"nil progress", boomsim.WithProgress(10, nil)},
	}
	for _, c := range cases {
		if _, err := boomsim.New(c.opt); !errors.Is(err, boomsim.ErrInvalidOption) {
			t.Errorf("%s: New() = %v, want ErrInvalidOption", c.name, err)
		}
	}
}

func TestOptionApplication(t *testing.T) {
	s, err := boomsim.New(
		boomsim.WithScheme("FDIP"),
		boomsim.WithWorkload("Zeus"),
		boomsim.WithFootprintKB(256),
	)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Scheme().Name; got != "FDIP" {
		t.Errorf("Scheme().Name = %q, want FDIP", got)
	}
	if got := s.Workload(); got.Name != "Zeus" || got.FootprintKB != 256 {
		t.Errorf("Workload() = %+v, want Zeus at 256 KB", got)
	}

	// Defaults: New() with no options is the paper's headline setup.
	d, err := boomsim.New()
	if err != nil {
		t.Fatal(err)
	}
	if d.Scheme().Name != "Boomerang" || d.Workload().Name != "Apache" {
		t.Errorf("defaults = %s on %s, want Boomerang on Apache",
			d.Scheme().Name, d.Workload().Name)
	}
}

func TestRegisterSchemeAndWorkload(t *testing.T) {
	// The registry is process-global and registration is permanent, so under
	// -count=N every pass after the first sees its own earlier entries:
	// treat already-registered as success for the initial registration.
	custom := scheme.Base()
	custom.Name = "TestCustomBase"
	custom.Description = "registered by TestRegisterSchemeAndWorkload"
	if err := boomsim.RegisterScheme(custom); err != nil && !errors.Is(err, boomsim.ErrInvalidOption) {
		t.Fatalf("RegisterScheme: %v", err)
	}
	if err := boomsim.RegisterScheme(custom); !errors.Is(err, boomsim.ErrInvalidOption) {
		t.Errorf("duplicate RegisterScheme = %v, want ErrInvalidOption", err)
	}
	if err := boomsim.RegisterScheme(scheme.Scheme{}); !errors.Is(err, boomsim.ErrInvalidOption) {
		t.Errorf("empty-name RegisterScheme = %v, want ErrInvalidOption", err)
	}

	wl := workload.SPECLike()
	wl.Name = "TestCustomWorkload"
	if err := boomsim.RegisterWorkload(wl); err != nil && !errors.Is(err, boomsim.ErrInvalidOption) {
		t.Fatalf("RegisterWorkload: %v", err)
	}
	if err := boomsim.RegisterWorkload(wl); !errors.Is(err, boomsim.ErrInvalidOption) {
		t.Errorf("duplicate RegisterWorkload = %v, want ErrInvalidOption", err)
	}

	// The registered pair is immediately runnable through the public path.
	s, err := boomsim.New(fastOpts(
		boomsim.WithScheme("TestCustomBase"),
		boomsim.WithWorkload("TestCustomWorkload"),
	)...)
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if r.Scheme != "TestCustomBase" || r.Instructions < 60_000 {
		t.Errorf("custom run = %q with %d instructions, want TestCustomBase with >= 60000",
			r.Scheme, r.Instructions)
	}
}

func TestRunProducesJSONMarshalableResult(t *testing.T) {
	s, err := boomsim.New(fastOpts(boomsim.WithScheme("Boomerang"))...)
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if r.IPC <= 0 || r.Cycles <= 0 {
		t.Fatalf("implausible result: %+v", r)
	}
	raw, err := json.Marshal(r)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back boomsim.Result
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !reflect.DeepEqual(r, back) {
		t.Errorf("result did not round-trip through JSON:\n got %+v\nwant %+v", back, r)
	}
}

func TestProgressCallback(t *testing.T) {
	var calls atomic.Int64
	var last atomic.Uint64
	s, err := boomsim.New(fastOpts(
		boomsim.WithProgress(10_000, func(done, total uint64) {
			calls.Add(1)
			last.Store(done)
			if total != 60_000 {
				t.Errorf("progress total = %d, want 60000", total)
			}
		}),
	)...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got < 5 {
		t.Errorf("progress called %d times for a 60K window at 10K granularity, want >= 5", got)
	}
	if got := last.Load(); got != 60_000 {
		t.Errorf("final progress done = %d, want 60000", got)
	}
}

func TestCancellationReturnsErrCanceledPromptly(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	// Cancel from inside the run at the first progress tick: the next
	// chunk boundary must observe it.
	s, err := boomsim.New(
		boomsim.WithFootprintKB(256),
		boomsim.WithWindow(0, 50_000_000), // far more work than the test budget allows
		boomsim.WithProgress(5_000, func(done, total uint64) { cancel() }),
	)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = s.Run(ctx)
	elapsed := time.Since(start)
	if !errors.Is(err, boomsim.ErrCanceled) {
		t.Fatalf("Run under canceled ctx = %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("ErrCanceled should wrap context.Canceled; got %v", err)
	}
	// 50M instructions would take tens of seconds; prompt cancellation
	// returns in well under one.
	if elapsed > 10*time.Second {
		t.Errorf("cancellation took %v, want prompt return", elapsed)
	}

	// Pre-canceled context: no cycles at all.
	pre, cancel2 := context.WithCancel(context.Background())
	cancel2()
	if _, err := s.Run(pre); !errors.Is(err, boomsim.ErrCanceled) {
		t.Errorf("Run(pre-canceled) = %v, want ErrCanceled", err)
	}
}

func TestRunCMP(t *testing.T) {
	s, err := boomsim.New(fastOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.RunCMP(context.Background(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerCore) != 2 || res.Throughput <= 0 {
		t.Fatalf("RunCMP = %d cores, throughput %v", len(res.PerCore), res.Throughput)
	}
	if res.PerCore[0].Cycles == res.PerCore[1].Cycles &&
		res.PerCore[0].IPC == res.PerCore[1].IPC &&
		res.PerCore[0].FetchStallCycles == res.PerCore[1].FetchStallCycles {
		t.Errorf("both cores identical; distinct walk seeds should diverge")
	}
}

func matrixSims(t *testing.T) []*boomsim.Simulation {
	t.Helper()
	var sims []*boomsim.Simulation
	for _, sc := range []string{"Base", "FDIP", "Boomerang"} {
		for _, wl := range []string{"Apache", "DB2"} {
			s, err := boomsim.New(fastOpts(
				boomsim.WithScheme(sc),
				boomsim.WithWorkload(wl),
			)...)
			if err != nil {
				t.Fatal(err)
			}
			sims = append(sims, s)
		}
	}
	return sims
}

func TestRunMatrixDeterministicAcrossParallelism(t *testing.T) {
	sims := matrixSims(t)
	seq, err := boomsim.RunMatrix(context.Background(), sims, boomsim.WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := boomsim.RunMatrix(context.Background(), sims, boomsim.WithParallelism(8))
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(sims) || len(par) != len(sims) {
		t.Fatalf("result lengths %d/%d, want %d", len(seq), len(par), len(sims))
	}
	for i := range seq {
		if seq[i].Scheme != sims[i].Scheme().Name || seq[i].Workload != sims[i].Workload().Name {
			t.Errorf("results[%d] = %s/%s, out of order (want %s/%s)",
				i, seq[i].Scheme, seq[i].Workload, sims[i].Scheme().Name, sims[i].Workload().Name)
		}
	}
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("parallel results differ from sequential:\n seq %+v\n par %+v", seq, par)
	}
}

func TestRunMatrixCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := boomsim.RunMatrix(ctx, matrixSims(t)); !errors.Is(err, boomsim.ErrCanceled) {
		t.Errorf("RunMatrix(pre-canceled) = %v, want ErrCanceled", err)
	}
}
