package boomsim_test

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"boomsim"
)

// The golden corpus pins the simulator's statistical output — IPC, stall
// coverage, squash anatomy, BTB and hierarchy counters — for every
// registered scheme on a 3-workload subset at fixed seeds and a reduced
// scale. Any refactor that drifts a number the paper's figures are built
// from fails here with a field-level diff instead of silently skewing
// results. Regenerate after an intentional behavior change with:
//
//	go test -run TestGoldenStats -update .
//
// and review the testdata/golden diff like any other code change.
var updateGolden = flag.Bool("update", false, "rewrite testdata/golden from current simulator output")

const goldenDir = "testdata/golden"

// goldenWorkloads is the corpus's workload subset: the paper's headline
// server workload, the largest-footprint commercial one, and the
// SPEC-like contrast profile.
var goldenWorkloads = []string{"Apache", "DB2", "SPEC-like"}

// goldenCell is the reduced-scale methodology every corpus entry runs:
// small enough that the full scheme lineup stays in CI budgets, large
// enough that every counter in Result is exercised.
func goldenCell(scheme, workload string) (*boomsim.Simulation, error) {
	return boomsim.New(
		boomsim.WithScheme(scheme),
		boomsim.WithWorkload(workload),
		boomsim.WithFootprintKB(64),
		boomsim.WithWindow(5_000, 20_000),
		boomsim.WithSeeds(7, 11),
	)
}

// goldenSchemes returns every built-in scheme, skipping entries other tests
// registered into the process-global registry (test order is not fixed).
func goldenSchemes(t *testing.T) []string {
	t.Helper()
	var names []string
	for _, s := range boomsim.Schemes() {
		if strings.HasPrefix(s.Name, "Test") {
			continue
		}
		names = append(names, s.Name)
	}
	if len(names) < 15 {
		t.Fatalf("only %d built-in schemes visible, want the full lineup", len(names))
	}
	return names
}

func goldenFile(scheme, workload string) string {
	sanitize := func(s string) string {
		return strings.Map(func(r rune) rune {
			switch {
			case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-':
				return r
			default:
				return '_'
			}
		}, s)
	}
	return filepath.Join(goldenDir, sanitize(scheme)+"__"+sanitize(workload)+".json")
}

func TestGoldenStats(t *testing.T) {
	schemes := goldenSchemes(t)
	if *updateGolden {
		if err := os.MkdirAll(goldenDir, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	visited := map[string]bool{}
	for _, sc := range schemes {
		for _, wl := range goldenWorkloads {
			sc, wl := sc, wl
			path := goldenFile(sc, wl)
			visited[filepath.Base(path)] = true
			t.Run(fmt.Sprintf("%s on %s", sc, wl), func(t *testing.T) {
				t.Parallel()
				s, err := goldenCell(sc, wl)
				if err != nil {
					t.Fatal(err)
				}
				r, err := s.Run(context.Background())
				if err != nil {
					t.Fatal(err)
				}
				// The headline corpus predates the per-component registry and
				// stays byte-frozen across the config-plane refactor — the
				// proof that schemes-as-data is behavior-preserving. The
				// registry itself is pinned by TestGoldenRegistryStats.
				headline := r
				headline.Stats = nil
				got, err := json.MarshalIndent(headline, "", "  ")
				if err != nil {
					t.Fatal(err)
				}
				got = append(got, '\n')

				if *updateGolden {
					if err := os.WriteFile(path, got, 0o644); err != nil {
						t.Fatal(err)
					}
					return
				}
				want, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("no golden file for this cell (run with -update to create it): %v", err)
				}
				if !bytes.Equal(got, want) {
					t.Errorf("stats drifted from the golden corpus:\n%s\nregenerate with -update if the change is intentional",
						goldenDiff(t, want, got))
				}
			})
		}
	}

	// Every checked-in golden file must correspond to a live cell:
	// leftovers from renamed schemes would otherwise rot unnoticed.
	if !*updateGolden {
		entries, err := os.ReadDir(goldenDir)
		if err != nil {
			t.Fatalf("reading %s (bootstrap with -update): %v", goldenDir, err)
		}
		for _, e := range entries {
			if !visited[e.Name()] {
				t.Errorf("stale golden file %s: no registered scheme/workload produces it", e.Name())
			}
		}
	}
}

// goldenRegistryDir pins the per-component statistics registry for the
// paper's headline schemes on the headline workload: one file per scheme,
// every namespace (frontend, bpu, cache, btb, prefetch, boomerang, ...)
// with every counter. The subset keeps CI cost bounded — the headline
// corpus above already pins the projection for all 18 schemes x 3
// workloads — while any change to what components publish, or to the
// numbers they publish, surfaces here as a named-field diff.
const goldenRegistryDir = "testdata/golden-registry"

func TestGoldenRegistryStats(t *testing.T) {
	if *updateGolden {
		if err := os.MkdirAll(goldenRegistryDir, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	visited := map[string]bool{}
	for _, sc := range boomsim.DefaultSchemes() {
		sc := sc
		path := goldenFile(sc, "Apache")
		path = filepath.Join(goldenRegistryDir, filepath.Base(path))
		visited[filepath.Base(path)] = true
		t.Run(sc, func(t *testing.T) {
			t.Parallel()
			s, err := goldenCell(sc, "Apache")
			if err != nil {
				t.Fatal(err)
			}
			r, err := s.Run(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if len(r.Stats) == 0 {
				t.Fatal("run produced no per-component registry stats")
			}
			got, err := json.MarshalIndent(r.Stats, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, '\n')

			if *updateGolden {
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("no registry golden for this scheme (run with -update to create it): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("per-component stats drifted from the golden corpus:\n%s\nregenerate with -update if the change is intentional",
					goldenDiff(t, want, got))
			}
		})
	}
	if !*updateGolden {
		entries, err := os.ReadDir(goldenRegistryDir)
		if err != nil {
			t.Fatalf("reading %s (bootstrap with -update): %v", goldenRegistryDir, err)
		}
		for _, e := range entries {
			if !visited[e.Name()] {
				t.Errorf("stale registry golden %s: no headline scheme produces it", e.Name())
			}
		}
	}
}

// goldenDiff renders a field-level comparison so a drifted counter is
// named, not buried in two JSON blobs.
func goldenDiff(t *testing.T, want, got []byte) string {
	t.Helper()
	var w, g map[string]any
	if json.Unmarshal(want, &w) != nil || json.Unmarshal(got, &g) != nil {
		return fmt.Sprintf("want:\n%s\ngot:\n%s", want, got)
	}
	var b strings.Builder
	for k, wv := range w {
		if gv, ok := g[k]; !ok || fmt.Sprint(gv) != fmt.Sprint(wv) {
			fmt.Fprintf(&b, "  %s: golden %v, got %v\n", k, wv, gv)
		}
	}
	for k, gv := range g {
		if _, ok := w[k]; !ok {
			fmt.Fprintf(&b, "  %s: new field, got %v\n", k, gv)
		}
	}
	if b.Len() == 0 {
		return fmt.Sprintf("byte-level difference only\nwant:\n%s\ngot:\n%s", want, got)
	}
	return b.String()
}
