// Chaos end-to-end suite: the crash-safety acceptance tests. Each test
// injects faults — worker and coordinator death, transport kills and 5xx
// storms, torn journal records, torn store writes — and asserts the one
// invariant that matters: a recovered sweep produces bytes identical to an
// unfaulted local RunMatrix, recomputing only what was genuinely lost.
//
// Faults come from internal/chaos (seeded, deterministic) or from explicit
// process-level kills (listener close + context cancel), so a failing run
// reproduces from its seed.
package boomsim_test

import (
	"bytes"
	"context"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"boomsim"
	"boomsim/internal/chaos"
	"boomsim/internal/server"
	"boomsim/internal/store"
)

// allWorkloadsMatrix is the full 18-scheme x 7-workload sweep (126 cells) at
// CI scale — the acceptance matrix for the crash-safety tests.
func allWorkloadsMatrix(t *testing.T, imageSeed, walkSeed uint64) []*boomsim.Simulation {
	t.Helper()
	var sims []*boomsim.Simulation
	for _, sch := range boomsim.Schemes() {
		for _, wl := range boomsim.Workloads() {
			s, err := boomsim.New(
				boomsim.WithScheme(sch.Name),
				boomsim.WithWorkload(wl.Name),
				boomsim.WithFootprintKB(64),
				boomsim.WithWindow(500, 2000),
				boomsim.WithSeeds(imageSeed, walkSeed),
			)
			if err != nil {
				t.Fatalf("New(%s, %s): %v", sch.Name, wl.Name, err)
			}
			sims = append(sims, s)
		}
	}
	if len(sims) < 18*7 {
		t.Fatalf("matrix has %d cells, want >= %d", len(sims), 18*7)
	}
	return sims
}

// durableWorker is one boomsimd with a disk-backed result store on a fixed
// address, so a "restarted" worker comes back where the coordinator (and
// rendezvous hashing) expects it — with its store contents intact.
type durableWorker struct {
	t       *testing.T
	dir     string
	addr    string
	srv     *server.Server
	hs      *http.Server
	st      *store.Store
	stopped bool
}

func startDurableWorker(t *testing.T, dir string) *durableWorker {
	t.Helper()
	w := &durableWorker{t: t, dir: dir}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	w.addr = l.Addr().String()
	w.serve(l)
	return w
}

func (w *durableWorker) serve(l net.Listener) {
	w.t.Helper()
	st, err := store.Open(w.dir, store.Options{})
	if err != nil {
		w.t.Fatal(err)
	}
	w.st = st
	w.srv = server.New(server.Config{QueueDepth: 512, Store: st})
	w.hs = &http.Server{Handler: w.srv.Handler()}
	w.stopped = false
	go w.hs.Serve(l)
	w.t.Cleanup(w.stop)
}

// stop kills the worker process as far as the coordinator can tell: the
// listener refuses new connections and live ones are severed.
func (w *durableWorker) stop() {
	if w.stopped {
		return
	}
	w.stopped = true
	w.hs.Close()
	w.srv.Close()
}

// restart brings the worker back on its original address with a fresh
// in-memory cache but the same store directory.
func (w *durableWorker) restart() {
	w.t.Helper()
	var l net.Listener
	var err error
	for i := 0; i < 50; i++ {
		if l, err = net.Listen("tcp", w.addr); err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		w.t.Fatalf("rebinding %s: %v", w.addr, err)
	}
	w.serve(l)
}

func (w *durableWorker) url() string { return "http://" + w.addr }

// journalRecords counts the completed-cell records in a journal file (lines
// minus the header).
func journalRecords(t *testing.T, path string) int {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, line := range strings.Split(string(raw), "\n") {
		if strings.TrimSpace(line) != "" {
			n++
		}
	}
	if n == 0 {
		t.Fatal("journal has no header")
	}
	return n - 1
}

// TestCrashSafeSweepSurvivesWorkerAndCoordinatorDeath is the acceptance
// test: mid-way through the full 18x7 sweep a worker dies AND the
// coordinator is killed. Both restart — the worker on its original address
// with its durable store, the coordinator against the same journal — and
// the resumed sweep must complete byte-identical to an unfaulted local
// RunMatrix, recomputing exactly the cells the journal never recorded.
func TestCrashSafeSweepSurvivesWorkerAndCoordinatorDeath(t *testing.T) {
	sims := allWorkloadsMatrix(t, 23, 29)
	ctx := context.Background()

	local, err := boomsim.RunMatrix(ctx, sims)
	if err != nil {
		t.Fatalf("local RunMatrix: %v", err)
	}

	workers := make([]*durableWorker, 3)
	for i := range workers {
		workers[i] = startDurableWorker(t, filepath.Join(t.TempDir(), "store"))
	}
	eps := []string{workers[0].url(), workers[1].url(), workers[2].url()}
	journal := filepath.Join(t.TempDir(), "sweep.journal")
	opts := func() []boomsim.ClusterOption {
		return []boomsim.ClusterOption{
			boomsim.WithEndpoints(eps...),
			boomsim.WithBatchSize(3),
			boomsim.WithWorkerInFlight(1),
			boomsim.WithJobAttempts(10),
			boomsim.WithRetryBackoff(time.Millisecond, 20*time.Millisecond),
			boomsim.WithJournal(journal),
		}
	}

	cl1, err := boomsim.NewCluster(opts()...)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	runCtx, kill := context.WithCancel(ctx)
	defer kill()
	crashed := make(chan struct{})
	go func() {
		defer close(crashed)
		deadline := time.Now().Add(30 * time.Second)
		for time.Now().Before(deadline) {
			// Crash once real progress exists and the victim worker has
			// durable state to prove survives: kill the worker, then the
			// coordinator.
			if cl1.Stats().JobsCompleted >= 10 && workers[1].st.Stats().Writes > 0 {
				workers[1].stop()
				kill()
				return
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()
	_, err = cl1.RunMatrix(runCtx, sims)
	<-crashed
	if err == nil {
		t.Fatal("sweep completed before the injected crash — it never ran through the fault window")
	}

	journaled := journalRecords(t, journal)
	if journaled == 0 || journaled >= len(sims) {
		t.Fatalf("journal holds %d of %d cells at crash time; the crash must land mid-sweep", journaled, len(sims))
	}

	workers[1].restart()
	if got := workers[1].st.Stats().Entries; got == 0 {
		t.Error("restarted worker recovered 0 store entries — results did not survive the restart")
	}

	cl2, err := boomsim.NewCluster(opts()...)
	if err != nil {
		t.Fatalf("NewCluster (resume): %v", err)
	}
	resumed, err := cl2.RunMatrix(ctx, sims)
	if err != nil {
		t.Fatalf("resumed RunMatrix: %v", err)
	}
	if !bytes.Equal(mustJSON(t, local), mustJSON(t, resumed)) {
		t.Fatal("resumed sweep results differ from the unfaulted local run")
	}
	st := cl2.Stats()
	if st.JobsResumed != uint64(journaled) {
		t.Errorf("JobsResumed = %d, want the journal's %d records", st.JobsResumed, journaled)
	}
	if want := uint64(len(sims) - journaled); st.JobsCompleted != want {
		t.Errorf("recomputed %d cells, want exactly the %d non-journaled ones", st.JobsCompleted, want)
	}
}

// TestChaosTransportSweepByteIdentical drives a sweep through a seeded
// fault-injecting transport — connection kills, 503 storms, 500s, stragglers
// — and asserts the retry/breaker machinery still delivers bytes identical
// to a local run.
func TestChaosTransportSweepByteIdentical(t *testing.T) {
	workers := startWorkers(t, 3)
	sims := fullMatrix(t, 31, 37, 1000, 5000)
	ctx := context.Background()

	local, err := boomsim.RunMatrix(ctx, sims)
	if err != nil {
		t.Fatalf("local RunMatrix: %v", err)
	}

	const seed = 42
	tr := chaos.NewTransport(nil, seed, chaos.Plan{
		PKill:     0.08,
		P503:      0.08,
		P500:      0.05,
		PSlow:     0.05,
		SlowDelay: 5 * time.Millisecond,
		MaxFaults: 60,
	})
	cl, err := boomsim.NewCluster(
		boomsim.WithEndpoints(endpoints(workers)...),
		boomsim.WithClusterClient(&http.Client{Transport: tr}),
		boomsim.WithBatchSize(3),
		boomsim.WithJobAttempts(20),
		boomsim.WithRetryBackoff(time.Millisecond, 10*time.Millisecond),
		boomsim.WithBreakerCooldown(10*time.Millisecond, 50*time.Millisecond),
	)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	dist, err := cl.RunMatrix(ctx, sims)
	if err != nil {
		t.Fatalf("sweep under chaos transport (seed %d): %v", seed, err)
	}
	if !bytes.Equal(mustJSON(t, local), mustJSON(t, dist)) {
		t.Fatalf("chaos-transport results differ from local (seed %d)", seed)
	}
	kills, f503s, f500s, slows, passed := tr.Counts()
	t.Logf("chaos seed %d: %d kills, %d 503s, %d 500s, %d slows, %d passed",
		seed, kills, f503s, f500s, slows, passed)
	if kills+f503s+f500s+slows == 0 {
		t.Error("the chaos plan injected nothing — the test proved nothing")
	}
}

// TestChaosTornJournalResume completes a journaled sweep, tears the final
// record (a crash mid-append), and resumes: the torn cell — and only the
// torn cell — is recomputed, and the results stay byte-identical.
func TestChaosTornJournalResume(t *testing.T) {
	workers := startWorkers(t, 2)
	sims := fullMatrix(t, 41, 43, 500, 2000)
	ctx := context.Background()
	journal := filepath.Join(t.TempDir(), "sweep.journal")

	local, err := boomsim.RunMatrix(ctx, sims)
	if err != nil {
		t.Fatalf("local RunMatrix: %v", err)
	}
	first, err := boomsim.RunMatrixDistributed(ctx, sims,
		boomsim.WithEndpoints(endpoints(workers)...),
		boomsim.WithJournal(journal),
		boomsim.WithRetryBackoff(time.Millisecond, 20*time.Millisecond),
	)
	if err != nil {
		t.Fatalf("journaled sweep: %v", err)
	}
	if !bytes.Equal(mustJSON(t, local), mustJSON(t, first)) {
		t.Fatal("journaled sweep differs from local before any fault")
	}
	if got := journalRecords(t, journal); got != len(sims) {
		t.Fatalf("journal holds %d records after a complete sweep, want %d", got, len(sims))
	}

	if err := chaos.Tear(journal, 9); err != nil {
		t.Fatal(err)
	}

	cl, err := boomsim.NewCluster(
		boomsim.WithEndpoints(endpoints(workers)...),
		boomsim.WithJournal(journal),
		boomsim.WithRetryBackoff(time.Millisecond, 20*time.Millisecond),
	)
	if err != nil {
		t.Fatalf("NewCluster (resume): %v", err)
	}
	resumed, err := cl.RunMatrix(ctx, sims)
	if err != nil {
		t.Fatalf("resume after torn journal: %v", err)
	}
	if !bytes.Equal(mustJSON(t, local), mustJSON(t, resumed)) {
		t.Fatal("post-tear resumed results differ from local")
	}
	st := cl.Stats()
	if want := uint64(len(sims) - 1); st.JobsResumed != want {
		t.Errorf("JobsResumed = %d, want %d — the torn record must not be trusted", st.JobsResumed, want)
	}
	if st.JobsCompleted != 1 {
		t.Errorf("recomputed %d cells, want exactly the torn one", st.JobsCompleted)
	}
}

// TestChaosStoreCorruptionNeverServed runs a worker whose store suffers
// seeded torn writes, then flips bits in the entries that did land,
// restarts the worker onto the same directory, and re-runs the identical
// sweep. Torn writes must be rejected at Put time (no torn entry ever
// becomes visible), bit-rotted entries must be quarantined and recomputed
// on read, and the results stay byte-identical throughout.
func TestChaosStoreCorruptionNeverServed(t *testing.T) {
	dir := t.TempDir()
	const seed = 7
	ffs := chaos.NewFS(nil, seed, chaos.FSPlan{PTornWrite: 0.3})
	st1, err := store.Open(dir, store.Options{FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	srv1 := server.New(server.Config{QueueDepth: 512, Store: st1})
	hs1 := httptest.NewServer(srv1.Handler())
	t.Cleanup(srv1.Close)

	sims := fullMatrix(t, 47, 53, 500, 2000)
	ctx := context.Background()
	local, err := boomsim.RunMatrix(ctx, sims)
	if err != nil {
		t.Fatalf("local RunMatrix: %v", err)
	}
	first, err := boomsim.RunMatrixDistributed(ctx, sims, boomsim.WithEndpoints(hs1.URL))
	if err != nil {
		t.Fatalf("sweep over faulty store: %v", err)
	}
	// Write-through faults must never leak into served results.
	if !bytes.Equal(mustJSON(t, local), mustJSON(t, first)) {
		t.Fatal("results differ while the store was tearing writes")
	}
	hs1.Close()
	srv1.Close()
	torn, _ := ffs.FSCounts()
	if torn == 0 {
		t.Fatalf("FS plan (seed %d) tore no writes — the test proved nothing", seed)
	}
	// Torn writes are caught before the rename makes them visible: they are
	// write errors, not entries.
	s1 := st1.Stats()
	if s1.WriteErrors != uint64(torn) {
		t.Errorf("WriteErrors = %d, want all %d torn writes rejected at Put time", s1.WriteErrors, torn)
	}
	if s1.Entries+int64(torn) != int64(len(sims)) {
		t.Errorf("store holds %d entries after %d of %d writes tore; want the difference", s1.Entries, torn, len(sims))
	}

	// Bit-rot the surviving entries in place (length-preserving tail
	// corruption — exactly what the fingerprint check exists for).
	rotted := 0
	shards, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, shard := range shards {
		if !shard.IsDir() || shard.Name() == "quarantine" {
			continue
		}
		files, err := os.ReadDir(filepath.Join(dir, shard.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range files {
			if rotted >= 5 {
				break
			}
			if err := chaos.Corrupt(filepath.Join(dir, shard.Name(), f.Name())); err != nil {
				t.Fatal(err)
			}
			rotted++
		}
	}
	if rotted == 0 {
		t.Fatal("no entries on disk to corrupt")
	}

	// Restart: fresh in-memory cache, same directory, honest filesystem.
	// Every cell now goes through store.Get, so each rotted entry is read,
	// detected, quarantined and recomputed.
	st2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv2 := server.New(server.Config{QueueDepth: 512, Store: st2})
	hs2 := httptest.NewServer(srv2.Handler())
	t.Cleanup(hs2.Close)
	t.Cleanup(srv2.Close)

	second, err := boomsim.RunMatrixDistributed(ctx, sims, boomsim.WithEndpoints(hs2.URL))
	if err != nil {
		t.Fatalf("sweep over recovered store: %v", err)
	}
	if !bytes.Equal(mustJSON(t, local), mustJSON(t, second)) {
		t.Fatal("recovered-store results differ from local — a corrupt entry was served")
	}
	ss := st2.Stats()
	if ss.Quarantined != uint64(rotted) {
		t.Errorf("quarantined %d entries, want all %d rotted ones caught on read", ss.Quarantined, rotted)
	}
	if ss.Hits == 0 {
		t.Error("store served no intact entries — durability gave the repeat sweep nothing")
	}
}
