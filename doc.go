// Package boomerang is a from-scratch Go reproduction of Kumar, Huang, Grot
// and Nagarajan, "Boomerang: a Metadata-Free Architecture for Control Flow
// Delivery" (HPCA 2017): a cycle-level front-end simulator with a synthetic
// server-workload substrate, the complete lineup of control-flow-delivery
// schemes the paper evaluates (next-line, DIP, FDIP, PIF, SHIFT, Confluence,
// Boomerang), and a benchmark harness that regenerates every figure of the
// paper's evaluation.
//
// The implementation lives under internal/: see internal/core for the
// Boomerang mechanism itself, internal/scheme for the evaluated
// configurations, internal/sim for the run harness, and
// internal/experiments for the per-figure reproductions. The cmd/boomsim and
// cmd/experiments binaries and the examples/ programs are the entry points.
package boomerang
