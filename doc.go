// Package boomsim is the public API of a from-scratch Go reproduction of
// Kumar, Huang, Grot and Nagarajan, "Boomerang: a Metadata-Free Architecture
// for Control Flow Delivery" (HPCA 2017): a cycle-level front-end simulator
// with a synthetic server-workload substrate and the complete lineup of
// control-flow-delivery schemes the paper evaluates (next-line, DIP, FDIP,
// PIF, SHIFT, Confluence, Boomerang, plus limit studies and hierarchical-BTB
// alternatives).
//
// # Running one simulation
//
// Construct a Simulation with functional options and run it under a
// context:
//
//	s, err := boomsim.New(
//		boomsim.WithScheme("Boomerang"),
//		boomsim.WithWorkload("Apache"),
//		boomsim.WithBTBEntries(32768),
//		boomsim.WithWindow(200_000, 1_000_000),
//	)
//	if err != nil { ... }
//	r, err := s.Run(ctx)
//
// Run checks ctx cooperatively inside the simulation loop; canceling the
// context returns ErrCanceled within a few chunks of instructions.
// WithProgress installs a callback invoked every N retired instructions.
// The returned Result is plain data and marshals to JSON.
//
// # Scheme and workload registries
//
// Schemes and workloads are string-keyed. Schemes() and Workloads()
// enumerate what is registered; unknown names surface as ErrUnknownScheme /
// ErrUnknownWorkload from New. RegisterScheme and RegisterWorkload extend
// the registries — new configurations built from the internal packages
// (variants, ablations, freshly calibrated profiles) become addressable by
// every consumer of this package without touching its call sites.
//
// # Batch runs
//
// RunMatrix executes many Simulations across a bounded worker pool with
// order-stable results: results[i] always corresponds to sims[i], and the
// output is identical for every parallelism level.
//
//	results, err := boomsim.RunMatrix(ctx, sims, boomsim.WithParallelism(8))
//
// The implementation lives under internal/: internal/core holds the
// Boomerang mechanism itself, internal/scheme the evaluated configurations,
// internal/sim the run harness, and internal/experiments the per-figure
// reproductions driven by cmd/experiments. The cmd/boomsim binary and the
// examples/ programs consume only this package.
package boomsim
