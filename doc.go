// Package boomsim is the public API of a from-scratch Go reproduction of
// Kumar, Huang, Grot and Nagarajan, "Boomerang: a Metadata-Free Architecture
// for Control Flow Delivery" (HPCA 2017): a cycle-level front-end simulator
// with a synthetic server-workload substrate and the complete lineup of
// control-flow-delivery schemes the paper evaluates (next-line, DIP, FDIP,
// PIF, SHIFT, Confluence, Boomerang, plus limit studies and hierarchical-BTB
// alternatives).
//
// # Running one simulation
//
// Construct a Simulation with functional options and run it under a
// context:
//
//	s, err := boomsim.New(
//		boomsim.WithScheme("Boomerang"),
//		boomsim.WithWorkload("Apache"),
//		boomsim.WithBTBEntries(32768),
//		boomsim.WithWindow(200_000, 1_000_000),
//	)
//	if err != nil { ... }
//	r, err := s.Run(ctx)
//
// Run checks ctx cooperatively inside the simulation loop; canceling the
// context returns ErrCanceled within a few chunks of instructions.
// WithProgress installs a callback invoked every N retired instructions.
// The returned Result is plain data and marshals to JSON.
//
// # Declarative schemes
//
// Every scheme is a SchemeConfig: plain serializable data (FTQ depth,
// prefetcher kind and parameters, BTB organisation, miss policy, predictor,
// storage-overhead accounting) interpreted by one generic builder. Compose
// novel scenarios in Go or load them from JSON scheme files, no internals
// required:
//
//	cfg, err := boomsim.LoadSchemeConfig("boomerang-ftq64.json")
//	s, err := boomsim.New(boomsim.WithSchemeConfig(cfg), boomsim.WithWorkload("DB2"))
//
// Inline configs travel with wire requests, so boomsimd workers execute
// schemes they have never seen registered, and the configuration Key covers
// the full config.
//
// # Scheme and workload registries
//
// Schemes and workloads are string-keyed. Schemes() and Workloads()
// enumerate what is registered — each SchemeInfo carries the scheme's full
// SchemeConfig — and unknown names surface as ErrUnknownScheme /
// ErrUnknownWorkload from New. RegisterScheme and RegisterWorkload extend
// the registries: new declarative configs (variants, ablations, freshly
// calibrated profiles) become addressable by every consumer of this package
// without touching its call sites.
//
// # Per-component statistics
//
// Result.Stats is a hierarchical registry flattened to dotted names: every
// simulated component reports its counters under its own namespace
// ("frontend.fetch_stall_cycles", "bpu.tage.useful_resets",
// "cache.llc_misses", "boomerang.probes", ...). The registry flows
// unchanged through boomsimd responses, Prometheus metrics and cluster
// reassembly; the typed fields on Result are a projection of it.
//
// # Batch runs
//
// RunMatrix executes many Simulations across a bounded worker pool with
// order-stable results: results[i] always corresponds to sims[i], and the
// output is identical for every parallelism level.
//
//	results, err := boomsim.RunMatrix(ctx, sims, boomsim.WithParallelism(8))
//
// # Distributed runs
//
// A matrix can shard across a pool of boomsimd workers instead of the
// local pool: cells route by rendezvous hashing on their configuration
// Key (keeping worker result caches hot across sweeps), worker
// backpressure is honored, stragglers can be hedged, a dying worker's
// cells re-dispatch to the survivors, and results return in matrix order,
// byte-identical to a local run:
//
//	cl, err := boomsim.NewCluster(boomsim.WithEndpoints("http://sim-1:8080", "http://sim-2:8080"))
//	results, err := cl.RunMatrix(ctx, sims)
//	// or: boomsim.RunMatrix(ctx, sims, boomsim.WithCluster(cl))
//	// or: boomsim.RunMatrixDistributed(ctx, sims, boomsim.WithEndpoints(...))
//
// ErrNoWorkers and ErrWorkerFailed type the distributed failure modes;
// Cluster.Stats and Cluster.MetricsHandler expose coordinator counters
// (dispatches, retries, hedges, cache-hit ratio, per-worker latency).
//
// The implementation lives under internal/: internal/core holds the
// Boomerang mechanism itself, internal/scheme the evaluated configurations,
// internal/sim the run harness, and internal/experiments the per-figure
// reproductions driven by cmd/experiments. The cmd/boomsim binary and the
// examples/ programs consume only this package.
package boomsim
