package boomsim

import (
	"boomsim/internal/frontend"
	"boomsim/internal/sim"
)

// Result is one simulation's outcome: plain data, ready for JSON.
type Result struct {
	// Scheme and Workload name the simulated configuration.
	Scheme   string `json:"scheme"`
	Workload string `json:"workload"`

	// Instructions and Cycles span the measurement window; IPC is their
	// ratio (the paper's per-core performance metric).
	Instructions uint64  `json:"instructions"`
	Cycles       int64   `json:"cycles"`
	IPC          float64 `json:"ipc"`

	// FetchStallCycles counts cycles the fetch engine sat waiting for
	// instruction lines on the correct path; StallFraction normalises by
	// total cycles. StallCycles splits them by the discontinuity class of
	// the stalled line (Figure 3's attribution).
	FetchStallCycles uint64      `json:"fetch_stall_cycles"`
	StallFraction    float64     `json:"stall_fraction"`
	StallCycles      ClassCounts `json:"stall_cycles_by_class"`

	// Squash anatomy (Figure 7's unit: events per kilo-instruction).
	MispredictSquashesPerKI float64 `json:"mispredict_squashes_per_ki"`
	BTBMissSquashesPerKI    float64 `json:"btb_miss_squashes_per_ki"`

	// BTB behaviour on correct-path prediction attempts.
	BTBLookups  uint64  `json:"btb_lookups"`
	BTBMisses   uint64  `json:"btb_misses"`
	BTBMissRate float64 `json:"btb_miss_rate"`

	// L1IMissesPerKI is demand instruction-line misses per
	// kilo-instruction (MPKI).
	L1IMissesPerKI float64 `json:"l1i_misses_per_ki"`

	// Hierarchy traffic: prefetches issued, LLC accesses and misses.
	Prefetches  uint64 `json:"prefetches"`
	LLCAccesses uint64 `json:"llc_accesses"`
	LLCMisses   uint64 `json:"llc_misses"`

	// PredecodedLines counts cache lines run through a predecoder
	// (Boomerang's miss scans, Confluence's fill path; zero elsewhere).
	PredecodedLines uint64 `json:"predecoded_lines"`
	// PrefetchMetaBytes estimates prefetcher metadata moved (temporal
	// streamers only).
	PrefetchMetaBytes uint64 `json:"prefetch_meta_bytes"`

	// StorageOverheadKB is the scheme's per-core metadata bill (Section
	// VI-D) — the axis of the paper's headline comparison.
	StorageOverheadKB float64 `json:"storage_overhead_kb"`

	// Stats is the full per-component statistics registry: every counter
	// each simulated component (frontend, bpu, cache, btb, prefetch,
	// boomerang, ...) registered under its own dotted namespace, e.g.
	// "cache.llc_misses" or "bpu.tage.useful_resets". The headline fields
	// above are a projection of it; this is the complete measurement plane,
	// and it flows unchanged through boomsimd responses, Prometheus
	// metrics, and cluster reassembly. JSON renders it sorted by name, so
	// Result round-trips bytes exactly.
	Stats map[string]float64 `json:"stats,omitempty"`

	// Epochs is the flight-recorder timeline (WithFlightRecorder): windowed
	// counter deltas that exactly tile the measurement window. Omitted —
	// and absent from the Result's bytes — unless recording was enabled.
	Epochs []Epoch `json:"epochs,omitempty"`
}

// Epoch is one flight-recorder sample: counter deltas over the window
// [StartCycle, StartCycle+Cycles) of the measurement window. Summing a
// field across a Result's epochs reproduces the run total for that counter
// over the recorded window.
type Epoch struct {
	StartCycle       int64  `json:"start_cycle"`
	Cycles           int64  `json:"cycles"`
	Instructions     uint64 `json:"instructions"`
	FetchStallCycles uint64 `json:"fetch_stall_cycles"`
	FTQEmptyCycles   uint64 `json:"ftq_empty_cycles"`
	BTBMisses        uint64 `json:"btb_misses"`
	Squashes         uint64 `json:"squashes"`
	Prefetches       uint64 `json:"prefetches"`
	PrefetchHits     uint64 `json:"prefetch_hits"`
	DemandMisses     uint64 `json:"demand_misses"`
}

// ClassCounts attributes per-class quantities to how the fetch stream
// entered the line: sequentially, via a taken conditional, or via an
// unconditional redirect.
type ClassCounts struct {
	Sequential    uint64 `json:"sequential"`
	Conditional   uint64 `json:"conditional"`
	Unconditional uint64 `json:"unconditional"`
}

// CMPResult aggregates a chip-level run.
type CMPResult struct {
	// PerCore holds each core's individual Result.
	PerCore []Result `json:"per_core"`
	// Throughput is total retired instructions divided by the slowest
	// core's cycles — the paper's chip-level metric.
	Throughput float64 `json:"throughput"`
}

func newResult(r sim.Result, storageKB float64) Result {
	st := r.Stats
	out := Result{
		Scheme:       r.SchemeName,
		Workload:     r.WorkloadName,
		Instructions: st.RetiredInstrs,
		Cycles:       st.Cycles,
		IPC:          r.IPC,

		FetchStallCycles: st.FetchStallCycles,
		StallFraction:    st.StallFraction(),
		StallCycles: ClassCounts{
			Sequential:    st.StallByClass[0],
			Conditional:   st.StallByClass[1],
			Unconditional: st.StallByClass[2],
		},

		MispredictSquashesPerKI: st.MispredictSquashesPerKI(),
		BTBMissSquashesPerKI:    st.SquashesPerKI(frontend.SquashBTBMiss),

		BTBLookups:  st.BTBLookups,
		BTBMisses:   st.BTBMisses,
		BTBMissRate: st.BTBMissRate(),

		Prefetches:  r.Hier.Prefetches,
		LLCAccesses: r.Hier.LLCAccesses,
		LLCMisses:   r.Hier.LLCMisses,

		PredecodedLines:   r.PredecodedLines,
		PrefetchMetaBytes: r.PrefetchMetaBytes,
		StorageOverheadKB: storageKB,
	}
	if st.RetiredInstrs > 0 {
		out.L1IMissesPerKI = float64(st.DemandLineMisses) * 1000 / float64(st.RetiredInstrs)
	}
	if r.Registry != nil {
		out.Stats = r.Registry.Map()
	}
	if len(r.Epochs) > 0 {
		out.Epochs = make([]Epoch, len(r.Epochs))
		for i, e := range r.Epochs {
			out.Epochs[i] = Epoch(e)
		}
	}
	return out
}

// Speedup returns r's performance relative to base (same workload): the
// ratio of IPCs, the paper's Figures 9/11 metric.
func Speedup(base, r Result) float64 {
	if base.IPC == 0 {
		return 0
	}
	return r.IPC / base.IPC
}

// Coverage returns the fraction of base's front-end stall cycles that r
// eliminated — the paper's "stall cycles covered" metric (Figures 2, 5, 8).
// Stall cycles are normalised per retired instruction so windows of
// different lengths compare fairly; when the baseline barely stalls the
// metric is defined as zero rather than a noise-amplified ratio. The
// formula is shared with the internal experiment harness, so figures and
// public-API output always agree.
func Coverage(base, r Result) float64 {
	return sim.CoverageFromStalls(base.FetchStallCycles, base.Instructions,
		r.FetchStallCycles, r.Instructions)
}
