// Llcsweep reproduces the paper's motivation studies (Figures 2 and 5) on a
// single workload using the experiment API: FDIP's stall-cycle coverage as a
// function of LLC round-trip latency, under different direction predictors
// and BTB sizes. The two contrarian findings should be visible:
//
//   - coverage barely depends on the direction predictor (even never-taken
//     keeps most of it), because conditional targets are near and
//     unconditional branches don't need prediction;
//   - shrinking the BTB 32K -> 2K costs only ~10-15 points of coverage, lost
//     almost entirely on unconditional discontinuities.
package main

import (
	"fmt"
	"log"

	"boomsim/internal/experiments"
)

func main() {
	p, err := experiments.Full().WithWorkloads("Nutch")
	if err != nil {
		log.Fatal(err)
	}
	p.MeasureInstrs = 600_000
	latencies := []int{10, 30, 50, 70}

	fig2, err := experiments.Fig2(p, latencies)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(fig2)

	fig5, err := experiments.Fig5(p, latencies, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(fig5)
}
