// Oltp studies the paper's hardest case: the TPC-C database workloads
// (Oracle, DB2) whose BTB miss rates are the highest of the suite. It
// reproduces two of the paper's observations:
//
//  1. BTB misses rival branch mispredictions as a squash source (Figure 7) —
//     on DB2 they are the majority — and a bigger BTB or Boomerang's
//     prefill removes them.
//  2. Boomerang's throttled next-N prefetch under BTB misses matters most
//     here (Figure 10: +12% on DB2 from next-2 versus none); the registry
//     exposes the sweep as the Boomerang-N* scheme family.
package main

import (
	"context"
	"fmt"
	"log"

	"boomsim"
)

func main() {
	ctx := context.Background()
	for _, name := range []string{"Oracle", "DB2"} {
		w, err := boomsim.LookupWorkload(name)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s — %s\n", w.Name, w.Description)

		// Squash anatomy under growing BTB capacity.
		fmt.Println("  BTB size vs squashes/KI (direction+target | BTB miss):")
		for _, entries := range []int{1024, 2048, 8192, 32768} {
			r := mustRun(ctx,
				boomsim.WithScheme("FDIP"),
				boomsim.WithWorkload(name),
				boomsim.WithBTBEntries(entries),
			)
			fmt.Printf("    %6d entries: %6.2f | %6.2f\n", entries,
				r.MispredictSquashesPerKI, r.BTBMissSquashesPerKI)
		}

		// Boomerang gets the 2K-entry BTB to near-zero BTB-miss squashes.
		r := mustRun(ctx, boomsim.WithScheme("Boomerang"), boomsim.WithWorkload(name))
		fmt.Printf("    Boomerang (2K):  %6.2f | %6.2f\n",
			r.MispredictSquashesPerKI, r.BTBMissSquashesPerKI)

		// Throttled prefetch sensitivity (Figure 10).
		fmt.Println("  next-N-block prefetch under BTB misses (speedup over Base):")
		base := mustRun(ctx, boomsim.WithScheme("Base"), boomsim.WithWorkload(name))
		for _, n := range []int{0, 1, 2, 4, 8} {
			r := mustRun(ctx,
				boomsim.WithScheme(fmt.Sprintf("Boomerang-N%d", n)),
				boomsim.WithWorkload(name),
			)
			fmt.Printf("    next-%d: %.3fx\n", n, boomsim.Speedup(base, r))
		}
		fmt.Println()
	}
}

func mustRun(ctx context.Context, opts ...boomsim.Option) boomsim.Result {
	s, err := boomsim.New(opts...)
	if err != nil {
		log.Fatal(err)
	}
	r, err := s.Run(ctx)
	if err != nil {
		log.Fatal(err)
	}
	return r
}
