// Oltp studies the paper's hardest case: the TPC-C database workloads
// (Oracle, DB2) whose BTB miss rates are the highest of the suite. It
// reproduces two of the paper's observations:
//
//  1. BTB misses rival branch mispredictions as a squash source (Figure 7) —
//     on DB2 they are the majority — and a bigger BTB or Boomerang's
//     prefill removes them.
//  2. Boomerang's throttled next-N prefetch under BTB misses matters most
//     here (Figure 10: +12% on DB2 from next-2 versus none).
package main

import (
	"fmt"
	"log"

	"boomerang/internal/config"
	"boomerang/internal/frontend"
	"boomerang/internal/scheme"
	"boomerang/internal/sim"
	"boomerang/internal/workload"
)

func main() {
	for _, name := range []string{"Oracle", "DB2"} {
		w, ok := workload.ByName(name)
		if !ok {
			log.Fatalf("workload %s not found", name)
		}
		fmt.Printf("%s — %s\n", w.Name, w.Description)

		// Squash anatomy under growing BTB capacity.
		fmt.Println("  BTB size vs squashes/KI (direction+target | BTB miss):")
		for _, entries := range []int{1024, 2048, 8192, 32768} {
			spec := sim.DefaultSpec(scheme.FDIP(), w)
			spec.Cfg = config.Default().WithBTB(entries)
			r, err := sim.Run(spec)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("    %6d entries: %6.2f | %6.2f\n", entries,
				r.Stats.MispredictSquashesPerKI(),
				r.Stats.SquashesPerKI(frontend.SquashBTBMiss))
		}

		// Boomerang gets the 2K-entry BTB to near-zero BTB-miss squashes.
		spec := sim.DefaultSpec(scheme.Boomerang(), w)
		r, err := sim.Run(spec)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("    Boomerang (2K):  %6.2f | %6.2f\n",
			r.Stats.MispredictSquashesPerKI(),
			r.Stats.SquashesPerKI(frontend.SquashBTBMiss))

		// Throttled prefetch sensitivity (Figure 10).
		fmt.Println("  next-N-block prefetch under BTB misses (speedup over Base):")
		base, err := sim.Run(sim.DefaultSpec(scheme.Base(), w))
		if err != nil {
			log.Fatal(err)
		}
		for _, n := range []int{0, 1, 2, 4, 8} {
			spec := sim.DefaultSpec(scheme.BoomerangThrottled(n), w)
			r, err := sim.Run(spec)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("    next-%d: %.3fx\n", n, sim.Speedup(base, r))
		}
		fmt.Println()
	}
}
