// Quickstart: run Boomerang against the no-prefetch baseline on a
// server-like workload through the public boomsim API, and print the
// headline result — the paper's claim in thirty lines: metadata-free
// control flow delivery at 540 bytes of added state.
package main

import (
	"context"
	"fmt"
	"log"

	"boomsim"
)

func main() {
	ctx := context.Background()

	// Build both simulations against the paper's methodology defaults
	// (Table I core, warm then measure) on the Apache profile of Table II.
	newSim := func(scheme string) *boomsim.Simulation {
		s, err := boomsim.New(
			boomsim.WithScheme(scheme),
			boomsim.WithWorkload("Apache"),
		)
		if err != nil {
			log.Fatal(err)
		}
		return s
	}

	base, err := newSim("Base").Run(ctx)
	if err != nil {
		log.Fatal(err)
	}
	boom, err := newSim("Boomerang").Run(ctx)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Boomerang on", boom.Workload)
	fmt.Printf("  baseline IPC        %.3f\n", base.IPC)
	fmt.Printf("  Boomerang IPC       %.3f (%.1f%% speedup)\n",
		boom.IPC, 100*(boomsim.Speedup(base, boom)-1))
	fmt.Printf("  stall cycles covered %.1f%%\n", 100*boomsim.Coverage(base, boom))
	fmt.Printf("  BTB-miss squashes    %.2f -> %.2f per kilo-instruction\n",
		base.BTBMissSquashesPerKI, boom.BTBMissSquashesPerKI)
	fmt.Printf("  added metadata       %.2f KB (Confluence needs >200 KB)\n",
		boom.StorageOverheadKB)
}
