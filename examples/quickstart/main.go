// Quickstart: generate a server-like workload, run Boomerang against the
// no-prefetch baseline, and print the headline result — the paper's claim in
// thirty lines: metadata-free control flow delivery at 540 bytes of added
// state.
package main

import (
	"fmt"
	"log"

	"boomerang/internal/frontend"
	"boomerang/internal/scheme"
	"boomerang/internal/sim"
	"boomerang/internal/workload"
)

func main() {
	// Pick a workload profile from the paper's Table II.
	apache, ok := workload.ByName("Apache")
	if !ok {
		log.Fatal("workload not found")
	}

	// Run the no-prefetch baseline, then Boomerang, with the paper's
	// methodology: warm the microarchitecture, then measure.
	base, err := sim.Run(sim.DefaultSpec(scheme.Base(), apache))
	if err != nil {
		log.Fatal(err)
	}
	boom, err := sim.Run(sim.DefaultSpec(scheme.Boomerang(), apache))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Boomerang on", apache.Name)
	fmt.Printf("  baseline IPC        %.3f\n", base.IPC)
	fmt.Printf("  Boomerang IPC       %.3f (%.1f%% speedup)\n",
		boom.IPC, 100*(sim.Speedup(base, boom)-1))
	fmt.Printf("  stall cycles covered %.1f%%\n", 100*sim.Coverage(base, boom))
	fmt.Printf("  BTB-miss squashes    %.2f -> %.2f per kilo-instruction\n",
		base.Stats.SquashesPerKI(frontend.SquashBTBMiss),
		boom.Stats.SquashesPerKI(frontend.SquashBTBMiss))
	fmt.Printf("  added metadata       %.2f KB (Confluence needs >200 KB)\n",
		scheme.Boomerang().StorageOverheadKB)
}
