// Tracereplay demonstrates the trace subsystem: record a workload's
// control-flow trace once, then replay it through the simulator and verify
// the result is cycle-identical to live execution. Traces decouple workload
// generation from simulation — the role checkpoint/trace libraries play in
// full-system methodologies like the paper's Flexus/SimFlex setup.
//
// The workload resolves through the public boomsim registry; the engine
// wiring below intentionally reaches into the lower-level internal packages
// (frontend, trace, program) because replay drives a hand-built core — the
// one consumer the high-level Run API cannot serve.
package main

import (
	"bytes"
	"fmt"
	"log"

	"boomsim"
	"boomsim/internal/bpu"
	"boomsim/internal/btb"
	"boomsim/internal/cache"
	"boomsim/internal/config"
	"boomsim/internal/core"
	"boomsim/internal/frontend"
	"boomsim/internal/program"
	"boomsim/internal/trace"
)

func main() {
	img, err := boomsim.BuildImage("Zeus", 1)
	if err != nil {
		log.Fatal(err)
	}

	// Record 600K basic blocks of oracle execution.
	var buf bytes.Buffer
	const blocks = 600_000
	n, err := trace.Record(img, 1, blocks, &buf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recorded %d blocks in %d bytes (%.2f B/block)\n",
		n, buf.Len(), float64(buf.Len())/float64(n))

	// Build two identical Boomerang cores: one driven live, one by replay.
	cfg := config.Default()
	build := func(orc frontend.Oracle) *frontend.Engine {
		hier := cache.NewHierarchy(cfg, 0)
		b := btb.New(cfg.BTBEntries, cfg.BTBAssoc)
		boom := core.New(core.DefaultConfig(), hier, btb.NewPredecoder(img))
		boom.SetBTB(b)
		return frontend.New(frontend.Options{
			Config: cfg, Image: img, Oracle: orc,
			Hierarchy: hier, Direction: bpu.NewTAGE(cfg.TAGEStorageKB), BTB: b,
			MissHandler: boom, FDIPProbes: true,
		})
	}

	r, err := trace.NewReader(bytes.NewReader(buf.Bytes()), img)
	if err != nil {
		log.Fatal(err)
	}
	rp, err := trace.NewReplayer(r)
	if err != nil {
		log.Fatal(err)
	}

	const measure = 500_000
	live := build(program.NewWalker(img, 1)).Run(measure, 0)
	replay := build(rp).Run(measure, 0)

	fmt.Printf("live:   %d instructions in %d cycles (IPC %.3f)\n",
		live.RetiredInstrs, live.Cycles, live.IPC())
	fmt.Printf("replay: %d instructions in %d cycles (IPC %.3f)\n",
		replay.RetiredInstrs, replay.Cycles, replay.IPC())
	if live.Cycles == replay.Cycles && live.TotalSquashes() == replay.TotalSquashes() {
		fmt.Println("replay is cycle-identical to live execution ✓")
	} else {
		log.Fatal("replay diverged from live execution")
	}
}
