// Webfrontend compares every control-flow-delivery scheme on the two web
// front-end workloads (Apache and Zeus) — the scenario the paper's
// introduction motivates: a deep software stack (server, CGI, kernel) whose
// active instruction working set defies the L1-I and BTB.
//
// It prints a Figure 8/9-style table: stall-cycle coverage and speedup per
// scheme, plus each scheme's metadata bill, so the paper's punchline is
// visible: Boomerang matches Confluence at ~1/400th the storage. The whole
// matrix runs through boomsim.RunMatrix on a worker pool with order-stable
// results.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"boomsim"
)

func main() {
	ctx := context.Background()
	schemes := boomsim.DefaultSchemes() // Base, Next Line, DIP, FDIP, SHIFT, Confluence, Boomerang

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	defer tw.Flush()

	for _, wl := range []string{"Apache", "Zeus"} {
		info, err := boomsim.LookupWorkload(wl)
		if err != nil {
			log.Fatal(err)
		}

		// One Simulation per scheme; RunMatrix fans them out and returns
		// results in spec order, so results[i] matches schemes[i].
		sims := make([]*boomsim.Simulation, len(schemes))
		for i, name := range schemes {
			sims[i], err = boomsim.New(
				boomsim.WithScheme(name),
				boomsim.WithWorkload(wl),
			)
			if err != nil {
				log.Fatal(err)
			}
		}
		results, err := boomsim.RunMatrix(ctx, sims)
		if err != nil {
			log.Fatal(err)
		}

		fmt.Fprintf(tw, "\n%s — %s\n", info.Name, info.Description)
		fmt.Fprintln(tw, "scheme\tIPC\tspeedup\tcoverage\tBTB-miss sq/KI\tmetadata KB\t")
		base := results[0] // schemes[0] is Base
		for _, r := range results {
			fmt.Fprintf(tw, "%s\t%.3f\t%.3fx\t%.1f%%\t%.2f\t%.2f\t\n",
				r.Scheme, r.IPC, boomsim.Speedup(base, r), 100*boomsim.Coverage(base, r),
				r.BTBMissSquashesPerKI, r.StorageOverheadKB)
		}
	}
}
