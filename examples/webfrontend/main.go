// Webfrontend compares every control-flow-delivery scheme on the two web
// front-end workloads (Apache and Zeus) — the scenario the paper's
// introduction motivates: a deep software stack (server, CGI, kernel) whose
// active instruction working set defies the L1-I and BTB.
//
// It prints a Figure 8/9-style table: stall-cycle coverage and speedup per
// scheme, plus each scheme's metadata bill, so the paper's punchline is
// visible: Boomerang matches Confluence at ~1/400th the storage.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"boomerang/internal/frontend"
	"boomerang/internal/scheme"
	"boomerang/internal/sim"
	"boomerang/internal/workload"
)

func main() {
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	defer tw.Flush()

	for _, name := range []string{"Apache", "Zeus"} {
		w, ok := workload.ByName(name)
		if !ok {
			log.Fatalf("workload %s not found", name)
		}
		fmt.Fprintf(tw, "\n%s — %s\n", w.Name, w.Description)
		fmt.Fprintln(tw, "scheme\tIPC\tspeedup\tcoverage\tBTB-miss sq/KI\tmetadata KB\t")

		spec := sim.DefaultSpec(scheme.Base(), w)
		base, err := sim.Run(spec)
		if err != nil {
			log.Fatal(err)
		}
		for _, s := range scheme.All() {
			spec.Scheme = s
			r, err := sim.Run(spec)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Fprintf(tw, "%s\t%.3f\t%.3fx\t%.1f%%\t%.2f\t%.2f\t\n",
				s.Name, r.IPC, sim.Speedup(base, r), 100*sim.Coverage(base, r),
				r.Stats.SquashesPerKI(frontend.SquashBTBMiss), s.StorageOverheadKB)
		}
	}
}
