package boomsim

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"

	"boomsim/internal/core"
	"boomsim/internal/prefetch"
	"boomsim/internal/scheme"
)

// SchemeConfig is the complete, declarative description of a control-flow-
// delivery scheme: name, FTQ depth, prefetcher kind and parameters, BTB
// organisation, miss policy, predictor, and the paper's Section VI-D
// storage-overhead accounting. Every built-in scheme is a SchemeConfig
// value (Schemes exposes them), and users compose novel scenarios — deeper
// FTQs, different prefetcher pairings, custom Boomerang throttle policies —
// as plain data, in Go or in JSON scheme files, without touching the
// simulator's internals. Run one with WithSchemeConfig or register it under
// its name with RegisterScheme.
//
// SchemeConfig round-trips through JSON byte-identically, and two configs
// with equal JSON build identical machines, so configs are safe to store,
// diff and ship across the wire to boomsimd workers.
type SchemeConfig = scheme.Config

// SchemePrefetcher configures a SchemeConfig's history-based L1-I
// prefetcher (kinds: "next-line", "dip", "temporal").
type SchemePrefetcher = scheme.PrefetcherConfig

// SchemeMissPolicy configures a SchemeConfig's BTB miss policy (kinds:
// "boomerang", "two-level", "perfect").
type SchemeMissPolicy = scheme.MissPolicyConfig

// SchemeTwoLevelBTB sizes a SchemeMissPolicy's hierarchical BTB.
type SchemeTwoLevelBTB = scheme.TwoLevelConfig

// BoomerangParams tunes a "boomerang" miss policy (throttle depth,
// predecode latency, scan bound, prefetch buffer size, unthrottled mode).
type BoomerangParams = core.Config

// TemporalParams sizes a "temporal" prefetcher (PIF/SHIFT history geometry).
type TemporalParams = prefetch.TemporalConfig

// ParseSchemeConfig decodes and validates one JSON scheme definition —
// the format boomctl -scheme-file and boomsimd's scheme_config wire field
// carry. Unknown fields are rejected so typos surface instead of silently
// building the wrong machine; validation failures wrap ErrInvalidOption.
func ParseSchemeConfig(data []byte) (SchemeConfig, error) {
	var cfg SchemeConfig
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cfg); err != nil {
		return SchemeConfig{}, fmt.Errorf("%w: decoding scheme config: %v", ErrInvalidOption, err)
	}
	if err := cfg.Validate(); err != nil {
		return SchemeConfig{}, fmt.Errorf("%w: %v", ErrInvalidOption, err)
	}
	return cfg, nil
}

// LoadSchemeConfig reads a JSON scheme file from disk (see EXPERIMENTS.md
// for the authoring guide).
func LoadSchemeConfig(path string) (SchemeConfig, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return SchemeConfig{}, fmt.Errorf("reading scheme file: %w", err)
	}
	cfg, err := ParseSchemeConfig(data)
	if err != nil {
		return SchemeConfig{}, fmt.Errorf("%s: %w", path, err)
	}
	return cfg, nil
}
