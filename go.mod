module boomerang

go 1.24
