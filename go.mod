module boomsim

go 1.24
