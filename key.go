package boomsim

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// Key returns the canonical identity of the simulation's full configuration:
// scheme, workload, predictor, BTB and LLC overrides, footprint override,
// both seeds, the measurement window and the cycle budget. Two Simulations
// with equal Keys produce byte-identical Results — a Run is a pure function
// of this string — so the Key is safe to use as a cache or memoisation key.
// Progress callbacks are deliberately excluded: they observe a run without
// affecting it. So are warm reuse (WithWarmReuse) and cycle skipping
// (WithCycleSkip): both are pure wall-clock trades whose on and off runs
// produce byte-identical Results, so either setting may serve a cached
// Result for the other.
//
// The format is stable within a process and human-readable; persist the
// Fingerprint instead if you need a fixed-width identifier.
func (s *Simulation) Key() string {
	key := fmt.Sprintf(
		"scheme=%q|workload=%q|predictor=%q|btb=%d|llc=%d|footprint=%d|imageseed=%d|walkseed=%d|warm=%d|measure=%d|maxcycles=%d",
		s.schemeName, s.workloadName, s.predictor,
		s.btbEntries, s.llcLatency, s.footprintKB,
		s.imageSeed, s.walkSeed,
		s.warmInstrs, s.measureInstrs, s.maxCycles)
	if s.flightEvery > 0 {
		// The flight recorder changes the Result's bytes (epochs ride on it),
		// so recorded runs get their own cache identity. Appended only when
		// set, preserving historical keys for every unrecorded run.
		key += fmt.Sprintf("|flightevery=%d", s.flightEvery)
	}
	if s.schemeCfg != nil {
		// An inline scheme's identity is its full declarative config, not
		// just its name: two custom schemes may share a name but differ in
		// recipe. JSON marshaling is deterministic over the config structs,
		// so equal configs yield equal keys. Registry-resolved runs keep the
		// historical key format, preserving cache identity across versions.
		key += "|schemecfg=" + string(s.schemeCfgJSON())
	}
	return key
}

// schemeCfgJSON is the inline scheme config's canonical JSON — the one
// encoding shared by Key (cache identity) and the wire request (what the
// worker executes), so routing and execution can never diverge. Call only
// with schemeCfg set.
func (s *Simulation) schemeCfgJSON() []byte {
	cfg, err := json.Marshal(s.schemeCfg)
	if err != nil {
		// Unreachable: SchemeConfig is plain data. Fail loudly rather than
		// silently aliasing distinct configs in caches.
		panic(fmt.Sprintf("boomsim: marshaling scheme config: %v", err))
	}
	return cfg
}

// Fingerprint returns the SHA-256 of Key as lowercase hex: a fixed-width,
// content-addressed identifier for the configuration, suitable for cache
// keys, file names and log correlation.
func (s *Simulation) Fingerprint() string {
	sum := sha256.Sum256([]byte(s.Key()))
	return hex.EncodeToString(sum[:])
}
