package boomsim_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"boomsim"
)

// runPair executes the same configuration with event-horizon cycle skipping
// on and off and returns both results' canonical JSON (which covers the
// headline stats, the full per-component registry, and any flight-recorder
// epochs — every byte a Result carries).
func runPair(t *testing.T, opts ...boomsim.Option) (on, off string) {
	t.Helper()
	ctx := context.Background()

	sOn, err := boomsim.New(append([]boomsim.Option{boomsim.WithCycleSkip(true)}, opts...)...)
	if err != nil {
		t.Fatalf("building skip-on sim: %v", err)
	}
	rOn, err := sOn.Run(ctx)
	if err != nil {
		t.Fatalf("skip-on run: %v", err)
	}
	sOff, err := boomsim.New(append([]boomsim.Option{boomsim.WithCycleSkip(false)}, opts...)...)
	if err != nil {
		t.Fatalf("building skip-off sim: %v", err)
	}
	rOff, err := sOff.Run(ctx)
	if err != nil {
		t.Fatalf("skip-off run: %v", err)
	}

	jOn, err := json.Marshal(rOn)
	if err != nil {
		t.Fatal(err)
	}
	jOff, err := json.Marshal(rOff)
	if err != nil {
		t.Fatal(err)
	}
	return string(jOn), string(jOff)
}

// TestSkipIdentityAllSchemes pins the cycle-skip contract across the whole
// registry: for every built-in scheme × workload, a skipping run and a
// per-cycle run produce byte-identical Results. Small footprints and windows
// keep the full 18×7 sweep inside a unit-test budget; the golden corpus
// covers the paper-scale windows.
func TestSkipIdentityAllSchemes(t *testing.T) {
	if testing.Short() {
		t.Skip("full scheme×workload sweep")
	}
	for _, sc := range boomsim.Schemes() {
		for _, wl := range boomsim.Workloads() {
			sc, wl := sc, wl
			t.Run(sc.Name+"/"+wl.Name, func(t *testing.T) {
				t.Parallel()
				on, off := runPair(t,
					boomsim.WithScheme(sc.Name),
					boomsim.WithWorkload(wl.Name),
					boomsim.WithFootprintKB(48),
					boomsim.WithWindow(2_000, 8_000),
				)
				if on != off {
					t.Errorf("skip-on result differs from skip-off:\n on:  %s\n off: %s", on, off)
				}
			})
		}
	}
}

// TestSkipIdentityStallHeavy covers the configuration the skip actually
// accelerates — the baseline scheme staring at a slow LLC, where most cycles
// are fetch stalls — so identity is pinned where the fast-forward path does
// the most work, not just where it is mostly idle.
func TestSkipIdentityStallHeavy(t *testing.T) {
	on, off := runPair(t,
		boomsim.WithScheme("Base"),
		boomsim.WithWorkload("Apache"),
		boomsim.WithLLCLatency(300),
		boomsim.WithFootprintKB(256),
		boomsim.WithWindow(5_000, 30_000),
	)
	if on != off {
		t.Errorf("stall-heavy skip-on result differs from skip-off:\n on:  %s\n off: %s", on, off)
	}
}

// TestSkipIdentityMaxCycles pins the window-semantics clamp: a cycle budget
// that expires mid-stall must cut both runs at the same cycle.
func TestSkipIdentityMaxCycles(t *testing.T) {
	on, off := runPair(t,
		boomsim.WithScheme("Base"),
		boomsim.WithWorkload("DB2"),
		boomsim.WithLLCLatency(200),
		boomsim.WithFootprintKB(128),
		boomsim.WithWindow(1_000, 1_000_000),
		boomsim.WithMaxCycles(37_501),
	)
	if on != off {
		t.Errorf("max-cycles skip-on result differs from skip-off:\n on:  %s\n off: %s", on, off)
	}
}

// TestSkipFlightRecorderIdentity runs the recorder at several epoch
// granularities — including 1 (every cycle is an epoch boundary, so no
// window is ever skipped) and primes sized to land epoch boundaries in the
// middle of fill stalls — and requires the full epoch timeline to be
// byte-identical with and without skipping. This is the interaction the
// epoch clamp in Engine.Run exists for: a skip must never jump across an
// epoch boundary, or the windowed deltas would merge.
func TestSkipFlightRecorderIdentity(t *testing.T) {
	for _, every := range []int64{1, 7, 97, 541, 4096} {
		t.Run(fmt.Sprintf("every-%d", every), func(t *testing.T) {
			t.Parallel()
			on, off := runPair(t,
				boomsim.WithScheme("Boomerang"),
				boomsim.WithWorkload("Apache"),
				boomsim.WithFootprintKB(96),
				boomsim.WithWindow(2_000, 20_000),
				boomsim.WithFlightRecorder(every),
			)
			if on != off {
				t.Errorf("flight-every=%d: epochs differ between skip-on and skip-off:\n on:  %s\n off: %s", every, on, off)
			}
		})
	}
}

// FuzzSkipIdentity drives randomized configurations — scheme, workload,
// footprint, window, LLC latency, seeds, optional flight recorder — through
// a skip-on and a skip-off run and requires byte-identical Result JSON
// (stats, registry and epochs). The fuzzer's job is to find a machine state
// the event-horizon proof in internal/frontend/skip.go missed; any
// divergence is a bug in the skip, never acceptable drift.
func FuzzSkipIdentity(f *testing.F) {
	f.Add(uint64(1), uint8(0), uint8(0), uint8(0), int64(0))
	f.Add(uint64(42), uint8(7), uint8(3), uint8(200), int64(97))
	f.Add(uint64(0xdeadbeef), uint8(17), uint8(1), uint8(64), int64(1))
	f.Add(uint64(7), uint8(255), uint8(6), uint8(31), int64(4096))

	schemes := boomsim.Schemes()
	workloads := boomsim.Workloads()

	f.Fuzz(func(t *testing.T, seed uint64, schemePick, wlPick, skew uint8, flightEvery int64) {
		rng := rand.New(rand.NewSource(int64(seed)))
		opts := []boomsim.Option{
			boomsim.WithScheme(schemes[int(schemePick)%len(schemes)].Name),
			boomsim.WithWorkload(workloads[int(wlPick)%len(workloads)].Name),
			boomsim.WithFootprintKB(16 + rng.Intn(112)),
			boomsim.WithWindow(uint64(rng.Intn(3000)), 1_000+uint64(rng.Intn(9_000))),
			boomsim.WithSeeds(seed%16+uint64(skew), seed%16),
			boomsim.WithLLCLatency(10 + rng.Intn(290)),
		}
		if flightEvery != 0 {
			fe := flightEvery
			if fe < 0 {
				fe = -fe
			}
			fe = fe%8192 + 1
			opts = append(opts, boomsim.WithFlightRecorder(fe))
		}

		ctx := context.Background()
		sOn, err := boomsim.New(append([]boomsim.Option{boomsim.WithCycleSkip(true)}, opts...)...)
		if err != nil {
			if errors.Is(err, boomsim.ErrInvalidOption) {
				return
			}
			t.Fatalf("building skip-on sim: %v", err)
		}
		sOff, err := boomsim.New(append([]boomsim.Option{boomsim.WithCycleSkip(false)}, opts...)...)
		if err != nil {
			t.Fatalf("building skip-off sim: %v", err)
		}
		rOn, err := sOn.Run(ctx)
		if err != nil {
			t.Fatalf("skip-on run: %v", err)
		}
		rOff, err := sOff.Run(ctx)
		if err != nil {
			t.Fatalf("skip-off run: %v", err)
		}
		jOn, err := json.Marshal(rOn)
		if err != nil {
			t.Fatal(err)
		}
		jOff, err := json.Marshal(rOff)
		if err != nil {
			t.Fatal(err)
		}
		if string(jOn) != string(jOff) {
			t.Fatalf("skip-on result differs from skip-off:\n on:  %s\n off: %s", jOn, jOff)
		}
	})
}
