package boomsim_test

import (
	"bytes"
	"context"
	"encoding/json"
	"regexp"
	"testing"

	"boomsim"
)

// chromeEvent mirrors one Chrome trace_event for assertions; chromeTrace is
// the document WriteChromeTrace emits.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	TS   *float64       `json:"ts"`
	Dur  *float64       `json:"dur"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args"`
}

type chromeTrace struct {
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	TraceEvents     []chromeEvent `json:"traceEvents"`
}

func decodeTrace(t *testing.T, tr *boomsim.Trace) chromeTrace {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var doc chromeTrace
	dec := json.NewDecoder(bytes.NewReader(buf.Bytes()))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		t.Fatalf("trace output is not the expected Chrome trace JSON: %v\n%s", err, buf.String())
	}
	return doc
}

// cellSpans filters the complete "cell" events out of a trace document.
func cellSpans(doc chromeTrace) []chromeEvent {
	var out []chromeEvent
	for _, ev := range doc.TraceEvents {
		if ev.Name == "cell" && ev.Ph == "X" {
			out = append(out, ev)
		}
	}
	return out
}

// TestMatrixTraceLocal pins the local sweep path: one "cell" span per
// simulation, each stamped with the trace's ID and the cell's
// scheme/workload/warm-source, and the whole document Perfetto-shaped.
func TestMatrixTraceLocal(t *testing.T) {
	var sims []*boomsim.Simulation
	for _, sch := range []string{"Base", "FDIP", "Boomerang"} {
		sims = append(sims, mustSim(t, boomsim.WithScheme(sch)))
	}
	tr := boomsim.NewTrace()
	if !regexp.MustCompile(`^[0-9a-f]{32}$`).MatchString(tr.ID()) {
		t.Fatalf("trace ID %q is not 32 hex digits", tr.ID())
	}
	if _, err := boomsim.RunMatrix(context.Background(), sims, boomsim.WithMatrixTrace(tr)); err != nil {
		t.Fatal(err)
	}
	doc := decodeTrace(t, tr)
	cells := cellSpans(doc)
	if len(cells) != len(sims) {
		t.Fatalf("trace holds %d cell spans, want %d", len(cells), len(sims))
	}
	for _, ev := range cells {
		if got := ev.Args["trace_id"]; got != tr.ID() {
			t.Errorf("cell span trace_id = %v, want %s", got, tr.ID())
		}
		if ev.Args["warm"] != "fork" && ev.Args["warm"] != "fresh" {
			t.Errorf("cell span warm = %v, want fork or fresh", ev.Args["warm"])
		}
		if ev.Dur == nil || ev.TS == nil {
			t.Errorf("cell span missing ts/dur: %+v", ev)
		}
	}
}

// TestClusterTraceEndToEnd is the sweep-tracing acceptance test: a matrix
// sharded over three real workers produces one merged trace in which every
// cell appears exactly once as a complete span — queue and dispatch phases
// attached on the same row — and every span carries the one trace ID the
// cluster minted, no matter which worker ran the cell.
func TestClusterTraceEndToEnd(t *testing.T) {
	workers := startWorkers(t, 3)
	var sims []*boomsim.Simulation
	for _, sch := range []string{"Base", "FDIP", "Boomerang"} {
		for _, wl := range []string{"Apache", "DB2"} {
			sims = append(sims, mustSim(t, boomsim.WithScheme(sch), boomsim.WithWorkload(wl)))
		}
	}
	tr := boomsim.NewTrace()
	cl, err := boomsim.NewCluster(
		boomsim.WithEndpoints(endpoints(workers)...),
		boomsim.WithClusterTrace(tr),
		boomsim.WithBatchSize(2),
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.RunMatrix(context.Background(), sims); err != nil {
		t.Fatal(err)
	}

	doc := decodeTrace(t, tr)
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", doc.DisplayTimeUnit)
	}

	// Every cell exactly once, keyed by the cell's fingerprint.
	want := map[string]bool{}
	for _, s := range sims {
		want[s.Fingerprint()] = false
	}
	phases := map[int]map[string]bool{} // tid -> phase names seen
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "M" {
			continue
		}
		if got := ev.Args["trace_id"]; got != tr.ID() {
			t.Fatalf("span %q trace_id = %v, want %s", ev.Name, got, tr.ID())
		}
		if ev.Cat == "phase" {
			if phases[ev.TID] == nil {
				phases[ev.TID] = map[string]bool{}
			}
			phases[ev.TID][ev.Name] = true
		}
	}
	for _, ev := range doc.TraceEvents {
		if ev.Name != "cell" || ev.Ph != "X" {
			continue
		}
		key, _ := ev.Args["key"].(string)
		seen, ok := want[key]
		if !ok {
			t.Fatalf("cell span for unknown key %q", key)
		}
		if seen {
			t.Fatalf("cell %q appears more than once in the merged trace", key)
		}
		want[key] = true
		if phases[ev.TID] == nil || !phases[ev.TID]["queue"] || !phases[ev.TID]["dispatch"] {
			t.Errorf("cell %q (tid %d) is missing queue/dispatch phase spans", key, ev.TID)
		}
	}
	for key, seen := range want {
		if !seen {
			t.Errorf("cell %q never appeared in the merged trace", key)
		}
	}
}

// TestClusterStatsCellCounters pins the satellite contract that cell-level
// counters exist with tracing entirely off: a sweep still reports how many
// cells settled and the slowest-cells leaderboard.
func TestClusterStatsCellCounters(t *testing.T) {
	workers := startWorkers(t, 2)
	var sims []*boomsim.Simulation
	for _, sch := range []string{"Base", "FDIP", "Boomerang"} {
		sims = append(sims, mustSim(t, boomsim.WithScheme(sch)))
	}
	cl, err := boomsim.NewCluster(boomsim.WithEndpoints(endpoints(workers)...))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.RunMatrix(context.Background(), sims); err != nil {
		t.Fatal(err)
	}
	st := cl.Stats()
	if st.CellsTotal != uint64(len(sims)) {
		t.Errorf("CellsTotal = %d, want %d", st.CellsTotal, len(sims))
	}
	if st.SlowestCellMS <= 0 {
		t.Errorf("SlowestCellMS = %v, want > 0", st.SlowestCellMS)
	}
	if len(st.SlowestCells) == 0 {
		t.Error("SlowestCells is empty; want the leaderboard populated")
	} else if st.SlowestCells[0].MS != st.SlowestCellMS {
		t.Errorf("leaderboard head %v != SlowestCellMS %v", st.SlowestCells[0].MS, st.SlowestCellMS)
	}
}

// TestWithFlightRecorderOnResult pins the public flight-recorder contract:
// epochs ride on Result, exactly tile the measurement window, and
// participate in the configuration Key (a recorded result is a different
// cacheable artifact from an unrecorded one).
func TestWithFlightRecorderOnResult(t *testing.T) {
	plain := mustSim(t)
	rec := mustSim(t, boomsim.WithFlightRecorder(500))
	if plain.Key() == rec.Key() {
		t.Fatal("WithFlightRecorder did not change the configuration Key")
	}
	r, err := rec.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Epochs) == 0 {
		t.Fatal("recorded run carries no epochs")
	}
	var cycles, instrs uint64
	var cursor int64
	for i, e := range r.Epochs {
		if e.StartCycle != cursor {
			t.Fatalf("epoch %d starts at cycle %d, want %d (epochs must tile the window)",
				i, e.StartCycle, cursor)
		}
		cursor += e.Cycles
		cycles += uint64(e.Cycles)
		instrs += e.Instructions
	}
	if instrs != r.Instructions {
		t.Errorf("epoch instruction sum %d != result total %d", instrs, r.Instructions)
	}

	// Epochs survive the Result JSON round trip like every other field.
	raw, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var back boomsim.Result
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Epochs) != len(r.Epochs) || back.Epochs[0] != r.Epochs[0] {
		t.Error("epochs did not survive the JSON round trip")
	}

	// And the recorder must not perturb the simulation itself.
	p, err := plain.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if p.IPC != r.IPC || p.Cycles != r.Cycles || p.Instructions != r.Instructions {
		t.Errorf("recorded run diverged: IPC %v vs %v, cycles %d vs %d",
			r.IPC, p.IPC, r.Cycles, p.Cycles)
	}
}
