package boomsim_test

import (
	"testing"

	"boomsim/internal/config"
	"boomsim/internal/scheme"
	"boomsim/internal/workload"
)

// TestMeasureLoopAllocationFree enforces the frontend package's
// zero-allocation contract: once warmed, the measured simulation loop —
// BPU, FTQ, fetch engine, backend window, cache hierarchy, Boomerang miss
// handling and the oracle walker — must not touch the heap at all. This is
// the property behind the simulator's throughput (the per-instruction
// allocation it replaces was ~40% of wall-clock in allocator and GC time).
func TestMeasureLoopAllocationFree(t *testing.T) {
	apache, ok := workload.ByName("Apache")
	if !ok {
		t.Fatal("Apache profile missing")
	}
	apache.Gen.FootprintKB = 512
	img, err := apache.Image(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []scheme.Scheme{scheme.Boomerang(), scheme.FDIP(), scheme.Confluence()} {
		t.Run(s.Name, func(t *testing.T) {
			inst := s.Build(scheme.Env{Cfg: config.Default(), Img: img, WalkSeed: 1})
			// Warm caches, predictors and every scratch structure to steady
			// state before measuring. The flight recorder is detached here
			// (its default), so this also proves the recorder-off hot path —
			// one nil compare per cycle — costs zero allocations.
			inst.Engine.Run(150_000, 0)
			allocs := testing.AllocsPerRun(5, func() {
				inst.Engine.ResetStats()
				inst.Engine.Run(20_000, 0)
			})
			if allocs != 0 {
				t.Fatalf("steady-state measure loop allocated %v times per 20K instructions; want 0", allocs)
			}

			// Recorder-on variant: the recorder preallocates its epoch buffer
			// at attach, so steady-state recording — snapshotting windowed
			// counters every 1K cycles — must also never touch the heap.
			// Attach outside the measured closure (the one-time buffer
			// allocation is the contract's explicit exception).
			inst.Engine.StartFlightRecorder(1_000, 4096)
			allocs = testing.AllocsPerRun(5, func() {
				inst.Engine.Run(20_000, 0)
			})
			inst.Engine.StopFlightRecorder()
			if allocs != 0 {
				t.Fatalf("recording measure loop allocated %v times per 20K instructions; want 0", allocs)
			}
		})
	}
}
