package boomsim

import (
	"context"
	"errors"
	"fmt"

	"boomsim/internal/config"
	"boomsim/internal/scheme"
	"boomsim/internal/sim"
	"boomsim/internal/workload"
)

// Simulation is one fully-resolved simulation: a scheme on a workload under
// a core configuration and measurement window. Construct it with New; the
// zero value is not usable. A Simulation is immutable after New and safe to
// run repeatedly and concurrently — every Run measures on private
// microarchitectural state (built fresh, or forked from a shared warmed
// snapshot when warm reuse applies; see WithWarmReuse).
type Simulation struct {
	schemeName   string
	workloadName string
	predictor    string
	btbEntries   int
	llcLatency   int
	footprintKB  int
	// schemeCfg, when non-nil, is an inline declarative scheme
	// (WithSchemeConfig) that bypasses the registry.
	schemeCfg *SchemeConfig

	imageSeed, walkSeed       uint64
	warmInstrs, measureInstrs uint64
	maxCycles                 int64

	progressEvery uint64
	progress      ProgressFunc
	warmObs       func(source string)

	// flightEvery > 0 attaches the flight recorder (WithFlightRecorder):
	// epoch deltas every flightEvery cycles, carried on Result.Epochs.
	flightEvery int64

	// warmReuse gates forking warmed state from the process-wide warm arena
	// (sim package). On by default; WithWarmReuse(false) disables it.
	warmReuse bool

	// noCycleSkip forces the per-cycle simulation loop (WithCycleSkip(false));
	// event-horizon cycle skipping is on by default.
	noCycleSkip bool

	// Resolved at New time so configuration errors surface before any
	// cycles are simulated.
	scheme   scheme.Scheme
	workload workload.Profile
	cfg      config.Core
}

// Defaults reproduce the paper's headline methodology; New starts from
// these, and wire protocols (cmd/boomsimd) reference them instead of
// duplicating the values.
const (
	// DefaultScheme and DefaultWorkload are the headline configuration.
	DefaultScheme   = "Boomerang"
	DefaultWorkload = "Apache"
	// DefaultImageSeed and DefaultWalkSeed make unconfigured runs
	// reproducible.
	DefaultImageSeed = 1
	DefaultWalkSeed  = 1
	// DefaultWarmInstrs and DefaultMeasureInstrs are the SMARTS-style
	// measurement window: 200K warm + 1M measured instructions.
	DefaultWarmInstrs    = 200_000
	DefaultMeasureInstrs = 1_000_000
)

// New builds a Simulation from functional options, resolving the scheme and
// workload against the registries and validating the resulting core
// configuration. Defaults reproduce the paper's headline methodology:
// Boomerang on Apache, Table I core, 200K warm + 1M measured instructions,
// seeds 1/1 (the Default* constants).
func New(opts ...Option) (*Simulation, error) {
	s := &Simulation{
		schemeName:    DefaultScheme,
		workloadName:  DefaultWorkload,
		imageSeed:     DefaultImageSeed,
		walkSeed:      DefaultWalkSeed,
		warmInstrs:    DefaultWarmInstrs,
		measureInstrs: DefaultMeasureInstrs,
		warmReuse:     true,
	}
	for _, opt := range opts {
		if err := opt(s); err != nil {
			return nil, err
		}
	}

	var err error
	if s.schemeCfg != nil {
		// Inline declarative scheme: already validated by WithSchemeConfig.
		s.scheme = *s.schemeCfg
		s.schemeName = s.schemeCfg.Name
	} else if s.scheme, err = schemeByName(s.schemeName); err != nil {
		return nil, err
	}
	if s.workload, err = workloadByName(s.workloadName); err != nil {
		return nil, err
	}
	if s.footprintKB > 0 {
		s.workload.Gen.FootprintKB = s.footprintKB
	}

	s.cfg = config.Default()
	if s.btbEntries > 0 {
		s.cfg = s.cfg.WithBTB(s.btbEntries)
	}
	if s.llcLatency > 0 {
		s.cfg = s.cfg.WithLLCLatency(s.llcLatency)
	}
	if err := s.cfg.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidOption, err)
	}
	return s, nil
}

// Scheme returns the resolved scheme's metadata.
func (s *Simulation) Scheme() SchemeInfo {
	return toSchemeInfo(s.scheme)
}

// Workload returns the resolved workload's metadata (footprint reflects any
// WithFootprintKB override).
func (s *Simulation) Workload() WorkloadInfo {
	return toWorkloadInfo(s.workload)
}

func (s *Simulation) spec() sim.Spec {
	return sim.Spec{
		Scheme:        s.scheme,
		Workload:      s.workload,
		Cfg:           s.cfg,
		ImageSeed:     s.imageSeed,
		WalkSeed:      s.walkSeed,
		Predictor:     s.predictor,
		WarmInstrs:    s.warmInstrs,
		MeasureInstrs: s.measureInstrs,
		MaxCycles:     s.maxCycles,
		ReuseWarm:     s.warmReuse,
		FlightEvery:   s.flightEvery,

		DisableCycleSkip: s.noCycleSkip,
	}
}

// Run executes the simulation to completion: warmup, then the measurement
// window. The simulation loop checks ctx cooperatively (every
// WithProgress granularity, or every sim chunk by default) and returns
// ErrCanceled — wrapping ctx's own error — if it fires mid-run.
func (s *Simulation) Run(ctx context.Context) (Result, error) {
	return s.runWithHooks(ctx, s.warmObs)
}

// runWithHooks is Run with an explicit warm observer: the matrix runner's
// tracing path injects its own span-recording observer without mutating
// the (immutable, shared) Simulation. onWarm may be nil; a WithWarmObserver
// callback installed at New time is chained after it.
func (s *Simulation) runWithHooks(ctx context.Context, onWarm func(source string)) (Result, error) {
	if onWarm == nil {
		onWarm = s.warmObs
	} else if obs := s.warmObs; obs != nil {
		inner := onWarm
		onWarm = func(src string) {
			inner(src)
			obs(src)
		}
	}
	r, err := sim.RunContext(ctx, s.spec(), sim.Hooks{
		ProgressEvery: s.progressEvery,
		Progress:      s.progress,
		OnWarm:        onWarm,
	})
	if err != nil {
		return Result{}, wrapRunError(err)
	}
	return newResult(r, s.scheme.StorageOverheadKB), nil
}

// RunCMP executes the simulation as a homogeneous chip-level consolidation
// run: cores independent instances of the same workload from distinct
// request streams (cores <= 0 uses the paper's 16). Cancellation semantics
// match Run, including the WithProgress granularity; the progress callback
// itself is not invoked — cores run concurrently, so per-core callbacks
// would interleave meaninglessly.
func (s *Simulation) RunCMP(ctx context.Context, cores int) (CMPResult, error) {
	res, err := sim.RunCMPContext(ctx, sim.CMPSpec{Spec: s.spec(), Cores: cores},
		sim.Hooks{ProgressEvery: s.progressEvery})
	if err != nil {
		return CMPResult{}, wrapRunError(err)
	}
	out := CMPResult{
		PerCore:    make([]Result, len(res.PerCore)),
		Throughput: res.Throughput,
	}
	for i, r := range res.PerCore {
		out.PerCore[i] = newResult(r, s.scheme.StorageOverheadKB)
	}
	return out, nil
}

// wrapRunError maps context errors onto the public ErrCanceled sentinel
// while leaving genuine simulation errors untouched.
func wrapRunError(err error) error {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return fmt.Errorf("%w: %w", ErrCanceled, err)
	}
	return err
}
