package boomsim_test

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"boomsim"
	"boomsim/internal/scheme"
	"boomsim/internal/workload"
)

// TestRegistryConcurrentRegisterAndLookup hammers the process-global
// registries from many goroutines at once — the access pattern boomsimd
// makes routine, with /v1/schemes listings, per-request lookups and
// (in principle) runtime registrations interleaving freely. Run under
// -race this pins the RWMutex discipline in registry.go: any unguarded
// read or write trips the detector.
//
// Registered names carry the "Test" prefix so the golden corpus skips
// them, and registration tolerates duplicates so the test is idempotent
// under -count.
func TestRegistryConcurrentRegisterAndLookup(t *testing.T) {
	const writers, readers, perWriter = 8, 8, 25

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				s := scheme.Base()
				s.Name = fmt.Sprintf("TestRaceScheme-%d-%d", w, i)
				if err := boomsim.RegisterScheme(s); err != nil && !errors.Is(err, boomsim.ErrInvalidOption) {
					t.Errorf("RegisterScheme: %v", err)
				}
				p := workload.SPECLike()
				// The TestCustom prefix keeps TestRegistryLookup's
				// built-in census accurate whatever the test order.
				p.Name = fmt.Sprintf("TestCustomRaceWorkload-%d-%d", w, i)
				if err := boomsim.RegisterWorkload(p); err != nil && !errors.Is(err, boomsim.ErrInvalidOption) {
					t.Errorf("RegisterWorkload: %v", err)
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				// Every read path: listings, typed lookups, misses, and
				// full construction through New.
				if got := boomsim.Schemes(); len(got) < 15 {
					t.Errorf("Schemes() shrank to %d entries mid-hammer", len(got))
				}
				if got := boomsim.Workloads(); len(got) < 7 {
					t.Errorf("Workloads() shrank to %d entries mid-hammer", len(got))
				}
				if _, err := boomsim.LookupScheme("Boomerang"); err != nil {
					t.Errorf("LookupScheme(Boomerang): %v", err)
				}
				if _, err := boomsim.LookupWorkload("Apache"); err != nil {
					t.Errorf("LookupWorkload(Apache): %v", err)
				}
				if _, err := boomsim.LookupScheme(fmt.Sprintf("TestRaceMissing-%d-%d", r, i)); !errors.Is(err, boomsim.ErrUnknownScheme) {
					t.Errorf("lookup miss = %v, want ErrUnknownScheme", err)
				}
				if _, err := boomsim.New(boomsim.WithScheme("FDIP"), boomsim.WithWorkload("DB2")); err != nil {
					t.Errorf("New during registration churn: %v", err)
				}
			}
		}(r)
	}
	wg.Wait()

	// Everything registered during the hammer is immediately resolvable.
	for w := 0; w < writers; w++ {
		name := fmt.Sprintf("TestRaceScheme-%d-%d", w, perWriter-1)
		if _, err := boomsim.LookupScheme(name); err != nil {
			t.Errorf("scheme %s registered but not found: %v", name, err)
		}
	}
}
