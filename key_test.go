package boomsim_test

import (
	"strings"
	"testing"

	"boomsim"
)

func mustNew(t *testing.T, opts ...boomsim.Option) *boomsim.Simulation {
	t.Helper()
	s, err := boomsim.New(opts...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestKeyIdentifiesTheFullConfiguration(t *testing.T) {
	base := mustNew(t)
	same := mustNew(t)
	if base.Key() != same.Key() {
		t.Errorf("identical options produced different keys:\n %s\n %s", base.Key(), same.Key())
	}
	if base.Fingerprint() != same.Fingerprint() {
		t.Errorf("identical options produced different fingerprints")
	}
	if len(base.Fingerprint()) != 64 {
		t.Errorf("Fingerprint() = %q, want 64 hex chars", base.Fingerprint())
	}

	// Every axis that changes the result must change the key.
	variants := map[string]*boomsim.Simulation{
		"scheme":    mustNew(t, boomsim.WithScheme("FDIP")),
		"workload":  mustNew(t, boomsim.WithWorkload("DB2")),
		"predictor": mustNew(t, boomsim.WithPredictor("bimodal")),
		"btb":       mustNew(t, boomsim.WithBTBEntries(4096)),
		"llc":       mustNew(t, boomsim.WithLLCLatency(18)),
		"footprint": mustNew(t, boomsim.WithFootprintKB(128)),
		"seeds":     mustNew(t, boomsim.WithSeeds(2, 1)),
		"walkseed":  mustNew(t, boomsim.WithSeeds(1, 2)),
		"window":    mustNew(t, boomsim.WithWindow(200_000, 2_000_000)),
		"maxcycles": mustNew(t, boomsim.WithMaxCycles(1_000_000)),
	}
	seen := map[string]string{base.Fingerprint(): "default"}
	for axis, s := range variants {
		if s.Key() == base.Key() {
			t.Errorf("changing %s did not change Key()", axis)
		}
		if prev, dup := seen[s.Fingerprint()]; dup {
			t.Errorf("fingerprint collision between %s and %s", axis, prev)
		}
		seen[s.Fingerprint()] = axis
	}

	// Progress hooks observe without affecting results; they stay out of
	// the key so instrumented and plain runs share cache entries.
	hooked := mustNew(t, boomsim.WithProgress(1000, func(done, total uint64) {}))
	if hooked.Key() != base.Key() {
		t.Errorf("WithProgress changed Key(); progress must not affect identity")
	}

	for _, want := range []string{"scheme=", "workload=", "imageseed=", "measure="} {
		if !strings.Contains(base.Key(), want) {
			t.Errorf("Key() %q missing %q", base.Key(), want)
		}
	}
}
