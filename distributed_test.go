package boomsim_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"testing"
	"time"

	"boomsim"
	"boomsim/internal/server"
)

// testWorker is one in-process boomsimd: the real service handler on a real
// HTTP listener.
type testWorker struct {
	srv  *server.Server
	http *httptest.Server
}

func startWorkers(t *testing.T, n int) []*testWorker {
	t.Helper()
	workers := make([]*testWorker, n)
	for i := range workers {
		srv := server.New(server.Config{QueueDepth: 512})
		hs := httptest.NewServer(srv.Handler())
		workers[i] = &testWorker{srv: srv, http: hs}
		t.Cleanup(hs.Close)
		t.Cleanup(srv.Close)
	}
	return workers
}

func endpoints(workers []*testWorker) []string {
	eps := make([]string, len(workers))
	for i, w := range workers {
		eps[i] = w.http.URL
	}
	return eps
}

// fullMatrix is the paper's full figure matrix at CI scale: every
// registered scheme (18) on the golden three-workload subset.
func fullMatrix(t *testing.T, imageSeed, walkSeed, warm, measure uint64) []*boomsim.Simulation {
	t.Helper()
	var sims []*boomsim.Simulation
	for _, sch := range boomsim.Schemes() {
		for _, wl := range []string{"Apache", "DB2", "SPEC-like"} {
			s, err := boomsim.New(
				boomsim.WithScheme(sch.Name),
				boomsim.WithWorkload(wl),
				boomsim.WithFootprintKB(64),
				boomsim.WithWindow(warm, measure),
				boomsim.WithSeeds(imageSeed, walkSeed),
			)
			if err != nil {
				t.Fatalf("New(%s, %s): %v", sch.Name, wl, err)
			}
			sims = append(sims, s)
		}
	}
	if len(sims) < 18*3 {
		t.Fatalf("matrix has %d cells, want >= %d", len(sims), 18*3)
	}
	return sims
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	raw, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestDistributedMatrixMatchesLocal is the fabric's core contract: a full
// 18-scheme x 3-workload matrix sharded over 3 workers returns byte-for-
// byte the JSON a local RunMatrix produces, and a repeated identical sweep
// is answered almost entirely from the workers' caches thanks to key-affine
// routing.
func TestDistributedMatrixMatchesLocal(t *testing.T) {
	workers := startWorkers(t, 3)
	sims := fullMatrix(t, 7, 11, 1000, 5000)
	ctx := context.Background()

	local, err := boomsim.RunMatrix(ctx, sims)
	if err != nil {
		t.Fatalf("local RunMatrix: %v", err)
	}

	cl, err := boomsim.NewCluster(
		boomsim.WithEndpoints(endpoints(workers)...),
		boomsim.WithBatchSize(4),
		boomsim.WithRetryBackoff(time.Millisecond, 50*time.Millisecond),
	)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	// Route through RunMatrix's WithCluster option so the public switch
	// between local and distributed execution is what's under test.
	dist, err := boomsim.RunMatrix(ctx, sims, boomsim.WithCluster(cl))
	if err != nil {
		t.Fatalf("distributed RunMatrix: %v", err)
	}
	if lraw, draw := mustJSON(t, local), mustJSON(t, dist); !bytes.Equal(lraw, draw) {
		t.Fatalf("distributed results differ from local:\nlocal: %.400s\ndist:  %.400s", lraw, draw)
	}

	stats := cl.Stats()
	if stats.JobsCompleted != uint64(len(sims)) {
		t.Errorf("JobsCompleted = %d, want %d", stats.JobsCompleted, len(sims))
	}
	spread := 0
	for _, w := range stats.Workers {
		if w.Jobs > 0 {
			spread++
		}
	}
	if spread < 2 {
		t.Errorf("only %d of 3 workers served cells — rendezvous routing did not spread the matrix", spread)
	}

	// Identical sweep, fresh coordinator: key-affine routing must land
	// every cell on the worker that already holds it.
	repeat, err := boomsim.RunMatrixDistributed(ctx, sims,
		boomsim.WithEndpoints(endpoints(workers)...),
		boomsim.WithBatchSize(4),
	)
	if err != nil {
		t.Fatalf("repeat distributed sweep: %v", err)
	}
	if !bytes.Equal(mustJSON(t, local), mustJSON(t, repeat)) {
		t.Fatal("repeat sweep results differ from local")
	}
	var served uint64
	for _, w := range workers {
		served += w.srv.Stats().CacheHits
	}
	// The coordinator's own observation is the acceptance metric: >90% of
	// the repeat sweep must be cache hits (it is 100% when routing is
	// perfectly affine; the threshold leaves room for a hedged duplicate).
	// Only the second coordinator's stats cover the repeat sweep alone.
	if ratio := hitRatioOfRepeatSweep(t, ctx, workers, sims); ratio < 0.9 {
		t.Errorf("coordinator-observed cache-hit ratio on repeat sweep = %.2f, want > 0.9", ratio)
	}
	if served == 0 {
		t.Error("workers report zero cache hits after an identical repeat sweep")
	}
}

// hitRatioOfRepeatSweep reruns the sweep once more on a fresh coordinator
// and returns its observed cache-hit ratio.
func hitRatioOfRepeatSweep(t *testing.T, ctx context.Context, workers []*testWorker, sims []*boomsim.Simulation) float64 {
	t.Helper()
	cl, err := boomsim.NewCluster(boomsim.WithEndpoints(endpoints(workers)...))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.RunMatrix(ctx, sims); err != nil {
		t.Fatal(err)
	}
	return cl.Stats().CacheHitRatio()
}

// TestDistributedSurvivesWorkerDeath kills one of three workers while the
// sweep is in flight: its in-flight and queued cells must re-dispatch to
// the survivors and the reassembled matrix must still be byte-identical to
// the local run.
func TestDistributedSurvivesWorkerDeath(t *testing.T) {
	workers := startWorkers(t, 3)
	// Distinct seeds from the other test so every worker cache is cold and
	// the victim actually owns unfinished work when it dies.
	sims := fullMatrix(t, 13, 17, 2000, 10000)
	ctx := context.Background()

	local, err := boomsim.RunMatrix(ctx, sims)
	if err != nil {
		t.Fatalf("local RunMatrix: %v", err)
	}

	cl, err := boomsim.NewCluster(
		boomsim.WithEndpoints(endpoints(workers)...),
		boomsim.WithBatchSize(3),
		boomsim.WithWorkerInFlight(1),
		boomsim.WithJobAttempts(10),
		boomsim.WithRetryBackoff(time.Millisecond, 20*time.Millisecond),
	)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}

	killed := make(chan struct{})
	go func() {
		defer close(killed)
		deadline := time.Now().Add(30 * time.Second)
		for time.Now().Before(deadline) {
			if cl.Stats().JobsCompleted >= 2 {
				// Sever live connections and refuse new ones: the worker
				// is gone as far as the coordinator can tell.
				workers[1].http.CloseClientConnections()
				workers[1].http.Listener.Close()
				return
			}
			time.Sleep(500 * time.Microsecond)
		}
	}()

	dist, err := cl.RunMatrix(ctx, sims)
	<-killed
	if err != nil {
		t.Fatalf("distributed sweep with worker death: %v", err)
	}
	if !bytes.Equal(mustJSON(t, local), mustJSON(t, dist)) {
		t.Fatal("post-death distributed results differ from local")
	}
	stats := cl.Stats()
	if stats.WorkerDeaths == 0 {
		t.Error("WorkerDeaths = 0, want >= 1 after killing a worker mid-sweep")
	}
	if stats.JobsRetried == 0 {
		t.Error("JobsRetried = 0, want >= 1 — the dead worker's cells must have re-dispatched")
	}
}

// TestDistributedNoWorkers pins the typed error for an empty/dead pool.
func TestDistributedNoWorkers(t *testing.T) {
	if _, err := boomsim.NewCluster(); !errors.Is(err, boomsim.ErrNoWorkers) {
		t.Fatalf("NewCluster() err = %v, want ErrNoWorkers", err)
	}

	dead := httptest.NewServer(nil)
	dead.Close()
	sims := []*boomsim.Simulation{mustSim(t)}
	_, err := boomsim.RunMatrixDistributed(context.Background(), sims,
		boomsim.WithEndpoints(dead.URL))
	if !errors.Is(err, boomsim.ErrNoWorkers) {
		t.Fatalf("RunMatrixDistributed err = %v, want ErrNoWorkers", err)
	}
}

func mustSim(t *testing.T, opts ...boomsim.Option) *boomsim.Simulation {
	t.Helper()
	opts = append([]boomsim.Option{
		boomsim.WithFootprintKB(64),
		boomsim.WithWindow(500, 2000),
	}, opts...)
	s, err := boomsim.New(opts...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestDistributedCustomSchemeConfig is the config plane's end-to-end
// acceptance: a custom declarative scheme loaded from a JSON file — one no
// worker has registered — runs through the cluster fabric, its config
// traveling inline on the wire, and comes back byte-identical to a local
// run, per-component registry stats included.
func TestDistributedCustomSchemeConfig(t *testing.T) {
	workers := startWorkers(t, 2)
	cfg, err := boomsim.LoadSchemeConfig("testdata/schemes/boomerang-ftq64.json")
	if err != nil {
		t.Fatal(err)
	}
	var sims []*boomsim.Simulation
	for _, wl := range []string{"Apache", "DB2"} {
		sims = append(sims,
			mustSim(t, boomsim.WithSchemeConfig(cfg), boomsim.WithWorkload(wl)),
			mustSim(t, boomsim.WithScheme("Boomerang"), boomsim.WithWorkload(wl)))
	}
	ctx := context.Background()

	local, err := boomsim.RunMatrix(ctx, sims)
	if err != nil {
		t.Fatalf("local RunMatrix: %v", err)
	}
	dist, err := boomsim.RunMatrixDistributed(ctx, sims,
		boomsim.WithEndpoints(endpoints(workers)...),
		boomsim.WithRetryBackoff(time.Millisecond, 50*time.Millisecond),
	)
	if err != nil {
		t.Fatalf("distributed RunMatrix: %v", err)
	}
	if lraw, draw := mustJSON(t, local), mustJSON(t, dist); !bytes.Equal(lraw, draw) {
		t.Fatalf("custom-scheme distributed results differ from local:\nlocal: %.400s\ndist:  %.400s", lraw, draw)
	}
	if dist[0].Scheme != "Boomerang-FTQ64" {
		t.Errorf("distributed result reports scheme %q, want the config's name", dist[0].Scheme)
	}
	if len(dist[0].Stats) == 0 || dist[0].Stats["boomerang.probes"] == 0 {
		t.Errorf("custom scheme's per-component stats did not survive the wire: %v", dist[0].Stats)
	}
	// The custom cell and the stock Boomerang cell must not alias in the
	// workers' content-addressed caches.
	if sims[0].Fingerprint() == sims[1].Fingerprint() {
		t.Error("custom and stock Boomerang cells share a fingerprint")
	}
}
