package boomsim

import (
	"context"
	"errors"
	"fmt"
	"runtime"

	"boomsim/internal/experiments"
)

// MatrixOption configures a RunMatrix call.
type MatrixOption func(*matrixConfig)

type matrixConfig struct {
	parallelism int
	cluster     *Cluster
}

// WithParallelism bounds the number of simulations RunMatrix executes
// concurrently (0 or unset = GOMAXPROCS, 1 = sequential). Results are
// identical for every value.
func WithParallelism(n int) MatrixOption {
	return func(c *matrixConfig) {
		c.parallelism = n
	}
}

// WithCluster routes the matrix through a pool of boomsimd workers instead
// of the local worker pool. Results are byte-identical either way — each
// cell is a pure function of its configuration — so callers can switch a
// sweep between local and distributed execution with this one option.
// WithParallelism is ignored for distributed runs; the cluster's own
// in-flight and batch bounds govern fan-out.
func WithCluster(cl *Cluster) MatrixOption {
	return func(c *matrixConfig) {
		c.cluster = cl
	}
}

// RunMatrix executes every simulation across a bounded worker pool and
// returns order-stable results: results[i] is sims[i]'s outcome no matter
// the parallelism or completion order, and — each simulation being a pure
// function of its options — the full result slice is deterministic.
//
// Cancellation is cooperative at both levels: a fired ctx stops queued
// simulations from starting and interrupts the ones in flight, returning
// ErrCanceled. A simulation failure surfaces as the lowest-index error.
func RunMatrix(ctx context.Context, sims []*Simulation, opts ...MatrixOption) ([]Result, error) {
	var cfg matrixConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.cluster != nil {
		return cfg.cluster.RunMatrix(ctx, sims)
	}
	workers := cfg.parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	for i, s := range sims {
		if s == nil {
			return nil, fmt.Errorf("%w: sims[%d] is nil", ErrInvalidOption, i)
		}
	}

	results := make([]Result, len(sims))
	errs := make([]error, len(sims))
	ctxErr := experiments.ForEach(ctx, workers, len(sims), func(i int) {
		results[i], errs[i] = sims[i].Run(ctx)
	})

	// Genuine simulation failures outrank cancellation noise: report the
	// lowest-index one so the same failure surfaces at any parallelism.
	canceled := ctxErr != nil
	for i, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, ErrCanceled) {
			canceled = true
			continue
		}
		return nil, fmt.Errorf("sims[%d] (%s on %s): %w",
			i, sims[i].schemeName, sims[i].workloadName, err)
	}
	if canceled {
		if ctxErr == nil {
			ctxErr = ctx.Err()
		}
		if ctxErr == nil {
			return nil, ErrCanceled
		}
		return nil, fmt.Errorf("%w: %w", ErrCanceled, ctxErr)
	}
	return results, nil
}
