package boomsim

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strconv"
	"time"

	"boomsim/internal/experiments"
	"boomsim/internal/obs"
)

// MatrixOption configures a RunMatrix call.
type MatrixOption func(*matrixConfig)

type matrixConfig struct {
	parallelism int
	cluster     *Cluster
	trace       *Trace
}

// WithParallelism bounds the number of simulations RunMatrix executes
// concurrently (0 or unset = GOMAXPROCS, 1 = sequential). Results are
// identical for every value.
func WithParallelism(n int) MatrixOption {
	return func(c *matrixConfig) {
		c.parallelism = n
	}
}

// WithCluster routes the matrix through a pool of boomsimd workers instead
// of the local worker pool. Results are byte-identical either way — each
// cell is a pure function of its configuration — so callers can switch a
// sweep between local and distributed execution with this one option.
// WithParallelism is ignored for distributed runs; the cluster's own
// in-flight and batch bounds govern fan-out.
func WithCluster(cl *Cluster) MatrixOption {
	return func(c *matrixConfig) {
		c.cluster = cl
	}
}

// WithMatrixTrace records one span per cell into t: wall time, the cell's
// scheme/workload, whether its warmed state was a warm-arena fork or a
// fresh warm, and whether it failed. Local sweeps record on the spot; a
// sweep that also passes WithCluster records through the cluster's own
// trace plumbing instead (set WithClusterTrace on the cluster), so this
// option only observes the local path. Tracing observes a run without
// affecting its results.
func WithMatrixTrace(t *Trace) MatrixOption {
	return func(c *matrixConfig) {
		c.trace = t
	}
}

// RunMatrix executes every simulation across a bounded worker pool and
// returns order-stable results: results[i] is sims[i]'s outcome no matter
// the parallelism or completion order, and — each simulation being a pure
// function of its options — the full result slice is deterministic.
//
// Cancellation is cooperative at both levels: a fired ctx stops queued
// simulations from starting and interrupts the ones in flight, returning
// ErrCanceled. A simulation failure surfaces as the lowest-index error.
func RunMatrix(ctx context.Context, sims []*Simulation, opts ...MatrixOption) ([]Result, error) {
	var cfg matrixConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.cluster != nil {
		return cfg.cluster.RunMatrix(ctx, sims)
	}
	workers := cfg.parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	for i, s := range sims {
		if s == nil {
			return nil, fmt.Errorf("%w: sims[%d] is nil", ErrInvalidOption, i)
		}
	}

	results := make([]Result, len(sims))
	errs := make([]error, len(sims))
	run := func(i int) {
		results[i], errs[i] = sims[i].Run(ctx)
	}
	if cfg.trace != nil {
		col := cfg.trace.collector()
		run = func(i int) {
			s := sims[i]
			col.SetThreadName(i, "cell "+strconv.Itoa(i)+" "+s.schemeName+"/"+s.workloadName)
			var warm string
			start := time.Now()
			results[i], errs[i] = s.runWithHooks(ctx, func(src string) { warm = src })
			col.Add(obs.Span{
				Name:  "cell",
				Cat:   "sweep",
				Start: start,
				Dur:   time.Since(start),
				TID:   i,
				Args: []obs.Arg{
					{Key: "scheme", Value: s.schemeName},
					{Key: "workload", Value: s.workloadName},
					{Key: "warm", Value: warm},
					{Key: "error", Value: errs[i] != nil},
				},
			})
		}
	}
	ctxErr := experiments.ForEach(ctx, workers, len(sims), run)

	// Genuine simulation failures outrank cancellation noise: report the
	// lowest-index one so the same failure surfaces at any parallelism.
	canceled := ctxErr != nil
	for i, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, ErrCanceled) {
			canceled = true
			continue
		}
		return nil, fmt.Errorf("sims[%d] (%s on %s): %w",
			i, sims[i].schemeName, sims[i].workloadName, err)
	}
	if canceled {
		if ctxErr == nil {
			ctxErr = ctx.Err()
		}
		if ctxErr == nil {
			return nil, ErrCanceled
		}
		return nil, fmt.Errorf("%w: %w", ErrCanceled, ctxErr)
	}
	return results, nil
}
