package boomsim_test

import (
	"context"
	"fmt"
	"log"

	"boomsim"
)

// ExampleNew runs one simulation through the public API: Boomerang on the
// Apache web front end, at a reduced footprint and window so the example
// finishes in CI time. Production runs drop WithFootprintKB and use the
// default 200K/1M window.
func ExampleNew() {
	s, err := boomsim.New(
		boomsim.WithScheme("Boomerang"),
		boomsim.WithWorkload("Apache"),
		boomsim.WithFootprintKB(256),
		boomsim.WithWindow(50_000, 150_000),
		boomsim.WithSeeds(1, 1),
	)
	if err != nil {
		log.Fatal(err)
	}
	r, err := s.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s on %s: measured >= 150K instructions: %t, positive IPC: %t\n",
		r.Scheme, r.Workload, r.Instructions >= 150_000, r.IPC > 0)
	// Output: Boomerang on Apache: measured >= 150K instructions: true, positive IPC: true
}

// ExampleRunMatrix fans a small scheme-by-workload grid across the worker
// pool. Results come back in spec order regardless of parallelism, so the
// printed table is deterministic.
func ExampleRunMatrix() {
	var sims []*boomsim.Simulation
	for _, scheme := range []string{"Base", "Boomerang"} {
		for _, workload := range []string{"Apache", "DB2"} {
			s, err := boomsim.New(
				boomsim.WithScheme(scheme),
				boomsim.WithWorkload(workload),
				boomsim.WithFootprintKB(256),
				boomsim.WithWindow(20_000, 60_000),
			)
			if err != nil {
				log.Fatal(err)
			}
			sims = append(sims, s)
		}
	}
	results, err := boomsim.RunMatrix(context.Background(), sims,
		boomsim.WithParallelism(4))
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range results {
		fmt.Printf("%s/%s ran: %t\n", r.Scheme, r.Workload, r.Cycles > 0)
	}
	// Output:
	// Base/Apache ran: true
	// Base/DB2 ran: true
	// Boomerang/Apache ran: true
	// Boomerang/DB2 ran: true
}
