// Command boomctl runs a simulation matrix across a pool of boomsimd
// workers: the paper's scheme x workload x seed sweep, sharded by the
// distributed experiment fabric (rendezvous routing on each cell's
// configuration key, worker backpressure, straggler hedging, re-dispatch on
// worker death) and reassembled in deterministic matrix order — the same
// bytes a local run would produce.
//
// boomctl is also the hypothesis-driven experiment entry point:
//
//	boomctl experiment testdata/experiments/fig8-speedup.json
//	boomctl experiment -endpoints http://sim-1:8080,http://sim-2:8080 spec.json
//
// loads a declarative experiment spec (hypothesis, baseline, candidates,
// workloads, seeds, parameter matrix, success criteria), runs the matrix
// locally or across the pool, aggregates metrics over seeds into mean ±
// 95% confidence intervals, and exits nonzero on a FAIL verdict — see
// EXPERIMENTS.md for the spec format.
//
// Sweep examples:
//
//	boomctl -workers http://sim-1:8080,http://sim-2:8080,http://sim-3:8080
//	boomctl -workers ... -schemes Base,FDIP,Boomerang -workloads Apache,DB2
//	boomctl -workers ... -schemes all -workloads all -image-seeds 1,2,3 -json
//	boomctl -workers ... -scheme-file deep-ftq.json,wide-boom.json -workloads Apache
//	boomctl -workers ... -hedge 30s -metrics-addr :9090
//	boomctl -workers ... -journal sweep.journal        # crash-safe sweep
//	boomctl -resume sweep.journal -workers ...         # pick it back up
//	boomctl -membership members.json -journal sweep.journal
//	boomctl -workers ... -trace-out sweep.trace.json   # Perfetto-loadable trace
//	boomctl -workers ... -log-level debug -flight-every 50000 -json
//
// Crash safety: with -journal every completed cell is durably logged, and
// re-running the identical sweep against the same journal (-resume is the
// self-documenting alias) computes only the cells that never finished.
// With -membership the worker pool is re-read from a JSON file during the
// sweep, so workers can be added or drained mid-run. -cell-timeout caps how
// long any single cell may keep failing before the sweep gives up.
//
// Observability: -trace-out writes the whole sweep as Chrome trace_event
// JSON — one row per cell with queue/dispatch/sim phases, retries and
// hedges marked, all under one trace ID that also travels to the workers —
// loadable in Perfetto (ui.perfetto.dev) or chrome://tracing. -log-level
// tunes the coordinator's structured logs on stderr (a -resume always logs
// its one-line journaled-vs-recomputed summary), and -flight-every attaches
// the simulator flight recorder so -json results carry per-epoch counters.
//
// The run summary (dispatch, retry, hedge and cache-hit counters plus
// per-worker load and the slowest cells) goes to stderr; results go to
// stdout as a table, or as JSON with -json.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"boomsim"
	"boomsim/internal/obs"
)

func main() {
	// Subcommand dispatch: `boomctl experiment <spec.json>` is the
	// hypothesis-driven entry point; bare boomctl remains the raw matrix
	// sweeper.
	if len(os.Args) > 1 && os.Args[1] == "experiment" {
		runExperimentCmd(os.Args[2:])
		return
	}

	var (
		workers     = flag.String("workers", "", "comma-separated boomsimd endpoints, e.g. http://sim-1:8080,http://sim-2:8080 (this or -membership is required)")
		schemesCSV  = flag.String("schemes", "all", `schemes to sweep ("all" = every registered scheme)`)
		schemeFiles = flag.String("scheme-file", "", "comma-separated JSON scheme files swept alongside -schemes (custom declarative scenarios; see EXPERIMENTS.md)")
		workloadCSV = flag.String("workloads", "Apache,DB2,SPEC-like", `workloads to sweep ("all" = every registered workload)`)
		predictor   = flag.String("predictor", "", "FDIP direction predictor: tage|bimodal|never-taken")
		btb         = flag.Int("btb", 0, "override BTB entries (0 = Table I default)")
		llc         = flag.Int("llc", 0, "override LLC latency in cycles (0 = default)")
		footprint   = flag.Int("footprint", 0, "override workload footprint in KB (0 = profile's own)")
		warm        = flag.Uint64("warm", boomsim.DefaultWarmInstrs, "warmup instructions per cell")
		measure     = flag.Uint64("measure", boomsim.DefaultMeasureInstrs, "measured instructions per cell")
		imageSeeds  = flag.String("image-seeds", "1", "comma-separated code-image seeds")
		walkSeeds   = flag.String("walk-seeds", "1", "comma-separated oracle-walk seeds")

		inflight    = flag.Int("inflight", 2, "max in-flight batches per worker")
		batch       = flag.Int("batch", 4, "cells per worker request")
		retries     = flag.Int("retries", 4, "dispatch attempts per cell before the sweep fails")
		hedge       = flag.Duration("hedge", 0, "duplicate straggling cells after this in-flight time (0 = off)")
		timeout     = flag.Duration("timeout", 5*time.Minute, "per-batch transport budget, retries included")
		journal     = flag.String("journal", "", "write-ahead log of completed cells; rerunning against it resumes the sweep")
		resume      = flag.String("resume", "", "resume a crashed sweep from this journal (same as -journal, but the file must exist)")
		membership  = flag.String("membership", "", `membership file ({"workers":[...]}) re-read during the sweep; overrides -workers as the authoritative pool`)
		cellTimeout = flag.Duration("cell-timeout", 0, "max wall-clock a single cell may spend being retried (0 = unbounded)")
		metricsAddr = flag.String("metrics-addr", "", "serve coordinator Prometheus metrics and /healthz (membership view) on this address during the run")
		jsonOut     = flag.Bool("json", false, "emit results as a JSON array instead of a table")
		traceOut    = flag.String("trace-out", "", "write the sweep as Chrome trace_event JSON (load in Perfetto or chrome://tracing)")
		flightEvery = flag.Int64("flight-every", 0, "attach the simulator flight recorder at this epoch granularity in cycles (0 = off; epochs ride on -json results)")
		noSkip      = flag.Bool("no-skip", false, "disable event-horizon cycle skipping on every cell (per-cycle control sweep; results are byte-identical)")
		logLevel    = flag.String("log-level", "warn", "coordinator log floor on stderr: debug, info, warn or error")
	)
	flag.Parse()
	if *workers == "" && *membership == "" {
		fatalf("-workers or -membership is required")
	}
	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fatalf("%v", err)
	}
	logger := obs.NewLogger(os.Stderr, level)
	journalPath := *journal
	if *resume != "" {
		// A resume always narrates itself: the one-line journaled-vs-recomputed
		// summary should not require turning the log floor down first.
		if level > slog.LevelInfo {
			logger = obs.NewLogger(os.Stderr, slog.LevelInfo)
		}
		if journalPath != "" && journalPath != *resume {
			fatalf("-journal and -resume disagree (%s vs %s); pass one", journalPath, *resume)
		}
		if _, err := os.Stat(*resume); err != nil {
			fatalf("-resume: %v (nothing to resume; use -journal to start a fresh crash-safe sweep)", err)
		}
		journalPath = *resume
	}

	// "none" is a scheme-only escape hatch (sweep just the -scheme-file
	// cells); an empty workload list stays a hard error.
	var schemes []string
	if *schemesCSV != "none" {
		schemes = resolveNames(*schemesCSV, schemeNames())
	}
	workloads := resolveNames(*workloadCSV, workloadNames())
	iseeds := parseSeeds("image-seeds", *imageSeeds)
	wseeds := parseSeeds("walk-seeds", *walkSeeds)

	// Cells sweep the named registry schemes plus any custom declarative
	// schemes loaded from JSON files; each cell is either a name or an
	// inline config that travels to the workers over the wire.
	type schemeCell struct {
		name string
		cfg  *boomsim.SchemeConfig
	}
	var cells []schemeCell
	for _, sch := range schemes {
		cells = append(cells, schemeCell{name: sch})
	}
	if *schemeFiles != "" {
		for _, path := range strings.Split(*schemeFiles, ",") {
			if path = strings.TrimSpace(path); path == "" {
				continue
			}
			cfg, err := boomsim.LoadSchemeConfig(path)
			if err != nil {
				fatalf("%v", err)
			}
			cells = append(cells, schemeCell{name: cfg.Name, cfg: &cfg})
		}
	}
	if len(cells) == 0 {
		fatalf("no schemes to sweep (-schemes none needs -scheme-file)")
	}

	// Matrix order is deterministic: seeds outermost, then workload, then
	// scheme — the order the paper's figures group by.
	var sims []*boomsim.Simulation
	for _, is := range iseeds {
		for _, ws := range wseeds {
			for _, wl := range workloads {
				for _, cell := range cells {
					opts := []boomsim.Option{
						boomsim.WithScheme(cell.name),
						boomsim.WithWorkload(wl),
						boomsim.WithSeeds(is, ws),
						boomsim.WithWindow(*warm, *measure),
					}
					if *flightEvery > 0 {
						opts = append(opts, boomsim.WithFlightRecorder(*flightEvery))
					}
					if *noSkip {
						opts = append(opts, boomsim.WithCycleSkip(false))
					}
					if cell.cfg != nil {
						opts = append(opts, boomsim.WithSchemeConfig(*cell.cfg))
					}
					if *predictor != "" {
						opts = append(opts, boomsim.WithPredictor(*predictor))
					}
					if *btb > 0 {
						opts = append(opts, boomsim.WithBTBEntries(*btb))
					}
					if *llc > 0 {
						opts = append(opts, boomsim.WithLLCLatency(*llc))
					}
					if *footprint > 0 {
						opts = append(opts, boomsim.WithFootprintKB(*footprint))
					}
					s, err := boomsim.New(opts...)
					if err != nil {
						fatalf("%s on %s: %v", cell.name, wl, err)
					}
					sims = append(sims, s)
				}
			}
		}
	}

	clOpts := []boomsim.ClusterOption{
		boomsim.WithWorkerInFlight(*inflight),
		boomsim.WithBatchSize(*batch),
		boomsim.WithJobAttempts(*retries),
		boomsim.WithClusterTimeout(*timeout),
		boomsim.WithClusterLogger(logger),
	}
	var trace *boomsim.Trace
	if *traceOut != "" {
		trace = boomsim.NewTrace()
		clOpts = append(clOpts, boomsim.WithClusterTrace(trace))
		fmt.Fprintf(os.Stderr, "boomctl: tracing sweep, trace id %s\n", trace.ID())
	}
	if *workers != "" {
		clOpts = append(clOpts, boomsim.WithEndpoints(strings.Split(*workers, ",")...))
	}
	if *membership != "" {
		clOpts = append(clOpts, boomsim.WithMembershipFile(*membership))
	}
	if journalPath != "" {
		clOpts = append(clOpts, boomsim.WithJournal(journalPath))
	}
	if *cellTimeout > 0 {
		clOpts = append(clOpts, boomsim.WithCellTimeout(*cellTimeout))
	}
	if *hedge > 0 {
		clOpts = append(clOpts, boomsim.WithHedgeAfter(*hedge))
	}
	cl, err := boomsim.NewCluster(clOpts...)
	if err != nil {
		fatalf("%v", err)
	}

	if *metricsAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("GET /metrics", cl.MetricsHandler())
		mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
			// Cell-level visibility rides on /healthz whether or not the
			// sweep is traced: totals, distinct retried cells, and the
			// slowest-cells leaderboard.
			st := cl.Stats()
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(map[string]any{
				"status":          "ok",
				"membership":      cl.MembershipView(),
				"cells_total":     st.CellsTotal,
				"cells_retried":   st.CellsRetried,
				"slowest_cell_ms": st.SlowestCellMS,
				"slowest_cells":   st.SlowestCells,
			})
		})
		go func() {
			if err := http.ListenAndServe(*metricsAddr, mux); err != nil {
				fmt.Fprintf(os.Stderr, "boomctl: metrics listener: %v\n", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	pool := "membership file " + *membership
	if *workers != "" {
		pool = fmt.Sprintf("%d workers", len(strings.Split(*workers, ",")))
	}
	fmt.Fprintf(os.Stderr, "boomctl: %d cells (%d schemes x %d workloads x %d seed pairs) across %s\n",
		len(sims), len(cells), len(workloads), len(iseeds)*len(wseeds), pool)
	start := time.Now()
	results, err := cl.RunMatrix(ctx, sims)
	if err != nil {
		fatalf("%v", err)
	}
	elapsed := time.Since(start)

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			fatalf("encoding results: %v", err)
		}
	} else {
		printTable(results, len(cells)*len(workloads))
	}
	printSummary(cl.Stats(), len(sims), elapsed)

	if trace != nil {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatalf("-trace-out: %v", err)
		}
		if err := trace.WriteChromeTrace(f); err != nil {
			fatalf("writing trace: %v", err)
		}
		if err := f.Close(); err != nil {
			fatalf("writing trace: %v", err)
		}
		fmt.Fprintf(os.Stderr, "boomctl: wrote %d spans (%d dropped) to %s — load it at ui.perfetto.dev\n",
			trace.Len(), trace.Dropped(), *traceOut)
	}
}

// printTable renders one row per cell; when Base is part of the sweep each
// row also shows speedup over Base for the same workload cell — the
// paper's Figure 9 axis. Cells sharing a seed pair form one contiguous
// block of perBlock rows (seeds are the outermost sweep dimension), and
// each block's speedups are computed against the Base rows of that same
// block — never against another seed's baseline.
func printTable(results []boomsim.Result, perBlock int) {
	hasBase := false
	for _, r := range results {
		if r.Scheme == "Base" {
			hasBase = true
			break
		}
	}
	fmt.Printf("%-22s %-12s %8s %8s %10s", "SCHEME", "WORKLOAD", "IPC", "MPKI", "STALL%")
	if hasBase {
		fmt.Printf(" %9s", "SPEEDUP")
	}
	fmt.Println()
	for start := 0; start < len(results); start += perBlock {
		block := results[start:min(start+perBlock, len(results))]
		base := make(map[string]boomsim.Result)
		for _, r := range block {
			if r.Scheme == "Base" {
				base[r.Workload] = r
			}
		}
		for _, r := range block {
			fmt.Printf("%-22s %-12s %8.3f %8.2f %9.1f%%",
				r.Scheme, r.Workload, r.IPC, r.L1IMissesPerKI, 100*r.StallFraction)
			if b, ok := base[r.Workload]; ok {
				fmt.Printf(" %8.3fx", boomsim.Speedup(b, r))
			}
			fmt.Println()
		}
	}
}

func printSummary(st boomsim.ClusterStats, cells int, elapsed time.Duration) {
	fmt.Fprintf(os.Stderr,
		"boomctl: %d cells in %v — dispatched %d, resumed %d, retried %d, hedged %d, cache hits %d (%.0f%%), worker deaths %d\n",
		cells, elapsed.Round(time.Millisecond), st.JobsDispatched, st.JobsResumed, st.JobsRetried, st.JobsHedged,
		st.CacheHits, 100*st.CacheHitRatio(), st.WorkerDeaths)
	for _, w := range st.Workers {
		avg := time.Duration(0)
		if w.Requests > 0 {
			avg = time.Duration(w.LatencyNanos / w.Requests)
		}
		fmt.Fprintf(os.Stderr, "boomctl:   %-30s %7s  jobs %4d  requests %4d  failures %2d  avg batch %v\n",
			w.Endpoint, w.State, w.Jobs, w.Requests, w.Failures, avg.Round(time.Millisecond))
	}
	if len(st.SlowestCells) > 0 {
		fmt.Fprintf(os.Stderr, "boomctl: slowest cells:\n")
		for _, c := range st.SlowestCells {
			key := c.Key
			if len(key) > 16 {
				key = key[:16]
			}
			fmt.Fprintf(os.Stderr, "boomctl:   %-16s %8.0fms  %s\n", key, c.MS, c.Worker)
		}
	}
}

func resolveNames(csv string, all []string) []string {
	if csv == "all" {
		return all
	}
	var out []string
	for _, name := range strings.Split(csv, ",") {
		if name = strings.TrimSpace(name); name != "" {
			out = append(out, name)
		}
	}
	if len(out) == 0 {
		fatalf("empty name list %q", csv)
	}
	return out
}

func parseSeeds(flagName, csv string) []uint64 {
	var out []uint64
	for _, s := range strings.Split(csv, ",") {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		v, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			fatalf("-%s: %q is not a seed: %v", flagName, s, err)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		fatalf("-%s: no seeds in %q", flagName, csv)
	}
	return out
}

func schemeNames() []string {
	infos := boomsim.Schemes()
	out := make([]string, len(infos))
	for i, s := range infos {
		out[i] = s.Name
	}
	return out
}

func workloadNames() []string {
	infos := boomsim.Workloads()
	out := make([]string, len(infos))
	for i, w := range infos {
		out[i] = w.Name
	}
	return out
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "boomctl: "+format+"\n", args...)
	os.Exit(1)
}
