package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"boomsim"
)

// runExperimentCmd implements `boomctl experiment <spec.json>`: load a
// declarative experiment spec, run its simulation matrix (locally, or
// fanned out over a boomsimd pool with -endpoints), aggregate metrics
// across seeds into mean ± 95% CI, judge every success criterion, and emit
// the report. The process exits 0 on PASS or INCONCLUSIVE and 1 on a FAIL
// verdict — CI gates on the exit code — and 2 on operational errors.
func runExperimentCmd(args []string) {
	fs := flag.NewFlagSet("boomctl experiment", flag.ExitOnError)
	var (
		endpoints = fs.String("endpoints", "", "comma-separated boomsimd workers to fan the matrix out over (empty = run locally)")
		out       = fs.String("out", "", "also write the JSON report to this file")
		jsonOut   = fs.Bool("json", false, "print the JSON report to stdout instead of the human-readable one")
		jobs      = fs.Int("j", 0, "local worker pool size (0 = GOMAXPROCS; ignored with -endpoints)")
		determ    = fs.Bool("deterministic", false, "omit the generated_at timestamp so the report is a pure function of the spec")
		timeout   = fs.Duration("timeout", 5*time.Minute, "per-batch transport budget for distributed runs")
	)
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, `usage: boomctl experiment [flags] <spec.json>

Runs one declarative experiment spec end to end and reports a
PASS/FAIL/INCONCLUSIVE verdict per success criterion. The paper's own
claims live under testdata/experiments/; EXPERIMENTS.md documents the spec
format. Exits 1 on a FAIL verdict.

`)
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if fs.NArg() != 1 {
		fs.Usage()
		os.Exit(2)
	}

	spec, err := boomsim.LoadExperimentSpec(fs.Arg(0))
	if err != nil {
		experimentFatalf("%v", err)
	}

	var opts []boomsim.ExperimentOption
	if *determ {
		opts = append(opts, boomsim.WithExperimentTimestamp(""))
	}
	if *endpoints != "" {
		cl, err := boomsim.NewCluster(
			boomsim.WithEndpoints(strings.Split(*endpoints, ",")...),
			boomsim.WithClusterTimeout(*timeout),
		)
		if err != nil {
			experimentFatalf("%v", err)
		}
		opts = append(opts, boomsim.WithExperimentCluster(cl))
	} else if *jobs > 0 {
		opts = append(opts, boomsim.WithExperimentParallelism(*jobs))
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	cells := len(spec.Matrix.Points()) * len(spec.Seeds) * len(spec.Workloads) *
		(1 + len(spec.Candidates) + len(spec.SchemeConfigs))
	where := "locally"
	if *endpoints != "" {
		where = fmt.Sprintf("across %d workers", len(strings.Split(*endpoints, ",")))
	}
	fmt.Fprintf(os.Stderr, "boomctl: experiment %q — %d cells %s\n", spec.Name, cells, where)

	start := time.Now()
	report, err := boomsim.RunExperiment(ctx, spec, opts...)
	if err != nil {
		experimentFatalf("%v", err)
	}
	fmt.Fprintf(os.Stderr, "boomctl: experiment completed in %v\n", time.Since(start).Round(time.Millisecond))

	if *out != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			experimentFatalf("encoding report: %v", err)
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			experimentFatalf("writing report: %v", err)
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			experimentFatalf("encoding report: %v", err)
		}
	} else {
		report.Render(os.Stdout)
	}

	if report.Verdict == boomsim.VerdictFail {
		fmt.Fprintf(os.Stderr, "boomctl: experiment %q FAILED its success criteria\n", spec.Name)
		os.Exit(1)
	}
}

func experimentFatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "boomctl: "+format+"\n", args...)
	os.Exit(2)
}
