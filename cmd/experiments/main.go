// Command experiments regenerates the paper's evaluation: every figure of
// Kumar et al., "Boomerang: a Metadata-Free Architecture for Control Flow
// Delivery" (HPCA 2017), as text tables whose rows and series match what the
// paper plots.
//
// Examples:
//
//	experiments -run all            # full methodology (minutes, parallel)
//	experiments -run fig789 -quick  # Figures 7/8/9 at CI scale
//	experiments -run fig2,fig5 -j 4 # bounded worker pool
//
// This command renders tables; it does not judge them. The paper's claims
// themselves now live as declarative, machine-checked experiment specs
// under testdata/experiments/, run with `boomctl experiment <spec.json>`
// (see EXPERIMENTS.md). Prefer that path for anything that needs a
// PASS/FAIL verdict, confidence intervals, or distributed execution; the
// figure paths here that have a spec equivalent print a pointer to it.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"boomsim/internal/experiments"
)

func main() {
	var (
		run   = flag.String("run", "all", "comma-separated: fig1..fig11,storage,cmp,traffic,energy,motivation,misspolicy,btbalt,ablations or all")
		quick = flag.Bool("quick", false, "CI-scale parameters (3 workloads, small footprints)")
		out   = flag.String("out", "", "also write output to this file")
		csv   = flag.String("csv", "", "also write every table as CSV to this file")
		chart = flag.Bool("chart", false, "render each table as ASCII bar charts too")
		jobs  = flag.Int("j", 0, "worker pool size for independent simulation points (0 = GOMAXPROCS, 1 = sequential; output is identical either way)")
	)
	flag.Parse()

	p := experiments.Full()
	if *quick {
		p = experiments.Quick()
	}
	p.Parallelism = *jobs

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	var csvOut io.Writer
	if *csv != "" {
		f, err := os.Create(*csv)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		csvOut = f
	}
	emit := func(tables ...*experiments.Table) {
		for _, t := range tables {
			fmt.Fprintln(w, t)
			if *chart {
				fmt.Fprintln(w, t.Chart(40))
			}
			if csvOut != nil {
				fmt.Fprintln(csvOut, t.CSV())
			}
		}
	}

	want := map[string]bool{}
	for _, name := range strings.Split(*run, ",") {
		want[strings.TrimSpace(name)] = true
	}
	all := want["all"]

	start := time.Now()
	runOne := func(name string, f func() error) {
		if !all && !want[name] {
			return
		}
		t0 := time.Now()
		if err := f(); err != nil {
			fatalf("%s: %v", name, err)
		}
		fmt.Fprintf(w, "(%s took %s)\n\n", name, time.Since(t0).Round(time.Millisecond))
	}

	runOne("fig1", func() error {
		t, err := experiments.Fig1(p)
		if err != nil {
			return err
		}
		emit(t)
		return nil
	})
	runOne("fig2", func() error {
		t, err := experiments.Fig2(p, nil)
		if err != nil {
			return err
		}
		emit(t)
		return nil
	})
	runOne("fig3", func() error {
		t, err := experiments.Fig3(p)
		if err != nil {
			return err
		}
		emit(t)
		return nil
	})
	runOne("fig4", func() error {
		deprecated("fig4", "the BTB-reach CDF is a walker measurement with no scheme matrix; for the BTB sizing claims themselves use `boomctl experiment` with a spec sweeping matrix.btb_entries")
		t, err := experiments.Fig4(p, 0)
		if err != nil {
			return err
		}
		emit(t)
		return nil
	})
	runOne("fig5", func() error {
		t, err := experiments.Fig5(p, nil, nil)
		if err != nil {
			return err
		}
		emit(t)
		return nil
	})
	runOne("fig789", func() error {
		f7, f8, f9, err := experiments.Figures789(p)
		if err != nil {
			return err
		}
		emit(f7, f8, f9)
		return nil
	})
	runOne("fig10", func() error {
		t, err := experiments.Fig10(p, nil)
		if err != nil {
			return err
		}
		emit(t)
		return nil
	})
	runOne("fig11", func() error {
		t, err := experiments.Fig11(p, 18)
		if err != nil {
			return err
		}
		emit(t)
		return nil
	})
	runOne("storage", func() error {
		emit(experiments.StorageTable())
		return nil
	})
	runOne("cmp", func() error {
		deprecated("cmp", "single-core claims this table is built on are machine-checked by `boomctl experiment testdata/experiments/fig8-speedup.json`; the CMP sharing model itself has no spec equivalent yet")
		t, err := experiments.CMPTable(p, 16, nil)
		if err != nil {
			return err
		}
		emit(t)
		return nil
	})
	runOne("traffic", func() error {
		t, err := experiments.TrafficTable(p)
		if err != nil {
			return err
		}
		emit(t)
		return nil
	})
	runOne("energy", func() error {
		t, err := experiments.EnergyTable(p)
		if err != nil {
			return err
		}
		emit(t)
		return nil
	})
	runOne("motivation", func() error {
		t, err := experiments.MotivationTable(p)
		if err != nil {
			return err
		}
		emit(t)
		return nil
	})
	runOne("misspolicy", func() error {
		t, err := experiments.MissPolicyTable(p)
		if err != nil {
			return err
		}
		emit(t)
		return nil
	})
	runOne("btbalt", func() error {
		t1, t2, err := experiments.BTBAlternativesTable(p)
		if err != nil {
			return err
		}
		emit(t1, t2)
		return nil
	})
	runOne("ablations", func() error {
		t1, err := experiments.AblationBTBPrefetchBuffer(p, nil)
		if err != nil {
			return err
		}
		t2, err := experiments.AblationFTQDepth(p, nil)
		if err != nil {
			return err
		}
		t3, err := experiments.AblationPredecodeScan(p, nil)
		if err != nil {
			return err
		}
		emit(t1, t2, t3)
		return nil
	})

	fmt.Fprintf(w, "total: %s\n", time.Since(start).Round(time.Millisecond))
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "experiments: "+format+"\n", args...)
	os.Exit(1)
}

// deprecated flags a figure path whose claim now has (or belongs in) a
// declarative experiment spec. The note goes to stderr so piped table
// output stays clean.
func deprecated(name, note string) {
	fmt.Fprintf(os.Stderr, "experiments: note: %s: %s (see EXPERIMENTS.md)\n", name, note)
}
