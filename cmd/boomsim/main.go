// Command boomsim runs one simulation: a control-flow-delivery scheme on a
// workload under a configurable core, and prints the headline statistics.
//
// Examples:
//
//	boomsim -scheme Boomerang -workload DB2
//	boomsim -scheme FDIP -workload Apache -btb 32768 -llc 18
//	boomsim -scheme FDIP -workload Zeus -predictor never-taken
//	boomsim -scheme Boomerang -workload Oracle -cores 16
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"boomerang/internal/config"
	"boomerang/internal/frontend"
	"boomerang/internal/scheme"
	"boomerang/internal/sim"
	"boomerang/internal/workload"
)

func main() {
	var (
		schemeName = flag.String("scheme", "Boomerang", "scheme: "+strings.Join(schemeNames(), ", "))
		wlName     = flag.String("workload", "Apache", "workload: "+strings.Join(workload.Names(), ", "))
		btb        = flag.Int("btb", 0, "override BTB entries (default Table I: 2048)")
		llc        = flag.Int("llc", 0, "override LLC round-trip latency in cycles (default 30)")
		predictor  = flag.String("predictor", "", "FDIP direction predictor: tage|bimodal|never-taken")
		warm       = flag.Uint64("warm", 300_000, "warmup instructions")
		measure    = flag.Uint64("measure", 1_000_000, "measured instructions")
		imageSeed  = flag.Uint64("image-seed", 1, "code image generation seed")
		walkSeed   = flag.Uint64("walk-seed", 1, "oracle execution seed")
		cores      = flag.Int("cores", 1, "simulate a CMP with this many cores")
		baseline   = flag.Bool("baseline", false, "also run the Base scheme and report speedup/coverage")
	)
	flag.Parse()

	s, ok := scheme.ByName(*schemeName)
	if !ok {
		fatalf("unknown scheme %q (have: %s)", *schemeName, strings.Join(schemeNames(), ", "))
	}
	w, ok := workload.ByName(*wlName)
	if !ok {
		fatalf("unknown workload %q (have: %s)", *wlName, strings.Join(workload.Names(), ", "))
	}

	spec := sim.DefaultSpec(s, w)
	spec.Cfg = config.Default()
	if *btb > 0 {
		spec.Cfg = spec.Cfg.WithBTB(*btb)
	}
	if *llc > 0 {
		spec.Cfg = spec.Cfg.WithLLCLatency(*llc)
	}
	spec.Predictor = *predictor
	spec.WarmInstrs = *warm
	spec.MeasureInstrs = *measure
	spec.ImageSeed = *imageSeed
	spec.WalkSeed = *walkSeed

	if *cores > 1 {
		runCMP(spec, *cores)
		return
	}

	r, err := sim.Run(spec)
	if err != nil {
		fatalf("%v", err)
	}
	printResult(r)

	if *baseline {
		bspec := spec
		bspec.Scheme = scheme.Base()
		b, err := sim.Run(bspec)
		if err != nil {
			fatalf("baseline: %v", err)
		}
		fmt.Printf("\nvs Base (IPC %.3f):\n", b.IPC)
		fmt.Printf("  speedup             %.3fx\n", sim.Speedup(b, r))
		fmt.Printf("  stall cycle coverage %.1f%%\n", 100*sim.Coverage(b, r))
	}
}

func runCMP(spec sim.Spec, cores int) {
	res, err := sim.RunCMP(sim.CMPSpec{Spec: spec, Cores: cores})
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("%s on %s, %d cores\n", spec.Scheme.Name, spec.Workload.Name, cores)
	fmt.Printf("  chip throughput      %.3f instructions/cycle\n", res.Throughput)
	var minIPC, maxIPC float64
	for i, r := range res.PerCore {
		if i == 0 || r.IPC < minIPC {
			minIPC = r.IPC
		}
		if r.IPC > maxIPC {
			maxIPC = r.IPC
		}
	}
	fmt.Printf("  per-core IPC         %.3f .. %.3f\n", minIPC, maxIPC)
}

func printResult(r sim.Result) {
	st := r.Stats
	fmt.Printf("%s on %s\n", r.SchemeName, r.WorkloadName)
	fmt.Printf("  instructions retired %d in %d cycles (IPC %.3f)\n",
		st.RetiredInstrs, st.Cycles, r.IPC)
	fmt.Printf("  fetch stall cycles   %d (%.1f%% of cycles)\n",
		st.FetchStallCycles, 100*st.StallFraction())
	fmt.Printf("  stalls by class      seq=%d cond=%d uncond=%d\n",
		st.StallByClass[0], st.StallByClass[1], st.StallByClass[2])
	fmt.Printf("  squashes/kilo-instr  mispredict=%.2f btb-miss=%.2f\n",
		st.MispredictSquashesPerKI(), st.SquashesPerKI(frontend.SquashBTBMiss))
	fmt.Printf("  BTB miss rate        %.2f%% (%d/%d lookups)\n",
		100*st.BTBMissRate(), st.BTBMisses, st.BTBLookups)
	fmt.Printf("  L1-I demand misses   %.2f MPKI\n",
		float64(st.DemandLineMisses)*1000/float64(st.RetiredInstrs))
	fmt.Printf("  hierarchy            prefetches=%d LLC accesses=%d LLC misses=%d\n",
		r.Hier.Prefetches, r.Hier.LLCAccesses, r.Hier.LLCMisses)
}

func schemeNames() []string {
	return []string{"Base", "Next Line", "DIP", "FDIP", "PIF", "SHIFT",
		"Confluence", "Boomerang", "Perfect L1-I", "Perfect L1-I + BTB"}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "boomsim: "+format+"\n", args...)
	os.Exit(1)
}
