// Command boomsim runs one simulation: a control-flow-delivery scheme on a
// workload under a configurable core, and prints the headline statistics.
// It consumes only the public boomsim API; Ctrl-C cancels a run cleanly
// through the context.
//
// Examples:
//
//	boomsim -scheme Boomerang -workload DB2
//	boomsim -scheme FDIP -workload Apache -btb 32768 -llc 18
//	boomsim -scheme FDIP -workload Zeus -predictor never-taken
//	boomsim -scheme Boomerang -workload Oracle -cores 16
//	boomsim -scheme Boomerang -workload Apache -json
//	boomsim -scheme-file my-scheme.json -workload DB2 -stats
//	boomsim -remote http://sim-1:8080 -scheme FDIP -workload DB2
//	boomsim -remote http://sim-1:8080 -scheme-file my-scheme.json
//	boomsim -scheme Boomerang -workload Apache -flight-every 50000 -json
//	boomsim -scheme Boomerang -workload Apache -trace-out run.trace.json
//	boomsim -list
//
// Observability: -flight-every attaches the simulator flight recorder at
// that epoch granularity (cycles); -json results then carry per-epoch
// windowed counters (fetch bubbles, BTB misses, prefetch activity,
// squashes), and text output summarises the epochs. -trace-out writes the
// run (and its -baseline, when asked) as Chrome trace_event JSON loadable
// in Perfetto or chrome://tracing.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strings"

	"boomsim"
	"boomsim/internal/cluster"
	"boomsim/internal/wire"
)

func main() {
	var (
		schemeName  = flag.String("scheme", "Boomerang", "scheme: "+strings.Join(schemeNames(), ", "))
		wlName      = flag.String("workload", "Apache", "workload: "+strings.Join(workloadNames(), ", "))
		btb         = flag.Int("btb", 0, "override BTB entries (default Table I: 2048)")
		llc         = flag.Int("llc", 0, "override LLC round-trip latency in cycles (default 30)")
		predictor   = flag.String("predictor", "", "FDIP direction predictor: tage|bimodal|never-taken")
		warm        = flag.Uint64("warm", 300_000, "warmup instructions")
		measure     = flag.Uint64("measure", 1_000_000, "measured instructions")
		imageSeed   = flag.Uint64("image-seed", 1, "code image generation seed")
		walkSeed    = flag.Uint64("walk-seed", 1, "oracle execution seed")
		cores       = flag.Int("cores", 1, "simulate a CMP with this many cores")
		baseline    = flag.Bool("baseline", false, "also run the Base scheme and report speedup/coverage")
		jsonOut     = flag.Bool("json", false, "emit the result as JSON instead of text")
		list        = flag.Bool("list", false, "list registered schemes and workloads, then exit")
		remote      = flag.String("remote", "", "run on a boomsimd at this base URL instead of locally (implies -json output)")
		schemeFile  = flag.String("scheme-file", "", "run a custom declarative scheme from this JSON file instead of -scheme (see EXPERIMENTS.md)")
		showStats   = flag.Bool("stats", false, "also print the full per-component statistics registry, grouped by namespace")
		flightEvery = flag.Int64("flight-every", 0, "attach the simulator flight recorder at this epoch granularity in cycles (0 = off)")
		traceOut    = flag.String("trace-out", "", "write the run as Chrome trace_event JSON (load in Perfetto or chrome://tracing)")
		noSkip      = flag.Bool("no-skip", false, "disable event-horizon cycle skipping (per-cycle control run; results are byte-identical)")
	)
	flag.Parse()

	if *list {
		printRegistry()
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	// A custom declarative scheme loads once and substitutes for -scheme
	// everywhere (local runs, remote runs, the CMP harness).
	var customScheme *boomsim.SchemeConfig
	if *schemeFile != "" {
		cfg, err := boomsim.LoadSchemeConfig(*schemeFile)
		if err != nil {
			fatalf("%v", err)
		}
		customScheme = &cfg
	}

	if *remote != "" {
		if *cores > 1 || *baseline {
			fatalf("-remote supports single runs only (no -cores/-baseline)")
		}
		if *traceOut != "" {
			fatalf("-trace-out traces local runs; remote sweeps are traced by boomctl")
		}
		req := wire.RunRequest{
			Scheme:     *schemeName,
			Workload:   *wlName,
			Predictor:  *predictor,
			BTBEntries: *btb,
			LLCLatency: *llc,
			ImageSeed:  imageSeed, WalkSeed: walkSeed,
			WarmInstrs: warm, MeasureInstrs: measure,
			FlightEvery: *flightEvery,
			NoCycleSkip: *noSkip,
		}
		if customScheme != nil {
			raw, err := json.Marshal(customScheme)
			if err != nil {
				fatalf("encoding scheme config: %v", err)
			}
			req.Scheme = ""
			req.SchemeConfig = raw
		}
		runRemote(ctx, *remote, req)
		return
	}

	newSim := func(scheme string) (*boomsim.Simulation, error) {
		opts := []boomsim.Option{
			boomsim.WithScheme(scheme),
			boomsim.WithWorkload(*wlName),
			boomsim.WithPredictor(*predictor),
			boomsim.WithWindow(*warm, *measure),
			boomsim.WithSeeds(*imageSeed, *walkSeed),
		}
		if customScheme != nil && scheme != "Base" {
			opts = append(opts, boomsim.WithSchemeConfig(*customScheme))
		}
		if *btb > 0 {
			opts = append(opts, boomsim.WithBTBEntries(*btb))
		}
		if *llc > 0 {
			opts = append(opts, boomsim.WithLLCLatency(*llc))
		}
		if *flightEvery > 0 {
			opts = append(opts, boomsim.WithFlightRecorder(*flightEvery))
		}
		if *noSkip {
			opts = append(opts, boomsim.WithCycleSkip(false))
		}
		return boomsim.New(opts...)
	}

	s, err := newSim(*schemeName)
	if err != nil {
		fatalf("%v", err)
	}

	if *cores > 1 {
		if *traceOut != "" {
			fatalf("-trace-out supports single-core runs only")
		}
		runCMP(ctx, s, *cores, *jsonOut)
		return
	}

	// With -trace-out even a single run goes through RunMatrix, which is
	// where span recording lives; results are identical either way.
	var trace *boomsim.Trace
	runOne := func(s *boomsim.Simulation) (boomsim.Result, error) {
		if trace == nil {
			return s.Run(ctx)
		}
		rs, err := boomsim.RunMatrix(ctx, []*boomsim.Simulation{s}, boomsim.WithMatrixTrace(trace))
		if err != nil {
			return boomsim.Result{}, err
		}
		return rs[0], nil
	}
	if *traceOut != "" {
		trace = boomsim.NewTrace()
	}
	writeTrace := func() {
		if trace == nil {
			return
		}
		f, err := os.Create(*traceOut)
		if err != nil {
			fatalf("-trace-out: %v", err)
		}
		if err := trace.WriteChromeTrace(f); err != nil {
			fatalf("writing trace: %v", err)
		}
		if err := f.Close(); err != nil {
			fatalf("writing trace: %v", err)
		}
		fmt.Fprintf(os.Stderr, "boomsim: wrote %d spans to %s — load it at ui.perfetto.dev\n",
			trace.Len(), *traceOut)
	}

	r, err := runOne(s)
	if err != nil {
		fatalf("%v", err)
	}
	if *jsonOut && !*baseline {
		emitJSON(r)
		writeTrace()
		return
	}
	if !*jsonOut {
		printResult(r)
		if len(r.Epochs) > 0 {
			printEpochs(r, *flightEvery)
		}
		if *showStats {
			printStats(r)
		}
	}

	if *baseline {
		bs, err := newSim("Base")
		if err != nil {
			fatalf("baseline: %v", err)
		}
		b, err := runOne(bs)
		if err != nil {
			fatalf("baseline: %v", err)
		}
		if *jsonOut {
			emitJSON(struct {
				Result   boomsim.Result `json:"result"`
				Baseline boomsim.Result `json:"baseline"`
				Speedup  float64        `json:"speedup"`
				Coverage float64        `json:"coverage"`
			}{r, b, boomsim.Speedup(b, r), boomsim.Coverage(b, r)})
			writeTrace()
			return
		}
		fmt.Printf("\nvs Base (IPC %.3f):\n", b.IPC)
		fmt.Printf("  speedup             %.3fx\n", boomsim.Speedup(b, r))
		fmt.Printf("  stall cycle coverage %.1f%%\n", 100*boomsim.Coverage(b, r))
	}
	writeTrace()
}

// printEpochs summarises the flight recorder's windowed counters: the
// best- and worst-IPC epochs bracket how much the run's behaviour moves
// within the measurement window — the time-resolved view a single
// end-of-run average hides.
func printEpochs(r boomsim.Result, every int64) {
	worst, best := -1, -1
	var worstIPC, bestIPC float64
	for i, e := range r.Epochs {
		if e.Cycles == 0 {
			continue
		}
		ipc := float64(e.Instructions) / float64(e.Cycles)
		if worst < 0 || ipc < worstIPC {
			worst, worstIPC = i, ipc
		}
		if best < 0 || ipc > bestIPC {
			best, bestIPC = i, ipc
		}
	}
	fmt.Printf("  flight recorder      %d epochs of %d cycles\n", len(r.Epochs), every)
	if worst >= 0 {
		we, be := r.Epochs[worst], r.Epochs[best]
		fmt.Printf("    worst epoch        #%d IPC %.3f (cycle %d, %d BTB misses, %d squashes)\n",
			worst, worstIPC, we.StartCycle, we.BTBMisses, we.Squashes)
		fmt.Printf("    best epoch         #%d IPC %.3f (cycle %d, %d prefetch hits)\n",
			best, bestIPC, be.StartCycle, be.PrefetchHits)
	}
}

// runRemote posts the configuration to a boomsimd's /v1/run through the
// shared retrying client — transport errors and 429 backpressure (with its
// Retry-After hint) are retried with jittered backoff — and prints the
// response JSON verbatim.
func runRemote(ctx context.Context, base string, req wire.RunRequest) {
	body, err := json.Marshal(req)
	if err != nil {
		fatalf("encoding request: %v", err)
	}
	client := &cluster.RetryClient{}
	raw, err := client.PostJSON(ctx, strings.TrimRight(base, "/")+"/v1/run", body)
	if err != nil {
		fatalf("remote run: %v", err)
	}
	os.Stdout.Write(raw)
	if len(raw) > 0 && raw[len(raw)-1] != '\n' {
		fmt.Println()
	}
}

func runCMP(ctx context.Context, s *boomsim.Simulation, cores int, jsonOut bool) {
	res, err := s.RunCMP(ctx, cores)
	if err != nil {
		fatalf("%v", err)
	}
	if jsonOut {
		emitJSON(res)
		return
	}
	fmt.Printf("%s on %s, %d cores\n", s.Scheme().Name, s.Workload().Name, cores)
	fmt.Printf("  chip throughput      %.3f instructions/cycle\n", res.Throughput)
	var minIPC, maxIPC float64
	for i, r := range res.PerCore {
		if i == 0 || r.IPC < minIPC {
			minIPC = r.IPC
		}
		if r.IPC > maxIPC {
			maxIPC = r.IPC
		}
	}
	fmt.Printf("  per-core IPC         %.3f .. %.3f\n", minIPC, maxIPC)
}

func printResult(r boomsim.Result) {
	fmt.Printf("%s on %s\n", r.Scheme, r.Workload)
	fmt.Printf("  instructions retired %d in %d cycles (IPC %.3f)\n",
		r.Instructions, r.Cycles, r.IPC)
	fmt.Printf("  fetch stall cycles   %d (%.1f%% of cycles)\n",
		r.FetchStallCycles, 100*r.StallFraction)
	fmt.Printf("  stalls by class      seq=%d cond=%d uncond=%d\n",
		r.StallCycles.Sequential, r.StallCycles.Conditional, r.StallCycles.Unconditional)
	fmt.Printf("  squashes/kilo-instr  mispredict=%.2f btb-miss=%.2f\n",
		r.MispredictSquashesPerKI, r.BTBMissSquashesPerKI)
	fmt.Printf("  BTB miss rate        %.2f%% (%d/%d lookups)\n",
		100*r.BTBMissRate, r.BTBMisses, r.BTBLookups)
	fmt.Printf("  L1-I demand misses   %.2f MPKI\n", r.L1IMissesPerKI)
	fmt.Printf("  hierarchy            prefetches=%d LLC accesses=%d LLC misses=%d\n",
		r.Prefetches, r.LLCAccesses, r.LLCMisses)
	fmt.Printf("  scheme metadata      %.2f KB/core\n", r.StorageOverheadKB)
}

// printStats renders the full per-component registry grouped by namespace:
// every counter each component registered, not just the headline fields.
func printStats(r boomsim.Result) {
	names := make([]string, 0, len(r.Stats))
	for n := range r.Stats {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Println("\nper-component stats:")
	lastNS := ""
	for _, n := range names {
		ns, rest, _ := strings.Cut(n, ".")
		if ns != lastNS {
			fmt.Printf("  [%s]\n", ns)
			lastNS = ns
		}
		fmt.Printf("    %-40s %g\n", rest, r.Stats[n])
	}
}

func printRegistry() {
	fmt.Println("schemes:")
	for _, s := range boomsim.Schemes() {
		fmt.Printf("  %-22s %7.2f KB  %s\n", s.Name, s.StorageOverheadKB, s.Description)
	}
	fmt.Println("workloads:")
	for _, w := range boomsim.Workloads() {
		fmt.Printf("  %-22s %5d KB  %s\n", w.Name, w.FootprintKB, w.Description)
	}
}

func emitJSON(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fatalf("encoding JSON: %v", err)
	}
}

func schemeNames() []string {
	infos := boomsim.Schemes()
	out := make([]string, len(infos))
	for i, s := range infos {
		out[i] = s.Name
	}
	return out
}

func workloadNames() []string {
	infos := boomsim.Workloads()
	out := make([]string, len(infos))
	for i, w := range infos {
		out[i] = w.Name
	}
	return out
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "boomsim: "+format+"\n", args...)
	os.Exit(1)
}
