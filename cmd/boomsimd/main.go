// Command boomsimd serves simulations over HTTP: the public boomsim API
// wrapped in a cached, batched, backpressured service.
//
// Endpoints:
//
//	POST /v1/run       one configuration -> JSON result (content-cached)
//	POST /v1/matrix    batch of configurations -> order-stable results,
//	                   executed as one all-or-nothing flight
//	POST /v1/jobs      batch of independent jobs -> per-job results and
//	                   per-job errors (429 carries retry_after_ms); the
//	                   endpoint the boomctl cluster coordinator speaks
//	GET  /v1/schemes   registered schemes
//	GET  /v1/workloads registered workloads
//	GET  /healthz      liveness + build/version and current load
//	                   (in-flight sims, queued flights, capacities) for
//	                   coordinator placement decisions; 503 while draining
//	GET  /metrics      Prometheus text: requests, cache hits, in-flight
//	                   sims, queue depth, ns/instr
//
// Example:
//
//	boomsimd -addr :8080 -workers 8 -queue 64
//	boomsimd -addr :8080 -store /var/lib/boomsim/results
//	boomsimd -addr :8080 -log-level debug -debug-addr localhost:6060
//	curl -s localhost:8080/v1/run -d '{"scheme":"Boomerang","workload":"DB2"}'
//
// With -store, results are also written to a disk-backed content-addressed
// store under the in-memory cache: a restarted worker starts warm, and
// entries that fail their integrity check are quarantined and recomputed,
// never served.
//
// Observability: lifecycle events (request/job settlement, store
// quarantines and GC, drain) are structured logs on stderr — -log-level
// picks the floor (debug shows per-job settlement with the client's
// trace_id). -debug-addr serves net/http/pprof on a separate listener kept
// off the public API surface; point it at localhost and
// `go tool pprof http://localhost:6060/debug/pprof/profile` works as usual.
//
// SIGINT/SIGTERM drains gracefully: queued and running simulations are
// canceled through boomsim's cooperative-cancellation path, in-flight HTTP
// responses are flushed, and the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"boomsim/internal/obs"
	"boomsim/internal/server"
	"boomsim/internal/store"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		workers   = flag.Int("workers", 0, "max concurrent simulations (0 = GOMAXPROCS)")
		queue     = flag.Int("queue", 0, "max queued+running flights before 429 (0 = 4x workers)")
		cache     = flag.Int("cache", 0, "result cache entries (0 = 4096)")
		storeDir  = flag.String("store", "", "durable result store directory (empty = memory-only cache)")
		storeMax  = flag.Int64("store-max-bytes", 0, "byte cap for the durable store, oldest entries evicted (0 = unbounded)")
		timeout   = flag.Duration("timeout", 0, "per-request deadline cap (0 = 5m)")
		grace     = flag.Duration("grace", 10*time.Second, "shutdown grace period for in-flight HTTP responses")
		logLevel  = flag.String("log-level", "info", "log floor: debug, info, warn or error")
		debugAddr = flag.String("debug-addr", "", "serve net/http/pprof on this address (empty = disabled; keep it on localhost)")
		noSkip    = flag.Bool("no-skip", false, "force the per-cycle simulation loop for every request (control worker; results are byte-identical)")
	)
	flag.Parse()

	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fatalf("%v", err)
	}
	logger := obs.NewLogger(os.Stderr, level)

	cfg := server.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		CacheEntries:   *cache,
		RequestTimeout: *timeout,
		Logger:         logger,
		NoCycleSkip:    *noSkip,
	}
	if *storeDir != "" {
		st, err := store.Open(*storeDir, store.Options{MaxBytes: *storeMax, Logger: logger})
		if err != nil {
			fatalf("opening result store: %v", err)
		}
		cfg.Store = st
		ss := st.Stats()
		logger.Info("result store recovered",
			"dir", *storeDir, "entries", ss.Entries, "bytes", ss.Bytes)
	}
	srv := server.New(cfg)
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	if *debugAddr != "" {
		// pprof rides its own mux and listener: the profiling surface never
		// leaks onto the public API address, and binding it to localhost
		// keeps it operator-only.
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		dbg := &http.Server{Addr: *debugAddr, Handler: dmux, ReadHeaderTimeout: 10 * time.Second}
		go func() {
			if err := dbg.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("debug listener failed", "addr", *debugAddr, "err", err)
			}
		}()
		logger.Info("pprof debug listener on", "addr", *debugAddr)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	logger.Info("boomsimd listening", "addr", *addr)

	select {
	case err := <-errCh:
		fatalf("serving: %v", err)
	case <-ctx.Done():
	}

	// Drain: cancel simulations first so blocked handlers respond promptly,
	// then let in-flight HTTP responses flush within the grace period.
	logger.Info("signal received; draining", "grace", *grace)
	srv.Close()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fatalf("shutdown: %v", err)
	}
	stats := srv.Stats()
	logger.Info("drained",
		"requests", stats.Requests, "sims", stats.SimsStarted,
		"cache_hits", stats.CacheHits, "ns_per_instr", fmt.Sprintf("%.0f", stats.NsPerInstr()))
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "boomsimd: "+format+"\n", args...)
	os.Exit(1)
}
