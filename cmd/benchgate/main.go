// Command benchgate turns `go test -bench` output into the repo's recorded
// performance trajectory and gates regressions in CI.
//
// It parses benchmark output on stdin (or -in), extracts the headline
// simulation-speed metrics from BenchmarkSimulatorThroughput — simulated
// MIPS, its reciprocal ns/instr, and the hot loop's allocs/op — and the full
// 18x7 sweep wall-clock from BenchmarkMatrix18x7 (matrix_ms), plus every
// custom metric of every other benchmark, and writes them to BENCH_<pr>.json
// in -dir. The earlier BENCH_<n>.json (highest n below -pr) is the gate's
// baseline: benchgate compares ns/instr against it (exiting non-zero on a
// regression beyond -threshold, default 10%) and matrix_ms (beyond
// -matrix-threshold, default 30% — wall-clock over a whole sweep is noisier
// than the steady-state loop), so the perf trajectory is both populated and
// enforced by the same step. A missing or unparsable baseline is itself a
// hard failure — a broken trajectory must never silently gate on nothing —
// except under -first, which acknowledges the repo's first recorded PR.
//
// The headline must come from a steady-state run: the throughput benchmark
// warms up before its timer starts and reports setup cost separately
// (setup_ms, recorded alongside the headline), but at -benchtime=1x the
// timed loop is a floor-sized probe dominated by timer granularity. Gate on
// a long measured loop, appended last so its numbers take precedence over
// any 1x probe in the same stream:
//
//	go test -run '^$' -bench . -benchtime=1x -benchmem . > out.txt
//	go test -run '^$' -bench SimulatorThroughput -benchtime=2000000x -benchmem . >> out.txt
//	benchgate -pr 6 -in out.txt
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Record is one PR's recorded performance point.
type Record struct {
	PR int `json:"pr"`
	// CPU is the `cpu:` line of the benchmark run. ns/instr is only
	// comparable between equal machines, so the gate skips (with a notice)
	// when the previous record came from different hardware.
	CPU string `json:"cpu,omitempty"`
	// MIPS is BenchmarkSimulatorThroughput's simulated million instructions
	// per wall-clock second measured over the steady-state loop only (setup
	// and warm-up run before the benchmark timer starts); NsPerInstr is its
	// reciprocal, the repo's headline cost metric (see
	// internal/server/metrics.go NsPerInstr).
	MIPS       float64 `json:"mips"`
	NsPerInstr float64 `json:"ns_per_instr"`
	// SetupMillis is the one-time cost the steady-state loop excludes —
	// image generation, scheme construction and the warm window — recorded
	// so cold-start regressions stay visible without polluting the gate.
	SetupMillis float64 `json:"setup_ms,omitempty"`
	// AllocsPerOp pins the measured loop's zero-allocation contract.
	AllocsPerOp float64 `json:"allocs_per_op"`
	// MatrixMillis is BenchmarkMatrix18x7's mean wall-clock (ms) for one
	// full 18-scheme x 7-workload RunMatrix at fixed parallelism with warm
	// reuse on — the sweep-level headline the snapshot/fork plane optimises,
	// complementing the per-instruction steady-state cost above.
	MatrixMillis float64 `json:"matrix_ms,omitempty"`
	// Metrics holds every parsed "<benchmark>/<unit>" value for trajectory
	// analysis beyond the headline (figure-level custom metrics included).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	var (
		pr         = flag.Int("pr", 0, "PR number to record under (required; output file is BENCH_<pr>.json)")
		in         = flag.String("in", "", "benchmark output file (default stdin)")
		dir        = flag.String("dir", ".", "directory holding BENCH_*.json records")
		threshold  = flag.Float64("threshold", 0.10, "maximum tolerated ns/instr regression vs the previous record")
		matrixThr  = flag.Float64("matrix-threshold", 0.30, "maximum tolerated matrix_ms regression vs the previous record")
		recordOnly = flag.Bool("record-only", false, "write the record but never fail on regression (push-to-main runs)")
		first      = flag.Bool("first", false, "allow a missing previous record (only for the repo's first recorded PR)")
	)
	flag.Parse()
	if *pr <= 0 {
		fatalf("-pr is required and must be positive")
	}

	src := io.Reader(os.Stdin)
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		src = f
	}
	rec, err := parse(src)
	if err != nil {
		fatalf("%v", err)
	}
	rec.PR = *pr

	out, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		fatalf("%v", err)
	}
	out = append(out, '\n')
	path := filepath.Join(*dir, fmt.Sprintf("BENCH_%d.json", *pr))
	if err := os.WriteFile(path, out, 0o644); err != nil {
		fatalf("%v", err)
	}
	fmt.Fprintf(os.Stderr, "benchgate: wrote %s (steady loop %.1f MIPS, %.1f ns/instr, %g allocs/op; setup %.0f ms)\n",
		path, rec.MIPS, rec.NsPerInstr, rec.AllocsPerOp, rec.SetupMillis)

	prev, ok, err := previous(*dir, *pr)
	if err != nil {
		// A baseline that exists but cannot be read or parsed is a broken
		// trajectory, not an absent one — gating on nothing here would let
		// regressions slide in silently behind a corrupt file.
		fatalf("loading previous record: %v", err)
	}
	if !ok {
		// Likewise a missing baseline: every PR after the first must have a
		// predecessor record checked in, so "nothing to gate against" means
		// the trajectory went dark. Fail loudly; -first acknowledges the one
		// legitimate case (the repo's very first recorded PR).
		if *first {
			fmt.Fprintln(os.Stderr, "benchgate: no previous record (-first); recording without a gate")
			return
		}
		fatalf("no previous BENCH_<n>.json below PR %d in %s: the bench trajectory is broken (pass -first only for the repo's first recorded PR)", *pr, *dir)
	}
	// Wall-clock metrics measured on different hardware gate the machine,
	// not the code; record the point and report, but do not fail.
	if prev.CPU != rec.CPU {
		fmt.Fprintf(os.Stderr, "benchgate: previous record is from different hardware (%q vs %q); skipping the gates\n",
			prev.CPU, rec.CPU)
		return
	}
	failed := false
	gate := func(metric string, prevV, curV, thr float64) {
		if prevV <= 0 || curV <= 0 {
			fmt.Fprintf(os.Stderr, "benchgate: missing %s on one side; skipping its gate\n", metric)
			return
		}
		ratio := curV/prevV - 1
		fmt.Fprintf(os.Stderr, "benchgate: %s %.2f -> %.2f vs PR %d (%+.1f%%)\n",
			metric, prevV, curV, prev.PR, 100*ratio)
		switch {
		case *recordOnly:
			fmt.Fprintln(os.Stderr, "benchgate: record-only mode; not gating")
		case ratio > thr:
			fmt.Fprintf(os.Stderr, "benchgate: %s regressed %.1f%% vs PR %d (threshold %.0f%%)\n",
				metric, 100*ratio, prev.PR, 100*thr)
			failed = true
		}
	}
	gate("ns/instr", prev.NsPerInstr, rec.NsPerInstr, *threshold)
	gate("matrix_ms", prev.MatrixMillis, rec.MatrixMillis, *matrixThr)
	if failed {
		os.Exit(1)
	}
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+(.*)$`)

// parse extracts every "value unit" metric pair from benchmark output.
func parse(r io.Reader) (Record, error) {
	rec := Record{Metrics: map[string]float64{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if cpu, ok := strings.CutPrefix(sc.Text(), "cpu: "); ok {
			rec.CPU = strings.TrimSpace(cpu)
			continue
		}
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		name := strings.TrimPrefix(m[1], "Benchmark")
		if i := strings.IndexByte(name, '-'); i > 0 {
			name = name[:i] // strip the -GOMAXPROCS suffix
		}
		fields := strings.Fields(m[2])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			rec.Metrics[name+"/"+fields[i+1]] = v
		}
	}
	if err := sc.Err(); err != nil {
		return rec, err
	}
	if len(rec.Metrics) == 0 {
		return rec, fmt.Errorf("no benchmark lines found in input")
	}
	if mips, ok := rec.Metrics["SimulatorThroughput/MIPS"]; ok && mips > 0 {
		rec.MIPS = mips
		rec.NsPerInstr = 1000 / mips
	}
	if allocs, ok := rec.Metrics["SimulatorThroughput/allocs/op"]; ok {
		rec.AllocsPerOp = allocs
	}
	if setup, ok := rec.Metrics["SimulatorThroughput/setup_ms"]; ok {
		rec.SetupMillis = setup
	}
	if ms, ok := rec.Metrics["Matrix18x7/matrix_ms"]; ok {
		rec.MatrixMillis = ms
	}
	return rec, nil
}

// previous loads the highest-numbered BENCH_<n>.json with n < pr.
func previous(dir string, pr int) (Record, bool, error) {
	entries, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return Record{}, false, err
	}
	sort.Strings(entries)
	best, found := Record{}, false
	for _, path := range entries {
		base := strings.TrimSuffix(strings.TrimPrefix(filepath.Base(path), "BENCH_"), ".json")
		n, err := strconv.Atoi(base)
		if err != nil || n >= pr {
			continue
		}
		if found && n <= best.PR {
			continue
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			return Record{}, false, err
		}
		var rec Record
		if err := json.Unmarshal(raw, &rec); err != nil {
			return Record{}, false, fmt.Errorf("%s: %w", path, err)
		}
		if rec.PR == 0 {
			rec.PR = n
		}
		best, found = rec, true
	}
	return best, found, nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchgate: "+format+"\n", args...)
	os.Exit(1)
}
