// Command boomtrace inspects and records the workload substrate: static
// code-image statistics, dynamic execution properties (the quantities the
// profiles are calibrated against), and compact control-flow traces that can
// be replayed into the simulator.
//
// Examples:
//
//	boomtrace -workload DB2 -info
//	boomtrace -workload Apache -dynamic -steps 500000
//	boomtrace -workload Zeus -record zeus.trc -steps 2000000
//	boomtrace -workload Zeus -verify zeus.trc
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"boomsim"
	"boomsim/internal/isa"
	"boomsim/internal/program"
	"boomsim/internal/trace"
)

func main() {
	var (
		wlName  = flag.String("workload", "Apache", "workload profile")
		seed    = flag.Uint64("image-seed", 1, "code image seed")
		walk    = flag.Uint64("walk-seed", 1, "execution seed")
		steps   = flag.Uint64("steps", 200_000, "basic blocks to execute")
		info    = flag.Bool("info", false, "print static image statistics")
		dynamic = flag.Bool("dynamic", false, "print dynamic execution statistics")
		record  = flag.String("record", "", "record a trace to this file")
		verify  = flag.String("verify", "", "verify a trace file replays against this workload")
	)
	flag.Parse()

	w, err := boomsim.LookupWorkload(*wlName)
	if err != nil {
		fatalf("%v", err)
	}
	img, err := boomsim.BuildImage(*wlName, *seed)
	if err != nil {
		fatalf("%v", err)
	}

	ran := false
	if *info {
		ran = true
		st := img.ComputeStats()
		fmt.Printf("%s — %s\n", w.Name, w.Description)
		fmt.Printf("  text segment   %d KB (%#x .. %#x)\n", img.Bytes()/1024, img.Base, img.Limit)
		fmt.Printf("  functions      %d across %d layers\n", st.Functions, img.Modules)
		fmt.Printf("  basic blocks   %d (mean %.2f instructions)\n", st.Blocks, st.MeanBlock)
		fmt.Printf("  branch mix     cond=%d jump=%d call=%d ret=%d ijump=%d icall=%d\n",
			st.ByKind[isa.CondDirect], st.ByKind[isa.UncondDirect], st.ByKind[isa.CallDirect],
			st.ByKind[isa.Return], st.ByKind[isa.IndirectJump], st.ByKind[isa.IndirectCall])
	}

	if *dynamic {
		ran = true
		wk := program.NewWalker(img, *walk)
		st := program.Measure(wk, *steps, 9)
		fmt.Printf("%s dynamic over %d blocks (%d instructions):\n", w.Name, st.Steps, st.Instrs)
		fmt.Printf("  mean block       %.2f instructions\n", float64(st.Instrs)/float64(st.Steps))
		fmt.Printf("  conditionals     %d (%.1f%% taken)\n", st.CondBranches,
			100*float64(st.TakenConds)/float64(st.CondBranches))
		fmt.Printf("  calls/returns    %d/%d (max depth %d)\n", st.Calls, st.Returns, wk.MaxCallDepthSeen())
		fmt.Printf("  touched code     %d KB\n", st.TouchedLines*64/1024)
		cdf := program.CDF(st.TakenCondDist)
		fmt.Printf("  taken-cond CDF   <=1 block %.2f, <=4 blocks %.2f (Figure 4)\n", cdf[1], cdf[4])
	}

	if *record != "" {
		ran = true
		f, err := os.Create(*record)
		if err != nil {
			fatalf("%v", err)
		}
		n, err := trace.Record(img, *walk, *steps, f)
		if err2 := f.Close(); err == nil {
			err = err2
		}
		if err != nil {
			fatalf("record: %v", err)
		}
		fi, _ := os.Stat(*record)
		fmt.Printf("recorded %d blocks to %s (%.2f bytes/block)\n",
			n, *record, float64(fi.Size())/float64(n))
	}

	if *verify != "" {
		ran = true
		f, err := os.Open(*verify)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		r, err := trace.NewReader(f, img)
		if err != nil {
			fatalf("verify: %v", err)
		}
		wk := program.NewWalker(img, *walk)
		for {
			got, err := r.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				fatalf("verify: %v", err)
			}
			want := wk.Next()
			if got.Block != want.Block || got.Taken != want.Taken || got.Target != want.Target {
				fatalf("verify: divergence at block %d", r.Count())
			}
		}
		fmt.Printf("trace verified: %d blocks match walk seed %d\n", r.Count(), *walk)
	}

	if !ran {
		fmt.Fprintln(os.Stderr, "nothing to do: pass -info, -dynamic, -record or -verify")
		flag.Usage()
		os.Exit(2)
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "boomtrace: "+format+"\n", args...)
	os.Exit(1)
}
