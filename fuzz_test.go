package boomsim_test

import (
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"testing"
	"time"

	"boomsim"
)

// FuzzNew throws arbitrary scheme/workload names and option values at the
// constructor. The contract under fuzz: New never panics, and either
// returns one of the typed sentinel errors or a fully usable Simulation
// (metadata, canonical key and fingerprint all well-defined). Small
// configurations are additionally executed so the engine itself sees
// adversarial-but-valid inputs.
func FuzzNew(f *testing.F) {
	f.Add("Boomerang", "Apache", "tage", 2048, 30, 64, uint64(1), uint64(1), uint64(200), uint64(1000), int64(0))
	f.Add("", "", "", 0, 0, 0, uint64(0), uint64(0), uint64(0), uint64(0), int64(0))
	f.Add("FDIP", "DB2", "never-taken", -1, -5, 16, uint64(99), uint64(7), uint64(0), uint64(500), int64(-3))
	f.Add("no such scheme", "no such workload", "oracle", 1, 1, 1, uint64(1), uint64(1), uint64(1), uint64(1), int64(1))
	f.Add("Boomerang-N2", "SPEC-like", "bimodal", 512, 18, 32, uint64(3), uint64(5), uint64(100), uint64(2000), int64(100000))

	f.Fuzz(func(t *testing.T, schemeName, workloadName, predictor string,
		btb, llc, footprint int, imageSeed, walkSeed, warm, measure uint64, maxCycles int64,
	) {
		opts := []boomsim.Option{
			boomsim.WithSeeds(imageSeed, walkSeed),
			boomsim.WithWindow(warm, measure),
			boomsim.WithMaxCycles(maxCycles),
			boomsim.WithFootprintKB(footprint),
			boomsim.WithPredictor(predictor),
		}
		// Zero means "keep the default" on the wire (see boomsimd's
		// RunRequest); nonzero values — including invalid negatives — go
		// through the option so its validation is fuzzed too.
		if btb != 0 {
			opts = append(opts, boomsim.WithBTBEntries(btb))
		}
		if llc != 0 {
			opts = append(opts, boomsim.WithLLCLatency(llc))
		}
		if schemeName != "" {
			opts = append(opts, boomsim.WithScheme(schemeName))
		}
		if workloadName != "" {
			opts = append(opts, boomsim.WithWorkload(workloadName))
		}
		s, err := boomsim.New(opts...)
		if err != nil {
			if !errors.Is(err, boomsim.ErrUnknownScheme) &&
				!errors.Is(err, boomsim.ErrUnknownWorkload) &&
				!errors.Is(err, boomsim.ErrInvalidOption) {
				t.Fatalf("New returned an untyped error: %v", err)
			}
			return
		}

		// A non-error Simulation must be fully formed.
		if s.Scheme().Name == "" || s.Workload().Name == "" {
			t.Fatalf("constructed simulation has empty metadata: %+v/%+v", s.Scheme(), s.Workload())
		}
		if s.Key() == "" || len(s.Fingerprint()) != 64 {
			t.Fatalf("constructed simulation has malformed identity: key=%q fp=%q", s.Key(), s.Fingerprint())
		}

		// ...and runnable, which we prove for configurations small enough
		// to stay inside the fuzzing budget.
		if footprint >= 16 && footprint <= 128 && measure >= 100 && measure <= 5_000 && warm <= 5_000 {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			r, err := s.Run(ctx)
			if err != nil {
				t.Fatalf("small valid configuration failed to run: %v", err)
			}
			// A cycle budget may legitimately stop the run early; only an
			// unbounded run owes the full window and a meaningful IPC.
			// Retirement is superscalar-wide, so the window may overshoot
			// by a retire group — "at least measure" is the contract.
			if maxCycles == 0 && (r.Instructions < measure || r.Cycles <= 0 || r.IPC <= 0) {
				t.Fatalf("implausible result for the %d-instruction window: %+v", measure, r)
			}
		}
	})
}

// FuzzMatrixParallelismInvariance is the property test behind
// WithParallelism's documentation: for a random small matrix, RunMatrix
// output is byte-identical at parallelism 1 and 8. Determinism across
// worker counts is what makes boomsimd's result cache sound, so this
// property guards the whole serving stack.
func FuzzMatrixParallelismInvariance(f *testing.F) {
	f.Add(uint64(1), uint8(3), uint8(0))
	f.Add(uint64(42), uint8(6), uint8(200))
	f.Add(uint64(0xdeadbeef), uint8(1), uint8(77))

	schemes := []string{"Base", "FDIP", "Boomerang", "Confluence", "Next Line", "Boomerang-N0"}
	workloads := []string{"Apache", "DB2", "SPEC-like", "Zeus"}

	f.Fuzz(func(t *testing.T, seed uint64, cells, seedSkew uint8) {
		n := int(cells)%6 + 1
		rng := rand.New(rand.NewSource(int64(seed)))
		sims := make([]*boomsim.Simulation, n)
		for i := range sims {
			var err error
			sims[i], err = boomsim.New(
				boomsim.WithScheme(schemes[rng.Intn(len(schemes))]),
				boomsim.WithWorkload(workloads[rng.Intn(len(workloads))]),
				boomsim.WithFootprintKB(16+rng.Intn(48)),
				boomsim.WithWindow(uint64(rng.Intn(2000)), 1000+uint64(rng.Intn(4000))),
				boomsim.WithSeeds(seed%16+uint64(seedSkew), seed%16),
			)
			if err != nil {
				t.Fatalf("building sims[%d]: %v", i, err)
			}
		}

		seq, err := boomsim.RunMatrix(context.Background(), sims, boomsim.WithParallelism(1))
		if err != nil {
			t.Fatalf("sequential matrix: %v", err)
		}
		par, err := boomsim.RunMatrix(context.Background(), sims, boomsim.WithParallelism(8))
		if err != nil {
			t.Fatalf("parallel matrix: %v", err)
		}
		seqJSON, err := json.Marshal(seq)
		if err != nil {
			t.Fatal(err)
		}
		parJSON, err := json.Marshal(par)
		if err != nil {
			t.Fatal(err)
		}
		if string(seqJSON) != string(parJSON) {
			t.Fatalf("matrix results differ across parallelism:\n p=1: %s\n p=8: %s", seqJSON, parJSON)
		}
	})
}
