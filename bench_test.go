// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation. Each benchmark regenerates its figure at a reduced (but
// shape-preserving) scale per iteration and reports the figure's headline
// quantity as a custom metric, so `go test -bench=.` both exercises the full
// pipeline and prints the reproduced numbers.
//
// The full-methodology tables (all six workloads at full footprint) are
// produced by `go run ./cmd/experiments -run all`; see EXPERIMENTS.md for
// the recorded paper-vs-measured comparison.
package boomsim_test

import (
	"context"
	"testing"
	"time"

	"boomsim"
	"boomsim/internal/experiments"
	"boomsim/internal/frontend"
	"boomsim/internal/scheme"
	"boomsim/internal/sim"
	"boomsim/internal/workload"
)

// benchParams returns bench-scale experiment parameters: two contrasting
// workloads (a web front end and the BTB-heavy OLTP), reduced footprints.
func benchParams() experiments.Params {
	apache, _ := workload.ByName("Apache")
	db2, _ := workload.ByName("DB2")
	p := experiments.Full()
	p.Workloads = []workload.Profile{apache, db2}
	p.FootprintKB = 768
	p.WarmInstrs = 150_000
	p.MeasureInstrs = 500_000
	return p
}

// BenchmarkFig1_Opportunity regenerates Figure 1: the speedup available from
// a perfect L1-I and from adding a perfect BTB (paper: +11-47% and +6-40%).
func BenchmarkFig1_Opportunity(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		t, err := experiments.Fig1(p)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(t.Get("Avg", "Perfect L1-I"), "perfectL1I_speedup")
		b.ReportMetric(t.Get("Avg", "Perfect L1-I + BTB"), "perfectCF_speedup")
	}
}

// BenchmarkFig2_PredictorSweep regenerates Figure 2: FDIP coverage under
// TAGE / bimodal / never-taken vs PIF (paper: FDIP+TAGE tracks PIF; even
// never-taken retains much of the coverage).
func BenchmarkFig2_PredictorSweep(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		t, err := experiments.Fig2(p, []int{10, 30, 50})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(t.Get("LLC=30", "FDIP TAGE"), "fdip_tage_cov")
		b.ReportMetric(t.Get("LLC=30", "PIF"), "pif_cov")
		b.ReportMetric(t.Get("LLC=30", "FDIP Never-Taken"), "fdip_nt_cov")
	}
}

// BenchmarkFig3_MissBreakdown regenerates Figure 3: the miss-cycle
// breakdown (paper: sequential misses are 40-54% of the baseline's total).
func BenchmarkFig3_MissBreakdown(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		t, err := experiments.Fig3(p)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(t.Get("Base 2KBTB", "Sequential%"), "base_seq_pct")
		b.ReportMetric(t.Get("FDIP 2KBTB", "Total%"), "fdip2k_total_pct")
		b.ReportMetric(t.Get("FDIP 32KBTB", "Total%"), "fdip32k_total_pct")
	}
}

// BenchmarkFig4_BranchDistance regenerates Figure 4: the taken-conditional
// branch distance CDF (paper: ~92% within 4 cache blocks).
func BenchmarkFig4_BranchDistance(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		t, err := experiments.Fig4(p, 300_000)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(t.Get("Avg", "4"), "cdf_at_4_blocks")
	}
}

// BenchmarkFig5_BTBSweep regenerates Figure 5: FDIP coverage vs BTB size
// (paper: 32K -> 2K loses ~12 points of coverage).
func BenchmarkFig5_BTBSweep(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		t, err := experiments.Fig5(p, []int{30}, nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(t.Get("LLC=30", "BTB2K"), "btb2k_cov")
		b.ReportMetric(t.Get("LLC=30", "BTB32K"), "btb32k_cov")
	}
}

// BenchmarkFig7_Squashes regenerates Figure 7: squashes per kilo-instruction
// (paper: Boomerang and Confluence eliminate >85% of BTB-miss squashes).
func BenchmarkFig7_Squashes(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		f7, _, _, err := experiments.Figures789(p)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(f7.Get("FDIP (BTB miss)", "Avg"), "fdip_btbmiss_ki")
		b.ReportMetric(f7.Get("Boomerang (BTB miss)", "Avg"), "boomerang_btbmiss_ki")
		b.ReportMetric(f7.Get("Confluence (BTB miss)", "Avg"), "confluence_btbmiss_ki")
	}
}

// BenchmarkFig8_Coverage regenerates Figure 8: front-end stall cycle
// coverage (paper: Boomerang 61% ~ Confluence 60% on average).
func BenchmarkFig8_Coverage(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		_, f8, _, err := experiments.Figures789(p)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(f8.Get("Boomerang", "Avg"), "boomerang_cov")
		b.ReportMetric(f8.Get("Confluence", "Avg"), "confluence_cov")
		b.ReportMetric(f8.Get("FDIP", "Avg"), "fdip_cov")
	}
}

// BenchmarkFig9_Speedup regenerates Figure 9: speedup over the no-prefetch
// baseline (paper: Boomerang 1.28x average, ~1% over Confluence).
func BenchmarkFig9_Speedup(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		_, _, f9, err := experiments.Figures789(p)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(f9.Get("Boomerang", "Avg"), "boomerang_speedup")
		b.ReportMetric(f9.Get("Confluence", "Avg"), "confluence_speedup")
		b.ReportMetric(f9.Get("FDIP", "Avg"), "fdip_speedup")
	}
}

// BenchmarkFig10_Throttle regenerates Figure 10: Boomerang's next-N-block
// sensitivity (paper: next-2 is the best average; DB2 gains ~12%).
func BenchmarkFig10_Throttle(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		t, err := experiments.Fig10(p, []int{0, 2, 8})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(t.Get("Avg", "None"), "throttle0_speedup")
		b.ReportMetric(t.Get("Avg", "2 Blocks"), "throttle2_speedup")
	}
}

// BenchmarkFig11_LowLatency regenerates Figure 11: the lineup at the
// crossbar's 18-cycle LLC round trip (paper: same ordering, smaller gains).
func BenchmarkFig11_LowLatency(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		t, err := experiments.Fig11(p, 18)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(t.Get("Avg", "Boomerang"), "boomerang_speedup_18c")
		b.ReportMetric(t.Get("Avg", "Confluence"), "confluence_speedup_18c")
	}
}

// BenchmarkStorage_Costs regenerates the Section VI-D storage comparison
// (paper: Boomerang 540 bytes vs 200KB+ for temporal streaming).
func BenchmarkStorage_Costs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.StorageTable()
		b.ReportMetric(t.Get("Boomerang", "KB"), "boomerang_kb")
		b.ReportMetric(t.Get("PIF", "KB"), "pif_kb")
	}
}

// BenchmarkSimulatorThroughput measures steady-state simulation speed:
// simulated instructions per wall-clock second for the Boomerang
// configuration. Setup (image generation, scheme construction, LLC preload)
// and the warm-up window run before the timer starts — their cost is
// reported separately as setup_ms — so the timed region is only the
// measured loop and the MIPS headline means the same thing at every
// -benchtime. Run it with a large -benchtime (e.g. -benchtime=2000000x, one
// op per simulated instruction) so the loop dominates timer granularity;
// -benchmem pins its zero-allocation contract (0 allocs/op).
func BenchmarkSimulatorThroughput(b *testing.B) {
	apache, _ := workload.ByName("Apache")
	apache.Gen.FootprintKB = 768
	spec := sim.DefaultSpec(scheme.Boomerang(), apache)
	spec.WarmInstrs = 50_000

	setupStart := time.Now()
	inst, err := sim.WarmInstance(spec)
	if err != nil {
		b.Fatal(err)
	}
	setup := time.Since(setupStart)

	// One benchmark op = one simulated instruction, floored so a 1x probe
	// run still simulates enough to produce a meaningful rate.
	instrs := uint64(b.N)
	if instrs < 100_000 {
		instrs = 100_000
	}
	b.ResetTimer()
	inst.Engine.Run(instrs, 0)
	b.StopTimer()
	b.ReportMetric(float64(setup.Milliseconds()), "setup_ms")
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(instrs)/secs/1e6, "MIPS")
	}
}

// BenchmarkSimulatorThroughputRecorded is the flight recorder's overhead
// control: the same measured loop with the recorder attached at a 10K-cycle
// epoch. BenchmarkSimulatorThroughput above stays recorder-off — that is the
// number benchgate's ns/instr regression gate protects — so any recorder
// cost shows up here as a visible MIPS delta, never as a silent regression
// of the gated headline.
func BenchmarkSimulatorThroughputRecorded(b *testing.B) {
	apache, _ := workload.ByName("Apache")
	apache.Gen.FootprintKB = 768
	spec := sim.DefaultSpec(scheme.Boomerang(), apache)
	spec.WarmInstrs = 50_000

	inst, err := sim.WarmInstance(spec)
	if err != nil {
		b.Fatal(err)
	}

	instrs := uint64(b.N)
	if instrs < 100_000 {
		instrs = 100_000
	}
	inst.Engine.StartFlightRecorder(10_000, 0)
	b.ResetTimer()
	inst.Engine.Run(instrs, 0)
	b.StopTimer()
	epochs := inst.Engine.StopFlightRecorder()
	b.ReportMetric(float64(len(epochs)), "epochs")
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(instrs)/secs/1e6, "MIPS")
	}
}

// BenchmarkStallHeavy measures event-horizon cycle skipping on the regime it
// exists for: the no-prefetch baseline against a 20× LLC round trip (the high-latency
// end of the Fig 11 sweep regime), where the front end spends the overwhelming majority
// of cycles stalled on fills and a per-cycle loop burns a full Tick per
// stall. One op = one simulated instruction, warmed before the timer like
// BenchmarkSimulatorThroughput. Beyond wall-clock it reports
// stall_ns_per_instr (this regime's headline cost) and skipped_cycle_pct
// (the fraction of simulated cycles fast-forwarded rather than ticked).
// BenchmarkStallHeavyNoSkip is the per-cycle control — byte-identical
// results, no skipping — so the ratio of the two stall_ns_per_instr values
// is the skip's speedup; benchgate records both in BENCH_<pr>.json.
func BenchmarkStallHeavy(b *testing.B)       { benchStallHeavy(b, true) }
func BenchmarkStallHeavyNoSkip(b *testing.B) { benchStallHeavy(b, false) }

func benchStallHeavy(b *testing.B, skip bool) {
	apache, _ := workload.ByName("Apache")
	apache.Gen.FootprintKB = 768
	spec := sim.DefaultSpec(scheme.Base(), apache)
	spec.Cfg = spec.Cfg.WithLLCLatency(600)
	spec.WarmInstrs = 50_000
	spec.DisableCycleSkip = !skip

	setupStart := time.Now()
	inst, err := sim.WarmInstance(spec)
	if err != nil {
		b.Fatal(err)
	}
	setup := time.Since(setupStart)

	instrs := uint64(b.N)
	if instrs < 100_000 {
		instrs = 100_000
	}
	b.ResetTimer()
	st := inst.Engine.Run(instrs, 0)
	b.StopTimer()
	b.ReportMetric(float64(setup.Milliseconds()), "setup_ms")
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(secs*1e9/float64(instrs), "stall_ns_per_instr")
	}
	if st.Cycles > 0 {
		b.ReportMetric(100*float64(inst.Engine.SkippedCycles())/float64(st.Cycles), "skipped_cycle_pct")
	}
}

// The full sweep grid: every built-in scheme crossed with every built-in
// workload. The names are pinned here (rather than read from Schemes() /
// Workloads()) so the grid stays exactly 18x7 even when tests in the same
// binary register extra schemes before the benchmarks run.
var (
	benchMatrixSchemes = []string{
		"Base", "Next Line", "DIP", "FDIP", "SHIFT", "Confluence", "Boomerang",
		"PIF", "Perfect L1-I", "Perfect L1-I + BTB", "2-Level BTB", "PhantomBTB",
		"Boomerang-Unthrottled",
		"Boomerang-N0", "Boomerang-N1", "Boomerang-N2", "Boomerang-N4", "Boomerang-N8",
	}
	benchMatrixWorkloads = []string{
		"Nutch", "Streaming", "Apache", "Zeus", "Oracle", "DB2", "SPEC-like",
	}
)

// benchMatrixParallelism fixes the matrix worker count so matrix_ms is
// comparable across runs regardless of the host's GOMAXPROCS.
const benchMatrixParallelism = 8

// matrix18x7Sims builds the full 126-cell grid through the public API at
// bench scale (reduced footprint and window, default seeds).
func matrix18x7Sims(b *testing.B, reuse bool) []*boomsim.Simulation {
	sims := make([]*boomsim.Simulation, 0, len(benchMatrixSchemes)*len(benchMatrixWorkloads))
	for _, w := range benchMatrixWorkloads {
		for _, s := range benchMatrixSchemes {
			sm, err := boomsim.New(
				boomsim.WithScheme(s),
				boomsim.WithWorkload(w),
				boomsim.WithFootprintKB(512),
				boomsim.WithWindow(150_000, 200_000),
				boomsim.WithWarmReuse(reuse),
			)
			if err != nil {
				b.Fatal(err)
			}
			sims = append(sims, sm)
		}
	}
	return sims
}

// runMatrix18x7 times RunMatrix over the full grid and reports the mean
// wall-clock per matrix as matrix_ms. One untimed priming pass runs first so
// the timed iterations measure the steady state a sweep loop actually sees:
// with warm reuse on, every cell forks its arena snapshot instead of
// re-simulating the warm window; with reuse off the priming pass changes
// nothing, keeping the two benchmarks structurally identical.
func runMatrix18x7(b *testing.B, reuse bool) {
	sims := matrix18x7Sims(b, reuse)
	ctx := context.Background()
	if _, err := boomsim.RunMatrix(ctx, sims, boomsim.WithParallelism(benchMatrixParallelism)); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := boomsim.RunMatrix(ctx, sims, boomsim.WithParallelism(benchMatrixParallelism)); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if b.N > 0 {
		b.ReportMetric(float64(b.Elapsed().Milliseconds())/float64(b.N), "matrix_ms")
	}
}

// BenchmarkMatrix18x7 measures the full 18-scheme x 7-workload sweep with
// warm-state reuse on (the default): the headline sub-linear-sweep number
// that benchgate records as matrix_ms in BENCH_<pr>.json and gates.
func BenchmarkMatrix18x7(b *testing.B) { runMatrix18x7(b, true) }

// BenchmarkMatrix18x7NoReuse is the control: the same grid with warm reuse
// disabled, so every cell re-simulates its warm window. The matrix_ms gap
// against BenchmarkMatrix18x7 is the measured win of the snapshot plane.
func BenchmarkMatrix18x7NoReuse(b *testing.B) { runMatrix18x7(b, false) }

// BenchmarkTable2_Workloads sanity-checks that every Table II profile
// builds and executes (the workload substrate itself).
func BenchmarkTable2_Workloads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, w := range workload.Profiles {
			g := w.Gen
			g.FootprintKB = 256
			g.Seed = uint64(i + 1)
			img, err := w.Image(g.Seed)
			if err != nil {
				b.Fatal(err)
			}
			wk := workload.NewWalker(img, 1)
			for j := 0; j < 10_000; j++ {
				wk.Next()
			}
		}
	}
}

// BenchmarkBoomerangVsFDIP reports the paper's headline delta at bench
// scale: Boomerang's gain over FDIP on the BTB-heavy DB2.
func BenchmarkBoomerangVsFDIP(b *testing.B) {
	db2, _ := workload.ByName("DB2")
	db2.Gen.FootprintKB = 768
	for i := 0; i < b.N; i++ {
		spec := sim.DefaultSpec(scheme.FDIP(), db2)
		spec.WarmInstrs = 150_000
		spec.MeasureInstrs = 500_000
		fdip, err := sim.Run(spec)
		if err != nil {
			b.Fatal(err)
		}
		spec.Scheme = scheme.Boomerang()
		boom, err := sim.Run(spec)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(boom.IPC/fdip.IPC, "boomerang_over_fdip")
		b.ReportMetric(fdip.Stats.SquashesPerKI(frontend.SquashBTBMiss), "fdip_btbmiss_ki")
		b.ReportMetric(boom.Stats.SquashesPerKI(frontend.SquashBTBMiss), "boom_btbmiss_ki")
	}
}
