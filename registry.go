package boomsim

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"boomsim/internal/program"
	"boomsim/internal/scheme"
	"boomsim/internal/workload"
)

// SchemeInfo describes one registered control-flow-delivery scheme. Every
// field is sourced from the scheme's declarative SchemeConfig — the listing
// carries the paper's Section VI-D storage accounting and, via Config, the
// full recipe a client can fetch, modify and resubmit as a custom scheme.
type SchemeInfo struct {
	// Name is the registry key, matching the paper's figures for the
	// built-in schemes.
	Name string `json:"name"`
	// Description summarises the mechanism.
	Description string `json:"description"`
	// StorageOverheadKB is the per-core metadata cost beyond the baseline
	// front end (the paper's Section VI-D accounting).
	StorageOverheadKB float64 `json:"storage_overhead_kb"`
	// Config is the scheme's complete declarative definition.
	Config SchemeConfig `json:"config"`
}

// WorkloadInfo describes one registered workload profile.
type WorkloadInfo struct {
	// Name is the registry key, matching the paper's Table II naming.
	Name string `json:"name"`
	// Description summarises the modelled server workload.
	Description string `json:"description"`
	// FootprintKB is the profile's calibrated instruction footprint.
	FootprintKB int `json:"footprint_kb"`
}

func toSchemeInfo(s scheme.Config) SchemeInfo {
	return SchemeInfo{
		Name:              s.Name,
		Description:       s.Description,
		StorageOverheadKB: s.StorageOverheadKB,
		Config:            s,
	}
}

func toWorkloadInfo(p workload.Profile) WorkloadInfo {
	return WorkloadInfo{
		Name:        p.Name,
		Description: p.Description,
		FootprintKB: p.Gen.FootprintKB,
	}
}

// The registries are string-keyed and guarded by one mutex: registration is
// rare (init time, test setup), lookup is per-New.
var (
	regMu         sync.RWMutex
	schemeReg     = map[string]scheme.Scheme{}
	schemeOrder   []string
	workloadReg   = map[string]workload.Profile{}
	workloadOrder []string
)

// RegisterScheme adds a scheme config to the registry under its Name.
// Schemes are declarative data (SchemeConfig), so callers — in-module
// ablation variants and external users alike — register plain configs;
// after registration the scheme is addressable by name from WithScheme,
// Schemes() and every consumer binary. Registering an invalid config or an
// already-taken name is an error.
func RegisterScheme(s SchemeConfig) error {
	if err := s.Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrInvalidOption, err)
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := schemeReg[s.Name]; dup {
		return fmt.Errorf("%w: scheme %q already registered", ErrInvalidOption, s.Name)
	}
	schemeReg[s.Name] = s
	schemeOrder = append(schemeOrder, s.Name)
	return nil
}

// RegisterWorkload adds a workload profile to the registry under p.Name,
// making it addressable from WithWorkload and Workloads(). Registering an
// empty or already-taken name is an error.
func RegisterWorkload(p workload.Profile) error {
	if p.Name == "" {
		return fmt.Errorf("%w: workload with empty name", ErrInvalidOption)
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := workloadReg[p.Name]; dup {
		return fmt.Errorf("%w: workload %q already registered", ErrInvalidOption, p.Name)
	}
	workloadReg[p.Name] = p
	workloadOrder = append(workloadOrder, p.Name)
	return nil
}

// Schemes lists every registered scheme in registration order (the paper's
// presentation order first, then extensions).
func Schemes() []SchemeInfo {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]SchemeInfo, 0, len(schemeOrder))
	for _, name := range schemeOrder {
		out = append(out, toSchemeInfo(schemeReg[name]))
	}
	return out
}

// Workloads lists every registered workload in registration order (Table II
// order first, then extensions).
func Workloads() []WorkloadInfo {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]WorkloadInfo, 0, len(workloadOrder))
	for _, name := range workloadOrder {
		out = append(out, toWorkloadInfo(workloadReg[name]))
	}
	return out
}

// DefaultSchemes returns the names of the six-plus-baseline schemes of the
// paper's headline figures (7-9), in presentation order.
func DefaultSchemes() []string {
	all := scheme.All()
	names := make([]string, len(all))
	for i, s := range all {
		names[i] = s.Name
	}
	return names
}

// LookupScheme returns the named scheme's metadata, or ErrUnknownScheme.
func LookupScheme(name string) (SchemeInfo, error) {
	s, err := schemeByName(name)
	if err != nil {
		return SchemeInfo{}, err
	}
	return toSchemeInfo(s), nil
}

// LookupWorkload returns the named workload's metadata, or
// ErrUnknownWorkload.
func LookupWorkload(name string) (WorkloadInfo, error) {
	p, err := workloadByName(name)
	if err != nil {
		return WorkloadInfo{}, err
	}
	return toWorkloadInfo(p), nil
}

// BuildImage generates the named workload's code image with the given seed.
// It is the escape hatch for tools that drive internal packages directly
// (trace recording, walker statistics) while still resolving workloads
// through the public registry.
func BuildImage(workloadName string, imageSeed uint64) (*program.Image, error) {
	p, err := workloadByName(workloadName)
	if err != nil {
		return nil, err
	}
	return p.Image(imageSeed)
}

func schemeByName(name string) (scheme.Scheme, error) {
	regMu.RLock()
	defer regMu.RUnlock()
	s, ok := schemeReg[name]
	if !ok {
		return scheme.Scheme{}, fmt.Errorf("%w: %q (have: %s)",
			ErrUnknownScheme, name, strings.Join(sortedNames(schemeOrder), ", "))
	}
	return s, nil
}

func workloadByName(name string) (workload.Profile, error) {
	regMu.RLock()
	defer regMu.RUnlock()
	p, ok := workloadReg[name]
	if !ok {
		return workload.Profile{}, fmt.Errorf("%w: %q (have: %s)",
			ErrUnknownWorkload, name, strings.Join(sortedNames(workloadOrder), ", "))
	}
	return p, nil
}

func sortedNames(names []string) []string {
	out := append([]string(nil), names...)
	sort.Strings(out)
	return out
}

func mustRegister(err error) {
	if err != nil {
		panic(err)
	}
}

// init seeds the registries with everything the paper evaluates: the six
// headline schemes plus the baseline, the limit studies of Figure 1, PIF,
// the hierarchical-BTB alternatives of Section II-C, the miss-policy
// variants, and the Table II workloads plus the SPEC-like contrast profile.
func init() {
	for _, s := range scheme.All() { // Base, Next Line, DIP, FDIP, SHIFT, Confluence, Boomerang
		mustRegister(RegisterScheme(s))
	}
	mustRegister(RegisterScheme(scheme.PIF()))
	mustRegister(RegisterScheme(scheme.PerfectL1I()))
	mustRegister(RegisterScheme(scheme.PerfectCF()))
	mustRegister(RegisterScheme(scheme.TwoLevelBTB()))
	mustRegister(RegisterScheme(scheme.PhantomBTBScheme()))
	mustRegister(RegisterScheme(scheme.BoomerangUnthrottled()))
	for _, n := range []int{0, 1, 2, 4, 8} { // Figure 10's throttle sweep
		s := scheme.BoomerangThrottled(n)
		s.Name = fmt.Sprintf("Boomerang-N%d", n) // the default N is otherwise named plain "Boomerang"
		mustRegister(RegisterScheme(s))
	}

	for _, p := range workload.Profiles { // Table II: Nutch, Streaming, Apache, Zeus, Oracle, DB2
		mustRegister(RegisterWorkload(p))
	}
	mustRegister(RegisterWorkload(workload.SPECLike()))
}
