package boomsim

import "fmt"

// Option configures a Simulation at construction time. Options are applied
// in order by New; a failing option aborts construction.
type Option func(*Simulation) error

// ProgressFunc observes a running simulation: done is the number of
// instructions retired so far in the measurement window, total the window's
// target. It is called on the simulating goroutine; keep it cheap.
type ProgressFunc func(done, total uint64)

// WithScheme selects the control-flow-delivery scheme by registry name
// (default "Boomerang"). Unknown names surface ErrUnknownScheme from New.
func WithScheme(name string) Option {
	return func(s *Simulation) error {
		s.schemeName = name
		return nil
	}
}

// WithSchemeConfig runs an inline declarative scheme instead of a
// registry-resolved one: the full recipe — FTQ depth, prefetcher, BTB
// organisation, miss policy, predictor, storage accounting — travels with
// the Simulation, so novel scenarios need neither registration nor code.
// The config is validated by New; it overrides any WithScheme selection,
// and Result.Scheme reports cfg.Name. Configs parsed from JSON files
// (LoadSchemeConfig) plug in here directly.
func WithSchemeConfig(cfg SchemeConfig) Option {
	return func(s *Simulation) error {
		if err := cfg.Validate(); err != nil {
			return fmt.Errorf("%w: %v", ErrInvalidOption, err)
		}
		s.schemeCfg = &cfg
		return nil
	}
}

// WithWorkload selects the workload profile by registry name (default
// "Apache"). Unknown names surface ErrUnknownWorkload from New.
func WithWorkload(name string) Option {
	return func(s *Simulation) error {
		s.workloadName = name
		return nil
	}
}

// WithBTBEntries overrides the basic-block BTB capacity (default Table I:
// 2048 entries).
func WithBTBEntries(entries int) Option {
	return func(s *Simulation) error {
		if entries <= 0 {
			return fmt.Errorf("%w: BTB entries must be positive, got %d", ErrInvalidOption, entries)
		}
		s.btbEntries = entries
		return nil
	}
}

// WithLLCLatency overrides the average LLC round-trip latency in cycles
// (default Table I: 30 for the 4x4 mesh; Figure 11 uses 18 for a crossbar).
func WithLLCLatency(cycles int) Option {
	return func(s *Simulation) error {
		if cycles <= 0 {
			return fmt.Errorf("%w: LLC latency must be positive, got %d", ErrInvalidOption, cycles)
		}
		s.llcLatency = cycles
		return nil
	}
}

// WithPredictor selects the direction predictor: "tage" (default),
// "bimodal", or "never-taken" (the Figure 2 study).
func WithPredictor(name string) Option {
	return func(s *Simulation) error {
		switch name {
		case "", "tage", "bimodal", "never-taken":
			s.predictor = name
			return nil
		}
		return fmt.Errorf("%w: unknown predictor %q (have: tage, bimodal, never-taken)",
			ErrInvalidOption, name)
	}
}

// WithSeeds sets the code-image generation seed and the oracle execution
// seed (both default 1). Results are a pure function of the full option
// set, so equal seeds reproduce runs exactly.
func WithSeeds(imageSeed, walkSeed uint64) Option {
	return func(s *Simulation) error {
		s.imageSeed = imageSeed
		s.walkSeed = walkSeed
		return nil
	}
}

// WithWindow sets the measurement methodology: warm instructions run first
// with statistics discarded (warming caches, predictors and prefetcher
// state, mirroring the paper's SMARTS-style sampling), then measure
// instructions are measured. measure must be positive.
func WithWindow(warm, measure uint64) Option {
	return func(s *Simulation) error {
		if measure == 0 {
			return fmt.Errorf("%w: measurement window must be positive", ErrInvalidOption)
		}
		s.warmInstrs = warm
		s.measureInstrs = measure
		return nil
	}
}

// WithMaxCycles bounds the measurement window in cycles (0 = unbounded):
// the run stops at whichever of the instruction target or cycle budget is
// reached first.
func WithMaxCycles(cycles int64) Option {
	return func(s *Simulation) error {
		if cycles < 0 {
			return fmt.Errorf("%w: max cycles must be >= 0, got %d", ErrInvalidOption, cycles)
		}
		s.maxCycles = cycles
		return nil
	}
}

// WithWarmReuse toggles warm-state reuse (on by default): runs sharing a
// warm-relevant configuration — scheme, workload, seeds, core config,
// predictor and warm length — fork one process-wide warmed snapshot instead
// of each re-simulating the warm window, so sweeps pay the warm cost once
// per configuration rather than once per run. Results are byte-identical
// either way (a fork is indistinguishable from a fresh warm), which is why
// reuse does not participate in Key: it is purely a wall-clock and memory
// trade. Disable it to bound resident memory (each cached snapshot holds a
// few MB of warmed cache state) or when auditing the simulator itself.
func WithWarmReuse(on bool) Option {
	return func(s *Simulation) error {
		s.warmReuse = on
		return nil
	}
}

// WithCycleSkip toggles event-horizon cycle skipping (on by default): when
// every component is provably inert until a known future cycle — fetch
// blocked on a fill, the BPU stalled on a predecode, the backend draining —
// the simulation loop jumps straight to that cycle and bulk-accrues the
// skipped cycles' stall counters, instead of ticking them one at a time.
// Results are byte-identical either way (the golden corpus and
// FuzzSkipIdentity pin this), which is why the flag — like WithWarmReuse —
// does not participate in Key: it is purely a wall-clock trade. Disable it
// for control runs that must exercise the per-cycle loop, or when debugging
// with single-cycle flight-recorder traces (WithFlightRecorder(1)), where
// watching every cycle individually is the point.
func WithCycleSkip(on bool) Option {
	return func(s *Simulation) error {
		s.noCycleSkip = !on
		return nil
	}
}

// WithFootprintKB overrides the workload's calibrated instruction footprint
// (0 = the profile's own). Smaller footprints generate faster and run
// hotter; tests and examples use this to stay within CI budgets.
func WithFootprintKB(kb int) Option {
	return func(s *Simulation) error {
		if kb < 0 {
			return fmt.Errorf("%w: footprint must be >= 0 KB, got %d", ErrInvalidOption, kb)
		}
		s.footprintKB = kb
		return nil
	}
}

// WithFlightRecorder attaches the simulator flight recorder: the
// measurement window is sampled every everyCycles cycles into windowed
// counter deltas (fetch bubbles, BTB misses, prefetch issues and hits,
// squashes) returned as Result.Epochs, so one run renders as a timeline.
// Epochs exactly tile the measurement window; the measured counters
// themselves are unchanged. Recording changes the Result's bytes, so
// FlightEvery participates in Key (runs with different epochs must not
// share cache entries); warm-state reuse is unaffected.
func WithFlightRecorder(everyCycles int64) Option {
	return func(s *Simulation) error {
		if everyCycles <= 0 {
			return fmt.Errorf("%w: flight-recorder epoch must be positive cycles, got %d",
				ErrInvalidOption, everyCycles)
		}
		s.flightEvery = everyCycles
		return nil
	}
}

// WithWarmObserver installs a callback invoked once per Run with how the
// warmed state was obtained: "fork" (served from the process-wide warm
// arena) or "fresh" (warmed privately). Purely observational — trace spans
// use it to record warm-arena hits — so, like WithProgress, it does not
// participate in Key. The callback runs on the simulating goroutine.
func WithWarmObserver(fn func(source string)) Option {
	return func(s *Simulation) error {
		if fn == nil {
			return fmt.Errorf("%w: nil warm observer", ErrInvalidOption)
		}
		s.warmObs = fn
		return nil
	}
}

// WithProgress installs a progress callback invoked every `every` retired
// instructions of the measurement window (0 uses the default cancellation
// granularity). The callback cadence also bounds how quickly Run notices a
// canceled context.
func WithProgress(every uint64, fn ProgressFunc) Option {
	return func(s *Simulation) error {
		if fn == nil {
			return fmt.Errorf("%w: nil progress callback", ErrInvalidOption)
		}
		s.progressEvery = every
		s.progress = fn
		return nil
	}
}
