package boomsim_test

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"boomsim"
)

const experimentsDir = "testdata/experiments"

// specPaths lists the checked-in experiment specs (the paper's own claims,
// encoded as machine-checked hypotheses).
func specPaths(t *testing.T) []string {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join(experimentsDir, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatalf("no experiment specs under %s", experimentsDir)
	}
	return paths
}

// Every checked-in spec must load, validate, and re-marshal to exactly the
// bytes on disk: the files are the canonical encoding, so a spec diff in
// review is always a semantic diff, never a formatting one. Regenerate
// after editing a spec by hand with:
//
//	go test -run TestExperimentSpecRoundTrip -update .
func TestExperimentSpecRoundTrip(t *testing.T) {
	for _, path := range specPaths(t) {
		t.Run(filepath.Base(path), func(t *testing.T) {
			spec, err := boomsim.LoadExperimentSpec(path)
			if err != nil {
				t.Fatalf("LoadExperimentSpec: %v", err)
			}
			want := strings.TrimSuffix(filepath.Base(path), ".json")
			if spec.Name != want {
				t.Errorf("spec name %q does not match file name %q", spec.Name, want)
			}
			canonical, err := spec.MarshalIndent()
			if err != nil {
				t.Fatalf("MarshalIndent: %v", err)
			}
			onDisk, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if string(canonical) == string(onDisk) {
				return
			}
			if *updateGolden {
				if err := os.WriteFile(path, canonical, 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("rewrote %s in canonical encoding", path)
				return
			}
			t.Errorf("%s is not in canonical encoding; run: go test -run TestExperimentSpecRoundTrip -update .", path)
		})
	}
}

// The invalid corpus pins the spec loader's rejection behavior: every file
// fails to load, and with the advertised typed sentinel, so authoring
// mistakes surface as actionable errors rather than quietly weakened
// experiments.
func TestExperimentSpecInvalidCorpus(t *testing.T) {
	wantErr := map[string]error{
		"unknown-scheme.json":            boomsim.ErrUnknownScheme,
		"unknown-workload.json":          boomsim.ErrUnknownWorkload,
		"unknown-metric.json":            boomsim.ErrUnknownMetric,
		"empty-seeds.json":               boomsim.ErrInvalidSpec,
		"unknown-field.json":             boomsim.ErrInvalidSpec,
		"criterion-on-unrun-scheme.json": boomsim.ErrInvalidSpec,
	}
	paths, err := filepath.Glob(filepath.Join(experimentsDir, "invalid", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != len(wantErr) {
		t.Fatalf("invalid corpus has %d files, wantErr covers %d — keep them in sync", len(paths), len(wantErr))
	}
	for _, path := range paths {
		t.Run(filepath.Base(path), func(t *testing.T) {
			want, ok := wantErr[filepath.Base(path)]
			if !ok {
				t.Fatalf("no expected error registered for %s", path)
			}
			_, err := boomsim.LoadExperimentSpec(path)
			if err == nil {
				t.Fatalf("LoadExperimentSpec accepted an invalid spec")
			}
			if !errors.Is(err, want) {
				t.Fatalf("error = %v, want errors.Is(err, %v)", err, want)
			}
		})
	}
}

// experimentReportJSON runs one spec with the timestamp suppressed and
// returns the report's canonical JSON bytes.
func experimentReportJSON(t *testing.T, spec boomsim.ExperimentSpec, opts ...boomsim.ExperimentOption) []byte {
	t.Helper()
	opts = append([]boomsim.ExperimentOption{boomsim.WithExperimentTimestamp("")}, opts...)
	report, err := boomsim.RunExperiment(context.Background(), spec, opts...)
	if err != nil {
		t.Fatalf("RunExperiment: %v", err)
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// A report is a pure function of its spec: sequential, parallel, and
// distributed execution of the same experiment must produce byte-identical
// JSON. This is what makes a verdict trustworthy — it cannot depend on
// where or how the matrix happened to be scheduled.
func TestExperimentReportDeterminism(t *testing.T) {
	spec, err := boomsim.LoadExperimentSpec(filepath.Join(experimentsDir, "table3-storage.json"))
	if err != nil {
		t.Fatal(err)
	}

	sequential := experimentReportJSON(t, spec, boomsim.WithExperimentParallelism(1))
	parallel := experimentReportJSON(t, spec, boomsim.WithExperimentParallelism(8))
	if string(sequential) != string(parallel) {
		t.Errorf("parallelism 1 vs 8: reports differ")
	}

	workers := startWorkers(t, 2)
	cl, err := boomsim.NewCluster(boomsim.WithEndpoints(endpoints(workers)...))
	if err != nil {
		t.Fatal(err)
	}
	distributed := experimentReportJSON(t, spec, boomsim.WithExperimentCluster(cl))
	if string(sequential) != string(distributed) {
		t.Errorf("local vs 2-worker cluster: reports differ")
	}
}

// tinyExperiment is a 4-cell spec for tests that exercise report plumbing
// rather than statistics.
func tinyExperiment() boomsim.ExperimentSpec {
	return boomsim.ExperimentSpec{
		Version:    1,
		Name:       "tiny",
		Hypothesis: "plumbing probe",
		Baseline:   "Base",
		Candidates: []string{"Boomerang"},
		Workloads:  []string{"Apache"},
		Seeds:      []uint64{1, 2},
		Window:     &boomsim.ExperimentWindow{Warm: 2000, Measure: 10000},
		Criteria: []boomsim.ExperimentCriterion{{
			Name:      "positive-speedup",
			Metric:    "speedup",
			Scheme:    "Boomerang",
			Op:        ">=",
			Threshold: 0.5,
			Compare:   "point",
		}},
	}
}

// GeneratedAt is the one field of a report that is not a function of the
// spec. Two runs with different stamps must differ in that single header
// key and nowhere else, and the default stamp must be non-empty.
func TestExperimentTimestampIsolation(t *testing.T) {
	spec := tinyExperiment()
	ctx := context.Background()

	a, err := boomsim.RunExperiment(ctx, spec, boomsim.WithExperimentTimestamp("2026-01-01T00:00:00Z"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := boomsim.RunExperiment(ctx, spec, boomsim.WithExperimentTimestamp("2026-02-02T00:00:00Z"))
	if err != nil {
		t.Fatal(err)
	}
	if a.Header.GeneratedAt == b.Header.GeneratedAt {
		t.Fatalf("timestamps did not take: %q vs %q", a.Header.GeneratedAt, b.Header.GeneratedAt)
	}
	a.Header.GeneratedAt, b.Header.GeneratedAt = "", ""
	aj, _ := json.Marshal(a)
	bj, _ := json.Marshal(b)
	if string(aj) != string(bj) {
		t.Errorf("reports differ beyond generated_at")
	}

	stamped, err := boomsim.RunExperiment(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if stamped.Header.GeneratedAt == "" {
		t.Errorf("default run left generated_at empty")
	}
}

// The experiment engine's coverage metric must agree exactly with the
// public Coverage helper (and therefore with the figures pipeline): both
// are the paper's stalls-per-instruction formula with the same guard
// against noise-amplified baselines. A single-seed aggregate is the raw
// per-cell value, so the comparison needs no statistics.
func TestExperimentCoverageMatchesSimulator(t *testing.T) {
	const (
		seed    = uint64(7)
		warm    = uint64(2000)
		measure = uint64(10000)
	)
	spec := tinyExperiment()
	spec.Seeds = []uint64{seed}
	spec.Window = &boomsim.ExperimentWindow{Warm: warm, Measure: measure}

	report, err := boomsim.RunExperiment(context.Background(), spec,
		boomsim.WithExperimentTimestamp(""))
	if err != nil {
		t.Fatal(err)
	}
	var got float64
	found := false
	for _, agg := range report.Aggregates {
		if agg.Scheme == "Boomerang" && agg.Workload == "Apache" {
			if s, ok := agg.Metrics["coverage"]; ok {
				got, found = s.Mean, true
			}
		}
	}
	if !found {
		t.Fatal("report has no coverage aggregate for Boomerang on Apache")
	}

	run := func(scheme string) boomsim.Result {
		s, err := boomsim.New(
			boomsim.WithScheme(scheme),
			boomsim.WithWorkload("Apache"),
			boomsim.WithSeeds(seed, seed),
			boomsim.WithWindow(warm, measure),
		)
		if err != nil {
			t.Fatalf("New(%s): %v", scheme, err)
		}
		r, err := s.Run(context.Background())
		if err != nil {
			t.Fatalf("Run(%s): %v", scheme, err)
		}
		return r
	}
	want := boomsim.Coverage(run("Base"), run("Boomerang"))
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("experiment coverage = %v, boomsim.Coverage = %v", got, want)
	}
}

// Smoke-run the two cheapest checked-in paper claims end to end and
// require their verdicts to hold. The full set runs in the dedicated CI
// experiment job via boomctl; this keeps `go test ./...` self-contained.
func TestExperimentPaperClaimsSmoke(t *testing.T) {
	for _, name := range []string{"table3-storage.json", "fig9-coverage.json"} {
		t.Run(name, func(t *testing.T) {
			spec, err := boomsim.LoadExperimentSpec(filepath.Join(experimentsDir, name))
			if err != nil {
				t.Fatal(err)
			}
			report, err := boomsim.RunExperiment(context.Background(), spec,
				boomsim.WithExperimentTimestamp(""))
			if err != nil {
				t.Fatal(err)
			}
			if report.Verdict != boomsim.VerdictPass {
				t.Errorf("verdict = %s, want %s", report.Verdict, boomsim.VerdictPass)
				for _, cr := range report.Criteria {
					t.Logf("  [%s] %s", cr.Verdict, cr.Criterion.Name)
				}
			}
		})
	}
}
