package boomsim

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"time"

	"boomsim/internal/cluster"
	"boomsim/internal/wire"
)

// Cluster shards simulation matrices across a pool of boomsimd workers.
// Every matrix cell is routed to a worker by rendezvous hashing on its
// configuration Key, so each worker's content-addressed result cache stays
// hot and repeating a sweep collapses to cache hits; backpressure (429 +
// Retry-After), straggler hedging and worker-death re-dispatch are handled
// by the coordinator, and results come back in matrix order, byte-identical
// to a local RunMatrix of the same simulations.
//
// A Cluster is reusable across sweeps (worker liveness is re-probed per
// run) and Stats/MetricsHandler are safe to read while a sweep runs.
type Cluster struct {
	coord *cluster.Coordinator
}

// ClusterOption configures NewCluster.
type ClusterOption func(*cluster.Config) error

// WithEndpoints names the boomsimd workers (base URLs, e.g.
// "http://sim-3:8080"). Endpoints or a membership file is required.
func WithEndpoints(endpoints ...string) ClusterOption {
	return func(c *cluster.Config) error {
		c.Endpoints = append(c.Endpoints, endpoints...)
		return nil
	}
}

// WithMembershipFile makes the worker pool dynamic: path names a JSON
// document ({"workers": ["http://...", ...]}) that is the authoritative
// worker list, re-read during the sweep so workers added to the file join
// mid-flight (after a health probe) and workers removed from it retire.
// Rendezvous hashing means only the keys owned by the changed workers move.
// WithEndpoints then only seeds the pool for when the file is unreadable.
func WithMembershipFile(path string) ClusterOption {
	return func(c *cluster.Config) error {
		if path == "" {
			return fmt.Errorf("%w: empty membership file path", ErrInvalidOption)
		}
		c.MembershipFile = path
		return nil
	}
}

// WithJournal makes the sweep resumable: every completed cell is durably
// appended to the write-ahead log at path, and re-running the same matrix
// against the same journal dispatches only the cells that never completed.
// A journal recorded for a different matrix fails with ErrJournalMismatch.
func WithJournal(path string) ClusterOption {
	return func(c *cluster.Config) error {
		if path == "" {
			return fmt.Errorf("%w: empty journal path", ErrInvalidOption)
		}
		c.JournalPath = path
		return nil
	}
}

// WithCellTimeout caps the wall-clock a single cell may spend being retried,
// measured from its first dispatch; exceeding it fails the sweep with
// ErrCellTimeout. WithJobAttempts bounds how many times a cell is tried;
// this bounds how long.
func WithCellTimeout(d time.Duration) ClusterOption {
	return func(c *cluster.Config) error {
		if d <= 0 {
			return fmt.Errorf("%w: cell timeout must be positive, got %v", ErrInvalidOption, d)
		}
		c.CellTimeout = d
		return nil
	}
}

// WithBreakerCooldown tunes the per-worker circuit breaker: a worker whose
// breaker opens rests for d before half-opening for a probe batch, doubling
// up to max on repeated failures (defaults 1s and 30s).
func WithBreakerCooldown(d, max time.Duration) ClusterOption {
	return func(c *cluster.Config) error {
		if d <= 0 || max < d {
			return fmt.Errorf("%w: breaker cooldown needs 0 < base <= max, got %v, %v", ErrInvalidOption, d, max)
		}
		c.BreakerCooldown, c.BreakerMaxCooldown = d, max
		return nil
	}
}

// WithWorkerInFlight bounds concurrently outstanding batches per worker
// (default 2) — the coordinator-side half of backpressure.
func WithWorkerInFlight(n int) ClusterOption {
	return func(c *cluster.Config) error {
		if n <= 0 {
			return fmt.Errorf("%w: worker in-flight must be positive, got %d", ErrInvalidOption, n)
		}
		c.InFlight = n
		return nil
	}
}

// WithBatchSize bounds how many cells travel in one worker request
// (default 4).
func WithBatchSize(n int) ClusterOption {
	return func(c *cluster.Config) error {
		if n <= 0 {
			return fmt.Errorf("%w: batch size must be positive, got %d", ErrInvalidOption, n)
		}
		c.BatchSize = n
		return nil
	}
}

// WithJobAttempts bounds dispatch attempts per cell before the sweep fails
// with ErrWorkerFailed (default 4).
func WithJobAttempts(n int) ClusterOption {
	return func(c *cluster.Config) error {
		if n <= 0 {
			return fmt.Errorf("%w: job attempts must be positive, got %d", ErrInvalidOption, n)
		}
		c.MaxAttempts = n
		return nil
	}
}

// WithHedgeAfter duplicates a straggling cell onto its next-preferred
// worker once it has been in flight for d (0 disables hedging, the
// default). Results are pure functions of their configuration, so the
// duplicate is harmless — whichever copy finishes first wins.
func WithHedgeAfter(d time.Duration) ClusterOption {
	return func(c *cluster.Config) error {
		if d < 0 {
			return fmt.Errorf("%w: hedge delay must be >= 0, got %v", ErrInvalidOption, d)
		}
		c.HedgeAfter = d
		return nil
	}
}

// WithRetryBackoff tunes the transport's jittered exponential backoff
// (defaults 100ms base, 5s cap); the cap also bounds honored Retry-After
// hints.
func WithRetryBackoff(base, max time.Duration) ClusterOption {
	return func(c *cluster.Config) error {
		if base <= 0 || max < base {
			return fmt.Errorf("%w: retry backoff needs 0 < base <= max, got %v, %v", ErrInvalidOption, base, max)
		}
		ensureClient(c)
		c.Client.BaseDelay, c.Client.MaxDelay = base, max
		return nil
	}
}

// WithClusterTimeout caps one batch's total transport time, retries
// included (default 5m).
func WithClusterTimeout(d time.Duration) ClusterOption {
	return func(c *cluster.Config) error {
		if d <= 0 {
			return fmt.Errorf("%w: cluster timeout must be positive, got %v", ErrInvalidOption, d)
		}
		c.RequestTimeout = d
		return nil
	}
}

// WithClusterClient substitutes the underlying *http.Client (custom
// transports, TLS, test doubles).
func WithClusterClient(hc *http.Client) ClusterOption {
	return func(c *cluster.Config) error {
		if hc == nil {
			return fmt.Errorf("%w: nil cluster HTTP client", ErrInvalidOption)
		}
		ensureClient(c)
		c.Client.HTTP = hc
		return nil
	}
}

// WithClusterTrace records the sweep into t: one "cell" span per matrix
// cell plus queue/dispatch/sim phase spans, retry and hedge markers, all
// stamped with t's trace ID. The same ID travels to workers in every batch
// request, so worker-side logs correlate with the coordinator's spans and a
// multi-worker sweep merges into one consistent trace. Export with
// Trace.WriteChromeTrace. Tracing observes a sweep without affecting its
// results.
func WithClusterTrace(t *Trace) ClusterOption {
	return func(c *cluster.Config) error {
		if t == nil {
			return fmt.Errorf("%w: nil cluster trace", ErrInvalidOption)
		}
		c.Trace = t.collector()
		c.TraceID = t.ID()
		return nil
	}
}

// WithClusterLogger routes coordinator lifecycle logs (sweep start/finish,
// journal resume, breaker transitions, membership changes, retries, hedges)
// to log. Nil (the default) discards them.
func WithClusterLogger(log *slog.Logger) ClusterOption {
	return func(c *cluster.Config) error {
		c.Logger = log
		return nil
	}
}

func ensureClient(c *cluster.Config) {
	if c.Client == nil {
		c.Client = &cluster.RetryClient{}
	}
}

// NewCluster builds a Cluster from options; WithEndpoints or
// WithMembershipFile is mandatory.
func NewCluster(opts ...ClusterOption) (*Cluster, error) {
	var cfg cluster.Config
	for _, opt := range opts {
		if err := opt(&cfg); err != nil {
			return nil, err
		}
	}
	coord, err := cluster.New(cfg)
	if err != nil {
		return nil, wrapClusterError(err)
	}
	return &Cluster{coord: coord}, nil
}

// RunMatrix executes every simulation across the worker pool and returns
// order-stable results: results[i] is sims[i]'s outcome exactly as a local
// RunMatrix would produce it (each cell is a pure function of its
// configuration, and Result JSON round-trips bytes exactly). Progress
// callbacks do not cross the wire and are ignored.
func (c *Cluster) RunMatrix(ctx context.Context, sims []*Simulation) ([]Result, error) {
	jobs := make([]cluster.Job, len(sims))
	for i, s := range sims {
		if s == nil {
			return nil, fmt.Errorf("%w: sims[%d] is nil", ErrInvalidOption, i)
		}
		jobs[i] = cluster.Job{Key: s.Fingerprint(), Req: wireRequest(s)}
	}
	out, err := c.coord.Run(ctx, jobs)
	if err != nil {
		return nil, wrapClusterError(err)
	}
	results := make([]Result, len(out))
	for i, jr := range out {
		if err := json.Unmarshal(jr.Result, &results[i]); err != nil {
			return nil, fmt.Errorf("boomsim: decoding sims[%d] result: %w", i, err)
		}
	}
	return results, nil
}

// Stats snapshots the coordinator counters; safe during a running sweep.
func (c *Cluster) Stats() ClusterStats {
	s := c.coord.Stats()
	out := ClusterStats{
		JobsDispatched: s.JobsDispatched,
		JobsCompleted:  s.JobsCompleted,
		JobsResumed:    s.JobsResumed,
		JobsRetried:    s.JobsRetried,
		JobsHedged:     s.JobsHedged,
		CacheHits:      s.CacheHits,
		WorkerDeaths:   s.WorkerDeaths,
		WorkersJoined:  s.WorkersJoined,
		WorkersRemoved: s.WorkersRemoved,
		CellsTotal:     s.CellsTotal,
		CellsRetried:   s.CellsRetried,
		SlowestCellMS:  s.SlowestCellMS,
		Workers:        make([]ClusterWorkerStats, len(s.Workers)),
	}
	for _, sc := range s.SlowestCells {
		out.SlowestCells = append(out.SlowestCells, ClusterCellTiming(sc))
	}
	for i, w := range s.Workers {
		out.Workers[i] = ClusterWorkerStats(w)
	}
	return out
}

// MembershipView reports the coordinator's live opinion of its worker pool:
// one row per tracked endpoint with its circuit-breaker state ("live",
// "suspect" while a half-open breaker probes, "dead" while open or
// retired), plus the aggregate counts. Safe during a running sweep.
func (c *Cluster) MembershipView() ClusterMembershipView {
	v := c.coord.MembershipView()
	out := ClusterMembershipView{Live: v.Live, Suspect: v.Suspect, Dead: v.Dead}
	for _, w := range v.Workers {
		out.Workers = append(out.Workers, ClusterMemberState{Endpoint: w.Endpoint, State: w.State})
	}
	return out
}

// ClusterMembershipView is a Cluster's pool as the coordinator sees it.
type ClusterMembershipView struct {
	Live    int                  `json:"live"`
	Suspect int                  `json:"suspect"`
	Dead    int                  `json:"dead"`
	Workers []ClusterMemberState `json:"workers"`
}

// ClusterMemberState is one worker endpoint's circuit state.
type ClusterMemberState struct {
	Endpoint string `json:"endpoint"`
	State    string `json:"state"`
}

// MetricsHandler serves the coordinator's counters in Prometheus text
// format: jobs dispatched/retried/hedged, cache-hit ratio, per-worker
// request counts, failures and latency.
func (c *Cluster) MetricsHandler() http.Handler { return c.coord.MetricsHandler() }

// ClusterStats is a point-in-time snapshot of a Cluster's counters.
type ClusterStats struct {
	JobsDispatched uint64 `json:"jobs_dispatched"`
	JobsCompleted  uint64 `json:"jobs_completed"`
	// JobsResumed counts cells answered from the sweep journal without any
	// dispatch; on a resumed sweep JobsCompleted is exactly the
	// non-journaled remainder.
	JobsResumed    uint64 `json:"jobs_resumed"`
	JobsRetried    uint64 `json:"jobs_retried"`
	JobsHedged     uint64 `json:"jobs_hedged"`
	CacheHits      uint64 `json:"cache_hits"`
	WorkerDeaths   uint64 `json:"worker_deaths"`
	WorkersJoined  uint64 `json:"workers_joined"`
	WorkersRemoved uint64 `json:"workers_removed"`

	// CellsTotal counts cells settled across sweeps (completed plus resumed
	// from a journal) and CellsRetried the distinct cells that needed at
	// least one re-dispatch — maintained whether or not the sweep is traced.
	CellsTotal   uint64 `json:"cells_total"`
	CellsRetried uint64 `json:"cells_retried"`
	// SlowestCellMS is the slowest settled cell's dispatch-to-settle wall
	// time; SlowestCells the top-N leaderboard behind it, slowest first.
	SlowestCellMS float64             `json:"slowest_cell_ms"`
	SlowestCells  []ClusterCellTiming `json:"slowest_cells,omitempty"`

	Workers []ClusterWorkerStats `json:"workers"`
}

// ClusterCellTiming is one row of a Cluster's slowest-cells leaderboard.
type ClusterCellTiming struct {
	Key    string  `json:"key"`
	Worker string  `json:"worker"`
	MS     float64 `json:"ms"`
}

// ClusterWorkerStats is one worker endpoint's share of a Cluster's
// counters.
type ClusterWorkerStats struct {
	Endpoint string `json:"endpoint"`
	Alive    bool   `json:"alive"`
	// State is the worker's circuit-breaker state: "live", "suspect",
	// "dead" or "removed"; Alive means routable (live or suspect).
	State        string `json:"state"`
	Requests     uint64 `json:"requests"`
	Failures     uint64 `json:"failures"`
	Jobs         uint64 `json:"jobs"`
	LatencyNanos uint64 `json:"latency_nanos"`
}

// CacheHitRatio is the coordinator-observed fraction of completed cells
// answered from worker result caches — the number key-affine routing
// exists to maximise on repeat sweeps.
func (s ClusterStats) CacheHitRatio() float64 {
	if s.JobsCompleted == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(s.JobsCompleted)
}

// RunMatrixDistributed is the one-shot form of Cluster.RunMatrix: build a
// cluster from opts, run the matrix, return order-stable results.
func RunMatrixDistributed(ctx context.Context, sims []*Simulation, opts ...ClusterOption) ([]Result, error) {
	c, err := NewCluster(opts...)
	if err != nil {
		return nil, err
	}
	return c.RunMatrix(ctx, sims)
}

// wireRequest spells out the simulation's full configuration — defaults
// included — so the worker reconstructs the exact Key-identified cell
// regardless of its own defaults. Inline declarative schemes travel as
// their JSON config, so custom scenarios run on workers that have never
// seen them registered.
func wireRequest(s *Simulation) wire.RunRequest {
	imageSeed, walkSeed := s.imageSeed, s.walkSeed
	warm, measure := s.warmInstrs, s.measureInstrs
	req := wire.RunRequest{
		Scheme:        s.schemeName,
		Workload:      s.workloadName,
		Predictor:     s.predictor,
		BTBEntries:    s.btbEntries,
		LLCLatency:    s.llcLatency,
		FootprintKB:   s.footprintKB,
		ImageSeed:     &imageSeed,
		WalkSeed:      &walkSeed,
		WarmInstrs:    &warm,
		MeasureInstrs: &measure,
		MaxCycles:     s.maxCycles,
		FlightEvery:   s.flightEvery,
		NoCycleSkip:   s.noCycleSkip,
	}
	if s.schemeCfg != nil {
		req.Scheme = ""
		req.SchemeConfig = s.schemeCfgJSON()
	}
	return req
}

// wrapClusterError maps coordinator failures onto the public sentinels.
func wrapClusterError(err error) error {
	switch {
	case errors.Is(err, cluster.ErrNoWorkers):
		return fmt.Errorf("%w: %w", ErrNoWorkers, err)
	case errors.Is(err, cluster.ErrWorkerFailed):
		return fmt.Errorf("%w: %w", ErrWorkerFailed, err)
	case errors.Is(err, cluster.ErrCellTimeout):
		return fmt.Errorf("%w: %w", ErrCellTimeout, err)
	case errors.Is(err, cluster.ErrJournalMismatch):
		return fmt.Errorf("%w: %w", ErrJournalMismatch, err)
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return fmt.Errorf("%w: %w", ErrCanceled, err)
	default:
		return err
	}
}
