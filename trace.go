package boomsim

import (
	"io"

	"boomsim/internal/obs"
)

// Trace is a sweep trace: a bounded in-process collector of per-cell spans
// (queue wait, dispatch, retries, simulation time, warm-arena source)
// recorded by RunMatrix (WithMatrixTrace) or a Cluster (WithClusterTrace).
// A Trace carries one minted trace ID; every span it collects is stamped
// with it, so a merged multi-worker sweep stays correlated end to end.
//
// Export with WriteChromeTrace: the output is Chrome trace_event JSON that
// Perfetto (ui.perfetto.dev) and chrome://tracing load directly, one row
// per sweep cell. A Trace is safe for concurrent use and reusable across
// runs (spans accumulate); it is bounded, so a runaway sweep degrades to
// dropped spans rather than unbounded memory.
type Trace struct {
	c *obs.Collector
}

// NewTrace returns an empty trace with a freshly minted trace ID.
func NewTrace() *Trace {
	return &Trace{c: obs.NewCollector(obs.DefaultMaxSpans)}
}

// ID returns the trace's identifier: 32 lowercase hex digits.
func (t *Trace) ID() string { return t.c.ID() }

// Len reports how many spans the trace holds.
func (t *Trace) Len() int { return t.c.Len() }

// Dropped reports spans discarded at the trace's bound.
func (t *Trace) Dropped() uint64 { return t.c.Dropped() }

// WriteChromeTrace writes the trace as Chrome trace_event JSON, byte-stable
// for a given set of spans (fixed field order, deterministic event order,
// timestamps relative to the sweep's first span).
func (t *Trace) WriteChromeTrace(w io.Writer) error { return t.c.WriteChromeTrace(w) }

// collector exposes the underlying span sink to the matrix and cluster
// plumbing in this package.
func (t *Trace) collector() *obs.Collector { return t.c }
