package boomsim_test

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// TestConsumersUseOnlyThePublicAPI pins the api boundary: the binaries in
// cmd/, the programs in examples/, the boomsimd service layer in
// internal/server and the cluster coordinator in internal/cluster must
// consume the simulator through the public boomsim package, never by
// reaching into the internal simulation layers. Lower-level plumbing
// packages (trace, program, frontend, ...) stay importable for tools that
// genuinely drive hand-built engines; the three banned packages are the
// ones the public API wraps.
func TestConsumersUseOnlyThePublicAPI(t *testing.T) {
	banned := []string{
		"boomsim/internal/sim",
		"boomsim/internal/scheme",
		"boomsim/internal/workload",
	}
	for _, root := range []string{"cmd", "examples", "internal/server", "internal/cluster"} {
		err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() || !strings.HasSuffix(path, ".go") {
				return nil
			}
			fset := token.NewFileSet()
			f, err := parser.ParseFile(fset, path, nil, parser.ImportsOnly)
			if err != nil {
				return err
			}
			for _, imp := range f.Imports {
				ip, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					continue
				}
				for _, b := range banned {
					if ip == b {
						t.Errorf("%s imports %s; consume the public boomsim API instead", path, ip)
					}
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("walking %s: %v", root, err)
		}
	}
}

// TestClusterSpeaksOnlyWireTypes pins the coordinator's tighter contract:
// internal/cluster may depend, module-internally, on nothing but the shared
// wire vocabulary. The public boomsim package builds its distributed runner
// on the coordinator, so any other internal import is either an import
// cycle waiting to happen (boomsim itself) or a layering leak (the server's
// implementation); the coordinator must treat workers as remote HTTP
// services, full stop.
func TestClusterSpeaksOnlyWireTypes(t *testing.T) {
	allowed := map[string]bool{"boomsim/internal/wire": true}
	err := filepath.WalkDir("internal/cluster", func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !strings.HasSuffix(path, ".go") {
			return nil
		}
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, path, nil, parser.ImportsOnly)
		if err != nil {
			return err
		}
		for _, imp := range f.Imports {
			ip, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if (ip == "boomsim" || strings.HasPrefix(ip, "boomsim/")) && !allowed[ip] {
				t.Errorf("%s imports %s; internal/cluster may only use the standard library and boomsim/internal/wire", path, ip)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("walking internal/cluster: %v", err)
	}
}
