package boomsim_test

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"boomsim"
)

// TestConsumersUseOnlyThePublicAPI pins the api boundary: the binaries in
// cmd/, the programs in examples/, the boomsimd service layer in
// internal/server and the cluster coordinator in internal/cluster must
// consume the simulator through the public boomsim package, never by
// reaching into the internal simulation layers. Lower-level plumbing
// packages (trace, program, frontend, ...) stay importable for tools that
// genuinely drive hand-built engines; the three banned packages are the
// ones the public API wraps.
func TestConsumersUseOnlyThePublicAPI(t *testing.T) {
	banned := []string{
		"boomsim/internal/sim",
		"boomsim/internal/scheme",
		"boomsim/internal/workload",
	}
	for _, root := range []string{"cmd", "examples", "internal/server", "internal/cluster"} {
		err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() || !strings.HasSuffix(path, ".go") {
				return nil
			}
			fset := token.NewFileSet()
			f, err := parser.ParseFile(fset, path, nil, parser.ImportsOnly)
			if err != nil {
				return err
			}
			for _, imp := range f.Imports {
				ip, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					continue
				}
				for _, b := range banned {
					if ip == b {
						t.Errorf("%s imports %s; consume the public boomsim API instead", path, ip)
					}
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("walking %s: %v", root, err)
		}
	}
}

// TestSchemeConfigIsPureData pins the config plane's core property: a
// SchemeConfig (and everything reachable from it) is plain serializable
// data — no functions, channels, interfaces or unsafe pointers anywhere in
// the type graph. This is what guarantees schemes round-trip through JSON,
// travel on the wire, and can never smuggle a closure back in; a `Build
// func` field reappearing on any config struct fails here.
func TestSchemeConfigIsPureData(t *testing.T) {
	seen := map[reflect.Type]bool{}
	var check func(path string, ty reflect.Type)
	check = func(path string, ty reflect.Type) {
		if seen[ty] {
			return
		}
		seen[ty] = true
		switch ty.Kind() {
		case reflect.Func, reflect.Chan, reflect.Interface, reflect.UnsafePointer:
			t.Errorf("%s has kind %s; scheme configs must be pure data", path, ty.Kind())
		case reflect.Pointer, reflect.Slice, reflect.Array:
			check(path, ty.Elem())
		case reflect.Map:
			check(path+"(key)", ty.Key())
			check(path+"(value)", ty.Elem())
		case reflect.Struct:
			for i := 0; i < ty.NumField(); i++ {
				f := ty.Field(i)
				check(path+"."+f.Name, f.Type)
			}
		}
	}
	check("SchemeConfig", reflect.TypeOf(boomsim.SchemeConfig{}))
}

// TestServerSpeaksPublicAPIAndWireOnly pins boomsimd's side of the
// cluster↔server contract: internal/server may depend, module-internally,
// on nothing but the public boomsim package, the shared wire vocabulary and
// the durable result store under its cache — in particular never on
// internal/cluster, so the service and the coordinator only ever meet over
// HTTP with wire-typed bodies.
func TestServerSpeaksPublicAPIAndWireOnly(t *testing.T) {
	allowed := map[string]bool{
		"boomsim":                true,
		"boomsim/internal/wire":  true,
		"boomsim/internal/store": true,
	}
	err := filepath.WalkDir("internal/server", func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !strings.HasSuffix(path, ".go") {
			return nil
		}
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, path, nil, parser.ImportsOnly)
		if err != nil {
			return err
		}
		for _, imp := range f.Imports {
			ip, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if (ip == "boomsim" || strings.HasPrefix(ip, "boomsim/")) && !allowed[ip] {
				t.Errorf("%s imports %s; internal/server may only use the standard library, the public boomsim package and boomsim/internal/wire", path, ip)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("walking internal/server: %v", err)
	}
}

// TestClusterSpeaksOnlyWireTypes pins the coordinator's tighter contract:
// internal/cluster may depend, module-internally, on nothing but the shared
// wire vocabulary and the leaf observability plane (spans and slog helpers
// with no boomsim dependencies of their own). The public boomsim package
// builds its distributed runner on the coordinator, so any other internal
// import is either an import cycle waiting to happen (boomsim itself) or a
// layering leak (the server's implementation); the coordinator must treat
// workers as remote HTTP services, full stop.
func TestClusterSpeaksOnlyWireTypes(t *testing.T) {
	allowed := map[string]bool{
		"boomsim/internal/wire": true,
		"boomsim/internal/obs":  true,
	}
	err := filepath.WalkDir("internal/cluster", func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !strings.HasSuffix(path, ".go") {
			return nil
		}
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, path, nil, parser.ImportsOnly)
		if err != nil {
			return err
		}
		for _, imp := range f.Imports {
			ip, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if (ip == "boomsim" || strings.HasPrefix(ip, "boomsim/")) && !allowed[ip] {
				t.Errorf("%s imports %s; internal/cluster may only use the standard library and boomsim/internal/wire", path, ip)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("walking internal/cluster: %v", err)
	}
}

// TestObsIsALeaf pins the observability plane's position in the layering:
// internal/obs (trace IDs, the span collector, slog helpers) is imported by
// everything — the root package, the coordinator, the CLIs — so it may
// import nothing from the module at all. A boomsim import appearing here is
// an import cycle waiting to happen.
func TestObsIsALeaf(t *testing.T) {
	err := filepath.WalkDir("internal/obs", func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !strings.HasSuffix(path, ".go") {
			return nil
		}
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, path, nil, parser.ImportsOnly)
		if err != nil {
			return err
		}
		for _, imp := range f.Imports {
			ip, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if ip == "boomsim" || strings.HasPrefix(ip, "boomsim/") {
				t.Errorf("%s imports %s; internal/obs must stay a standard-library-only leaf", path, ip)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("walking internal/obs: %v", err)
	}
}

// TestChaosStaysOutOfProduction pins the fault-injection harness to test
// code: internal/chaos exists to tear writes and kill requests, so the only
// files allowed to import it are _test.go files. A production import — a
// binary, the server, the coordinator — would ship deliberate data
// corruption.
func TestChaosStaysOutOfProduction(t *testing.T) {
	err := filepath.WalkDir(".", func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name == ".git" || name == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		if strings.HasPrefix(path, filepath.Join("internal", "chaos")+string(filepath.Separator)) {
			return nil // the harness may of course be itself
		}
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, path, nil, parser.ImportsOnly)
		if err != nil {
			return err
		}
		for _, imp := range f.Imports {
			if ip, uerr := strconv.Unquote(imp.Path.Value); uerr == nil && ip == "boomsim/internal/chaos" {
				t.Errorf("%s imports boomsim/internal/chaos; the fault-injection harness is test-only", path)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("walking module: %v", err)
	}
}

// TestExperimentEngineStaysPure pins the experiment engine's layering:
// internal/exp (and its statkit subpackage) is pure spec/statistics/verdict
// logic. It may use the standard library, its own statkit, and the shared
// wire/stats vocabularies — never the public boomsim package (that is an
// import cycle: boomsim.RunExperiment is built on exp) and never the
// simulation internals (the engine consumes flat metric maps, so it can be
// driven by hand-built cells in tests and by the public API in production).
func TestExperimentEngineStaysPure(t *testing.T) {
	allowed := map[string]bool{
		"boomsim/internal/exp/statkit": true,
		"boomsim/internal/wire":        true,
		"boomsim/internal/stats":       true,
	}
	err := filepath.WalkDir("internal/exp", func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !strings.HasSuffix(path, ".go") {
			return nil
		}
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, path, nil, parser.ImportsOnly)
		if err != nil {
			return err
		}
		for _, imp := range f.Imports {
			ip, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if (ip == "boomsim" || strings.HasPrefix(ip, "boomsim/")) && !allowed[ip] {
				t.Errorf("%s imports %s; internal/exp may only use the standard library, statkit, and boomsim/internal/{wire,stats}", path, ip)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("walking internal/exp: %v", err)
	}
}
