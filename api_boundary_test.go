package boomsim_test

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// TestConsumersUseOnlyThePublicAPI pins the api boundary: the binaries in
// cmd/, the programs in examples/ and the boomsimd service layer in
// internal/server must consume the simulator through the public boomsim
// package, never by reaching into the internal simulation layers.
// Lower-level plumbing packages (trace, program, frontend, ...) stay
// importable for tools that genuinely drive hand-built engines; the three
// banned packages are the ones the public API wraps.
func TestConsumersUseOnlyThePublicAPI(t *testing.T) {
	banned := []string{
		"boomsim/internal/sim",
		"boomsim/internal/scheme",
		"boomsim/internal/workload",
	}
	for _, root := range []string{"cmd", "examples", "internal/server"} {
		err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() || !strings.HasSuffix(path, ".go") {
				return nil
			}
			fset := token.NewFileSet()
			f, err := parser.ParseFile(fset, path, nil, parser.ImportsOnly)
			if err != nil {
				return err
			}
			for _, imp := range f.Imports {
				ip, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					continue
				}
				for _, b := range banned {
					if ip == b {
						t.Errorf("%s imports %s; consume the public boomsim API instead", path, ip)
					}
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("walking %s: %v", root, err)
		}
	}
}
