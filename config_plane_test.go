package boomsim_test

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"testing"

	"boomsim"
)

// The config plane's contract: schemes are pure data. Every built-in
// scheme's SchemeConfig must survive a JSON round trip byte-identically,
// and a Simulation built from the round-tripped config must reproduce the
// golden stats corpus exactly — the two halves of "declarative configs are
// the schemes", with no hidden state living outside the serialized form.

// TestSchemeConfigsRoundTripJSON pins the serialization half: marshal →
// unmarshal → marshal is the identity on bytes for every registered scheme.
func TestSchemeConfigsRoundTripJSON(t *testing.T) {
	for _, info := range boomsim.Schemes() {
		info := info
		t.Run(info.Name, func(t *testing.T) {
			first, err := json.Marshal(info.Config)
			if err != nil {
				t.Fatal(err)
			}
			roundTripped, err := boomsim.ParseSchemeConfig(first)
			if err != nil {
				t.Fatalf("round-tripping %s: %v", first, err)
			}
			second, err := json.Marshal(roundTripped)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(first, second) {
				t.Errorf("config did not round-trip byte-identically:\nfirst:  %s\nsecond: %s", first, second)
			}
		})
	}
}

// TestRoundTrippedConfigReproducesGolden pins the semantic half: running a
// golden cell from the JSON-round-tripped config (via WithSchemeConfig,
// bypassing the registry entirely) reproduces the checked-in golden corpus
// byte for byte.
func TestRoundTrippedConfigReproducesGolden(t *testing.T) {
	for _, info := range boomsim.Schemes() {
		info := info
		if len(info.Name) >= 4 && info.Name[:4] == "Test" {
			continue // other tests' registrations; not part of the corpus
		}
		t.Run(info.Name, func(t *testing.T) {
			t.Parallel()
			raw, err := json.Marshal(info.Config)
			if err != nil {
				t.Fatal(err)
			}
			cfg, err := boomsim.ParseSchemeConfig(raw)
			if err != nil {
				t.Fatal(err)
			}
			s, err := boomsim.New(
				boomsim.WithSchemeConfig(cfg),
				boomsim.WithWorkload("Apache"),
				boomsim.WithFootprintKB(64),
				boomsim.WithWindow(5_000, 20_000),
				boomsim.WithSeeds(7, 11),
			)
			if err != nil {
				t.Fatal(err)
			}
			r, err := s.Run(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			headline := r
			headline.Stats = nil
			got, err := json.MarshalIndent(headline, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, '\n')
			want, err := os.ReadFile(goldenFile(info.Name, "Apache"))
			if err != nil {
				t.Fatalf("reading golden cell: %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("config-built run drifted from the registry-built golden corpus:\n%s",
					goldenDiff(t, want, got))
			}
		})
	}
}

// TestWithSchemeConfigCustomScheme pins the user story the config plane
// exists for: a novel scheme — a deeper-FTQ Boomerang variant no registry
// entry describes — loads from a JSON file and runs end to end, its inline
// config distinguishing its cache identity from the stock scheme's.
func TestWithSchemeConfigCustomScheme(t *testing.T) {
	cfg, err := boomsim.LoadSchemeConfig("testdata/schemes/boomerang-ftq64.json")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Name != "Boomerang-FTQ64" {
		t.Fatalf("loaded scheme %q, want Boomerang-FTQ64", cfg.Name)
	}
	custom, err := boomsim.New(
		boomsim.WithSchemeConfig(cfg),
		boomsim.WithWorkload("Apache"),
		boomsim.WithFootprintKB(64),
		boomsim.WithWindow(5_000, 20_000),
	)
	if err != nil {
		t.Fatal(err)
	}
	stock, err := boomsim.New(
		boomsim.WithScheme("Boomerang"),
		boomsim.WithWorkload("Apache"),
		boomsim.WithFootprintKB(64),
		boomsim.WithWindow(5_000, 20_000),
	)
	if err != nil {
		t.Fatal(err)
	}
	if custom.Key() == stock.Key() {
		t.Error("inline scheme config must contribute to the simulation Key")
	}
	r, err := custom.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if r.Scheme != "Boomerang-FTQ64" {
		t.Errorf("result reports scheme %q, want the config's name", r.Scheme)
	}
	if r.Instructions < 20_000 {
		t.Errorf("custom scheme retired only %d instructions", r.Instructions)
	}
	if len(r.Stats) == 0 || r.Stats["boomerang.probes"] == 0 {
		t.Errorf("custom Boomerang variant published no boomerang-unit stats: %v", r.Stats)
	}
}

// TestParseSchemeConfigRejectsGarbage pins the strict decode: unknown
// fields and invalid kinds are configuration errors, not silent defaults.
func TestParseSchemeConfigRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		`{"name":"x","ftq_deepness":64}`,                                                            // typo'd field
		`{"name":"x","prefetcher":{"kind":"psychic"}}`,                                              // unknown kind
		`{"name":"x","miss_policy":{"kind":"boomerang","two_level":{"l2_entries":1,"l2_assoc":1}}}`, // mismatched params
		`{"name":"x","prefetcher":{"kind":"temporal","temporal":{"history_entries":16,"index_entries":8,"region_lines":4,"lookahead":8,"issue_rate":-1}}}`, // silently-disabling issue rate
		`{"ftq_depth":8}`, // no name
	} {
		if _, err := boomsim.ParseSchemeConfig([]byte(bad)); err == nil {
			t.Errorf("ParseSchemeConfig(%s) accepted garbage", bad)
		}
	}
}
