// Package par provides the bounded worker pool every fan-out in the module
// shares: the experiment runner, the public RunMatrix, and the sampled-run
// harness all dispatch through ForEach instead of spawning one goroutine per
// job, so concurrency is capped by the caller's worker budget rather than
// the size of the work list.
package par

import (
	"context"
	"sync"
)

// ForEach runs fn(0..n-1) across min(workers, n) goroutines pulling from a
// shared index stream. Order of execution is unspecified; callers must make
// fn(i) write only to the i-th slot of any shared output. workers <= 1 runs
// sequentially on the calling goroutine.
//
// Cancellation: once ctx is done, no further indices are dispatched —
// queued work is abandoned, in-flight fn calls run to completion (pass a
// ctx-aware fn for prompt teardown), and ForEach returns ctx's error. A nil
// error means fn ran for every index.
func ForEach(ctx context.Context, workers, n int, fn func(int)) error {
	if n == 0 {
		return ctx.Err()
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			fn(i)
		}
		return nil
	}
	next := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	var err error
dispatch:
	for i := 0; i < n; i++ {
		// Checked before the select: a select with both channels ready
		// chooses randomly, and an already-canceled context must never
		// dispatch.
		if err = ctx.Err(); err != nil {
			break
		}
		select {
		case next <- i:
		case <-ctx.Done():
			err = ctx.Err()
			break dispatch
		}
	}
	close(next)
	wg.Wait()
	return err
}
