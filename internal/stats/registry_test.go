package stats

import (
	"encoding/json"
	"reflect"
	"testing"
)

func TestRegistryNamespacesAndLookup(t *testing.T) {
	r := NewRegistry()
	fe := r.Namespace("frontend")
	fe.SetInt("cycles", 100)
	fe.SetUint("retired", 250)
	bpu := r.Namespace("bpu")
	bpu.Set("miss_rate", 0.25)
	bpu.Namespace("tage").SetUint("tables", 4)

	if r.Len() != 4 {
		t.Fatalf("Len = %d, want 4", r.Len())
	}
	for name, want := range map[string]float64{
		"frontend.cycles":  100,
		"frontend.retired": 250,
		"bpu.miss_rate":    0.25,
		"bpu.tage.tables":  4,
	} {
		if got, ok := r.Get(name); !ok || got != want {
			t.Errorf("Get(%q) = %v, %v; want %v, true", name, got, ok, want)
		}
	}
	if _, ok := r.Get("frontend.nonsense"); ok {
		t.Error("Get returned a value for an unregistered name")
	}
	if got := r.Namespaces(); !reflect.DeepEqual(got, []string{"bpu", "frontend"}) {
		t.Errorf("Namespaces() = %v", got)
	}
}

func TestRegistryOrderAndOverwrite(t *testing.T) {
	r := NewRegistry()
	r.Set("b", 1)
	r.Set("a", 2)
	r.Set("b", 3) // overwrite keeps the original slot
	if got := r.Names(); !reflect.DeepEqual(got, []string{"b", "a"}) {
		t.Errorf("Names() = %v, want registration order [b a]", got)
	}
	if v, _ := r.Get("b"); v != 3 {
		t.Errorf("overwritten b = %v, want 3", v)
	}
	var visited []string
	r.Each(func(name string, v float64) { visited = append(visited, name) })
	if !reflect.DeepEqual(visited, []string{"b", "a"}) {
		t.Errorf("Each order = %v", visited)
	}
}

func TestRegistryJSONIsSortedAndStable(t *testing.T) {
	r := NewRegistry()
	r.Namespace("z").Set("late", 1)
	r.Namespace("a").Set("early", 2)
	first, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	if string(first) != `{"a.early":2,"z.late":1}` {
		t.Errorf("JSON = %s, want name-sorted flat object", first)
	}
	// Round trip through the map form stays byte-identical — the property
	// cluster reassembly relies on.
	var m map[string]float64
	if err := json.Unmarshal(first, &m); err != nil {
		t.Fatal(err)
	}
	second, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	if string(first) != string(second) {
		t.Errorf("JSON did not round-trip: %s vs %s", first, second)
	}
}
