// Package stats provides the sampling statistics the paper's methodology
// relies on: SMARTS-style repeated measurements with confidence intervals
// ("performance is measured with an average error of less than 2% at a 95%
// confidence level", Section V). Simulations here are deterministic per
// seed, so samples come from varying the execution seed — the analogue of
// SMARTS drawing sampling units across a long execution.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Sample accumulates observations of one scalar metric.
type Sample struct {
	values []float64
}

// Add appends an observation.
func (s *Sample) Add(v float64) { s.values = append(s.values, v) }

// N returns the observation count.
func (s *Sample) N() int { return len(s.values) }

// Mean returns the sample mean (0 for an empty sample).
func (s *Sample) Mean() float64 {
	if len(s.values) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.values {
		sum += v
	}
	return sum / float64(len(s.values))
}

// Variance returns the unbiased sample variance.
func (s *Sample) Variance() float64 {
	n := len(s.values)
	if n < 2 {
		return 0
	}
	m := s.Mean()
	acc := 0.0
	for _, v := range s.values {
		d := v - m
		acc += d * d
	}
	return acc / float64(n-1)
}

// StdDev returns the sample standard deviation.
func (s *Sample) StdDev() float64 { return math.Sqrt(s.Variance()) }

// Min and Max return the observed extremes.
func (s *Sample) Min() float64 { return s.extreme(func(a, b float64) bool { return a < b }) }

// Max returns the largest observation.
func (s *Sample) Max() float64 { return s.extreme(func(a, b float64) bool { return a > b }) }

func (s *Sample) extreme(better func(a, b float64) bool) float64 {
	if len(s.values) == 0 {
		return 0
	}
	best := s.values[0]
	for _, v := range s.values[1:] {
		if better(v, best) {
			best = v
		}
	}
	return best
}

// Percentile returns the p-th percentile (0..100) by nearest-rank.
func (s *Sample) Percentile(p float64) float64 {
	if len(s.values) == 0 {
		return 0
	}
	sorted := append([]float64(nil), s.values...)
	sort.Float64s(sorted)
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// CI95 returns the half-width of the 95% confidence interval on the mean,
// using the Student t distribution.
func (s *Sample) CI95() float64 {
	n := len(s.values)
	if n < 2 {
		return 0
	}
	return tCritical95(n-1) * s.StdDev() / math.Sqrt(float64(n))
}

// RelativeError95 returns CI95/Mean — the paper's "<2% at 95% confidence"
// quantity. Returns +Inf for a zero mean with nonzero spread.
func (s *Sample) RelativeError95() float64 {
	m := s.Mean()
	ci := s.CI95()
	if m == 0 {
		if ci == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(ci / m)
}

// String summarises the sample.
func (s *Sample) String() string {
	return fmt.Sprintf("%.4g ± %.2g (n=%d, 95%% CI)", s.Mean(), s.CI95(), s.N())
}

// tCritical95 returns the two-sided 95% Student-t critical value for the
// given degrees of freedom (table for small df, normal approximation above).
func tCritical95(df int) float64 {
	table := []float64{
		0:  0, // unused
		1:  12.706,
		2:  4.303,
		3:  3.182,
		4:  2.776,
		5:  2.571,
		6:  2.447,
		7:  2.365,
		8:  2.306,
		9:  2.262,
		10: 2.228,
		11: 2.201,
		12: 2.179,
		13: 2.160,
		14: 2.145,
		15: 2.131,
		16: 2.120,
		17: 2.110,
		18: 2.101,
		19: 2.093,
		20: 2.086,
		25: 2.060,
		30: 2.042,
		40: 2.021,
		60: 2.000,
	}
	if df <= 0 {
		return math.Inf(1)
	}
	if df < len(table) && table[df] != 0 {
		return table[df]
	}
	// Interpolate through the sparse tail, else use the normal limit.
	switch {
	case df < 25:
		return table[20]
	case df < 30:
		return table[25]
	case df < 40:
		return table[30]
	case df < 60:
		return table[40]
	case df < 120:
		return table[60]
	}
	return 1.960
}
