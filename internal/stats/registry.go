package stats

import (
	"encoding/json"
	"sort"
	"strings"
)

// Registry is a hierarchical namespace of named scalar statistics: the
// measurement plane every simulated component reports into. Each component
// (front end, cache hierarchy, BTB, BPU, prefetcher, Boomerang unit)
// publishes its counters under its own namespace — "frontend", "cache",
// "btb", ... — and the full registry flows unchanged through sim.Result,
// the public boomsim.Result, the wire DTOs, boomsimd responses, Prometheus
// metrics, cluster reassembly and the CLIs, so every layer of the stack can
// report full-fidelity per-component statistics instead of a hand-picked
// headline subset.
//
// Names are dotted paths ("frontend.fetch_stall_cycles"); Namespace returns
// a view that prefixes a path segment, so components never see or repeat
// their parent's location. Values are float64 — every simulator counter fits
// without precision loss at simulation scale, and the one numeric type keeps
// the JSON and Prometheus renderings trivial. Registration order is
// preserved for deterministic text output; JSON marshals sorted by name
// (byte-stable, the property the cluster's reassembly tests pin).
//
// A Registry is not safe for concurrent use; publish into it after a run,
// not from the simulation hot path.
type Registry struct {
	prefix string
	m      *regStore
}

type regStore struct {
	names  []string
	values map[string]float64
}

// Publisher is implemented by components that can report their counters
// into a Registry namespace.
type Publisher interface {
	PublishStats(*Registry)
}

// NewRegistry returns an empty root registry.
func NewRegistry() *Registry {
	return &Registry{m: &regStore{values: map[string]float64{}}}
}

// Namespace returns a view of r under the given path segment: sets through
// the view land at "<prefix>.<name>". Nesting composes.
func (r *Registry) Namespace(name string) *Registry {
	prefix := name
	if r.prefix != "" {
		prefix = r.prefix + "." + name
	}
	return &Registry{prefix: prefix, m: r.m}
}

// Set records one statistic under this namespace, overwriting any previous
// value of the same name.
func (r *Registry) Set(name string, v float64) {
	full := name
	if r.prefix != "" {
		full = r.prefix + "." + name
	}
	if _, ok := r.m.values[full]; !ok {
		r.m.names = append(r.m.names, full)
	}
	r.m.values[full] = v
}

// SetUint and SetInt are Set for the counter types the components keep.
func (r *Registry) SetUint(name string, v uint64) { r.Set(name, float64(v)) }

// SetInt records a signed counter.
func (r *Registry) SetInt(name string, v int64) { r.Set(name, float64(v)) }

// Get returns the statistic registered under the full dotted name.
func (r *Registry) Get(name string) (float64, bool) {
	v, ok := r.m.values[name]
	return v, ok
}

// Len returns the number of registered statistics.
func (r *Registry) Len() int { return len(r.m.names) }

// Names returns every registered full name in registration order.
func (r *Registry) Names() []string {
	return append([]string(nil), r.m.names...)
}

// Each visits every statistic in registration order.
func (r *Registry) Each(fn func(name string, v float64)) {
	for _, n := range r.m.names {
		fn(n, r.m.values[n])
	}
}

// Map returns a flat copy of the registry, ready for JSON.
func (r *Registry) Map() map[string]float64 {
	out := make(map[string]float64, len(r.m.names))
	for n, v := range r.m.values {
		out[n] = v
	}
	return out
}

// Namespaces returns the sorted set of top-level namespace segments.
func (r *Registry) Namespaces() []string {
	seen := map[string]bool{}
	var out []string
	for _, n := range r.m.names {
		top, _, _ := strings.Cut(n, ".")
		if !seen[top] {
			seen[top] = true
			out = append(out, top)
		}
	}
	sort.Strings(out)
	return out
}

// MarshalJSON renders the registry as one flat object sorted by name.
func (r *Registry) MarshalJSON() ([]byte, error) {
	return json.Marshal(r.Map())
}
