package stats

import (
	"math"
	"testing"
	"testing/quick"

	"boomsim/internal/xrand"
)

func TestEmptySample(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.Variance() != 0 || s.CI95() != 0 || s.N() != 0 {
		t.Fatal("empty sample must be all zeros")
	}
	if s.Min() != 0 || s.Max() != 0 || s.Percentile(50) != 0 {
		t.Fatal("empty sample extremes must be zero")
	}
}

func TestKnownValues(t *testing.T) {
	var s Sample
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if s.Mean() != 5 {
		t.Fatalf("mean = %v", s.Mean())
	}
	if got := s.Variance(); math.Abs(got-4.571428) > 1e-5 {
		t.Fatalf("variance = %v", got)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatal("extremes wrong")
	}
	if s.Percentile(50) != 4 {
		t.Fatalf("median = %v", s.Percentile(50))
	}
	if s.Percentile(100) != 9 || s.Percentile(0) != 2 {
		t.Fatal("percentile bounds wrong")
	}
}

func TestSingleObservation(t *testing.T) {
	var s Sample
	s.Add(7)
	if s.Mean() != 7 || s.Variance() != 0 || s.CI95() != 0 {
		t.Fatal("single observation stats wrong")
	}
}

func TestCI95ShrinksWithN(t *testing.T) {
	rng := xrand.New(3)
	var small, large Sample
	for i := 0; i < 5; i++ {
		small.Add(rng.Float64())
	}
	rng = xrand.New(3)
	for i := 0; i < 500; i++ {
		large.Add(rng.Float64())
	}
	if large.CI95() >= small.CI95() {
		t.Fatalf("CI should shrink with n: %v vs %v", large.CI95(), small.CI95())
	}
}

func TestCI95Coverage(t *testing.T) {
	// Empirical check: the 95% CI of samples from a known distribution
	// should contain the true mean ~95% of the time.
	rng := xrand.New(17)
	trueMean := 0.5
	contained := 0
	const trials = 400
	for trial := 0; trial < trials; trial++ {
		var s Sample
		for i := 0; i < 20; i++ {
			s.Add(rng.Float64())
		}
		if math.Abs(s.Mean()-trueMean) <= s.CI95() {
			contained++
		}
	}
	frac := float64(contained) / trials
	if frac < 0.90 || frac > 0.99 {
		t.Fatalf("CI95 coverage %.3f, want ~0.95", frac)
	}
}

func TestRelativeError(t *testing.T) {
	var s Sample
	for i := 0; i < 50; i++ {
		s.Add(100 + float64(i%5))
	}
	if re := s.RelativeError95(); re <= 0 || re > 0.02 {
		t.Fatalf("relative error %v out of expected range", re)
	}
	var z Sample
	z.Add(-1)
	z.Add(1)
	if !math.IsInf(z.RelativeError95(), 1) {
		t.Fatal("zero-mean nonzero-spread must be +Inf")
	}
}

func TestTCriticalMonotone(t *testing.T) {
	prev := math.Inf(1)
	for df := 1; df <= 200; df++ {
		v := tCritical95(df)
		if v > prev+1e-9 {
			t.Fatalf("t-critical not non-increasing at df=%d: %v > %v", df, v, prev)
		}
		prev = v
	}
	if got := tCritical95(1000); got != 1.960 {
		t.Fatalf("large-df limit = %v", got)
	}
	if !math.IsInf(tCritical95(0), 1) {
		t.Fatal("df=0 must be infinite")
	}
}

func TestVarianceNonNegativeProperty(t *testing.T) {
	if err := quick.Check(func(vals []float64) bool {
		var s Sample
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			// Bound magnitude to avoid float overflow artifacts.
			s.Add(math.Mod(v, 1e6))
		}
		return s.Variance() >= 0
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestString(t *testing.T) {
	var s Sample
	s.Add(1)
	s.Add(2)
	if s.String() == "" {
		t.Fatal("empty string")
	}
}
