// Package exp is the hypothesis-driven experiment engine: declarative
// experiment specs (hypothesis, schemes under test, workload set, seed
// list, parameter matrix, success criteria), multi-seed statistical
// aggregation, and machine-checked PASS/FAIL/INCONCLUSIVE verdicts.
//
// The package is deliberately simulator-agnostic plain data and math: it
// never imports the public boomsim package or the simulation internals.
// Spec validation resolves names through an injected Env, and evaluation
// consumes flat per-cell metric maps — so the engine layers cleanly under
// boomsim.RunExperiment (which supplies the registries and the matrix
// runner) without an import cycle, and its logic is testable with
// hand-built cells. The spec/statistics/verdict plane defined here is what
// checked-in paper claims (testdata/experiments/), the boomctl experiment
// subcommand and CI's experiment-smoke job all share.
package exp

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
)

// SpecVersion is the experiment spec format version this engine reads and
// writes. Specs carry it explicitly so stored experiments fail loudly on a
// format change instead of silently reinterpreting fields.
const SpecVersion = 1

// Typed validation errors. Callers (and the invalid-spec golden corpus)
// match them with errors.Is; the concrete errors wrap these with the
// offending field and value.
var (
	// ErrInvalidSpec covers structural problems: wrong version, empty
	// seeds, no workloads, duplicate schemes, malformed criteria.
	ErrInvalidSpec = errors.New("exp: invalid experiment spec")

	// ErrUnknownScheme means the spec names a scheme the registry does not
	// know (and no inline scheme config defines).
	ErrUnknownScheme = errors.New("exp: unknown scheme")

	// ErrUnknownWorkload means the spec names a workload the registry does
	// not know.
	ErrUnknownWorkload = errors.New("exp: unknown workload")

	// ErrUnknownMetric means a criterion references a metric that is
	// neither derived (speedup/coverage/recovery), nor a headline result
	// field, nor — at evaluation time — present in the per-component stats
	// registry.
	ErrUnknownMetric = errors.New("exp: unknown metric")
)

// Spec is one complete declarative experiment: what to run, how many seeds
// to run it across, and what the result is supposed to show. Field order
// here is the canonical JSON order — specs round-trip byte-identically
// through ParseSpec and MarshalIndent, which the golden round-trip test
// pins for every checked-in spec.
type Spec struct {
	// Version is the spec format version; must equal SpecVersion.
	Version int `json:"version"`
	// Name identifies the experiment (report headers, file names).
	Name string `json:"name"`
	// Hypothesis is the human statement the criteria below make checkable,
	// e.g. "Boomerang recovers the majority of the Perfect-BTB speedup on
	// server workloads".
	Hypothesis string `json:"hypothesis"`
	// Baseline is the control scheme every derived metric (speedup,
	// coverage, recovery) is computed against.
	Baseline string `json:"baseline"`
	// Candidates are the registry schemes under test, compared against
	// Baseline. Together with SchemeConfigs at least one is required.
	Candidates []string `json:"candidates,omitempty"`
	// SchemeConfigs are inline declarative scheme definitions (the
	// boomsim.SchemeConfig JSON format) under test alongside Candidates —
	// novel scenarios travel inside the spec, no registration needed.
	SchemeConfigs []json.RawMessage `json:"scheme_configs,omitempty"`
	// Workloads are the registry workloads the schemes run on.
	Workloads []string `json:"workloads"`
	// Seeds are the replication axis: each seed runs every cell once
	// (seeding both code-image generation and the oracle walk), and
	// metrics aggregate across seeds into mean/stderr/CI95. Statistical
	// criteria need >= 2; the paper specs use >= 3.
	Seeds []uint64 `json:"seeds"`
	// Window optionally overrides the measurement methodology.
	Window *Window `json:"window,omitempty"`
	// Matrix optionally crosses the scheme x workload x seed sweep with
	// microarchitectural parameter axes; every combination is one cell
	// group and criteria must hold at every point.
	Matrix *Matrix `json:"matrix,omitempty"`
	// Metrics optionally names extra metrics to aggregate into the report
	// beyond the defaults and whatever the criteria reference.
	Metrics []string `json:"metrics,omitempty"`
	// Criteria are the machine-checked success conditions; at least one is
	// required — an experiment without criteria is a sweep, not a test.
	Criteria []Criterion `json:"criteria"`
}

// Window is a spec's measurement methodology override: warm instructions
// (statistics discarded), then measured instructions.
type Window struct {
	Warm    uint64 `json:"warm"`
	Measure uint64 `json:"measure"`
}

// Matrix is a spec's parameter axes. Each listed axis multiplies the cell
// count; an empty axis means "the default". Points enumerate in field
// order with the last axis fastest, and each point is reported and judged
// separately.
type Matrix struct {
	// BTBEntries sweeps the basic-block BTB capacity.
	BTBEntries []int `json:"btb_entries,omitempty"`
	// LLCLatency sweeps the average LLC round-trip latency in cycles.
	LLCLatency []int `json:"llc_latency,omitempty"`
	// FootprintKB sweeps the workload instruction footprint override.
	FootprintKB []int `json:"footprint_kb,omitempty"`
	// Predictor sweeps the direction predictor ("tage", "bimodal",
	// "never-taken").
	Predictor []string `json:"predictor,omitempty"`
}

// Point is one resolved parameter-matrix combination. The zero value means
// "all defaults" and is what a spec without a matrix runs at.
type Point struct {
	BTBEntries  int    `json:"btb_entries,omitempty"`
	LLCLatency  int    `json:"llc_latency,omitempty"`
	FootprintKB int    `json:"footprint_kb,omitempty"`
	Predictor   string `json:"predictor,omitempty"`
}

// IsZero reports whether the point is all defaults.
func (p Point) IsZero() bool { return p == Point{} }

// String renders the point compactly for report rows ("defaults" for the
// zero point).
func (p Point) String() string {
	if p.IsZero() {
		return "defaults"
	}
	var parts []string
	if p.BTBEntries != 0 {
		parts = append(parts, fmt.Sprintf("btb=%d", p.BTBEntries))
	}
	if p.LLCLatency != 0 {
		parts = append(parts, fmt.Sprintf("llc=%d", p.LLCLatency))
	}
	if p.FootprintKB != 0 {
		parts = append(parts, fmt.Sprintf("footprint=%dKB", p.FootprintKB))
	}
	if p.Predictor != "" {
		parts = append(parts, "predictor="+p.Predictor)
	}
	return strings.Join(parts, " ")
}

// Points expands the matrix into its cross product, last axis fastest; a
// nil or empty matrix yields the single zero point.
func (m *Matrix) Points() []Point {
	if m == nil {
		return []Point{{}}
	}
	btbs := orDefaultInts(m.BTBEntries)
	llcs := orDefaultInts(m.LLCLatency)
	fps := orDefaultInts(m.FootprintKB)
	preds := m.Predictor
	if len(preds) == 0 {
		preds = []string{""}
	}
	out := make([]Point, 0, len(btbs)*len(llcs)*len(fps)*len(preds))
	for _, b := range btbs {
		for _, l := range llcs {
			for _, f := range fps {
				for _, p := range preds {
					out = append(out, Point{BTBEntries: b, LLCLatency: l, FootprintKB: f, Predictor: p})
				}
			}
		}
	}
	return out
}

func orDefaultInts(xs []int) []int {
	if len(xs) == 0 {
		return []int{0}
	}
	return xs
}

// Criterion is one machine-checked success condition: a comparison of an
// aggregated metric against a threshold.
type Criterion struct {
	// Name labels the criterion in reports ("boomerang-speedup-apache").
	Name string `json:"name"`
	// Metric names what is compared: a derived pairwise metric
	// ("speedup", "coverage", "recovery" — computed per seed against the
	// baseline), a headline result field ("ipc", "l1i_misses_per_ki",
	// "storage_overhead_kb", ...), or a dotted per-component registry
	// statistic ("cache.llc_misses", "boomerang.probes").
	Metric string `json:"metric"`
	// Scheme is the scheme under judgment; must be one of the spec's
	// candidates (or, for non-derived metrics, the baseline).
	Scheme string `json:"scheme"`
	// Reference names the yardstick scheme for the "recovery" metric:
	// recovery = (speedup(Scheme) - 1) / (speedup(Reference) - 1), the
	// fraction of the reference's speedup the scheme achieves.
	Reference string `json:"reference,omitempty"`
	// Workload restricts the criterion to one workload; empty means the
	// criterion must hold on every workload in the spec.
	Workload string `json:"workload,omitempty"`
	// Op compares the aggregate against Threshold: ">=", ">", "<=", "<".
	Op string `json:"op"`
	// Threshold is the comparison constant.
	Threshold float64 `json:"threshold"`
	// Compare selects the comparison semantics: "point" (default) judges
	// the sample mean alone; "ci" is interval-aware — PASS only if the
	// entire 95% confidence interval satisfies the comparison, FAIL only
	// if the entire interval violates it, INCONCLUSIVE if the interval
	// straddles the threshold or fewer than two seeds ran.
	Compare string `json:"compare,omitempty"`
}

// Derived pairwise metrics: computed per (workload, point, seed) against
// the baseline cell, then aggregated across seeds like any other metric.
const (
	// MetricSpeedup is candidate IPC over baseline IPC.
	MetricSpeedup = "speedup"
	// MetricCoverage is the fraction of the baseline's front-end stall
	// cycles (normalised per instruction) the candidate eliminated.
	MetricCoverage = "coverage"
	// MetricRecovery is the fraction of a reference scheme's speedup the
	// candidate achieves: (speedup-1)/(speedup_ref-1).
	MetricRecovery = "recovery"
)

// Comparison semantics names for Criterion.Compare.
const (
	ComparePoint = "point"
	CompareCI    = "ci"
)

// Env supplies the registry knowledge Validate needs, keeping this package
// free of simulator imports. HasMetric reports whether a non-derived,
// non-dotted metric name is a known headline result field; dotted registry
// statistics are scheme-dependent and are checked at evaluation time
// instead.
type Env struct {
	HasScheme   func(name string) bool
	HasWorkload func(name string) bool
	HasMetric   func(name string) bool
	// SchemeConfigName validates one inline scheme config and returns its
	// name; required when the spec carries SchemeConfigs.
	SchemeConfigName func(raw json.RawMessage) (string, error)
}

// ParseSpec decodes one JSON experiment spec, rejecting unknown fields so
// typos surface instead of silently weakening an experiment. The spec is
// NOT validated — call Validate with an Env next; boomsim's
// ParseExperimentSpec does both.
func ParseSpec(data []byte) (Spec, error) {
	var s Spec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("%w: decoding: %v", ErrInvalidSpec, err)
	}
	return s, nil
}

// MarshalIndent renders the spec in its canonical on-disk form: two-space
// indentation, a trailing newline, fields in declaration order, and no
// HTML escaping (criterion ops stay ">=" instead of a unicode escape).
// Every checked-in spec is exactly these bytes (the round-trip golden
// test). Encoder.Encode supplies the trailing newline.
func (s *Spec) MarshalIndent() ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// SchemeNames returns every scheme the spec runs, in execution order:
// baseline first, then candidates, then inline configs (resolved through
// env). Call only after Validate succeeded with the same env.
func (s *Spec) SchemeNames(env Env) ([]string, error) {
	names := append([]string{s.Baseline}, s.Candidates...)
	for i, raw := range s.SchemeConfigs {
		name, err := env.SchemeConfigName(raw)
		if err != nil {
			return nil, fmt.Errorf("%w: scheme_configs[%d]: %v", ErrInvalidSpec, i, err)
		}
		names = append(names, name)
	}
	return names, nil
}

// Validate checks the spec structurally and against the registries. It
// returns the first problem found, wrapped in the matching typed error.
func (s *Spec) Validate(env Env) error {
	if s.Version != SpecVersion {
		return fmt.Errorf("%w: version %d (this engine reads version %d)",
			ErrInvalidSpec, s.Version, SpecVersion)
	}
	if s.Name == "" {
		return fmt.Errorf("%w: empty name", ErrInvalidSpec)
	}
	if s.Hypothesis == "" {
		return fmt.Errorf("%w: empty hypothesis — state what the experiment is supposed to show", ErrInvalidSpec)
	}
	if s.Baseline == "" {
		return fmt.Errorf("%w: empty baseline scheme", ErrInvalidSpec)
	}
	if len(s.Candidates) == 0 && len(s.SchemeConfigs) == 0 {
		return fmt.Errorf("%w: no candidate schemes (candidates or scheme_configs)", ErrInvalidSpec)
	}
	if len(s.Workloads) == 0 {
		return fmt.Errorf("%w: empty workload set", ErrInvalidSpec)
	}
	if len(s.Seeds) == 0 {
		return fmt.Errorf("%w: empty seed list — statistics need replication", ErrInvalidSpec)
	}
	if len(s.Criteria) == 0 {
		return fmt.Errorf("%w: no success criteria — an experiment without criteria is a sweep", ErrInvalidSpec)
	}
	if s.Window != nil && s.Window.Measure == 0 {
		return fmt.Errorf("%w: window.measure must be positive", ErrInvalidSpec)
	}

	seen := map[uint64]bool{}
	for _, seed := range s.Seeds {
		if seen[seed] {
			return fmt.Errorf("%w: duplicate seed %d", ErrInvalidSpec, seed)
		}
		seen[seed] = true
	}

	if !env.HasScheme(s.Baseline) {
		return fmt.Errorf("%w: baseline %q", ErrUnknownScheme, s.Baseline)
	}
	schemeSet := map[string]bool{s.Baseline: true}
	for _, c := range s.Candidates {
		if !env.HasScheme(c) {
			return fmt.Errorf("%w: candidate %q", ErrUnknownScheme, c)
		}
		if schemeSet[c] {
			return fmt.Errorf("%w: scheme %q listed twice", ErrInvalidSpec, c)
		}
		schemeSet[c] = true
	}
	for i, raw := range s.SchemeConfigs {
		if env.SchemeConfigName == nil {
			return fmt.Errorf("%w: scheme_configs[%d]: inline configs unsupported by this environment", ErrInvalidSpec, i)
		}
		name, err := env.SchemeConfigName(raw)
		if err != nil {
			return fmt.Errorf("%w: scheme_configs[%d]: %v", ErrInvalidSpec, i, err)
		}
		if schemeSet[name] {
			return fmt.Errorf("%w: scheme %q listed twice", ErrInvalidSpec, name)
		}
		schemeSet[name] = true
	}

	wlSet := map[string]bool{}
	for _, w := range s.Workloads {
		if !env.HasWorkload(w) {
			return fmt.Errorf("%w: %q", ErrUnknownWorkload, w)
		}
		if wlSet[w] {
			return fmt.Errorf("%w: workload %q listed twice", ErrInvalidSpec, w)
		}
		wlSet[w] = true
	}

	if s.Matrix != nil {
		for _, p := range s.Matrix.Predictor {
			switch p {
			case "tage", "bimodal", "never-taken":
			default:
				return fmt.Errorf("%w: matrix.predictor %q (have: tage, bimodal, never-taken)", ErrInvalidSpec, p)
			}
		}
		for _, b := range s.Matrix.BTBEntries {
			if b <= 0 {
				return fmt.Errorf("%w: matrix.btb_entries %d must be positive", ErrInvalidSpec, b)
			}
		}
		for _, l := range s.Matrix.LLCLatency {
			if l <= 0 {
				return fmt.Errorf("%w: matrix.llc_latency %d must be positive", ErrInvalidSpec, l)
			}
		}
		for _, f := range s.Matrix.FootprintKB {
			if f <= 0 {
				return fmt.Errorf("%w: matrix.footprint_kb %d must be positive", ErrInvalidSpec, f)
			}
		}
	}

	for _, m := range s.Metrics {
		if err := validateMetricName(m, env); err != nil {
			return err
		}
	}

	names := map[string]bool{}
	for i, c := range s.Criteria {
		if c.Name == "" {
			return fmt.Errorf("%w: criteria[%d]: empty name", ErrInvalidSpec, i)
		}
		if names[c.Name] {
			return fmt.Errorf("%w: criterion %q listed twice", ErrInvalidSpec, c.Name)
		}
		names[c.Name] = true
		if err := validateMetricName(c.Metric, env); err != nil {
			return fmt.Errorf("criterion %q: %w", c.Name, err)
		}
		if !schemeSet[c.Scheme] {
			return fmt.Errorf("%w: criterion %q judges scheme %q, which the spec does not run", ErrInvalidSpec, c.Name, c.Scheme)
		}
		if isDerived(c.Metric) && c.Scheme == s.Baseline {
			return fmt.Errorf("%w: criterion %q: derived metric %q is trivial for the baseline itself", ErrInvalidSpec, c.Name, c.Metric)
		}
		switch c.Metric {
		case MetricRecovery:
			if c.Reference == "" {
				return fmt.Errorf("%w: criterion %q: recovery needs a reference scheme", ErrInvalidSpec, c.Name)
			}
			if !schemeSet[c.Reference] {
				return fmt.Errorf("%w: criterion %q references scheme %q, which the spec does not run", ErrInvalidSpec, c.Name, c.Reference)
			}
			if c.Reference == c.Scheme {
				return fmt.Errorf("%w: criterion %q: recovery reference equals the judged scheme", ErrInvalidSpec, c.Name)
			}
		default:
			if c.Reference != "" {
				return fmt.Errorf("%w: criterion %q: reference is only meaningful for %q", ErrInvalidSpec, c.Name, MetricRecovery)
			}
		}
		if c.Workload != "" && !wlSet[c.Workload] {
			return fmt.Errorf("%w: criterion %q restricts to workload %q, which the spec does not run", ErrInvalidSpec, c.Name, c.Workload)
		}
		switch c.Op {
		case ">=", ">", "<=", "<":
		default:
			return fmt.Errorf("%w: criterion %q: op %q (have: >=, >, <=, <)", ErrInvalidSpec, c.Name, c.Op)
		}
		switch c.Compare {
		case "", ComparePoint, CompareCI:
		default:
			return fmt.Errorf("%w: criterion %q: compare %q (have: point, ci)", ErrInvalidSpec, c.Name, c.Compare)
		}
	}
	return nil
}

func isDerived(metric string) bool {
	switch metric {
	case MetricSpeedup, MetricCoverage, MetricRecovery:
		return true
	}
	return false
}

// validateMetricName admits derived metrics, known headline fields, and
// dotted registry statistics (whose existence is scheme-dependent and
// checked at evaluation time against the actual cells).
func validateMetricName(m string, env Env) error {
	if m == "" {
		return fmt.Errorf("%w: empty metric name", ErrInvalidSpec)
	}
	if isDerived(m) || strings.Contains(m, ".") {
		return nil
	}
	if env.HasMetric != nil && env.HasMetric(m) {
		return nil
	}
	return fmt.Errorf("%w: %q is not a derived metric, a headline result field or a dotted registry statistic", ErrUnknownMetric, m)
}
