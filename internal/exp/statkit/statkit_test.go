package statkit

import (
	"math"
	"testing"
)

func close(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

// TestMoments pins mean / sample stddev / stderr against values computed
// independently (by hand and cross-checked with numpy's ddof=1 convention).
func TestMoments(t *testing.T) {
	cases := []struct {
		name                 string
		xs                   []float64
		mean, stddev, stderr float64
	}{
		{"empty", nil, 0, 0, 0},
		{"single", []float64{3.25}, 3.25, 0, 0},
		{"pair", []float64{1, 3}, 2, math.Sqrt2, 1},
		// deviations ±0.05 and 0: variance 0.005/2 = 0.0025, std 0.05,
		// sem 0.05/sqrt(3)
		{"ipc-like", []float64{1.21, 1.26, 1.31}, 1.26, 0.05, 0.028867513459481287},
		// numpy over five seeds: mean=100.8, std=2.5884358211089695, sem=1.1575836902790226
		{"five", []float64{98, 103, 99, 104, 100}, 100.8, 2.5884358211089695, 1.1575836902790226},
		{"constant", []float64{7, 7, 7, 7}, 7, 0, 0},
		{"negative", []float64{-2, 2}, 0, 2.8284271247461903, 2},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := Mean(c.xs); !close(got, c.mean) {
				t.Errorf("Mean = %v, want %v", got, c.mean)
			}
			if got := StdDev(c.xs); !close(got, c.stddev) {
				t.Errorf("StdDev = %v, want %v", got, c.stddev)
			}
			if got := StdErr(c.xs); !close(got, c.stderr) {
				t.Errorf("StdErr = %v, want %v", got, c.stderr)
			}
		})
	}
}

// TestTCritical95 pins the Student-t table against published values and the
// normal tail beyond it.
func TestTCritical95(t *testing.T) {
	cases := []struct {
		df   int
		want float64
	}{
		{-1, 0}, {0, 0},
		{1, 12.7062}, {2, 4.3027}, {4, 2.7764}, {9, 2.2622},
		{29, 2.0452}, {30, 2.0423}, {31, 1.959964}, {1000, 1.959964},
	}
	for _, c := range cases {
		if got := TCritical95(c.df); !close(got, c.want) {
			t.Errorf("TCritical95(%d) = %v, want %v", c.df, got, c.want)
		}
	}
}

// TestSummarize pins the composed interval: for n=3 the half-width is
// t(0.975,2)=4.3027 times the standard error.
func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1.21, 1.26, 1.31})
	if s.N != 3 {
		t.Fatalf("N = %d, want 3", s.N)
	}
	half := 4.3027 * 0.028867513459481287
	if !close(s.CI95Lo, 1.26-half) || !close(s.CI95Hi, 1.26+half) {
		t.Errorf("CI95 = [%v, %v], want [%v, %v]", s.CI95Lo, s.CI95Hi, 1.26-half, 1.26+half)
	}

	// A single-seed sample must degenerate to a zero-width interval at the
	// mean — the signal CI-aware comparisons use to go inconclusive.
	one := Summarize([]float64{2.5})
	if one.N != 1 || one.Mean != 2.5 || one.StdErr != 0 || one.CI95Lo != 2.5 || one.CI95Hi != 2.5 {
		t.Errorf("single-seed summary = %+v, want zero-width at mean", one)
	}

	// Empty sample: all zeros, no NaNs anywhere.
	zero := Summarize(nil)
	if zero != (Summary{}) {
		t.Errorf("empty summary = %+v, want zero value", zero)
	}
}
