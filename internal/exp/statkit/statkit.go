// Package statkit provides the small-sample statistics the experiment
// subsystem aggregates simulation metrics with: mean, sample standard
// deviation, standard error, and Student-t 95% confidence intervals.
//
// Experiment seed counts are small (3-10 is typical), so the normal
// approximation understates interval width badly; CI95 uses the Student-t
// critical value for the sample's actual degrees of freedom. All functions
// are pure and deterministic — equal inputs produce equal float64 outputs —
// which is what lets experiment reports stay byte-identical across
// parallelism levels and local/distributed execution.
package statkit

import "math"

// Summary is the aggregate of one metric across an experiment's seeds:
// the per-seed sample reduced to mean, spread and a 95% confidence
// interval. With N == 1 the spread and interval are undefined and reported
// as zero-width at the mean; CI-aware criterion comparisons treat that case
// as inconclusive rather than trusting a width-zero interval.
type Summary struct {
	// N is the sample size (the number of seeds).
	N int `json:"n"`
	// Mean is the sample mean.
	Mean float64 `json:"mean"`
	// StdDev is the sample (Bessel-corrected, N-1) standard deviation.
	StdDev float64 `json:"std_dev"`
	// StdErr is StdDev / sqrt(N), the standard error of the mean.
	StdErr float64 `json:"std_err"`
	// CI95Lo and CI95Hi bound the Student-t 95% confidence interval for
	// the mean: Mean ± t(0.975, N-1) * StdErr.
	CI95Lo float64 `json:"ci95_lo"`
	CI95Hi float64 `json:"ci95_hi"`
}

// Mean returns the arithmetic mean of xs (0 for an empty sample).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the sample standard deviation of xs with Bessel's N-1
// correction (0 for samples of fewer than two values).
func StdDev(xs []float64) float64 {
	return math.Sqrt(variance(xs))
}

// variance is the N-1 sample variance, computed against the mean in one
// extra pass for numerical robustness at simulation-counter magnitudes.
func variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs)-1)
}

// StdErr returns the standard error of the mean, StdDev/sqrt(N) (0 for
// samples of fewer than two values).
func StdErr(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	return StdDev(xs) / math.Sqrt(float64(len(xs)))
}

// tCrit95 holds two-sided 95% Student-t critical values t(0.975, df) for
// df = 1..30; beyond the table the normal value is used. Values are the
// standard published table at 4 decimal places.
var tCrit95 = [...]float64{
	1:  12.7062,
	2:  4.3027,
	3:  3.1824,
	4:  2.7764,
	5:  2.5706,
	6:  2.4469,
	7:  2.3646,
	8:  2.3060,
	9:  2.2622,
	10: 2.2281,
	11: 2.2010,
	12: 2.1788,
	13: 2.1604,
	14: 2.1448,
	15: 2.1314,
	16: 2.1199,
	17: 2.1098,
	18: 2.1009,
	19: 2.0930,
	20: 2.0860,
	21: 2.0796,
	22: 2.0739,
	23: 2.0687,
	24: 2.0639,
	25: 2.0595,
	26: 2.0555,
	27: 2.0518,
	28: 2.0484,
	29: 2.0452,
	30: 2.0423,
}

// TCritical95 returns the two-sided 95% Student-t critical value for the
// given degrees of freedom (df <= 0 returns 0; df > 30 uses the normal
// 1.96 — at experiment seed counts the table path is the one that matters).
func TCritical95(df int) float64 {
	switch {
	case df <= 0:
		return 0
	case df < len(tCrit95):
		return tCrit95[df]
	default:
		return 1.959964
	}
}

// Summarize reduces one metric's per-seed sample to its Summary. A sample
// of one value has zero spread and a zero-width interval at the mean.
func Summarize(xs []float64) Summary {
	s := Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		StdErr: StdErr(xs),
	}
	half := TCritical95(len(xs)-1) * s.StdErr
	s.CI95Lo = s.Mean - half
	s.CI95Hi = s.Mean + half
	return s
}
