package exp

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"
)

// testEnv resolves a fixed toy registry: two schemes, two workloads, a
// couple of headline metrics, and inline configs named by their "name"
// field.
func testEnv() Env {
	schemes := map[string]bool{"Base": true, "Cand": true, "Ref": true}
	workloads := map[string]bool{"W1": true, "W2": true}
	metrics := map[string]bool{"ipc": true, "instructions": true, "fetch_stall_cycles": true, "storage_overhead_kb": true}
	return Env{
		HasScheme:   func(n string) bool { return schemes[n] },
		HasWorkload: func(n string) bool { return workloads[n] },
		HasMetric:   func(n string) bool { return metrics[n] },
		SchemeConfigName: func(raw json.RawMessage) (string, error) {
			var v struct {
				Name string `json:"name"`
			}
			if err := json.Unmarshal(raw, &v); err != nil || v.Name == "" {
				return "", errors.New("bad inline config")
			}
			return v.Name, nil
		},
	}
}

func validSpec() Spec {
	return Spec{
		Version:    SpecVersion,
		Name:       "toy",
		Hypothesis: "Cand beats Base",
		Baseline:   "Base",
		Candidates: []string{"Cand"},
		Workloads:  []string{"W1"},
		Seeds:      []uint64{1, 2, 3},
		Criteria: []Criterion{{
			Name: "c1", Metric: MetricSpeedup, Scheme: "Cand",
			Op: ">=", Threshold: 1.1, Compare: CompareCI,
		}},
	}
}

func TestValidateRejections(t *testing.T) {
	env := testEnv()
	cases := []struct {
		name    string
		mutate  func(*Spec)
		wantErr error
	}{
		{"valid", func(s *Spec) {}, nil},
		{"bad version", func(s *Spec) { s.Version = 99 }, ErrInvalidSpec},
		{"no name", func(s *Spec) { s.Name = "" }, ErrInvalidSpec},
		{"no hypothesis", func(s *Spec) { s.Hypothesis = "" }, ErrInvalidSpec},
		{"no baseline", func(s *Spec) { s.Baseline = "" }, ErrInvalidSpec},
		{"unknown baseline", func(s *Spec) { s.Baseline = "Nope" }, ErrUnknownScheme},
		{"unknown candidate", func(s *Spec) { s.Candidates = []string{"Nope"} }, ErrUnknownScheme},
		{"no candidates", func(s *Spec) { s.Candidates = nil }, ErrInvalidSpec},
		{"dup scheme", func(s *Spec) { s.Candidates = []string{"Cand", "Cand"} }, ErrInvalidSpec},
		{"baseline as candidate", func(s *Spec) { s.Candidates = []string{"Base"} }, ErrInvalidSpec},
		{"no workloads", func(s *Spec) { s.Workloads = nil }, ErrInvalidSpec},
		{"unknown workload", func(s *Spec) { s.Workloads = []string{"W9"} }, ErrUnknownWorkload},
		{"dup workload", func(s *Spec) { s.Workloads = []string{"W1", "W1"} }, ErrInvalidSpec},
		{"empty seeds", func(s *Spec) { s.Seeds = nil }, ErrInvalidSpec},
		{"dup seeds", func(s *Spec) { s.Seeds = []uint64{1, 1} }, ErrInvalidSpec},
		{"no criteria", func(s *Spec) { s.Criteria = nil }, ErrInvalidSpec},
		{"zero window", func(s *Spec) { s.Window = &Window{Warm: 10, Measure: 0} }, ErrInvalidSpec},
		{"bogus metric", func(s *Spec) { s.Criteria[0].Metric = "no_such_metric" }, ErrUnknownMetric},
		{"bogus extra metric", func(s *Spec) { s.Metrics = []string{"nope"} }, ErrUnknownMetric},
		{"criterion scheme not run", func(s *Spec) { s.Criteria[0].Scheme = "Ref" }, ErrInvalidSpec},
		{"derived on baseline", func(s *Spec) { s.Criteria[0].Scheme = "Base" }, ErrInvalidSpec},
		{"criterion workload not run", func(s *Spec) { s.Criteria[0].Workload = "W2" }, ErrInvalidSpec},
		{"bad op", func(s *Spec) { s.Criteria[0].Op = "==" }, ErrInvalidSpec},
		{"bad compare", func(s *Spec) { s.Criteria[0].Compare = "fuzzy" }, ErrInvalidSpec},
		{"dup criterion name", func(s *Spec) { s.Criteria = append(s.Criteria, s.Criteria[0]) }, ErrInvalidSpec},
		{"recovery without reference", func(s *Spec) {
			s.Criteria[0].Metric = MetricRecovery
		}, ErrInvalidSpec},
		{"recovery reference not run", func(s *Spec) {
			s.Criteria[0].Metric = MetricRecovery
			s.Criteria[0].Reference = "Ref"
		}, ErrInvalidSpec},
		{"reference on non-recovery", func(s *Spec) { s.Criteria[0].Reference = "Base" }, ErrInvalidSpec},
		{"bad matrix predictor", func(s *Spec) { s.Matrix = &Matrix{Predictor: []string{"oracle"}} }, ErrInvalidSpec},
		{"bad matrix btb", func(s *Spec) { s.Matrix = &Matrix{BTBEntries: []int{-1}} }, ErrInvalidSpec},
		{"bad inline config", func(s *Spec) { s.SchemeConfigs = []json.RawMessage{[]byte(`{"no":"name"}`)} }, ErrInvalidSpec},
		{"inline config name collision", func(s *Spec) {
			s.SchemeConfigs = []json.RawMessage{[]byte(`{"name":"Cand"}`)}
		}, ErrInvalidSpec},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s := validSpec()
			c.mutate(&s)
			err := s.Validate(env)
			if c.wantErr == nil {
				if err != nil {
					t.Fatalf("Validate: %v, want nil", err)
				}
				return
			}
			if !errors.Is(err, c.wantErr) {
				t.Fatalf("Validate = %v, want errors.Is(%v)", err, c.wantErr)
			}
		})
	}
}

// TestParseSpecRejectsUnknownFields: typos must not silently weaken an
// experiment.
func TestParseSpecRejectsUnknownFields(t *testing.T) {
	_, err := ParseSpec([]byte(`{"version":1,"name":"x","hypothesis":"h","baselin":"Base"}`))
	if !errors.Is(err, ErrInvalidSpec) {
		t.Fatalf("ParseSpec with typo field = %v, want ErrInvalidSpec", err)
	}
}

func TestMatrixPoints(t *testing.T) {
	if got := (*Matrix)(nil).Points(); len(got) != 1 || !got[0].IsZero() {
		t.Fatalf("nil matrix points = %v, want one zero point", got)
	}
	m := &Matrix{LLCLatency: []int{18, 30}, Predictor: []string{"tage", "bimodal"}}
	got := m.Points()
	want := []Point{
		{LLCLatency: 18, Predictor: "tage"},
		{LLCLatency: 18, Predictor: "bimodal"},
		{LLCLatency: 30, Predictor: "tage"},
		{LLCLatency: 30, Predictor: "bimodal"},
	}
	if len(got) != len(want) {
		t.Fatalf("points = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("points[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

// buildCells synthesizes a full cell set for the toy spec: baseline IPC 1.0,
// candidate IPC per seed from ipcs, reference IPC 1.5 everywhere.
func buildCells(spec *Spec, schemes []string, ipc func(scheme string, wl string, seed uint64) float64) []Cell {
	var cells []Cell
	for _, pt := range spec.Matrix.Points() {
		for _, s := range schemes {
			for _, wl := range spec.Workloads {
				for _, seed := range spec.Seeds {
					cells = append(cells, Cell{
						Scheme: s, Workload: wl, Seed: seed, Point: pt,
						Metrics: map[string]float64{
							"ipc":                 ipc(s, wl, seed),
							"instructions":        1000,
							"fetch_stall_cycles":  100,
							"stall_fraction":      0.1,
							"l1i_misses_per_ki":   5,
							"btb_miss_rate":       0.01,
							"storage_overhead_kb": 0.5,
						},
					})
				}
			}
		}
	}
	return cells
}

func TestBuildReportVerdicts(t *testing.T) {
	spec := validSpec()
	schemes := []string{"Base", "Cand"}

	// Candidate IPCs 1.21/1.26/1.31 over baseline 1.0: mean speedup 1.26,
	// CI95 half-width 4.3027 * 0.05/sqrt(3) = 0.1242...; CI = [1.1358, 1.3842].
	ipc := func(s, wl string, seed uint64) float64 {
		if s != "Cand" {
			return 1.0
		}
		return 1.26 + 0.05*(float64(seed)-2)
	}

	run := func(t *testing.T, c Criterion) *Report {
		t.Helper()
		s := spec
		s.Criteria = []Criterion{c}
		rep, err := BuildReport(&s, schemes, buildCells(&s, schemes, ipc))
		if err != nil {
			t.Fatalf("BuildReport: %v", err)
		}
		return rep
	}

	ci := func(op string, threshold float64) Criterion {
		return Criterion{Name: "c", Metric: MetricSpeedup, Scheme: "Cand", Op: op, Threshold: threshold, Compare: CompareCI}
	}

	cases := []struct {
		name    string
		c       Criterion
		verdict string
	}{
		{"ci pass", ci(">=", 1.10), VerdictPass},
		{"ci straddle", ci(">=", 1.26), VerdictInconclusive},
		{"ci fail", ci(">=", 1.40), VerdictFail},
		{"ci pass below", ci("<=", 1.40), VerdictPass},
		{"ci fail below", ci("<", 1.10), VerdictFail},
		{"point pass", Criterion{Name: "c", Metric: MetricSpeedup, Scheme: "Cand", Op: ">=", Threshold: 1.25}, VerdictPass},
		{"point fail", Criterion{Name: "c", Metric: MetricSpeedup, Scheme: "Cand", Op: ">=", Threshold: 1.27}, VerdictFail},
		{"direct metric", Criterion{Name: "c", Metric: "storage_overhead_kb", Scheme: "Cand", Op: "<=", Threshold: 1}, VerdictPass},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rep := run(t, tc.c)
			if rep.Verdict != tc.verdict {
				t.Fatalf("verdict = %s, want %s (%+v)", rep.Verdict, tc.verdict, rep.Criteria[0].Rows)
			}
		})
	}

	// Single-seed CI comparison must be inconclusive, not vacuously green.
	t.Run("single seed ci inconclusive", func(t *testing.T) {
		s := spec
		s.Seeds = []uint64{1}
		rep, err := BuildReport(&s, schemes, buildCells(&s, schemes, ipc))
		if err != nil {
			t.Fatalf("BuildReport: %v", err)
		}
		if rep.Verdict != VerdictInconclusive {
			t.Fatalf("verdict = %s, want INCONCLUSIVE for n=1 CI compare", rep.Verdict)
		}
	})
}

func TestBuildReportAggregates(t *testing.T) {
	spec := validSpec()
	spec.Workloads = []string{"W1", "W2"}
	schemes := []string{"Base", "Cand"}
	ipc := func(s, wl string, seed uint64) float64 {
		if s != "Cand" {
			return 1.0
		}
		if wl == "W2" {
			return 2.0
		}
		return 1.26 + 0.05*(float64(seed)-2)
	}
	rep, err := BuildReport(&spec, schemes, buildCells(&spec, schemes, ipc))
	if err != nil {
		t.Fatalf("BuildReport: %v", err)
	}

	// 2 schemes x 2 workloads at the default point.
	if len(rep.Aggregates) != 4 {
		t.Fatalf("aggregates = %d, want 4", len(rep.Aggregates))
	}
	find := func(scheme, wl string) Aggregate {
		for _, a := range rep.Aggregates {
			if a.Scheme == scheme && a.Workload == wl {
				return a
			}
		}
		t.Fatalf("no aggregate for %s/%s", scheme, wl)
		return Aggregate{}
	}
	sp := find("Cand", "W1").Metrics[MetricSpeedup]
	if sp.N != 3 || math.Abs(sp.Mean-1.26) > 1e-12 {
		t.Errorf("Cand/W1 speedup = %+v, want mean 1.26 over 3 seeds", sp)
	}
	if w2 := find("Cand", "W2").Metrics[MetricSpeedup]; w2.Mean != 2.0 || w2.StdErr != 0 {
		t.Errorf("Cand/W2 speedup = %+v, want exact 2.0", w2)
	}
	// Derived metrics must not appear for the baseline group.
	if _, ok := find("Base", "W1").Metrics[MetricSpeedup]; ok {
		t.Error("baseline aggregate carries a speedup metric")
	}
	// The criterion judges every workload when unrestricted.
	if rows := rep.Criteria[0].Rows; len(rows) != 2 {
		t.Fatalf("criterion rows = %d, want 2 (one per workload)", len(rows))
	}
	if rep.Header.SpecDigest == "" || len(rep.Header.SpecDigest) != 64 {
		t.Errorf("spec digest = %q, want 64 hex chars", rep.Header.SpecDigest)
	}
}

func TestBuildReportRecovery(t *testing.T) {
	spec := validSpec()
	spec.Candidates = []string{"Cand", "Ref"}
	spec.Criteria = []Criterion{{
		Name: "rec", Metric: MetricRecovery, Scheme: "Cand", Reference: "Ref",
		Op: ">=", Threshold: 0.5, Compare: ComparePoint,
	}}
	schemes := []string{"Base", "Cand", "Ref"}
	// Base 1.0, Ref 1.5, Cand 1.3: recovery = 0.3/0.5 = 0.6 exactly.
	ipc := func(s, wl string, seed uint64) float64 {
		switch s {
		case "Ref":
			return 1.5
		case "Cand":
			return 1.3
		}
		return 1.0
	}
	rep, err := BuildReport(&spec, schemes, buildCells(&spec, schemes, ipc))
	if err != nil {
		t.Fatalf("BuildReport: %v", err)
	}
	if rep.Verdict != VerdictPass {
		t.Fatalf("verdict = %s, want PASS", rep.Verdict)
	}
	got := rep.Criteria[0].Rows[0].Observed.Mean
	if math.Abs(got-0.6) > 1e-12 {
		t.Errorf("recovery mean = %v, want 0.6", got)
	}
}

func TestBuildReportErrors(t *testing.T) {
	spec := validSpec()
	schemes := []string{"Base", "Cand"}
	ipc := func(s, wl string, seed uint64) float64 { return 1.0 }
	cells := buildCells(&spec, schemes, ipc)

	t.Run("missing cell", func(t *testing.T) {
		_, err := BuildReport(&spec, schemes, cells[:len(cells)-1])
		if !errors.Is(err, ErrInvalidSpec) {
			t.Fatalf("BuildReport = %v, want ErrInvalidSpec", err)
		}
	})
	t.Run("duplicate cell", func(t *testing.T) {
		_, err := BuildReport(&spec, schemes, append(append([]Cell(nil), cells...), cells[0]))
		if !errors.Is(err, ErrInvalidSpec) {
			t.Fatalf("BuildReport = %v, want ErrInvalidSpec", err)
		}
	})
	t.Run("criterion on absent stat", func(t *testing.T) {
		s := spec
		s.Criteria = []Criterion{{Name: "c", Metric: "boomerang.probes", Scheme: "Cand", Op: ">=", Threshold: 1}}
		_, err := BuildReport(&s, schemes, buildCells(&s, schemes, ipc))
		if !errors.Is(err, ErrUnknownMetric) {
			t.Fatalf("BuildReport = %v, want ErrUnknownMetric", err)
		}
	})
}

// TestReportDeterministicJSON: two identical builds marshal to identical
// bytes — the property local-vs-distributed byte-identity rests on.
func TestReportDeterministicJSON(t *testing.T) {
	spec := validSpec()
	spec.Matrix = &Matrix{LLCLatency: []int{18, 30}}
	schemes := []string{"Base", "Cand"}
	ipc := func(s, wl string, seed uint64) float64 {
		if s == "Cand" {
			return 1.2 + 0.01*float64(seed)
		}
		return 1.0
	}
	marshal := func() []byte {
		rep, err := BuildReport(&spec, schemes, buildCells(&spec, schemes, ipc))
		if err != nil {
			t.Fatalf("BuildReport: %v", err)
		}
		out, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := marshal(), marshal()
	if string(a) != string(b) {
		t.Fatal("identical builds marshaled differently")
	}
	// Matrix points appear as params on aggregates and criterion rows.
	if !strings.Contains(string(a), `"llc_latency": 18`) {
		t.Error("report JSON lacks the matrix point parameters")
	}
}

// TestRender smoke-tests the human report: every criterion name, verdict
// and workload must appear.
func TestRender(t *testing.T) {
	spec := validSpec()
	schemes := []string{"Base", "Cand"}
	ipc := func(s, wl string, seed uint64) float64 {
		if s == "Cand" {
			return 1.26 + 0.05*(float64(seed)-2)
		}
		return 1.0
	}
	rep, err := BuildReport(&spec, schemes, buildCells(&spec, schemes, ipc))
	if err != nil {
		t.Fatalf("BuildReport: %v", err)
	}
	var sb strings.Builder
	rep.Render(&sb)
	out := sb.String()
	for _, want := range []string{"Experiment: toy", "Hypothesis:", "c1", "W1", "Verdict: PASS", "95% CI", "speedup"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered report lacks %q:\n%s", want, out)
		}
	}
}

func TestPointString(t *testing.T) {
	if got := (Point{}).String(); got != "defaults" {
		t.Errorf("zero point = %q", got)
	}
	p := Point{BTBEntries: 4096, LLCLatency: 18, Predictor: "tage"}
	if got := p.String(); got != "btb=4096 llc=18 predictor=tage" {
		t.Errorf("point = %q", got)
	}
	_ = fmt.Sprintf("%v", p)
}
