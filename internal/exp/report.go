package exp

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"sort"

	"boomsim/internal/exp/statkit"
)

// Verdict values. Order of severity: FAIL > INCONCLUSIVE > PASS — a
// composite verdict is the worst of its parts.
const (
	VerdictPass         = "PASS"
	VerdictFail         = "FAIL"
	VerdictInconclusive = "INCONCLUSIVE"
)

// Cell is one completed simulation flattened to plain numbers: the
// scheme/workload/seed/point coordinates plus every metric the run
// produced (headline result fields under their JSON names, per-component
// registry statistics under their dotted names). boomsim.RunExperiment
// produces cells from Results; tests build them by hand.
type Cell struct {
	Scheme   string
	Workload string
	Seed     uint64
	Point    Point
	Metrics  map[string]float64
}

// Report is a finished experiment: the spec's identity, every aggregated
// metric with its uncertainty, and one checked verdict per criterion. It
// is self-contained plain data — JSON renders deterministically (maps
// marshal sorted) except for the single Header.GeneratedAt field, which is
// the report's only timestamp and the only thing allowed to differ between
// two runs of the same spec.
type Report struct {
	Header     Header            `json:"header"`
	Aggregates []Aggregate       `json:"aggregates"`
	Criteria   []CriterionResult `json:"criteria"`
	// Verdict is the experiment's overall outcome: FAIL if any criterion
	// failed, else INCONCLUSIVE if any was inconclusive, else PASS.
	Verdict string `json:"verdict"`
}

// Header identifies what ran and what it claims.
type Header struct {
	Name       string `json:"name"`
	Hypothesis string `json:"hypothesis"`
	// SpecDigest is the SHA-256 of the spec's canonical JSON: the link
	// between a report and the exact experiment definition it answers.
	SpecDigest string `json:"spec_digest"`
	// GeneratedAt is the report's one timestamp (RFC 3339), isolated here
	// so determinism checks can compare everything else byte-for-byte.
	// Empty when the caller wants a fully deterministic report.
	GeneratedAt string   `json:"generated_at,omitempty"`
	Baseline    string   `json:"baseline"`
	Schemes     []string `json:"schemes"`
	Workloads   []string `json:"workloads"`
	Seeds       []uint64 `json:"seeds"`
	// Cells is the number of simulations the experiment ran.
	Cells int `json:"cells"`
}

// Aggregate is one (scheme, workload, parameter point) group's metrics,
// each reduced across seeds to mean/stderr/CI95.
type Aggregate struct {
	Scheme   string `json:"scheme"`
	Workload string `json:"workload"`
	// Params is the parameter-matrix point; omitted for the default point.
	Params *Point `json:"params,omitempty"`
	// Metrics maps metric name to its cross-seed summary; JSON renders it
	// sorted by name.
	Metrics map[string]statkit.Summary `json:"metrics"`
}

// CriterionResult is one criterion's evaluation: the criterion itself,
// one judged row per (workload, point) it applies to, and the combined
// verdict.
type CriterionResult struct {
	Criterion Criterion      `json:"criterion"`
	Rows      []CriterionRow `json:"rows"`
	Verdict   string         `json:"verdict"`
}

// CriterionRow is one (workload, point) judgment.
type CriterionRow struct {
	Workload string `json:"workload"`
	Params   *Point `json:"params,omitempty"`
	// Observed is the judged metric's cross-seed summary.
	Observed statkit.Summary `json:"observed"`
	Verdict  string          `json:"verdict"`
	// Detail is the human-readable comparison, e.g.
	// "mean 1.232 (95% CI [1.198, 1.266]) >= 1.10".
	Detail string `json:"detail"`
}

// defaultReportMetrics are aggregated for every scheme group even when no
// criterion references them: the report should read like the paper's
// figures, not just answer its criteria. Derived metrics are skipped for
// the baseline group (trivially 1 and 0).
var defaultReportMetrics = []string{
	"ipc", MetricSpeedup, MetricCoverage,
	"stall_fraction", "l1i_misses_per_ki", "btb_miss_rate",
	"storage_overhead_kb",
}

// coverageFloor mirrors the public API's Coverage semantics: when the
// baseline barely stalls (under this many stall cycles per instruction)
// coverage is defined as zero rather than a noise-amplified ratio. The
// cross-check test in the boomsim package pins this constant against
// boomsim.Coverage.
const coverageFloor = 0.002

// BuildReport aggregates cells against the spec and evaluates every
// criterion. schemeNames is the spec's execution-order scheme list
// (Spec.SchemeNames); cells must hold exactly one entry per
// (scheme, workload, seed, point) combination.
func BuildReport(spec *Spec, schemeNames []string, cells []Cell) (*Report, error) {
	canonical, err := spec.MarshalIndent()
	if err != nil {
		return nil, fmt.Errorf("%w: re-marshaling spec: %v", ErrInvalidSpec, err)
	}
	digest := sha256.Sum256(canonical)

	points := spec.Matrix.Points()
	idx, err := indexCells(spec, schemeNames, points, cells)
	if err != nil {
		return nil, err
	}

	rep := &Report{
		Header: Header{
			Name:       spec.Name,
			Hypothesis: spec.Hypothesis,
			SpecDigest: hex.EncodeToString(digest[:]),
			Baseline:   spec.Baseline,
			Schemes:    schemeNames,
			Workloads:  spec.Workloads,
			Seeds:      spec.Seeds,
			Cells:      len(cells),
		},
	}

	// Aggregate metric list: the defaults, the spec's extras, and every
	// criterion metric (recovery rows live under their criterion only).
	metrics := append([]string(nil), defaultReportMetrics...)
	metrics = append(metrics, spec.Metrics...)
	for _, c := range spec.Criteria {
		if c.Metric != MetricRecovery {
			metrics = append(metrics, c.Metric)
		}
	}
	metrics = dedupe(metrics)

	for _, pt := range points {
		for _, scheme := range schemeNames {
			for _, wl := range spec.Workloads {
				agg := Aggregate{
					Scheme:   scheme,
					Workload: wl,
					Params:   pointRef(pt),
					Metrics:  map[string]statkit.Summary{},
				}
				for _, m := range metrics {
					if isDerived(m) && scheme == spec.Baseline {
						continue
					}
					sample, ok := idx.sample(spec, m, Criterion{Scheme: scheme, Workload: wl}, wl, pt)
					if !ok {
						continue // metric absent for this scheme (e.g. boomerang.* on Base)
					}
					agg.Metrics[m] = statkit.Summarize(sample)
				}
				rep.Aggregates = append(rep.Aggregates, agg)
			}
		}
	}

	for _, c := range spec.Criteria {
		cr, err := evaluateCriterion(spec, c, points, idx)
		if err != nil {
			return nil, err
		}
		rep.Criteria = append(rep.Criteria, cr)
	}

	rep.Verdict = VerdictPass
	for _, cr := range rep.Criteria {
		rep.Verdict = worseVerdict(rep.Verdict, cr.Verdict)
	}
	return rep, nil
}

// pointRef returns nil for the default point so it is omitted from JSON.
func pointRef(p Point) *Point {
	if p.IsZero() {
		return nil
	}
	cp := p
	return &cp
}

func dedupe(xs []string) []string {
	seen := map[string]bool{}
	out := xs[:0]
	for _, x := range xs {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}

func worseVerdict(a, b string) string {
	rank := func(v string) int {
		switch v {
		case VerdictFail:
			return 2
		case VerdictInconclusive:
			return 1
		}
		return 0
	}
	if rank(b) > rank(a) {
		return b
	}
	return a
}

// cellKey addresses one simulation within an experiment.
type cellKey struct {
	scheme, workload string
	seed             uint64
	point            Point
}

type cellIndex map[cellKey]*Cell

// indexCells builds the (scheme, workload, seed, point) index and verifies
// the cell set is exactly the spec's cross product — a missing or
// duplicated cell means the runner and the spec disagree, which would
// silently skew every aggregate.
func indexCells(spec *Spec, schemeNames []string, points []Point, cells []Cell) (cellIndex, error) {
	idx := make(cellIndex, len(cells))
	for i := range cells {
		c := &cells[i]
		k := cellKey{c.Scheme, c.Workload, c.Seed, c.Point}
		if _, dup := idx[k]; dup {
			return nil, fmt.Errorf("%w: duplicate cell %s/%s seed %d (%s)",
				ErrInvalidSpec, c.Scheme, c.Workload, c.Seed, c.Point)
		}
		idx[k] = c
	}
	want := len(schemeNames) * len(spec.Workloads) * len(spec.Seeds) * len(points)
	if len(cells) != want {
		return nil, fmt.Errorf("%w: %d cells for a %d-cell experiment",
			ErrInvalidSpec, len(cells), want)
	}
	for _, pt := range points {
		for _, s := range schemeNames {
			for _, w := range spec.Workloads {
				for _, seed := range spec.Seeds {
					if _, ok := idx[cellKey{s, w, seed, pt}]; !ok {
						return nil, fmt.Errorf("%w: missing cell %s/%s seed %d (%s)",
							ErrInvalidSpec, s, w, seed, pt)
					}
				}
			}
		}
	}
	return idx, nil
}

// sample collects one metric's per-seed values for (c.Scheme, wl, pt), in
// seed order. Derived metrics are computed against the baseline (and, for
// recovery, c.Reference) cell of the same (workload, seed, point). The
// bool is false when a direct metric is absent from the scheme's cells —
// scheme-specific registry statistics simply don't appear in other
// schemes' aggregates.
func (idx cellIndex) sample(spec *Spec, metric string, c Criterion, wl string, pt Point) ([]float64, bool) {
	out := make([]float64, 0, len(spec.Seeds))
	for _, seed := range spec.Seeds {
		cell := idx[cellKey{c.Scheme, wl, seed, pt}]
		switch metric {
		case MetricSpeedup:
			out = append(out, speedup(idx.baseline(spec, wl, seed, pt), cell))
		case MetricCoverage:
			out = append(out, coverage(idx.baseline(spec, wl, seed, pt), cell))
		case MetricRecovery:
			base := idx.baseline(spec, wl, seed, pt)
			ref := idx[cellKey{c.Reference, wl, seed, pt}]
			out = append(out, recovery(base, cell, ref))
		default:
			v, ok := cell.Metrics[metric]
			if !ok {
				return nil, false
			}
			out = append(out, v)
		}
	}
	return out, true
}

func (idx cellIndex) baseline(spec *Spec, wl string, seed uint64, pt Point) *Cell {
	return idx[cellKey{spec.Baseline, wl, seed, pt}]
}

func speedup(base, cand *Cell) float64 {
	b := base.Metrics["ipc"]
	if b == 0 {
		return 0
	}
	return cand.Metrics["ipc"] / b
}

// coverage mirrors boomsim.Coverage: the fraction of the baseline's
// per-instruction front-end stall cycles the candidate eliminated, defined
// as zero when the baseline barely stalls.
func coverage(base, cand *Cell) float64 {
	b := stallsPerInstr(base)
	if b < coverageFloor {
		return 0
	}
	return 1 - stallsPerInstr(cand)/b
}

func stallsPerInstr(c *Cell) float64 {
	instrs := c.Metrics["instructions"]
	if instrs == 0 {
		return 0
	}
	return c.Metrics["fetch_stall_cycles"] / instrs
}

// recovery is the fraction of the reference scheme's speedup the candidate
// achieves: (speedup-1)/(speedup_ref-1), zero when the reference shows no
// speedup to recover.
func recovery(base, cand, ref *Cell) float64 {
	refGain := speedup(base, ref) - 1
	if refGain <= 0 {
		return 0
	}
	return (speedup(base, cand) - 1) / refGain
}

// evaluateCriterion judges one criterion across its (workload, point)
// rows. A direct metric absent from the judged scheme's cells is an
// ErrUnknownMetric — a criterion that cannot observe its metric must fail
// loudly, not pass vacuously.
func evaluateCriterion(spec *Spec, c Criterion, points []Point, idx cellIndex) (CriterionResult, error) {
	workloads := spec.Workloads
	if c.Workload != "" {
		workloads = []string{c.Workload}
	}
	cr := CriterionResult{Criterion: c, Verdict: VerdictPass}
	for _, pt := range points {
		for _, wl := range workloads {
			sample, ok := idx.sample(spec, c.Metric, c, wl, pt)
			if !ok {
				return CriterionResult{}, fmt.Errorf(
					"%w: criterion %q: %q not present in %s's results",
					ErrUnknownMetric, c.Name, c.Metric, c.Scheme)
			}
			sum := statkit.Summarize(sample)
			verdict, detail := judge(c, sum)
			cr.Rows = append(cr.Rows, CriterionRow{
				Workload: wl,
				Params:   pointRef(pt),
				Observed: sum,
				Verdict:  verdict,
				Detail:   detail,
			})
			cr.Verdict = worseVerdict(cr.Verdict, verdict)
		}
	}
	return cr, nil
}

// judge applies the criterion's comparison semantics to one summary.
//
// Point comparison judges the sample mean alone. CI-aware comparison
// demands statistical separation: PASS only when the entire 95% interval
// satisfies the comparison, FAIL only when the entire interval violates
// it, INCONCLUSIVE when the interval straddles the threshold — or when
// fewer than two seeds ran, since a single observation carries no variance
// estimate at all.
func judge(c Criterion, s statkit.Summary) (verdict, detail string) {
	cmp := func(v float64) bool {
		switch c.Op {
		case ">=":
			return v >= c.Threshold
		case ">":
			return v > c.Threshold
		case "<=":
			return v <= c.Threshold
		case "<":
			return v < c.Threshold
		}
		return false
	}
	switch c.Compare {
	case CompareCI:
		detail = fmt.Sprintf("mean %.4g (95%% CI [%.4g, %.4g], n=%d) %s %.4g",
			s.Mean, s.CI95Lo, s.CI95Hi, s.N, c.Op, c.Threshold)
		if s.N < 2 {
			return VerdictInconclusive, detail + " — fewer than 2 seeds, no variance estimate"
		}
		lo, hi := cmp(s.CI95Lo), cmp(s.CI95Hi)
		switch {
		case lo && hi:
			return VerdictPass, detail
		case !lo && !hi:
			return VerdictFail, detail
		default:
			return VerdictInconclusive, detail + " — interval straddles the threshold"
		}
	default: // point
		detail = fmt.Sprintf("mean %.4g (n=%d) %s %.4g", s.Mean, s.N, c.Op, c.Threshold)
		if cmp(s.Mean) {
			return VerdictPass, detail
		}
		return VerdictFail, detail
	}
}

// Render writes the human-readable report: header, one mean±CI table per
// aggregated metric (rows schemes, columns workloads), then every
// criterion with its per-row verdicts and the overall verdict.
func (r *Report) Render(w io.Writer) {
	fmt.Fprintf(w, "Experiment: %s\n", r.Header.Name)
	fmt.Fprintf(w, "Hypothesis: %s\n", r.Header.Hypothesis)
	fmt.Fprintf(w, "Spec:       sha256:%s\n", r.Header.SpecDigest)
	if r.Header.GeneratedAt != "" {
		fmt.Fprintf(w, "Generated:  %s\n", r.Header.GeneratedAt)
	}
	fmt.Fprintf(w, "Ran:        %d cells — %d schemes x %d workloads x %d seeds (baseline %s)\n",
		r.Header.Cells, len(r.Header.Schemes), len(r.Header.Workloads),
		len(r.Header.Seeds), r.Header.Baseline)

	// Group aggregates by point, preserving report order.
	type group struct {
		label string
		aggs  []Aggregate
	}
	var groups []group
	byLabel := map[string]int{}
	for _, a := range r.Aggregates {
		label := "defaults"
		if a.Params != nil {
			label = a.Params.String()
		}
		gi, ok := byLabel[label]
		if !ok {
			gi = len(groups)
			byLabel[label] = gi
			groups = append(groups, group{label: label})
		}
		groups[gi].aggs = append(groups[gi].aggs, a)
	}

	for _, g := range groups {
		// Metric set for this group, sorted for stable output.
		metricSet := map[string]bool{}
		for _, a := range g.aggs {
			for m := range a.Metrics {
				metricSet[m] = true
			}
		}
		metricNames := make([]string, 0, len(metricSet))
		for m := range metricSet {
			metricNames = append(metricNames, m)
		}
		sort.Strings(metricNames)

		if len(groups) > 1 {
			fmt.Fprintf(w, "\n== parameters: %s ==\n", g.label)
		}
		for _, m := range metricNames {
			fmt.Fprintf(w, "\n%s (mean ± 95%% CI over %d seeds)\n", m, len(r.Header.Seeds))
			fmt.Fprintf(w, "  %-22s", "SCHEME")
			for _, wl := range r.Header.Workloads {
				fmt.Fprintf(w, " %20s", wl)
			}
			fmt.Fprintln(w)
			for _, scheme := range r.Header.Schemes {
				cells := make([]string, 0, len(r.Header.Workloads))
				any := false
				for _, wl := range r.Header.Workloads {
					cell := ""
					for _, a := range g.aggs {
						if a.Scheme == scheme && a.Workload == wl {
							if s, ok := a.Metrics[m]; ok {
								cell = fmt.Sprintf("%.4f ±%.4f", s.Mean, s.CI95Hi-s.Mean)
								any = true
							}
						}
					}
					cells = append(cells, cell)
				}
				if !any {
					continue
				}
				fmt.Fprintf(w, "  %-22s", scheme)
				for _, cell := range cells {
					fmt.Fprintf(w, " %20s", cell)
				}
				fmt.Fprintln(w)
			}
		}
	}

	fmt.Fprintf(w, "\nCriteria:\n")
	for _, cr := range r.Criteria {
		c := cr.Criterion
		what := fmt.Sprintf("%s(%s)", c.Metric, c.Scheme)
		if c.Reference != "" {
			what = fmt.Sprintf("%s(%s vs %s)", c.Metric, c.Scheme, c.Reference)
		}
		compare := c.Compare
		if compare == "" {
			compare = ComparePoint
		}
		fmt.Fprintf(w, "  [%s] %s: %s %s %g (%s)\n", cr.Verdict, c.Name, what, c.Op, c.Threshold, compare)
		for _, row := range cr.Rows {
			where := row.Workload
			if row.Params != nil {
				where += " @ " + row.Params.String()
			}
			fmt.Fprintf(w, "      %-30s %s: %s\n", where, row.Verdict, row.Detail)
		}
	}
	fmt.Fprintf(w, "\nVerdict: %s\n", r.Verdict)
}
