package scheme

import (
	"fmt"

	"boomsim/internal/core"
	"boomsim/internal/prefetch"
)

// Config is the complete, declarative description of a control-flow-delivery
// scheme: every knob the generic builder (Config.Build) interprets, and
// nothing else. A Config is plain serializable data — no closures, no
// component handles — so schemes round-trip through JSON, travel over the
// wire to boomsimd workers, and can be authored by users without touching
// this package. The built-in schemes (Base .. Boomerang, the limit studies,
// the hierarchical-BTB alternatives) are all expressed as Config values; see
// the constructors in scheme.go.
//
// Two Configs that marshal to the same JSON build microarchitecturally
// identical instances: Build is a pure function of (Config, Env).
type Config struct {
	// Name identifies the scheme in results, registries and the paper's
	// figures. Required.
	Name string `json:"name"`
	// Description summarises the mechanism.
	Description string `json:"description,omitempty"`
	// StorageOverheadKB is the per-core metadata cost beyond the baseline
	// front end — the paper's Section VI-D accounting, the axis of its
	// headline comparison. It is declarative bookkeeping, not a model input.
	StorageOverheadKB float64 `json:"storage_overhead_kb,omitempty"`

	// FTQDepth sets the fetch target queue depth: 0 uses the core
	// configuration's full decoupled depth (Table I: 32), non-decoupled
	// schemes use a shallow queue (the built-ins use 4).
	FTQDepth int `json:"ftq_depth,omitempty"`
	// FDIPProbes enables the FTQ-directed prefetch engine (FDIP and every
	// scheme layered on it).
	FDIPProbes bool `json:"fdip_probes,omitempty"`
	// PerfectL1 makes every demand fetch an L1-I hit (the Figure 1 limit
	// studies).
	PerfectL1 bool `json:"perfect_l1,omitempty"`
	// Predictor selects the direction predictor ("tage", "bimodal",
	// "never-taken"); empty defers to the run's Env, then TAGE. A non-empty
	// Env.Predictor always wins, so predictor sweeps work on any scheme.
	Predictor string `json:"predictor,omitempty"`

	// BTBEntries overrides the basic-block BTB capacity (0 = the core
	// configuration's, Table I: 2048). Confluence models a generous 16K.
	BTBEntries int `json:"btb_entries,omitempty"`
	// PredecodeBTBFills prefills the BTB by predecoding every cache line
	// the hierarchy fills (Confluence's fill-path predecode).
	PredecodeBTBFills bool `json:"predecode_btb_fills,omitempty"`
	// LLCReservedKB carves capacity out of the LLC for virtualised
	// prefetcher metadata (SHIFT/Confluence charge the history's footprint).
	LLCReservedKB int `json:"llc_reserved_kb,omitempty"`

	// Prefetcher attaches a history-based L1-I prefetcher; nil means none
	// (FDIP's prefetching is the engine's own, enabled by FDIPProbes).
	Prefetcher *PrefetcherConfig `json:"prefetcher,omitempty"`
	// MissPolicy selects what happens on a genuine BTB miss; nil means the
	// conventional sequential fall-through.
	MissPolicy *MissPolicyConfig `json:"miss_policy,omitempty"`
}

// Prefetcher kinds.
const (
	PrefetchNextLine = "next-line"
	PrefetchDIP      = "dip"
	PrefetchTemporal = "temporal"
)

// PrefetcherConfig describes a history-based L1-I prefetcher.
type PrefetcherConfig struct {
	// Kind is one of the Prefetch* constants.
	Kind string `json:"kind"`
	// Degree is the next-line prefetch depth (next-N-line; default 2).
	Degree int `json:"degree,omitempty"`
	// TableEntries sizes the DIP discontinuity table (default 8192).
	TableEntries int `json:"table_entries,omitempty"`
	// Temporal sizes a temporal-streaming prefetcher; nil uses the paper's
	// PIF sizing (prefetch.DefaultPIFConfig).
	Temporal *prefetch.TemporalConfig `json:"temporal,omitempty"`
	// MetadataInLLC virtualises the temporal metadata into the LLC (SHIFT):
	// the builder charges one LLC round trip of metadata latency, whatever
	// the core's LLC latency is configured to be.
	MetadataInLLC bool `json:"metadata_in_llc,omitempty"`
}

// Miss-policy kinds.
const (
	MissPolicyBoomerang = "boomerang"
	MissPolicyTwoLevel  = "two-level"
	MissPolicyPerfect   = "perfect"
)

// MissPolicyConfig describes the BTB miss policy.
type MissPolicyConfig struct {
	// Kind is one of the MissPolicy* constants.
	Kind string `json:"kind"`
	// Boomerang tunes the stall-and-predecode unit; nil uses the evaluated
	// design point (core.DefaultConfig).
	Boomerang *core.Config `json:"boomerang,omitempty"`
	// TwoLevel sizes a hierarchical BTB; nil uses the bulk-preload z-series
	// organisation (btb.BulkPreloadConfig).
	TwoLevel *TwoLevelConfig `json:"two_level,omitempty"`
	// L2InLLC virtualises the second BTB level into the LLC (PhantomBTB):
	// every L2 access pays the configured LLC round trip instead of
	// TwoLevel's L2Latency.
	L2InLLC bool `json:"l2_in_llc,omitempty"`
}

// TwoLevelConfig mirrors btb.TwoLevelConfig as declarative data.
type TwoLevelConfig struct {
	// L2Entries and L2Assoc size the second level.
	L2Entries int `json:"l2_entries"`
	L2Assoc   int `json:"l2_assoc"`
	// L2Latency is the L2 access cost in cycles (ignored when the policy
	// sets L2InLLC).
	L2Latency int64 `json:"l2_latency"`
	// PreloadLines bulk-preloads spatially neighbouring entries on a hit.
	PreloadLines int `json:"preload_lines"`
	// Temporal preloads temporal groups instead of spatial neighbours.
	Temporal bool `json:"temporal,omitempty"`
	// TemporalGroup is the group size for temporal preload.
	TemporalGroup int `json:"temporal_group,omitempty"`
}

// knownPredictors matches newDirection's accepted names.
var knownPredictors = map[string]bool{"": true, "tage": true, "bimodal": true, "never-taken": true}

// Validate reports the first problem that would make Build panic or build a
// nonsensical machine. It is the gate every external entry point (registry
// registration, JSON scheme files, wire requests) passes configs through.
func (c Config) Validate() error {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("scheme %q: %s", c.Name, fmt.Sprintf(format, args...))
	}
	if c.Name == "" {
		return fmt.Errorf("scheme config has no name")
	}
	if c.FTQDepth < 0 {
		return fail("ftq_depth must be >= 0, got %d", c.FTQDepth)
	}
	if c.BTBEntries < 0 {
		return fail("btb_entries must be >= 0, got %d", c.BTBEntries)
	}
	if c.LLCReservedKB < 0 {
		return fail("llc_reserved_kb must be >= 0, got %d", c.LLCReservedKB)
	}
	if c.StorageOverheadKB < 0 {
		return fail("storage_overhead_kb must be >= 0, got %g", c.StorageOverheadKB)
	}
	if !knownPredictors[c.Predictor] {
		return fail("unknown predictor %q (have: tage, bimodal, never-taken)", c.Predictor)
	}
	if p := c.Prefetcher; p != nil {
		switch p.Kind {
		case PrefetchNextLine:
			if p.Degree < 0 {
				return fail("next-line degree must be >= 0, got %d", p.Degree)
			}
		case PrefetchDIP:
			if p.TableEntries < 0 {
				return fail("dip table_entries must be >= 0, got %d", p.TableEntries)
			}
		case PrefetchTemporal:
			if t := p.Temporal; t != nil {
				if t.HistoryEntries <= 0 || t.IndexEntries <= 0 || t.RegionLines <= 0 || t.Lookahead <= 0 {
					return fail("temporal prefetcher needs positive history_entries, index_entries, region_lines and lookahead")
				}
				// A negative issue_rate would silently disable prefetching
				// (budget exhausted before the first line); negative
				// latencies and deviation budgets are equally nonsensical.
				if t.IssueRate < 0 || t.MaxDeviations < 0 || t.MetadataLatency < 0 {
					return fail("temporal prefetcher needs issue_rate, max_deviations and metadata_latency >= 0")
				}
			}
		default:
			return fail("unknown prefetcher kind %q (have: %s, %s, %s)",
				p.Kind, PrefetchNextLine, PrefetchDIP, PrefetchTemporal)
		}
		if p.Kind != PrefetchTemporal && (p.Temporal != nil || p.MetadataInLLC) {
			return fail("temporal parameters set on a %q prefetcher", p.Kind)
		}
	}
	if m := c.MissPolicy; m != nil {
		switch m.Kind {
		case MissPolicyBoomerang:
			if b := m.Boomerang; b != nil {
				if b.ThrottleN < 0 || b.MaxScanLines <= 0 || b.PredecodeLatency < 0 || b.PrefetchBufferEntries < 0 {
					return fail("boomerang policy needs throttle_n >= 0, max_scan_lines > 0, predecode_latency >= 0, prefetch_buffer_entries >= 0")
				}
			}
			if m.TwoLevel != nil || m.L2InLLC {
				return fail("two-level parameters set on a boomerang miss policy")
			}
		case MissPolicyTwoLevel:
			if t := m.TwoLevel; t != nil {
				if t.L2Entries <= 0 || t.L2Assoc <= 0 {
					return fail("two-level policy needs positive l2_entries and l2_assoc")
				}
				if t.L2Latency < 0 || t.PreloadLines < 0 || t.TemporalGroup < 0 {
					return fail("two-level policy latencies and preload sizes must be >= 0")
				}
			}
			if m.Boomerang != nil {
				return fail("boomerang parameters set on a two-level miss policy")
			}
		case MissPolicyPerfect:
			if m.Boomerang != nil || m.TwoLevel != nil || m.L2InLLC {
				return fail("perfect miss policy takes no parameters")
			}
		default:
			return fail("unknown miss policy kind %q (have: %s, %s, %s)",
				m.Kind, MissPolicyBoomerang, MissPolicyTwoLevel, MissPolicyPerfect)
		}
	}
	return nil
}
