// Package scheme assembles the control-flow-delivery configurations the
// paper evaluates (Section V-A): the no-prefetch baseline, Next-Line, DIP,
// FDIP, PIF, SHIFT, Confluence and Boomerang, plus the perfect-L1-I and
// perfect-BTB limit studies of Figure 1. Each scheme is a declarative
// Config — FTQ depth, prefetcher kind and parameters, BTB organisation,
// miss policy, predictor, and the paper's per-core storage-overhead
// accounting (Section VI-D) — interpreted by one generic builder
// (Config.Build). Because schemes are data, they serialize to JSON, travel
// over the wire, and users compose novel scenarios without touching this
// package; the constructors below are merely the built-in Config values.
package scheme

import (
	"fmt"

	"boomsim/internal/btb"
	"boomsim/internal/core"
	"boomsim/internal/isa"
	"boomsim/internal/prefetch"
	"boomsim/internal/program"
)

// Scheme is the historical name for a buildable configuration; schemes are
// now pure data, so it is the Config itself.
type Scheme = Config

// baselineFTQDepth is the shallow FTQ of non-decoupled schemes: enough to
// buffer fetch addresses, too shallow to prefetch from.
const baselineFTQDepth = 4

// shiftLLCReservedKB approximates the LLC capacity the virtualised
// instruction history occupies (32K records x ~5B).
const shiftLLCReservedKB = 160

// confluenceBTBEntries is the paper's generous Confluence model: SHIFT
// augmented with a 16K-entry BTB filled by predecoding incoming blocks.
const confluenceBTBEntries = 16384

// Base is the no-prefetch baseline every speedup normalises to: TAGE + 2K
// basic-block BTB, non-decoupled fetch.
func Base() Config {
	return Config{
		Name:        "Base",
		Description: "No instruction or BTB prefetching",
		FTQDepth:    baselineFTQDepth,
	}
}

// NextLine adds a next-2-line sequential prefetcher to the baseline.
func NextLine() Config {
	return Config{
		Name:        "Next Line",
		Description: "Next-2-line sequential prefetcher",
		FTQDepth:    baselineFTQDepth,
		Prefetcher:  &PrefetcherConfig{Kind: PrefetchNextLine, Degree: 2},
	}
}

// DIP is the discontinuity prefetcher (8K-entry table + next-2-line).
func DIP() Config {
	return Config{
		Name:              "DIP",
		Description:       "Discontinuity prefetcher, 8K-entry table + next-2-line",
		StorageOverheadKB: 64, // 8K entries x ~64 bits of tag+target
		FTQDepth:          baselineFTQDepth,
		Prefetcher:        &PrefetcherConfig{Kind: PrefetchDIP, TableEntries: 8192},
	}
}

// FDIP is fetch-directed instruction prefetch: the decoupled front end with
// a 32-entry FTQ driving prefetch probes.
func FDIP() Config {
	return Config{
		Name:              "FDIP",
		Description:       "Fetch-directed instruction prefetch (32-entry FTQ)",
		StorageOverheadKB: 0.2, // the deeper FTQ itself (204 bytes)
		FDIPProbes:        true,
	}
}

// PIF is Proactive Instruction Fetch: temporal streaming with per-core
// private metadata (the paper cites >200KB per core).
func PIF() Config {
	tcfg := prefetch.DefaultPIFConfig()
	return Config{
		Name:              "PIF",
		Description:       "Temporal-streaming prefetcher, private metadata",
		StorageOverheadKB: 224,
		FTQDepth:          baselineFTQDepth,
		Prefetcher:        &PrefetcherConfig{Kind: PrefetchTemporal, Temporal: &tcfg},
	}
}

// PIFWith builds a PIF variant with a custom temporal configuration
// (ablation studies).
func PIFWith(name string, tcfg prefetch.TemporalConfig) Config {
	return Config{
		Name:              name,
		Description:       "Temporal-streaming prefetcher (custom configuration)",
		StorageOverheadKB: 224,
		FTQDepth:          baselineFTQDepth,
		Prefetcher:        &PrefetcherConfig{Kind: PrefetchTemporal, Temporal: &tcfg},
	}
}

// SHIFT virtualises the temporal-streaming metadata into the LLC: replay
// pays the LLC round trip, the history carves LLC capacity, and the index
// extends the LLC tag array (240KB of dedicated storage).
func SHIFT() Config {
	tcfg := prefetch.DefaultPIFConfig()
	return Config{
		Name:              "SHIFT",
		Description:       "Shared history instruction fetch, LLC-virtualised metadata",
		StorageOverheadKB: 240.0 / 16, // 240KB LLC tag extension amortised over 16 cores
		FTQDepth:          baselineFTQDepth,
		LLCReservedKB:     shiftLLCReservedKB,
		Prefetcher: &PrefetcherConfig{
			Kind: PrefetchTemporal, Temporal: &tcfg, MetadataInLLC: true,
		},
	}
}

// Confluence rides SHIFT for L1-I prefetching and predecodes every arriving
// cache line into the BTB (modelled, per the paper, as SHIFT + a 16K-entry
// BTB for a generous upper bound). It does not detect BTB misses: when a
// prefetch is late or wrong, the front end runs sequentially.
func Confluence() Config {
	tcfg := prefetch.DefaultPIFConfig()
	return Config{
		Name:              "Confluence",
		Description:       "SHIFT + BTB prefill via predecode of incoming blocks",
		StorageOverheadKB: 240.0/16 + 0, // SHIFT machinery; BTB prefill reuses blocks
		FTQDepth:          baselineFTQDepth,
		BTBEntries:        confluenceBTBEntries,
		PredecodeBTBFills: true,
		LLCReservedKB:     shiftLLCReservedKB,
		Prefetcher: &PrefetcherConfig{
			Kind: PrefetchTemporal, Temporal: &tcfg, MetadataInLLC: true,
		},
	}
}

// Boomerang is the paper's architecture: FDIP plus BTB miss detection and
// predecode-driven prefill, at 540 bytes of added storage.
func Boomerang() Config {
	return BoomerangThrottled(core.DefaultConfig().ThrottleN)
}

// BoomerangThrottled parameterises the next-N-block policy under BTB misses
// (Figure 10 sweeps N in {0,1,2,4,8}).
func BoomerangThrottled(n int) Config {
	cfg := core.DefaultConfig()
	cfg.ThrottleN = n
	name := "Boomerang"
	if n != core.DefaultConfig().ThrottleN {
		name = fmt.Sprintf("Boomerang-N%d", n)
	}
	return BoomerangCustom(name, cfg)
}

// BoomerangCustom builds a Boomerang variant with an explicit unit
// configuration (ablation studies: BTB prefetch buffer size, predecode scan
// bound, throttle policy, unthrottled operation).
func BoomerangCustom(name string, bcfg core.Config) Config {
	return Config{
		Name:              name,
		Description:       "FDIP + BTB miss detection and predecode prefill (metadata-free)",
		StorageOverheadKB: float64(core.StorageBytes(32, bcfg.PrefetchBufferEntries)) / 1024,
		FDIPProbes:        true,
		MissPolicy:        &MissPolicyConfig{Kind: MissPolicyBoomerang, Boomerang: &bcfg},
	}
}

// BoomerangUnthrottled is Section IV-C1's alternative miss policy: keep
// feeding the FTQ sequentially while the miss resolves instead of stalling.
func BoomerangUnthrottled() Config {
	cfg := core.DefaultConfig()
	cfg.Unthrottled = true
	return BoomerangCustom("Boomerang-Unthrottled", cfg)
}

// FDIPDepth builds FDIP with a custom FTQ depth (ablation: how deep must
// the decoupling queue be for prefetch to run ahead of fetch?).
func FDIPDepth(depth int) Config {
	return Config{
		Name:              fmt.Sprintf("FDIP-FTQ%d", depth),
		Description:       "Fetch-directed instruction prefetch, custom FTQ depth",
		StorageOverheadKB: float64(depth*51) / 8 / 1024,
		FTQDepth:          depth,
		FDIPProbes:        true,
	}
}

// TwoLevelBTB is the Section II-C alternative Boomerang is positioned
// against: FDIP plus a large second-level BTB with bulk spatial preload
// (IBM z-series style). Every L1-BTB miss pays the L2 access latency.
func TwoLevelBTB() Config {
	return Config{
		Name:              "2-Level BTB",
		Description:       "FDIP + 16K-entry L2 BTB with bulk spatial preload",
		StorageOverheadKB: 16384 * 84 / 8 / 1024,
		FDIPProbes:        true,
		MissPolicy: &MissPolicyConfig{
			Kind: MissPolicyTwoLevel,
			TwoLevel: &TwoLevelConfig{
				L2Entries: 16384, L2Assoc: 4, L2Latency: 4, PreloadLines: 1,
			},
		},
	}
}

// PhantomBTBScheme is the other Section II-C alternative: temporal groups of
// BTB entries virtualised into the LLC, so every L1-BTB miss that hits the
// virtual second level pays an LLC round trip.
func PhantomBTBScheme() Config {
	return Config{
		Name:              "PhantomBTB",
		Description:       "FDIP + LLC-virtualised temporal-group BTB",
		StorageOverheadKB: 2, // per-core control state; groups live in the LLC
		FDIPProbes:        true,
		MissPolicy: &MissPolicyConfig{
			Kind: MissPolicyTwoLevel,
			TwoLevel: &TwoLevelConfig{
				L2Entries: 16384, L2Assoc: 4, Temporal: true, TemporalGroup: 6,
			},
			L2InLLC: true,
		},
	}
}

// PerfectL1I is the Figure 1 limit study: every fetch hits the L1-I.
func PerfectL1I() Config {
	return Config{
		Name:        "Perfect L1-I",
		Description: "All instruction fetches hit the L1-I",
		FTQDepth:    baselineFTQDepth,
		PerfectL1:   true,
	}
}

// PerfectCF adds a perfect BTB on top of the perfect L1-I (Figure 1's
// second bar): no BTB misses ever occur.
func PerfectCF() Config {
	return Config{
		Name:        "Perfect L1-I + BTB",
		Description: "Perfect L1-I and no BTB misses",
		FTQDepth:    baselineFTQDepth,
		PerfectL1:   true,
		MissPolicy:  &MissPolicyConfig{Kind: MissPolicyPerfect},
	}
}

// PerfectBTB resolves every BTB miss instantly with ground truth from the
// code image (capacity-infinite BTB). Indirect targets still need learning,
// so target mispredictions survive — only BTB misses are eliminated.
type PerfectBTB struct{ Img *program.Image }

// Handle implements the frontend MissHandler contract.
func (p *PerfectBTB) Handle(pc isa.Addr, now int64) (btb.Entry, int64, bool) {
	blk, ok := p.Img.BlockContaining(pc)
	if !ok {
		return btb.Entry{}, now, false
	}
	e := btb.Entry{
		Start:  pc,
		NInstr: blk.NInstr - uint16((pc-blk.Addr)/isa.InstrBytes),
		Kind:   blk.Term.Kind,
	}
	switch blk.Term.Kind {
	case isa.CondDirect, isa.UncondDirect, isa.CallDirect:
		e.Target = blk.Term.Target
	}
	return e, now, true
}

// All returns the six schemes of Figures 7-9 in presentation order.
func All() []Config {
	return []Config{Base(), NextLine(), DIP(), FDIP(), SHIFT(), Confluence(), Boomerang()}
}

// Compared returns the prefetching schemes (everything but Base).
func Compared() []Config {
	return []Config{NextLine(), DIP(), FDIP(), SHIFT(), Confluence(), Boomerang()}
}

// ByName finds a scheme in All plus the limit studies, PIF, and the
// hierarchical-BTB alternatives.
func ByName(name string) (Config, bool) {
	candidates := append(All(), PIF(), PerfectL1I(), PerfectCF(),
		TwoLevelBTB(), PhantomBTBScheme())
	for _, s := range candidates {
		if s.Name == name {
			return s, true
		}
	}
	return Config{}, false
}
