// Package scheme assembles the control-flow-delivery configurations the
// paper evaluates (Section V-A): the no-prefetch baseline, Next-Line, DIP,
// FDIP, PIF, SHIFT, Confluence and Boomerang, plus the perfect-L1-I and
// perfect-BTB limit studies of Figure 1. Each scheme is a recipe that wires
// a front-end engine with the right FTQ depth, prefetcher, BTB organisation
// and miss policy, and carries the paper's per-core storage-overhead
// accounting (Section VI-D).
package scheme

import (
	"fmt"

	"boomsim/internal/bpu"
	"boomsim/internal/btb"
	"boomsim/internal/cache"
	"boomsim/internal/config"
	"boomsim/internal/core"
	"boomsim/internal/frontend"
	"boomsim/internal/isa"
	"boomsim/internal/prefetch"
	"boomsim/internal/program"
	"boomsim/internal/workload"
)

// Env is everything a scheme needs to instantiate.
type Env struct {
	// Cfg is the core configuration (Table I).
	Cfg config.Core
	// Img is the workload's code image.
	Img *program.Image
	// WalkSeed seeds the oracle execution.
	WalkSeed uint64
	// Predictor selects the FDIP direction predictor: "tage" (default),
	// "bimodal", or "never-taken" (the Figure 2 study).
	Predictor string
}

// Instance is a built scheme: the engine plus handles to scheme-specific
// components for statistics.
type Instance struct {
	Engine *frontend.Engine
	Hier   *cache.Hierarchy
	BTB    *btb.BTB
	// Boom is non-nil for Boomerang configurations.
	Boom *core.Boomerang
	// Predec is non-nil for schemes with a standalone predecoder
	// (Confluence's fill-path predecode).
	Predec *btb.Predecoder
	// PF is the history-based prefetcher, if any.
	PF frontend.Prefetcher
}

// Scheme is a named, buildable configuration.
type Scheme struct {
	// Name matches the paper's figures.
	Name string
	// Description summarises the mechanism.
	Description string
	// StorageOverheadKB is the per-core metadata cost beyond the baseline
	// front end (Section VI-D).
	StorageOverheadKB float64
	// Build instantiates the scheme.
	Build func(Env) *Instance
}

// baselineFTQDepth is the shallow FTQ of non-decoupled schemes: enough to
// buffer fetch addresses, too shallow to prefetch from.
const baselineFTQDepth = 4

// shiftLLCReservedKB approximates the LLC capacity the virtualised
// instruction history occupies (32K records x ~5B).
const shiftLLCReservedKB = 160

// confluenceBTBEntries is the paper's generous Confluence model: SHIFT
// augmented with a 16K-entry BTB filled by predecoding incoming blocks.
const confluenceBTBEntries = 16384

func newDirection(name string, kb int) bpu.Direction {
	switch name {
	case "", "tage":
		return bpu.NewTAGE(kb)
	case "bimodal":
		return bpu.NewBimodal(8192)
	case "never-taken":
		return bpu.NewNeverTaken()
	}
	panic(fmt.Sprintf("scheme: unknown predictor %q", name))
}

func baseParts(env Env, llcReservedKB, btbEntries int) (*cache.Hierarchy, *btb.BTB, bpu.Direction, *workload.Walker) {
	hier := cache.NewHierarchy(env.Cfg, llcReservedKB)
	if btbEntries == 0 {
		btbEntries = env.Cfg.BTBEntries
	}
	b := btb.New(btbEntries, env.Cfg.BTBAssoc)
	dir := newDirection(env.Predictor, env.Cfg.TAGEStorageKB)
	orc := workload.NewWalker(env.Img, env.WalkSeed)
	return hier, b, dir, orc
}

// Base is the no-prefetch baseline every speedup normalises to: TAGE + 2K
// basic-block BTB, non-decoupled fetch.
func Base() Scheme {
	return Scheme{
		Name:        "Base",
		Description: "No instruction or BTB prefetching",
		Build: func(env Env) *Instance {
			hier, b, dir, orc := baseParts(env, 0, 0)
			e := frontend.New(frontend.Options{
				Config: env.Cfg, Image: env.Img, Oracle: orc,
				Hierarchy: hier, Direction: dir, BTB: b,
				DecoupledDepth: baselineFTQDepth,
			})
			return &Instance{Engine: e, Hier: hier, BTB: b}
		},
	}
}

// NextLine adds a next-2-line sequential prefetcher to the baseline.
func NextLine() Scheme {
	return Scheme{
		Name:        "Next Line",
		Description: "Next-2-line sequential prefetcher",
		Build: func(env Env) *Instance {
			hier, b, dir, orc := baseParts(env, 0, 0)
			pf := prefetch.NewNextLine(hier, 2)
			e := frontend.New(frontend.Options{
				Config: env.Cfg, Image: env.Img, Oracle: orc,
				Hierarchy: hier, Direction: dir, BTB: b,
				Prefetcher: pf, DecoupledDepth: baselineFTQDepth,
			})
			return &Instance{Engine: e, Hier: hier, BTB: b, PF: pf}
		},
	}
}

// DIP is the discontinuity prefetcher (8K-entry table + next-2-line).
func DIP() Scheme {
	return Scheme{
		Name:              "DIP",
		Description:       "Discontinuity prefetcher, 8K-entry table + next-2-line",
		StorageOverheadKB: 64, // 8K entries x ~64 bits of tag+target
		Build: func(env Env) *Instance {
			hier, b, dir, orc := baseParts(env, 0, 0)
			pf := prefetch.NewDIP(hier, 8192)
			e := frontend.New(frontend.Options{
				Config: env.Cfg, Image: env.Img, Oracle: orc,
				Hierarchy: hier, Direction: dir, BTB: b,
				Prefetcher: pf, DecoupledDepth: baselineFTQDepth,
			})
			return &Instance{Engine: e, Hier: hier, BTB: b, PF: pf}
		},
	}
}

// FDIP is fetch-directed instruction prefetch: the decoupled front end with
// a 32-entry FTQ driving prefetch probes.
func FDIP() Scheme {
	return Scheme{
		Name:              "FDIP",
		Description:       "Fetch-directed instruction prefetch (32-entry FTQ)",
		StorageOverheadKB: 0.2, // the deeper FTQ itself (204 bytes)
		Build: func(env Env) *Instance {
			hier, b, dir, orc := baseParts(env, 0, 0)
			e := frontend.New(frontend.Options{
				Config: env.Cfg, Image: env.Img, Oracle: orc,
				Hierarchy: hier, Direction: dir, BTB: b,
				FDIPProbes: true,
			})
			return &Instance{Engine: e, Hier: hier, BTB: b}
		},
	}
}

// PIF is Proactive Instruction Fetch: temporal streaming with per-core
// private metadata (the paper cites >200KB per core).
func PIF() Scheme {
	return Scheme{
		Name:              "PIF",
		Description:       "Temporal-streaming prefetcher, private metadata",
		StorageOverheadKB: 224,
		Build: func(env Env) *Instance {
			hier, b, dir, orc := baseParts(env, 0, 0)
			pf := prefetch.NewTemporal(hier, prefetch.DefaultPIFConfig())
			e := frontend.New(frontend.Options{
				Config: env.Cfg, Image: env.Img, Oracle: orc,
				Hierarchy: hier, Direction: dir, BTB: b,
				Prefetcher: pf, DecoupledDepth: baselineFTQDepth,
			})
			return &Instance{Engine: e, Hier: hier, BTB: b, PF: pf}
		},
	}
}

// PIFWith builds a PIF variant with a custom temporal configuration
// (ablation studies).
func PIFWith(name string, tcfg prefetch.TemporalConfig) Scheme {
	return Scheme{
		Name:              name,
		Description:       "Temporal-streaming prefetcher (custom configuration)",
		StorageOverheadKB: 224,
		Build: func(env Env) *Instance {
			hier, b, dir, orc := baseParts(env, 0, 0)
			pf := prefetch.NewTemporal(hier, tcfg)
			e := frontend.New(frontend.Options{
				Config: env.Cfg, Image: env.Img, Oracle: orc,
				Hierarchy: hier, Direction: dir, BTB: b,
				Prefetcher: pf, DecoupledDepth: baselineFTQDepth,
			})
			return &Instance{Engine: e, Hier: hier, BTB: b, PF: pf}
		},
	}
}

// SHIFT virtualises the temporal-streaming metadata into the LLC: replay
// pays the LLC round trip, the history carves LLC capacity, and the index
// extends the LLC tag array (240KB of dedicated storage).
func SHIFT() Scheme {
	return Scheme{
		Name:              "SHIFT",
		Description:       "Shared history instruction fetch, LLC-virtualised metadata",
		StorageOverheadKB: 240.0 / 16, // 240KB LLC tag extension amortised over 16 cores
		Build: func(env Env) *Instance {
			hier, b, dir, orc := baseParts(env, shiftLLCReservedKB, 0)
			pf := prefetch.NewTemporal(hier, prefetch.DefaultSHIFTConfig(hier.LLCRoundTrip()))
			e := frontend.New(frontend.Options{
				Config: env.Cfg, Image: env.Img, Oracle: orc,
				Hierarchy: hier, Direction: dir, BTB: b,
				Prefetcher: pf, DecoupledDepth: baselineFTQDepth,
			})
			return &Instance{Engine: e, Hier: hier, BTB: b, PF: pf}
		},
	}
}

// Confluence rides SHIFT for L1-I prefetching and predecodes every arriving
// cache line into the BTB (modelled, per the paper, as SHIFT + a 16K-entry
// BTB for a generous upper bound). It does not detect BTB misses: when a
// prefetch is late or wrong, the front end runs sequentially.
func Confluence() Scheme {
	return Scheme{
		Name:              "Confluence",
		Description:       "SHIFT + BTB prefill via predecode of incoming blocks",
		StorageOverheadKB: 240.0/16 + 0, // SHIFT machinery; BTB prefill reuses blocks
		Build: func(env Env) *Instance {
			hier, b, dir, orc := baseParts(env, shiftLLCReservedKB, confluenceBTBEntries)
			pf := prefetch.NewTemporal(hier, prefetch.DefaultSHIFTConfig(hier.LLCRoundTrip()))
			dec := btb.NewPredecoder(env.Img)
			// The hook runs inside the per-cycle hierarchy tick; decode into
			// a reused scratch buffer to honour the zero-alloc contract.
			var scratch []btb.Entry
			hier.SetFillHook(func(line cache.Line, now int64) {
				scratch = dec.AppendLine(scratch[:0], isa.Addr(line)*isa.BlockBytes)
				for _, entry := range scratch {
					b.Insert(entry, now)
				}
			})
			e := frontend.New(frontend.Options{
				Config: env.Cfg, Image: env.Img, Oracle: orc,
				Hierarchy: hier, Direction: dir, BTB: b,
				Prefetcher: pf, DecoupledDepth: baselineFTQDepth,
			})
			return &Instance{Engine: e, Hier: hier, BTB: b, PF: pf, Predec: dec}
		},
	}
}

// Boomerang is the paper's architecture: FDIP plus BTB miss detection and
// predecode-driven prefill, at 540 bytes of added storage.
func Boomerang() Scheme {
	return BoomerangThrottled(core.DefaultConfig().ThrottleN)
}

// BoomerangThrottled parameterises the next-N-block policy under BTB misses
// (Figure 10 sweeps N in {0,1,2,4,8}).
func BoomerangThrottled(n int) Scheme {
	cfg := core.DefaultConfig()
	cfg.ThrottleN = n
	name := "Boomerang"
	if n != core.DefaultConfig().ThrottleN {
		name = fmt.Sprintf("Boomerang-N%d", n)
	}
	return BoomerangCustom(name, cfg)
}

// BoomerangCustom builds a Boomerang variant with an explicit unit
// configuration (ablation studies: BTB prefetch buffer size, predecode scan
// bound, throttle policy, unthrottled operation).
func BoomerangCustom(name string, bcfg core.Config) Scheme {
	return Scheme{
		Name:              name,
		Description:       "FDIP + BTB miss detection and predecode prefill (metadata-free)",
		StorageOverheadKB: float64(core.StorageBytes(32, bcfg.PrefetchBufferEntries)) / 1024,
		Build: func(env Env) *Instance {
			hier, b, dir, orc := baseParts(env, 0, 0)
			boom := core.New(bcfg, hier, btb.NewPredecoder(env.Img))
			boom.SetBTB(b)
			e := frontend.New(frontend.Options{
				Config: env.Cfg, Image: env.Img, Oracle: orc,
				Hierarchy: hier, Direction: dir, BTB: b,
				MissHandler: boom, FDIPProbes: true,
			})
			return &Instance{Engine: e, Hier: hier, BTB: b, Boom: boom}
		},
	}
}

// BoomerangUnthrottled is Section IV-C1's alternative miss policy: keep
// feeding the FTQ sequentially while the miss resolves instead of stalling.
func BoomerangUnthrottled() Scheme {
	cfg := core.DefaultConfig()
	cfg.Unthrottled = true
	return BoomerangCustom("Boomerang-Unthrottled", cfg)
}

// FDIPDepth builds FDIP with a custom FTQ depth (ablation: how deep must
// the decoupling queue be for prefetch to run ahead of fetch?).
func FDIPDepth(depth int) Scheme {
	return Scheme{
		Name:              fmt.Sprintf("FDIP-FTQ%d", depth),
		Description:       "Fetch-directed instruction prefetch, custom FTQ depth",
		StorageOverheadKB: float64(depth*51) / 8 / 1024,
		Build: func(env Env) *Instance {
			hier, b, dir, orc := baseParts(env, 0, 0)
			e := frontend.New(frontend.Options{
				Config: env.Cfg, Image: env.Img, Oracle: orc,
				Hierarchy: hier, Direction: dir, BTB: b,
				FDIPProbes: true, DecoupledDepth: depth,
			})
			return &Instance{Engine: e, Hier: hier, BTB: b}
		},
	}
}

// TwoLevelBTB is the Section II-C alternative Boomerang is positioned
// against: FDIP plus a large second-level BTB with bulk spatial preload
// (IBM z-series style). Every L1-BTB miss pays the L2 access latency.
func TwoLevelBTB() Scheme {
	return Scheme{
		Name:              "2-Level BTB",
		Description:       "FDIP + 16K-entry L2 BTB with bulk spatial preload",
		StorageOverheadKB: 16384 * 84 / 8 / 1024,
		Build: func(env Env) *Instance {
			hier, b, dir, orc := baseParts(env, 0, 0)
			handler := btb.NewTwoLevel(btb.BulkPreloadConfig(), b)
			e := frontend.New(frontend.Options{
				Config: env.Cfg, Image: env.Img, Oracle: orc,
				Hierarchy: hier, Direction: dir, BTB: b,
				MissHandler: handler, FDIPProbes: true,
			})
			return &Instance{Engine: e, Hier: hier, BTB: b}
		},
	}
}

// PhantomBTBScheme is the other Section II-C alternative: temporal groups of
// BTB entries virtualised into the LLC, so every L1-BTB miss that hits the
// virtual second level pays an LLC round trip.
func PhantomBTBScheme() Scheme {
	return Scheme{
		Name:              "PhantomBTB",
		Description:       "FDIP + LLC-virtualised temporal-group BTB",
		StorageOverheadKB: 2, // per-core control state; groups live in the LLC
		Build: func(env Env) *Instance {
			hier, b, dir, orc := baseParts(env, 0, 0)
			handler := btb.NewTwoLevel(btb.PhantomBTBConfig(hier.LLCRoundTrip()), b)
			e := frontend.New(frontend.Options{
				Config: env.Cfg, Image: env.Img, Oracle: orc,
				Hierarchy: hier, Direction: dir, BTB: b,
				MissHandler: handler, FDIPProbes: true,
			})
			return &Instance{Engine: e, Hier: hier, BTB: b}
		},
	}
}

// PerfectL1I is the Figure 1 limit study: every fetch hits the L1-I.
func PerfectL1I() Scheme {
	return Scheme{
		Name:        "Perfect L1-I",
		Description: "All instruction fetches hit the L1-I",
		Build: func(env Env) *Instance {
			hier, b, dir, orc := baseParts(env, 0, 0)
			e := frontend.New(frontend.Options{
				Config: env.Cfg, Image: env.Img, Oracle: orc,
				Hierarchy: hier, Direction: dir, BTB: b,
				PerfectL1: true, DecoupledDepth: baselineFTQDepth,
			})
			return &Instance{Engine: e, Hier: hier, BTB: b}
		},
	}
}

// PerfectCF adds a perfect BTB on top of the perfect L1-I (Figure 1's
// second bar): no BTB misses ever occur.
func PerfectCF() Scheme {
	return Scheme{
		Name:        "Perfect L1-I + BTB",
		Description: "Perfect L1-I and no BTB misses",
		Build: func(env Env) *Instance {
			hier, b, dir, orc := baseParts(env, 0, 0)
			e := frontend.New(frontend.Options{
				Config: env.Cfg, Image: env.Img, Oracle: orc,
				Hierarchy: hier, Direction: dir, BTB: b,
				PerfectL1:      true,
				MissHandler:    &PerfectBTB{Img: env.Img},
				DecoupledDepth: baselineFTQDepth,
			})
			return &Instance{Engine: e, Hier: hier, BTB: b}
		},
	}
}

// PerfectBTB resolves every BTB miss instantly with ground truth from the
// code image (capacity-infinite BTB). Indirect targets still need learning,
// so target mispredictions survive — only BTB misses are eliminated.
type PerfectBTB struct{ Img *program.Image }

// Handle implements the frontend MissHandler contract.
func (p *PerfectBTB) Handle(pc isa.Addr, now int64) (btb.Entry, int64, bool) {
	blk, ok := p.Img.BlockContaining(pc)
	if !ok {
		return btb.Entry{}, now, false
	}
	e := btb.Entry{
		Start:  pc,
		NInstr: blk.NInstr - uint16((pc-blk.Addr)/isa.InstrBytes),
		Kind:   blk.Term.Kind,
	}
	switch blk.Term.Kind {
	case isa.CondDirect, isa.UncondDirect, isa.CallDirect:
		e.Target = blk.Term.Target
	}
	return e, now, true
}

// All returns the six schemes of Figures 7-9 in presentation order.
func All() []Scheme {
	return []Scheme{Base(), NextLine(), DIP(), FDIP(), SHIFT(), Confluence(), Boomerang()}
}

// Compared returns the prefetching schemes (everything but Base).
func Compared() []Scheme {
	return []Scheme{NextLine(), DIP(), FDIP(), SHIFT(), Confluence(), Boomerang()}
}

// ByName finds a scheme in All plus the limit studies, PIF, and the
// hierarchical-BTB alternatives.
func ByName(name string) (Scheme, bool) {
	candidates := append(All(), PIF(), PerfectL1I(), PerfectCF(),
		TwoLevelBTB(), PhantomBTBScheme())
	for _, s := range candidates {
		if s.Name == name {
			return s, true
		}
	}
	return Scheme{}, false
}
