package scheme

import (
	"fmt"

	"boomsim/internal/bpu"
	"boomsim/internal/btb"
	"boomsim/internal/cache"
	"boomsim/internal/config"
	"boomsim/internal/core"
	"boomsim/internal/frontend"
	"boomsim/internal/isa"
	"boomsim/internal/prefetch"
	"boomsim/internal/program"
	"boomsim/internal/stats"
	"boomsim/internal/workload"
)

// Env is everything a scheme needs to instantiate.
type Env struct {
	// Cfg is the core configuration (Table I).
	Cfg config.Core
	// Img is the workload's code image.
	Img *program.Image
	// WalkSeed seeds the oracle execution.
	WalkSeed uint64
	// Predictor overrides the scheme's direction predictor: "tage",
	// "bimodal", or "never-taken" (the Figure 2 study). Empty defers to the
	// scheme Config, then TAGE.
	Predictor string
}

// Instance is a built scheme: the engine plus handles to scheme-specific
// components for statistics.
type Instance struct {
	Engine *frontend.Engine
	Hier   *cache.Hierarchy
	BTB    *btb.BTB
	// Dir is the direction predictor the engine predicts with.
	Dir bpu.Direction
	// Boom is non-nil for Boomerang configurations.
	Boom *core.Boomerang
	// TwoLvl is non-nil for hierarchical-BTB configurations (2-Level BTB,
	// PhantomBTB).
	TwoLvl *btb.TwoLevel
	// Predec is non-nil for schemes with a standalone predecoder
	// (Confluence's fill-path predecode).
	Predec *btb.Predecoder
	// PF is the history-based prefetcher, if any.
	PF frontend.Prefetcher
}

// PublishStats walks every component the instance owns and has each one
// register its counters under its own namespace of reg — the measurement
// plane the whole stack (sim.Result, the public API, boomsimd, the cluster,
// the CLIs) reports from.
func (i *Instance) PublishStats(reg *stats.Registry) {
	i.Engine.PublishStats(reg)
	i.Hier.PublishStats(reg.Namespace("cache"))
	i.BTB.PublishStats(reg.Namespace("btb"))
	if i.Boom != nil {
		i.Boom.PublishStats(reg.Namespace("boomerang"))
	}
	if i.TwoLvl != nil {
		i.TwoLvl.PublishStats(reg.Namespace("btb2"))
	}
	if i.Predec != nil {
		i.Predec.PublishStats(reg.Namespace("predecode"))
	}
	if p, ok := i.PF.(stats.Publisher); ok {
		p.PublishStats(reg.Namespace("prefetch"))
	}
}

func newDirection(name string, kb int) bpu.Direction {
	switch name {
	case "", "tage":
		return bpu.NewTAGE(kb)
	case "bimodal":
		return bpu.NewBimodal(8192)
	case "never-taken":
		return bpu.NewNeverTaken()
	}
	panic(fmt.Sprintf("scheme: unknown predictor %q", name))
}

// attachPredecodeFillHook wires Confluence's fill-path predecode: every line
// filled into the hierarchy is decoded and its branches inserted into the
// BTB. The hook runs inside the per-cycle hierarchy tick; it decodes into a
// reused scratch buffer to honour the zero-alloc contract. Build installs it
// on fresh instances and Instance.Clone re-attaches it on forks (the closure
// captures the predecoder and BTB, so it cannot be copied between instances).
func attachPredecodeFillHook(hier *cache.Hierarchy, dec *btb.Predecoder, b *btb.BTB) {
	var scratch []btb.Entry
	hier.SetFillHook(func(line cache.Line, now int64) {
		scratch = dec.AppendLine(scratch[:0], isa.Addr(line)*isa.BlockBytes)
		for _, entry := range scratch {
			b.Insert(entry, now)
		}
	})
}

// Build interprets the declarative Config against env and assembles the
// machine: hierarchy, BTB, predictor, oracle walker, optional prefetcher and
// miss policy, all wired into a front-end engine. It is the one generic
// builder every scheme — built-in or user-authored — goes through; there are
// no per-scheme construction closures.
//
// Build panics on configs Validate rejects; callers constructing configs
// from external input must Validate first.
func (c Config) Build(env Env) *Instance {
	hier := cache.NewHierarchy(env.Cfg, c.LLCReservedKB)
	btbEntries := c.BTBEntries
	if btbEntries == 0 {
		btbEntries = env.Cfg.BTBEntries
	}
	b := btb.New(btbEntries, env.Cfg.BTBAssoc)
	predictor := env.Predictor
	if predictor == "" {
		predictor = c.Predictor
	}
	dir := newDirection(predictor, env.Cfg.TAGEStorageKB)
	orc := workload.NewWalker(env.Img, env.WalkSeed)
	inst := &Instance{Hier: hier, BTB: b, Dir: dir}

	if p := c.Prefetcher; p != nil {
		switch p.Kind {
		case PrefetchNextLine:
			degree := p.Degree
			if degree == 0 {
				degree = 2
			}
			inst.PF = prefetch.NewNextLine(hier, degree)
		case PrefetchDIP:
			entries := p.TableEntries
			if entries == 0 {
				entries = 8192
			}
			inst.PF = prefetch.NewDIP(hier, entries)
		case PrefetchTemporal:
			tcfg := prefetch.DefaultPIFConfig()
			if p.Temporal != nil {
				tcfg = *p.Temporal
			}
			if p.MetadataInLLC {
				tcfg.MetadataLatency = hier.LLCRoundTrip()
			}
			inst.PF = prefetch.NewTemporal(hier, tcfg)
		default:
			panic(fmt.Sprintf("scheme: unknown prefetcher kind %q", p.Kind))
		}
	}

	if c.PredecodeBTBFills {
		dec := btb.NewPredecoder(env.Img)
		attachPredecodeFillHook(hier, dec, b)
		inst.Predec = dec
	}

	var handler frontend.MissHandler
	if m := c.MissPolicy; m != nil {
		switch m.Kind {
		case MissPolicyBoomerang:
			bcfg := core.DefaultConfig()
			if m.Boomerang != nil {
				bcfg = *m.Boomerang
			}
			boom := core.New(bcfg, hier, btb.NewPredecoder(env.Img))
			boom.SetBTB(b)
			handler, inst.Boom = boom, boom
		case MissPolicyTwoLevel:
			tcfg := btb.BulkPreloadConfig()
			if m.TwoLevel != nil {
				tcfg = btb.TwoLevelConfig{
					L2Entries:     m.TwoLevel.L2Entries,
					L2Assoc:       m.TwoLevel.L2Assoc,
					L2Latency:     m.TwoLevel.L2Latency,
					PreloadLines:  m.TwoLevel.PreloadLines,
					Temporal:      m.TwoLevel.Temporal,
					TemporalGroup: m.TwoLevel.TemporalGroup,
				}
			}
			if m.L2InLLC {
				tcfg.L2Latency = hier.LLCRoundTrip()
			}
			tl := btb.NewTwoLevel(tcfg, b)
			handler, inst.TwoLvl = tl, tl
		case MissPolicyPerfect:
			handler = &PerfectBTB{Img: env.Img}
		default:
			panic(fmt.Sprintf("scheme: unknown miss policy kind %q", m.Kind))
		}
	}

	inst.Engine = frontend.New(frontend.Options{
		Config: env.Cfg, Image: env.Img, Oracle: orc,
		Hierarchy: hier, Direction: dir, BTB: b,
		MissHandler: handler, Prefetcher: inst.PF,
		FDIPProbes: c.FDIPProbes, PerfectL1: c.PerfectL1,
		DecoupledDepth: c.FTQDepth,
	})
	return inst
}
