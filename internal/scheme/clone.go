package scheme

import (
	"boomsim/internal/bpu"
	"boomsim/internal/cache"
	"boomsim/internal/frontend"
	"boomsim/internal/prefetch"
)

// Clone returns an independent deep copy of a built (and possibly warmed)
// instance: the fork and the original simulate identically from this point
// while sharing no mutable state, so a fork of a warmed instance is
// indistinguishable from a fresh warm of the same spec. It returns nil when
// any component is not clonable (an engine driven by a non-walker oracle, or
// a component type this package does not know) — callers fall back to
// building and warming a fresh instance.
//
// Cross-component wiring is re-established on the clones: the Boomerang unit
// and hierarchical BTB point at the cloned L1 BTB and hierarchy, Confluence's
// fill hook (a closure, deliberately dropped by Hierarchy.Clone) is
// re-attached around the cloned predecoder, and the engine is wired to all
// of the above via frontend.CloneDeps.
func (i *Instance) Clone() *Instance {
	hier := i.Hier.Clone()
	b := i.BTB.Clone()
	dir := cloneDirection(i.Dir)
	if dir == nil {
		return nil
	}
	c := &Instance{Hier: hier, BTB: b, Dir: dir}
	if i.PF != nil {
		c.PF = clonePrefetcher(i.PF, hier)
		if c.PF == nil {
			return nil
		}
	}
	var handler frontend.MissHandler
	switch {
	case i.Boom != nil:
		boom := i.Boom.Clone(hier, b)
		handler, c.Boom = boom, boom
	case i.TwoLvl != nil:
		tl := i.TwoLvl.Clone(b)
		handler, c.TwoLvl = tl, tl
	default:
		switch m := i.Engine.MissPolicy().(type) {
		case nil:
			// Conventional front end; nothing to clone.
		case *PerfectBTB:
			handler = m // stateless over an immutable image: safe to share
		default:
			return nil
		}
	}
	if i.Predec != nil {
		c.Predec = i.Predec.Clone()
		attachPredecodeFillHook(hier, c.Predec, b)
	}
	c.Engine = i.Engine.Clone(frontend.CloneDeps{
		Hierarchy:   hier,
		Direction:   dir,
		BTB:         b,
		MissHandler: handler,
		Prefetcher:  c.PF,
	})
	if c.Engine == nil {
		return nil
	}
	return c
}

func cloneDirection(d bpu.Direction) bpu.Direction {
	switch v := d.(type) {
	case *bpu.TAGE:
		return v.Clone()
	case *bpu.Bimodal:
		return v.Clone()
	case *bpu.NeverTaken:
		return v.Clone()
	}
	return nil
}

func clonePrefetcher(p frontend.Prefetcher, hier *cache.Hierarchy) frontend.Prefetcher {
	switch v := p.(type) {
	case *prefetch.NextLine:
		return v.CloneFor(hier)
	case *prefetch.DIP:
		return v.CloneFor(hier)
	case *prefetch.Temporal:
		return v.CloneFor(hier)
	}
	return nil
}
