package scheme

import (
	"testing"

	"boomsim/internal/config"
	"boomsim/internal/isa"
	"boomsim/internal/program"
)

func testEnv(t testing.TB) Env {
	t.Helper()
	g := program.DefaultGenParams()
	g.FootprintKB = 128
	g.Layers = 4
	img, err := program.Generate(g)
	if err != nil {
		t.Fatal(err)
	}
	return Env{Cfg: config.Default(), Img: img, WalkSeed: 1}
}

func TestAllSchemesBuild(t *testing.T) {
	env := testEnv(t)
	for _, s := range append(All(), PIF(), PerfectL1I(), PerfectCF()) {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			inst := s.Build(env)
			if inst.Engine == nil || inst.Hier == nil || inst.BTB == nil {
				t.Fatal("instance missing required components")
			}
			// Every scheme must actually execute.
			st := inst.Engine.Run(20_000, 5_000_000)
			if st.RetiredInstrs < 20_000 {
				t.Fatalf("retired only %d instructions", st.RetiredInstrs)
			}
		})
	}
}

func TestBoomerangInstanceHasUnit(t *testing.T) {
	env := testEnv(t)
	inst := Boomerang().Build(env)
	if inst.Boom == nil {
		t.Fatal("Boomerang instance must expose its miss-handling unit")
	}
	inst.Engine.Run(50_000, 5_000_000)
	st := inst.Boom.Stats()
	if st.Probes == 0 {
		t.Fatal("Boomerang never issued a BTB miss probe")
	}
}

func TestConfluenceFillsBTBFromPrefetches(t *testing.T) {
	env := testEnv(t)
	inst := Confluence().Build(env)
	if inst.BTB.Entries() != confluenceBTBEntries {
		t.Fatalf("Confluence BTB has %d entries, want %d", inst.BTB.Entries(), confluenceBTBEntries)
	}
	inst.Engine.Run(50_000, 5_000_000)
	hits, _ := inst.BTB.Stats()
	if hits == 0 {
		t.Fatal("Confluence BTB never hit")
	}
}

func TestSHIFTCarvesLLC(t *testing.T) {
	env := testEnv(t)
	shift := SHIFT().Build(env)
	fdip := FDIP().Build(env)
	// Run both briefly and compare their hierarchy stats shapes; the carve
	// is structural, so compare capacities via the instance hierarchies.
	shift.Engine.Run(5_000, 2_000_000)
	fdip.Engine.Run(5_000, 2_000_000)
	// No direct accessor for LLC size; rely on construction arguments by
	// rebuilding hierarchies is overkill — instead check the scheme's
	// documented reservation constant is sane.
	if shiftLLCReservedKB < 100 || shiftLLCReservedKB > 512 {
		t.Fatalf("SHIFT LLC reservation %d KB implausible", shiftLLCReservedKB)
	}
}

func TestPerfectBTBHandler(t *testing.T) {
	env := testEnv(t)
	h := &PerfectBTB{Img: env.Img}
	blk := &env.Img.Blocks[42]
	e, resume, ok := h.Handle(blk.Addr, 7)
	if !ok || resume != 7 {
		t.Fatal("perfect BTB must resolve instantly")
	}
	if e.Start != blk.Addr || e.Kind != blk.Term.Kind || e.NInstr != blk.NInstr {
		t.Fatalf("entry %+v does not match block", e)
	}
	if blk.Term.Kind.IsIndirect() && e.Target != 0 {
		t.Fatal("perfect BTB must not leak indirect targets")
	}
	if _, _, ok := h.Handle(env.Img.Limit+4096, 0); ok {
		t.Fatal("perfect BTB resolved an address beyond the text segment")
	}
}

func TestPerfectBTBMidBlock(t *testing.T) {
	env := testEnv(t)
	h := &PerfectBTB{Img: env.Img}
	for i := range env.Img.Blocks {
		blk := &env.Img.Blocks[i]
		if blk.NInstr < 3 {
			continue
		}
		start := blk.Addr + 2*isa.InstrBytes
		e, _, ok := h.Handle(start, 0)
		if !ok {
			t.Fatal("mid-block resolve failed")
		}
		if e.BranchPC() != blk.BranchPC() {
			t.Fatalf("mid-block entry ends at %#x, want %#x", e.BranchPC(), blk.BranchPC())
		}
		break
	}
}

func TestSchemeNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, s := range append(All(), PIF(), PerfectL1I(), PerfectCF()) {
		if seen[s.Name] {
			t.Fatalf("duplicate scheme name %q", s.Name)
		}
		seen[s.Name] = true
	}
}

func TestBoomerangThrottledNaming(t *testing.T) {
	if BoomerangThrottled(2).Name != "Boomerang" {
		t.Fatal("default throttle should use the canonical name")
	}
	if BoomerangThrottled(8).Name == "Boomerang" {
		t.Fatal("non-default throttle needs a distinct name")
	}
}

func TestStorageOrdering(t *testing.T) {
	// The paper's central cost claim: Boomerang's metadata is orders of
	// magnitude below the temporal-streaming schemes'.
	boom := Boomerang().StorageOverheadKB
	if boom <= 0 || boom > 1 {
		t.Fatalf("Boomerang storage %.3f KB out of expected range", boom)
	}
	if PIF().StorageOverheadKB < 100*boom {
		t.Fatal("PIF storage should dwarf Boomerang's")
	}
	if DIP().StorageOverheadKB < 10*boom {
		t.Fatal("DIP storage should dwarf Boomerang's")
	}
}

func TestUnknownPredictorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unknown predictor")
		}
	}()
	env := testEnv(t)
	env.Predictor = "oracle"
	Base().Build(env)
}

func TestPredictorSelection(t *testing.T) {
	for _, name := range []string{"", "tage", "bimodal", "never-taken"} {
		env := testEnv(t)
		env.Predictor = name
		inst := FDIP().Build(env)
		st := inst.Engine.Run(10_000, 2_000_000)
		if st.RetiredInstrs < 10_000 {
			t.Fatalf("predictor %q failed to run", name)
		}
	}
}

func TestBoomerangUnthrottledRuns(t *testing.T) {
	env := testEnv(t)
	inst := BoomerangUnthrottled().Build(env)
	st := inst.Engine.Run(50_000, 10_000_000)
	if st.RetiredInstrs < 50_000 {
		t.Fatal("unthrottled Boomerang failed to run")
	}
	// Unlike stalling Boomerang, BTB-miss squashes survive (the sequential
	// guess can be wrong before the prefilled entry is reused)...
	if st.BPUMissStallCycles > uint64(st.Cycles)/2 {
		t.Fatal("unthrottled variant should rarely stall the BPU")
	}
}
