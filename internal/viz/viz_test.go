package viz

import (
	"strings"
	"testing"
)

func TestBarChartScaling(t *testing.T) {
	out := BarChart("demo", []Bar{
		{"full", 2.0},
		{"half", 1.0},
		{"zero", 0},
	}, 10)
	if !strings.Contains(out, "demo") {
		t.Fatal("title missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("expected 4 lines, got %d", len(lines))
	}
	fullBars := strings.Count(lines[1], "#")
	halfBars := strings.Count(lines[2], "#")
	zeroBars := strings.Count(lines[3], "#")
	if fullBars != 10 {
		t.Fatalf("max bar should fill width: %d", fullBars)
	}
	if halfBars != 5 {
		t.Fatalf("half bar = %d, want 5", halfBars)
	}
	if zeroBars != 0 {
		t.Fatal("zero value must render no bar")
	}
}

func TestBarChartAllZero(t *testing.T) {
	out := BarChart("", []Bar{{"a", 0}, {"b", 0}}, 10)
	if strings.Contains(out, "#") {
		t.Fatal("all-zero chart must have no bars")
	}
}

func TestBarChartNegativeSafe(t *testing.T) {
	out := BarChart("", []Bar{{"neg", -1}, {"pos", 1}}, 10)
	if !strings.Contains(out, "-1.000") {
		t.Fatal("negative value must still be printed")
	}
}

func TestBarChartMinWidth(t *testing.T) {
	out := BarChart("", []Bar{{"x", 1}}, 1)
	if strings.Count(out, "#") != 8 {
		t.Fatalf("width must clamp to 8, got %d bars", strings.Count(out, "#"))
	}
}

func TestSparkline(t *testing.T) {
	s := Sparkline([]float64{0, 1, 2, 3})
	if len([]rune(s)) != 4 {
		t.Fatalf("length %d, want 4", len([]rune(s)))
	}
	runes := []rune(s)
	if runes[0] != '▁' || runes[3] != '█' {
		t.Fatalf("extremes wrong: %q", s)
	}
	if Sparkline(nil) != "" {
		t.Fatal("empty series must render empty")
	}
	flat := Sparkline([]float64{5, 5, 5})
	for _, r := range flat {
		if r != []rune(flat)[0] {
			t.Fatal("flat series must be uniform")
		}
	}
}

func TestGroupedBars(t *testing.T) {
	out := GroupedBars("T", []string{"r1", "r2"}, []string{"c1", "c2"},
		[][]float64{{1, 2}, {3, 4}}, 12)
	if !strings.Contains(out, "== T ==") ||
		!strings.Contains(out, "c1") || !strings.Contains(out, "c2") {
		t.Fatal("structure missing")
	}
	if strings.Count(out, "r1") != 2 {
		t.Fatal("each group must list every row")
	}
}
