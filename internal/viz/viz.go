// Package viz renders simple ASCII charts for terminal output: horizontal
// bar charts for scheme comparisons and line-ish sparkline series for the
// latency sweeps. It keeps cmd/experiments self-contained — figures can be
// eyeballed without exporting CSV to a plotting tool.
package viz

import (
	"fmt"
	"math"
	"strings"
)

// Bar is one labelled value.
type Bar struct {
	Label string
	Value float64
}

// BarChart renders horizontal bars scaled to width characters. Negative
// values render as empty bars with the value printed; a zero max renders
// values only.
func BarChart(title string, bars []Bar, width int) string {
	if width < 8 {
		width = 8
	}
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	labelW := 0
	maxV := 0.0
	for _, bar := range bars {
		if len(bar.Label) > labelW {
			labelW = len(bar.Label)
		}
		if bar.Value > maxV {
			maxV = bar.Value
		}
	}
	for _, bar := range bars {
		n := 0
		if maxV > 0 && bar.Value > 0 {
			n = int(math.Round(bar.Value / maxV * float64(width)))
		}
		fmt.Fprintf(&b, "%-*s |%s%s %.3f\n",
			labelW, bar.Label,
			strings.Repeat("#", n), strings.Repeat(" ", width-n), bar.Value)
	}
	return b.String()
}

// sparkLevels are the eight block characters from low to high.
var sparkLevels = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders a series as unicode block characters, normalised to the
// series' own min..max (a flat series renders mid-level).
func Sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	lo, hi := values[0], values[0]
	for _, v := range values {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	var b strings.Builder
	for _, v := range values {
		idx := len(sparkLevels) / 2
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(sparkLevels)-1))
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sparkLevels) {
			idx = len(sparkLevels) - 1
		}
		b.WriteRune(sparkLevels[idx])
	}
	return b.String()
}

// GroupedBars renders one bar chart per column of a row-major grid: rows are
// series labels, cols are group titles. Used to visualise experiment tables.
func GroupedBars(title string, rowLabels, colLabels []string, cells [][]float64, width int) string {
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "== %s ==\n", title)
	}
	for j, col := range colLabels {
		bars := make([]Bar, 0, len(rowLabels))
		for i, row := range rowLabels {
			bars = append(bars, Bar{Label: row, Value: cells[i][j]})
		}
		b.WriteString(BarChart(col, bars, width))
		if j < len(colLabels)-1 {
			b.WriteByte('\n')
		}
	}
	return b.String()
}
