package backend

import (
	"math"
	"reflect"
	"testing"

	"boomsim/internal/config"
)

func cfg() config.Core {
	c := config.Default()
	c.RetireWidth = 3
	c.BackendDepth = 12
	return c
}

func TestResolveTiming(t *testing.T) {
	b := New(cfg())
	b.Push(Group{ID: 1, NInstr: 6, FetchDone: 10})
	for now := int64(0); now < 22; now++ {
		resolved, _ := b.Tick(now)
		if len(resolved) != 0 {
			t.Fatalf("resolved early at cycle %d", now)
		}
	}
	resolved, _ := b.Tick(22)
	if len(resolved) != 1 || resolved[0] != 1 {
		t.Fatalf("expected resolution at fetchDone+depth, got %v", resolved)
	}
	// Resolution is emitted exactly once.
	resolved, _ = b.Tick(23)
	if len(resolved) != 0 {
		t.Fatal("duplicate resolution")
	}
}

func TestRetireWidthAndOrder(t *testing.T) {
	b := New(cfg())
	b.Push(Group{ID: 1, NInstr: 5, FetchDone: 0})
	b.Push(Group{ID: 2, NInstr: 4, FetchDone: 1})
	now := int64(12) // group 1 resolves at 12, group 2 at 13
	b.Tick(now)      // retires 3 of group 1
	if b.Retired() != 3 {
		t.Fatalf("retired %d, want 3", b.Retired())
	}
	now++
	_, retired := b.Tick(now) // retires 2 of g1 + 1 of g2
	if b.Retired() != 6 {
		t.Fatalf("retired %d, want 6", b.Retired())
	}
	if len(retired) != 1 || retired[0] != 1 {
		t.Fatalf("retired groups %v, want [1]", retired)
	}
	now++
	_, retired = b.Tick(now)
	if b.Retired() != 9 || len(retired) != 1 || retired[0] != 2 {
		t.Fatalf("retired=%d groups=%v", b.Retired(), retired)
	}
}

func TestInFlightTracking(t *testing.T) {
	b := New(cfg())
	b.Push(Group{ID: 1, NInstr: 10, FetchDone: 0})
	b.Push(Group{ID: 2, NInstr: 20, FetchDone: 0})
	if b.InFlightInstrs() != 30 {
		t.Fatalf("in-flight %d, want 30", b.InFlightInstrs())
	}
	for now := int64(0); b.InFlightInstrs() > 0; now++ {
		if now > 100 {
			t.Fatal("window never drained")
		}
		b.Tick(now)
	}
	if !b.Drain() {
		t.Fatal("window should be empty")
	}
}

func TestWrongPathNotRetired(t *testing.T) {
	b := New(cfg())
	b.Push(Group{ID: 1, NInstr: 3, FetchDone: 0})
	b.Push(Group{ID: 2, NInstr: 3, FetchDone: 0, WrongPath: true})
	for now := int64(0); now < 20; now++ {
		b.Tick(now)
	}
	if b.Retired() != 3 {
		t.Fatalf("wrong-path instructions retired: %d", b.Retired())
	}
	if b.RetiredGroups() != 1 {
		t.Fatalf("wrong-path group counted: %d", b.RetiredGroups())
	}
}

func TestSquashDropsYounger(t *testing.T) {
	b := New(cfg())
	b.Push(Group{ID: 1, NInstr: 3, FetchDone: 0})
	b.Push(Group{ID: 2, NInstr: 3, FetchDone: 1, WrongPath: true})
	b.Push(Group{ID: 3, NInstr: 3, FetchDone: 2, WrongPath: true})
	dropped := b.Squash(1)
	if dropped != 2 {
		t.Fatalf("dropped %d, want 2", dropped)
	}
	if b.InFlightInstrs() != 3 {
		t.Fatalf("in-flight %d after squash, want 3", b.InFlightInstrs())
	}
	for now := int64(0); now < 20; now++ {
		b.Tick(now)
	}
	if b.Retired() != 3 {
		t.Fatalf("retired %d, want 3", b.Retired())
	}
}

func TestSquashKeepsOlderAndSelf(t *testing.T) {
	b := New(cfg())
	b.Push(Group{ID: 5, NInstr: 2, FetchDone: 0})
	b.Push(Group{ID: 6, NInstr: 2, FetchDone: 0})
	if d := b.Squash(6); d != 0 {
		t.Fatalf("squash dropped older/self groups: %d", d)
	}
}

func TestFetchDoneMonotonicityEnforced(t *testing.T) {
	b := New(cfg())
	b.Push(Group{ID: 1, NInstr: 1, FetchDone: 100})
	b.Push(Group{ID: 2, NInstr: 1, FetchDone: 50}) // clamped to 100
	resolved, _ := b.Tick(112)
	if len(resolved) != 2 {
		t.Fatalf("both groups should resolve at 112, got %v", resolved)
	}
}

func TestPushPanicsOnDuplicateID(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	b := New(cfg())
	b.Push(Group{ID: 3, NInstr: 1})
	b.Push(Group{ID: 3, NInstr: 1})
}

func TestThroughputBound(t *testing.T) {
	// With everything instantly fetched, IPC caps at RetireWidth.
	b := New(cfg())
	id := uint64(0)
	now := int64(0)
	for b.Retired() < 3000 {
		for b.InFlightInstrs() < 60 {
			id++
			b.Push(Group{ID: id, NInstr: 6, FetchDone: now})
		}
		now++
		b.Tick(now)
	}
	ipc := float64(b.Retired()) / float64(now)
	if ipc > 3.01 {
		t.Fatalf("IPC %v exceeds retire width", ipc)
	}
	if ipc < 2.5 {
		t.Fatalf("IPC %v unexpectedly low for a perfect front end", ipc)
	}
}

func TestNextEventTracksOldestUnreportedResolution(t *testing.T) {
	b := New(cfg())
	if b.NextEvent() != math.MaxInt64 {
		t.Fatal("empty window must report no event")
	}
	b.Push(Group{ID: 1, NInstr: 2, FetchDone: 10})
	b.Push(Group{ID: 2, NInstr: 2, FetchDone: 15})
	if ev := b.NextEvent(); ev != 22 {
		t.Fatalf("next event = %d, want first resolveAt 22", ev)
	}
	b.Tick(22) // reports group 1's resolution
	if ev := b.NextEvent(); ev != 27 {
		t.Fatalf("next event after first resolution = %d, want 27", ev)
	}
	// Drain retirement and report group 2; every resolution is then known.
	for now := int64(23); now < 40; now++ {
		b.Tick(now)
	}
	if b.NextEvent() != math.MaxInt64 {
		t.Fatal("fully resolved window must report no event")
	}
}

// TestFastRetireMatchesPerCycleTicks is the closed-form replay's equivalence
// proof at unit scale: two identical windows, one drained by per-cycle Ticks
// and one by a single FastRetire call, must retire the same groups at the
// same cycles and land in the same final state — including a partially
// retired head when the window ends mid-group.
func TestFastRetireMatchesPerCycleTicks(t *testing.T) {
	build := func() *Backend {
		b := New(cfg())
		b.Push(Group{ID: 1, NInstr: 5, FetchDone: 0})
		b.Push(Group{ID: 2, NInstr: 1, FetchDone: 2})
		b.Push(Group{ID: 3, NInstr: 7, FetchDone: 3, WrongPath: true})
		b.Push(Group{ID: 4, NInstr: 4, FetchDone: 5})
		b.Tick(18) // resolve everything (last resolveAt = 5+12 = 17)
		return b
	}
	for _, to := range []int64{20, 21, 23, 25, 30} {
		slow, fast := build(), build()

		type ev struct {
			id uint64
			at int64
		}
		var slowEvents []ev
		for now := int64(19); now < to; now++ {
			_, retired := slow.Tick(now)
			for _, id := range retired {
				slowEvents = append(slowEvents, ev{id, now})
			}
		}
		end := fast.FastRetire(19, to, 0)
		if end != to {
			t.Fatalf("to=%d: FastRetire ended at %d without a stop target", to, end)
		}
		var fastEvents []ev
		for _, e := range fast.RetiredEvents() {
			fastEvents = append(fastEvents, ev{e.ID, e.At})
		}
		if !reflect.DeepEqual(slowEvents, fastEvents) {
			t.Fatalf("to=%d: retired events diverge: per-cycle %v, fast %v", to, slowEvents, fastEvents)
		}
		if slow.Retired() != fast.Retired() || slow.RetiredGroups() != fast.RetiredGroups() ||
			slow.InFlightInstrs() != fast.InFlightInstrs() || slow.Retiring() != fast.Retiring() {
			t.Fatalf("to=%d: final state diverges: per-cycle (%d,%d,%d,%t) vs fast (%d,%d,%d,%t)",
				to,
				slow.Retired(), slow.RetiredGroups(), slow.InFlightInstrs(), slow.Retiring(),
				fast.Retired(), fast.RetiredGroups(), fast.InFlightInstrs(), fast.Retiring())
		}
	}
}

// TestFastRetireStopAfterCompletesTheCrossingCycle pins the target-crossing
// contract Run depends on: the replay finishes the cycle that crosses
// stopAfter at full retire width — exactly as a real Tick would — and
// reports end = that cycle + 1.
func TestFastRetireStopAfterCompletesTheCrossingCycle(t *testing.T) {
	b := New(cfg()) // RetireWidth 3
	b.Push(Group{ID: 1, NInstr: 10, FetchDone: 0})
	b.Tick(12) // resolves AND retires width 3 (head is due at its own cycle)

	// Within the replay, stopAfter=4 crosses during its second cycle (3 at
	// 13, 3 more at 14); the crossing cycle still completes at full width,
	// so 6 more instructions retire (9 total) and the replay reports 15.
	end := b.FastRetire(13, 100, 4)
	if end != 15 {
		t.Fatalf("end = %d, want 15 (crossing cycle completes, then stop)", end)
	}
	if b.Retired() != 9 {
		t.Fatalf("retired = %d, want 9 (full width on the crossing cycle)", b.Retired())
	}
}
