package backend

import (
	"testing"

	"boomsim/internal/config"
)

func cfg() config.Core {
	c := config.Default()
	c.RetireWidth = 3
	c.BackendDepth = 12
	return c
}

func TestResolveTiming(t *testing.T) {
	b := New(cfg())
	b.Push(Group{ID: 1, NInstr: 6, FetchDone: 10})
	for now := int64(0); now < 22; now++ {
		resolved, _ := b.Tick(now)
		if len(resolved) != 0 {
			t.Fatalf("resolved early at cycle %d", now)
		}
	}
	resolved, _ := b.Tick(22)
	if len(resolved) != 1 || resolved[0] != 1 {
		t.Fatalf("expected resolution at fetchDone+depth, got %v", resolved)
	}
	// Resolution is emitted exactly once.
	resolved, _ = b.Tick(23)
	if len(resolved) != 0 {
		t.Fatal("duplicate resolution")
	}
}

func TestRetireWidthAndOrder(t *testing.T) {
	b := New(cfg())
	b.Push(Group{ID: 1, NInstr: 5, FetchDone: 0})
	b.Push(Group{ID: 2, NInstr: 4, FetchDone: 1})
	now := int64(12) // group 1 resolves at 12, group 2 at 13
	b.Tick(now)      // retires 3 of group 1
	if b.Retired() != 3 {
		t.Fatalf("retired %d, want 3", b.Retired())
	}
	now++
	_, retired := b.Tick(now) // retires 2 of g1 + 1 of g2
	if b.Retired() != 6 {
		t.Fatalf("retired %d, want 6", b.Retired())
	}
	if len(retired) != 1 || retired[0] != 1 {
		t.Fatalf("retired groups %v, want [1]", retired)
	}
	now++
	_, retired = b.Tick(now)
	if b.Retired() != 9 || len(retired) != 1 || retired[0] != 2 {
		t.Fatalf("retired=%d groups=%v", b.Retired(), retired)
	}
}

func TestInFlightTracking(t *testing.T) {
	b := New(cfg())
	b.Push(Group{ID: 1, NInstr: 10, FetchDone: 0})
	b.Push(Group{ID: 2, NInstr: 20, FetchDone: 0})
	if b.InFlightInstrs() != 30 {
		t.Fatalf("in-flight %d, want 30", b.InFlightInstrs())
	}
	for now := int64(0); b.InFlightInstrs() > 0; now++ {
		if now > 100 {
			t.Fatal("window never drained")
		}
		b.Tick(now)
	}
	if !b.Drain() {
		t.Fatal("window should be empty")
	}
}

func TestWrongPathNotRetired(t *testing.T) {
	b := New(cfg())
	b.Push(Group{ID: 1, NInstr: 3, FetchDone: 0})
	b.Push(Group{ID: 2, NInstr: 3, FetchDone: 0, WrongPath: true})
	for now := int64(0); now < 20; now++ {
		b.Tick(now)
	}
	if b.Retired() != 3 {
		t.Fatalf("wrong-path instructions retired: %d", b.Retired())
	}
	if b.RetiredGroups() != 1 {
		t.Fatalf("wrong-path group counted: %d", b.RetiredGroups())
	}
}

func TestSquashDropsYounger(t *testing.T) {
	b := New(cfg())
	b.Push(Group{ID: 1, NInstr: 3, FetchDone: 0})
	b.Push(Group{ID: 2, NInstr: 3, FetchDone: 1, WrongPath: true})
	b.Push(Group{ID: 3, NInstr: 3, FetchDone: 2, WrongPath: true})
	dropped := b.Squash(1)
	if dropped != 2 {
		t.Fatalf("dropped %d, want 2", dropped)
	}
	if b.InFlightInstrs() != 3 {
		t.Fatalf("in-flight %d after squash, want 3", b.InFlightInstrs())
	}
	for now := int64(0); now < 20; now++ {
		b.Tick(now)
	}
	if b.Retired() != 3 {
		t.Fatalf("retired %d, want 3", b.Retired())
	}
}

func TestSquashKeepsOlderAndSelf(t *testing.T) {
	b := New(cfg())
	b.Push(Group{ID: 5, NInstr: 2, FetchDone: 0})
	b.Push(Group{ID: 6, NInstr: 2, FetchDone: 0})
	if d := b.Squash(6); d != 0 {
		t.Fatalf("squash dropped older/self groups: %d", d)
	}
}

func TestFetchDoneMonotonicityEnforced(t *testing.T) {
	b := New(cfg())
	b.Push(Group{ID: 1, NInstr: 1, FetchDone: 100})
	b.Push(Group{ID: 2, NInstr: 1, FetchDone: 50}) // clamped to 100
	resolved, _ := b.Tick(112)
	if len(resolved) != 2 {
		t.Fatalf("both groups should resolve at 112, got %v", resolved)
	}
}

func TestPushPanicsOnDuplicateID(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	b := New(cfg())
	b.Push(Group{ID: 3, NInstr: 1})
	b.Push(Group{ID: 3, NInstr: 1})
}

func TestThroughputBound(t *testing.T) {
	// With everything instantly fetched, IPC caps at RetireWidth.
	b := New(cfg())
	id := uint64(0)
	now := int64(0)
	for b.Retired() < 3000 {
		for b.InFlightInstrs() < 60 {
			id++
			b.Push(Group{ID: id, NInstr: 6, FetchDone: now})
		}
		now++
		b.Tick(now)
	}
	ipc := float64(b.Retired()) / float64(now)
	if ipc > 3.01 {
		t.Fatalf("IPC %v exceeds retire width", ipc)
	}
	if ipc < 2.5 {
		t.Fatalf("IPC %v unexpectedly low for a perfect front end", ipc)
	}
}
