// Package backend models the core's execution window as seen by the front
// end: an in-order retire approximation of the paper's 3-way out-of-order
// core. Instruction groups (fetched basic blocks) enter when fetch completes,
// resolve their terminating branch BackendDepth cycles later (the point where
// a misprediction squashes), and retire in order at RetireWidth instructions
// per cycle. This level of detail is what front-end studies need: IPC is
// shaped by fetch stalls, squash bubbles, and refill latency, not by
// data-flow scheduling.
package backend

import "boomerang/internal/config"

// Group is one fetched basic block (or sequential pseudo-block) in flight.
type Group struct {
	// ID is the engine-assigned monotonically increasing identity.
	ID uint64
	// NInstr is the instruction count the group contributes.
	NInstr int
	// FetchDone is the cycle the last instruction was fetched.
	FetchDone int64
	// WrongPath marks groups fetched past an unresolved misprediction;
	// they occupy the window but never count as retired work.
	WrongPath bool
}

type inflight struct {
	Group
	resolveAt int64
	resolved  bool
	remaining int // unretired instructions
}

// Backend is the retire/resolve window.
type Backend struct {
	cfg    config.Core
	window []inflight // in fetch order; head retires first

	retired       uint64 // correct-path instructions retired
	retiredGroups uint64
	inflightCount int // instructions in window
}

// New builds a backend window from core parameters.
func New(cfg config.Core) *Backend {
	return &Backend{cfg: cfg}
}

// Push admits a fetched group. IDs must be strictly increasing and
// FetchDone non-decreasing (in-order fetch).
func (b *Backend) Push(g Group) {
	if n := len(b.window); n > 0 {
		last := &b.window[n-1]
		if g.ID <= last.ID {
			panic("backend: group IDs must increase")
		}
		if g.FetchDone < last.FetchDone {
			g.FetchDone = last.FetchDone
		}
	}
	b.window = append(b.window, inflight{
		Group:     g,
		resolveAt: g.FetchDone + int64(b.cfg.BackendDepth),
		remaining: g.NInstr,
	})
	b.inflightCount += g.NInstr
}

// InFlightInstrs returns the instructions currently occupying the window
// (the ROB occupancy the fetch engine throttles on).
func (b *Backend) InFlightInstrs() int { return b.inflightCount }

// Retired returns correct-path instructions retired so far.
func (b *Backend) Retired() uint64 { return b.retired }

// RetiredGroups returns correct-path groups retired so far.
func (b *Backend) RetiredGroups() uint64 { return b.retiredGroups }

// Tick advances one cycle: emits branch resolutions due at now and retires
// up to RetireWidth instructions in order. resolved lists group IDs whose
// terminator resolves this cycle (the engine trains predictors and triggers
// squashes on these); retired lists correct-path groups fully retired this
// cycle (temporal-streaming prefetchers record these).
func (b *Backend) Tick(now int64) (resolved, retired []uint64) {
	for i := range b.window {
		g := &b.window[i]
		if !g.resolved && g.resolveAt <= now {
			g.resolved = true
			resolved = append(resolved, g.ID)
		}
		if g.resolveAt > now {
			break // resolution is in fetch order; later groups can't be due
		}
	}

	budget := b.cfg.RetireWidth
	for budget > 0 && len(b.window) > 0 {
		head := &b.window[0]
		if head.resolveAt > now {
			break // head not old enough to retire
		}
		n := head.remaining
		if n > budget {
			n = budget
		}
		head.remaining -= n
		budget -= n
		b.inflightCount -= n
		if !head.WrongPath {
			b.retired += uint64(n)
		}
		if head.remaining == 0 {
			if !head.WrongPath {
				b.retiredGroups++
				retired = append(retired, head.ID)
			}
			b.window = b.window[1:]
		}
	}
	return resolved, retired
}

// Squash drops every group younger than keepID (exclusive). The squashing
// branch's own group stays: its block is on the correct path; only the
// fetch stream after it was wrong.
func (b *Backend) Squash(keepID uint64) int {
	dropped := 0
	for i := range b.window {
		if b.window[i].ID > keepID {
			for j := i; j < len(b.window); j++ {
				b.inflightCount -= b.window[j].remaining
				dropped++
			}
			b.window = b.window[:i]
			break
		}
	}
	return dropped
}

// Drain reports whether the window is empty.
func (b *Backend) Drain() bool { return len(b.window) == 0 }
