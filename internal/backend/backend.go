// Package backend models the core's execution window as seen by the front
// end: an in-order retire approximation of the paper's 3-way out-of-order
// core. Instruction groups (fetched basic blocks) enter when fetch completes,
// resolve their terminating branch BackendDepth cycles later (the point where
// a misprediction squashes), and retire in order at RetireWidth instructions
// per cycle. This level of detail is what front-end studies need: IPC is
// shaped by fetch stalls, squash bubbles, and refill latency, not by
// data-flow scheduling.
//
// The window is a preallocated ring buffer and Tick reports resolutions and
// retirements through reused scratch slices, so the per-cycle path performs
// no heap allocation at steady state (the simulator's zero-alloc contract;
// see the frontend package comment).
package backend

import (
	"math"

	"boomsim/internal/config"
)

// Group is one fetched basic block (or sequential pseudo-block) in flight.
type Group struct {
	// ID is the engine-assigned monotonically increasing identity.
	ID uint64
	// NInstr is the instruction count the group contributes.
	NInstr int
	// FetchDone is the cycle the last instruction was fetched.
	FetchDone int64
	// WrongPath marks groups fetched past an unresolved misprediction;
	// they occupy the window but never count as retired work.
	WrongPath bool
}

type inflight struct {
	Group
	resolveAt int64
	remaining int // unretired instructions
}

// Backend is the retire/resolve window.
type Backend struct {
	cfg config.Core

	// win is the window as a power-of-two ring buffer in fetch order; the
	// element at index head retires first. nResolved counts the leading
	// groups whose resolution has already been reported, so the per-cycle
	// scan resumes where it left off instead of re-walking the window.
	win       []inflight
	head      int
	n         int
	mask      int
	nResolved int

	// resolvedScratch/retiredScratch back the slices Tick returns; they are
	// reused every cycle.
	resolvedScratch []uint64
	retiredScratch  []uint64

	retired       uint64 // correct-path instructions retired
	retiredGroups uint64
	inflightCount int // instructions in window

	// fastRetired backs RetiredEvents: the groups the last FastRetire call
	// fully retired, reused every call (zero-alloc contract).
	fastRetired []RetiredEvent
}

// New builds a backend window from core parameters.
func New(cfg config.Core) *Backend {
	// The fetch engine admits a group only while occupancy is below ROBSize
	// and every group carries at least one instruction, so ROBSize+1 groups
	// bound the window; sizing the ring up front makes Push allocation-free.
	capacity := 4
	for capacity < cfg.ROBSize+2 {
		capacity *= 2
	}
	return &Backend{cfg: cfg, win: make([]inflight, capacity), mask: capacity - 1}
}

// at returns the i-th window element in fetch order (0 = oldest).
func (b *Backend) at(i int) *inflight {
	return &b.win[(b.head+i)&b.mask]
}

// Push admits a fetched group. IDs must be strictly increasing and
// FetchDone non-decreasing (in-order fetch).
func (b *Backend) Push(g Group) {
	if b.n > 0 {
		last := b.at(b.n - 1)
		if g.ID <= last.ID {
			panic("backend: group IDs must increase")
		}
		if g.FetchDone < last.FetchDone {
			g.FetchDone = last.FetchDone
		}
	}
	if b.n == len(b.win) {
		b.growWindow()
	}
	*b.at(b.n) = inflight{
		Group:     g,
		resolveAt: g.FetchDone + int64(b.cfg.BackendDepth),
		remaining: g.NInstr,
	}
	b.n++
	b.inflightCount += g.NInstr
}

// growWindow doubles the ring (only reachable when a caller bypasses the
// ROB-occupancy admission rule, e.g. a unit test pushing directly).
func (b *Backend) growWindow() {
	next := make([]inflight, 2*len(b.win))
	for i := 0; i < b.n; i++ {
		next[i] = *b.at(i)
	}
	b.win = next
	b.head = 0
	b.mask = len(next) - 1
}

// InFlightInstrs returns the instructions currently occupying the window
// (the ROB occupancy the fetch engine throttles on).
func (b *Backend) InFlightInstrs() int { return b.inflightCount }

// Retired returns correct-path instructions retired so far.
func (b *Backend) Retired() uint64 { return b.retired }

// RetiredGroups returns correct-path groups retired so far.
func (b *Backend) RetiredGroups() uint64 { return b.retiredGroups }

// Tick advances one cycle: emits branch resolutions due at now and retires
// up to RetireWidth instructions in order. resolved lists group IDs whose
// terminator resolves this cycle (the engine trains predictors and triggers
// squashes on these); retired lists correct-path groups fully retired this
// cycle (temporal-streaming prefetchers record these). Both slices are
// backed by scratch storage owned by the Backend and are only valid until
// the next Tick call.
func (b *Backend) Tick(now int64) (resolved, retired []uint64) {
	// Idle fast path: nothing in flight, or the oldest unresolved group is
	// still in the future with no resolved prefix to retire. This is the
	// common case on stalled cycles the engine cannot skip outright.
	if b.n == 0 || (b.nResolved == 0 && b.at(0).resolveAt > now) {
		return nil, nil
	}
	resolved = b.resolvedScratch[:0]
	retired = b.retiredScratch[:0]

	// Resolution is in fetch order, so only groups past the already-reported
	// prefix can become due.
	for b.nResolved < b.n {
		g := b.at(b.nResolved)
		if g.resolveAt > now {
			break
		}
		resolved = append(resolved, g.ID)
		b.nResolved++
	}

	budget := b.cfg.RetireWidth
	for budget > 0 && b.n > 0 {
		head := b.at(0)
		if head.resolveAt > now {
			break // head not old enough to retire
		}
		n := head.remaining
		if n > budget {
			n = budget
		}
		head.remaining -= n
		budget -= n
		b.inflightCount -= n
		if !head.WrongPath {
			b.retired += uint64(n)
		}
		if head.remaining == 0 {
			if !head.WrongPath {
				b.retiredGroups++
				retired = append(retired, head.ID)
			}
			b.head = (b.head + 1) & b.mask
			b.n--
			if b.nResolved > 0 {
				b.nResolved--
			}
		}
	}
	b.resolvedScratch = resolved
	b.retiredScratch = retired
	return resolved, retired
}

// NextEvent returns the earliest cycle at which Tick will report a branch
// resolution — the resolveAt of the oldest unreported group — or
// math.MaxInt64 when every group in the window has already resolved (or the
// window is empty). Push keeps FetchDone — and therefore resolveAt —
// non-decreasing in fetch order, so this single value bounds every future
// resolution AND the start of retirement for a so-far-unresolved head: no
// training, squash, or new retirement eligibility can appear before it. It
// deliberately excludes retirement already in progress; Retiring reports
// that, and FastRetire replays it in closed form for the engine's
// event-horizon cycle skip.
func (b *Backend) NextEvent() int64 {
	if b.nResolved == b.n {
		return math.MaxInt64
	}
	return b.at(b.nResolved).resolveAt
}

// Retiring reports whether retirement is in progress: the head group has
// resolved but not fully retired, so every Tick until the window's resolved
// prefix drains will retire instructions.
func (b *Backend) Retiring() bool { return b.n > 0 && b.nResolved > 0 }

// RetiredEvent records one correct-path group fully retired by FastRetire
// and the cycle Tick would have reported it.
type RetiredEvent struct {
	ID uint64
	At int64
}

// FastRetire replays, in one call, exactly the retirement work per-cycle
// Ticks would do over cycles [now, to) under the caller's guarantee that no
// resolution falls in that window (NextEvent() >= to): it drains the
// resolved prefix at RetireWidth instructions per cycle, recording each
// fully-retired correct-path group and its retirement cycle for
// RetiredEvents. When stopAfter > 0 and cumulative correct-path retirements
// within this call reach it at cycle c, the replay completes cycle c (a
// real Tick retires its full width regardless of any caller's target) and
// stops; the returned end cycle is then c+1, otherwise to. State afterwards
// is bit-for-bit what per-cycle Ticks would leave at the start of cycle
// `end` — including a partially retired head when the window closes
// mid-group.
func (b *Backend) FastRetire(now, to int64, stopAfter uint64) (end int64) {
	b.fastRetired = b.fastRetired[:0]
	w := b.cfg.RetireWidth
	c := now
	budget := w
	newCP := uint64(0)
	limit := to
	for b.nResolved > 0 && c < limit {
		head := b.at(0)
		n := head.remaining
		if n > budget {
			n = budget
		}
		head.remaining -= n
		budget -= n
		b.inflightCount -= n
		if !head.WrongPath {
			b.retired += uint64(n)
			newCP += uint64(n)
			if stopAfter > 0 && newCP >= stopAfter && c+1 < limit {
				limit = c + 1
			}
		}
		if head.remaining == 0 {
			if !head.WrongPath {
				b.retiredGroups++
				b.fastRetired = append(b.fastRetired, RetiredEvent{ID: head.ID, At: c})
			}
			b.head = (b.head + 1) & b.mask
			b.n--
			b.nResolved--
		}
		if budget == 0 {
			c++
			budget = w
		}
	}
	return limit
}

// RetiredEvents returns the correct-path groups fully retired by the last
// FastRetire call, in retirement order, each with the cycle a per-cycle
// Tick would have reported it. The slice is scratch storage owned by the
// Backend, valid until the next FastRetire call.
func (b *Backend) RetiredEvents() []RetiredEvent { return b.fastRetired }

// Squash drops every group younger than keepID (exclusive). The squashing
// branch's own group stays: its block is on the correct path; only the
// fetch stream after it was wrong.
func (b *Backend) Squash(keepID uint64) int {
	dropped := 0
	for i := 0; i < b.n; i++ {
		if b.at(i).ID > keepID {
			for j := i; j < b.n; j++ {
				b.inflightCount -= b.at(j).remaining
				dropped++
			}
			b.n = i
			if b.nResolved > b.n {
				b.nResolved = b.n
			}
			break
		}
	}
	return dropped
}

// Drain reports whether the window is empty.
func (b *Backend) Drain() bool { return b.n == 0 }
