package backend

// Clone returns an independent deep copy of the window: same in-flight
// groups, retire counters and ring geometry, no shared storage. The scratch
// slices Tick reuses are transient (valid only until the next Tick), so the
// clone gets fresh ones at the original capacity and stays allocation-free
// at steady state.
func (b *Backend) Clone() *Backend {
	c := *b
	c.win = append(make([]inflight, 0, cap(b.win)), b.win...)
	c.resolvedScratch = make([]uint64, 0, cap(b.resolvedScratch))
	c.retiredScratch = make([]uint64, 0, cap(b.retiredScratch))
	return &c
}
