package core

import (
	"testing"

	"boomsim/internal/btb"
	"boomsim/internal/cache"
	"boomsim/internal/config"
	"boomsim/internal/isa"
	"boomsim/internal/program"
)

func testSetup(t testing.TB) (*program.Image, *cache.Hierarchy, *Boomerang) {
	t.Helper()
	g := program.DefaultGenParams()
	g.FootprintKB = 128
	g.Layers = 4
	img, err := program.Generate(g)
	if err != nil {
		t.Fatal(err)
	}
	hier := cache.NewHierarchy(config.Default(), 0)
	bm := New(DefaultConfig(), hier, btb.NewPredecoder(img))
	return img, hier, bm
}

func TestHandleResolvesRealBlocks(t *testing.T) {
	img, _, bm := testSetup(t)
	for i := 0; i < len(img.Blocks); i += 97 {
		blk := &img.Blocks[i]
		e, resumeAt, ok := bm.Handle(blk.Addr, 1000)
		if !ok {
			t.Fatalf("Handle failed for block %#x", blk.Addr)
		}
		if e.Start != blk.Addr || e.NInstr != blk.NInstr || e.Kind != blk.Term.Kind {
			t.Fatalf("resolved entry %+v does not match block", e)
		}
		if resumeAt < 1000 {
			t.Fatal("resumeAt in the past")
		}
	}
}

func TestHandleChargesL1MissLatency(t *testing.T) {
	img, hier, bm := testSetup(t)
	blk := &img.Blocks[100]
	// Cold hierarchy: the probe must go to memory.
	_, resumeAt, ok := bm.Handle(blk.Addr, 0)
	if !ok {
		t.Fatal("handle failed")
	}
	cfg := config.Default()
	minLatency := int64(cfg.LLCLatency) // at least an LLC trip
	if resumeAt < minLatency {
		t.Fatalf("resumeAt %d too fast for a cold miss", resumeAt)
	}
	// Warm path: the same line is now present; resolution is near-instant.
	hier.Tick(resumeAt)
	_, resumeAt2, _ := bm.Handle(blk.Addr, resumeAt)
	if resumeAt2-resumeAt > int64(cfg.L1ILatency)*4+DefaultConfig().PredecodeLatency*4 {
		t.Fatalf("warm probe took %d cycles", resumeAt2-resumeAt)
	}
	st := bm.Stats()
	if st.Probes != 2 || st.ProbeL1Hits != 1 {
		t.Fatalf("probe stats %+v", st)
	}
}

func TestPrefetchBufferShortCircuit(t *testing.T) {
	img, _, bm := testSetup(t)
	// Find a line with at least two branches so resolving one block buffers
	// another.
	for i := 0; i < len(img.Blocks)-1; i++ {
		a, b := &img.Blocks[i], &img.Blocks[i+1]
		if isa.BlockAddr(a.BranchPC()) != isa.BlockAddr(b.BranchPC()) {
			continue
		}
		_, _, ok := bm.Handle(a.Addr, 0)
		if !ok {
			t.Fatal("first handle failed")
		}
		if bm.PrefetchBuffer().Len() == 0 {
			t.Fatal("no extras buffered despite a second branch in the line")
		}
		e, resumeAt, ok := bm.Handle(b.Addr, 500)
		if !ok || resumeAt != 500 {
			t.Fatalf("prefetch-buffer hit should resolve instantly: ok=%v resume=%d", ok, resumeAt)
		}
		if e.Start != b.Addr {
			t.Fatal("wrong buffered entry")
		}
		if bm.Stats().PrefetchBufferHits != 1 {
			t.Fatal("prefetch buffer hit not counted")
		}
		return
	}
	t.Skip("no line with two branches found")
}

func TestThrottlePrefetchOnColdMiss(t *testing.T) {
	img, hier, bm := testSetup(t)
	blk := &img.Blocks[50]
	_, resumeAt, _ := bm.Handle(blk.Addr, 0)
	if bm.Stats().ThrottlePrefetches == 0 {
		t.Fatal("cold BTB miss should trigger throttled next-N prefetch")
	}
	// The next-2 lines after the scanned region must be arriving.
	hier.Tick(resumeAt + 200)
	line := cache.LineOf(blk.Addr)
	found := 0
	for i := uint64(1); i <= 4; i++ {
		if hier.Present(line+i, resumeAt+200) {
			found++
		}
	}
	if found < 2 {
		t.Fatalf("throttled prefetch lines not present (found %d)", found)
	}
}

func TestNoThrottleOnL1Hit(t *testing.T) {
	img, hier, bm := testSetup(t)
	blk := &img.Blocks[60]
	// Warm the line first.
	_, r, _ := bm.Handle(blk.Addr, 0)
	hier.Tick(r)
	before := bm.Stats().ThrottlePrefetches
	bm.Handle(blk.Addr, r)
	if bm.Stats().ThrottlePrefetches != before {
		t.Fatal("throttle prefetch fired despite L1 hit")
	}
}

func TestThrottleDisabled(t *testing.T) {
	g := program.DefaultGenParams()
	g.FootprintKB = 64
	g.Layers = 3
	img := program.MustGenerate(g)
	hier := cache.NewHierarchy(config.Default(), 0)
	cfg := DefaultConfig()
	cfg.ThrottleN = 0
	bm := New(cfg, hier, btb.NewPredecoder(img))
	bm.Handle(img.Blocks[10].Addr, 0)
	if bm.Stats().ThrottlePrefetches != 0 {
		t.Fatal("throttle disabled but prefetches issued")
	}
}

func TestHandleUnresolvable(t *testing.T) {
	img, _, bm := testSetup(t)
	_, _, ok := bm.Handle(img.Limit+64*1024, 0)
	if ok {
		t.Fatal("resolved a miss beyond the text segment")
	}
	if bm.Stats().Unresolvable != 1 {
		t.Fatal("unresolvable probe not counted")
	}
}

func TestMultiLineScanCharged(t *testing.T) {
	img, _, bm := testSetup(t)
	// Find a block whose terminator is in a later line than its start.
	for i := range img.Blocks {
		blk := &img.Blocks[i]
		span := isa.BlockIndex(blk.BranchPC()) - isa.BlockIndex(blk.Addr)
		if span < 1 {
			continue
		}
		before := bm.Stats().LinesScanned
		_, _, ok := bm.Handle(blk.Addr, 0)
		if !ok {
			t.Fatal("handle failed")
		}
		scanned := bm.Stats().LinesScanned - before
		if scanned != span+1 {
			t.Fatalf("scanned %d lines, want %d", scanned, span+1)
		}
		return
	}
	t.Skip("no multi-line block in image")
}

func TestStorageBytesMatchesPaper(t *testing.T) {
	// Section VI-D: 204B FTQ + 336B BTB prefetch buffer = 540B total.
	if got := StorageBytes(32, 32); got != 540 {
		t.Fatalf("storage = %d bytes, paper says 540", got)
	}
}

func BenchmarkHandle(b *testing.B) {
	img, hier, bm := testSetup(b)
	_ = hier
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blk := &img.Blocks[i%len(img.Blocks)]
		bm.Handle(blk.Addr, int64(i))
	}
}

func TestUnthrottledPrefillsWithoutStall(t *testing.T) {
	img, _, _ := testSetup(t)
	hier := cache.NewHierarchy(config.Default(), 0)
	cfg := DefaultConfig()
	cfg.Unthrottled = true
	bm := New(cfg, hier, btb.NewPredecoder(img))
	l1 := btb.New(2048, 4)
	bm.SetBTB(l1)
	blk := &img.Blocks[30]
	_, _, ok := bm.Handle(blk.Addr, 0)
	if ok {
		t.Fatal("unthrottled handler must tell the engine to continue sequentially")
	}
	if !l1.Contains(blk.Addr) {
		t.Fatal("unthrottled handler must still prefill the BTB")
	}
}

func TestUnthrottledWithoutBTBFallsBackToStall(t *testing.T) {
	img, _, _ := testSetup(t)
	hier := cache.NewHierarchy(config.Default(), 0)
	cfg := DefaultConfig()
	cfg.Unthrottled = true
	bm := New(cfg, hier, btb.NewPredecoder(img)) // no SetBTB
	blk := &img.Blocks[30]
	if _, _, ok := bm.Handle(blk.Addr, 0); !ok {
		t.Fatal("without an attached BTB the handler must behave as stalling Boomerang")
	}
}
