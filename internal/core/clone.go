package core

import (
	"boomsim/internal/btb"
	"boomsim/internal/cache"
)

// Clone returns an independent deep copy of the Boomerang unit wired to the
// given cloned hierarchy and L1 BTB (the caller owns those components and
// their copies). The predecoder, prefetch buffer and counters are deep
// copies; the per-Handle scratch buffers are transient and regrow.
func (b *Boomerang) Clone(hier *cache.Hierarchy, l1btb *btb.BTB) *Boomerang {
	c := *b
	c.hier = hier
	c.dec = b.dec.Clone()
	c.pbuf = b.pbuf.Clone()
	c.l1btb = l1btb
	c.extrasScratch = nil
	c.linesScratch = nil
	return &c
}
