// Package core implements Boomerang, the paper's contribution: a
// metadata-free control flow delivery architecture. Boomerang augments a
// branch-predictor-directed prefetcher (FDIP) so that the same in-core
// structures that prefetch instruction cache blocks also discover and prefill
// missing BTB entries:
//
//  1. A basic-block-oriented BTB makes misses detectable (package btb).
//  2. On a BTB miss the branch prediction unit stops feeding the FTQ and a
//     BTB miss probe is sent to the L1-I, with priority over ordinary
//     prefetch probes.
//  3. The returned cache block is predecoded; the first branch at or after
//     the missing entry's start address terminates the missing basic block.
//     If the block holds no such branch, the next sequential block is probed
//     (step 2) until the terminator is found.
//  4. Remaining predecoded branches fill a small FIFO BTB prefetch buffer
//     that is probed in parallel with the BTB; hits move into the BTB.
//  5. If the miss could not be filled from the L1-I, the next-N sequential
//     blocks are prefetched ("throttled prefetch", N=2 in the evaluated
//     design) so a not-taken resolution loses no prefetch opportunity.
//
// The hardware cost is the FTQ (204 bytes) plus the BTB prefetch buffer
// (336 bytes): 540 bytes total, against the 200KB+ of metadata that
// temporal-streaming prefetchers and two-level BTBs require.
package core

import (
	"boomsim/internal/btb"
	"boomsim/internal/cache"
	"boomsim/internal/isa"
	"boomsim/internal/stats"
)

// Config tunes the Boomerang miss handler. It is declarative data — the
// scheme configuration plane serializes it into JSON scheme files and wire
// requests, so the field tags are part of the scheme vocabulary.
type Config struct {
	// ThrottleN is how many sequential blocks to prefetch on a BTB miss
	// that was not filled from the L1-I (Section IV-C1; next-2 is the
	// evaluated design, Figure 10 sweeps 0/1/2/4/8).
	ThrottleN int `json:"throttle_n"`
	// PredecodeLatency is the per-line predecode cost in cycles.
	PredecodeLatency int64 `json:"predecode_latency"`
	// MaxScanLines bounds the sequential scan for the terminating branch.
	MaxScanLines int `json:"max_scan_lines"`
	// PrefetchBufferEntries sizes the FIFO BTB prefetch buffer (32).
	PrefetchBufferEntries int `json:"prefetch_buffer_entries"`
	// Unthrottled selects Section IV-C1's alternative design point: instead
	// of stalling the BPU while a miss resolves, speculatively assume
	// not-taken and keep feeding the FTQ sequentially; the predecoded entry
	// still fills the BTB for future lookups. (The evaluated Boomerang
	// stalls; unthrottled over-prefetches on the wrong path when the hidden
	// branch is taken.)
	Unthrottled bool `json:"unthrottled,omitempty"`
}

// DefaultConfig returns the evaluated design point.
func DefaultConfig() Config {
	return Config{
		ThrottleN:             2,
		PredecodeLatency:      1,
		MaxScanLines:          8,
		PrefetchBufferEntries: 32,
	}
}

// Stats counts Boomerang-specific activity.
type Stats struct {
	// Probes counts BTB miss probes issued to the L1-I.
	Probes uint64
	// ProbeL1Hits counts probes satisfied by the L1-I (no stall beyond
	// predecode).
	ProbeL1Hits uint64
	// LinesScanned counts cache lines fetched+predecoded during misses.
	LinesScanned uint64
	// PrefetchBufferHits counts BTB misses satisfied by the prefetch
	// buffer (no probe needed at all).
	PrefetchBufferHits uint64
	// ThrottlePrefetches counts next-N lines prefetched under misses.
	ThrottlePrefetches uint64
	// Unresolvable counts probes that found no branch within MaxScanLines.
	Unresolvable uint64
}

// Boomerang is the BTB miss handler. It implements the front-end engine's
// MissHandler interface.
type Boomerang struct {
	cfg  Config
	hier *cache.Hierarchy
	dec  *btb.Predecoder
	pbuf *btb.PrefetchBuffer
	// l1btb is set only for the unthrottled variant, which prefills the
	// BTB asynchronously instead of stalling the BPU on the result.
	l1btb *btb.BTB

	// extrasScratch/linesScratch are reused across Handle calls so miss
	// resolution allocates nothing at steady state; their contents are only
	// valid within one Handle invocation.
	extrasScratch []btb.Entry
	linesScratch  []isa.Addr

	stats Stats
}

// New builds a Boomerang unit over the core's L1-I hierarchy and predecoder.
func New(cfg Config, hier *cache.Hierarchy, dec *btb.Predecoder) *Boomerang {
	return &Boomerang{
		cfg:  cfg,
		hier: hier,
		dec:  dec,
		pbuf: btb.NewPrefetchBuffer(cfg.PrefetchBufferEntries),
	}
}

// SetBTB attaches the core's first-level BTB; required by the unthrottled
// variant so miss resolutions can prefill it without stalling the BPU.
func (b *Boomerang) SetBTB(l1 *btb.BTB) { b.l1btb = l1 }

// Stats returns a snapshot of Boomerang activity counters.
func (b *Boomerang) Stats() Stats { return b.stats }

// PublishStats registers the unit's counters under its namespace of the
// per-component statistics registry.
func (b *Boomerang) PublishStats(r *stats.Registry) {
	r.SetUint("probes", b.stats.Probes)
	r.SetUint("probe_l1_hits", b.stats.ProbeL1Hits)
	r.SetUint("lines_scanned", b.stats.LinesScanned)
	r.SetUint("prefetch_buffer_hits", b.stats.PrefetchBufferHits)
	r.SetUint("throttle_prefetches", b.stats.ThrottlePrefetches)
	r.SetUint("unresolvable", b.stats.Unresolvable)
}

// PrefetchBuffer exposes the BTB prefetch buffer (tests, storage accounting).
func (b *Boomerang) PrefetchBuffer() *btb.PrefetchBuffer { return b.pbuf }

// Handle implements the frontend MissHandler contract: resolve the BTB miss
// at pc, returning the new entry and the cycle the BPU may resume.
func (b *Boomerang) Handle(pc isa.Addr, now int64) (btb.Entry, int64, bool) {
	// The BTB prefetch buffer is probed in parallel with the BTB, so a hit
	// here resolves the miss instantly; the engine moves the entry into the
	// BTB.
	if e, hit := b.pbuf.Take(pc); hit {
		b.stats.PrefetchBufferHits++
		return e, now, true
	}

	b.stats.Probes++
	missing, extras, lines := b.dec.AppendResolveMiss(pc, b.cfg.MaxScanLines,
		b.extrasScratch[:0], b.linesScratch[:0])
	b.extrasScratch, b.linesScratch = extras, lines

	// Timing: chase the needed line(s) through the L1-I. BTB miss probes
	// have priority over prefetch probes at the L1-I request mux
	// (Section IV-C2), which Fetch models by bypassing the probe queue and
	// the MSHR occupancy cap.
	firstInL1 := b.hier.Present(cache.LineOf(lines[0]), now)
	if firstInL1 {
		b.stats.ProbeL1Hits++
	}
	t := now
	for _, ln := range lines {
		t = b.hier.Fetch(cache.LineOf(ln), t)
		t += b.cfg.PredecodeLatency
	}
	b.stats.LinesScanned += uint64(len(lines))

	if !missing.Kind.IsBranch() {
		// No terminator within the scan bound (wild wrong-path address):
		// fall back to sequential fetch.
		b.stats.Unresolvable++
		return btb.Entry{}, now, false
	}

	// Store the non-terminating predecoded branches for future misses.
	for _, x := range extras {
		b.pbuf.Insert(x)
	}

	// Throttled prefetch: when the miss was not filled from the L1-I,
	// prefetch the next N sequential blocks so a not-taken outcome keeps
	// the sequential stream warm (Section IV-C1).
	if !firstInL1 && b.cfg.ThrottleN > 0 {
		lastLine := cache.LineOf(lines[len(lines)-1])
		for i := 1; i <= b.cfg.ThrottleN; i++ {
			if b.hier.Prefetch(lastLine+uint64(i), now) {
				b.stats.ThrottlePrefetches++
			}
		}
	}

	if b.cfg.Unthrottled && b.l1btb != nil {
		// Unthrottled design point: prefill the BTB for future lookups but
		// tell the engine to continue sequentially now (no BPU stall). The
		// front end keeps fetching the fall-through path until the branch
		// resolves or a later lookup hits the prefilled entry.
		b.l1btb.Insert(missing, now)
		return btb.Entry{}, now, false
	}

	return missing, t, true
}

// StorageBytes reports Boomerang's total additional storage beyond the
// baseline front end, per the paper's Section VI-D accounting: a 32-entry
// FTQ (46-bit start + 5-bit size = 51 bits/entry = 204 bytes) and the
// 32-entry BTB prefetch buffer (46-bit tag + 30-bit target + 3-bit type +
// 5-bit size = 84 bits/entry = 336 bytes).
func StorageBytes(ftqEntries, pbufEntries int) int {
	ftqBits := ftqEntries * (46 + 5)
	pbufBits := pbufEntries * (46 + 30 + 3 + 5)
	return (ftqBits + pbufBits) / 8
}
