package energy

import (
	"testing"

	"boomsim/internal/cache"
	"boomsim/internal/frontend"
)

func TestEstimateArithmetic(t *testing.T) {
	m := Model{L1IAccess: 10, LLCAccess: 100, MemAccess: 1000,
		BTBLookup: 1, DirLookup: 2, PredecodeLine: 5, MetadataByte: 0.5}
	ev := Events{
		L1IAccesses: 1000, LLCAccesses: 10, MemAccesses: 1,
		BTBLookups: 100, DirLookups: 100, PredecodedLns: 20, MetadataBytes: 200,
	}
	b := m.Estimate(ev)
	if b.L1I != 10 || b.LLC != 1 || b.Mem != 1 {
		t.Fatalf("memory components wrong: %+v", b)
	}
	if b.BTB != 0.1 || b.Dir != 0.2 || b.Predecode != 0.1 || b.Metadata != 0.1 {
		t.Fatalf("core components wrong: %+v", b)
	}
	want := 10 + 1 + 1 + 0.1 + 0.2 + 0.1 + 0.1
	if diff := b.Total() - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("total %v, want %v", b.Total(), want)
	}
}

func TestFromStats(t *testing.T) {
	st := frontend.Stats{BTBLookups: 500, RetiredInstrs: 10_000}
	h := cache.HierarchyStats{
		DemandAccesses: 2000, Prefetches: 300, LLCAccesses: 100, LLCMisses: 7,
	}
	ev := FromStats(st, h, 42, 1234)
	if ev.L1IAccesses != 2300 {
		t.Fatalf("L1I accesses %d", ev.L1IAccesses)
	}
	if ev.LLCAccesses != 100 || ev.MemAccesses != 7 {
		t.Fatal("LLC/mem wrong")
	}
	if ev.BTBLookups != 500 || ev.DirLookups != 500 {
		t.Fatal("lookup counts wrong")
	}
	if ev.PredecodedLns != 42 || ev.MetadataBytes != 1234 {
		t.Fatal("extras wrong")
	}
}

func TestPerKI(t *testing.T) {
	b := Breakdown{L1I: 100}
	if got := PerKI(b, 10_000); got != 10 {
		t.Fatalf("PerKI = %v, want 10", got)
	}
	if PerKI(b, 0) != 0 {
		t.Fatal("zero instructions must not divide")
	}
}

func TestDefaultOrdering(t *testing.T) {
	m := Default()
	if !(m.L1IAccess < m.LLCAccess && m.LLCAccess < m.MemAccess) {
		t.Fatal("memory hierarchy energies must increase with distance")
	}
	if b := (Breakdown{L1I: 1}); b.String() == "" {
		t.Fatal("empty string")
	}
}
