// Package energy provides an event-based energy proxy for the front end,
// backing the paper's Section VI-D argument: Boomerang adds no
// storage-intensive structures and causes no metadata movement, so its
// energy overhead is bounded by its (demand-shaped) prefetch traffic, while
// temporal-streaming prefetchers move hundreds of kilobytes of history
// through the LLC.
//
// The per-event costs are order-of-magnitude CACTI-class estimates for a
// 22nm server core; the point of the model is the *relative* comparison
// between schemes driven by the simulator's exact event counts, not
// absolute joules.
package energy

import (
	"fmt"

	"boomsim/internal/cache"
	"boomsim/internal/frontend"
)

// Model holds per-event energies in picojoules.
type Model struct {
	// L1IAccess is one L1-I read (demand or probe fill).
	L1IAccess float64
	// LLCAccess is one LLC bank access including NOC traversal.
	LLCAccess float64
	// MemAccess is one memory access beyond the LLC.
	MemAccess float64
	// BTBLookup is one basic-block BTB lookup.
	BTBLookup float64
	// DirLookup is one direction-predictor (TAGE) lookup.
	DirLookup float64
	// PredecodeLine is predecoding one 64B line.
	PredecodeLine float64
	// MetadataByte is moving one byte of prefetcher metadata (temporal
	// history reads/writes through the LLC).
	MetadataByte float64
}

// Default returns the reference model (pJ).
func Default() Model {
	return Model{
		L1IAccess:     15,
		LLCAccess:     250,
		MemAccess:     2500,
		BTBLookup:     8,
		DirLookup:     10,
		PredecodeLine: 12,
		MetadataByte:  2.5,
	}
}

// Events collects the activity counts the model prices. Fill it from the
// simulator's statistics.
type Events struct {
	L1IAccesses   uint64
	LLCAccesses   uint64
	MemAccesses   uint64
	BTBLookups    uint64
	DirLookups    uint64
	PredecodedLns uint64
	MetadataBytes uint64
	RetiredInstrs uint64
}

// FromStats assembles Events from engine and hierarchy statistics.
// predecoded is the scheme's predecoder line count (0 for schemes without
// one) and metadataBytes the prefetcher metadata volume moved (temporal
// streamers: ~5 bytes per replayed record).
func FromStats(st frontend.Stats, h cache.HierarchyStats, predecoded, metadataBytes uint64) Events {
	return Events{
		L1IAccesses:   h.DemandAccesses + h.Prefetches,
		LLCAccesses:   h.LLCAccesses,
		MemAccesses:   h.LLCMisses,
		BTBLookups:    st.BTBLookups,
		DirLookups:    st.BTBLookups, // one direction lookup per BB prediction
		PredecodedLns: predecoded,
		MetadataBytes: metadataBytes,
		RetiredInstrs: st.RetiredInstrs,
	}
}

// Breakdown is the priced result in nanojoules.
type Breakdown struct {
	L1I, LLC, Mem, BTB, Dir, Predecode, Metadata float64
}

// Total sums all components (nJ).
func (b Breakdown) Total() float64 {
	return b.L1I + b.LLC + b.Mem + b.BTB + b.Dir + b.Predecode + b.Metadata
}

// String renders the breakdown.
func (b Breakdown) String() string {
	return fmt.Sprintf("total=%.1fnJ (L1I=%.1f LLC=%.1f mem=%.1f btb=%.1f dir=%.1f predec=%.1f meta=%.1f)",
		b.Total(), b.L1I, b.LLC, b.Mem, b.BTB, b.Dir, b.Predecode, b.Metadata)
}

// Estimate prices the events (result in nJ).
func (m Model) Estimate(ev Events) Breakdown {
	const pJtoNJ = 1e-3
	return Breakdown{
		L1I:       float64(ev.L1IAccesses) * m.L1IAccess * pJtoNJ,
		LLC:       float64(ev.LLCAccesses) * m.LLCAccess * pJtoNJ,
		Mem:       float64(ev.MemAccesses) * m.MemAccess * pJtoNJ,
		BTB:       float64(ev.BTBLookups) * m.BTBLookup * pJtoNJ,
		Dir:       float64(ev.DirLookups) * m.DirLookup * pJtoNJ,
		Predecode: float64(ev.PredecodedLns) * m.PredecodeLine * pJtoNJ,
		Metadata:  float64(ev.MetadataBytes) * m.MetadataByte * pJtoNJ,
	}
}

// PerKI normalises a breakdown total to nJ per kilo-instruction.
func PerKI(b Breakdown, retired uint64) float64 {
	if retired == 0 {
		return 0
	}
	return b.Total() * 1000 / float64(retired)
}
