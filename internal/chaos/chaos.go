// Package chaos is the repo's fault-injection harness: seeded, deterministic
// wrappers around the cluster's HTTP transport and the result store's
// filesystem, used by tests to prove that sweeps survive worker kills,
// 5xx storms, timeouts, slow responses, partial writes and torn journal
// records with results byte-identical to an unfaulted run.
//
// This package is test-only. A CI grep (and the chaos-e2e job) keeps it out
// of every production import path: nothing under cmd/, examples/ or a
// non-test file may import it.
//
// Determinism contract: every injected fault is drawn from a single
// rand.PCG seeded by the caller, consumed in call order. Faults are
// therefore reproducible for a fixed seed and call sequence — rerunning a
// failing test with its logged seed replays the exact fault schedule.
package chaos

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"strings"
	"sync"
	"time"
)

// Plan is one transport's fault mix. Probabilities are in [0,1] and are
// evaluated in field order per request; at most one fault fires per attempt.
type Plan struct {
	// PKill drops the request with a transport error — indistinguishable
	// from a worker dying mid-connection.
	PKill float64
	// P503 synthesizes a 503 with a Retry-After: 0 header, the shape a
	// draining boomsimd answers with.
	P503 float64
	// P500 synthesizes a 500 — a worker bug or an OOM-killed handler.
	P500 float64
	// PSlow delays the request by SlowDelay before forwarding it: a
	// straggler, not a failure.
	PSlow     float64
	SlowDelay time.Duration
	// MaxFaults, when >0, bounds total injected faults so a fault-heavy plan
	// cannot starve a bounded-retry sweep forever.
	MaxFaults int
}

// Transport wraps an http.RoundTripper with seeded fault injection.
// Matched health probes pass through unfaulted (Spare), so liveness checks
// observe the real worker while job traffic suffers.
type Transport struct {
	base  http.RoundTripper
	plan  Plan
	spare func(*http.Request) bool

	mu       sync.Mutex
	rng      *rand.Rand
	injected int

	kills  int
	f503s  int
	f500s  int
	slows  int
	passed int
}

// NewTransport builds a faulty transport over base (nil = the default
// transport) with the given seed and plan.
func NewTransport(base http.RoundTripper, seed uint64, plan Plan) *Transport {
	if base == nil {
		base = http.DefaultTransport
	}
	return &Transport{
		base: base,
		plan: plan,
		rng:  rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15)),
		// Health probes stay clean by default: chaos tests target the job
		// path, and a probe-killed worker never enters the pool at all.
		spare: func(r *http.Request) bool { return strings.HasSuffix(r.URL.Path, "/healthz") },
	}
}

// errInjected marks a chaos-injected transport failure.
var errInjected = errors.New("chaos: injected transport failure")

// IsInjected reports whether err originated from a chaos Transport.
func IsInjected(err error) bool { return errors.Is(err, errInjected) }

// RoundTrip implements http.RoundTripper with the plan's fault mix.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	if t.spare != nil && t.spare(req) {
		return t.base.RoundTrip(req)
	}
	t.mu.Lock()
	budget := t.plan.MaxFaults <= 0 || t.injected < t.plan.MaxFaults
	var fault string
	if budget {
		switch u := t.rng.Float64(); {
		case u < t.plan.PKill:
			fault = "kill"
		case u < t.plan.PKill+t.plan.P503:
			fault = "503"
		case u < t.plan.PKill+t.plan.P503+t.plan.P500:
			fault = "500"
		case u < t.plan.PKill+t.plan.P503+t.plan.P500+t.plan.PSlow:
			fault = "slow"
		}
	}
	if fault != "" {
		t.injected++
	}
	switch fault {
	case "kill":
		t.kills++
	case "503":
		t.f503s++
	case "500":
		t.f500s++
	case "slow":
		t.slows++
	default:
		t.passed++
	}
	t.mu.Unlock()

	switch fault {
	case "kill":
		// Drain and drop: the worker never sees the request complete.
		if req.Body != nil {
			io.Copy(io.Discard, req.Body)
			req.Body.Close()
		}
		return nil, fmt.Errorf("%w: connection reset to %s", errInjected, req.URL.Host)
	case "503":
		return synthetic(req, http.StatusServiceUnavailable, "chaos: worker draining", http.Header{"Retry-After": []string{"0"}}), nil
	case "500":
		return synthetic(req, http.StatusInternalServerError, "chaos: worker fault", nil), nil
	case "slow":
		select {
		case <-time.After(t.plan.SlowDelay):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
	}
	return t.base.RoundTrip(req)
}

func synthetic(req *http.Request, status int, body string, hdr http.Header) *http.Response {
	if req.Body != nil {
		io.Copy(io.Discard, req.Body)
		req.Body.Close()
	}
	if hdr == nil {
		hdr = http.Header{}
	}
	return &http.Response{
		StatusCode: status,
		Status:     http.StatusText(status),
		Header:     hdr,
		Body:       io.NopCloser(bytes.NewReader([]byte(body))),
		Request:    req,
	}
}

// Counts reports the transport's injected-fault tally:
// kills, 503s, 500s, slows, and unfaulted passes.
func (t *Transport) Counts() (kills, f503s, f500s, slows, passed int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.kills, t.f503s, t.f500s, t.slows, t.passed
}
