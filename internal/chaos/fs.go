package chaos

import (
	"fmt"
	"math/rand/v2"
	"os"
	"sync"

	"boomsim/internal/store"
)

// FSPlan is a faulty filesystem's fault mix, evaluated per WriteFile call.
type FSPlan struct {
	// PTornWrite truncates a write to a seeded fraction of its bytes and
	// reports success — the on-disk shape of a crash mid-write.
	PTornWrite float64
	// PWriteError fails the write outright with an I/O error.
	PWriteError float64
}

// FS wraps a store.FS with seeded write faults. Reads and metadata
// operations pass through untouched: the store's verify-on-read path is what
// turns a torn write into a quarantine instead of a served corruption, and
// that is exactly the behavior under test.
type FS struct {
	base store.FS

	mu    sync.Mutex
	rng   *rand.Rand
	plan  FSPlan
	torn  int
	fails int
}

// NewFS builds a faulty filesystem over base (nil = the real one).
func NewFS(base store.FS, seed uint64, plan FSPlan) *FS {
	if base == nil {
		base = store.OSFS{}
	}
	return &FS{base: base, rng: rand.New(rand.NewPCG(seed, seed^0x6c62272e07bb0142)), plan: plan}
}

func (f *FS) ReadFile(name string) ([]byte, error)       { return f.base.ReadFile(name) }
func (f *FS) Rename(o, n string) error                   { return f.base.Rename(o, n) }
func (f *FS) MkdirAll(p string, m os.FileMode) error     { return f.base.MkdirAll(p, m) }
func (f *FS) Remove(name string) error                   { return f.base.Remove(name) }
func (f *FS) ReadDir(name string) ([]os.DirEntry, error) { return f.base.ReadDir(name) }
func (f *FS) Stat(name string) (os.FileInfo, error)      { return f.base.Stat(name) }

// WriteFile applies the plan: a torn write persists only a prefix of data
// but reports success; a write error persists nothing and reports failure.
func (f *FS) WriteFile(name string, data []byte, perm os.FileMode) error {
	f.mu.Lock()
	u := f.rng.Float64()
	var cut int
	switch {
	case u < f.plan.PTornWrite:
		f.torn++
		// Tear somewhere strictly inside the payload so the result is
		// neither empty nor complete.
		cut = 1
		if len(data) > 2 {
			cut = 1 + f.rng.IntN(len(data)-1)
		}
		f.mu.Unlock()
		return f.base.WriteFile(name, data[:cut], perm)
	case u < f.plan.PTornWrite+f.plan.PWriteError:
		f.fails++
		f.mu.Unlock()
		return fmt.Errorf("chaos: injected write error for %s", name)
	}
	f.mu.Unlock()
	return f.base.WriteFile(name, data, perm)
}

// FSCounts reports injected torn writes and write errors.
func (f *FS) FSCounts() (torn, fails int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.torn, f.fails
}

// Corrupt overwrites the tail of the file at path with garbage, preserving
// length — the bit-rot case the store's digest check exists for. Tear
// truncates n bytes off the end — the torn-record case for journals and
// store entries alike.
func Corrupt(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if len(raw) == 0 {
		return fmt.Errorf("chaos: %s is empty, nothing to corrupt", path)
	}
	for i := len(raw) - 1; i >= 0 && i >= len(raw)-8; i-- {
		raw[i] ^= 0x5a
	}
	return os.WriteFile(path, raw, 0o644)
}

// Tear truncates the last n bytes of the file at path (all but one byte if
// n exceeds the file), simulating a crash mid-append.
func Tear(path string, n int) error {
	info, err := os.Stat(path)
	if err != nil {
		return err
	}
	size := info.Size() - int64(n)
	if size < 1 {
		size = 1
	}
	return os.Truncate(path, size)
}

var _ store.FS = (*FS)(nil)
