package isa

import (
	"testing"
	"testing/quick"
)

func TestBlockAddrAligned(t *testing.T) {
	if err := quick.Check(func(pc uint64) bool {
		b := BlockAddr(pc)
		return b%BlockBytes == 0 && b <= pc && pc-b < BlockBytes
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBlockIndex(t *testing.T) {
	cases := []struct {
		pc   uint64
		want uint64
	}{
		{0, 0},
		{63, 0},
		{64, 1},
		{65, 1},
		{128, 2},
	}
	for _, c := range cases {
		if got := BlockIndex(c.pc); got != c.want {
			t.Errorf("BlockIndex(%d) = %d, want %d", c.pc, got, c.want)
		}
	}
}

func TestBlockDistanceSymmetric(t *testing.T) {
	if err := quick.Check(func(a, b uint64) bool {
		return BlockDistance(a, b) == BlockDistance(b, a)
	}, nil); err != nil {
		t.Fatal(err)
	}
	if BlockDistance(0, 63) != 0 {
		t.Error("same-block distance should be 0")
	}
	if BlockDistance(0, 64) != 1 {
		t.Error("adjacent-block distance should be 1")
	}
	if BlockDistance(4*64, 0) != 4 {
		t.Error("distance 4 expected")
	}
}

func TestBranchKindPredicates(t *testing.T) {
	cases := []struct {
		k                              BranchKind
		cond, uncond, call, ret, indir bool
	}{
		{None, false, false, false, false, false},
		{CondDirect, true, false, false, false, false},
		{UncondDirect, false, true, false, false, false},
		{CallDirect, false, true, true, false, false},
		{Return, false, true, false, true, true},
		{IndirectJump, false, true, false, false, true},
		{IndirectCall, false, true, true, false, true},
	}
	for _, c := range cases {
		if c.k.IsConditional() != c.cond {
			t.Errorf("%v IsConditional = %v", c.k, c.k.IsConditional())
		}
		if c.k.IsUnconditional() != c.uncond {
			t.Errorf("%v IsUnconditional = %v", c.k, c.k.IsUnconditional())
		}
		if c.k.IsCall() != c.call {
			t.Errorf("%v IsCall = %v", c.k, c.k.IsCall())
		}
		if c.k.IsReturn() != c.ret {
			t.Errorf("%v IsReturn = %v", c.k, c.k.IsReturn())
		}
		if c.k.IsIndirect() != c.indir {
			t.Errorf("%v IsIndirect = %v", c.k, c.k.IsIndirect())
		}
	}
}

func TestIsBranch(t *testing.T) {
	if None.IsBranch() {
		t.Error("None should not be a branch")
	}
	for k := CondDirect; k < BranchKind(NumBranchKinds); k++ {
		if !k.IsBranch() {
			t.Errorf("%v should be a branch", k)
		}
	}
}

func TestStringNames(t *testing.T) {
	if CondDirect.String() != "cond" || Return.String() != "ret" {
		t.Error("unexpected branch kind names")
	}
	if Sequential.String() != "sequential" {
		t.Error("unexpected class name")
	}
	if BranchKind(200).String() == "" {
		t.Error("out-of-range kind should still stringify")
	}
}

func TestClassOf(t *testing.T) {
	cases := []struct {
		k     BranchKind
		taken bool
		want  DiscontinuityClass
	}{
		{None, false, Sequential},
		{CondDirect, false, Sequential},
		{CondDirect, true, Conditional},
		{UncondDirect, true, Unconditional},
		{CallDirect, true, Unconditional},
		{Return, true, Unconditional},
		{IndirectJump, true, Unconditional},
		{IndirectCall, true, Unconditional},
	}
	for _, c := range cases {
		if got := ClassOf(c.k, c.taken); got != c.want {
			t.Errorf("ClassOf(%v,%v) = %v, want %v", c.k, c.taken, got, c.want)
		}
	}
}

func TestGeometryConstants(t *testing.T) {
	if InstrsPerBlock != 16 {
		t.Fatalf("expected 16 instrs per 64B block at 4B each, got %d", InstrsPerBlock)
	}
}
