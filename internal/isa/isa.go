// Package isa defines the minimal instruction-set abstractions the simulator
// needs: a fixed-width RISC encoding (modelled on SPARC v9, which the paper's
// Flexus setup simulates), branch classes, and cache-block geometry helpers.
//
// The simulator never interprets data-flow semantics; control flow is the
// only architectural behaviour that matters to instruction supply, so an
// "instruction" here is just a program counter plus, for block terminators, a
// branch descriptor.
package isa

import "fmt"

// Geometry constants shared across the whole simulator.
const (
	// InstrBytes is the fixed instruction size (SPARC v9 is 4-byte fixed).
	InstrBytes = 4
	// BlockBytes is the cache block (line) size used by every cache level.
	BlockBytes = 64
	// InstrsPerBlock is how many instructions fit in one cache block.
	InstrsPerBlock = BlockBytes / InstrBytes
)

// Addr is a virtual instruction address.
type Addr = uint64

// BlockAddr returns the cache-block-aligned address containing pc.
func BlockAddr(pc Addr) Addr { return pc &^ (BlockBytes - 1) }

// BlockIndex returns the cache-block number containing pc.
func BlockIndex(pc Addr) uint64 { return pc / BlockBytes }

// BlockDistance returns the distance from pc to target in whole cache
// blocks (0 means same block). The sign is discarded; the paper's Figure 4
// plots absolute distance.
func BlockDistance(pc, target Addr) uint64 {
	a, b := BlockIndex(pc), BlockIndex(target)
	if a > b {
		return a - b
	}
	return b - a
}

// BranchKind classifies a control-transfer instruction. The taxonomy follows
// the paper's miss-cycle breakdown: conditional discontinuities versus
// unconditional ones (jumps, calls, returns), plus indirect variants whose
// targets only a BTB (or RAS) can supply.
type BranchKind uint8

const (
	// None marks a non-branch instruction (not a valid block terminator).
	None BranchKind = iota
	// CondDirect is a conditional branch with a PC-relative target.
	CondDirect
	// UncondDirect is an unconditional direct jump.
	UncondDirect
	// CallDirect is a direct function call (pushes a return address).
	CallDirect
	// Return transfers to the address on top of the return stack.
	Return
	// IndirectJump is an unconditional jump through a register.
	IndirectJump
	// IndirectCall is a call through a register (virtual dispatch).
	IndirectCall
	numBranchKinds
)

// NumBranchKinds is the count of valid BranchKind values (including None).
const NumBranchKinds = int(numBranchKinds)

var kindNames = [...]string{
	None:         "none",
	CondDirect:   "cond",
	UncondDirect: "jump",
	CallDirect:   "call",
	Return:       "ret",
	IndirectJump: "ijump",
	IndirectCall: "icall",
}

func (k BranchKind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("BranchKind(%d)", uint8(k))
}

// IsConditional reports whether the branch outcome depends on a direction
// prediction.
func (k BranchKind) IsConditional() bool { return k == CondDirect }

// IsUnconditional reports whether the branch always redirects the fetch
// stream (the paper's "unconditional" discontinuity class: jumps, calls and
// returns, direct or indirect).
func (k BranchKind) IsUnconditional() bool {
	switch k {
	case UncondDirect, CallDirect, Return, IndirectJump, IndirectCall:
		return true
	}
	return false
}

// IsCall reports whether the branch pushes a return address.
func (k BranchKind) IsCall() bool { return k == CallDirect || k == IndirectCall }

// IsReturn reports whether the branch pops the return address stack.
func (k BranchKind) IsReturn() bool { return k == Return }

// IsIndirect reports whether the target comes from a register (so the front
// end can only obtain it from the BTB or RAS, never from the encoding).
func (k BranchKind) IsIndirect() bool {
	return k == IndirectJump || k == IndirectCall || k == Return
}

// IsBranch reports whether k names an actual control transfer.
func (k BranchKind) IsBranch() bool { return k != None && k < numBranchKinds }

// DiscontinuityClass buckets a fetch-stream transition for the paper's
// Figure 3 miss-cycle breakdown.
type DiscontinuityClass uint8

const (
	// Sequential means the fetch stream fell through to the next block.
	Sequential DiscontinuityClass = iota
	// Conditional means a taken conditional branch redirected the stream.
	Conditional
	// Unconditional means a jump/call/return redirected the stream.
	Unconditional
	numDiscClasses
)

// NumDiscontinuityClasses is the count of DiscontinuityClass values.
const NumDiscontinuityClasses = int(numDiscClasses)

var discNames = [...]string{
	Sequential:    "sequential",
	Conditional:   "conditional",
	Unconditional: "unconditional",
}

func (c DiscontinuityClass) String() string {
	if int(c) < len(discNames) {
		return discNames[c]
	}
	return fmt.Sprintf("DiscontinuityClass(%d)", uint8(c))
}

// ClassOf maps the branch kind that led into a block (None for fall-through)
// to its discontinuity class.
func ClassOf(k BranchKind, taken bool) DiscontinuityClass {
	if k == None || !taken {
		return Sequential
	}
	if k == CondDirect {
		return Conditional
	}
	return Unconditional
}
