// Package frontend implements the decoupled front end the whole evaluation
// revolves around: the branch prediction unit driving a fetch target queue
// (FTQ), the fetch engine, and FDIP's prefetch engine, with pluggable BTB
// miss policies (conventional sequential fall-through vs Boomerang's
// stall-and-predecode) and pluggable L1-I prefetchers (next-line, DIP, PIF,
// SHIFT). It executes speculatively — including real wrong-path fetch and
// prefetch activity — and verifies predictions against the workload oracle,
// squashing at branch resolution like the modelled pipeline would.
//
// # Zero-allocation contract
//
// The measured simulation loop (Engine.Tick and everything it calls)
// performs no heap allocation at steady state: FTQ entries come from a
// preallocated pool and are recycled at retirement or squash, the FTQ,
// probe queue and in-flight window are fixed rings, and the backend and
// cache hierarchy it drives use preallocated scratch storage (see their
// package comments). Code added to the per-cycle path must follow the same
// discipline — reuse engine-owned scratch buffers rather than allocating —
// and TestMeasureLoopAllocationFree (repo root) enforces the contract with
// testing.AllocsPerRun. Entry pointers handed out by the engine are only
// valid until the entry retires or is squashed; do not retain them.
package frontend

import (
	"boomsim/internal/btb"
	"boomsim/internal/cache"
	"boomsim/internal/isa"
	"boomsim/internal/program"
)

// MissHandler decides what the branch prediction unit does on a genuine
// basic-block BTB miss.
//
// Conventional FDIP has no handler (nil): the front end falls through
// sequentially until the next BTB hit, discovering the hidden branch at
// resolve time. Boomerang's handler stalls the BPU, probes the L1-I for the
// cache block containing pc, predecodes it (chasing sequential blocks when
// the terminator lies further on), and returns the synthesised entry.
type MissHandler interface {
	// Handle is invoked at cycle now for a BTB miss at pc. ok=false means
	// "no resolution: proceed sequentially". ok=true returns the resolved
	// entry and the cycle the BPU may resume prediction (resumeAt >= now;
	// the engine inserts the entry into the BTB and stalls until resumeAt).
	Handle(pc isa.Addr, now int64) (entry btb.Entry, resumeAt int64, ok bool)
}

// Oracle supplies the architecturally correct execution path the engine
// verifies against: a live workload walker, or a recorded trace being
// replayed (package trace).
type Oracle interface {
	// PC returns the start address of the next block to execute.
	PC() isa.Addr
	// Next consumes and returns one committed step.
	Next() program.Step
}

// BTBFillObserver is an optional MissHandler extension: handlers that
// maintain their own metadata (e.g. a second BTB level) implement it to see
// every entry the front end learns — discovery fills at branch resolution
// and miss-handler resolutions alike.
type BTBFillObserver interface {
	OnBTBFill(e btb.Entry, now int64)
}

// Prefetcher is an L1-I prefetcher driven by fetch-stream events. The FDIP
// prefetch engine is built into the engine itself (it needs the FTQ);
// history-based prefetchers (next-line, DIP, PIF, SHIFT) implement this.
type Prefetcher interface {
	// Name identifies the prefetcher in experiment output.
	Name() string
	// OnDemand observes every demand line access by the fetch engine.
	// miss is true when the line was not in the L1-I or prefetch buffer,
	// and class attributes the access (how the fetch stream entered the
	// line: sequentially or via a conditional/unconditional discontinuity).
	OnDemand(line uint64, miss bool, class isa.DiscontinuityClass, now int64)
	// OnRetire observes the committed (correct-path) fetch stream at line
	// granularity; temporal-streaming prefetchers record it.
	OnRetire(line uint64, now int64)
	// Tick runs once per cycle for prefetchers with internal timing (e.g.
	// SHIFT's LLC-resident metadata reads).
	Tick(now int64)
	// NextEvent returns the earliest cycle > now at which Tick will act on
	// its own (e.g. a delayed metadata replay coming due), now itself when
	// Tick has work this cycle, or cache.NoEvent when it is idle. The
	// engine's event-horizon cycle skip uses it to prove Tick is a no-op
	// across a stall window: an early (conservative) answer merely shortens
	// a skip, a late one breaks cycle accuracy.
	NextEvent(now int64) int64
}

// NopPrefetcher is an embeddable no-op implementation of Prefetcher.
type NopPrefetcher struct{}

// Name implements Prefetcher.
func (NopPrefetcher) Name() string { return "none" }

// OnDemand implements Prefetcher.
func (NopPrefetcher) OnDemand(uint64, bool, isa.DiscontinuityClass, int64) {}

// OnRetire implements Prefetcher.
func (NopPrefetcher) OnRetire(uint64, int64) {}

// Tick implements Prefetcher.
func (NopPrefetcher) Tick(int64) {}

// NextEvent implements Prefetcher: a no-op Tick never has scheduled work.
func (NopPrefetcher) NextEvent(int64) int64 { return cache.NoEvent }
