package frontend

import "boomsim/internal/cache"

// Event-horizon cycle skipping.
//
// A front-end study spends much of its simulated time in deterministic dead
// windows: fetch blocked on a known fill readyAt, the BPU stalled until a
// known resumeAt, the backend draining toward a known resolveAt. Inside such
// a window every Tick is a pure counter increment — no component changes
// state in a way the rest of the machine can observe before a known future
// cycle — so Run can compute the earliest cycle at which anything CAN change
// state (the event horizon), bulk-accrue the per-cycle stall counters for
// the whole window in one addition each, and jump the clock straight there.
//
// The bar is byte-identity: a skipping run must produce exactly the bytes a
// per-cycle run produces — same Stats, same registry, same epochs. That
// holds because skipHorizon only returns a future cycle when it has proven,
// component by component, that every Tick before that cycle does nothing
// beyond what fastForward replays in closed form:
//
//   - cache.Hierarchy: fills are its only spontaneous activity; the earliest
//     pending MSHR readyAt bounds the next one (Hierarchy.NextEvent).
//   - Prefetchers: Prefetcher.NextEvent bounds the next delayed issue;
//     NextLine/DIP act only inside OnDemand, Temporal drains a head-of-line
//     queue with known issueAts.
//   - Backend: resolveAt is non-decreasing in fetch order, so the oldest
//     unreported group's resolveAt bounds every future resolution — and the
//     training and squashes resolutions trigger (Backend.NextEvent). An
//     already-resolved head retiring is the one in-window activity the skip
//     tolerates: Backend.FastRetire replays that drain bit-for-bit, at
//     RetireWidth per cycle with exact per-group retirement cycles, so
//     OnRetire observers and Run's instruction target see the same stream a
//     per-cycle run produces. Retirement is invisible to the stalled front
//     end until fetch next pops an entry — except when fetch is blocked on
//     a full ROB, where freed slots matter cycle-by-cycle, so that state
//     is never skipped while retirement is in progress.
//   - BPU: either stalled until bpuStallUntil (Boomerang predecode or a
//     squash redirect), or blocked by a full FTQ — which stays full, since
//     fetch is stalled and squashes need a resolution. If it would predict
//     this cycle, the horizon is now and no skip happens.
//   - Fetch: either mid-stall on a known lineReady, or idle on an empty FTQ
//     / full ROB whose end conditions are BPU / backend events respectively.
//   - BTB/predecoder fill paths: BTB training happens at resolutions
//     (backend events) and miss-handler calls (BPU activity); Confluence
//     predecode-at-fill runs inside Hierarchy.Tick via the fill hook, i.e.
//     at a hierarchy event. BTB LRU timestamps only move on lookups, and no
//     lookup happens in a skipped cycle.
//
// The skip is invisible to results and therefore deliberately excluded from
// the public cache identity (boomsim.Key); FuzzSkipIdentity and the golden
// corpus pin the equivalence.

// SetCycleSkip enables or disables event-horizon cycle skipping (enabled by
// default). Disabling it forces the per-cycle interpretation loop — the
// control runs and debugging aids (e.g. single-cycle flight-recorder traces)
// use it; results are byte-identical either way.
func (e *Engine) SetCycleSkip(on bool) { e.noSkip = !on }

// CycleSkipEnabled reports whether Run may fast-forward stalled windows.
func (e *Engine) CycleSkipEnabled() bool { return !e.noSkip }

// SkippedCycles returns the cycles fast-forwarded (rather than ticked) since
// the last ResetStats. It is diagnostic only — deliberately not part of
// Stats, whose bytes must not depend on whether skipping is enabled.
func (e *Engine) SkippedCycles() int64 { return e.skipped - e.skippedBase }

// skipHorizon returns the earliest cycle at which any component can change
// observable state: now itself when some component is active this cycle (no
// skip), a future cycle when every component is provably inert until then,
// or cache.NoEvent when nothing is scheduled at all (a wedged or drained
// engine; Run only skips to a horizon bounded by a clamp). drain reports
// that the backend is mid-retirement — inert to the stalled front end, but
// the window must be replayed through Backend.FastRetire rather than
// plainly jumped.
func (e *Engine) skipHorizon(now int64) (h int64, drain bool) {
	// Fetch engine. Mid-entry with the line still in flight, fetch is
	// stalled until lineReady. Between entries it either pops the FTQ this
	// cycle (busy), idles on an empty FTQ until the BPU delivers (a BPU
	// event, folded in below), or idles on a full ROB — where each retired
	// instruction matters cycle-by-cycle, so an active drain forces
	// per-cycle ticking and an idle backend unblocks at its next
	// resolution (folded in below). The mid-fetch busy case exits before
	// anything else is computed: it is the hot loop's common path.
	if e.cur != nil && (!e.haveLine || now >= e.lineReady) {
		return now, false
	}
	h = cache.NoEvent
	drain = e.be.Retiring()
	if e.cur != nil {
		h = e.lineReady
	} else if e.ftq.len() > 0 {
		if drain || e.be.InFlightInstrs() < e.cfg.ROBSize {
			return now, false
		}
	}

	// BPU. Stalled, its resumption is a known event; unstalled it predicts
	// this cycle unless the FTQ is full — and a full FTQ stays full while
	// fetch is stalled (squashes require a backend resolution, bounded
	// below).
	if e.bpuStallUntil > now {
		if e.bpuStallUntil < h {
			h = e.bpuStallUntil
		}
	} else if e.ftq.len() < e.ftqDepth {
		return now, false
	}

	// The FDIP prefetch engine issues probes every cycle its queue is
	// non-empty.
	if e.fdipProbes && e.probeQ.len() > 0 {
		return now, false
	}

	if ev := e.be.NextEvent(); ev < h {
		h = ev
	}
	if ev := e.hier.NextEvent(); ev < h {
		h = ev
	}
	if e.pf != nil {
		if ev := e.pf.NextEvent(now); ev < h {
			h = ev
		}
	}
	return h, drain
}

// accrueStalls bulk-accrues, for the window [now, to), exactly the counters
// the skipped Ticks would have incremented: one BPU-stall count per cycle
// when the BPU is stalled, plus — mirroring fetchStep's priority order —
// either the fetch-stall triple (correct-path entries only), the FTQ-empty
// count, or the ROB-stall count. The window's conditions are loop-invariant
// by construction (skipHorizon proved no component changes them before
// `to`), so n identical increments collapse into one addition each.
func (e *Engine) accrueStalls(now, to int64) {
	n := uint64(to - now)
	if e.bpuStallUntil > now {
		e.stats.BPUMissStallCycles += n
	}
	if ent := e.cur; ent != nil {
		if ent.OnCorrectPath {
			e.stats.FetchStallCycles += n
			e.stats.StallByClass[e.lineClass(ent)] += n
			e.stats.StallByLevel[e.lineLevel] += n
		}
	} else if e.ftq.len() == 0 {
		e.stats.FTQEmptyCycles += n
	} else {
		e.stats.ROBStallCycles += n
	}
}

// fastForward advances the clock from now to the horizon `to`. With the
// backend mid-drain it first replays the window's retirement stream in
// closed form: Backend.FastRetire retires at RetireWidth per cycle with
// exact per-group cycles (stopping the cycle after Run's instruction target
// is crossed, just as the per-cycle loop would), and the retired groups are
// then consumed verbatim — the same in-order frees and OnRetire calls, with
// the same cycle stamps, backendStep would have made. Counters accrue over
// the actually-covered window, which target crossing may end before `to`.
func (e *Engine) fastForward(now, to int64, drain bool, targetInstrs uint64) {
	if drain {
		// Run's loop invariant guarantees the target is still ahead.
		stopAfter := targetInstrs - (e.be.Retired() - e.retireBase)
		to = e.be.FastRetire(now, to, stopAfter)
		for _, ev := range e.be.RetiredEvents() {
			// In-order retirement: anything still queued ahead of a retired
			// group is a wrong-path group the backend popped silently.
			for e.inflight.len() > 0 && e.inflight.front().ID < ev.ID {
				e.freeEntry(e.inflight.popFront())
			}
			if e.inflight.len() > 0 && e.inflight.front().ID == ev.ID {
				ent := e.inflight.popFront()
				if e.pf != nil && ent.OnCorrectPath {
					first, last := ent.Lines()
					for l := first; l <= last; l++ {
						e.pf.OnRetire(l, ev.At)
					}
				}
				e.freeEntry(ent)
			}
		}
	}
	e.accrueStalls(now, to)
	e.skipped += to - now
	e.cycle = to
}
