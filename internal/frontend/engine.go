package frontend

import (
	"fmt"

	"boomsim/internal/backend"
	"boomsim/internal/bpu"
	"boomsim/internal/btb"
	"boomsim/internal/cache"
	"boomsim/internal/config"
	"boomsim/internal/isa"
	"boomsim/internal/program"
)

// Entry is one FTQ entry: a predicted basic block (or, under a BTB miss with
// the sequential policy, a pseudo-block whose terminator the front end does
// not know).
//
// Entries are pool-allocated by the engine (see the package comment's
// zero-alloc contract): an Entry pointer is only valid while the entry is in
// the FTQ, being fetched, or in flight; after retirement or a squash the
// engine recycles it.
type Entry struct {
	// ID orders entries (monotonic).
	ID uint64
	// Start and NInstr delimit the fetch region.
	Start  isa.Addr
	NInstr uint16
	// Kind is the terminator kind as known to the front end; None when the
	// entry was produced under a BTB miss (terminator unknown).
	Kind isa.BranchKind
	// PredTaken/PredNext are the BPU's speculation.
	PredTaken bool
	PredNext  isa.Addr
	// EntryClass says how the predicted stream entered this block.
	EntryClass isa.DiscontinuityClass

	// OnCorrectPath entries carry oracle truth for resolution.
	OnCorrectPath bool
	ActualTaken   bool
	ActualNext    isa.Addr
	ActualKind    isa.BranchKind
	Mispredicted  bool
	SquashClass   SquashClass

	// Training actions applied at resolve.
	HasDir      bool
	Dir         bpu.Prediction
	DirPC       isa.Addr
	TrainBTB    bool
	BTBEntry    btb.Entry
	TrainTarget bool

	// Recovery state captured at prediction time.
	Hist  bpu.HistState
	RAScp bpu.RASCheckpoint

	// FetchDone is set by the fetch engine.
	FetchDone int64
}

// Lines returns the first and last cache line of the fetch region.
func (e *Entry) Lines() (first, last uint64) {
	first = cache.LineOf(e.Start)
	last = cache.LineOf(e.Start + isa.Addr(e.NInstr-1)*isa.InstrBytes)
	return first, last
}

func pow2AtLeast(n int) int {
	c := 4
	for c < n {
		c *= 2
	}
	return c
}

// entryRing is a power-of-two ring deque of pool-owned entries, ordered by
// ascending ID.
type entryRing struct {
	buf  []*Entry
	head int
	n    int
	mask int
}

func (r *entryRing) init(capacity int) {
	r.buf = make([]*Entry, pow2AtLeast(capacity))
	r.mask = len(r.buf) - 1
}

func (r *entryRing) len() int { return r.n }

func (r *entryRing) at(i int) *Entry { return r.buf[(r.head+i)&r.mask] }

func (r *entryRing) front() *Entry { return r.buf[r.head] }

func (r *entryRing) back() *Entry { return r.at(r.n - 1) }

func (r *entryRing) push(e *Entry) {
	if r.n == len(r.buf) {
		next := make([]*Entry, 2*len(r.buf))
		for i := 0; i < r.n; i++ {
			next[i] = r.at(i)
		}
		r.buf = next
		r.head = 0
		r.mask = len(next) - 1
	}
	r.buf[(r.head+r.n)&r.mask] = e
	r.n++
}

func (r *entryRing) popFront() *Entry {
	e := r.buf[r.head]
	r.head = (r.head + 1) & r.mask
	r.n--
	return e
}

func (r *entryRing) popBack() *Entry {
	r.n--
	return r.buf[(r.head+r.n)&r.mask]
}

// lineRing is a bounded FIFO of cache-line indices (power-of-two ring);
// pushing into a full ring drops the oldest element, preserving the probe
// queue's policy of favouring the newest predictions. cap bounds occupancy
// below the ring's rounded-up storage size.
type lineRing struct {
	buf  []uint64
	head int
	n    int
	mask int
	cap  int
}

func (r *lineRing) init(capacity int) {
	if capacity < 1 {
		capacity = 1
	}
	r.buf = make([]uint64, pow2AtLeast(capacity))
	r.mask = len(r.buf) - 1
	r.cap = capacity
}

func (r *lineRing) len() int { return r.n }

func (r *lineRing) push(v uint64) {
	if r.n == r.cap {
		r.popFront()
	}
	r.buf[(r.head+r.n)&r.mask] = v
	r.n++
}

func (r *lineRing) popFront() uint64 {
	v := r.buf[r.head]
	r.head = (r.head + 1) & r.mask
	r.n--
	return v
}

func (r *lineRing) clear() {
	r.head, r.n = 0, 0
}

// Options wires an Engine. Image, Oracle, Hierarchy, Direction and BTB are
// required; the rest select the scheme under test.
type Options struct {
	Config    config.Core
	Image     *program.Image
	Oracle    Oracle
	Hierarchy *cache.Hierarchy
	Direction bpu.Direction
	BTB       *btb.BTB

	// MissHandler implements the BTB miss policy; nil = conventional
	// sequential fall-through (FDIP and every non-Boomerang scheme).
	MissHandler MissHandler
	// Prefetcher is an optional history-based L1-I prefetcher.
	Prefetcher Prefetcher
	// FDIPProbes enables the FTQ-directed prefetch engine.
	FDIPProbes bool
	// PerfectL1 makes every demand fetch an L1 hit (Figure 1).
	PerfectL1 bool
	// DecoupledDepth overrides Config.FTQDepth when > 0 (the non-decoupled
	// baseline uses a shallow FTQ).
	DecoupledDepth int
}

// Engine is one simulated core: BPU + FTQ + fetch engine + backend window,
// wired to a memory hierarchy and verified against the workload oracle.
type Engine struct {
	cfg     config.Core
	img     *program.Image
	orc     Oracle
	hier    *cache.Hierarchy
	dir     bpu.Direction
	btbs    *btb.BTB
	ras     *bpu.RAS
	miss    MissHandler
	fillObs BTBFillObserver
	pf      Prefetcher

	fdipProbes bool
	perfectL1  bool
	ftqDepth   int

	be *backend.Backend

	// Speculative BPU state.
	specPC        isa.Addr
	specClass     isa.DiscontinuityClass
	wrongPath     bool
	pendingSquash bool
	bpuStallUntil int64

	// FTQ and in-flight bookkeeping: both are rings of pool-owned entries.
	// inflight holds fetched groups ordered by ID until their retirement (or
	// a squash) recycles them.
	ftq      entryRing
	inflight entryRing
	nextID   uint64

	// entrySlab backs every Entry the engine ever hands out; entryFree is
	// the freelist. The pool is sized so the steady-state loop never touches
	// the heap: FTQ depth + the ROB-bounded window + the entry being fetched.
	entrySlab []Entry
	entryFree []*Entry

	// Fetch engine state.
	cur         *Entry
	curInstr    int
	curLine     uint64
	haveLine    bool
	lineReady   int64
	lineIsFirst bool
	lineLevel   cache.Level

	// FDIP prefetch probe queue.
	probeQ        lineRing
	lastQueuedLn  uint64
	haveLastQueue bool

	stats           Stats
	cycle           int64
	cycleBase       int64
	retireBase      uint64
	retireBlockBase uint64

	// Event-horizon cycle skipping (see skip.go). noSkip is inverted so the
	// zero value — and therefore every engine, including clones — skips by
	// default; skipped/skippedBase track fast-forwarded cycles as a
	// diagnostic, deliberately outside Stats so results are byte-identical
	// with skipping on or off.
	noSkip      bool
	skipped     int64
	skippedBase int64

	// rec is the optional flight recorder (see recorder.go). nil in the
	// default configuration: the steady-state loop then pays exactly one
	// pointer compare per cycle and keeps its zero-alloc contract.
	rec *Recorder
}

// New builds an engine. It panics on nil required dependencies (programming
// error, not runtime condition).
func New(opts Options) *Engine {
	if opts.Image == nil || opts.Oracle == nil || opts.Hierarchy == nil ||
		opts.Direction == nil || opts.BTB == nil {
		panic("frontend: missing required dependency")
	}
	if err := opts.Config.Validate(); err != nil {
		panic(err)
	}
	depth := opts.Config.FTQDepth
	if opts.DecoupledDepth > 0 {
		depth = opts.DecoupledDepth
	}
	e := &Engine{
		cfg:        opts.Config,
		img:        opts.Image,
		orc:        opts.Oracle,
		hier:       opts.Hierarchy,
		dir:        opts.Direction,
		btbs:       opts.BTB,
		ras:        bpu.NewRAS(opts.Config.RASDepth),
		miss:       opts.MissHandler,
		fillObs:    nil,
		pf:         opts.Prefetcher,
		fdipProbes: opts.FDIPProbes,
		perfectL1:  opts.PerfectL1,
		ftqDepth:   depth,
		be:         backend.New(opts.Config),
		specPC:     opts.Oracle.PC(),
	}
	// Every live entry is in the FTQ, the fetch engine's hands, or the
	// ROB-bounded in-flight window (each group carries >= 1 instruction).
	poolCap := depth + opts.Config.ROBSize + 4
	e.entrySlab = make([]Entry, poolCap)
	e.entryFree = make([]*Entry, poolCap)
	for i := range e.entrySlab {
		e.entryFree[i] = &e.entrySlab[i]
	}
	e.ftq.init(depth)
	e.inflight.init(opts.Config.ROBSize + 2)
	e.probeQ.init(4 * depth)
	if obs, ok := opts.MissHandler.(BTBFillObserver); ok {
		e.fillObs = obs
	}
	return e
}

// allocEntry takes an entry from the pool. The heap fallback is only
// reachable if a caller violates the ROB admission bound (e.g. a synthetic
// unit test); the simulated configurations never hit it.
func (e *Engine) allocEntry() *Entry {
	if n := len(e.entryFree); n > 0 {
		ent := e.entryFree[n-1]
		e.entryFree = e.entryFree[:n-1]
		return ent
	}
	return new(Entry)
}

func (e *Engine) freeEntry(ent *Entry) {
	e.entryFree = append(e.entryFree, ent)
}

// Stats returns a snapshot of the accumulated statistics (retired counts are
// relative to the last ResetStats).
func (e *Engine) Stats() Stats {
	s := e.stats
	s.Cycles = e.cycle - e.cycleBase
	s.RetiredInstrs = e.be.Retired() - e.retireBase
	s.RetiredBlocks = e.be.RetiredGroups() - e.retireBlockBase
	return s
}

// ResetStats zeroes counters while keeping all microarchitectural state —
// the warmup/measure boundary. The clock itself stays monotonic (in-flight
// fills carry absolute times); reported Cycles are rebased.
func (e *Engine) ResetStats() {
	e.stats = Stats{}
	e.cycleBase = e.cycle
	e.retireBase = e.be.Retired()
	e.retireBlockBase = e.be.RetiredGroups()
	e.skippedBase = e.skipped
}

// Run advances the simulation until targetInstrs correct-path instructions
// have retired since the last ResetStats (or construction), or maxCycles
// elapses (0 = no bound). It returns the stats snapshot at completion.
//
// When cycle skipping is enabled (the default; see skip.go) and every
// component is provably idle until a future event horizon, the loop
// fast-forwards the clock to that horizon instead of ticking through it.
// The horizon is clamped to the cycle bound and to the next flight-recorder
// boundary, so window semantics and epoch tiling are bit-for-bit unchanged.
func (e *Engine) Run(targetInstrs uint64, maxCycles int64) Stats {
	for e.be.Retired()-e.retireBase < targetInstrs {
		if maxCycles > 0 && e.cycle-e.cycleBase >= maxCycles {
			break
		}
		if !e.noSkip {
			if h, drain := e.skipHorizon(e.cycle); h > e.cycle {
				if maxCycles > 0 {
					if lim := e.cycleBase + maxCycles; h > lim {
						h = lim
					}
				}
				if e.rec != nil && h > e.rec.next {
					h = e.rec.next
				}
				// An unclamped infinite horizon means nothing is scheduled at
				// all: fall through to the per-cycle loop, preserving the
				// wedged-engine behaviour the chunked runner detects. (With a
				// cycle bound the clamp above turns that burn into one jump.)
				if h > e.cycle && h < cache.NoEvent {
					e.fastForward(e.cycle, h, drain, targetInstrs)
					if e.rec != nil && e.cycle >= e.rec.next {
						e.rec.roll(e)
					}
					continue
				}
			}
		}
		e.Tick()
		// Tick advances the clock by exactly one cycle, so the recorder
		// boundary is hit exactly — epochs tile the window with no drift.
		if e.rec != nil && e.cycle >= e.rec.next {
			e.rec.roll(e)
		}
	}
	return e.Stats()
}

// Tick advances one cycle.
func (e *Engine) Tick() {
	now := e.cycle
	e.hier.Tick(now)
	if e.pf != nil {
		e.pf.Tick(now)
	}
	e.backendStep(now)
	e.bpuStep(now)
	if e.fdipProbes {
		e.probeStep(now)
	}
	e.fetchStep(now)
	e.cycle++
}

// ---------------------------------------------------------------------------
// Backend: resolutions (training + squash) and retirement.

func (e *Engine) backendStep(now int64) {
	resolved, retired := e.be.Tick(now)
	for _, id := range resolved {
		ent := e.inflightByID(id)
		if ent == nil {
			continue
		}
		if !ent.OnCorrectPath {
			continue // wrong-path groups train nothing
		}
		e.train(ent, now)
		if ent.Mispredicted {
			e.squash(ent, now)
			break // younger resolutions are gone
		}
	}
	for _, id := range retired {
		// In-order retirement: anything still queued ahead of a reported
		// retirement is a wrong-path group the backend popped silently —
		// recycle those entries, then the reported one.
		for e.inflight.len() > 0 && e.inflight.front().ID < id {
			e.freeEntry(e.inflight.popFront())
		}
		if e.inflight.len() > 0 && e.inflight.front().ID == id {
			ent := e.inflight.popFront()
			if e.pf != nil && ent.OnCorrectPath {
				first, last := ent.Lines()
				for l := first; l <= last; l++ {
					e.pf.OnRetire(l, now)
				}
			}
			e.freeEntry(ent)
		}
	}
}

// inflightByID finds the in-flight entry with the given ID by binary search
// (the ring is ordered by ascending ID). nil when the entry is gone.
func (e *Engine) inflightByID(id uint64) *Entry {
	lo, hi := 0, e.inflight.len()
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if e.inflight.at(mid).ID < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < e.inflight.len() {
		if ent := e.inflight.at(lo); ent.ID == id {
			return ent
		}
	}
	return nil
}

func (e *Engine) train(ent *Entry, now int64) {
	if ent.HasDir {
		e.dir.Update(ent.Dir, ent.DirPC, ent.ActualTaken)
	}
	if ent.TrainBTB {
		e.btbs.Insert(ent.BTBEntry, now)
		if e.fillObs != nil {
			e.fillObs.OnBTBFill(ent.BTBEntry, now)
		}
	}
	if ent.TrainTarget {
		e.btbs.UpdateTarget(ent.Start, ent.ActualNext, now)
	}
}

func (e *Engine) squash(ent *Entry, now int64) {
	e.stats.Squashes[ent.SquashClass]++

	e.be.Squash(ent.ID)
	for e.inflight.len() > 0 && e.inflight.back().ID > ent.ID {
		e.freeEntry(e.inflight.popBack())
	}
	for e.ftq.len() > 0 {
		e.freeEntry(e.ftq.popFront())
	}
	if e.cur != nil {
		e.freeEntry(e.cur)
		e.cur = nil
	}
	e.haveLine = false
	e.probeQ.clear()
	e.haveLastQueue = false

	// Restore speculative state to the prediction point, then apply the
	// branch's actual effect.
	e.dir.Restore(ent.Hist)
	if ent.ActualKind.IsConditional() {
		e.dir.Shift(ent.ActualTaken)
	}
	e.ras.Restore(ent.RAScp)
	if ent.ActualKind.IsCall() {
		e.ras.Push(ent.Start + isa.Addr(ent.NInstr)*isa.InstrBytes)
	} else if ent.ActualKind.IsReturn() {
		e.ras.Pop()
	}

	e.specPC = ent.ActualNext
	e.specClass = isa.ClassOf(ent.ActualKind, ent.ActualTaken)
	e.wrongPath = false
	e.pendingSquash = false
	e.bpuStallUntil = now + 1 // redirect
}

// ---------------------------------------------------------------------------
// BPU: one basic-block prediction per cycle into the FTQ.

func (e *Engine) bpuStep(now int64) {
	if e.bpuStallUntil > now {
		e.stats.BPUMissStallCycles++
		return
	}
	if e.ftq.len() >= e.ftqDepth {
		return
	}

	pc := e.specPC
	if !e.wrongPath {
		e.stats.BTBLookups++
	}
	bent, hit := e.btbs.Lookup(pc, now)
	if !hit {
		if !e.wrongPath {
			e.stats.BTBMisses++
		}
		if e.miss != nil {
			resolvedEnt, resumeAt, ok := e.miss.Handle(pc, now)
			if ok {
				e.btbs.Insert(resolvedEnt, now)
				if resumeAt > now {
					// Boomerang: BPU stalls until the miss is resolved; the
					// re-lookup at resumeAt will hit.
					e.stats.BTBMissProbes++
					e.bpuStallUntil = resumeAt
					return
				}
				bent, hit = resolvedEnt, true
			}
		}
	}

	// Neither the BTB lookup nor the miss handler touches the direction
	// predictor or RAS, so the recovery snapshot taken here matches the
	// prediction point exactly. The recycled entry is reset field by field —
	// building an Entry literal would zero and copy the ~250-byte struct
	// through a stack temporary on every prediction. Fields NOT reset here
	// are dead until re-armed: Dir/DirPC behind HasDir, BTBEntry behind
	// TrainBTB, ActualTaken/ActualNext/ActualKind/SquashClass behind
	// OnCorrectPath+Mispredicted (verify sets all of them together for every
	// correct-path entry), Hist overwritten in full by SnapshotInto,
	// NInstr/Kind/PredTaken/PredNext by predictFromEntry/sequentialEntry,
	// and FetchDone by the fetch engine before the backend reads it.
	ent := e.allocEntry()
	ent.ID = e.nextID + 1
	ent.Start = pc
	ent.EntryClass = e.specClass
	ent.OnCorrectPath = false
	ent.Mispredicted = false
	ent.HasDir = false
	ent.TrainBTB = false
	ent.TrainTarget = false
	e.dir.SnapshotInto(&ent.Hist)
	ent.RAScp = e.ras.Checkpoint()

	if hit {
		e.predictFromEntry(ent, &bent)
	} else {
		e.sequentialEntry(ent)
	}

	if !e.wrongPath {
		e.verify(ent)
	} else {
		ent.OnCorrectPath = false
		e.stats.WrongPathEntries++
	}

	e.nextID++
	e.specPC = ent.PredNext
	e.specClass = isa.ClassOf(ent.Kind, ent.PredTaken)
	e.ftq.push(ent)
	if e.fdipProbes {
		e.enqueueProbes(ent)
	}
}

// predictFromEntry fills the entry from a BTB hit.
func (e *Engine) predictFromEntry(ent *Entry, bent *btb.Entry) {
	ent.NInstr = bent.NInstr
	ent.Kind = bent.Kind
	ft := bent.FallThrough()
	switch bent.Kind {
	case isa.CondDirect:
		// Write the prediction straight into the entry: Prediction carries
		// per-table provider metadata and staging it in a local would cost
		// an extra struct copy on the hottest path.
		ent.Dir = e.dir.Predict(bent.BranchPC())
		e.dir.Shift(ent.Dir.Taken)
		ent.HasDir = true
		ent.DirPC = bent.BranchPC()
		ent.PredTaken = ent.Dir.Taken
		if ent.Dir.Taken {
			ent.PredNext = bent.Target
		} else {
			ent.PredNext = ft
		}
	case isa.UncondDirect:
		ent.PredTaken = true
		ent.PredNext = bent.Target
	case isa.CallDirect:
		ent.PredTaken = true
		ent.PredNext = bent.Target
		e.ras.Push(ft)
	case isa.Return:
		ent.PredTaken = true
		if tgt, ok := e.ras.Pop(); ok {
			ent.PredNext = tgt
		} else {
			ent.PredNext = ft // cold RAS: wander sequentially
		}
	case isa.IndirectJump, isa.IndirectCall:
		ent.PredTaken = true
		if bent.Target != 0 {
			ent.PredNext = bent.Target
		} else {
			ent.PredNext = ft // target unknown until first resolution
		}
		if bent.Kind == isa.IndirectCall {
			e.ras.Push(ft)
		}
	default:
		// A degenerate entry (e.g. synthesised beyond the text segment):
		// treat as sequential.
		ent.PredTaken = false
		ent.PredNext = ft
	}
}

// sequentialEntry builds the BTB-miss pseudo-block: fetch the underlying
// block's bytes but assume straight-line flow (the terminator is unknown to
// the front end until it resolves in the back end).
func (e *Engine) sequentialEntry(ent *Entry) {
	ent.Kind = isa.None
	ent.PredTaken = false
	if blk, ok := e.img.BlockContaining(ent.Start); ok {
		n := blk.NInstr - uint16((ent.Start-blk.Addr)/isa.InstrBytes)
		ent.NInstr = n
	} else {
		// Alignment padding or beyond text (wrong path): one line's worth.
		lineEnd := isa.BlockAddr(ent.Start) + isa.BlockBytes
		ent.NInstr = uint16((lineEnd - ent.Start) / isa.InstrBytes)
	}
	ent.PredNext = ent.Start + isa.Addr(ent.NInstr)*isa.InstrBytes
}

// verify consumes one oracle step and determines the entry's resolution.
func (e *Engine) verify(ent *Entry) {
	step := e.orc.Next()
	if step.Block.Addr != ent.Start && ent.Kind != isa.None {
		panic(fmt.Sprintf("frontend: speculative walker desynchronised: spec %#x oracle %#x",
			ent.Start, step.Block.Addr))
	}
	ent.OnCorrectPath = true
	ent.ActualTaken = step.Taken
	ent.ActualNext = step.Target
	ent.ActualKind = step.Block.Term.Kind

	if ent.Kind == isa.None {
		// BTB-miss discovery: at resolve, train the BTB with the real entry.
		ent.TrainBTB = true
		ent.BTBEntry = btb.Entry{
			Start:  step.Block.Addr,
			NInstr: step.Block.NInstr,
			Kind:   step.Block.Term.Kind,
		}
		switch step.Block.Term.Kind {
		case isa.CondDirect, isa.UncondDirect, isa.CallDirect:
			ent.BTBEntry.Target = step.Block.Term.Target
		case isa.IndirectJump, isa.IndirectCall:
			ent.BTBEntry.Target = step.Target // learn last target
		}
	} else if ent.Kind.IsIndirect() && !ent.Kind.IsReturn() {
		ent.TrainTarget = true
	}

	if ent.PredNext != ent.ActualNext {
		ent.Mispredicted = true
		switch {
		case ent.Kind == isa.None:
			ent.SquashClass = SquashBTBMiss
		case ent.Kind.IsConditional() && ent.PredTaken != ent.ActualTaken:
			ent.SquashClass = SquashDirection
		default:
			ent.SquashClass = SquashTarget
		}
		e.pendingSquash = true
		e.wrongPath = true
	}
}

// ---------------------------------------------------------------------------
// FDIP prefetch engine: one probe per newly-queued cache line.

func (e *Engine) enqueueProbes(ent *Entry) {
	first, last := ent.Lines()
	for l := first; l <= last; l++ {
		if e.haveLastQueue && l == e.lastQueuedLn {
			continue
		}
		e.lastQueuedLn = l
		e.haveLastQueue = true
		e.probeQ.push(l)
	}
}

func (e *Engine) probeStep(now int64) {
	issued := 0
	for issued < e.cfg.PrefetchProbesPerCycle && e.probeQ.len() > 0 {
		line := e.probeQ.popFront()
		if !e.hier.Present(line, now) && !e.hier.InFlight(line) {
			e.hier.Prefetch(line, now)
		}
		issued++
	}
}

// ---------------------------------------------------------------------------
// Fetch engine: demand-fetch the FTQ head, FetchWidth instrs per cycle.

func (e *Engine) fetchStep(now int64) {
	if e.cur == nil {
		if e.ftq.len() == 0 {
			e.stats.FTQEmptyCycles++
			return
		}
		if e.be.InFlightInstrs() >= e.cfg.ROBSize {
			e.stats.ROBStallCycles++
			return
		}
		e.cur = e.ftq.popFront()
		e.curInstr = 0
		e.haveLine = false
	}

	ent := e.cur
	pc := ent.Start + isa.Addr(e.curInstr)*isa.InstrBytes
	line := cache.LineOf(pc)
	if !e.haveLine || e.curLine != line {
		e.curLine = line
		e.haveLine = true
		e.lineIsFirst = e.curInstr == 0
		e.lineReady = e.demand(line, now, ent)
	}

	if now < e.lineReady {
		if ent.OnCorrectPath {
			e.stats.FetchStallCycles++
			e.stats.StallByClass[e.lineClass(ent)]++
			e.stats.StallByLevel[e.lineLevel]++
		}
		return
	}

	// Consume up to FetchWidth instructions within the current line.
	lineEndPC := (isa.BlockAddr(pc) + isa.BlockBytes - pc) / isa.InstrBytes
	n := int(lineEndPC)
	if w := e.cfg.FetchWidth; n > w {
		n = w
	}
	if rem := int(ent.NInstr) - e.curInstr; n > rem {
		n = rem
	}
	e.curInstr += n

	if e.curInstr >= int(ent.NInstr) {
		ent.FetchDone = now
		e.be.Push(backend.Group{
			ID:        ent.ID,
			NInstr:    int(ent.NInstr),
			FetchDone: now,
			WrongPath: !ent.OnCorrectPath,
		})
		e.inflight.push(ent)
		e.cur = nil
		e.haveLine = false
	}
}

// demand performs the line access, with pipelined-hit semantics: accesses
// satisfied within the L1 hit latency do not stall the fetch pipeline.
func (e *Engine) demand(line uint64, now int64, ent *Entry) int64 {
	if ent.OnCorrectPath {
		e.stats.DemandLineAccesses++
	}
	if e.perfectL1 {
		e.lineLevel = cache.HitL1
		return now
	}
	ready, lvl := e.hier.Demand(line, now)
	e.lineLevel = lvl
	miss := lvl == cache.HitLLC || lvl == cache.HitMemory
	if miss && ent.OnCorrectPath {
		e.stats.DemandLineMisses++
		e.stats.DemandMissByClass[e.lineClass(ent)]++
	}
	if e.pf != nil {
		e.pf.OnDemand(line, miss, e.lineClass(ent), now)
	}
	if ready <= now+int64(e.cfg.L1ILatency) {
		return now // pipelined hit
	}
	return ready
}

// lineClass attributes the current line: the entry's own class for its
// first line, sequential for subsequent lines of the same block.
func (e *Engine) lineClass(ent *Entry) isa.DiscontinuityClass {
	if e.lineIsFirst {
		return ent.EntryClass
	}
	return isa.Sequential
}
