package frontend

import (
	"testing"
	"testing/quick"

	"boomsim/internal/bpu"
	"boomsim/internal/btb"
	"boomsim/internal/cache"
	"boomsim/internal/config"
	"boomsim/internal/isa"
	"boomsim/internal/workload"
)

// These tests pin down cross-cutting engine invariants that the behavioural
// tests in engine_test.go do not directly observe.

func TestInstructionConservation(t *testing.T) {
	// Retired instructions must exactly track the oracle: run the engine and
	// an independent walker for the same block count and compare totals.
	img := testImage(t, 128)
	e := buildEngine(t, img, engCfg{cfg: config.Default(), probes: true})
	st := e.Run(200_000, 40_000_000)
	if st.RetiredBlocks == 0 {
		t.Fatal("no blocks retired")
	}
	// Instructions per block must average what the oracle produces: rerun
	// the oracle for the same number of blocks.
	w := workload.NewWalker(img, 7)
	var instrs uint64
	for i := uint64(0); i < st.RetiredBlocks; i++ {
		instrs += uint64(w.Next().Block.NInstr)
	}
	next := uint64(w.Next().Block.NInstr)
	// The measurement window can end mid-block: fully-retired blocks bound
	// the retired instruction count from below, plus at most one partial.
	if st.RetiredInstrs < instrs || st.RetiredInstrs >= instrs+next {
		t.Fatalf("engine retired %d instructions, oracle says [%d, %d) for %d(+1) blocks",
			st.RetiredInstrs, instrs, instrs+next, st.RetiredBlocks)
	}
}

func TestSquashesMatchOracleDivergence(t *testing.T) {
	// With a perfect L1 and perfect BTB there must be no BTB-miss squashes,
	// and direction squashes must equal the TAGE-vs-oracle disagreement on
	// the correct path — we bound-check it against plausible rates.
	img := testImage(t, 128)
	e := buildEngine(t, img, engCfg{
		cfg:     config.Default(),
		perfect: true,
		miss:    &perfectMiss{img: img},
		depth:   4,
	})
	st := e.Run(200_000, 40_000_000)
	if st.Squashes[SquashBTBMiss] != 0 {
		t.Fatal("BTB-miss squashes with a perfect BTB")
	}
	dirKI := st.SquashesPerKI(SquashDirection)
	if dirKI < 1 || dirKI > 40 {
		t.Fatalf("direction squash rate %.2f/KI implausible", dirKI)
	}
}

func TestStallLevelAttributionSums(t *testing.T) {
	img := testImage(t, 256)
	e := buildEngine(t, img, engCfg{cfg: config.Default(), depth: 4})
	st := e.Run(200_000, 40_000_000)
	var sum uint64
	for _, v := range st.StallByLevel {
		sum += v
	}
	if sum != st.FetchStallCycles {
		t.Fatalf("level attribution %d != total %d", sum, st.FetchStallCycles)
	}
	if st.StallByLevel[cache.HitL1] != 0 {
		t.Fatal("L1 hits cannot stall")
	}
}

func TestFTQNeverExceedsDepth(t *testing.T) {
	img := testImage(t, 128)
	for _, depth := range []int{1, 4, 32} {
		e := buildEngine(t, img, engCfg{cfg: config.Default(), probes: true, depth: depth})
		for i := 0; i < 100_000; i++ {
			e.Tick()
			if e.ftq.len() > depth {
				t.Fatalf("FTQ grew to %d entries (depth %d)", e.ftq.len(), depth)
			}
		}
	}
}

func TestInflightRingBounded(t *testing.T) {
	// The in-flight entry ring must not leak: it is bounded by the ROB plus
	// the resolution window.
	img := testImage(t, 128)
	e := buildEngine(t, img, engCfg{cfg: config.Default(), probes: true})
	for i := 0; i < 300_000; i++ {
		e.Tick()
		if e.inflight.len() > e.cfg.ROBSize {
			t.Fatalf("inflight ring %d exceeds ROB %d at cycle %d",
				e.inflight.len(), e.cfg.ROBSize, i)
		}
	}
}

func TestROBLimitRespected(t *testing.T) {
	img := testImage(t, 128)
	cfg := config.Default()
	cfg.ROBSize = 16
	e := buildEngine(t, img, engCfg{cfg: cfg, perfect: true, depth: 8})
	st := e.Run(50_000, 20_000_000)
	if st.ROBStallCycles == 0 {
		t.Fatal("a 16-entry window must throttle a perfect front end")
	}
}

func TestRedirectResetsToOraclePath(t *testing.T) {
	// After any number of squashes the engine must remain synchronised with
	// the oracle (the verify() panic would fire otherwise); run a
	// mispredict-heavy configuration to exercise recovery hard.
	img := testImage(t, 128)
	e := buildEngine(t, img, engCfg{cfg: config.Default().WithBTB(64), depth: 4})
	st := e.Run(150_000, 40_000_000)
	if st.TotalSquashes() < 100 {
		t.Fatal("expected a squash-heavy run")
	}
	if st.RetiredInstrs < 150_000 {
		t.Fatal("engine lost sync with the oracle")
	}
}

func TestNeverTakenEngineStillCorrect(t *testing.T) {
	// The never-taken predictor squashes on every taken conditional; the
	// engine must still retire the exact oracle stream.
	img := testImage(t, 128)
	cfg := config.Default()
	e := New(Options{
		Config:     cfg,
		Image:      img,
		Oracle:     workload.NewWalker(img, 7),
		Hierarchy:  cache.NewHierarchy(cfg, 0),
		Direction:  bpu.NewNeverTaken(),
		BTB:        btb.New(cfg.BTBEntries, cfg.BTBAssoc),
		FDIPProbes: true,
	})
	st := e.Run(100_000, 40_000_000)
	if st.RetiredInstrs < 100_000 {
		t.Fatal("never-taken engine failed to make progress")
	}
	if st.Squashes[SquashDirection] == 0 {
		t.Fatal("never-taken must squash on taken branches")
	}
}

func TestEntryLines(t *testing.T) {
	if err := quick.Check(func(rawStart uint32, n uint8) bool {
		start := isa.Addr(rawStart) &^ 3
		ni := uint16(n%32) + 1
		e := Entry{Start: start, NInstr: ni}
		first, last := e.Lines()
		return first == cache.LineOf(start) &&
			last == cache.LineOf(start+isa.Addr(ni-1)*isa.InstrBytes) &&
			first <= last
	}, nil); err != nil {
		t.Fatal(err)
	}
}
