package frontend

import "boomsim/internal/cache"

// Epoch is one flight-recorder sample: the deltas of the timeline-relevant
// counters over a window of StartCycle..StartCycle+Cycles (cycles counted
// from recorder attach). Consecutive epochs tile the recorded window
// exactly — every cycle lands in exactly one epoch, and summing a counter
// across epochs reproduces the run total for that window.
//
// The field set mirrors the public boomsim.Epoch byte for byte (the public
// type is a direct conversion of this one); change them together.
type Epoch struct {
	StartCycle       int64
	Cycles           int64
	Instructions     uint64
	FetchStallCycles uint64
	FTQEmptyCycles   uint64
	BTBMisses        uint64
	Squashes         uint64
	Prefetches       uint64
	PrefetchHits     uint64
	DemandMisses     uint64
}

// DefaultMaxEpochs bounds a recorder when the caller does not: a 100M-cycle
// run at the documented 10K-cycle epoch is 10K epochs, so 64K covers every
// realistic window while capping recorder memory at a few MB.
const DefaultMaxEpochs = 65536

// Recorder is the simulator flight recorder: it snapshots the engine's
// cheap value-type counters at every epoch boundary and stores the deltas.
// All storage is preallocated at attach, so a recording run still makes
// zero steady-state allocations; when no recorder is attached the engine's
// only cost is one nil pointer compare per cycle (the alloc-regression
// test pins the recorder-off hot path).
type Recorder struct {
	every     int64
	next      int64 // absolute engine cycle of the next boundary
	base      int64 // absolute engine cycle at attach
	lastCycle int64 // absolute engine cycle of the last captured boundary
	prevStats Stats
	prevHier  cache.HierarchyStats
	epochs    []Epoch
	dropped   uint64
}

// StartFlightRecorder attaches a recorder sampling every `every` cycles
// into at most maxEpochs epochs (DefaultMaxEpochs when <= 0); further
// epochs are counted as dropped. Attach after the warmup boundary
// (ResetStats) so the first epoch starts at measured-cycle zero. A second
// call replaces the previous recorder.
func (e *Engine) StartFlightRecorder(every int64, maxEpochs int) {
	if every <= 0 {
		e.rec = nil
		return
	}
	if maxEpochs <= 0 {
		maxEpochs = DefaultMaxEpochs
	}
	e.rec = &Recorder{
		every:     every,
		base:      e.cycle,
		next:      e.cycle + every,
		lastCycle: e.cycle,
		prevStats: e.Stats(),
		prevHier:  e.hier.Stats(),
		epochs:    make([]Epoch, 0, maxEpochs),
	}
}

// StopFlightRecorder flushes the final (possibly partial) epoch, detaches
// the recorder, and returns the recorded epochs. It returns nil when no
// recorder was attached.
func (e *Engine) StopFlightRecorder() []Epoch {
	r := e.rec
	if r == nil {
		return nil
	}
	e.rec = nil
	if e.cycle > r.lastCycle {
		r.capture(e)
	}
	return r.epochs
}

// FlightRecorderDropped reports epochs discarded at the recorder bound
// (0 when no recorder was ever attached).
func (e *Engine) FlightRecorderDropped() uint64 {
	if e.rec == nil {
		return 0
	}
	return e.rec.dropped
}

// roll captures the epoch ending at the current cycle and advances the
// boundary. Called from the Run loop exactly when e.cycle reaches next, so
// epochs tile the window without drift even across chunked Run calls.
func (r *Recorder) roll(e *Engine) {
	r.capture(e)
	r.next += r.every
}

func (r *Recorder) capture(e *Engine) {
	if len(r.epochs) == cap(r.epochs) {
		r.dropped++
		// Keep the delta baseline moving so a later resize (never in-tree)
		// or the dropped count stays meaningful.
		r.prevStats = e.Stats()
		r.prevHier = e.hier.Stats()
		r.lastCycle = e.cycle
		return
	}
	s := e.Stats()
	h := e.hier.Stats()
	r.epochs = append(r.epochs, Epoch{
		StartCycle:       r.lastCycle - r.base,
		Cycles:           e.cycle - r.lastCycle,
		Instructions:     s.RetiredInstrs - r.prevStats.RetiredInstrs,
		FetchStallCycles: s.FetchStallCycles - r.prevStats.FetchStallCycles,
		FTQEmptyCycles:   s.FTQEmptyCycles - r.prevStats.FTQEmptyCycles,
		BTBMisses:        s.BTBMisses - r.prevStats.BTBMisses,
		Squashes:         s.TotalSquashes() - r.prevStats.TotalSquashes(),
		Prefetches:       h.Prefetches - r.prevHier.Prefetches,
		PrefetchHits:     h.DemandPFBHits - r.prevHier.DemandPFBHits,
		DemandMisses:     s.DemandLineMisses - r.prevStats.DemandLineMisses,
	})
	r.prevStats = s
	r.prevHier = h
	r.lastCycle = e.cycle
}
