package frontend

import (
	"fmt"

	"boomsim/internal/stats"
)

// SquashClass categorises pipeline squashes the way Figure 7 does: branch
// direction/target mispredictions versus BTB misses.
type SquashClass uint8

const (
	// SquashNone marks entries that resolve cleanly.
	SquashNone SquashClass = iota
	// SquashDirection is a conditional branch predicted the wrong way.
	SquashDirection
	// SquashTarget is a branch whose taken-target was wrong (indirect
	// branches, returns with corrupted RAS, or unknown targets).
	SquashTarget
	// SquashBTBMiss is a taken branch the front end never saw because its
	// BTB entry was missing (the class Boomerang eliminates).
	SquashBTBMiss
	numSquashClasses
)

func (c SquashClass) String() string {
	switch c {
	case SquashNone:
		return "none"
	case SquashDirection:
		return "direction"
	case SquashTarget:
		return "target"
	case SquashBTBMiss:
		return "btb-miss"
	}
	return fmt.Sprintf("SquashClass(%d)", uint8(c))
}

// Stats aggregates everything the paper's figures need from one simulation.
type Stats struct {
	// Cycles is simulated time.
	Cycles int64
	// RetiredInstrs and RetiredBlocks count correct-path commits.
	RetiredInstrs uint64
	RetiredBlocks uint64

	// Squashes counts pipeline flushes by cause.
	Squashes [4]uint64

	// BTBLookups and BTBMisses count BPU-side basic-block lookups
	// (correct-path prediction attempts only).
	BTBLookups uint64
	BTBMisses  uint64

	// FetchStallCycles counts cycles the fetch engine sat waiting for
	// instruction lines on the correct path — the paper's front-end stall
	// metric. StallByClass attributes them to the discontinuity class of
	// the stalled line (Figure 3).
	FetchStallCycles uint64
	StallByClass     [3]uint64

	// FTQEmptyCycles counts fetch cycles with no FTQ entry available
	// (squash refill, BPU stalls). ROBStallCycles counts fetch throttled by
	// a full window. BPUMissStallCycles counts BPU cycles stalled on
	// Boomerang BTB-miss resolution.
	FTQEmptyCycles     uint64
	ROBStallCycles     uint64
	BPUMissStallCycles uint64

	// DemandLineAccesses/DemandLineMisses count fetch-engine line traffic;
	// misses are attributed by class like stalls.
	DemandLineAccesses uint64
	DemandLineMisses   uint64
	DemandMissByClass  [3]uint64

	// WrongPathEntries counts FTQ entries fetched past a misprediction.
	WrongPathEntries uint64

	// StallByLevel attributes correct-path fetch stall cycles to where the
	// stalled line was found (index: cache.Level) — separates raw misses
	// from partially-covered in-flight prefetches.
	StallByLevel [5]uint64

	// BTBMissProbes counts Boomerang BTB miss probes issued.
	BTBMissProbes uint64
}

// IPC returns retired instructions per cycle.
func (s *Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.RetiredInstrs) / float64(s.Cycles)
}

// TotalSquashes sums all squash causes.
func (s *Stats) TotalSquashes() uint64 {
	return s.Squashes[SquashDirection] + s.Squashes[SquashTarget] + s.Squashes[SquashBTBMiss]
}

// SquashesPerKI returns squashes per 1000 retired instructions (Figure 7's
// unit) for one cause.
func (s *Stats) SquashesPerKI(c SquashClass) float64 {
	if s.RetiredInstrs == 0 {
		return 0
	}
	return float64(s.Squashes[c]) * 1000 / float64(s.RetiredInstrs)
}

// MispredictSquashesPerKI groups direction+target squashes (Figure 7's
// "Branch Direction/Target Misprediction" bar).
func (s *Stats) MispredictSquashesPerKI() float64 {
	if s.RetiredInstrs == 0 {
		return 0
	}
	return float64(s.Squashes[SquashDirection]+s.Squashes[SquashTarget]) * 1000 /
		float64(s.RetiredInstrs)
}

// BTBMissRate returns the BPU lookup miss rate.
func (s *Stats) BTBMissRate() float64 {
	if s.BTBLookups == 0 {
		return 0
	}
	return float64(s.BTBMisses) / float64(s.BTBLookups)
}

// StallFraction returns front-end stall cycles as a fraction of all cycles.
func (s *Stats) StallFraction() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.FetchStallCycles) / float64(s.Cycles)
}

// Publish registers every engine counter under r — the "frontend" namespace
// of the per-component statistics registry.
func (s *Stats) Publish(r *stats.Registry) {
	r.SetInt("cycles", s.Cycles)
	r.SetUint("retired_instrs", s.RetiredInstrs)
	r.SetUint("retired_blocks", s.RetiredBlocks)
	r.Set("ipc", s.IPC())

	r.SetUint("squashes.direction", s.Squashes[SquashDirection])
	r.SetUint("squashes.target", s.Squashes[SquashTarget])
	r.SetUint("squashes.btb_miss", s.Squashes[SquashBTBMiss])

	r.SetUint("fetch_stall_cycles", s.FetchStallCycles)
	r.SetUint("stall_class.sequential", s.StallByClass[0])
	r.SetUint("stall_class.conditional", s.StallByClass[1])
	r.SetUint("stall_class.unconditional", s.StallByClass[2])
	r.SetUint("stall_level.l1", s.StallByLevel[0])
	r.SetUint("stall_level.pfb", s.StallByLevel[1])
	r.SetUint("stall_level.inflight", s.StallByLevel[2])
	r.SetUint("stall_level.llc", s.StallByLevel[3])
	r.SetUint("stall_level.mem", s.StallByLevel[4])

	r.SetUint("ftq_empty_cycles", s.FTQEmptyCycles)
	r.SetUint("rob_stall_cycles", s.ROBStallCycles)

	r.SetUint("demand_line_accesses", s.DemandLineAccesses)
	r.SetUint("demand_line_misses", s.DemandLineMisses)
	r.SetUint("demand_miss_class.sequential", s.DemandMissByClass[0])
	r.SetUint("demand_miss_class.conditional", s.DemandMissByClass[1])
	r.SetUint("demand_miss_class.unconditional", s.DemandMissByClass[2])
	r.SetUint("wrong_path_entries", s.WrongPathEntries)
}

// PublishStats registers the engine's counters under reg's "frontend"
// namespace and the branch-prediction-unit view — lookup traffic, miss
// stalls, the direction predictor's own counters — under "bpu". Every
// component the engine owns reports into its own namespace, so consumers of
// the registry (the public Result, boomsimd responses, Prometheus, the
// CLIs) see the full anatomy of a run instead of a hand-picked subset.
func (e *Engine) PublishStats(reg *stats.Registry) {
	st := e.Stats()
	st.Publish(reg.Namespace("frontend"))

	bpuNS := reg.Namespace("bpu")
	bpuNS.SetUint("btb_lookups", st.BTBLookups)
	bpuNS.SetUint("btb_misses", st.BTBMisses)
	bpuNS.Set("btb_miss_rate", st.BTBMissRate())
	bpuNS.SetUint("miss_stall_cycles", st.BPUMissStallCycles)
	bpuNS.SetUint("btb_miss_probes", st.BTBMissProbes)
	if e.dir != nil {
		bpuNS.SetUint("dir_storage_bits", uint64(e.dir.StorageBits()))
		if p, ok := e.dir.(stats.Publisher); ok {
			p.PublishStats(bpuNS.Namespace(e.dir.Name()))
		}
	}
	if e.ras != nil {
		bpuNS.SetUint("ras_depth", uint64(e.ras.Depth()))
	}
}
