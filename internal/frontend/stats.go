package frontend

import "fmt"

// SquashClass categorises pipeline squashes the way Figure 7 does: branch
// direction/target mispredictions versus BTB misses.
type SquashClass uint8

const (
	// SquashNone marks entries that resolve cleanly.
	SquashNone SquashClass = iota
	// SquashDirection is a conditional branch predicted the wrong way.
	SquashDirection
	// SquashTarget is a branch whose taken-target was wrong (indirect
	// branches, returns with corrupted RAS, or unknown targets).
	SquashTarget
	// SquashBTBMiss is a taken branch the front end never saw because its
	// BTB entry was missing (the class Boomerang eliminates).
	SquashBTBMiss
	numSquashClasses
)

func (c SquashClass) String() string {
	switch c {
	case SquashNone:
		return "none"
	case SquashDirection:
		return "direction"
	case SquashTarget:
		return "target"
	case SquashBTBMiss:
		return "btb-miss"
	}
	return fmt.Sprintf("SquashClass(%d)", uint8(c))
}

// Stats aggregates everything the paper's figures need from one simulation.
type Stats struct {
	// Cycles is simulated time.
	Cycles int64
	// RetiredInstrs and RetiredBlocks count correct-path commits.
	RetiredInstrs uint64
	RetiredBlocks uint64

	// Squashes counts pipeline flushes by cause.
	Squashes [4]uint64

	// BTBLookups and BTBMisses count BPU-side basic-block lookups
	// (correct-path prediction attempts only).
	BTBLookups uint64
	BTBMisses  uint64

	// FetchStallCycles counts cycles the fetch engine sat waiting for
	// instruction lines on the correct path — the paper's front-end stall
	// metric. StallByClass attributes them to the discontinuity class of
	// the stalled line (Figure 3).
	FetchStallCycles uint64
	StallByClass     [3]uint64

	// FTQEmptyCycles counts fetch cycles with no FTQ entry available
	// (squash refill, BPU stalls). ROBStallCycles counts fetch throttled by
	// a full window. BPUMissStallCycles counts BPU cycles stalled on
	// Boomerang BTB-miss resolution.
	FTQEmptyCycles     uint64
	ROBStallCycles     uint64
	BPUMissStallCycles uint64

	// DemandLineAccesses/DemandLineMisses count fetch-engine line traffic;
	// misses are attributed by class like stalls.
	DemandLineAccesses uint64
	DemandLineMisses   uint64
	DemandMissByClass  [3]uint64

	// WrongPathEntries counts FTQ entries fetched past a misprediction.
	WrongPathEntries uint64

	// StallByLevel attributes correct-path fetch stall cycles to where the
	// stalled line was found (index: cache.Level) — separates raw misses
	// from partially-covered in-flight prefetches.
	StallByLevel [5]uint64

	// BTBMissProbes counts Boomerang BTB miss probes issued.
	BTBMissProbes uint64
}

// IPC returns retired instructions per cycle.
func (s *Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.RetiredInstrs) / float64(s.Cycles)
}

// TotalSquashes sums all squash causes.
func (s *Stats) TotalSquashes() uint64 {
	return s.Squashes[SquashDirection] + s.Squashes[SquashTarget] + s.Squashes[SquashBTBMiss]
}

// SquashesPerKI returns squashes per 1000 retired instructions (Figure 7's
// unit) for one cause.
func (s *Stats) SquashesPerKI(c SquashClass) float64 {
	if s.RetiredInstrs == 0 {
		return 0
	}
	return float64(s.Squashes[c]) * 1000 / float64(s.RetiredInstrs)
}

// MispredictSquashesPerKI groups direction+target squashes (Figure 7's
// "Branch Direction/Target Misprediction" bar).
func (s *Stats) MispredictSquashesPerKI() float64 {
	if s.RetiredInstrs == 0 {
		return 0
	}
	return float64(s.Squashes[SquashDirection]+s.Squashes[SquashTarget]) * 1000 /
		float64(s.RetiredInstrs)
}

// BTBMissRate returns the BPU lookup miss rate.
func (s *Stats) BTBMissRate() float64 {
	if s.BTBLookups == 0 {
		return 0
	}
	return float64(s.BTBMisses) / float64(s.BTBLookups)
}

// StallFraction returns front-end stall cycles as a fraction of all cycles.
func (s *Stats) StallFraction() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.FetchStallCycles) / float64(s.Cycles)
}
