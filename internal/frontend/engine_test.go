package frontend

import (
	"testing"

	"boomsim/internal/bpu"
	"boomsim/internal/btb"
	"boomsim/internal/cache"
	"boomsim/internal/config"
	"boomsim/internal/isa"
	"boomsim/internal/program"
	"boomsim/internal/workload"
)

func testImage(t testing.TB, kb int) *program.Image {
	t.Helper()
	g := program.DefaultGenParams()
	g.FootprintKB = kb
	g.Layers = 4
	img, err := program.Generate(g)
	if err != nil {
		t.Fatal(err)
	}
	return img
}

type engCfg struct {
	cfg     config.Core
	probes  bool
	perfect bool
	miss    MissHandler
	pf      Prefetcher
	depth   int
}

func buildEngine(t testing.TB, img *program.Image, ec engCfg) *Engine {
	t.Helper()
	return New(Options{
		Config:         ec.cfg,
		Image:          img,
		Oracle:         workload.NewWalker(img, 7),
		Hierarchy:      cache.NewHierarchy(ec.cfg, 0),
		Direction:      bpu.NewTAGE(ec.cfg.TAGEStorageKB),
		BTB:            btb.New(ec.cfg.BTBEntries, ec.cfg.BTBAssoc),
		MissHandler:    ec.miss,
		Prefetcher:     ec.pf,
		FDIPProbes:     ec.probes,
		PerfectL1:      ec.perfect,
		DecoupledDepth: ec.depth,
	})
}

const testInstrs = 300000

func TestBaselineRuns(t *testing.T) {
	img := testImage(t, 256)
	e := buildEngine(t, img, engCfg{cfg: config.Default(), depth: 4})
	st := e.Run(testInstrs, 50_000_000)
	if st.RetiredInstrs < testInstrs {
		t.Fatalf("retired only %d instructions", st.RetiredInstrs)
	}
	if ipc := st.IPC(); ipc <= 0.05 || ipc > 3 {
		t.Fatalf("implausible IPC %v", ipc)
	}
	if st.TotalSquashes() == 0 {
		t.Fatal("a 2K BTB + real predictor must squash sometimes")
	}
	if st.FetchStallCycles == 0 {
		t.Fatal("a 256KB-footprint workload must stall the 32KB L1-I")
	}
}

func TestDeterminism(t *testing.T) {
	img := testImage(t, 128)
	a := buildEngine(t, img, engCfg{cfg: config.Default(), probes: true})
	b := buildEngine(t, img, engCfg{cfg: config.Default(), probes: true})
	sa := a.Run(100000, 20_000_000)
	sb := b.Run(100000, 20_000_000)
	if sa.Cycles != sb.Cycles || sa.TotalSquashes() != sb.TotalSquashes() ||
		sa.FetchStallCycles != sb.FetchStallCycles {
		t.Fatalf("nondeterministic: %+v vs %+v", sa, sb)
	}
}

func TestFDIPReducesStalls(t *testing.T) {
	img := testImage(t, 256)
	base := buildEngine(t, img, engCfg{cfg: config.Default(), depth: 4})
	fdip := buildEngine(t, img, engCfg{cfg: config.Default(), probes: true})
	sb := base.Run(testInstrs, 50_000_000)
	sf := fdip.Run(testInstrs, 50_000_000)
	if sf.FetchStallCycles >= sb.FetchStallCycles {
		t.Fatalf("FDIP stalls %d >= baseline %d", sf.FetchStallCycles, sb.FetchStallCycles)
	}
	cov := 1 - float64(sf.FetchStallCycles)/float64(sb.FetchStallCycles)
	if cov < 0.2 {
		t.Fatalf("FDIP stall coverage only %.2f", cov)
	}
	if sf.IPC() <= sb.IPC() {
		t.Fatalf("FDIP IPC %.3f <= baseline %.3f", sf.IPC(), sb.IPC())
	}
}

func TestPerfectL1HasNoFetchStalls(t *testing.T) {
	img := testImage(t, 128)
	e := buildEngine(t, img, engCfg{cfg: config.Default(), perfect: true, depth: 4})
	st := e.Run(100000, 20_000_000)
	if st.FetchStallCycles != 0 {
		t.Fatalf("perfect L1 stalled %d cycles", st.FetchStallCycles)
	}
}

func TestPerfectL1Faster(t *testing.T) {
	img := testImage(t, 256)
	base := buildEngine(t, img, engCfg{cfg: config.Default(), depth: 4})
	perf := buildEngine(t, img, engCfg{cfg: config.Default(), perfect: true, depth: 4})
	sb := base.Run(testInstrs, 50_000_000)
	sp := perf.Run(testInstrs, 50_000_000)
	if sp.IPC() <= sb.IPC() {
		t.Fatalf("perfect L1 IPC %.3f <= baseline %.3f", sp.IPC(), sb.IPC())
	}
}

// perfectMiss synthesises correct entries straight from the image — the
// Figure 1 "Perfect BTB" model.
type perfectMiss struct{ img *program.Image }

func (p *perfectMiss) Handle(pc isa.Addr, now int64) (btb.Entry, int64, bool) {
	blk, ok := p.img.BlockContaining(pc)
	if !ok {
		return btb.Entry{}, now, false
	}
	e := btb.Entry{
		Start:  pc,
		NInstr: blk.NInstr - uint16((pc-blk.Addr)/isa.InstrBytes),
		Kind:   blk.Term.Kind,
	}
	switch blk.Term.Kind {
	case isa.CondDirect, isa.UncondDirect, isa.CallDirect:
		e.Target = blk.Term.Target
	}
	return e, now, true
}

func TestPerfectBTBEliminatesBTBSquashes(t *testing.T) {
	img := testImage(t, 256)
	e := buildEngine(t, img, engCfg{
		cfg:   config.Default(),
		miss:  &perfectMiss{img: img},
		depth: 4,
	})
	st := e.Run(testInstrs, 50_000_000)
	if st.Squashes[SquashBTBMiss] != 0 {
		t.Fatalf("perfect BTB still had %d BTB-miss squashes", st.Squashes[SquashBTBMiss])
	}
	if st.Squashes[SquashDirection] == 0 {
		t.Fatal("direction mispredicts should remain with a perfect BTB")
	}
}

func TestBTBMissSquashesHappenWithTinyBTB(t *testing.T) {
	img := testImage(t, 256)
	cfg := config.Default().WithBTB(64)
	e := buildEngine(t, img, engCfg{cfg: cfg, depth: 4})
	st := e.Run(testInstrs, 50_000_000)
	if st.Squashes[SquashBTBMiss] == 0 {
		t.Fatal("a 64-entry BTB must cause BTB-miss squashes")
	}
	if st.BTBMissRate() < 0.05 {
		t.Fatalf("BTB miss rate %.3f suspiciously low for 64 entries", st.BTBMissRate())
	}
}

func TestBiggerBTBFewerMissSquashes(t *testing.T) {
	img := testImage(t, 256)
	small := buildEngine(t, img, engCfg{cfg: config.Default().WithBTB(256), depth: 4})
	big := buildEngine(t, img, engCfg{cfg: config.Default().WithBTB(32768), depth: 4})
	ss := small.Run(testInstrs, 50_000_000)
	sb := big.Run(testInstrs, 50_000_000)
	if sb.SquashesPerKI(SquashBTBMiss) >= ss.SquashesPerKI(SquashBTBMiss) {
		t.Fatalf("32K BTB squash rate %.2f >= 256-entry %.2f",
			sb.SquashesPerKI(SquashBTBMiss), ss.SquashesPerKI(SquashBTBMiss))
	}
}

func TestResetStatsKeepsState(t *testing.T) {
	img := testImage(t, 128)
	e := buildEngine(t, img, engCfg{cfg: config.Default(), probes: true})
	e.Run(100000, 20_000_000)
	warm := e.Stats()
	e.ResetStats()
	st := e.Stats()
	if st.RetiredInstrs != 0 || st.Cycles != 0 {
		t.Fatal("ResetStats did not zero counters")
	}
	st = e.Run(100000, 20_000_000)
	// The warmed run should not be drastically slower than the cold run.
	if st.IPC() < warm.IPC()*0.8 {
		t.Fatalf("post-warmup IPC %.3f collapsed vs %.3f", st.IPC(), warm.IPC())
	}
}

func TestStallClassAttribution(t *testing.T) {
	img := testImage(t, 256)
	e := buildEngine(t, img, engCfg{cfg: config.Default(), depth: 4})
	st := e.Run(testInstrs, 50_000_000)
	var sum uint64
	for _, v := range st.StallByClass {
		sum += v
	}
	if sum != st.FetchStallCycles {
		t.Fatalf("class attribution %d != total stalls %d", sum, st.FetchStallCycles)
	}
	if st.StallByClass[isa.Sequential] == 0 {
		t.Fatal("sequential misses should dominate server workloads")
	}
}

func TestLatencySensitivity(t *testing.T) {
	img := testImage(t, 256)
	fast := buildEngine(t, img, engCfg{cfg: config.Default().WithLLCLatency(5), depth: 4})
	slow := buildEngine(t, img, engCfg{cfg: config.Default().WithLLCLatency(70), depth: 4})
	sf := fast.Run(testInstrs, 80_000_000)
	ss := slow.Run(testInstrs, 80_000_000)
	if sf.IPC() <= ss.IPC() {
		t.Fatalf("lower LLC latency must raise IPC: %.3f vs %.3f", sf.IPC(), ss.IPC())
	}
}

func TestWrongPathActivityExists(t *testing.T) {
	img := testImage(t, 256)
	e := buildEngine(t, img, engCfg{cfg: config.Default(), probes: true})
	st := e.Run(testInstrs, 50_000_000)
	if st.WrongPathEntries == 0 {
		t.Fatal("decoupled front end must fetch down wrong paths")
	}
}

func TestSquashClassString(t *testing.T) {
	for c := SquashNone; c < numSquashClasses; c++ {
		if c.String() == "" {
			t.Fatal("empty squash class name")
		}
	}
}

func BenchmarkEngineFDIP(b *testing.B) {
	img := testImage(b, 512)
	e := buildEngine(b, img, engCfg{cfg: config.Default(), probes: true})
	b.ResetTimer()
	e.Run(uint64(b.N), 0)
}
