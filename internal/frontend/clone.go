package frontend

import (
	"boomsim/internal/bpu"
	"boomsim/internal/btb"
	"boomsim/internal/cache"
	"boomsim/internal/program"
)

// CloneDeps carries the already-cloned components an engine clone is wired
// to. The engine does not know how to duplicate a scheme's hierarchy, BTB,
// direction predictor, miss handler or prefetcher — the scheme layer clones
// those (they may be shared with structures the engine never sees, like a
// fill hook) and hands them in here.
type CloneDeps struct {
	Hierarchy   *cache.Hierarchy
	Direction   bpu.Direction
	BTB         *btb.BTB
	MissHandler MissHandler
	Prefetcher  Prefetcher
}

// MissPolicy returns the engine's BTB miss handler (nil for conventional
// operation). The scheme layer uses it to decide how to duplicate the
// handler when cloning an instance.
func (e *Engine) MissPolicy() MissHandler { return e.miss }

// Clone returns an independent deep copy of the engine mid-execution: the
// clone and the original produce identical cycle-by-cycle behaviour from
// this point while sharing no mutable state. It returns nil when the engine
// is not clonable — today that means an oracle other than the deterministic
// program walker (e.g. a trace replayer), whose position cannot be forked.
//
// The entry pool is the delicate part: every *Entry in the FTQ, the
// in-flight window, the freelist and the fetch engine's hands points into
// entrySlab, so the copy rebuilds the slab and remaps each pointer to the
// corresponding new element (heap-fallback entries, reachable only outside
// the simulated configurations, are copied individually through the same
// map). The immutable image is shared.
func (e *Engine) Clone(d CloneDeps) *Engine {
	var orc Oracle
	switch o := e.orc.(type) {
	case *program.Walker:
		orc = o.Clone()
	default:
		return nil
	}
	c := *e
	c.orc = orc
	c.hier = d.Hierarchy
	c.dir = d.Direction
	c.btbs = d.BTB
	c.ras = e.ras.Clone()
	c.miss = d.MissHandler
	c.fillObs = nil
	if obs, ok := d.MissHandler.(BTBFillObserver); ok {
		c.fillObs = obs
	}
	c.pf = d.Prefetcher
	c.be = e.be.Clone()
	// A flight recorder observes one engine; a fork starts unobserved (its
	// run attaches its own recorder if asked).
	c.rec = nil

	c.entrySlab = make([]Entry, len(e.entrySlab))
	copy(c.entrySlab, e.entrySlab)
	remap := make(map[*Entry]*Entry, len(e.entrySlab))
	for i := range e.entrySlab {
		remap[&e.entrySlab[i]] = &c.entrySlab[i]
	}
	mapEntry := func(old *Entry) *Entry {
		if old == nil {
			return nil
		}
		if ne, ok := remap[old]; ok {
			return ne
		}
		ne := new(Entry)
		*ne = *old
		remap[old] = ne
		return ne
	}
	c.entryFree = make([]*Entry, len(e.entryFree), cap(e.entryFree))
	for i, p := range e.entryFree {
		c.entryFree[i] = mapEntry(p)
	}
	c.ftq = e.ftq.clone(mapEntry)
	c.inflight = e.inflight.clone(mapEntry)
	c.cur = mapEntry(e.cur)
	c.probeQ.buf = append([]uint64(nil), e.probeQ.buf...)
	return &c
}

// clone copies the ring, remapping the pointers of its live window; stale
// slots (recycled entries outside [head, head+n)) stay nil in the copy.
func (r *entryRing) clone(mapEntry func(*Entry) *Entry) entryRing {
	c := *r
	c.buf = make([]*Entry, len(r.buf))
	for i := 0; i < r.n; i++ {
		idx := (r.head + i) & r.mask
		c.buf[idx] = mapEntry(r.buf[idx])
	}
	return c
}
