// Clone support: deep copies of BTB-side state so a warmed instance can be
// forked and advanced without perturbing the original (see internal/sim's
// warm-state arena).
package btb

import "boomsim/internal/isa"

// Clone returns an independent deep copy of the BTB: same entries, LRU state
// and counters, no shared storage.
func (b *BTB) Clone() *BTB {
	n := *b
	n.ways = append(make([]btbWay, 0, len(b.ways)), b.ways...)
	return &n
}

// Clone returns an independent deep copy of the buffer.
func (p *PrefetchBuffer) Clone() *PrefetchBuffer {
	c := *p
	c.entries = append(make([]Entry, 0, cap(p.entries)), p.entries...)
	return &c
}

// Clone returns an independent copy of the predecoder. The immutable image
// is shared; the scratch buffer (only live within a single Append* call) is
// left to regrow; the decoded-lines counter carries over so cloned runs
// report the same traffic totals a fresh warm would.
func (d *Predecoder) Clone() *Predecoder {
	return &Predecoder{img: d.img, LinesDecoded: d.LinesDecoded}
}

// Clone returns an independent deep copy of the hierarchical miss handler.
// l1 must be the clone of the first level the original preloads into — the
// caller owns that structure (the engine's BTB) and its copy.
func (t *TwoLevel) Clone(l1 *BTB) *TwoLevel {
	c := *t
	c.l1 = l1
	c.l2 = t.l2.Clone()
	if t.ring != nil {
		c.ring = append([]isa.Addr(nil), t.ring...)
		c.index = make(map[isa.Addr]int, len(t.index))
		for k, v := range t.index {
			c.index[k] = v
		}
	}
	return &c
}
