package btb

import (
	"testing"

	"boomsim/internal/isa"
)

func tlEntry(start isa.Addr) Entry {
	return Entry{Start: start, NInstr: 4, Kind: isa.CondDirect, Target: start + 256}
}

func TestTwoLevelMissThenFill(t *testing.T) {
	l1 := New(64, 4)
	tl := NewTwoLevel(BulkPreloadConfig(), l1)
	if _, _, ok := tl.Handle(0x1000, 0); ok {
		t.Fatal("empty L2 resolved a miss")
	}
	if tl.Stats().L2Misses != 1 {
		t.Fatal("L2 miss not counted")
	}
	// Discovery fill trains the L2.
	tl.OnBTBFill(tlEntry(0x1000), 1)
	e, resume, ok := tl.Handle(0x1000, 10)
	if !ok || e.Start != 0x1000 {
		t.Fatal("L2 did not serve the trained entry")
	}
	if resume != 10+BulkPreloadConfig().L2Latency {
		t.Fatalf("L2 latency not charged: resume=%d", resume)
	}
}

func TestTwoLevelSpatialPreload(t *testing.T) {
	l1 := New(64, 4)
	tl := NewTwoLevel(BulkPreloadConfig(), l1)
	// Train three entries in the same neighbourhood.
	tl.OnBTBFill(tlEntry(0x1000), 1)
	tl.OnBTBFill(tlEntry(0x1010), 2)
	tl.OnBTBFill(tlEntry(0x1040), 3)
	// A miss on the first must preload its neighbours into the L1.
	tl.Handle(0x1000, 10)
	if !l1.Contains(0x1010) || !l1.Contains(0x1040) {
		t.Fatal("spatial neighbours not preloaded")
	}
	if tl.Stats().Preloaded < 2 {
		t.Fatalf("preload count %d", tl.Stats().Preloaded)
	}
}

func TestTwoLevelTemporalPreload(t *testing.T) {
	l1 := New(64, 4)
	tl := NewTwoLevel(PhantomBTBConfig(30), l1)
	// Fill order: A then B then C (far apart, so spatial would not help).
	a, b, c := isa.Addr(0x1000), isa.Addr(0x8000), isa.Addr(0x20000)
	tl.OnBTBFill(tlEntry(a), 1)
	tl.OnBTBFill(tlEntry(b), 2)
	tl.OnBTBFill(tlEntry(c), 3)
	_, resume, ok := tl.Handle(a, 10)
	if !ok {
		t.Fatal("temporal L2 missed a trained entry")
	}
	if resume != 10+30 {
		t.Fatalf("LLC latency not charged: resume=%d", resume)
	}
	if !l1.Contains(b) || !l1.Contains(c) {
		t.Fatal("temporal group not preloaded")
	}
}

func TestTwoLevelTemporalRingWraps(t *testing.T) {
	l1 := New(64, 4)
	cfg := PhantomBTBConfig(30)
	cfg.L2Entries = 2048
	tl := NewTwoLevel(cfg, l1)
	for i := 0; i < 3000; i++ {
		tl.OnBTBFill(tlEntry(isa.Addr(0x1000+i*16)), int64(i))
	}
	if tl.Stats().GroupWraps == 0 {
		t.Fatal("ring never wrapped")
	}
	// A stale index entry (overwritten ring slot) must not preload garbage.
	tl.Handle(0x1000, 5000) // first fill, long since overwritten
}

func TestTwoLevelStorage(t *testing.T) {
	tl := NewTwoLevel(BulkPreloadConfig(), New(64, 4))
	if kb := tl.StorageKB(); kb < 100 {
		t.Fatalf("16K-entry L2 BTB storage %d KB implausibly small (paper: >200KB class)", kb)
	}
}
