package btb

import (
	"boomsim/internal/isa"
	"boomsim/internal/stats"
)

// TwoLevelConfig sizes a hierarchical BTB (Section II-C's alternatives to
// Boomerang: the IBM z-series "Bulk Preload" design and PhantomBTB).
type TwoLevelConfig struct {
	// L2Entries/L2Assoc size the large second-level BTB (Bulk Preload uses
	// 24K entries; the paper cites >200KB of storage for such designs).
	L2Entries int
	L2Assoc   int
	// L2Latency is the second-level access time exposed on every L1-BTB
	// miss — the structural drawback the paper highlights.
	L2Latency int64
	// PreloadLines is the spatial-preload reach: on an L2 hit, entries for
	// blocks starting within this many cache lines around the miss are
	// moved up (Bulk Preload's spatially-proximate group).
	PreloadLines int
	// Temporal selects PhantomBTB-style operation: entries are grouped in
	// fill order ("temporal groups" virtualised into the LLC) and a miss
	// preloads the group that followed the entry last time.
	Temporal bool
	// TemporalGroup is the group size for temporal preloading.
	TemporalGroup int
}

// BulkPreloadConfig returns the z-series-style configuration: a 16K-entry
// L2 BTB at a 4-cycle access, preloading a +/-1-line spatial neighbourhood.
func BulkPreloadConfig() TwoLevelConfig {
	return TwoLevelConfig{
		L2Entries:    16384,
		L2Assoc:      4,
		L2Latency:    4,
		PreloadLines: 1,
	}
}

// PhantomBTBConfig returns the PhantomBTB-style configuration: the second
// level is virtualised into the LLC (pay the LLC round trip per miss) and
// preloads temporal groups of entries.
func PhantomBTBConfig(llcRoundTrip int64) TwoLevelConfig {
	return TwoLevelConfig{
		L2Entries:     16384,
		L2Assoc:       4,
		L2Latency:     llcRoundTrip,
		Temporal:      true,
		TemporalGroup: 6,
	}
}

// TwoLevelStats counts hierarchical-BTB activity.
type TwoLevelStats struct {
	L2Hits     uint64
	L2Misses   uint64
	Preloaded  uint64
	FillsSeen  uint64
	GroupWraps uint64
}

// TwoLevel is a hierarchical BTB miss handler: on a first-level miss it
// probes a large second level, paying its access latency, and bulk-preloads
// neighbouring entries into the first level. It implements the front-end
// engine's MissHandler contract and observes BTB fills to keep the second
// level (and, for PhantomBTB, the temporal grouping) trained.
type TwoLevel struct {
	cfg TwoLevelConfig
	l1  *BTB
	l2  *BTB

	// Temporal grouping state (PhantomBTB): a ring of recent fill starts
	// and an index from entry start to its ring position.
	ring    []isa.Addr
	ringPos int
	index   map[isa.Addr]int

	stats TwoLevelStats
}

// NewTwoLevel builds the handler. l1 is the core's first-level BTB (the one
// the engine owns); preloads are inserted into it directly.
func NewTwoLevel(cfg TwoLevelConfig, l1 *BTB) *TwoLevel {
	t := &TwoLevel{
		cfg: cfg,
		l1:  l1,
		l2:  New(cfg.L2Entries, cfg.L2Assoc),
	}
	if cfg.Temporal {
		n := cfg.L2Entries
		if n < 1024 {
			n = 1024
		}
		t.ring = make([]isa.Addr, n)
		t.index = make(map[isa.Addr]int, n)
	}
	return t
}

// Stats returns activity counters.
func (t *TwoLevel) Stats() TwoLevelStats { return t.stats }

// PublishStats registers the hierarchical BTB's counters under its
// namespace of the per-component statistics registry.
func (t *TwoLevel) PublishStats(r *stats.Registry) {
	r.SetUint("l2_hits", t.stats.L2Hits)
	r.SetUint("l2_misses", t.stats.L2Misses)
	r.SetUint("preloaded", t.stats.Preloaded)
	r.SetUint("fills_seen", t.stats.FillsSeen)
	r.SetUint("group_wraps", t.stats.GroupWraps)
}

// L2 exposes the second level (tests).
func (t *TwoLevel) L2() *BTB { return t.l2 }

// Handle implements the MissHandler contract: probe the L2 BTB, paying its
// access latency; on a hit, preload the neighbourhood and return the entry.
func (t *TwoLevel) Handle(pc isa.Addr, now int64) (Entry, int64, bool) {
	resume := now + t.cfg.L2Latency
	e, ok := t.l2.Lookup(pc, now)
	if !ok {
		t.stats.L2Misses++
		// Conventional fall-through; the discovery at resolve time will
		// train both levels through OnBTBFill.
		return Entry{}, now, false
	}
	t.stats.L2Hits++
	if t.cfg.Temporal {
		t.preloadTemporal(pc, now)
	} else {
		t.preloadSpatial(pc, now)
	}
	return e, resume, true
}

// preloadSpatial moves L2 entries whose blocks start within PreloadLines
// cache lines of pc into the L1 BTB (Bulk Preload).
func (t *TwoLevel) preloadSpatial(pc isa.Addr, now int64) {
	span := isa.Addr(t.cfg.PreloadLines) * isa.BlockBytes
	lo := isa.BlockAddr(pc) - span
	hi := isa.BlockAddr(pc) + span + isa.BlockBytes
	for addr := lo; addr < hi; addr += isa.InstrBytes {
		if addr == pc {
			continue
		}
		if e, ok := t.l2.Lookup(addr, now); ok {
			t.l1.Insert(e, now)
			t.stats.Preloaded++
		}
	}
}

// preloadTemporal moves the fill-order successors of pc's previous
// occurrence into the L1 BTB (PhantomBTB's temporal groups).
func (t *TwoLevel) preloadTemporal(pc isa.Addr, now int64) {
	pos, ok := t.index[pc]
	if !ok || t.ring[pos] != pc {
		return
	}
	for i := 1; i <= t.cfg.TemporalGroup; i++ {
		p := (pos + i) % len(t.ring)
		start := t.ring[p]
		if start == 0 {
			break
		}
		if e, ok := t.l2.Lookup(start, now); ok {
			t.l1.Insert(e, now)
			t.stats.Preloaded++
		}
	}
}

// OnBTBFill implements the engine's fill-observer hook: every entry the
// front end learns (discovery at resolve, or Boomerang-style insert) also
// trains the second level and, for PhantomBTB, appends to the temporal
// grouping ring.
func (t *TwoLevel) OnBTBFill(e Entry, now int64) {
	t.stats.FillsSeen++
	t.l2.Insert(e, now)
	if !t.cfg.Temporal {
		return
	}
	t.ring[t.ringPos] = e.Start
	t.index[e.Start] = t.ringPos
	t.ringPos++
	if t.ringPos == len(t.ring) {
		t.ringPos = 0
		t.stats.GroupWraps++
	}
}

// StorageKB reports the second level's dedicated storage (~84 bits/entry,
// as in the paper's BTB accounting). PhantomBTB virtualises this into the
// LLC, but the metadata volume is the same.
func (t *TwoLevel) StorageKB() int {
	return t.cfg.L2Entries * 84 / 8 / 1024
}
