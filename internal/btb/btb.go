// Package btb implements the basic-block-oriented branch target buffer the
// paper builds Boomerang on (after Yeh & Patt), the FIFO BTB prefetch buffer,
// and the cache-line predecoder that extracts branches from fetched blocks.
//
// A basic-block BTB stores one entry per basic block, keyed by the block's
// start address; each entry names the block's terminating branch (size, kind,
// target). Its crucial property (Section IV-B of the paper): a lookup that
// misses is a *genuine* BTB miss — unlike an instruction-indexed BTB, it can
// never be confused with "this instruction is not a branch".
package btb

import (
	"boomsim/internal/isa"
	"boomsim/internal/program"
	"boomsim/internal/stats"
)

// Entry is one basic-block BTB entry.
type Entry struct {
	// Start is the basic block start address (the tag).
	Start isa.Addr
	// NInstr is the block length in instructions, terminator included.
	NInstr uint16
	// Kind classifies the terminating branch.
	Kind isa.BranchKind
	// Target is the predicted taken-target. For direct branches it comes
	// from the encoding; for indirect branches it is the last observed
	// target (zero until first resolution).
	Target isa.Addr
}

// FallThrough returns the address after the block.
func (e *Entry) FallThrough() isa.Addr {
	return e.Start + isa.Addr(e.NInstr)*isa.InstrBytes
}

// BranchPC returns the terminator address.
func (e *Entry) BranchPC() isa.Addr {
	return e.Start + isa.Addr(e.NInstr-1)*isa.InstrBytes
}

type btbWay struct {
	entry   Entry
	valid   bool
	lastUse int64
}

// BTB is a set-associative basic-block BTB with LRU replacement. Ways live
// in one flat backing array indexed arithmetically — set lookup is pure
// address math, with no per-set slice header to chase on the hot path.
type BTB struct {
	ways    []btbWay
	assoc   int
	setMask uint64
	hits    uint64
	misses  uint64
}

// New builds a BTB with ~entries capacity at the given associativity (set
// count rounds down to a power of two).
func New(entries, assoc int) *BTB {
	if entries <= 0 || assoc <= 0 {
		panic("btb: non-positive geometry")
	}
	nsets := entries / assoc
	if nsets == 0 {
		nsets = 1
	}
	p := 1
	for p*2 <= nsets {
		p *= 2
	}
	nsets = p
	return &BTB{ways: make([]btbWay, nsets*assoc), assoc: assoc, setMask: uint64(nsets - 1)}
}

// Entries returns total capacity.
func (b *BTB) Entries() int { return len(b.ways) }

func (b *BTB) set(start isa.Addr) []btbWay {
	base := int((uint64(start)>>2)&b.setMask) * b.assoc
	return b.ways[base : base+b.assoc]
}

// Lookup returns the entry for the basic block starting at start. A miss is
// a genuine BTB miss (basic-block organisation).
func (b *BTB) Lookup(start isa.Addr, now int64) (Entry, bool) {
	s := b.set(start)
	for i := range s {
		if s[i].valid && s[i].entry.Start == start {
			s[i].lastUse = now
			b.hits++
			return s[i].entry, true
		}
	}
	b.misses++
	return Entry{}, false
}

// Contains probes without LRU or counter side effects.
func (b *BTB) Contains(start isa.Addr) bool {
	s := b.set(start)
	for i := range s {
		if s[i].valid && s[i].entry.Start == start {
			return true
		}
	}
	return false
}

// Insert installs or refreshes an entry, evicting LRU on conflict.
func (b *BTB) Insert(e Entry, now int64) {
	s := b.set(e.Start)
	lru := 0
	for i := range s {
		if s[i].valid && s[i].entry.Start == e.Start {
			// Refresh: keep a learned indirect target if the incoming entry
			// (e.g. from a predecoder) does not know one.
			if e.Target == 0 && s[i].entry.Target != 0 {
				e.Target = s[i].entry.Target
			}
			s[i].entry = e
			s[i].lastUse = now
			return
		}
		if !s[i].valid {
			s[i] = btbWay{entry: e, valid: true, lastUse: now}
			return
		}
		if s[i].lastUse < s[lru].lastUse {
			lru = i
		}
	}
	s[lru] = btbWay{entry: e, valid: true, lastUse: now}
}

// UpdateTarget trains the stored target of an existing entry (indirect
// branch resolution). It is a no-op if the entry is gone.
func (b *BTB) UpdateTarget(start, target isa.Addr, now int64) {
	s := b.set(start)
	for i := range s {
		if s[i].valid && s[i].entry.Start == start {
			s[i].entry.Target = target
			s[i].lastUse = now
			return
		}
	}
}

// Stats returns lifetime Lookup hit/miss counts.
func (b *BTB) Stats() (hits, misses uint64) { return b.hits, b.misses }

// PublishStats registers the BTB's counters under its namespace of the
// per-component statistics registry.
func (b *BTB) PublishStats(r *stats.Registry) {
	r.SetUint("hits", b.hits)
	r.SetUint("misses", b.misses)
	r.SetUint("entries", uint64(b.Entries()))
}

// PrefetchBuffer is Boomerang's small FIFO buffer holding predecoded BTB
// entries. It is probed in parallel with the BTB; a hit moves the entry into
// the BTB (the caller does the move); entries are replaced first-in
// first-out.
type PrefetchBuffer struct {
	entries  []Entry
	capacity int
	hits     uint64
	inserted uint64
}

// NewPrefetchBuffer builds a buffer with the given capacity (32 in the
// paper's evaluated design). A zero capacity buffer accepts nothing.
func NewPrefetchBuffer(capacity int) *PrefetchBuffer {
	return &PrefetchBuffer{capacity: capacity}
}

// Insert appends an entry, evicting the oldest when full. Duplicate starts
// replace in place.
func (p *PrefetchBuffer) Insert(e Entry) {
	if p.capacity == 0 {
		return
	}
	for i := range p.entries {
		if p.entries[i].Start == e.Start {
			p.entries[i] = e
			return
		}
	}
	if len(p.entries) >= p.capacity {
		copy(p.entries, p.entries[1:])
		p.entries = p.entries[:len(p.entries)-1]
	}
	p.entries = append(p.entries, e)
	p.inserted++
}

// Take removes and returns the entry for start, if buffered.
func (p *PrefetchBuffer) Take(start isa.Addr) (Entry, bool) {
	for i := range p.entries {
		if p.entries[i].Start == start {
			e := p.entries[i]
			p.entries = append(p.entries[:i], p.entries[i+1:]...)
			p.hits++
			return e, true
		}
	}
	return Entry{}, false
}

// Len returns the current occupancy.
func (p *PrefetchBuffer) Len() int { return len(p.entries) }

// Stats returns hit and insert counts.
func (p *PrefetchBuffer) Stats() (hits, inserted uint64) { return p.hits, p.inserted }

// Predecoder extracts branch metadata from fetched cache lines. In hardware
// this decodes raw instruction bytes; here the static image plays the role
// of the bytes. Crucially it only exposes what an encoding carries: direct
// targets yes, indirect targets no.
//
// The Append* methods write into caller-provided buffers so per-miss
// predecode can reuse scratch storage; DecodeLine/ResolveMiss are
// allocating conveniences layered on top of them.
type Predecoder struct {
	img *program.Image
	// brScratch backs AppendLine's intermediate branch list.
	brScratch []program.PredecodedBranch
	// LinesDecoded counts predecoded cache lines (energy/traffic proxy).
	LinesDecoded uint64
}

// PublishStats registers the predecoder's counters under its namespace of
// the per-component statistics registry.
func (d *Predecoder) PublishStats(r *stats.Registry) {
	r.SetUint("lines_decoded", d.LinesDecoded)
}

// NewPredecoder wraps an image.
func NewPredecoder(img *program.Image) *Predecoder {
	return &Predecoder{img: img}
}

// AppendLine appends the BTB entries for every branch in the cache line
// holding lineAddr, in address order, and returns the extended slice.
func (d *Predecoder) AppendLine(dst []Entry, lineAddr isa.Addr) []Entry {
	d.LinesDecoded++
	d.brScratch = d.img.AppendBranchesInLine(d.brScratch[:0], lineAddr)
	for _, br := range d.brScratch {
		dst = append(dst, Entry{
			Start:  br.BlockStart,
			NInstr: br.NInstr,
			Kind:   br.Kind,
			Target: br.Target,
		})
	}
	return dst
}

// DecodeLine is AppendLine into a fresh slice.
func (d *Predecoder) DecodeLine(lineAddr isa.Addr) []Entry {
	return d.AppendLine(make([]Entry, 0, 4), lineAddr)
}

// AppendResolveMiss implements the paper's BTB-miss resolution scan (Section
// IV-B): starting from the missing entry's start address, find the first
// terminating branch at or after it, probing successive sequential lines as
// needed. It returns the synthesised entry for the missing block, the other
// entries predecoded along the way appended to extras (for the BTB prefetch
// buffer), and the cache lines that had to be fetched appended to lines (the
// caller charges their latency). maxLines bounds the scan. Both slices grow
// from whatever the caller passes in, so a reused scratch buffer makes the
// scan allocation-free at steady state.
func (d *Predecoder) AppendResolveMiss(start isa.Addr, maxLines int, extras []Entry, lines []isa.Addr) (Entry, []Entry, []isa.Addr) {
	line := isa.BlockAddr(start)
	for n := 0; n < maxLines; n++ {
		lines = append(lines, line)
		d.LinesDecoded++
		d.brScratch = d.img.AppendBranchesInLine(d.brScratch[:0], line)
		var missing Entry
		found := false
		for _, br := range d.brScratch {
			e := Entry{
				Start:  br.BlockStart,
				NInstr: br.NInstr,
				Kind:   br.Kind,
				Target: br.Target,
			}
			pc := br.PC
			switch {
			case pc < start:
				extras = append(extras, e)
			case !found:
				// First branch at/after start terminates the missing block.
				missing = Entry{
					Start:  start,
					NInstr: uint16((pc-start)/isa.InstrBytes) + 1,
					Kind:   e.Kind,
					Target: e.Target,
				}
				found = true
			default:
				extras = append(extras, e)
			}
		}
		if found {
			return missing, extras, lines
		}
		line += isa.BlockBytes
	}
	// Scan bound exceeded (start points into a data region or past the
	// text segment on a wild wrong path). Return a degenerate sequential
	// entry so the front end can make progress.
	return Entry{}, extras, lines
}

// ResolveMiss is AppendResolveMiss into fresh slices.
func (d *Predecoder) ResolveMiss(start isa.Addr, maxLines int) (missing Entry, extras []Entry, lines []isa.Addr) {
	return d.AppendResolveMiss(start, maxLines, nil, nil)
}
