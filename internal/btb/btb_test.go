package btb

import (
	"testing"
	"testing/quick"

	"boomsim/internal/isa"
	"boomsim/internal/program"
)

func mkEntry(start isa.Addr) Entry {
	return Entry{Start: start, NInstr: 4, Kind: isa.CondDirect, Target: start + 64}
}

func TestLookupMissIsGenuine(t *testing.T) {
	b := New(2048, 4)
	if _, ok := b.Lookup(0x1000, 0); ok {
		t.Fatal("hit in empty BTB")
	}
	hits, misses := b.Stats()
	if hits != 0 || misses != 1 {
		t.Fatalf("stats %d/%d", hits, misses)
	}
}

func TestInsertLookup(t *testing.T) {
	b := New(2048, 4)
	e := mkEntry(0x1000)
	b.Insert(e, 1)
	got, ok := b.Lookup(0x1000, 2)
	if !ok || got != e {
		t.Fatalf("lookup = %+v ok=%v", got, ok)
	}
}

func TestEntryGeometry(t *testing.T) {
	e := Entry{Start: 0x1000, NInstr: 5}
	if e.FallThrough() != 0x1000+20 {
		t.Fatal("FallThrough wrong")
	}
	if e.BranchPC() != 0x1000+16 {
		t.Fatal("BranchPC wrong")
	}
}

func TestLRUReplacement(t *testing.T) {
	b := New(8, 2) // 4 sets x 2 ways
	sets := uint64(b.Entries() / 2)
	stride := isa.Addr(sets * 4) // same set
	a1, a2, a3 := isa.Addr(0x1000), isa.Addr(0x1000)+stride, isa.Addr(0x1000)+2*stride
	b.Insert(mkEntry(a1), 1)
	b.Insert(mkEntry(a2), 2)
	b.Lookup(a1, 3) // refresh a1
	b.Insert(mkEntry(a3), 4)
	if b.Contains(a2) {
		t.Fatal("LRU should have evicted a2")
	}
	if !b.Contains(a1) || !b.Contains(a3) {
		t.Fatal("wrong entries evicted")
	}
}

func TestInsertPreservesLearnedIndirectTarget(t *testing.T) {
	b := New(64, 4)
	// Learned entry with a target.
	b.Insert(Entry{Start: 0x100, NInstr: 3, Kind: isa.IndirectCall, Target: 0x9000}, 1)
	// Predecoder refill carries no target.
	b.Insert(Entry{Start: 0x100, NInstr: 3, Kind: isa.IndirectCall, Target: 0}, 2)
	e, ok := b.Lookup(0x100, 3)
	if !ok || e.Target != 0x9000 {
		t.Fatalf("learned target lost: %+v", e)
	}
}

func TestUpdateTarget(t *testing.T) {
	b := New(64, 4)
	b.Insert(Entry{Start: 0x200, NInstr: 2, Kind: isa.IndirectJump}, 1)
	b.UpdateTarget(0x200, 0x5555, 2)
	e, _ := b.Lookup(0x200, 3)
	if e.Target != 0x5555 {
		t.Fatal("UpdateTarget did not stick")
	}
	b.UpdateTarget(0x9999, 1, 4) // absent: no-op, no panic
}

func TestBTBProperty(t *testing.T) {
	b := New(1024, 4)
	now := int64(0)
	if err := quick.Check(func(raw uint32) bool {
		now++
		start := isa.Addr(raw) &^ 3
		b.Insert(mkEntry(start), now)
		e, ok := b.Lookup(start, now)
		return ok && e.Start == start
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPrefetchBufferFIFO(t *testing.T) {
	p := NewPrefetchBuffer(2)
	p.Insert(mkEntry(0x100))
	p.Insert(mkEntry(0x200))
	p.Insert(mkEntry(0x300)) // evicts 0x100
	if _, ok := p.Take(0x100); ok {
		t.Fatal("oldest entry should have been evicted")
	}
	if _, ok := p.Take(0x200); !ok {
		t.Fatal("0x200 missing")
	}
	if _, ok := p.Take(0x300); !ok {
		t.Fatal("0x300 missing")
	}
	if p.Len() != 0 {
		t.Fatal("Take should remove entries")
	}
}

func TestPrefetchBufferDedup(t *testing.T) {
	p := NewPrefetchBuffer(4)
	p.Insert(mkEntry(0x100))
	e2 := mkEntry(0x100)
	e2.Target = 0x7777
	p.Insert(e2)
	if p.Len() != 1 {
		t.Fatal("duplicate starts must replace, not append")
	}
	got, _ := p.Take(0x100)
	if got.Target != 0x7777 {
		t.Fatal("replacement did not update entry")
	}
}

func TestPrefetchBufferZeroCapacity(t *testing.T) {
	p := NewPrefetchBuffer(0)
	p.Insert(mkEntry(0x100))
	if p.Len() != 0 {
		t.Fatal("zero-capacity buffer stored an entry")
	}
}

func testImage(t testing.TB) *program.Image {
	t.Helper()
	g := program.DefaultGenParams()
	g.FootprintKB = 128
	g.Layers = 4
	img, err := program.Generate(g)
	if err != nil {
		t.Fatal(err)
	}
	return img
}

func TestDecodeLineMatchesImage(t *testing.T) {
	img := testImage(t)
	d := NewPredecoder(img)
	for i := 0; i < len(img.Blocks); i += 37 {
		b := &img.Blocks[i]
		line := isa.BlockAddr(b.BranchPC())
		found := false
		for _, e := range d.DecodeLine(line) {
			if e.Start == b.Addr {
				found = true
				if e.NInstr != b.NInstr || e.Kind != b.Term.Kind {
					t.Fatalf("entry mismatch for block %#x", b.Addr)
				}
				if b.Term.Kind.IsIndirect() && e.Target != 0 {
					t.Fatalf("predecoder leaked indirect target at %#x", b.Addr)
				}
			}
		}
		if !found {
			t.Fatalf("block %#x terminator not decoded", b.Addr)
		}
	}
	if d.LinesDecoded == 0 {
		t.Fatal("decode counter not advancing")
	}
}

func TestResolveMissAtBlockStart(t *testing.T) {
	img := testImage(t)
	d := NewPredecoder(img)
	for i := 0; i < len(img.Blocks); i += 11 {
		b := &img.Blocks[i]
		missing, _, lines := d.ResolveMiss(b.Addr, 16)
		if missing.Start != b.Addr || missing.NInstr != b.NInstr || missing.Kind != b.Term.Kind {
			t.Fatalf("ResolveMiss(%#x) = %+v, want block %+v", b.Addr, missing, b)
		}
		if len(lines) == 0 {
			t.Fatal("no lines probed")
		}
		// The scan must cover exactly the lines from start to the branch.
		wantLines := int(isa.BlockIndex(b.BranchPC())-isa.BlockIndex(b.Addr)) + 1
		if len(lines) != wantLines {
			t.Fatalf("probed %d lines, want %d", len(lines), wantLines)
		}
	}
}

func TestResolveMissMidBlock(t *testing.T) {
	// A wrong-path miss can land mid-block; the synthesised entry must end
	// at the block's terminator.
	img := testImage(t)
	d := NewPredecoder(img)
	for i := 0; i < len(img.Blocks); i += 53 {
		b := &img.Blocks[i]
		if b.NInstr < 3 {
			continue
		}
		start := b.Addr + 2*isa.InstrBytes
		missing, _, _ := d.ResolveMiss(start, 16)
		if missing.Start != start {
			t.Fatalf("entry start %#x, want %#x", missing.Start, start)
		}
		if missing.BranchPC() != b.BranchPC() {
			t.Fatalf("entry branch %#x, want %#x", missing.BranchPC(), b.BranchPC())
		}
	}
}

func TestResolveMissExtrasExcludeTerminator(t *testing.T) {
	img := testImage(t)
	d := NewPredecoder(img)
	for i := 0; i < len(img.Blocks); i += 17 {
		b := &img.Blocks[i]
		missing, extras, _ := d.ResolveMiss(b.Addr, 16)
		for _, e := range extras {
			if e.BranchPC() == missing.BranchPC() {
				t.Fatal("terminating branch duplicated into extras")
			}
		}
	}
}

func TestResolveMissBeyondText(t *testing.T) {
	img := testImage(t)
	d := NewPredecoder(img)
	missing, _, lines := d.ResolveMiss(img.Limit+4096, 4)
	if missing.Kind.IsBranch() {
		t.Fatal("found a branch beyond the text segment")
	}
	if len(lines) != 4 {
		t.Fatalf("scan should exhaust maxLines, probed %d", len(lines))
	}
}

func BenchmarkBTBLookup(b *testing.B) {
	btb := New(2048, 4)
	for i := 0; i < 2048; i++ {
		btb.Insert(mkEntry(isa.Addr(0x1000+i*16)), int64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		btb.Lookup(isa.Addr(0x1000+(i%2048)*16), int64(i))
	}
}

func BenchmarkResolveMiss(b *testing.B) {
	g := program.DefaultGenParams()
	g.FootprintKB = 256
	img, err := program.Generate(g)
	if err != nil {
		b.Fatal(err)
	}
	d := NewPredecoder(img)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blk := &img.Blocks[i%len(img.Blocks)]
		d.ResolveMiss(blk.Addr, 8)
	}
}
