// Package uncore models the on-chip interconnect latency seen by one core's
// LLC accesses. The paper evaluates two organisations: a 4x4 2D mesh at 3
// cycles/hop (Table I, ~30-cycle average round trip) and a wide crossbar
// (Figure 11, ~18-cycle round trip). We model average round-trip latency —
// the quantity the paper sweeps — rather than per-message routing.
package uncore

// Interconnect computes the average LLC round-trip latency for a topology.
type Interconnect interface {
	// RoundTrip is the average request+response latency in cycles,
	// including LLC bank access time.
	RoundTrip() int
	// Name identifies the topology.
	Name() string
}

// Mesh is a dim x dim 2D mesh of tiles, each with a core and an LLC bank
// (static NUCA: a line's bank is determined by its address, so the average
// distance is the mean Manhattan distance to a uniformly random bank).
type Mesh struct {
	// Dim is the mesh dimension (4 for 16 tiles).
	Dim int
	// HopLatency is per-hop link+router traversal time.
	HopLatency int
	// BankLatency is the LLC bank access time.
	BankLatency int
	// CtrlOverhead is the fixed cache-controller/NI overhead per request.
	CtrlOverhead int
}

// DefaultMesh returns the Table I mesh: 4x4, 3 cycles/hop, tuned so the
// average round trip is 30 cycles.
func DefaultMesh() Mesh {
	return Mesh{Dim: 4, HopLatency: 3, BankLatency: 5, CtrlOverhead: 4}
}

// AvgHops returns the mean one-way hop count from a uniformly random source
// tile to a uniformly random destination tile, plus one ejection hop.
func (m Mesh) AvgHops() float64 {
	return 2*avgLineDistance(m.Dim) + 1
}

// avgLineDistance is E[|i-j|] for i,j uniform on [0,dim).
func avgLineDistance(dim int) float64 {
	sum := 0
	for i := 0; i < dim; i++ {
		for j := 0; j < dim; j++ {
			d := i - j
			if d < 0 {
				d = -d
			}
			sum += d
		}
	}
	return float64(sum) / float64(dim*dim)
}

// RoundTrip implements Interconnect.
func (m Mesh) RoundTrip() int {
	oneWay := m.AvgHops() * float64(m.HopLatency)
	return int(2*oneWay+0.5) + m.BankLatency + m.CtrlOverhead
}

// Name implements Interconnect.
func (m Mesh) Name() string { return "mesh" }

// Crossbar is a single-stage wide crossbar: constant traversal latency
// regardless of source/destination.
type Crossbar struct {
	// TraversalLatency is the one-way crossbar traversal time.
	TraversalLatency int
	// BankLatency is the LLC bank access time.
	BankLatency int
	// CtrlOverhead is the fixed controller/NI overhead.
	CtrlOverhead int
}

// DefaultCrossbar returns the Figure 11 crossbar with an 18-cycle round trip.
func DefaultCrossbar() Crossbar {
	return Crossbar{TraversalLatency: 4, BankLatency: 5, CtrlOverhead: 5}
}

// RoundTrip implements Interconnect.
func (c Crossbar) RoundTrip() int {
	return 2*c.TraversalLatency + c.BankLatency + c.CtrlOverhead
}

// Name implements Interconnect.
func (c Crossbar) Name() string { return "crossbar" }
