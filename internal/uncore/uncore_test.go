package uncore

import "testing"

func TestMeshAvgLineDistance(t *testing.T) {
	// For dim=4: E[|i-j|] = 20/16 = 1.25.
	if got := avgLineDistance(4); got != 1.25 {
		t.Fatalf("avgLineDistance(4) = %v, want 1.25", got)
	}
	if got := avgLineDistance(1); got != 0 {
		t.Fatalf("avgLineDistance(1) = %v, want 0", got)
	}
}

func TestDefaultMeshRoundTrip(t *testing.T) {
	// Table I: the 4x4 mesh at 3 cycles/hop averages a 30-cycle round trip.
	if got := DefaultMesh().RoundTrip(); got != 30 {
		t.Fatalf("mesh round trip = %d, want 30", got)
	}
}

func TestDefaultCrossbarRoundTrip(t *testing.T) {
	// Figure 11: the crossbar lowers the round trip to 18 cycles.
	if got := DefaultCrossbar().RoundTrip(); got != 18 {
		t.Fatalf("crossbar round trip = %d, want 18", got)
	}
}

func TestCrossbarFasterThanMesh(t *testing.T) {
	if DefaultCrossbar().RoundTrip() >= DefaultMesh().RoundTrip() {
		t.Fatal("crossbar must be faster than mesh")
	}
}

func TestMeshScalesWithDim(t *testing.T) {
	small := Mesh{Dim: 2, HopLatency: 3, BankLatency: 5, CtrlOverhead: 4}
	big := Mesh{Dim: 8, HopLatency: 3, BankLatency: 5, CtrlOverhead: 4}
	if small.RoundTrip() >= big.RoundTrip() {
		t.Fatal("larger mesh must have larger average round trip")
	}
}

func TestInterconnectInterface(t *testing.T) {
	var ics []Interconnect = []Interconnect{DefaultMesh(), DefaultCrossbar()}
	names := map[string]bool{}
	for _, ic := range ics {
		if ic.RoundTrip() <= 0 {
			t.Fatalf("%s round trip non-positive", ic.Name())
		}
		names[ic.Name()] = true
	}
	if !names["mesh"] || !names["crossbar"] {
		t.Fatal("missing topology names")
	}
}
