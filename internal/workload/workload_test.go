package workload

import (
	"testing"

	"boomsim/internal/isa"
	"boomsim/internal/program"
)

func testImage(t testing.TB, seed uint64) *program.Image {
	t.Helper()
	g := program.DefaultGenParams()
	g.Seed = seed
	g.FootprintKB = 128
	g.Layers = 4
	img, err := program.Generate(g)
	if err != nil {
		t.Fatal(err)
	}
	return img
}

func TestProfilesGenerate(t *testing.T) {
	if len(Profiles) != 6 {
		t.Fatalf("expected 6 workloads (Table II), got %d", len(Profiles))
	}
	for _, p := range Profiles {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			g := p.Gen
			g.FootprintKB = 96 // shrink for test speed; shape params unchanged
			g.Seed = 42
			img, err := program.Generate(g)
			if err != nil {
				t.Fatal(err)
			}
			w := NewWalker(img, 7)
			for i := 0; i < 20000; i++ {
				w.Next()
			}
			if w.Instructions() == 0 {
				t.Fatal("no instructions executed")
			}
		})
	}
}

func TestByName(t *testing.T) {
	for _, name := range Names() {
		p, ok := ByName(name)
		if !ok || p.Name != name {
			t.Errorf("ByName(%q) failed", name)
		}
	}
	if _, ok := ByName("NoSuchWorkload"); ok {
		t.Error("ByName accepted a bogus name")
	}
}

func TestProfileFootprints(t *testing.T) {
	// The OLTP workloads must have the largest footprints — that property
	// drives the Oracle/DB2 behaviour in Figures 7-9.
	oracle, _ := ByName("Oracle")
	db2, _ := ByName("DB2")
	for _, p := range Profiles {
		if p.Name == "Oracle" || p.Name == "DB2" {
			continue
		}
		if p.Gen.FootprintKB >= oracle.Gen.FootprintKB {
			t.Errorf("%s footprint >= Oracle", p.Name)
		}
		if p.Gen.FootprintKB >= db2.Gen.FootprintKB {
			t.Errorf("%s footprint >= DB2", p.Name)
		}
	}
}

func TestWalkerDeterminism(t *testing.T) {
	img := testImage(t, 1)
	a, b := NewWalker(img, 9), NewWalker(img, 9)
	for i := 0; i < 50000; i++ {
		sa, sb := a.Next(), b.Next()
		if sa.Block.Addr != sb.Block.Addr || sa.Taken != sb.Taken || sa.Target != sb.Target {
			t.Fatalf("walkers diverged at step %d", i)
		}
	}
}

func TestWalkerSeedChangesPath(t *testing.T) {
	img := testImage(t, 1)
	a, b := NewWalker(img, 1), NewWalker(img, 2)
	diverged := false
	for i := 0; i < 10000; i++ {
		if a.Next().Target != b.Next().Target {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Fatal("different walker seeds produced identical paths")
	}
}

func TestWalkerAlwaysOnBlockStarts(t *testing.T) {
	img := testImage(t, 3)
	w := NewWalker(img, 5)
	for i := 0; i < 50000; i++ {
		s := w.Next()
		if _, ok := img.BlockAt(s.Target); !ok {
			t.Fatalf("step %d: target %#x is not a block start", i, s.Target)
		}
	}
}

func TestWalkerCallReturnBalance(t *testing.T) {
	img := testImage(t, 5)
	w := NewWalker(img, 7)
	for i := 0; i < 100000; i++ {
		s := w.Next()
		if s.Block.Term.Kind == isa.Return && s.Target == img.Functions[0].Entry && w.CallDepth() == 0 {
			// A bare return to root would indicate stack underflow.
			t.Fatalf("stack underflow at step %d", i)
		}
	}
	if w.MaxCallDepthSeen() > 64 {
		t.Fatalf("call depth %d exceeds the layering bound", w.MaxCallDepthSeen())
	}
	if w.MaxCallDepthSeen() < 2 {
		t.Fatal("walker never descended the layer stack")
	}
}

func TestWalkerReturnsMatchCallSites(t *testing.T) {
	img := testImage(t, 7)
	w := NewWalker(img, 9)
	var stack []isa.Addr
	for i := 0; i < 100000; i++ {
		s := w.Next()
		kind := s.Block.Term.Kind
		if kind.IsCall() {
			stack = append(stack, s.Block.FallThrough())
		}
		if kind.IsReturn() {
			if len(stack) == 0 {
				t.Fatalf("return with empty shadow stack at step %d", i)
			}
			want := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if s.Target != want {
				t.Fatalf("return to %#x, expected call-site fall-through %#x", s.Target, want)
			}
		}
	}
}

func TestLoopTripsObserved(t *testing.T) {
	img := testImage(t, 9)
	w := NewWalker(img, 11)
	// Count consecutive taken streaks per loop branch; each streak must be
	// exactly Trip-1 long before a not-taken.
	streak := map[isa.Addr]uint32{}
	checked := 0
	for i := 0; i < 200000 && checked < 50; i++ {
		s := w.Next()
		if s.Block.Term.Behaviour != program.BehaviourLoop {
			continue
		}
		pc := s.Block.BranchPC()
		if s.Taken {
			streak[pc]++
		} else {
			if got, want := streak[pc], s.Block.Term.Trip-1; got != want && got != 0 {
				// got==0 can happen if we started observing mid-loop.
				t.Fatalf("loop %#x: streak %d, want %d", pc, got, want)
			}
			streak[pc] = 0
			checked++
		}
	}
	if checked == 0 {
		t.Skip("no loop exits observed in window")
	}
}

func TestBiasOutcomesMatchBias(t *testing.T) {
	img := testImage(t, 11)
	w := NewWalker(img, 13)
	taken := map[isa.Addr]int{}
	total := map[isa.Addr]int{}
	bias := map[isa.Addr]float64{}
	for i := 0; i < 300000; i++ {
		s := w.Next()
		if s.Block.Term.Behaviour != program.BehaviourBias || s.Block.Term.Phase > 0 {
			// Phase-stable branches converge to their bias only over many
			// phases; check the per-occurrence ones.
			continue
		}
		pc := s.Block.BranchPC()
		total[pc]++
		if s.Taken {
			taken[pc]++
		}
		bias[pc] = s.Block.Term.Bias
	}
	checked := 0
	for pc, n := range total {
		if n < 500 {
			continue
		}
		got := float64(taken[pc]) / float64(n)
		if diff := got - bias[pc]; diff > 0.08 || diff < -0.08 {
			t.Errorf("branch %#x: observed taken rate %.3f, bias %.3f", pc, got, bias[pc])
		}
		checked++
	}
	if checked == 0 {
		t.Skip("no high-frequency biased branches in window")
	}
}

func TestEntryClassConsistency(t *testing.T) {
	img := testImage(t, 13)
	w := NewWalker(img, 15)
	prev := w.Next()
	for i := 0; i < 50000; i++ {
		s := w.Next()
		want := isa.ClassOf(prev.Block.Term.Kind, prev.Taken)
		if s.EntryClass != want {
			t.Fatalf("step %d: entry class %v, want %v", i, s.EntryClass, want)
		}
		prev = s
	}
}

func TestMeasureBasics(t *testing.T) {
	img := testImage(t, 15)
	w := NewWalker(img, 17)
	st := Measure(w, 100000, 9)
	if st.Steps != 100000 || st.Branches != st.Steps {
		t.Fatal("every step ends in a branch")
	}
	if st.CondBranches == 0 || st.Calls == 0 || st.Returns == 0 {
		t.Fatal("expected a mix of branch kinds")
	}
	if st.Instrs < st.Steps {
		t.Fatal("instruction count must be >= block count")
	}
	if st.TouchedLines < 100 {
		t.Fatalf("dynamic footprint suspiciously small: %d lines", st.TouchedLines)
	}
}

func TestTakenCondDistanceShape(t *testing.T) {
	// Figure 4 property: the overwhelming majority of taken conditional
	// branches land within 4 cache blocks of the branch.
	img := testImage(t, 17)
	w := NewWalker(img, 19)
	st := Measure(w, 300000, 9)
	cdf := CDF(st.TakenCondDist)
	if st.TakenConds == 0 {
		t.Fatal("no taken conditionals")
	}
	if cdf[4] < 0.85 {
		t.Errorf("taken-cond distance CDF at 4 blocks = %.3f, want >= 0.85 (paper: ~0.92)", cdf[4])
	}
}

func TestCDF(t *testing.T) {
	h := []uint64{2, 3, 5}
	cdf := CDF(h)
	if cdf[0] != 0.2 || cdf[1] != 0.5 || cdf[2] != 1.0 {
		t.Fatalf("CDF = %v", cdf)
	}
	empty := CDF([]uint64{0, 0})
	if empty[1] != 0 {
		t.Fatal("empty CDF should be all zeros")
	}
}

func TestResolveMatchesNext(t *testing.T) {
	img := testImage(t, 19)
	w := NewWalker(img, 21)
	for i := 0; i < 20000; i++ {
		b, ok := img.BlockAt(w.PC())
		if !ok {
			t.Fatal("walker off block start")
		}
		// Resolve must not mutate walker state for conditionals; for calls
		// it pushes, so only compare on conditionals.
		if b.Term.Kind == isa.CondDirect {
			taken, target := w.Resolve(b)
			s := w.Next()
			if s.Taken != taken || s.Target != target {
				t.Fatalf("Resolve diverged from Next at step %d", i)
			}
		} else {
			w.Next()
		}
	}
}

func BenchmarkWalker(b *testing.B) {
	g := program.DefaultGenParams()
	g.FootprintKB = 512
	img, err := program.Generate(g)
	if err != nil {
		b.Fatal(err)
	}
	w := NewWalker(img, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Next()
	}
}

func TestSPECLikeProfile(t *testing.T) {
	// The SPEC-like motivation profile must build, run, and stay tiny: its
	// dynamic footprint should fit the 32KB L1-I.
	p := SPECLike()
	img, err := p.Image(1)
	if err != nil {
		t.Fatal(err)
	}
	if img.Bytes() > 160*1024 {
		t.Fatalf("SPEC-like text %d KB, want < 160 KB", img.Bytes()/1024)
	}
	w := NewWalker(img, 1)
	st := Measure(w, 100000, 9)
	if st.TouchedLines*64 > 48*1024 {
		t.Fatalf("SPEC-like dynamic footprint %d KB, want < 48 KB", st.TouchedLines*64/1024)
	}
	// It must not be listed in Table II.
	if _, ok := ByName("SPEC-like"); ok {
		t.Fatal("SPEC-like must not be part of the Table II profile list")
	}
}
