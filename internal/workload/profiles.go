// Package workload provides the six server-workload models of the paper's
// Table II and the oracle walker that executes them. Each profile is a
// calibrated parameterisation of the synthetic code generator: since the
// commercial binaries (Oracle, DB2, Zeus, ...) and their traces are not
// available, the profiles reproduce the control-flow *properties* the paper
// measures — instruction footprint, branch mix, BTB pressure, loopiness, and
// dispatch behaviour — so the schemes under test are exercised the same way.
package workload

import "boomsim/internal/program"

// Profile names one workload: its generator parameterisation plus metadata.
type Profile struct {
	// Name matches the paper's workload naming.
	Name string
	// Description summarises what the real workload is and what this profile
	// emphasises to mimic it.
	Description string
	// Gen is the code-image parameterisation.
	Gen program.GenParams
}

// Image generates the profile's code image with the given seed (the seed
// perturbs only randomness, not the calibrated shape).
func (p Profile) Image(seed uint64) (*program.Image, error) {
	g := p.Gen
	g.Seed = seed
	return program.Generate(g)
}

// Profiles lists the six workloads in the paper's presentation order.
var Profiles = []Profile{Nutch(), Streaming(), Apache(), Zeus(), OracleDB(), DB2()}

// ByName returns the named profile.
func ByName(name string) (Profile, bool) {
	for _, p := range Profiles {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// Names returns the profile names in order.
func Names() []string {
	out := make([]string, len(Profiles))
	for i, p := range Profiles {
		out[i] = p.Name
	}
	return out
}

// Nutch models the Apache Nutch web-search workload: a mid-size JVM-style
// footprint with a wide request dispatch and moderately deep layering.
func Nutch() Profile {
	g := program.DefaultGenParams()
	g.FootprintKB = 2048
	g.Layers = 8
	g.DispatchFanout = 44
	g.MeanBlockInstrs = 5
	g.IndCallFrac = 0.18 // JVM virtual dispatch
	g.IndFanout = 5
	g.CalleeZipfTheta = 0.35
	return Profile{
		Name:        "Nutch",
		Description: "Web search (Nutch/Lucene): 2MB text, wide dispatch, frequent virtual calls",
		Gen:         g,
	}
}

// Streaming models the Darwin media-streaming server: the smallest footprint,
// loop-dominated packetisation inner kernels, and taken-branch-dense control
// that makes sequential overshoot prefetching wasteful (cf. Figure 10, where
// Streaming prefers no next-N prefetch on BTB misses).
func Streaming() Profile {
	g := program.DefaultGenParams()
	g.FootprintKB = 1536
	g.Layers = 6
	g.DispatchFanout = 12
	g.MeanBlockInstrs = 5
	g.PCall = 0.15
	g.LoopFrac = 0.22
	g.LoopTripMax = 48
	g.CondSkipMax = 16
	g.BiasMix = []program.BiasLevel{
		{Frac: 0.30, Lo: 0.03, Hi: 0.12},
		{Frac: 0.50, Lo: 0.88, Hi: 0.97}, // taken-dense: skips over cold code
		{Frac: 0.20, Lo: 0.25, Hi: 0.75, Phase: 64},
	}
	return Profile{
		Name:        "Streaming",
		Description: "Media streaming (Darwin): 1.5MB text, loopy kernels, taken-branch dense",
		Gen:         g,
	}
}

// Apache models the Apache httpd + fastCGI web front end.
func Apache() Profile {
	g := program.DefaultGenParams()
	g.FootprintKB = 2560
	g.Layers = 9 // httpd -> modules -> CGI -> libc -> kernel
	g.DispatchFanout = 32
	g.MeanBlockInstrs = 6
	g.IndCallFrac = 0.14
	g.CrossLayerFrac = 0.18
	return Profile{
		Name:        "Apache",
		Description: "Web front end (SPECweb99 on httpd): 2.5MB text, deep module layering",
		Gen:         g,
	}
}

// Zeus models the Zeus web server: similar layering to Apache with a leaner
// event-driven core (slightly smaller footprint, fewer indirect calls).
func Zeus() Profile {
	g := program.DefaultGenParams()
	g.FootprintKB = 2048
	g.Layers = 8
	g.DispatchFanout = 28
	g.MeanBlockInstrs = 6
	g.IndCallFrac = 0.10
	g.CrossLayerFrac = 0.20
	return Profile{
		Name:        "Zeus",
		Description: "Web front end (SPECweb99 on Zeus): 2MB text, event-driven dispatch",
		Gen:         g,
	}
}

// OracleDB models the Oracle 10g TPC-C workload: large footprint and heavy
// BTB pressure from a branch-dense server engine — one of the two workloads
// where Boomerang's stall-on-BTB-miss costs it coverage versus Confluence.
func OracleDB() Profile {
	g := program.DefaultGenParams()
	g.FootprintKB = 6144
	g.Layers = 10
	// TPC-C has a modest set of transaction types, each with a deep, highly
	// repetitive code path — exactly the shape temporal streaming thrives
	// on while a 2K BTB drowns.
	g.DispatchFanout = 24
	g.MeanBlockInstrs = 5
	g.MeanFuncBlocks = 14
	g.CallDecay = 0.98
	g.IndCallFrac = 0.20
	g.IndFanout = 6
	g.PhaseLen = 48
	g.CrossLayerFrac = 0.22
	g.CalleeZipfTheta = 0.45
	return Profile{
		Name:        "Oracle",
		Description: "OLTP (TPC-C on Oracle 10g): 6MB text, branch-dense, tens of thousands of active branches",
		Gen:         g,
	}
}

// SPECLike models a compute-kernel workload of the kind FDIP was originally
// proposed on (Section II-B: "branch-predictor-directed prefetch was
// proposed in the context of SPEC workloads with modest instruction working
// sets"): a small hot loop nest that fits the L1-I and the BTB, where the
// server front-end problem simply does not exist. It is not part of Table
// II; experiments use it to reproduce the motivation contrast.
func SPECLike() Profile {
	g := program.DefaultGenParams()
	g.FootprintKB = 96 // tiny text: the active set fits the 32KB L1-I
	g.Layers = 3
	g.DispatchFanout = 3
	g.MeanBlockInstrs = 8 // longer straight-line blocks
	g.MeanFuncBlocks = 16
	g.PCall = 0.06
	g.LoopFrac = 0.30 // loop-dominated kernels
	g.LoopTripMax = 64
	g.IndCallFrac = 0.02
	return Profile{
		Name:        "SPEC-like",
		Description: "Compute kernels: <100KB text, loop-dominated, fits L1-I and BTB",
		Gen:         g,
	}
}

// DB2 models IBM DB2 ESE under TPC-C: the highest BTB-miss pressure in the
// paper (~75% of its pipeline squashes are BTB-miss induced).
func DB2() Profile {
	g := program.DefaultGenParams()
	g.FootprintKB = 5120
	g.Layers = 10
	g.DispatchFanout = 20
	g.MeanBlockInstrs = 4 // very short blocks: maximal branch density
	g.MeanFuncBlocks = 12
	g.CallDecay = 0.98
	g.IndCallFrac = 0.22
	g.IndFanout = 6
	g.PhaseLen = 48
	g.CrossLayerFrac = 0.25
	g.CalleeZipfTheta = 0.45
	g.BiasMix = []program.BiasLevel{
		{Frac: 0.50, Lo: 0.03, Hi: 0.12},
		{Frac: 0.32, Lo: 0.88, Hi: 0.97},
		{Frac: 0.18, Lo: 0.25, Hi: 0.75, Phase: 48},
	}
	return Profile{
		Name:        "DB2",
		Description: "OLTP (TPC-C on DB2 v8 ESE): 5MB text, shortest blocks, worst-case BTB pressure",
		Gen:         g,
	}
}
