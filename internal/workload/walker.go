// The oracle walker lives in internal/program (it executes a code image and
// depends on nothing workload-specific); this file re-exports it under the
// names this package historically owned so profile-centric callers can keep
// saying workload.NewWalker.
package workload

import "boomsim/internal/program"

// Step is one committed basic block of oracle execution.
type Step = program.Step

// Walker deterministically executes a code image along the architecturally
// correct path.
type Walker = program.Walker

// DynamicStats aggregates properties of an executed window.
type DynamicStats = program.DynamicStats

// MaxCallDepth is the walker's call-depth safety bound.
const MaxCallDepth = program.MaxCallDepth

// NewWalker starts execution at the image's root dispatcher.
func NewWalker(img *program.Image, seed uint64) *Walker {
	return program.NewWalker(img, seed)
}

// Measure executes steps blocks and aggregates dynamic statistics.
func Measure(w *Walker, steps uint64, distBuckets int) DynamicStats {
	return program.Measure(w, steps, distBuckets)
}

// CDF converts a histogram into a cumulative distribution in [0,1].
func CDF(h []uint64) []float64 {
	return program.CDF(h)
}
