package config

import "testing"

func TestDefaultValid(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestDefaultMatchesTableI(t *testing.T) {
	c := Default()
	if c.FetchWidth != 3 || c.RetireWidth != 3 {
		t.Error("Table I core is 3-way")
	}
	if c.ROBSize != 128 {
		t.Error("Table I ROB is 128 entries")
	}
	if c.L1ISizeKB != 32 || c.L1IAssoc != 2 || c.L1ILatency != 2 {
		t.Error("Table I L1-I is 32KB/2-way/2-cycle")
	}
	if c.PrefetchBufEntries != 64 {
		t.Error("Table I prefetch buffer is 64 entries")
	}
	if c.BTBEntries != 2048 {
		t.Error("Table I BTB is 2K entries")
	}
	if c.LLCLatency != 30 {
		t.Error("mesh average LLC round trip should be 30 cycles")
	}
	if c.MemLatency != 90 {
		t.Error("45ns at 2GHz is 90 cycles")
	}
	if c.FTQDepth != 32 {
		t.Error("FDIP/Boomerang FTQ is 32 entries")
	}
	if c.BTBPrefetchBufEntries != 32 {
		t.Error("Boomerang BTB prefetch buffer is 32 entries")
	}
	if c.TAGEStorageKB != 8 {
		t.Error("TAGE budget is 8KB")
	}
}

func TestWithBTB(t *testing.T) {
	base := Default()
	mod := base.WithBTB(32768)
	if mod.BTBEntries != 32768 {
		t.Error("WithBTB did not apply")
	}
	if base.BTBEntries != 2048 {
		t.Error("WithBTB mutated the receiver")
	}
}

func TestWithLLCLatency(t *testing.T) {
	base := Default()
	mod := base.WithLLCLatency(18)
	if mod.LLCLatency != 18 {
		t.Error("WithLLCLatency did not apply")
	}
	if base.LLCLatency != 30 {
		t.Error("WithLLCLatency mutated the receiver")
	}
}

func TestValidateCatchesBadValues(t *testing.T) {
	cases := []func(*Core){
		func(c *Core) { c.FetchWidth = 0 },
		func(c *Core) { c.RetireWidth = -1 },
		func(c *Core) { c.BackendDepth = 0 },
		func(c *Core) { c.ROBSize = 1 },
		func(c *Core) { c.FTQDepth = 0 },
		func(c *Core) { c.L1ISizeKB = 0 },
		func(c *Core) { c.L1ILatency = 0 },
		func(c *Core) { c.MSHREntries = 0 },
		func(c *Core) { c.LLCLatency = 0 },
		func(c *Core) { c.LLCSizeKB = 0 },
		func(c *Core) { c.MemLatency = -5 },
		func(c *Core) { c.BTBEntries = 0 },
		func(c *Core) { c.BTBAssoc = 0 },
		func(c *Core) { c.RASDepth = 0 },
		func(c *Core) { c.PrefetchProbesPerCycle = 0 },
		func(c *Core) { c.TAGEStorageKB = 0 },
	}
	for i, mutate := range cases {
		c := Default()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestDefaultCMP(t *testing.T) {
	cmp := DefaultCMP()
	if cmp.Cores != 16 || cmp.MeshDim != 4 || cmp.HopLatency != 3 {
		t.Error("Table I CMP is 16-core 4x4 mesh at 3 cycles/hop")
	}
}
