// Package config holds the microarchitectural parameter sets for the
// simulated core and memory hierarchy. Default values reproduce Table I of
// the Boomerang paper (HPCA 2017): a 3-way out-of-order core resembling an
// ARM Cortex-A57 at 2 GHz on a 16-core tiled CMP with a 4x4 mesh NUCA LLC.
package config

import "fmt"

// Core collects every knob a single simulated core needs. The zero value is
// not useful; start from Default() and override.
type Core struct {
	// FetchWidth is the number of instructions fetched per cycle.
	FetchWidth int
	// RetireWidth is the number of instructions retired per cycle.
	RetireWidth int
	// BackendDepth is the fetch-to-resolve depth in cycles: a branch fetched
	// at cycle c resolves (and can squash) no earlier than c+BackendDepth.
	BackendDepth int
	// ROBSize caps in-flight (fetched, unretired) instructions.
	ROBSize int

	// FTQDepth is the fetch target queue depth. The paper uses 32 entries
	// for FDIP and Boomerang; the non-decoupled baseline uses a few entries.
	FTQDepth int

	// L1I geometry and latency.
	L1ISizeKB  int
	L1IAssoc   int
	L1ILatency int
	// PrefetchBufEntries is the fully-associative L1-I prefetch buffer size.
	PrefetchBufEntries int
	// MSHREntries bounds outstanding instruction fills.
	MSHREntries int

	// LLCLatency is the average LLC round-trip latency in cycles (30 for the
	// 4x4 mesh of Table I; 18 for the crossbar of Figure 11). It is the
	// independent variable of Figures 2, 5 and 11.
	LLCLatency int
	// LLCSizeKB is the effective LLC capacity visible to this core's
	// instruction stream (8 MB shared across the 16-core CMP).
	LLCSizeKB int
	// LLCAssoc is the LLC associativity.
	LLCAssoc int
	// MemLatency is the LLC-miss (memory) penalty in cycles beyond the LLC
	// round trip: 45 ns at 2 GHz = 90 cycles.
	MemLatency int
	// LLCPortOccupancy serialises a core's LLC requests: each fill occupies
	// the core's LLC port/link for this many cycles, so useless prefetch
	// traffic delays useful fills (the effect behind Figure 10's
	// over-prefetching penalty).
	LLCPortOccupancy int

	// BTBEntries is the basic-block BTB capacity (2K in Table I).
	BTBEntries int
	// BTBAssoc is the BTB associativity.
	BTBAssoc int
	// BTBPrefetchBufEntries is Boomerang's FIFO BTB prefetch buffer (32).
	BTBPrefetchBufEntries int
	// RASDepth is the return address stack depth.
	RASDepth int

	// PrefetchProbesPerCycle bounds prefetch-engine probe issue rate.
	PrefetchProbesPerCycle int
	// TAGEStorageKB is the direction predictor storage budget (8 KB).
	TAGEStorageKB int
}

// Default returns the Table I configuration for one core of the modelled
// 16-core CMP (mesh NUCA, ~30-cycle average LLC round trip).
func Default() Core {
	return Core{
		FetchWidth:   3,
		RetireWidth:  3,
		BackendDepth: 12,
		ROBSize:      128,

		FTQDepth: 32,

		L1ISizeKB:          32,
		L1IAssoc:           2,
		L1ILatency:         2,
		PrefetchBufEntries: 64,
		MSHREntries:        16,

		LLCLatency:       30,
		LLCSizeKB:        8192,
		LLCAssoc:         16,
		MemLatency:       90,
		LLCPortOccupancy: 2,

		BTBEntries:            2048,
		BTBAssoc:              4,
		BTBPrefetchBufEntries: 32,
		RASDepth:              32,

		PrefetchProbesPerCycle: 2,
		TAGEStorageKB:          8,
	}
}

// WithBTB returns a copy with the BTB capacity replaced (used by the BTB
// sweeps of Figures 3 and 5).
func (c Core) WithBTB(entries int) Core {
	c.BTBEntries = entries
	return c
}

// WithLLCLatency returns a copy with the LLC round-trip latency replaced
// (used by the latency sweeps of Figures 2, 5 and 11).
func (c Core) WithLLCLatency(cycles int) Core {
	c.LLCLatency = cycles
	return c
}

// Validate reports the first nonsensical parameter, if any.
func (c Core) Validate() error {
	checks := []struct {
		ok   bool
		what string
	}{
		{c.FetchWidth > 0, "FetchWidth must be positive"},
		{c.RetireWidth > 0, "RetireWidth must be positive"},
		{c.BackendDepth > 0, "BackendDepth must be positive"},
		{c.ROBSize >= c.RetireWidth, "ROBSize must cover at least one retire group"},
		{c.FTQDepth > 0, "FTQDepth must be positive"},
		{c.L1ISizeKB > 0 && c.L1IAssoc > 0, "L1I geometry must be positive"},
		{c.L1ILatency >= 1, "L1ILatency must be >= 1"},
		{c.PrefetchBufEntries >= 0, "PrefetchBufEntries must be >= 0"},
		{c.MSHREntries > 0, "MSHREntries must be positive"},
		{c.LLCLatency >= 1, "LLCLatency must be >= 1"},
		{c.LLCSizeKB > 0 && c.LLCAssoc > 0, "LLC geometry must be positive"},
		{c.MemLatency >= 0, "MemLatency must be >= 0"},
		{c.LLCPortOccupancy >= 0, "LLCPortOccupancy must be >= 0"},
		{c.BTBEntries > 0, "BTBEntries must be positive"},
		{c.BTBAssoc > 0, "BTBAssoc must be positive"},
		{c.BTBPrefetchBufEntries >= 0, "BTBPrefetchBufEntries must be >= 0"},
		{c.RASDepth > 0, "RASDepth must be positive"},
		{c.PrefetchProbesPerCycle > 0, "PrefetchProbesPerCycle must be positive"},
		{c.TAGEStorageKB > 0, "TAGEStorageKB must be positive"},
	}
	for _, ch := range checks {
		if !ch.ok {
			return fmt.Errorf("config: %s", ch.what)
		}
	}
	return nil
}

// CMP describes the chip-level organisation used by the multi-core harness.
type CMP struct {
	// Cores is the core count (16 in Table I).
	Cores int
	// MeshDim is the mesh dimension (4 for the 4x4 2D mesh).
	MeshDim int
	// HopLatency is the per-hop link+router latency (3 cycles).
	HopLatency int
	// LLCBankLatency is the bank access time added to network traversal.
	LLCBankLatency int
}

// DefaultCMP returns the Table I chip organisation.
func DefaultCMP() CMP {
	return CMP{Cores: 16, MeshDim: 4, HopLatency: 3, LLCBankLatency: 5}
}
