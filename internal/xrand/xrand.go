// Package xrand provides deterministic, splittable pseudo-random streams and
// the small set of distributions the workload generator and oracle execution
// need. Everything in the simulator that involves chance derives from a
// Stream split off a single root seed, so whole-simulation runs are
// bit-reproducible across machines and Go versions (no dependence on
// math/rand's global state or version-specific algorithms).
package xrand

import "math"

// Stream is a small-state PCG-style generator (xsh-rr output function over a
// 64-bit LCG) with an explicit increment, which makes independent substreams
// cheap: two streams with different increments never correlate.
type Stream struct {
	state uint64
	inc   uint64
}

const mult = 6364136223846793005

// New returns a Stream seeded from seed with the default sequence selector.
func New(seed uint64) *Stream {
	return NewSeq(seed, 0xda3e39cb94b95bdb)
}

// NewSeq returns a Stream over sequence seq. Streams with distinct seq values
// are independent even for equal seeds.
func NewSeq(seed, seq uint64) *Stream {
	s := &Stream{inc: seq<<1 | 1}
	s.state = s.inc + seed
	s.Uint64()
	return s
}

// Split derives an independent child stream. The child is a pure function of
// the parent's current state, and advances the parent once, so repeated
// splits yield distinct children.
func (s *Stream) Split() *Stream {
	return NewSeq(s.Uint64(), s.Uint64())
}

// Uint64 returns the next 64 bits of the stream.
func (s *Stream) Uint64() uint64 {
	// Two PCG-XSH-RR 32-bit outputs glued together keeps the state small
	// while passing the statistical quality bar this simulator needs.
	hi := s.next32()
	lo := s.next32()
	return uint64(hi)<<32 | uint64(lo)
}

func (s *Stream) next32() uint32 {
	old := s.state
	s.state = old*mult + s.inc
	xorshifted := uint32(((old >> 18) ^ old) >> 27)
	rot := uint(old >> 59)
	return xorshifted>>rot | xorshifted<<((-rot)&31)
}

// Uint32 returns the next 32 bits of the stream.
func (s *Stream) Uint32() uint32 { return s.next32() }

// Intn returns a uniform integer in [0, n). n must be > 0.
func (s *Stream) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int(s.Uint64() % uint64(n))
}

// Int64n returns a uniform int64 in [0, n). n must be > 0.
func (s *Stream) Int64n(n int64) int64 {
	if n <= 0 {
		panic("xrand: Int64n with non-positive n")
	}
	return int64(s.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (s *Stream) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (s *Stream) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}

// Range returns a uniform integer in [lo, hi] inclusive. Requires lo <= hi.
func (s *Stream) Range(lo, hi int) int {
	if hi < lo {
		panic("xrand: Range with hi < lo")
	}
	return lo + s.Intn(hi-lo+1)
}

// Geometric returns a sample from a geometric distribution with success
// probability p, i.e. the number of failures before the first success.
// The result is clamped to max.
func (s *Stream) Geometric(p float64, max int) int {
	if p >= 1 {
		return 0
	}
	if p <= 0 {
		return max
	}
	n := int(math.Log(1-s.Float64()) / math.Log(1-p))
	if n > max {
		n = max
	}
	if n < 0 {
		n = 0
	}
	return n
}

// Zipf draws from a Zipf distribution over [0, n) with exponent theta using
// inverse-CDF sampling against a precomputed table. Build one with NewZipf.
type Zipf struct {
	cdf []float64
}

// NewZipf precomputes the CDF for a Zipf(theta) distribution over n items.
// theta = 0 degenerates to uniform; larger theta concentrates probability on
// low indices (hot items), which is how the workload generator models the
// hot/cold split of server code.
func NewZipf(n int, theta float64) *Zipf {
	if n <= 0 {
		panic("xrand: NewZipf with non-positive n")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1.0 / math.Pow(float64(i+1), theta)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf}
}

// N returns the number of items the distribution covers.
func (z *Zipf) N() int { return len(z.cdf) }

// Sample draws an index in [0, N()).
func (z *Zipf) Sample(s *Stream) int {
	u := s.Float64()
	// Binary search for the first cdf entry >= u.
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Hash64 mixes three 64-bit values into one, suitable for stateless
// replayable decisions (e.g. "is occurrence k of branch b taken?"). It is a
// strengthened xor-fold of splitmix64 finalisers.
func Hash64(a, b, c uint64) uint64 {
	x := a*0x9e3779b97f4a7c15 ^ b*0xbf58476d1ce4e5b9 ^ c*0x94d049bb133111eb
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// HashBool returns a deterministic pseudo-random boolean that is true with
// probability p, as a pure function of the three inputs.
func HashBool(a, b, c uint64, p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return float64(Hash64(a, b, c)>>11)/(1<<53) < p
}
