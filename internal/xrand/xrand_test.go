package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with equal seeds diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("streams with different seeds produced %d identical outputs", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	root := New(7)
	c1 := root.Split()
	c2 := root.Split()
	same := 0
	for i := 0; i < 1000; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split children overlap too often: %d/1000", same)
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestIntnRange(t *testing.T) {
	s := New(9)
	if err := quick.Check(func(n uint16) bool {
		m := int(n%1000) + 1
		v := s.Intn(m)
		return v >= 0 && v < m
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	New(1).Intn(0)
}

func TestBoolProbability(t *testing.T) {
	s := New(11)
	const n = 200000
	for _, p := range []float64{0.1, 0.5, 0.9} {
		hits := 0
		for i := 0; i < n; i++ {
			if s.Bool(p) {
				hits++
			}
		}
		got := float64(hits) / n
		if math.Abs(got-p) > 0.01 {
			t.Errorf("Bool(%v): observed %v", p, got)
		}
	}
	if s.Bool(0) {
		t.Error("Bool(0) returned true")
	}
	if !s.Bool(1) {
		t.Error("Bool(1) returned false")
	}
}

func TestRange(t *testing.T) {
	s := New(13)
	for i := 0; i < 1000; i++ {
		v := s.Range(5, 9)
		if v < 5 || v > 9 {
			t.Fatalf("Range(5,9) = %d", v)
		}
	}
	if got := s.Range(4, 4); got != 4 {
		t.Fatalf("Range(4,4) = %d", got)
	}
}

func TestGeometricBounds(t *testing.T) {
	s := New(17)
	for i := 0; i < 10000; i++ {
		v := s.Geometric(0.3, 50)
		if v < 0 || v > 50 {
			t.Fatalf("Geometric out of [0,50]: %d", v)
		}
	}
	if v := s.Geometric(1.0, 10); v != 0 {
		t.Fatalf("Geometric(p=1) = %d, want 0", v)
	}
	if v := s.Geometric(0, 10); v != 10 {
		t.Fatalf("Geometric(p=0) = %d, want max", v)
	}
}

func TestGeometricMean(t *testing.T) {
	s := New(19)
	const p, n = 0.25, 100000
	sum := 0
	for i := 0; i < n; i++ {
		sum += s.Geometric(p, 1000)
	}
	mean := float64(sum) / n
	want := (1 - p) / p // mean of failures-before-success geometric
	if math.Abs(mean-want) > 0.1 {
		t.Errorf("Geometric mean %v, want ~%v", mean, want)
	}
}

func TestZipfUniform(t *testing.T) {
	z := NewZipf(10, 0)
	s := New(23)
	counts := make([]int, 10)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[z.Sample(s)]++
	}
	for i, c := range counts {
		got := float64(c) / n
		if math.Abs(got-0.1) > 0.01 {
			t.Errorf("uniform zipf bucket %d: %v", i, got)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	z := NewZipf(1000, 0.99)
	s := New(29)
	top10 := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if z.Sample(s) < 10 {
			top10++
		}
	}
	// With theta ~1 over 1000 items, the top 10 should draw a large share.
	if frac := float64(top10) / n; frac < 0.3 {
		t.Errorf("zipf(0.99) top-10 share %v, want >= 0.3", frac)
	}
}

func TestZipfSampleInRange(t *testing.T) {
	z := NewZipf(17, 0.7)
	s := New(31)
	for i := 0; i < 10000; i++ {
		v := z.Sample(s)
		if v < 0 || v >= 17 {
			t.Fatalf("zipf sample out of range: %d", v)
		}
	}
}

func TestHash64Deterministic(t *testing.T) {
	if Hash64(1, 2, 3) != Hash64(1, 2, 3) {
		t.Fatal("Hash64 not deterministic")
	}
	if Hash64(1, 2, 3) == Hash64(1, 2, 4) {
		t.Fatal("Hash64 collision on trivially different input")
	}
}

func TestHash64Avalanche(t *testing.T) {
	// Flipping one input bit should flip roughly half the output bits.
	base := Hash64(0xdead, 0xbeef, 7)
	flipped := Hash64(0xdead^1, 0xbeef, 7)
	diff := base ^ flipped
	bits := 0
	for diff != 0 {
		bits += int(diff & 1)
		diff >>= 1
	}
	if bits < 16 || bits > 48 {
		t.Errorf("avalanche bits = %d, want ~32", bits)
	}
}

func TestHashBoolProbability(t *testing.T) {
	const n = 100000
	hits := 0
	for i := uint64(0); i < n; i++ {
		if HashBool(0x1234, i, 99, 0.7) {
			hits++
		}
	}
	got := float64(hits) / n
	if math.Abs(got-0.7) > 0.01 {
		t.Errorf("HashBool(0.7) observed %v", got)
	}
	if HashBool(1, 2, 3, 0) {
		t.Error("HashBool(p=0) true")
	}
	if !HashBool(1, 2, 3, 1) {
		t.Error("HashBool(p=1) false")
	}
}

func TestUint32Distribution(t *testing.T) {
	s := New(37)
	var ones [32]int
	const n = 20000
	for i := 0; i < n; i++ {
		v := s.Uint32()
		for b := 0; b < 32; b++ {
			if v>>(uint(b))&1 == 1 {
				ones[b]++
			}
		}
	}
	for b, c := range ones {
		frac := float64(c) / n
		if frac < 0.45 || frac > 0.55 {
			t.Errorf("bit %d set fraction %v", b, frac)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Uint64()
	}
}

func BenchmarkHash64(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = Hash64(uint64(i), 42, 7)
	}
}
