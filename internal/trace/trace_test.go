package trace

import (
	"bytes"
	"io"
	"testing"

	"boomsim/internal/bpu"
	"boomsim/internal/btb"
	"boomsim/internal/cache"
	"boomsim/internal/config"
	"boomsim/internal/frontend"
	"boomsim/internal/program"
	"boomsim/internal/workload"
)

func testImage(t testing.TB, seed uint64) *program.Image {
	t.Helper()
	g := program.DefaultGenParams()
	g.Seed = seed
	g.FootprintKB = 128
	g.Layers = 4
	img, err := program.Generate(g)
	if err != nil {
		t.Fatal(err)
	}
	return img
}

func TestRoundTrip(t *testing.T) {
	img := testImage(t, 1)
	var buf bytes.Buffer
	const steps = 50_000
	n, err := Record(img, 7, steps, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != steps {
		t.Fatalf("recorded %d steps, want %d", n, steps)
	}

	r, err := NewReader(&buf, img)
	if err != nil {
		t.Fatal(err)
	}
	w := workload.NewWalker(img, 7)
	for i := 0; i < steps; i++ {
		got, err := r.Next()
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		want := w.Next()
		if got.Block != want.Block || got.Taken != want.Taken ||
			got.Target != want.Target || got.EntryClass != want.EntryClass {
			t.Fatalf("step %d: got %+v want %+v", i, got, want)
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestCompactness(t *testing.T) {
	img := testImage(t, 3)
	var buf bytes.Buffer
	const steps = 100_000
	if _, err := Record(img, 1, steps, &buf); err != nil {
		t.Fatal(err)
	}
	perStep := float64(buf.Len()) / steps
	if perStep > 4 {
		t.Fatalf("trace uses %.2f bytes/step, want <= 4", perStep)
	}
}

func TestImageMismatchDetected(t *testing.T) {
	img := testImage(t, 1)
	other := testImage(t, 2)
	var buf bytes.Buffer
	if _, err := Record(img, 1, 100, &buf); err != nil {
		t.Fatal(err)
	}
	if _, err := NewReader(&buf, other); err != ErrImageMismatch {
		t.Fatalf("expected ErrImageMismatch, got %v", err)
	}
}

func TestBadMagicRejected(t *testing.T) {
	img := testImage(t, 1)
	if _, err := NewReader(bytes.NewReader([]byte("NOTATRACE")), img); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestTruncatedTrace(t *testing.T) {
	img := testImage(t, 1)
	var buf bytes.Buffer
	if _, err := Record(img, 1, 1000, &buf); err != nil {
		t.Fatal(err)
	}
	// Cut the trace mid-record.
	cut := buf.Bytes()[:buf.Len()-3]
	r, err := NewReader(bytes.NewReader(cut), img)
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := r.Next(); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return // both are acceptable truncation signals
			}
			t.Fatalf("unexpected error %v", err)
		}
	}
}

func TestReplayerDrivesEngineIdentically(t *testing.T) {
	// The decisive equivalence test: an engine driven by a recorded trace
	// must produce cycle-identical results to one driven by the live walker.
	img := testImage(t, 5)
	var buf bytes.Buffer
	if _, err := Record(img, 9, 400_000, &buf); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf, img)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := NewReplayer(r)
	if err != nil {
		t.Fatal(err)
	}

	cfg := config.Default()
	build := func(orc frontend.Oracle) *frontend.Engine {
		return frontend.New(frontend.Options{
			Config:     cfg,
			Image:      img,
			Oracle:     orc,
			Hierarchy:  cache.NewHierarchy(cfg, 0),
			Direction:  bpu.NewTAGE(cfg.TAGEStorageKB),
			BTB:        btb.New(cfg.BTBEntries, cfg.BTBAssoc),
			FDIPProbes: true,
		})
	}
	live := build(workload.NewWalker(img, 9)).Run(100_000, 20_000_000)
	replay := build(rp).Run(100_000, 20_000_000)

	if live.Cycles != replay.Cycles ||
		live.TotalSquashes() != replay.TotalSquashes() ||
		live.FetchStallCycles != replay.FetchStallCycles ||
		live.RetiredInstrs != replay.RetiredInstrs {
		t.Fatalf("trace replay diverged from live oracle:\nlive   %+v\nreplay %+v",
			live, replay)
	}
}

func TestReplayerPanicsPastEnd(t *testing.T) {
	img := testImage(t, 1)
	var buf bytes.Buffer
	if _, err := Record(img, 1, 10, &buf); err != nil {
		t.Fatal(err)
	}
	r, _ := NewReader(&buf, img)
	rp, err := NewReplayer(r)
	if err != nil {
		t.Fatal(err)
	}
	for rp.Remaining() {
		rp.Next()
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic past end of trace")
		}
	}()
	rp.Next()
}

func BenchmarkWriteStep(b *testing.B) {
	img := testImage(b, 1)
	w := workload.NewWalker(img, 1)
	tw, err := NewWriter(io.Discard, img)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tw.WriteStep(w.Next()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadStep(b *testing.B) {
	img := testImage(b, 1)
	var buf bytes.Buffer
	if _, err := Record(img, 1, uint64(b.N)+1, &buf); err != nil {
		b.Fatal(err)
	}
	r, err := NewReader(&buf, img)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Next(); err != nil {
			b.Fatal(err)
		}
	}
}
