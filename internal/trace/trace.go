// Package trace records and replays oracle execution as a compact binary
// control-flow trace. Recording decouples workload generation from
// simulation: a trace captured once can be replayed into any scheme, shipped
// between machines, or inspected offline — the role the paper's Flexus
// checkpoints and SimFlex trace libraries play.
//
// Format (little-endian, varint-based, ~2 bytes per basic block):
//
//	header : magic "BOOMTRC1", uvarint image base, uvarint image limit
//	record : flag byte + zigzag-varint block-address delta
//	         + (if flagTarget) zigzag-varint target delta
//
// The taken direction and, for most branches, the target are reconstructed
// from the static image during replay; only targets the encoding cannot
// supply (indirect branches, returns) are stored explicitly.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"boomsim/internal/isa"
	"boomsim/internal/program"
)

const magic = "BOOMTRC1"

const (
	flagTaken  = 1 << 0
	flagTarget = 1 << 1
)

// Writer serialises oracle steps.
type Writer struct {
	w     *bufio.Writer
	prev  isa.Addr
	count uint64
}

// NewWriter starts a trace for the given image.
func NewWriter(w io.Writer, img *program.Image) (*Writer, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return nil, err
	}
	var buf [binary.MaxVarintLen64]byte
	for _, v := range []uint64{uint64(img.Base), uint64(img.Limit)} {
		n := binary.PutUvarint(buf[:], v)
		if _, err := bw.Write(buf[:n]); err != nil {
			return nil, err
		}
	}
	return &Writer{w: bw}, nil
}

// WriteStep appends one committed step.
func (t *Writer) WriteStep(s program.Step) error {
	var buf [2*binary.MaxVarintLen64 + 1]byte
	flags := byte(0)
	if s.Taken {
		flags |= flagTaken
	}
	needTarget := s.Taken && s.Block.Term.Kind.IsIndirect()
	if needTarget {
		flags |= flagTarget
	}
	buf[0] = flags
	n := 1
	n += binary.PutVarint(buf[n:], int64(s.Block.Addr)-int64(t.prev))
	if needTarget {
		n += binary.PutVarint(buf[n:], int64(s.Target)-int64(s.Block.FallThrough()))
	}
	t.prev = s.Block.Addr
	t.count++
	_, err := t.w.Write(buf[:n])
	return err
}

// Count returns steps written so far.
func (t *Writer) Count() uint64 { return t.count }

// Flush drains buffered output. Call once after the last step.
func (t *Writer) Flush() error { return t.w.Flush() }

// Record executes steps blocks of the image with a fresh walker and writes
// them to w. It returns the per-step writer statistics.
func Record(img *program.Image, seed uint64, steps uint64, w io.Writer) (uint64, error) {
	tw, err := NewWriter(w, img)
	if err != nil {
		return 0, err
	}
	walker := program.NewWalker(img, seed)
	for i := uint64(0); i < steps; i++ {
		if err := tw.WriteStep(walker.Next()); err != nil {
			return tw.Count(), err
		}
	}
	return tw.Count(), tw.Flush()
}

// Reader deserialises a trace against the image it was recorded from.
type Reader struct {
	r    *bufio.Reader
	img  *program.Image
	prev isa.Addr

	entryClass isa.DiscontinuityClass
	count      uint64
}

// ErrImageMismatch reports a trace replayed against the wrong image.
var ErrImageMismatch = errors.New("trace: image does not match recording")

// NewReader validates the header and prepares replay.
func NewReader(r io.Reader, img *program.Image) (*Reader, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("trace: bad header: %w", err)
	}
	if string(head) != magic {
		return nil, fmt.Errorf("trace: bad magic %q", head)
	}
	base, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	limit, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if isa.Addr(base) != img.Base || isa.Addr(limit) != img.Limit {
		return nil, ErrImageMismatch
	}
	return &Reader{r: br, img: img}, nil
}

// Next returns the next recorded step, or io.EOF after the last.
func (t *Reader) Next() (program.Step, error) {
	flags, err := t.r.ReadByte()
	if err != nil {
		return program.Step{}, err // io.EOF passes through
	}
	delta, err := binary.ReadVarint(t.r)
	if err != nil {
		return program.Step{}, unexpectedEOF(err)
	}
	addr := isa.Addr(int64(t.prev) + delta)
	t.prev = addr
	blk, ok := t.img.BlockAt(addr)
	if !ok {
		return program.Step{}, fmt.Errorf("trace: %#x is not a block start (corrupt trace or wrong image)", addr)
	}
	s := program.Step{
		Block:      blk,
		Taken:      flags&flagTaken != 0,
		EntryClass: t.entryClass,
	}
	switch {
	case flags&flagTarget != 0:
		tdelta, err := binary.ReadVarint(t.r)
		if err != nil {
			return program.Step{}, unexpectedEOF(err)
		}
		s.Target = isa.Addr(int64(blk.FallThrough()) + tdelta)
	case s.Taken:
		s.Target = blk.Term.Target
	default:
		s.Target = blk.FallThrough()
	}
	t.entryClass = isa.ClassOf(blk.Term.Kind, s.Taken)
	t.count++
	return s, nil
}

// Count returns steps read so far.
func (t *Reader) Count() uint64 { return t.count }

func unexpectedEOF(err error) error {
	if errors.Is(err, io.EOF) {
		return io.ErrUnexpectedEOF
	}
	return err
}

// Replayer adapts a Reader to the front-end engine's Oracle interface, with
// the one-step lookahead PC() requires. When the trace is exhausted it
// panics — size the simulation window within the recording.
type Replayer struct {
	r    *Reader
	next program.Step
	err  error
}

// NewReplayer primes the lookahead.
func NewReplayer(r *Reader) (*Replayer, error) {
	rp := &Replayer{r: r}
	rp.next, rp.err = r.Next()
	if rp.err != nil {
		return nil, fmt.Errorf("trace: empty trace: %w", rp.err)
	}
	return rp, nil
}

// PC implements frontend.Oracle.
func (rp *Replayer) PC() isa.Addr {
	if rp.err != nil {
		panic(fmt.Sprintf("trace: replay past end of recording: %v", rp.err))
	}
	return rp.next.Block.Addr
}

// Next implements frontend.Oracle.
func (rp *Replayer) Next() program.Step {
	if rp.err != nil {
		panic(fmt.Sprintf("trace: replay past end of recording: %v", rp.err))
	}
	cur := rp.next
	rp.next, rp.err = rp.r.Next()
	return cur
}

// Remaining reports whether more steps are available.
func (rp *Replayer) Remaining() bool { return rp.err == nil }
