package cache

import (
	"testing"
	"testing/quick"

	"boomsim/internal/config"
)

func TestGeometry(t *testing.T) {
	c := NewSetAssoc(32, 2) // 32KB, 2-way, 64B lines
	if c.Lines() != 512 {
		t.Fatalf("32KB/64B = 512 lines, got %d", c.Lines())
	}
	if c.Sets() != 256 || c.Ways() != 2 {
		t.Fatalf("expected 256 sets x 2 ways, got %d x %d", c.Sets(), c.Ways())
	}
}

func TestGeometryExactCapacity(t *testing.T) {
	// Non-power-of-two capacities (an LLC with metadata carved out) must be
	// preserved exactly, not rounded down.
	c := NewSetAssoc(8032, 16) // 8MB minus a 160KB carve
	if got := c.Lines() * 64 / 1024; got != 8032 {
		t.Fatalf("capacity %d KB, want 8032", got)
	}
	// Lines mapping to distinct sets must coexist.
	c.Insert(1, 1)
	c.Insert(2, 2)
	if !c.Contains(1) || !c.Contains(2) {
		t.Fatal("distinct sets interfering")
	}
}

func TestLookupInsert(t *testing.T) {
	c := NewSetAssoc(4, 2)
	if c.Lookup(42, 0) {
		t.Fatal("hit in empty cache")
	}
	c.Insert(42, 1)
	if !c.Lookup(42, 2) {
		t.Fatal("miss after insert")
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("stats = %d/%d, want 1/1", hits, misses)
	}
}

func TestLRUEviction(t *testing.T) {
	c := NewSetAssoc(1, 2) // 16 lines, 8 sets x 2 ways
	sets := uint64(c.Sets())
	// Three lines mapping to set 0.
	a, b, d := sets*0, sets*1, sets*2
	c.Insert(a, 1)
	c.Insert(b, 2)
	c.Lookup(a, 3) // a is now MRU
	victim, evicted := c.Insert(d, 4)
	if !evicted || victim != b {
		t.Fatalf("expected b evicted, got %v (evicted=%v)", victim, evicted)
	}
	if !c.Contains(a) || !c.Contains(d) || c.Contains(b) {
		t.Fatal("LRU state wrong after eviction")
	}
}

func TestInsertExistingRefreshes(t *testing.T) {
	c := NewSetAssoc(1, 2)
	sets := uint64(c.Sets())
	a, b, d := sets*0, sets*1, sets*2
	c.Insert(a, 1)
	c.Insert(b, 2)
	c.Insert(a, 3) // refresh, not duplicate
	_, evicted := c.Insert(d, 4)
	if !evicted {
		t.Fatal("expected an eviction")
	}
	if !c.Contains(a) {
		t.Fatal("refreshed line was evicted")
	}
}

func TestInvalidate(t *testing.T) {
	c := NewSetAssoc(4, 4)
	c.Insert(7, 1)
	c.Invalidate(7)
	if c.Contains(7) {
		t.Fatal("line present after invalidate")
	}
	c.Invalidate(7) // idempotent
}

func TestContainsNoLRUEffect(t *testing.T) {
	c := NewSetAssoc(1, 2)
	sets := uint64(c.Sets())
	a, b, d := sets*0, sets*1, sets*2
	c.Insert(a, 1)
	c.Insert(b, 2)
	c.Contains(a) // must NOT refresh a
	victim, _ := c.Insert(d, 3)
	if victim != a {
		t.Fatal("Contains perturbed LRU")
	}
}

func TestCachePropertyInsertThenFound(t *testing.T) {
	c := NewSetAssoc(8, 4)
	now := int64(0)
	if err := quick.Check(func(line uint64) bool {
		now++
		c.Insert(line, now)
		return c.Contains(line)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func testCfg() config.Core {
	c := config.Default()
	return c
}

func TestHierarchyDemandMiss(t *testing.T) {
	h := NewHierarchy(testCfg(), 0)
	ready, src := h.Demand(100, 0)
	if src != HitMemory {
		t.Fatalf("cold demand should go to memory, got %v", src)
	}
	want := int64(testCfg().LLCLatency + testCfg().MemLatency)
	if ready != want {
		t.Fatalf("ready = %d, want %d", ready, want)
	}
	// After the fill completes the line is an L1 hit.
	h.Tick(ready)
	r2, src2 := h.Demand(100, ready)
	if src2 != HitL1 || r2 != ready+int64(testCfg().L1ILatency) {
		t.Fatalf("after fill: src=%v ready=%d", src2, r2)
	}
}

func TestHierarchyLLCHitAfterEviction(t *testing.T) {
	cfg := testCfg()
	cfg.L1ISizeKB = 1
	cfg.L1IAssoc = 1
	h := NewHierarchy(cfg, 0)
	// Fill line 0, then evict it by filling conflicting lines.
	r, _ := h.Demand(0, 0)
	h.Tick(r)
	conflict := uint64(16) // 1KB/64B = 16 sets... 16 lines, 16 sets, so line 16 maps to set 0
	r2, _ := h.Demand(conflict, r)
	h.Tick(r2)
	// Line 0 evicted from L1 but still in LLC.
	r3, src := h.Demand(0, r2)
	if src != HitLLC {
		t.Fatalf("expected LLC hit, got %v", src)
	}
	if r3 != r2+int64(cfg.LLCLatency) {
		t.Fatalf("LLC latency wrong: %d", r3-r2)
	}
}

func TestPrefetchThenDemandHitsPFB(t *testing.T) {
	cfg := testCfg()
	h := NewHierarchy(cfg, 0)
	if !h.Prefetch(5, 0) {
		t.Fatal("prefetch not issued")
	}
	fill := int64(cfg.LLCLatency + cfg.MemLatency)
	h.Tick(fill)
	if !h.Present(5, fill) {
		t.Fatal("line not present after prefetch fill")
	}
	ready, src := h.Demand(5, fill)
	if src != HitPrefetchBuffer {
		t.Fatalf("expected PFB hit, got %v", src)
	}
	if ready != fill+int64(cfg.L1ILatency) {
		t.Fatalf("PFB hit latency wrong")
	}
	// Promotion: now an L1 hit.
	_, src = h.Demand(5, ready)
	if src != HitL1 {
		t.Fatalf("expected L1 hit after promotion, got %v", src)
	}
}

func TestInFlightPrefetchPartialCoverage(t *testing.T) {
	cfg := testCfg()
	h := NewHierarchy(cfg, 0)
	h.Prefetch(9, 0)
	fill := int64(cfg.LLCLatency + cfg.MemLatency)
	// Demand arrives mid-flight: must wait only the remaining time.
	ready, src := h.Demand(9, fill/2)
	if src != HitInFlight {
		t.Fatalf("expected in-flight merge, got %v", src)
	}
	if ready != fill {
		t.Fatalf("in-flight demand ready=%d, want %d", ready, fill)
	}
	// The merged fill must land in the L1 (demand upgrade).
	h.Tick(fill)
	_, src = h.Demand(9, fill+1)
	if src != HitL1 {
		t.Fatalf("upgraded fill should land in L1, got %v", src)
	}
}

func TestPrefetchDedup(t *testing.T) {
	h := NewHierarchy(testCfg(), 0)
	if !h.Prefetch(3, 0) {
		t.Fatal("first prefetch should issue")
	}
	if h.Prefetch(3, 1) {
		t.Fatal("duplicate prefetch should not issue")
	}
	st := h.Stats()
	if st.Prefetches != 1 {
		t.Fatalf("prefetch count %d, want 1", st.Prefetches)
	}
}

func TestMSHRExhaustionDropsPrefetches(t *testing.T) {
	cfg := testCfg()
	cfg.MSHREntries = 2
	h := NewHierarchy(cfg, 0)
	h.Prefetch(1, 0)
	h.Prefetch(2, 0)
	if h.Prefetch(3, 0) {
		t.Fatal("prefetch should be dropped when MSHRs are full")
	}
	if h.Stats().PrefetchDropped != 1 {
		t.Fatal("dropped prefetch not counted")
	}
}

func TestPFBFIFOEviction(t *testing.T) {
	cfg := testCfg()
	cfg.PrefetchBufEntries = 2
	h := NewHierarchy(cfg, 0)
	fill := int64(cfg.LLCLatency + cfg.MemLatency)
	h.Prefetch(1, 0)
	h.Prefetch(2, 0)
	h.Prefetch(3, 0)
	// Port serialisation staggers the fills; tick past the last one.
	fill += 3 * int64(cfg.LLCPortOccupancy)
	h.Tick(fill)
	// All three fills completed into a 2-entry FIFO: line 1 (oldest) evicted.
	if h.Present(1, fill) {
		t.Fatal("oldest PFB entry should have been evicted")
	}
	if !h.Present(2, fill) || !h.Present(3, fill) {
		t.Fatal("younger PFB entries missing")
	}
	if h.Stats().PFBEvictions != 1 {
		t.Fatal("PFB eviction not counted")
	}
}

func TestLLCReservationShrinksLLC(t *testing.T) {
	full := NewHierarchy(testCfg(), 0)
	carved := NewHierarchy(testCfg(), 4096)
	if carved.llc.Lines() >= full.llc.Lines() {
		t.Fatal("reservation did not shrink LLC")
	}
}

func TestWarmLLC(t *testing.T) {
	cfg := testCfg()
	h := NewHierarchy(cfg, 0)
	h.WarmLLC([]Line{77})
	_, src := h.Demand(77, 0)
	if src != HitLLC {
		t.Fatalf("warmed line should be an LLC hit, got %v", src)
	}
}

func TestDemandNotReadyBeforeL1Latency(t *testing.T) {
	cfg := testCfg()
	h := NewHierarchy(cfg, 0)
	h.Prefetch(4, 0)
	fill := int64(cfg.LLCLatency + cfg.MemLatency)
	// Demand arriving just before completion still pays at least L1 latency.
	ready, _ := h.Demand(4, fill-1)
	if ready < fill-1+int64(cfg.L1ILatency) && ready != fill {
		t.Fatalf("ready=%d violates latency floor", ready)
	}
}

func TestLevelString(t *testing.T) {
	for _, l := range []Level{HitL1, HitPrefetchBuffer, HitInFlight, HitLLC, HitMemory} {
		if l.String() == "?" {
			t.Fatalf("missing name for level %d", l)
		}
	}
}

func BenchmarkDemandHit(b *testing.B) {
	h := NewHierarchy(testCfg(), 0)
	r, _ := h.Demand(1, 0)
	h.Tick(r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Demand(1, r)
	}
}

func BenchmarkPrefetchProbe(b *testing.B) {
	h := NewHierarchy(testCfg(), 0)
	for i := 0; i < b.N; i++ {
		h.Present(uint64(i%512), int64(i))
	}
}

func TestFetchChargesAndReturnsTime(t *testing.T) {
	cfg := testCfg()
	h := NewHierarchy(cfg, 0)
	// Cold: goes to memory.
	r1 := h.Fetch(11, 0)
	if r1 < int64(cfg.LLCLatency) {
		t.Fatalf("cold Fetch ready=%d too fast", r1)
	}
	// Repeat while in flight: same completion time.
	if r2 := h.Fetch(11, 5); r2 != r1 {
		t.Fatalf("in-flight Fetch returned %d, want %d", r2, r1)
	}
	// After the fill lands in the prefetch buffer, Fetch reports it.
	h.Tick(r1)
	r3 := h.Fetch(11, r1)
	if r3 > r1+int64(cfg.L1ILatency) {
		t.Fatalf("present line Fetch ready=%d", r3)
	}
}

func TestFetchBypassesMSHRCap(t *testing.T) {
	cfg := testCfg()
	cfg.MSHREntries = 1
	h := NewHierarchy(cfg, 0)
	h.Prefetch(1, 0) // occupies the only MSHR
	if h.Prefetch(2, 0) {
		t.Fatal("prefetch should be capped")
	}
	// A BTB miss probe must still go through (demand priority).
	if r := h.Fetch(3, 0); r <= 0 {
		t.Fatal("Fetch blocked by MSHR cap")
	}
	if !h.InFlight(3) {
		t.Fatal("Fetch did not allocate a fill")
	}
}

func TestDemandPriorityOverPrefetchPort(t *testing.T) {
	cfg := testCfg()
	h := NewHierarchy(cfg, 0)
	// Saturate the prefetch port with a burst.
	for i := uint64(0); i < 8; i++ {
		h.Prefetch(100+i, 0)
	}
	// A demand at the same cycle must not queue behind the burst.
	ready, _ := h.Demand(500, 0)
	want := int64(cfg.LLCLatency + cfg.MemLatency)
	if ready != want {
		t.Fatalf("demand delayed by prefetch port: ready=%d want=%d", ready, want)
	}
	// The prefetch burst itself, though, is staggered by the port: read the
	// in-flight completion times back through Fetch (which reports the
	// existing MSHR's ready time).
	pFirst := h.Fetch(100, 1)
	pLast := h.Fetch(107, 1)
	if pLast <= pFirst {
		t.Fatalf("prefetch port serialisation missing: first=%d last=%d", pFirst, pLast)
	}
	if pLast-pFirst < 7*int64(cfg.LLCPortOccupancy) {
		t.Fatalf("stagger %d below 7 port slots", pLast-pFirst)
	}
}

// TestHierarchyNextEventBoundsFills pins the event-horizon contract: the
// hierarchy's only spontaneous activity is fill completion, and NextEvent
// reports the earliest pending one (NoEvent when nothing is in flight), so
// the engine may fast-forward to it knowing every earlier Tick is a no-op.
func TestHierarchyNextEventBoundsFills(t *testing.T) {
	h := NewHierarchy(testCfg(), 0)
	if h.NextEvent() != NoEvent {
		t.Fatal("idle hierarchy must report NoEvent")
	}
	ready, _ := h.Demand(100, 0)
	if ev := h.NextEvent(); ev != ready {
		t.Fatalf("next event = %d, want the demand fill's readyAt %d", ev, ready)
	}
	// A second, later fill must not move the horizon earlier.
	ready2, _ := h.Demand(200, 5)
	if ready2 <= ready {
		t.Fatalf("test setup: second fill %d should land after the first %d", ready2, ready)
	}
	if ev := h.NextEvent(); ev != ready {
		t.Fatalf("next event = %d, want the earliest fill %d", ev, ready)
	}
	h.Tick(ready)
	if ev := h.NextEvent(); ev != ready2 {
		t.Fatalf("after first fill: next event = %d, want %d", ev, ready2)
	}
	h.Tick(ready2)
	if h.NextEvent() != NoEvent {
		t.Fatal("drained hierarchy must report NoEvent")
	}
}
