package cache

import (
	"container/heap"

	"boomerang/internal/config"
)

// Level identifies where an instruction access was satisfied.
type Level uint8

const (
	// HitL1 means the line was in the L1-I.
	HitL1 Level = iota
	// HitPrefetchBuffer means the line was in the L1-I prefetch buffer.
	HitPrefetchBuffer
	// HitInFlight means an earlier (prefetch) request is outstanding; the
	// access completes when that fill arrives.
	HitInFlight
	// HitLLC means the line came from the LLC.
	HitLLC
	// HitMemory means the line came from memory beyond the LLC.
	HitMemory
)

func (l Level) String() string {
	switch l {
	case HitL1:
		return "L1"
	case HitPrefetchBuffer:
		return "PFB"
	case HitInFlight:
		return "inflight"
	case HitLLC:
		return "LLC"
	case HitMemory:
		return "mem"
	}
	return "?"
}

// HierarchyStats aggregates instruction-supply traffic.
type HierarchyStats struct {
	DemandAccesses  uint64
	DemandL1Hits    uint64
	DemandPFBHits   uint64
	DemandInFlight  uint64
	DemandLLCFills  uint64
	DemandMemFills  uint64
	Prefetches      uint64
	PrefetchDropped uint64 // MSHRs full
	LLCAccesses     uint64
	LLCMisses       uint64
	PFBEvictions    uint64
	UselessPrefetch uint64 // evicted from PFB without a demand hit
}

type mshr struct {
	line    Line
	readyAt int64
	demand  bool // at least one demand is waiting on this fill
}

// pbufEntry is one prefetch-buffer slot.
type pbufEntry struct {
	line  Line
	seq   uint64 // FIFO order
	ready int64
}

type fillHeap []*mshr

func (h fillHeap) Len() int            { return len(h) }
func (h fillHeap) Less(i, j int) bool  { return h[i].readyAt < h[j].readyAt }
func (h fillHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *fillHeap) Push(x interface{}) { *h = append(*h, x.(*mshr)) }
func (h *fillHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Hierarchy is one core's instruction-supply path: L1-I + prefetch buffer +
// MSHRs in front of a shared LLC and memory. The LLC is modelled privately
// per simulated core (the multi-core harness runs one hierarchy per core with
// the shared capacity divided), with its round-trip latency taken from the
// interconnect model.
type Hierarchy struct {
	cfg config.Core

	l1   *SetAssoc
	llc  *SetAssoc
	pbuf []pbufEntry
	pseq uint64

	mshrs   map[Line]*mshr
	pending fillHeap
	// portFree is when the core's LLC port next becomes available.
	portFree int64

	// fillHook, when set, observes every completed line fill (demand or
	// prefetch). Confluence's predecode-into-BTB path attaches here.
	fillHook func(line Line, now int64)

	stats HierarchyStats
}

// SetFillHook registers a callback invoked for every line fill as it
// completes (at the fill's ready time).
func (h *Hierarchy) SetFillHook(hook func(line Line, now int64)) {
	h.fillHook = hook
}

// NewHierarchy builds the hierarchy from core parameters. llcReservedKB
// carves capacity out of the LLC (SHIFT/Confluence virtualise prefetcher
// metadata into the LLC; the paper charges them that capacity).
func NewHierarchy(cfg config.Core, llcReservedKB int) *Hierarchy {
	llcKB := cfg.LLCSizeKB - llcReservedKB
	if llcKB < 64 {
		llcKB = 64
	}
	return &Hierarchy{
		cfg:   cfg,
		l1:    NewSetAssoc(cfg.L1ISizeKB, cfg.L1IAssoc),
		llc:   NewSetAssoc(llcKB, cfg.LLCAssoc),
		mshrs: make(map[Line]*mshr),
	}
}

// Stats returns accumulated traffic counters.
func (h *Hierarchy) Stats() HierarchyStats { return h.stats }

// Tick completes any fills that are ready at cycle now. Call once per cycle
// (cheap when nothing is pending).
func (h *Hierarchy) Tick(now int64) {
	for len(h.pending) > 0 && h.pending[0].readyAt <= now {
		m := heap.Pop(&h.pending).(*mshr)
		if h.mshrs[m.line] != m {
			continue // superseded
		}
		delete(h.mshrs, m.line)
		if m.demand {
			h.l1.Insert(m.line, now)
		} else {
			h.pbufInsert(m.line, m.readyAt)
		}
		if h.fillHook != nil {
			h.fillHook(m.line, m.readyAt)
		}
	}
}

// Fetch ensures a fill for the line is under way (prefetch semantics: the
// fill lands in the prefetch buffer) and returns the cycle the line will be
// available. Unlike Prefetch it always reports a time, even when the line is
// already present or in flight, and it bypasses the MSHR occupancy cap —
// Boomerang's BTB miss probes use it, as they take priority over ordinary
// prefetch traffic through the L1-I request mux.
func (h *Hierarchy) Fetch(line Line, now int64) int64 {
	if h.l1.Contains(line) {
		return now + int64(h.cfg.L1ILatency)
	}
	if i := h.pbufFind(line); i >= 0 {
		r := h.pbuf[i].ready
		if r < now+int64(h.cfg.L1ILatency) {
			r = now + int64(h.cfg.L1ILatency)
		}
		return r
	}
	if m, ok := h.mshrs[line]; ok {
		return m.readyAt
	}
	// BTB miss probes have demand priority at the request mux.
	ready, _ := h.fillFrom(line, now, true)
	h.allocMSHR(line, ready, false)
	h.stats.Prefetches++
	return ready
}

// Present reports whether the line would hit in L1 or the prefetch buffer at
// cycle now, without any side effects. Prefetch probes use this.
func (h *Hierarchy) Present(line Line, now int64) bool {
	if h.l1.Contains(line) {
		return true
	}
	if i := h.pbufFind(line); i >= 0 && h.pbuf[i].ready <= now {
		return true
	}
	return false
}

// InFlight reports whether a fill for the line is outstanding.
func (h *Hierarchy) InFlight(line Line) bool {
	_, ok := h.mshrs[line]
	return ok
}

// Demand performs a demand fetch of the line at cycle now, returning the
// cycle the instructions are available and where they came from. A prefetch
// buffer hit promotes the line into the L1-I; an outstanding prefetch is
// upgraded to demand so its fill lands in the L1-I.
func (h *Hierarchy) Demand(line Line, now int64) (readyAt int64, src Level) {
	h.stats.DemandAccesses++
	lat := int64(h.cfg.L1ILatency)
	if h.l1.Lookup(line, now) {
		h.stats.DemandL1Hits++
		return now + lat, HitL1
	}
	if i := h.pbufFind(line); i >= 0 && h.pbuf[i].ready <= now {
		h.stats.DemandPFBHits++
		h.pbufRemove(i)
		h.l1.Insert(line, now)
		return now + lat, HitPrefetchBuffer
	}
	if m, ok := h.mshrs[line]; ok {
		h.stats.DemandInFlight++
		m.demand = true
		if m.readyAt < now+lat {
			return now + lat, HitInFlight
		}
		return m.readyAt, HitInFlight
	}
	ready, lvl := h.fillFrom(line, now, true)
	h.allocMSHR(line, ready, true)
	if lvl == HitLLC {
		h.stats.DemandLLCFills++
	} else {
		h.stats.DemandMemFills++
	}
	return ready, lvl
}

// Prefetch requests the line into the prefetch buffer. It returns false when
// no request was issued (already present, in flight, or MSHRs exhausted).
func (h *Hierarchy) Prefetch(line Line, now int64) bool {
	if h.l1.Contains(line) || h.pbufFind(line) >= 0 || h.InFlight(line) {
		return false
	}
	if len(h.mshrs) >= h.cfg.MSHREntries {
		h.stats.PrefetchDropped++
		return false
	}
	ready, _ := h.fillFrom(line, now, false)
	h.allocMSHR(line, ready, false)
	h.stats.Prefetches++
	return true
}

// DemandLatencyBound returns when a demand issued now for a line absent
// everywhere would complete — used by schemes that want the worst case.
func (h *Hierarchy) DemandLatencyBound(now int64) int64 {
	return now + int64(h.cfg.LLCLatency+h.cfg.MemLatency)
}

// LLCRoundTrip exposes the configured LLC round-trip latency (prefetchers
// with LLC-resident metadata pay this per metadata access).
func (h *Hierarchy) LLCRoundTrip() int64 { return int64(h.cfg.LLCLatency) }

// fillFrom models the shared-LLC access: LLC hit costs the round trip, a
// miss adds the memory latency and installs the line in the LLC. Prefetch
// requests serialise on the core's LLC port/link, so bursts of (possibly
// useless) prefetch traffic delay later prefetches — the bandwidth cost the
// paper's throttled prefetch policy is designed around. Demand fills take
// priority and bypass the prefetch queue.
func (h *Hierarchy) fillFrom(line Line, now int64, demand bool) (int64, Level) {
	h.stats.LLCAccesses++
	start := now
	if !demand {
		if start < h.portFree {
			start = h.portFree
		}
		h.portFree = start + int64(h.cfg.LLCPortOccupancy)
	}
	if h.llc.Lookup(line, now) {
		return start + int64(h.cfg.LLCLatency), HitLLC
	}
	h.stats.LLCMisses++
	h.llc.Insert(line, now)
	return start + int64(h.cfg.LLCLatency+h.cfg.MemLatency), HitMemory
}

func (h *Hierarchy) allocMSHR(line Line, ready int64, demand bool) {
	m := &mshr{line: line, readyAt: ready, demand: demand}
	h.mshrs[line] = m
	heap.Push(&h.pending, m)
}

func (h *Hierarchy) pbufFind(line Line) int {
	for i := range h.pbuf {
		if h.pbuf[i].line == line {
			return i
		}
	}
	return -1
}

func (h *Hierarchy) pbufInsert(line Line, ready int64) {
	if h.cfg.PrefetchBufEntries == 0 {
		// No prefetch buffer configured: fill straight into the L1.
		h.l1.Insert(line, ready)
		return
	}
	if len(h.pbuf) >= h.cfg.PrefetchBufEntries {
		// FIFO eviction of the oldest entry.
		oldest := 0
		for i := range h.pbuf {
			if h.pbuf[i].seq < h.pbuf[oldest].seq {
				oldest = i
			}
		}
		h.pbufRemove(oldest)
		h.stats.PFBEvictions++
		h.stats.UselessPrefetch++
	}
	h.pseq++
	h.pbuf = append(h.pbuf, pbufEntry{line: line, seq: h.pseq, ready: ready})
}

func (h *Hierarchy) pbufRemove(i int) {
	h.pbuf[i] = h.pbuf[len(h.pbuf)-1]
	h.pbuf = h.pbuf[:len(h.pbuf)-1]
}

// WarmLLC preloads lines into the LLC (checkpoint-style warmup, mirroring the
// paper's SMARTS methodology of starting from warmed microarchitectural
// state).
func (h *Hierarchy) WarmLLC(lines []Line) {
	for _, l := range lines {
		h.llc.Insert(l, 0)
	}
}
