package cache

import (
	"math"

	"boomsim/internal/config"
	"boomsim/internal/flatmap"
	"boomsim/internal/stats"
)

// NoEvent is the NextEvent sentinel for "no scheduled work": there is no
// future cycle at which the component will change state on its own. The
// engine's event-horizon cycle skip treats it as +infinity.
const NoEvent = int64(math.MaxInt64)

// Level identifies where an instruction access was satisfied.
type Level uint8

const (
	// HitL1 means the line was in the L1-I.
	HitL1 Level = iota
	// HitPrefetchBuffer means the line was in the L1-I prefetch buffer.
	HitPrefetchBuffer
	// HitInFlight means an earlier (prefetch) request is outstanding; the
	// access completes when that fill arrives.
	HitInFlight
	// HitLLC means the line came from the LLC.
	HitLLC
	// HitMemory means the line came from memory beyond the LLC.
	HitMemory
)

func (l Level) String() string {
	switch l {
	case HitL1:
		return "L1"
	case HitPrefetchBuffer:
		return "PFB"
	case HitInFlight:
		return "inflight"
	case HitLLC:
		return "LLC"
	case HitMemory:
		return "mem"
	}
	return "?"
}

// HierarchyStats aggregates instruction-supply traffic.
type HierarchyStats struct {
	DemandAccesses  uint64
	DemandL1Hits    uint64
	DemandPFBHits   uint64
	DemandInFlight  uint64
	DemandLLCFills  uint64
	DemandMemFills  uint64
	Prefetches      uint64
	PrefetchDropped uint64 // MSHRs full
	LLCAccesses     uint64
	LLCMisses       uint64
	PFBEvictions    uint64
	UselessPrefetch uint64 // evicted from PFB without a demand hit
}

type mshr struct {
	line    Line
	readyAt int64
	demand  bool // at least one demand is waiting on this fill
}

// pbufEntry is one prefetch-buffer slot.
type pbufEntry struct {
	line  Line
	seq   uint64 // FIFO order
	ready int64
}

// Hierarchy is one core's instruction-supply path: L1-I + prefetch buffer +
// MSHRs in front of a shared LLC and memory. The LLC is modelled privately
// per simulated core (the multi-core harness runs one hierarchy per core with
// the shared capacity divided), with its round-trip latency taken from the
// interconnect model.
//
// MSHRs live in a preallocated slab indexed by an open-addressed line table
// and ordered by a manual index min-heap, so the per-cycle path (Tick,
// Demand, Prefetch, Fetch) performs no heap allocation at steady state.
type Hierarchy struct {
	cfg config.Core

	l1   *SetAssoc
	llc  *SetAssoc
	pbuf []pbufEntry
	pseq uint64

	// mshrSlab backs every MSHR; free lists recycled indices. mshrs maps a
	// line to its slab index; pending is a min-heap of slab indices ordered
	// by readyAt.
	mshrSlab []mshr
	mshrFree []int32
	mshrs    flatmap.Map
	pending  []int32

	// portFree is when the core's LLC port next becomes available.
	portFree int64

	// fillHook, when set, observes every completed line fill (demand or
	// prefetch). Confluence's predecode-into-BTB path attaches here.
	fillHook func(line Line, now int64)

	stats HierarchyStats
}

// SetFillHook registers a callback invoked for every line fill as it
// completes (at the fill's ready time).
func (h *Hierarchy) SetFillHook(hook func(line Line, now int64)) {
	h.fillHook = hook
}

// NewHierarchy builds the hierarchy from core parameters. llcReservedKB
// carves capacity out of the LLC (SHIFT/Confluence virtualise prefetcher
// metadata into the LLC; the paper charges them that capacity).
func NewHierarchy(cfg config.Core, llcReservedKB int) *Hierarchy {
	llcKB := cfg.LLCSizeKB - llcReservedKB
	if llcKB < 64 {
		llcKB = 64
	}
	h := &Hierarchy{
		cfg:      cfg,
		l1:       NewSetAssoc(cfg.L1ISizeKB, cfg.L1IAssoc),
		llc:      NewSetAssoc(llcKB, cfg.LLCAssoc),
		pbuf:     make([]pbufEntry, 0, cfg.PrefetchBufEntries),
		mshrSlab: make([]mshr, 0, cfg.MSHREntries+8),
		mshrFree: make([]int32, 0, cfg.MSHREntries+8),
		pending:  make([]int32, 0, cfg.MSHREntries+8),
	}
	return h
}

// Stats returns accumulated traffic counters.
func (h *Hierarchy) Stats() HierarchyStats { return h.stats }

// PublishStats registers the hierarchy's counters under its namespace of
// the per-component statistics registry.
func (h *Hierarchy) PublishStats(r *stats.Registry) {
	s := h.stats
	r.SetUint("demand_accesses", s.DemandAccesses)
	r.SetUint("demand_l1_hits", s.DemandL1Hits)
	r.SetUint("demand_pfb_hits", s.DemandPFBHits)
	r.SetUint("demand_inflight_hits", s.DemandInFlight)
	r.SetUint("demand_llc_fills", s.DemandLLCFills)
	r.SetUint("demand_mem_fills", s.DemandMemFills)
	r.SetUint("prefetches", s.Prefetches)
	r.SetUint("prefetch_dropped", s.PrefetchDropped)
	r.SetUint("llc_accesses", s.LLCAccesses)
	r.SetUint("llc_misses", s.LLCMisses)
	r.SetUint("pfb_evictions", s.PFBEvictions)
	r.SetUint("useless_prefetches", s.UselessPrefetch)
}

// Tick completes any fills that are ready at cycle now. Call once per cycle
// (cheap when nothing is pending).
func (h *Hierarchy) Tick(now int64) {
	for len(h.pending) > 0 && h.mshrSlab[h.pending[0]].readyAt <= now {
		idx := h.heapPop()
		m := &h.mshrSlab[idx]
		if cur, ok := h.mshrs.Get(m.line); !ok || cur != idx {
			h.freeMSHR(idx)
			continue // superseded
		}
		h.mshrs.Delete(m.line)
		if m.demand {
			h.l1.Insert(m.line, now)
		} else {
			h.pbufInsert(m.line, m.readyAt)
		}
		line, ready := m.line, m.readyAt
		h.freeMSHR(idx)
		if h.fillHook != nil {
			h.fillHook(line, ready)
		}
	}
}

// NextEvent returns the earliest cycle at which Tick will complete a fill —
// the readyAt of the earliest pending MSHR — or NoEvent when nothing is in
// flight. Between now and that cycle Tick is a no-op: fills are the only
// spontaneous state change the hierarchy makes (port and prefetch-buffer
// availability are watermarks evaluated on access, not timers), which is
// what lets the engine fast-forward stalled windows across it. A superseded
// heap entry may yield an earlier (conservative) cycle; that only shortens
// a skip, never corrupts one.
func (h *Hierarchy) NextEvent() int64 {
	if len(h.pending) == 0 {
		return NoEvent
	}
	return h.mshrSlab[h.pending[0]].readyAt
}

// Fetch ensures a fill for the line is under way (prefetch semantics: the
// fill lands in the prefetch buffer) and returns the cycle the line will be
// available. Unlike Prefetch it always reports a time, even when the line is
// already present or in flight, and it bypasses the MSHR occupancy cap —
// Boomerang's BTB miss probes use it, as they take priority over ordinary
// prefetch traffic through the L1-I request mux.
func (h *Hierarchy) Fetch(line Line, now int64) int64 {
	if h.l1.Contains(line) {
		return now + int64(h.cfg.L1ILatency)
	}
	if i := h.pbufFind(line); i >= 0 {
		r := h.pbuf[i].ready
		if r < now+int64(h.cfg.L1ILatency) {
			r = now + int64(h.cfg.L1ILatency)
		}
		return r
	}
	if idx, ok := h.mshrs.Get(line); ok {
		return h.mshrSlab[idx].readyAt
	}
	// BTB miss probes have demand priority at the request mux.
	ready, _ := h.fillFrom(line, now, true)
	h.allocMSHR(line, ready, false)
	h.stats.Prefetches++
	return ready
}

// Present reports whether the line would hit in L1 or the prefetch buffer at
// cycle now, without any side effects. Prefetch probes use this.
func (h *Hierarchy) Present(line Line, now int64) bool {
	if h.l1.Contains(line) {
		return true
	}
	if i := h.pbufFind(line); i >= 0 && h.pbuf[i].ready <= now {
		return true
	}
	return false
}

// InFlight reports whether a fill for the line is outstanding.
func (h *Hierarchy) InFlight(line Line) bool {
	_, ok := h.mshrs.Get(line)
	return ok
}

// Demand performs a demand fetch of the line at cycle now, returning the
// cycle the instructions are available and where they came from. A prefetch
// buffer hit promotes the line into the L1-I; an outstanding prefetch is
// upgraded to demand so its fill lands in the L1-I.
func (h *Hierarchy) Demand(line Line, now int64) (readyAt int64, src Level) {
	h.stats.DemandAccesses++
	lat := int64(h.cfg.L1ILatency)
	if h.l1.Lookup(line, now) {
		h.stats.DemandL1Hits++
		return now + lat, HitL1
	}
	if i := h.pbufFind(line); i >= 0 && h.pbuf[i].ready <= now {
		h.stats.DemandPFBHits++
		h.pbufRemove(i)
		h.l1.Insert(line, now)
		return now + lat, HitPrefetchBuffer
	}
	if idx, ok := h.mshrs.Get(line); ok {
		h.stats.DemandInFlight++
		m := &h.mshrSlab[idx]
		m.demand = true
		if m.readyAt < now+lat {
			return now + lat, HitInFlight
		}
		return m.readyAt, HitInFlight
	}
	ready, lvl := h.fillFrom(line, now, true)
	h.allocMSHR(line, ready, true)
	if lvl == HitLLC {
		h.stats.DemandLLCFills++
	} else {
		h.stats.DemandMemFills++
	}
	return ready, lvl
}

// Prefetch requests the line into the prefetch buffer. It returns false when
// no request was issued (already present, in flight, or MSHRs exhausted).
func (h *Hierarchy) Prefetch(line Line, now int64) bool {
	if h.l1.Contains(line) || h.pbufFind(line) >= 0 || h.InFlight(line) {
		return false
	}
	if h.mshrs.Len() >= h.cfg.MSHREntries {
		h.stats.PrefetchDropped++
		return false
	}
	ready, _ := h.fillFrom(line, now, false)
	h.allocMSHR(line, ready, false)
	h.stats.Prefetches++
	return true
}

// DemandLatencyBound returns when a demand issued now for a line absent
// everywhere would complete — used by schemes that want the worst case.
func (h *Hierarchy) DemandLatencyBound(now int64) int64 {
	return now + int64(h.cfg.LLCLatency+h.cfg.MemLatency)
}

// LLCRoundTrip exposes the configured LLC round-trip latency (prefetchers
// with LLC-resident metadata pay this per metadata access).
func (h *Hierarchy) LLCRoundTrip() int64 { return int64(h.cfg.LLCLatency) }

// fillFrom models the shared-LLC access: LLC hit costs the round trip, a
// miss adds the memory latency and installs the line in the LLC. Prefetch
// requests serialise on the core's LLC port/link, so bursts of (possibly
// useless) prefetch traffic delay later prefetches — the bandwidth cost the
// paper's throttled prefetch policy is designed around. Demand fills take
// priority and bypass the prefetch queue.
func (h *Hierarchy) fillFrom(line Line, now int64, demand bool) (int64, Level) {
	h.stats.LLCAccesses++
	start := now
	if !demand {
		if start < h.portFree {
			start = h.portFree
		}
		h.portFree = start + int64(h.cfg.LLCPortOccupancy)
	}
	if h.llc.Lookup(line, now) {
		return start + int64(h.cfg.LLCLatency), HitLLC
	}
	h.stats.LLCMisses++
	h.llc.Insert(line, now)
	return start + int64(h.cfg.LLCLatency+h.cfg.MemLatency), HitMemory
}

func (h *Hierarchy) allocMSHR(line Line, ready int64, demand bool) {
	var idx int32
	if n := len(h.mshrFree); n > 0 {
		idx = h.mshrFree[n-1]
		h.mshrFree = h.mshrFree[:n-1]
	} else {
		idx = int32(len(h.mshrSlab))
		h.mshrSlab = append(h.mshrSlab, mshr{})
	}
	h.mshrSlab[idx] = mshr{line: line, readyAt: ready, demand: demand}
	h.mshrs.Set(line, idx)
	h.heapPush(idx)
}

func (h *Hierarchy) freeMSHR(idx int32) {
	h.mshrFree = append(h.mshrFree, idx)
}

// heapPush/heapPop maintain pending as a binary min-heap of slab indices
// keyed by readyAt.
func (h *Hierarchy) heapPush(idx int32) {
	h.pending = append(h.pending, idx)
	i := len(h.pending) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h.mshrSlab[h.pending[parent]].readyAt <= h.mshrSlab[h.pending[i]].readyAt {
			break
		}
		h.pending[parent], h.pending[i] = h.pending[i], h.pending[parent]
		i = parent
	}
}

func (h *Hierarchy) heapPop() int32 {
	top := h.pending[0]
	last := len(h.pending) - 1
	h.pending[0] = h.pending[last]
	h.pending = h.pending[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < last && h.mshrSlab[h.pending[l]].readyAt < h.mshrSlab[h.pending[smallest]].readyAt {
			smallest = l
		}
		if r < last && h.mshrSlab[h.pending[r]].readyAt < h.mshrSlab[h.pending[smallest]].readyAt {
			smallest = r
		}
		if smallest == i {
			break
		}
		h.pending[i], h.pending[smallest] = h.pending[smallest], h.pending[i]
		i = smallest
	}
	return top
}

func (h *Hierarchy) pbufFind(line Line) int {
	for i := range h.pbuf {
		if h.pbuf[i].line == line {
			return i
		}
	}
	return -1
}

func (h *Hierarchy) pbufInsert(line Line, ready int64) {
	if h.cfg.PrefetchBufEntries == 0 {
		// No prefetch buffer configured: fill straight into the L1.
		h.l1.Insert(line, ready)
		return
	}
	if len(h.pbuf) >= h.cfg.PrefetchBufEntries {
		// FIFO eviction of the oldest entry.
		oldest := 0
		for i := range h.pbuf {
			if h.pbuf[i].seq < h.pbuf[oldest].seq {
				oldest = i
			}
		}
		h.pbufRemove(oldest)
		h.stats.PFBEvictions++
		h.stats.UselessPrefetch++
	}
	h.pseq++
	h.pbuf = append(h.pbuf, pbufEntry{line: line, seq: h.pseq, ready: ready})
}

func (h *Hierarchy) pbufRemove(i int) {
	h.pbuf[i] = h.pbuf[len(h.pbuf)-1]
	h.pbuf = h.pbuf[:len(h.pbuf)-1]
}

// WarmLLC preloads lines into the LLC (checkpoint-style warmup, mirroring the
// paper's SMARTS methodology of starting from warmed microarchitectural
// state).
func (h *Hierarchy) WarmLLC(lines []Line) {
	for _, l := range lines {
		h.llc.Insert(l, 0)
	}
}
