// Package cache models the instruction-side memory hierarchy: a generic
// set-associative cache, the L1-I with its prefetch buffer and MSHRs, and a
// shared LLC backed by memory. Timing is expressed as absolute cycle numbers:
// an access at cycle t returns the cycle its data is ready, so in-flight
// prefetches naturally provide partial latency coverage — the effect the
// paper's "stall cycles covered" metric is designed to capture.
package cache

import (
	"fmt"

	"boomsim/internal/isa"
)

// Line is a cache-line index (address / 64).
type Line = uint64

// LineOf maps an instruction address to its line index.
func LineOf(pc isa.Addr) Line { return pc / isa.BlockBytes }

type way struct {
	tag     uint64
	valid   bool
	lastUse int64
}

// SetAssoc is a set-associative cache with true-LRU replacement over line
// indices. It stores presence only (instruction caches are read-only here).
// Ways live in one flat backing array indexed arithmetically — set lookup is
// pure address math, with no per-set slice header to chase on the hot path.
type SetAssoc struct {
	ways    []way
	assoc   int
	nsets   uint64
	isPow2  bool
	setMask uint64
	hits    uint64
	misses  uint64
}

// NewSetAssoc builds a cache of the given capacity with sets =
// size/(assoc*line). Power-of-two set counts index with a mask; other set
// counts (e.g. an LLC with capacity carved out for prefetcher metadata)
// index by modulo so the configured capacity is preserved exactly.
func NewSetAssoc(sizeKB, assoc int) *SetAssoc {
	if sizeKB <= 0 || assoc <= 0 {
		panic("cache: non-positive geometry")
	}
	lines := sizeKB * 1024 / isa.BlockBytes
	nsets := lines / assoc
	if nsets == 0 {
		nsets = 1
	}
	return &SetAssoc{
		ways:    make([]way, nsets*assoc),
		assoc:   assoc,
		nsets:   uint64(nsets),
		isPow2:  nsets&(nsets-1) == 0,
		setMask: uint64(nsets - 1),
	}
}

// Ways returns the associativity.
func (c *SetAssoc) Ways() int { return c.assoc }

// Sets returns the set count.
func (c *SetAssoc) Sets() int { return int(c.nsets) }

// Lines returns total capacity in lines.
func (c *SetAssoc) Lines() int { return len(c.ways) }

func (c *SetAssoc) set(line Line) []way {
	var idx uint64
	if c.isPow2 {
		idx = line & c.setMask
	} else {
		idx = line % c.nsets
	}
	base := int(idx) * c.assoc
	return c.ways[base : base+c.assoc]
}

// Lookup checks for the line, updating LRU and hit/miss counters on use.
func (c *SetAssoc) Lookup(line Line, now int64) bool {
	s := c.set(line)
	for i := range s {
		if s[i].valid && s[i].tag == line {
			s[i].lastUse = now
			c.hits++
			return true
		}
	}
	c.misses++
	return false
}

// Contains probes without perturbing LRU or counters (prefetch probes use
// this so probing does not distort replacement).
func (c *SetAssoc) Contains(line Line) bool {
	s := c.set(line)
	for i := range s {
		if s[i].valid && s[i].tag == line {
			return true
		}
	}
	return false
}

// Insert fills the line, evicting the LRU way if needed. It returns the
// victim line when a valid entry was displaced.
func (c *SetAssoc) Insert(line Line, now int64) (victim Line, evicted bool) {
	s := c.set(line)
	lru := 0
	for i := range s {
		if s[i].valid && s[i].tag == line {
			s[i].lastUse = now // already present; refresh
			return 0, false
		}
		if !s[i].valid {
			s[i] = way{tag: line, valid: true, lastUse: now}
			return 0, false
		}
		if s[i].lastUse < s[lru].lastUse {
			lru = i
		}
	}
	victim = s[lru].tag
	s[lru] = way{tag: line, valid: true, lastUse: now}
	return victim, true
}

// Invalidate drops the line if present.
func (c *SetAssoc) Invalidate(line Line) {
	s := c.set(line)
	for i := range s {
		if s[i].valid && s[i].tag == line {
			s[i].valid = false
			return
		}
	}
}

// Stats returns lifetime hit/miss counts from Lookup calls.
func (c *SetAssoc) Stats() (hits, misses uint64) { return c.hits, c.misses }

func (c *SetAssoc) String() string {
	return fmt.Sprintf("cache{%d sets x %d ways}", c.Sets(), c.Ways())
}
