package cache

// Clone returns an independent deep copy of the cache: same contents, LRU
// state and counters, no shared storage.
func (c *SetAssoc) Clone() *SetAssoc {
	n := *c
	n.ways = append(make([]way, 0, len(c.ways)), c.ways...)
	return &n
}

// Clone returns an independent deep copy of the hierarchy: caches, prefetch
// buffer, MSHR state and counters all duplicated, so advancing the clone
// never perturbs the original. The fill hook is NOT carried over — it is a
// closure owned by the scheme that installed it, which must re-attach one
// bound to the cloned components (see scheme.Instance.Clone).
func (h *Hierarchy) Clone() *Hierarchy {
	c := *h
	c.l1 = h.l1.Clone()
	c.llc = h.llc.Clone()
	c.pbuf = append(make([]pbufEntry, 0, cap(h.pbuf)), h.pbuf...)
	c.mshrSlab = append(make([]mshr, 0, cap(h.mshrSlab)), h.mshrSlab...)
	c.mshrFree = append(make([]int32, 0, cap(h.mshrFree)), h.mshrFree...)
	c.mshrs = h.mshrs.Clone()
	c.pending = append(make([]int32, 0, cap(h.pending)), h.pending...)
	c.fillHook = nil
	return &c
}
