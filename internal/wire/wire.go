// Package wire defines the JSON types shared by boomsimd's HTTP API, the
// cluster coordinator and remote-mode CLI clients. It deliberately imports
// nothing from the rest of the module: the root boomsim package builds
// these requests, internal/server serves them, and internal/cluster routes
// them, so this is the one vocabulary all three may depend on without
// import cycles.
//
// Simulation results travel as json.RawMessage here. The server marshals
// boomsim.Result into the field; clients that want typed access (the root
// package's distributed runner) unmarshal it back — boomsim.Result
// round-trips bytes exactly — while transport-only consumers (the
// coordinator) never pay for a decode they do not need.
package wire

import "encoding/json"

// RunRequest is the wire form of one simulation configuration. Absent
// fields take boomsim.New's documented defaults (Boomerang on Apache,
// Table I core, seeds 1/1, 200K warm + 1M measured instructions); pointer
// fields distinguish "absent" from an explicit zero.
type RunRequest struct {
	Scheme   string `json:"scheme,omitempty"`
	Workload string `json:"workload,omitempty"`
	// SchemeConfig, when present, is an inline declarative scheme definition
	// (the JSON form of boomsim.SchemeConfig) that overrides Scheme: custom
	// scenarios travel with the request instead of requiring registration on
	// every worker. Carried raw — this package stays a dumb vocabulary; the
	// server decodes and validates it.
	SchemeConfig  json.RawMessage `json:"scheme_config,omitempty"`
	Predictor     string          `json:"predictor,omitempty"`
	BTBEntries    int             `json:"btb_entries,omitempty"`
	LLCLatency    int             `json:"llc_latency,omitempty"`
	FootprintKB   int             `json:"footprint_kb,omitempty"`
	ImageSeed     *uint64         `json:"image_seed,omitempty"`
	WalkSeed      *uint64         `json:"walk_seed,omitempty"`
	WarmInstrs    *uint64         `json:"warm_instrs,omitempty"`
	MeasureInstrs *uint64         `json:"measure_instrs,omitempty"`
	MaxCycles     int64           `json:"max_cycles,omitempty"`
	// FlightEvery > 0 attaches the simulator flight recorder at this epoch
	// granularity (cycles); the result then carries per-epoch counters. It
	// participates in the simulation's identity (recorded results have
	// different bytes), so coordinator and worker fingerprints agree.
	FlightEvery int64 `json:"flight_every,omitempty"`
	// NoCycleSkip forces the per-cycle simulation loop instead of
	// event-horizon cycle skipping (boomsim.WithCycleSkip(false)). Results
	// are byte-identical either way, so — like warm reuse — it never
	// participates in the simulation's identity; it rides the wire so
	// control runs and per-cycle debugging reach remote workers.
	NoCycleSkip bool `json:"no_cycle_skip,omitempty"`
	// TimeoutMS tightens this request's deadline below the server cap.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// TraceID correlates this request with a client-side sweep trace; the
	// server only logs it. Never part of the simulation's identity.
	TraceID string `json:"trace_id,omitempty"`
}

// RunResponse is the client-side view of POST /v1/run's body: the shape
// internal/server writes (with a typed Result), decoded with the result
// left raw.
type RunResponse struct {
	Key    string          `json:"key"`
	Cached bool            `json:"cached"`
	Result json.RawMessage `json:"result"`
}

// JobsRequest is a batch of independent jobs for POST /v1/jobs. Unlike
// /v1/matrix — one flight, one shared fate — every job is admitted, cached
// and executed on its own, and failures are reported per job so a
// coordinator can re-dispatch exactly the cells that need it.
type JobsRequest struct {
	Jobs []RunRequest `json:"jobs"`
	// TimeoutMS tightens the whole batch's deadline below the server cap.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// TraceID is the sweep trace this batch belongs to, minted by the
	// coordinator's client and propagated so worker-side logs correlate
	// with coordinator-side spans.
	TraceID string `json:"trace_id,omitempty"`
}

// JobResult is one job's outcome: exactly one of Result or Error is set.
type JobResult struct {
	Key    string          `json:"key,omitempty"`
	Cached bool            `json:"cached,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`

	// SimNanos is the worker-side wall time actually spent simulating this
	// job (0 on a cache hit) and Warm how its warmed state was obtained
	// ("fork" from the warm arena, "fresh", "" when not simulated) — the
	// facts a coordinator's trace needs to attribute a cell's latency.
	SimNanos int64  `json:"sim_nanos,omitempty"`
	Warm     string `json:"warm,omitempty"`

	// Error carries the failure text and Status its HTTP-equivalent code
	// (429 queue full, 400/404 bad configuration, 503 draining, 504
	// deadline). RetryAfterMS, when set, is the server's backoff hint —
	// the in-band equivalent of a Retry-After header.
	Error        string `json:"error,omitempty"`
	Status       int    `json:"status,omitempty"`
	RetryAfterMS int64  `json:"retry_after_ms,omitempty"`
}

// Retryable reports whether the job's failure is worth re-dispatching:
// capacity and transient conditions are, configuration errors are not.
func (j JobResult) Retryable() bool {
	switch j.Status {
	case 0:
		return false
	case 400, 404:
		return false
	}
	return true
}

// JobsResponse carries per-job outcomes in request order.
type JobsResponse struct {
	Jobs []JobResult `json:"jobs"`
}

// Health is GET /healthz's body: liveness plus the build and load facts a
// coordinator (or an operator) needs for placement decisions.
type Health struct {
	Status    string `json:"status"`
	Version   string `json:"version"`
	GoVersion string `json:"go_version"`
	Revision  string `json:"revision,omitempty"`

	Schemes   int `json:"schemes"`
	Workloads int `json:"workloads"`

	// Load: current in-flight simulations and admitted flights against
	// their configured capacities.
	Workers       int   `json:"workers"`
	QueueDepth    int   `json:"queue_depth"`
	InFlightSims  int64 `json:"inflight_sims"`
	QueuedFlights int64 `json:"queued_flights"`
	CacheEntries  int   `json:"cache_entries"`

	// Store reports the durable result store when the worker has one: the
	// recovery state an operator checks after a restart or a corruption.
	Store *StoreHealth `json:"store,omitempty"`
}

// StoreHealth is the durable result store's slice of /healthz.
type StoreHealth struct {
	Dir     string `json:"dir"`
	Entries int64  `json:"entries"`
	Bytes   int64  `json:"bytes"`
	Hits    uint64 `json:"hits"`
	Misses  uint64 `json:"misses"`
	Writes  uint64 `json:"writes"`
	// Quarantined counts entries that failed fingerprint verification on
	// read and were moved aside instead of served.
	Quarantined uint64 `json:"quarantined"`
}

// Membership is the dynamic worker-pool document a coordinator watches (a
// file or an endpoint): the authoritative list of worker base URLs. Workers
// appearing mid-sweep join the pool after a health probe; workers removed
// mid-sweep are retired and only their rendezvous keys move.
type Membership struct {
	Workers []string `json:"workers"`
}

// MembershipView is the coordinator's live opinion of its pool, served on
// the coordinator's own /healthz for operators: per-worker circuit state
// ("live", "suspect" while a reopened breaker probes, "dead" while open)
// plus the aggregate counts.
type MembershipView struct {
	Live    int                `json:"live"`
	Suspect int                `json:"suspect"`
	Dead    int                `json:"dead"`
	Workers []MembershipWorker `json:"workers"`
}

// MembershipWorker is one endpoint's row in a MembershipView.
type MembershipWorker struct {
	Endpoint string `json:"endpoint"`
	State    string `json:"state"`
}
