package server

import (
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"

	"boomsim"
)

// metrics is the service's instrumentation: plain atomics, rendered in
// Prometheus text exposition format by the /metrics handler. Stats gives
// tests and embedders a consistent snapshot without scraping.
type metrics struct {
	requests     atomic.Uint64 // HTTP requests accepted on /v1/* endpoints
	rejected     atomic.Uint64 // 429 responses (queue full)
	cacheHits    atomic.Uint64 // requests answered from the result cache
	cacheMisses  atomic.Uint64 // requests that had to consult a flight
	flightShared atomic.Uint64 // requests collapsed onto an in-flight run
	simsStarted  atomic.Uint64 // simulations actually executed
	simsInflight atomic.Int64  // simulations running right now
	queued       atomic.Int64  // flights admitted (queued + running)
	simNanos     atomic.Uint64 // wall time spent simulating
	simInstrs    atomic.Uint64 // instructions retired across all runs

	// compMu guards compTotals: per-component registry statistics summed
	// across every executed simulation (cache hits excluded — they did not
	// simulate). Exposed on /metrics as
	// boomsimd_sim_component_total{stat="..."}, giving operators the full
	// per-component measurement plane, not just the headline counters.
	compMu     sync.Mutex
	compTotals map[string]float64
}

// observeComponents folds one executed run's per-component registry into
// the service-lifetime totals.
func (m *metrics) observeComponents(r boomsim.Result) {
	if len(r.Stats) == 0 {
		return
	}
	m.compMu.Lock()
	if m.compTotals == nil {
		m.compTotals = make(map[string]float64, len(r.Stats))
	}
	for k, v := range r.Stats {
		m.compTotals[k] += v
	}
	m.compMu.Unlock()
}

// componentTotals snapshots the per-component sums in sorted order.
func (m *metrics) componentTotals() ([]string, map[string]float64) {
	m.compMu.Lock()
	defer m.compMu.Unlock()
	names := make([]string, 0, len(m.compTotals))
	out := make(map[string]float64, len(m.compTotals))
	for k, v := range m.compTotals {
		names = append(names, k)
		out[k] = v
	}
	sort.Strings(names)
	return names, out
}

// Stats is a point-in-time snapshot of the service counters.
type Stats struct {
	Requests     uint64 `json:"requests"`
	Rejected     uint64 `json:"rejected"`
	CacheHits    uint64 `json:"cache_hits"`
	CacheMisses  uint64 `json:"cache_misses"`
	FlightShared uint64 `json:"flight_shared"`
	SimsStarted  uint64 `json:"sims_started"`
	SimsInflight int64  `json:"sims_inflight"`
	Queued       int64  `json:"queued"`
	SimNanos     uint64 `json:"sim_nanos"`
	SimInstrs    uint64 `json:"sim_instrs"`
}

// NsPerInstr is the service-lifetime average simulation speed, the repo's
// headline performance metric (see bench_test.go).
func (s Stats) NsPerInstr() float64 {
	if s.SimInstrs == 0 {
		return 0
	}
	return float64(s.SimNanos) / float64(s.SimInstrs)
}

func (m *metrics) snapshot() Stats {
	return Stats{
		Requests:     m.requests.Load(),
		Rejected:     m.rejected.Load(),
		CacheHits:    m.cacheHits.Load(),
		CacheMisses:  m.cacheMisses.Load(),
		FlightShared: m.flightShared.Load(),
		SimsStarted:  m.simsStarted.Load(),
		SimsInflight: m.simsInflight.Load(),
		Queued:       m.queued.Load(),
		SimNanos:     m.simNanos.Load(),
		SimInstrs:    m.simInstrs.Load(),
	}
}

func (m *metrics) serveHTTP(w http.ResponseWriter, r *http.Request) {
	s := m.snapshot()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	write := func(name, kind, help string, value any) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %v\n", name, help, name, kind, name, value)
	}
	write("boomsimd_requests_total", "counter", "API requests accepted.", s.Requests)
	write("boomsimd_rejected_total", "counter", "Requests rejected with 429 (queue full).", s.Rejected)
	write("boomsimd_cache_hits_total", "counter", "Requests served from the result cache.", s.CacheHits)
	write("boomsimd_cache_misses_total", "counter", "Requests not in the result cache.", s.CacheMisses)
	write("boomsimd_flight_shared_total", "counter", "Requests collapsed onto an in-flight simulation.", s.FlightShared)
	write("boomsimd_sims_started_total", "counter", "Simulations executed.", s.SimsStarted)
	write("boomsimd_sims_inflight", "gauge", "Simulations running now.", s.SimsInflight)
	write("boomsimd_queue_depth", "gauge", "Flights admitted (queued plus running).", s.Queued)
	write("boomsimd_sim_instructions_total", "counter", "Instructions retired across all simulations.", s.SimInstrs)
	write("boomsimd_sim_ns_per_instr", "gauge", "Lifetime average simulation cost in ns per instruction.", s.NsPerInstr())

	// Per-component registry totals: one labeled series per dotted stat
	// name, summed over executed runs.
	names, totals := m.componentTotals()
	if len(names) > 0 {
		fmt.Fprintf(w, "# HELP boomsimd_sim_component_total Per-component simulator statistics summed across executed runs.\n")
		fmt.Fprintf(w, "# TYPE boomsimd_sim_component_total counter\n")
		for _, n := range names {
			fmt.Fprintf(w, "boomsimd_sim_component_total{stat=%q} %v\n", n, totals[n])
		}
	}
}
