// Package server implements boomsimd's HTTP layer: a long-running
// simulation service over the public boomsim API.
//
// The hot path is built for heavy, repetitive traffic. Results are pure
// functions of their configuration, so every completed run lands in a
// content-addressed LRU cache keyed on boomsim's configuration Fingerprint,
// and identical requests arriving while a run is in flight collapse onto it
// (singleflight) instead of re-simulating. Admission is bounded: at most
// QueueDepth distinct flights may be queued or running, the excess is
// rejected with 429, and at most Workers simulations execute concurrently.
// Every request carries a deadline; an abandoned flight (all waiters gone,
// or the server draining) is canceled through boomsim's cooperative
// cancellation, so no goroutine outlives its usefulness.
//
// This package deliberately consumes only the public boomsim API — the API
// boundary test at the repo root enforces it — making it a living example
// of building a service on the package.
package server

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"boomsim"
	"boomsim/internal/store"
	"boomsim/internal/wire"
)

// Version identifies the service build on /healthz; the VCS revision is
// added from build info when available.
const Version = "0.4.0"

// Config sizes the service. The zero value is usable: New fills in the
// documented defaults.
type Config struct {
	// Workers bounds concurrently executing simulations (default
	// GOMAXPROCS). A matrix flight claims one worker slot plus whatever
	// spare capacity exists when it starts (up to its requested
	// parallelism) and fans out through RunMatrix at exactly that width,
	// so the bound holds server-wide.
	Workers int
	// QueueDepth bounds admitted flights — queued plus running — before
	// requests are rejected with 429 (default 4×Workers). Requests that
	// join an existing flight or hit the cache consume no capacity.
	QueueDepth int
	// CacheEntries bounds the result LRU (default 4096 entries).
	CacheEntries int
	// RequestTimeout caps every request's deadline (default 5m). A request
	// may ask for less via timeout_ms, never more.
	RequestTimeout time.Duration
	// Store, when set, is the disk-backed result store behind the LRU:
	// every computed result is written through to it, LRU misses consult it
	// before simulating, and its entries survive process restarts. Reads
	// are fingerprint-verified by the store itself — a corrupt or torn
	// entry is quarantined and recomputed, never served.
	Store *store.Store
	// Logger receives request and job lifecycle events (batch admission,
	// per-job settlement, drain) at slog levels; request-scoped records
	// carry the client's trace_id when one was sent. Nil discards them.
	Logger *slog.Logger
	// NoCycleSkip forces the per-cycle simulation loop for every request
	// this server runs (boomsimd -no-skip), regardless of what requests
	// ask for. Results are byte-identical either way; the flag dedicates a
	// worker to control-leg provenance.
	NoCycleSkip bool
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.Workers
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 4096
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 5 * time.Minute
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.DiscardHandler)
	}
	return c
}

// errQueueFull is the admission-control rejection, surfaced as HTTP 429.
var errQueueFull = errors.New("server: simulation queue full")

// errDraining rejects new flights once Close has begun, surfaced as 503.
var errDraining = errors.New("server: draining")

// maxMatrixRuns bounds one matrix request; larger sweeps should be split so
// backpressure stays meaningful.
const maxMatrixRuns = 256

// Server is the simulation service. Create it with New, expose Handler on
// an http.Server, and Close it to drain: Close cancels every queued and
// running simulation through the cooperative-cancellation path and returns
// once the last flight goroutine has exited.
type Server struct {
	cfg     Config
	baseCtx context.Context
	stop    context.CancelFunc
	sem     chan struct{}
	cache   *resultCache
	store   *store.Store
	flights *flightGroup
	m       metrics

	// closeMu serialises admission against Close: admit's wg.Add and
	// Close's transition to closed happen under it, so wg.Wait can never
	// race an Add from a handler still in flight (the documented
	// WaitGroup hazard).
	closeMu sync.Mutex
	closed  bool
	wg      sync.WaitGroup
}

// New builds a Server from cfg (zero value = defaults).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:     cfg,
		baseCtx: ctx,
		stop:    cancel,
		sem:     make(chan struct{}, cfg.Workers),
		cache:   newResultCache(cfg.CacheEntries),
		store:   cfg.Store,
	}
	s.flights = newFlightGroup(func() { s.m.flightShared.Add(1) })
	return s
}

// Close drains the server: new flights are refused, all queued and
// in-flight simulations are canceled, and Close blocks until their
// goroutines exit. Subsequent requests are answered 503.
func (s *Server) Close() {
	s.closeMu.Lock()
	s.closed = true
	s.closeMu.Unlock()
	s.cfg.Logger.Info("server: draining")
	s.stop()
	s.wg.Wait()
	s.cfg.Logger.Info("server: drained")
}

// Stats snapshots the service counters (also exposed on /metrics).
func (s *Server) Stats() Stats { return s.m.snapshot() }

// Handler returns the service's route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/run", s.handleRun)
	mux.HandleFunc("POST /v1/matrix", s.handleMatrix)
	mux.HandleFunc("POST /v1/jobs", s.handleJobs)
	mux.HandleFunc("GET /v1/schemes", s.handleSchemes)
	mux.HandleFunc("GET /v1/workloads", s.handleWorkloads)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// handleMetrics renders the service counters plus, when a durable store is
// configured, its entry/byte/quarantine gauges.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.m.serveHTTP(w, r)
	if s.store == nil {
		return
	}
	st := s.store.Stats()
	write := func(name, kind, help string, value any) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %v\n", name, help, name, kind, name, value)
	}
	write("boomsimd_store_entries", "gauge", "Entries in the durable result store.", st.Entries)
	write("boomsimd_store_bytes", "gauge", "Bytes held by the durable result store.", st.Bytes)
	write("boomsimd_store_hits_total", "counter", "Verified reads served from the durable store.", st.Hits)
	write("boomsimd_store_misses_total", "counter", "Durable-store lookups that missed.", st.Misses)
	write("boomsimd_store_writes_total", "counter", "Results written through to the durable store.", st.Writes)
	write("boomsimd_store_write_errors_total", "counter", "Durable-store writes that failed.", st.WriteErrors)
	write("boomsimd_store_quarantined_total", "counter", "Corrupt entries quarantined instead of served.", st.Quarantined)
}

// RunRequest is the wire form of one simulation configuration (shared with
// the cluster coordinator and remote CLI clients through internal/wire).
// Absent fields take New's documented defaults (Boomerang on Apache, Table
// I core, seeds 1/1, 200K warm + 1M measured instructions).
type RunRequest = wire.RunRequest

// RunResponse wraps one result with its cache identity.
type RunResponse struct {
	// Key is the configuration fingerprint the result is cached under.
	Key string `json:"key"`
	// Cached reports whether the result came from the cache without
	// simulating (a singleflight-collapsed request still reports false).
	Cached bool           `json:"cached"`
	Result boomsim.Result `json:"result"`
}

// MatrixRequest is a batch of configurations executed as one order-stable
// matrix.
type MatrixRequest struct {
	Runs []RunRequest `json:"runs"`
	// Parallelism bounds the matrix's internal fan-out (0 = server
	// Workers; capped at server Workers).
	Parallelism int   `json:"parallelism,omitempty"`
	TimeoutMS   int64 `json:"timeout_ms,omitempty"`
}

// MatrixResponse carries results in request order.
type MatrixResponse struct {
	// Key fingerprints the whole batch; Cached reports whether every cell
	// was already in the result cache.
	Key     string           `json:"key"`
	Cached  bool             `json:"cached"`
	Results []boomsim.Result `json:"results"`
}

func (s *Server) runOptions(req RunRequest) ([]boomsim.Option, error) {
	var opts []boomsim.Option
	if s.cfg.NoCycleSkip {
		// Server-wide control mode (boomsimd -no-skip): every simulation
		// this worker runs uses the per-cycle loop. Identical results with
		// different provenance — a control fleet for the skipping fleet.
		opts = append(opts, boomsim.WithCycleSkip(false))
	}
	if req.Scheme != "" {
		opts = append(opts, boomsim.WithScheme(req.Scheme))
	}
	if len(req.SchemeConfig) > 0 {
		// Inline declarative scheme: validate here so malformed configs are
		// a 400 at the door, not a panic in a worker goroutine.
		cfg, err := boomsim.ParseSchemeConfig(req.SchemeConfig)
		if err != nil {
			return nil, err
		}
		opts = append(opts, boomsim.WithSchemeConfig(cfg))
	}
	if req.Workload != "" {
		opts = append(opts, boomsim.WithWorkload(req.Workload))
	}
	if req.Predictor != "" {
		opts = append(opts, boomsim.WithPredictor(req.Predictor))
	}
	if req.BTBEntries != 0 {
		opts = append(opts, boomsim.WithBTBEntries(req.BTBEntries))
	}
	if req.LLCLatency != 0 {
		opts = append(opts, boomsim.WithLLCLatency(req.LLCLatency))
	}
	if req.FootprintKB != 0 {
		opts = append(opts, boomsim.WithFootprintKB(req.FootprintKB))
	}
	if req.ImageSeed != nil || req.WalkSeed != nil {
		imageSeed, walkSeed := uint64(boomsim.DefaultImageSeed), uint64(boomsim.DefaultWalkSeed)
		if req.ImageSeed != nil {
			imageSeed = *req.ImageSeed
		}
		if req.WalkSeed != nil {
			walkSeed = *req.WalkSeed
		}
		opts = append(opts, boomsim.WithSeeds(imageSeed, walkSeed))
	}
	if req.WarmInstrs != nil || req.MeasureInstrs != nil {
		warm, measure := uint64(boomsim.DefaultWarmInstrs), uint64(boomsim.DefaultMeasureInstrs)
		if req.WarmInstrs != nil {
			warm = *req.WarmInstrs
		}
		if req.MeasureInstrs != nil {
			measure = *req.MeasureInstrs
		}
		opts = append(opts, boomsim.WithWindow(warm, measure))
	}
	if req.MaxCycles != 0 {
		opts = append(opts, boomsim.WithMaxCycles(req.MaxCycles))
	}
	if req.FlightEvery > 0 {
		opts = append(opts, boomsim.WithFlightRecorder(req.FlightEvery))
	}
	if req.NoCycleSkip {
		opts = append(opts, boomsim.WithCycleSkip(false))
	}
	return opts, nil
}

// newSim builds a Simulation from one wire request.
func (s *Server) newSim(req RunRequest) (*boomsim.Simulation, error) {
	opts, err := s.runOptions(req)
	if err != nil {
		return nil, err
	}
	return boomsim.New(opts...)
}

func (s *Server) requestCtx(r *http.Request, timeoutMS int64) (context.Context, context.CancelFunc) {
	timeout := s.cfg.RequestTimeout
	if timeoutMS > 0 {
		if d := time.Duration(timeoutMS) * time.Millisecond; d < timeout {
			timeout = d
		}
	}
	return context.WithTimeout(r.Context(), timeout)
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	s.m.requests.Add(1)
	var req RunRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	sim, err := s.newSim(req)
	if err != nil {
		writeError(w, s.statusFor(err), err)
		return
	}
	ctx, cancel := s.requestCtx(r, req.TimeoutMS)
	defer cancel()

	start := time.Now()
	result, cached, err := s.runOne(ctx, sim)
	if err != nil {
		s.cfg.Logger.Warn("server: run failed",
			"key", sim.Fingerprint(), "trace_id", req.TraceID, "err", err)
		writeError(w, s.statusFor(err), err)
		return
	}
	s.cfg.Logger.Debug("server: run completed",
		"key", sim.Fingerprint(), "cached", cached,
		"ms", time.Since(start).Milliseconds(), "trace_id", req.TraceID)
	writeJSON(w, http.StatusOK, RunResponse{Key: sim.Fingerprint(), Cached: cached, Result: result})
}

// cacheGet resolves key through the in-memory LRU, then the durable store.
// A store hit is promoted into the LRU so repeat traffic stays off disk.
// Store reads are digest-verified by the store itself; an entry that cannot
// be decoded into a Result (version skew) is treated as a miss and will be
// recomputed and overwritten.
func (s *Server) cacheGet(key string) (boomsim.Result, bool) {
	if v, ok := s.cache.Get(key); ok {
		return v.(boomsim.Result), true
	}
	if s.store == nil {
		return boomsim.Result{}, false
	}
	raw, ok := s.store.Get(key)
	if !ok {
		return boomsim.Result{}, false
	}
	var r boomsim.Result
	if err := json.Unmarshal(raw, &r); err != nil {
		return boomsim.Result{}, false
	}
	s.cache.Add(key, r)
	return r, true
}

// cacheAdd records a computed result in the LRU and writes it through to
// the durable store. A store write failure only costs durability — the
// in-memory result is unaffected and the failure is visible in the store's
// stats.
func (s *Server) cacheAdd(key string, r boomsim.Result) {
	s.cache.Add(key, r)
	if s.store == nil {
		return
	}
	raw, err := json.Marshal(r)
	if err != nil {
		return
	}
	_ = s.store.Put(key, raw)
}

// runOne resolves one simulation through cache → durable store →
// singleflight → worker pool.
func (s *Server) runOne(ctx context.Context, sim *boomsim.Simulation) (boomsim.Result, bool, error) {
	key := sim.Fingerprint()
	if r, ok := s.cacheGet(key); ok {
		s.m.cacheHits.Add(1)
		return r, true, nil
	}
	s.m.cacheMisses.Add(1)
	v, _, err := s.flights.do(ctx, s.baseCtx, key, s.admit, s.spawn,
		func(fctx context.Context) (any, error) {
			defer s.release()
			r, err := s.simulate(fctx, sim)
			if err != nil {
				return nil, err
			}
			s.cacheAdd(key, r)
			return r, nil
		})
	if err != nil {
		return boomsim.Result{}, false, err
	}
	return v.(boomsim.Result), false, nil
}

func (s *Server) handleMatrix(w http.ResponseWriter, r *http.Request) {
	s.m.requests.Add(1)
	var req MatrixRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if len(req.Runs) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("matrix has no runs"))
		return
	}
	if len(req.Runs) > maxMatrixRuns {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("matrix has %d runs, limit %d — split the sweep", len(req.Runs), maxMatrixRuns))
		return
	}

	sims := make([]*boomsim.Simulation, len(req.Runs))
	keys := make([]string, len(req.Runs))
	for i, rr := range req.Runs {
		sim, err := s.newSim(rr)
		if err != nil {
			writeError(w, s.statusFor(err), fmt.Errorf("runs[%d]: %w", i, err))
			return
		}
		sims[i] = sim
		keys[i] = sim.Fingerprint()
	}
	batchKey := matrixKey(keys)

	// Fast path: every cell already computed (by earlier runs, matrices,
	// or single-run requests — the cache is shared across endpoints).
	if results, ok := s.cachedCells(keys); ok {
		s.m.cacheHits.Add(1)
		writeJSON(w, http.StatusOK, MatrixResponse{Key: batchKey, Cached: true, Results: results})
		return
	}
	s.m.cacheMisses.Add(1)

	parallelism := req.Parallelism
	if parallelism <= 0 || parallelism > s.cfg.Workers {
		parallelism = s.cfg.Workers
	}
	ctx, cancel := s.requestCtx(r, req.TimeoutMS)
	defer cancel()

	v, _, err := s.flights.do(ctx, s.baseCtx, batchKey, s.admit, s.spawn,
		func(fctx context.Context) (any, error) {
			defer s.release()
			// Re-check the cache per cell inside the flight: other runs or
			// matrices may have filled cells since the fast-path check, and
			// a mostly-cached sweep should only simulate its misses.
			results := make([]boomsim.Result, len(sims))
			var missing []int
			for i, k := range keys {
				if r, ok := s.cacheGet(k); ok {
					results[i] = r
				} else {
					missing = append(missing, i)
				}
			}
			if len(missing) == 0 {
				return results, nil
			}
			sub := make([]*boomsim.Simulation, len(missing))
			for j, i := range missing {
				sub[j] = sims[i]
			}
			want := parallelism
			if want > len(missing) {
				want = len(missing)
			}
			got, err := s.acquireWorkers(fctx, want)
			if err != nil {
				return nil, err
			}
			defer s.releaseWorkers(got)
			s.m.simsInflight.Add(int64(got)) // reserved fan-out width
			defer s.m.simsInflight.Add(-int64(got))
			start := time.Now()
			subResults, err := boomsim.RunMatrix(fctx, sub, boomsim.WithParallelism(got))
			if err != nil {
				return nil, err
			}
			var instrs uint64
			for j, i := range missing {
				results[i] = subResults[j]
				s.cacheAdd(keys[i], subResults[j])
				instrs += subResults[j].Instructions
				s.m.observeComponents(subResults[j])
			}
			s.m.simsStarted.Add(uint64(len(subResults)))
			s.m.simNanos.Add(uint64(time.Since(start)))
			s.m.simInstrs.Add(instrs)
			return results, nil
		})
	if err != nil {
		writeError(w, s.statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, MatrixResponse{Key: batchKey, Cached: false, Results: v.([]boomsim.Result)})
}

// handleJobs executes a batch of independent jobs: each one resolves
// through the cache → singleflight → worker-pool path on its own, and each
// reports its own success or failure. This is the endpoint the cluster
// coordinator speaks — key-affine routing wants per-cell cache visibility
// and per-cell retryability, which the all-or-nothing /v1/matrix flight
// deliberately does not offer.
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	s.m.requests.Add(1)
	var req wire.JobsRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if len(req.Jobs) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("batch has no jobs"))
		return
	}
	if len(req.Jobs) > maxMatrixRuns {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("batch has %d jobs, limit %d — split it", len(req.Jobs), maxMatrixRuns))
		return
	}
	ctx, cancel := s.requestCtx(r, req.TimeoutMS)
	defer cancel()

	s.cfg.Logger.Debug("server: jobs batch accepted",
		"jobs", len(req.Jobs), "trace_id", req.TraceID)
	out := make([]wire.JobResult, len(req.Jobs))
	var wg sync.WaitGroup
	for i, jr := range req.Jobs {
		opts, err := s.runOptions(jr)
		if err != nil {
			out[i] = s.jobError(fmt.Errorf("jobs[%d]: %w", i, err))
			continue
		}
		// Observe how the run's warmed state is obtained (arena fork vs
		// fresh warm) so the coordinator's trace can attribute cell latency.
		// atomic.Value because the observer fires on the flight's goroutine;
		// a collapsed or cached job simply never stores.
		var warm atomic.Value
		opts = append(opts, boomsim.WithWarmObserver(func(src string) { warm.Store(src) }))
		sim, err := boomsim.New(opts...)
		if err != nil {
			out[i] = s.jobError(fmt.Errorf("jobs[%d]: %w", i, err))
			continue
		}
		wg.Add(1)
		go func(i int, sim *boomsim.Simulation, timeoutMS int64) {
			defer wg.Done()
			// A job may tighten (never widen) its own deadline below the
			// batch's, matching /v1/run's timeout_ms contract.
			jctx := ctx
			if timeoutMS > 0 {
				var cancel context.CancelFunc
				jctx, cancel = context.WithTimeout(ctx, time.Duration(timeoutMS)*time.Millisecond)
				defer cancel()
			}
			start := time.Now()
			result, cached, err := s.runOne(jctx, sim)
			if err != nil {
				s.cfg.Logger.Warn("server: job failed",
					"key", sim.Fingerprint(), "trace_id", req.TraceID, "err", err)
				out[i] = s.jobError(err)
				return
			}
			raw, err := json.Marshal(result)
			if err != nil {
				out[i] = s.jobError(err)
				return
			}
			out[i] = wire.JobResult{Key: sim.Fingerprint(), Cached: cached, Result: raw}
			if !cached {
				out[i].SimNanos = time.Since(start).Nanoseconds()
				if w, ok := warm.Load().(string); ok {
					out[i].Warm = w
				}
			}
			s.cfg.Logger.Debug("server: job completed",
				"key", sim.Fingerprint(), "cached", cached, "warm", out[i].Warm,
				"ms", time.Since(start).Milliseconds(), "trace_id", req.TraceID)
		}(i, sim, jr.TimeoutMS)
	}
	wg.Wait()
	writeJSON(w, http.StatusOK, wire.JobsResponse{Jobs: out})
}

// jobError renders one job's failure with its HTTP-equivalent status and,
// for capacity rejections, the same backoff hint the 429 header path gives.
func (s *Server) jobError(err error) wire.JobResult {
	jr := wire.JobResult{Error: err.Error(), Status: s.statusFor(err)}
	if jr.Status == http.StatusTooManyRequests {
		jr.RetryAfterMS = 1000
	}
	return jr
}

func (s *Server) cachedCells(keys []string) ([]boomsim.Result, bool) {
	results := make([]boomsim.Result, len(keys))
	for i, k := range keys {
		r, ok := s.cacheGet(k)
		if !ok {
			return nil, false
		}
		results[i] = r
	}
	return results, true
}

// matrixKey content-addresses a batch: the hash of its cell fingerprints in
// request order. Parallelism is excluded — results are identical at any
// fan-out (a property the root package's fuzz tests pin).
func matrixKey(keys []string) string {
	h := sha256.New()
	for _, k := range keys {
		h.Write([]byte(k))
		h.Write([]byte{'\n'})
	}
	return "matrix-" + hex.EncodeToString(h.Sum(nil))
}

// admit claims one unit of queue capacity — and registers the flight with
// the shutdown WaitGroup — or reports errQueueFull/errDraining. It is
// called by the flight group only when a new flight would start; the
// matching wg.Done runs in spawn, which always follows a successful admit.
func (s *Server) admit() error {
	s.closeMu.Lock()
	defer s.closeMu.Unlock()
	if s.closed {
		return errDraining
	}
	if s.m.queued.Add(1) > int64(s.cfg.QueueDepth) {
		s.m.queued.Add(-1)
		s.m.rejected.Add(1)
		return errQueueFull
	}
	s.wg.Add(1)
	return nil
}

func (s *Server) release() { s.m.queued.Add(-1) }

// spawn runs an admitted flight on its tracked goroutine.
func (s *Server) spawn(run func()) {
	go func() {
		defer s.wg.Done()
		run()
	}()
}

func (s *Server) acquireWorker(ctx context.Context) error {
	select {
	case s.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("%w: %w", boomsim.ErrCanceled, ctx.Err())
	}
}

func (s *Server) releaseWorker() { <-s.sem }

// acquireWorkers claims one worker slot (blocking, cancelable) plus any
// immediately-spare capacity up to want, returning the claimed count.
// Greedy but bounded: claimed slots server-wide never exceed Workers — the
// package invariant — while a matrix on an idle server fans out to full
// width, and on a busy one degrades toward sequential instead of
// oversubscribing.
func (s *Server) acquireWorkers(ctx context.Context, want int) (int, error) {
	if err := s.acquireWorker(ctx); err != nil {
		return 0, err
	}
	got := 1
	for got < want {
		select {
		case s.sem <- struct{}{}:
			got++
		default:
			return got, nil
		}
	}
	return got, nil
}

func (s *Server) releaseWorkers(n int) {
	for i := 0; i < n; i++ {
		<-s.sem
	}
}

// simulate executes one run on a worker slot with full instrumentation.
func (s *Server) simulate(ctx context.Context, sim *boomsim.Simulation) (boomsim.Result, error) {
	if err := s.acquireWorker(ctx); err != nil {
		return boomsim.Result{}, err
	}
	defer s.releaseWorker()
	s.m.simsStarted.Add(1)
	s.m.simsInflight.Add(1)
	defer s.m.simsInflight.Add(-1)
	start := time.Now()
	r, err := sim.Run(ctx)
	if err != nil {
		return boomsim.Result{}, err
	}
	s.m.simNanos.Add(uint64(time.Since(start)))
	s.m.simInstrs.Add(r.Instructions)
	s.m.observeComponents(r)
	return r, nil
}

func (s *Server) handleSchemes(w http.ResponseWriter, r *http.Request) {
	s.m.requests.Add(1)
	writeJSON(w, http.StatusOK, boomsim.Schemes())
}

func (s *Server) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	s.m.requests.Add(1)
	writeJSON(w, http.StatusOK, boomsim.Workloads())
}

// vcsRevision extracts the build's VCS revision once; empty outside a
// stamped build (plain `go test`, for instance).
var vcsRevision = sync.OnceValue(func() string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return ""
	}
	for _, kv := range info.Settings {
		if kv.Key == "vcs.revision" {
			return kv.Value
		}
	}
	return ""
})

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.baseCtx.Err() != nil {
		writeError(w, http.StatusServiceUnavailable, errors.New("draining"))
		return
	}
	h := wire.Health{
		Status:    "ok",
		Version:   Version,
		GoVersion: runtime.Version(),
		Revision:  vcsRevision(),

		Schemes:   len(boomsim.Schemes()),
		Workloads: len(boomsim.Workloads()),

		Workers:       s.cfg.Workers,
		QueueDepth:    s.cfg.QueueDepth,
		InFlightSims:  s.m.simsInflight.Load(),
		QueuedFlights: s.m.queued.Load(),
		CacheEntries:  s.cache.Len(),
	}
	if s.store != nil {
		st := s.store.Stats()
		h.Store = &wire.StoreHealth{
			Dir:         st.Dir,
			Entries:     st.Entries,
			Bytes:       st.Bytes,
			Hits:        st.Hits,
			Misses:      st.Misses,
			Writes:      st.Writes,
			Quarantined: st.Quarantined,
		}
	}
	writeJSON(w, http.StatusOK, h)
}

// statusFor maps error classes onto HTTP statuses: configuration mistakes
// are the client's (400/404), capacity is 429, deadlines 504, and a
// draining server 503.
func (s *Server) statusFor(err error) int {
	switch {
	case errors.Is(err, errQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, errDraining):
		return http.StatusServiceUnavailable
	case errors.Is(err, boomsim.ErrUnknownScheme), errors.Is(err, boomsim.ErrUnknownWorkload):
		return http.StatusNotFound
	case errors.Is(err, boomsim.ErrInvalidOption):
		return http.StatusBadRequest
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, boomsim.ErrCanceled), errors.Is(err, context.Canceled):
		// Draining, or the client went away; either way the run did not
		// complete and a retry elsewhere may.
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	if status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
