package server

import (
	"container/list"
	"sync"
)

// resultCache is a bounded, goroutine-safe LRU keyed on configuration
// fingerprints. Simulation results are pure functions of their key, so
// entries never expire — eviction is purely capacity-driven, oldest access
// first.
type resultCache struct {
	mu      sync.Mutex
	cap     int
	order   *list.List // front = most recently used; values are *cacheEntry
	entries map[string]*list.Element
}

type cacheEntry struct {
	key string
	val any
}

func newResultCache(capacity int) *resultCache {
	return &resultCache{
		cap:     capacity,
		order:   list.New(),
		entries: make(map[string]*list.Element, capacity),
	}
}

func (c *resultCache) Get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

func (c *resultCache) Add(key string, val any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).val = val
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, val: val})
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
}

func (c *resultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
