package server

import (
	"context"
	"sync"
)

// flightGroup collapses concurrent work for the same key into a single
// execution. It differs from the classic singleflight in two ways the
// simulation service needs:
//
//   - The function runs on its own goroutine with a context derived from the
//     server's lifetime, not from any one request: a waiter abandoning (its
//     request context fires) must not cancel the run other waiters still
//     want.
//   - Flights are reference-counted. When the last waiter abandons, the
//     flight's context is canceled so the simulation stops through the
//     cooperative-cancellation path instead of burning cycles for nobody.
//
// Server shutdown cancels the base context, which cancels every flight.
type flightGroup struct {
	mu      sync.Mutex
	flights map[string]*flight
	// onJoin, if set, is called each time a caller collapses onto an
	// existing flight — at join time, so gauges see it while the flight is
	// still running.
	onJoin func()
}

type flight struct {
	waiters  int
	finished bool
	cancel   context.CancelFunc
	done     chan struct{}
	val      any
	err      error
}

func newFlightGroup(onJoin func()) *flightGroup {
	return &flightGroup{flights: make(map[string]*flight), onJoin: onJoin}
}

// do returns the result of fn for key, collapsing concurrent calls: the
// first caller starts fn on a new goroutine (tracked via spawn, so the
// server can wait for it at shutdown) with a context derived from base;
// later callers with the same key wait for that execution. shared reports
// whether this caller joined an existing flight. admit is consulted only
// when a new flight would start — joining an in-flight execution costs no
// queue capacity — and its error is returned verbatim.
//
// If ctx fires while waiting, do returns ctx.Err() immediately; the flight
// keeps running for any remaining waiters and is canceled when none remain.
func (g *flightGroup) do(ctx, base context.Context, key string,
	admit func() error, spawn func(func()), fn func(context.Context) (any, error),
) (val any, shared bool, err error) {
	g.mu.Lock()
	f, ok := g.flights[key]
	if ok {
		f.waiters++
		g.mu.Unlock()
		if g.onJoin != nil {
			g.onJoin()
		}
		return g.wait(ctx, key, f)
	}
	if err := admit(); err != nil {
		g.mu.Unlock()
		return nil, false, err
	}
	fctx, cancel := context.WithCancel(base)
	f = &flight{waiters: 1, cancel: cancel, done: make(chan struct{})}
	g.flights[key] = f
	g.mu.Unlock()

	spawn(func() {
		val, err := fn(fctx)
		g.mu.Lock()
		f.val, f.err = val, err
		f.finished = true
		// An abandoned flight was already unmapped, and a successor may
		// own the key by now — only remove our own entry.
		if g.flights[key] == f {
			delete(g.flights, key)
		}
		g.mu.Unlock()
		close(f.done)
		cancel()
	})
	v, _, err := g.wait(ctx, key, f)
	return v, false, err
}

func (g *flightGroup) wait(ctx context.Context, key string, f *flight) (any, bool, error) {
	select {
	case <-f.done:
		return f.val, true, f.err
	case <-ctx.Done():
		g.mu.Lock()
		f.waiters--
		if f.waiters == 0 && !f.finished {
			// Nobody wants this result anymore: cancel the run AND unmap
			// the flight immediately, so a fresh request for the same key
			// starts a new run instead of inheriting a doomed one.
			f.cancel()
			if g.flights[key] == f {
				delete(g.flights, key)
			}
		}
		g.mu.Unlock()
		return nil, true, ctx.Err()
	}
}
