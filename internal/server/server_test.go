package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"

	"boomsim"
	"boomsim/internal/wire"
)

// fastRun is a request that simulates in a few milliseconds; seed
// disambiguates cache keys between tests (the cache is per-Server, but
// distinct keys keep each test's counters self-explanatory).
func fastRun(scheme, workload string, seed uint64) RunRequest {
	fp, warm, measure := 64, uint64(2_000), uint64(20_000)
	return RunRequest{
		Scheme: scheme, Workload: workload,
		FootprintKB: fp,
		ImageSeed:   &seed, WalkSeed: &seed,
		WarmInstrs: &warm, MeasureInstrs: &measure,
	}
}

// slowRun takes a few hundred milliseconds at full speed — long enough that
// a test can reliably observe it in flight, short enough to finish within
// the budget when run to completion.
func slowRun(seed uint64) RunRequest {
	req := fastRun("Base", "Apache", seed)
	measure := uint64(3_000_000)
	req.MeasureInstrs = &measure
	return req
}

// endlessRun cannot finish inside any test budget; it exists to be
// canceled.
func endlessRun(seed uint64) RunRequest {
	req := fastRun("Base", "Apache", seed)
	measure := uint64(500_000_000)
	req.MeasureInstrs = &measure
	return req
}

type testService struct {
	srv *Server
	ts  *httptest.Server
}

func newTestService(t *testing.T, cfg Config) *testService {
	t.Helper()
	srv := New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		srv.Close()
		ts.Close()
	})
	return &testService{srv: srv, ts: ts}
}

func (s *testService) post(t *testing.T, path string, body any) (int, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := s.ts.Client().Post(s.ts.URL+path, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

func (s *testService) get(t *testing.T, path string) (int, []byte) {
	t.Helper()
	resp, err := s.ts.Client().Get(s.ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

func decodeRun(t *testing.T, raw []byte) RunResponse {
	t.Helper()
	var rr RunResponse
	if err := json.Unmarshal(raw, &rr); err != nil {
		t.Fatalf("decoding run response %s: %v", raw, err)
	}
	return rr
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// checkNoGoroutineLeak asserts the goroutine count settles back to the
// level captured before the test's server existed.
func checkNoGoroutineLeak(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		runtime.GC()
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	t.Errorf("goroutines leaked: %d before, %d after\n%s", before, runtime.NumGoroutine(), buf[:n])
}

func TestRunEndpointCachesResults(t *testing.T) {
	s := newTestService(t, Config{})
	req := fastRun("Boomerang", "Apache", 11)

	code, raw := s.post(t, "/v1/run", req)
	if code != http.StatusOK {
		t.Fatalf("first run: status %d: %s", code, raw)
	}
	first := decodeRun(t, raw)
	if first.Cached {
		t.Errorf("first request reported cached=true")
	}
	if first.Key == "" || first.Result.IPC <= 0 || first.Result.Scheme != "Boomerang" {
		t.Errorf("implausible response: %+v", first)
	}

	code, raw = s.post(t, "/v1/run", req)
	if code != http.StatusOK {
		t.Fatalf("second run: status %d: %s", code, raw)
	}
	second := decodeRun(t, raw)
	if !second.Cached {
		t.Errorf("identical request was not served from cache")
	}
	if !reflect.DeepEqual(first.Result, second.Result) || first.Key != second.Key {
		t.Errorf("cached result differs from the original")
	}

	stats := s.srv.Stats()
	if stats.SimsStarted != 1 || stats.CacheHits != 1 {
		t.Errorf("stats = %+v, want 1 sim and 1 cache hit", stats)
	}
}

func TestConcurrentIdenticalRequestsCollapseToOneSimulation(t *testing.T) {
	s := newTestService(t, Config{Workers: 4})
	req := slowRun(21)

	type reply struct {
		code int
		raw  []byte
	}
	replies := make(chan reply, 2)
	send := func() {
		code, raw := s.post(t, "/v1/run", req)
		replies <- reply{code, raw}
	}

	go send()
	// Only dispatch the duplicate once the first simulation is provably in
	// flight: the duplicate then either joins the flight (singleflight) or
	// — if the first run won the race and finished — hits the cache. Both
	// paths collapse to exactly one simulation.
	waitFor(t, "first simulation in flight", func() bool {
		st := s.srv.Stats()
		return st.SimsInflight >= 1 || st.SimsStarted >= 1
	})
	go send()

	var results []RunResponse
	for i := 0; i < 2; i++ {
		r := <-replies
		if r.code != http.StatusOK {
			t.Fatalf("reply %d: status %d: %s", i, r.code, r.raw)
		}
		results = append(results, decodeRun(t, r.raw))
	}
	if !reflect.DeepEqual(results[0].Result, results[1].Result) {
		t.Errorf("collapsed requests returned different results")
	}

	stats := s.srv.Stats()
	if stats.SimsStarted != 1 {
		t.Errorf("%d simulations for 2 identical concurrent requests, want 1 (stats %+v)", stats.SimsStarted, stats)
	}
	if stats.FlightShared+stats.CacheHits == 0 {
		t.Errorf("neither singleflight nor cache collapsed the duplicate: %+v", stats)
	}
}

func TestQueueFullReturns429(t *testing.T) {
	before := runtime.NumGoroutine()
	srv := New(Config{Workers: 1, QueueDepth: 1})
	ts := httptest.NewServer(srv.Handler())
	s := &testService{srv: srv, ts: ts}

	occupant := make(chan int, 1)
	go func() {
		code, _ := s.post(t, "/v1/run", endlessRun(31))
		occupant <- code
	}()
	waitFor(t, "occupant simulation in flight", func() bool {
		return s.srv.Stats().SimsInflight == 1
	})

	code, raw := s.post(t, "/v1/run", endlessRun(32))
	if code != http.StatusTooManyRequests {
		t.Fatalf("request beyond queue depth: status %d: %s, want 429", code, raw)
	}
	if !strings.Contains(string(raw), "queue full") {
		t.Errorf("429 body %s does not explain the rejection", raw)
	}
	if got := s.srv.Stats().Rejected; got != 1 {
		t.Errorf("rejected counter = %d, want 1", got)
	}

	// A duplicate of the running simulation still gets in — joining an
	// in-flight run consumes no queue capacity — and is then canceled with
	// it at drain.
	joiner := make(chan int, 1)
	go func() {
		code, _ := s.post(t, "/v1/run", endlessRun(31))
		joiner <- code
	}()
	waitFor(t, "duplicate joined the flight", func() bool {
		return s.srv.Stats().FlightShared == 1
	})

	srv.Close() // drain: cancels the occupant and its joiner
	for name, ch := range map[string]chan int{"occupant": occupant, "joiner": joiner} {
		select {
		case code := <-ch:
			if code != http.StatusServiceUnavailable {
				t.Errorf("%s after drain: status %d, want 503", name, code)
			}
		case <-time.After(15 * time.Second):
			t.Fatalf("%s did not return after drain", name)
		}
	}
	ts.Close()
	checkNoGoroutineLeak(t, before)
}

func TestDrainCancelsInflightRunsCleanly(t *testing.T) {
	before := runtime.NumGoroutine()
	srv := New(Config{Workers: 2})
	ts := httptest.NewServer(srv.Handler())
	s := &testService{srv: srv, ts: ts}

	done := make(chan struct{})
	var code int
	var raw []byte
	go func() {
		defer close(done)
		code, raw = s.post(t, "/v1/run", endlessRun(41))
	}()
	waitFor(t, "simulation in flight", func() bool {
		return s.srv.Stats().SimsInflight == 1
	})

	srv.Close() // the SIGINT path: cancel everything, wait for flights
	<-done
	if code != http.StatusServiceUnavailable {
		t.Errorf("drained request: status %d: %s, want 503", code, raw)
	}
	if st := s.srv.Stats(); st.SimsInflight != 0 || st.Queued != 0 {
		t.Errorf("after drain: %+v, want zero in-flight and queued", st)
	}

	// Draining is sticky: the server now refuses work on every path.
	if hcode, _ := s.get(t, "/healthz"); hcode != http.StatusServiceUnavailable {
		t.Errorf("healthz after drain: status %d, want 503", hcode)
	}
	if rcode, rbody := s.post(t, "/v1/run", fastRun("Base", "Apache", 42)); rcode != http.StatusServiceUnavailable {
		t.Errorf("run after drain: status %d: %s, want 503", rcode, rbody)
	}
	ts.Close()
	checkNoGoroutineLeak(t, before)
}

func TestAbandonedFlightIsCanceledNotLeaked(t *testing.T) {
	before := runtime.NumGoroutine()
	srv := New(Config{Workers: 2})
	ts := httptest.NewServer(srv.Handler())
	s := &testService{srv: srv, ts: ts}

	// A request with a tight deadline against an endless simulation: the
	// lone waiter abandons, the flight's refcount hits zero, and the
	// simulation is canceled through the cooperative path.
	ms := int64(50)
	req := endlessRun(51)
	req.TimeoutMS = ms
	code, raw := s.post(t, "/v1/run", req)
	if code != http.StatusGatewayTimeout {
		t.Errorf("timed-out request: status %d: %s, want 504", code, raw)
	}
	waitFor(t, "abandoned flight to unwind", func() bool {
		st := s.srv.Stats()
		return st.SimsInflight == 0 && st.Queued == 0
	})

	// The server is still healthy and the canceled run was not cached.
	if hcode, _ := s.get(t, "/healthz"); hcode != http.StatusOK {
		t.Errorf("healthz after abandoned flight: %d, want 200", hcode)
	}
	if s.srv.cache.Len() != 0 {
		t.Errorf("canceled run was cached")
	}

	srv.Close()
	ts.Close()
	checkNoGoroutineLeak(t, before)
}

func TestMatrixEndpoint(t *testing.T) {
	s := newTestService(t, Config{Workers: 4})
	runs := []RunRequest{
		fastRun("Base", "Apache", 61),
		fastRun("FDIP", "Apache", 61),
		fastRun("Boomerang", "Apache", 61),
		fastRun("Boomerang", "DB2", 61),
	}
	code, raw := s.post(t, "/v1/matrix", MatrixRequest{Runs: runs, Parallelism: 8})
	if code != http.StatusOK {
		t.Fatalf("matrix: status %d: %s", code, raw)
	}
	var mr MatrixResponse
	if err := json.Unmarshal(raw, &mr); err != nil {
		t.Fatal(err)
	}
	if mr.Cached || len(mr.Results) != len(runs) {
		t.Fatalf("matrix response: cached=%v, %d results, want fresh with %d", mr.Cached, len(mr.Results), len(runs))
	}
	for i, res := range mr.Results {
		if res.Scheme != runs[i].Scheme || res.Workload != runs[i].Workload {
			t.Errorf("results[%d] = %s/%s, want %s/%s (order-stable)",
				i, res.Scheme, res.Workload, runs[i].Scheme, runs[i].Workload)
		}
	}

	// The matrix populated the shared per-cell cache: a single-run request
	// for any cell is a hit, and the identical matrix is fully cached.
	code, raw = s.post(t, "/v1/run", runs[2])
	if code != http.StatusOK {
		t.Fatalf("cell run: status %d: %s", code, raw)
	}
	if rr := decodeRun(t, raw); !rr.Cached || !reflect.DeepEqual(rr.Result, mr.Results[2]) {
		t.Errorf("cell not served from the matrix-populated cache (cached=%v)", rr.Cached)
	}
	code, raw = s.post(t, "/v1/matrix", MatrixRequest{Runs: runs})
	if code != http.StatusOK {
		t.Fatalf("repeat matrix: status %d: %s", code, raw)
	}
	var again MatrixResponse
	if err := json.Unmarshal(raw, &again); err != nil {
		t.Fatal(err)
	}
	if !again.Cached || !reflect.DeepEqual(again.Results, mr.Results) {
		t.Errorf("repeat matrix: cached=%v, results equal=%v, want fully cached and identical",
			again.Cached, reflect.DeepEqual(again.Results, mr.Results))
	}
	if st := s.srv.Stats(); st.SimsStarted != uint64(len(runs)) {
		t.Errorf("%d sims for matrix + cached repeats, want %d", st.SimsStarted, len(runs))
	}
}

func TestRegistryAndHealthEndpoints(t *testing.T) {
	s := newTestService(t, Config{})

	code, raw := s.get(t, "/v1/schemes")
	var schemes []boomsim.SchemeInfo
	if err := json.Unmarshal(raw, &schemes); err != nil || code != http.StatusOK {
		t.Fatalf("schemes: status %d, err %v", code, err)
	}
	if len(schemes) < 15 {
		t.Errorf("schemes endpoint lists %d entries, want the full registry", len(schemes))
	}

	code, raw = s.get(t, "/v1/workloads")
	var workloads []boomsim.WorkloadInfo
	if err := json.Unmarshal(raw, &workloads); err != nil || code != http.StatusOK {
		t.Fatalf("workloads: status %d, err %v", code, err)
	}
	if len(workloads) < 7 {
		t.Errorf("workloads endpoint lists %d entries, want >= 7", len(workloads))
	}

	if code, raw = s.get(t, "/healthz"); code != http.StatusOK || !strings.Contains(string(raw), `"ok"`) {
		t.Errorf("healthz: status %d body %s", code, raw)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	s := newTestService(t, Config{})
	if code, _ := s.post(t, "/v1/run", fastRun("Base", "Apache", 71)); code != http.StatusOK {
		t.Fatalf("priming run failed: %d", code)
	}
	code, raw := s.get(t, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics: status %d", code)
	}
	body := string(raw)
	for _, metric := range []string{
		"boomsimd_requests_total", "boomsimd_cache_hits_total", "boomsimd_cache_misses_total",
		"boomsimd_flight_shared_total", "boomsimd_sims_started_total", "boomsimd_sims_inflight",
		"boomsimd_queue_depth", "boomsimd_sim_ns_per_instr", "boomsimd_rejected_total",
	} {
		if !strings.Contains(body, metric) {
			t.Errorf("metrics output missing %s", metric)
		}
	}
	if !strings.Contains(body, "boomsimd_sims_started_total 1") {
		t.Errorf("sims_started not reported as 1:\n%s", body)
	}
}

func TestRequestValidation(t *testing.T) {
	s := newTestService(t, Config{})
	cases := []struct {
		name string
		path string
		body any
		want int
	}{
		{"unknown scheme", "/v1/run", RunRequest{Scheme: "no-such"}, http.StatusNotFound},
		{"unknown workload", "/v1/run", RunRequest{Workload: "no-such"}, http.StatusNotFound},
		{"invalid option", "/v1/run", RunRequest{BTBEntries: -1}, http.StatusBadRequest},
		{"empty matrix", "/v1/matrix", MatrixRequest{}, http.StatusBadRequest},
		{"bad cell", "/v1/matrix", MatrixRequest{Runs: []RunRequest{{Scheme: "no-such"}}}, http.StatusNotFound},
		{"oversized matrix", "/v1/matrix", MatrixRequest{Runs: make([]RunRequest, maxMatrixRuns+1)}, http.StatusBadRequest},
	}
	for _, c := range cases {
		if code, raw := s.post(t, c.path, c.body); code != c.want {
			t.Errorf("%s: status %d: %s, want %d", c.name, code, raw, c.want)
		}
	}

	resp, err := s.ts.Client().Post(s.ts.URL+"/v1/run", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON: status %d, want 400", resp.StatusCode)
	}

	resp, err = s.ts.Client().Get(s.ts.URL + "/v1/run")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/run: status %d, want 405", resp.StatusCode)
	}
}

// TestLRUCacheEviction pins the cache's bound and recency behaviour without
// going through HTTP.
func TestLRUCacheEviction(t *testing.T) {
	c := newResultCache(2)
	c.Add("a", 1)
	c.Add("b", 2)
	if _, ok := c.Get("a"); !ok { // touch: a is now most recent
		t.Fatal("a missing")
	}
	c.Add("c", 3) // evicts b, the least recently used
	if _, ok := c.Get("b"); ok {
		t.Errorf("b survived eviction; LRU order not respected")
	}
	if _, ok := c.Get("a"); !ok {
		t.Errorf("recently-used a was evicted")
	}
	if c.Len() != 2 {
		t.Errorf("cache len %d, want 2", c.Len())
	}
	c.Add("c", 33) // update in place, no growth
	if v, _ := c.Get("c"); v != 33 || c.Len() != 2 {
		t.Errorf("update in place failed: v=%v len=%d", v, c.Len())
	}
}

// TestFlightGroupRefcountCancel pins the singleflight cancellation
// contract directly: the flight context dies only when the last waiter
// leaves or the base context fires.
func TestFlightGroupRefcountCancel(t *testing.T) {
	g := newFlightGroup(nil)
	base := context.Background()
	started := make(chan context.Context, 1)
	spawn := func(run func()) { go run() }
	admit := func() error { return nil }

	ctx1, cancel1 := context.WithCancel(context.Background())
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()

	res := make(chan error, 2)
	blocker := func(fctx context.Context) (any, error) {
		started <- fctx
		<-fctx.Done()
		return nil, fmt.Errorf("canceled: %w", fctx.Err())
	}
	go func() {
		_, _, err := g.do(ctx1, base, "k", admit, spawn, blocker)
		res <- err
	}()
	fctx := <-started
	go func() {
		_, _, err := g.do(ctx2, base, "k", admit, spawn, blocker)
		res <- err
	}()
	waitFor(t, "second waiter to join", func() bool {
		g.mu.Lock()
		defer g.mu.Unlock()
		f := g.flights["k"]
		return f != nil && f.waiters == 2
	})

	cancel1() // first waiter leaves; second still wants the result
	if err := <-res; err != context.Canceled {
		t.Fatalf("abandoning waiter got %v, want context.Canceled", err)
	}
	select {
	case <-fctx.Done():
		t.Fatal("flight canceled while a waiter remained")
	case <-time.After(50 * time.Millisecond):
	}

	cancel2() // last waiter leaves: the flight must be canceled
	if err := <-res; err != context.Canceled {
		t.Fatalf("second waiter got %v, want context.Canceled", err)
	}
	select {
	case <-fctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("flight context not canceled after the last waiter left")
	}
}

// TestAbandonedFlightDoesNotPoisonSuccessors pins the unmapping half of
// the refcount contract: once the last waiter abandons a flight, a fresh
// request for the same key starts a new run — even while the doomed run is
// still tearing down — instead of inheriting its cancellation.
func TestAbandonedFlightDoesNotPoisonSuccessors(t *testing.T) {
	g := newFlightGroup(nil)
	base := context.Background()
	spawn := func(run func()) { go run() }
	admit := func() error { return nil }

	release := make(chan struct{})
	started := make(chan struct{}, 1)
	doomed := func(fctx context.Context) (any, error) {
		started <- struct{}{}
		<-fctx.Done()
		<-release // cancellation noticed, but teardown is slow
		return nil, fctx.Err()
	}
	ctx1, cancel1 := context.WithCancel(context.Background())
	abandoned := make(chan error, 1)
	go func() {
		_, _, err := g.do(ctx1, base, "k", admit, spawn, doomed)
		abandoned <- err
	}()
	<-started
	cancel1()
	if err := <-abandoned; err != context.Canceled {
		t.Fatalf("abandoning waiter got %v, want context.Canceled", err)
	}

	// The doomed run is canceled but still blocked in teardown; a new
	// request must get a fresh flight and a real result.
	fresh := func(fctx context.Context) (any, error) {
		if fctx.Err() != nil {
			return nil, fmt.Errorf("fresh flight born canceled: %w", fctx.Err())
		}
		return 42, nil
	}
	got := make(chan any, 1)
	errs := make(chan error, 1)
	go func() {
		v, _, err := g.do(context.Background(), base, "k", admit, spawn, fresh)
		got <- v
		errs <- err
	}()
	select {
	case v := <-got:
		if err := <-errs; err != nil || v != 42 {
			t.Fatalf("successor got (%v, %v), want (42, nil)", v, err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("successor request never completed; it inherited the doomed flight")
	}
	close(release) // let the doomed runner finish; it must not unmap anything current
	if _, _, err := g.do(context.Background(), base, "k", admit, spawn, fresh); err != nil {
		t.Fatalf("post-teardown request: %v", err)
	}
}

// TestJobsEndpoint exercises the batch surface the cluster coordinator
// speaks: independent per-job execution, per-job errors with status and
// backoff hints, and per-job cache visibility on repeats.
func TestJobsEndpoint(t *testing.T) {
	s := newTestService(t, Config{})
	batch := wire.JobsRequest{Jobs: []RunRequest{
		fastRun("Base", "Apache", 501),
		{Scheme: "NoSuchScheme"},
		fastRun("FDIP", "DB2", 501),
	}}
	code, raw := s.post(t, "/v1/jobs", batch)
	if code != http.StatusOK {
		t.Fatalf("POST /v1/jobs: status %d body %s", code, raw)
	}
	var resp wire.JobsResponse
	if err := json.Unmarshal(raw, &resp); err != nil {
		t.Fatalf("decoding jobs response: %v", err)
	}
	if len(resp.Jobs) != 3 {
		t.Fatalf("got %d job results, want 3", len(resp.Jobs))
	}
	for _, i := range []int{0, 2} {
		jr := resp.Jobs[i]
		if jr.Error != "" || len(jr.Result) == 0 || jr.Key == "" {
			t.Errorf("jobs[%d] = %+v, want a keyed result", i, jr)
		}
		var r boomsim.Result
		if err := json.Unmarshal(jr.Result, &r); err != nil || r.Instructions == 0 {
			t.Errorf("jobs[%d] result undecodable or empty: %v", i, err)
		}
	}
	if bad := resp.Jobs[1]; bad.Error == "" || bad.Status != http.StatusNotFound || bad.Retryable() {
		t.Errorf("jobs[1] = %+v, want non-retryable 404", bad)
	}

	// The same batch again: the good cells must now be cache hits.
	_, raw = s.post(t, "/v1/jobs", batch)
	if err := json.Unmarshal(raw, &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Jobs[0].Cached || !resp.Jobs[2].Cached {
		t.Errorf("repeat batch not served from cache: %+v", resp.Jobs)
	}

	// Batch-level validation.
	if code, _ := s.post(t, "/v1/jobs", wire.JobsRequest{}); code != http.StatusBadRequest {
		t.Errorf("empty batch: status %d, want 400", code)
	}
	big := wire.JobsRequest{Jobs: make([]RunRequest, maxMatrixRuns+1)}
	if code, _ := s.post(t, "/v1/jobs", big); code != http.StatusBadRequest {
		t.Errorf("oversized batch: status %d, want 400", code)
	}
}

// TestJobsEndpointReportsBackpressure pins the per-job 429 + retry hint
// path: with no capacity, each job fails individually and carries the
// backoff hint the coordinator's cooldown consumes.
func TestJobsEndpointReportsBackpressure(t *testing.T) {
	s := newTestService(t, Config{Workers: 1, QueueDepth: 1})
	// Occupy the only queue slot with an endless run.
	started := make(chan struct{})
	go func() {
		close(started)
		s.post(t, "/v1/run", endlessRun(502))
	}()
	<-started
	waitFor(t, "flight admitted", func() bool { return s.srv.Stats().Queued >= 1 })

	_, raw := s.post(t, "/v1/jobs", wire.JobsRequest{Jobs: []RunRequest{fastRun("Base", "Apache", 503)}})
	var resp wire.JobsResponse
	if err := json.Unmarshal(raw, &resp); err != nil {
		t.Fatal(err)
	}
	jr := resp.Jobs[0]
	if jr.Status != http.StatusTooManyRequests || jr.RetryAfterMS <= 0 || !jr.Retryable() {
		t.Fatalf("job under backpressure = %+v, want retryable 429 with retry_after_ms", jr)
	}
}

// TestHealthzReportsBuildAndLoad pins the operator/coordinator contract:
// /healthz carries version info and live load, not just a bare 200.
func TestHealthzReportsBuildAndLoad(t *testing.T) {
	s := newTestService(t, Config{Workers: 3, QueueDepth: 7})
	code, raw := s.get(t, "/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthz: status %d", code)
	}
	var h wire.Health
	if err := json.Unmarshal(raw, &h); err != nil {
		t.Fatalf("decoding healthz %s: %v", raw, err)
	}
	if h.Status != "ok" || h.Version != Version || h.GoVersion == "" {
		t.Errorf("healthz identity = %+v, want ok/%s with a Go version", h, Version)
	}
	if h.Workers != 3 || h.QueueDepth != 7 {
		t.Errorf("healthz capacity = %d workers / %d queue, want 3/7", h.Workers, h.QueueDepth)
	}
	if h.Schemes == 0 || h.Workloads == 0 {
		t.Errorf("healthz registries empty: %+v", h)
	}

	// Load must move with in-flight work.
	started := make(chan struct{})
	go func() {
		close(started)
		s.post(t, "/v1/run", endlessRun(504))
	}()
	<-started
	waitFor(t, "sim in flight", func() bool { return s.srv.Stats().SimsInflight >= 1 })
	_, raw = s.get(t, "/healthz")
	if err := json.Unmarshal(raw, &h); err != nil {
		t.Fatal(err)
	}
	if h.InFlightSims < 1 || h.QueuedFlights < 1 {
		t.Errorf("healthz load = %d inflight / %d queued, want >= 1 each", h.InFlightSims, h.QueuedFlights)
	}
}

// TestSchemesEndpointCarriesFullConfig pins what /v1/schemes now sources
// from the declarative config plane: every entry's description, its Section
// VI-D storage-overhead accounting, and the full SchemeConfig a client can
// fetch, modify and resubmit inline.
func TestSchemesEndpointCarriesFullConfig(t *testing.T) {
	s := newTestService(t, Config{})
	code, raw := s.get(t, "/v1/schemes")
	if code != http.StatusOK {
		t.Fatalf("schemes: status %d", code)
	}
	var schemes []boomsim.SchemeInfo
	if err := json.Unmarshal(raw, &schemes); err != nil {
		t.Fatal(err)
	}
	byName := map[string]boomsim.SchemeInfo{}
	for _, sc := range schemes {
		byName[sc.Name] = sc
		if sc.Config.Name != sc.Name {
			t.Errorf("%s: listing config names %q", sc.Name, sc.Config.Name)
		}
		if sc.Description == "" {
			t.Errorf("%s: listing drops the description", sc.Name)
		}
	}
	// Section VI-D accounting must survive into the listing: DIP's 64 KB
	// table, SHIFT's amortised LLC tag extension, Boomerang's 540 bytes.
	for name, wantKB := range map[string]float64{"DIP": 64, "SHIFT": 15, "Boomerang": 0.52734375} {
		if got := byName[name].StorageOverheadKB; got != wantKB {
			t.Errorf("%s storage overhead = %v KB in listing, want %v", name, got, wantKB)
		}
	}
	// The config itself must be a usable recipe: Boomerang's must carry its
	// miss policy.
	if mp := byName["Boomerang"].Config.MissPolicy; mp == nil || mp.Kind != "boomerang" {
		t.Errorf("Boomerang listing config lacks its miss policy: %+v", byName["Boomerang"].Config)
	}
}

// TestRunEndpointAcceptsSchemeConfig pins the wire half of the config
// plane: an inline scheme_config runs end to end, its per-component
// registry stats come back in the response, and its cache identity is
// distinct from the registered scheme of the same shape.
func TestRunEndpointAcceptsSchemeConfig(t *testing.T) {
	s := newTestService(t, Config{})
	seed, warm, measure := uint64(3), uint64(2_000), uint64(20_000)
	cfgJSON := json.RawMessage(`{
		"name": "Boomerang-FTQ64",
		"ftq_depth": 64,
		"fdip_probes": true,
		"miss_policy": {"kind": "boomerang"}
	}`)
	req := RunRequest{
		SchemeConfig: cfgJSON, Workload: "Apache", FootprintKB: 64,
		ImageSeed: &seed, WalkSeed: &seed,
		WarmInstrs: &warm, MeasureInstrs: &measure,
	}
	code, raw := s.post(t, "/v1/run", req)
	if code != http.StatusOK {
		t.Fatalf("run with scheme_config: status %d body %s", code, raw)
	}
	rr := decodeRun(t, raw)
	if rr.Result.Scheme != "Boomerang-FTQ64" {
		t.Errorf("result scheme = %q, want the config's name", rr.Result.Scheme)
	}
	if len(rr.Result.Stats) == 0 || rr.Result.Stats["boomerang.probes"] == 0 {
		t.Errorf("response carries no per-component registry stats: %v", rr.Result.Stats)
	}

	stock := fastRun("Boomerang", "Apache", seed)
	code, raw = s.post(t, "/v1/run", stock)
	if code != http.StatusOK {
		t.Fatalf("stock run: status %d", code)
	}
	if stockRR := decodeRun(t, raw); stockRR.Key == rr.Key {
		t.Error("inline config and registered scheme share a cache key")
	}

	// Malformed configs are client errors at the door.
	bad := req
	bad.SchemeConfig = json.RawMessage(`{"name":"x","prefetcher":{"kind":"psychic"}}`)
	if code, _ := s.post(t, "/v1/run", bad); code != http.StatusBadRequest {
		t.Errorf("garbage scheme_config: status %d, want 400", code)
	}
}

// TestMetricsExposeComponentStats pins the observability half: after an
// executed run, /metrics carries the per-component registry totals as
// labeled boomsimd_sim_component_total series.
func TestMetricsExposeComponentStats(t *testing.T) {
	s := newTestService(t, Config{})
	if code, _ := s.post(t, "/v1/run", fastRun("Boomerang", "Apache", 83)); code != http.StatusOK {
		t.Fatal("priming run failed")
	}
	code, raw := s.get(t, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics: status %d", code)
	}
	body := string(raw)
	for _, series := range []string{
		`boomsimd_sim_component_total{stat="frontend.retired_instrs"}`,
		`boomsimd_sim_component_total{stat="cache.llc_accesses"}`,
		`boomsimd_sim_component_total{stat="bpu.btb_lookups"}`,
		`boomsimd_sim_component_total{stat="boomerang.probes"}`,
	} {
		if !strings.Contains(body, series) {
			t.Errorf("metrics output missing %s", series)
		}
	}
}
