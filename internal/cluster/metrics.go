package cluster

import (
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"

	"boomsim/internal/wire"
)

// Metrics instruments a Coordinator: plain atomics so Stats() can be read
// live from another goroutine (the kill-switch in the e2e test, boomctl's
// /metrics listener) while the dispatch loop mutates them.
type metrics struct {
	batchesDispatched atomic.Uint64
	jobsDispatched    atomic.Uint64
	jobsCompleted     atomic.Uint64
	jobsResumed       atomic.Uint64
	jobsRetried       atomic.Uint64
	jobsHedged        atomic.Uint64
	cacheHits         atomic.Uint64
	workerDeaths      atomic.Uint64
	breakerCloses     atomic.Uint64
	probeFailures     atomic.Uint64
	workersJoined     atomic.Uint64
	workersRemoved    atomic.Uint64
	membershipErrors  atomic.Uint64
	journalErrors     atomic.Uint64

	// cellsRetried counts distinct cells that needed at least one
	// re-dispatch (jobsRetried counts every re-dispatch event).
	cellsRetried atomic.Uint64

	// mu guards the worker list, which grows when membership admits
	// endpoints the coordinator was not born with; the per-worker counters
	// themselves stay lock-free.
	mu      sync.Mutex
	workers []*workerMetrics

	// slowMu guards the slowest-cells leaderboard: the coordinator used to
	// discard per-cell timing the moment a job settled; this retains the
	// top-N so /healthz and boomctl can name the cells that gated the sweep
	// even when tracing is off.
	slowMu  sync.Mutex
	slowest []CellTiming
}

// topSlowCells bounds the slowest-cells leaderboard.
const topSlowCells = 8

// CellTiming is one cell's completion wall-clock, measured from its first
// dispatch to its settled result (retries and hedges included).
type CellTiming struct {
	Key    string  `json:"key"`
	Worker string  `json:"worker"`
	MS     float64 `json:"ms"`
}

// observeCell records one settled cell's timing into the leaderboard.
func (m *metrics) observeCell(key, worker string, ms float64) {
	m.slowMu.Lock()
	defer m.slowMu.Unlock()
	i := len(m.slowest)
	for i > 0 && m.slowest[i-1].MS < ms {
		i--
	}
	if i >= topSlowCells {
		return
	}
	m.slowest = append(m.slowest, CellTiming{})
	copy(m.slowest[i+1:], m.slowest[i:])
	m.slowest[i] = CellTiming{Key: key, Worker: worker, MS: ms}
	if len(m.slowest) > topSlowCells {
		m.slowest = m.slowest[:topSlowCells]
	}
}

func (m *metrics) slowestSnapshot() []CellTiming {
	m.slowMu.Lock()
	defer m.slowMu.Unlock()
	out := make([]CellTiming, len(m.slowest))
	copy(out, m.slowest)
	return out
}

// workerMetrics is one endpoint's share.
type workerMetrics struct {
	endpoint     string
	state        atomic.Int32 // wsLive/wsSuspect/wsDead/wsRemoved
	requests     atomic.Uint64
	failures     atomic.Uint64
	jobs         atomic.Uint64
	latencyNanos atomic.Uint64
}

// Stats snapshots the coordinator counters.
type Stats struct {
	BatchesDispatched uint64 `json:"batches_dispatched"`
	JobsDispatched    uint64 `json:"jobs_dispatched"`
	JobsCompleted     uint64 `json:"jobs_completed"`
	// JobsResumed counts cells answered from the sweep journal without any
	// dispatch: JobsCompleted + JobsResumed covers the whole matrix, and on
	// a resumed sweep JobsCompleted is exactly the non-journaled remainder.
	JobsResumed    uint64 `json:"jobs_resumed"`
	JobsRetried    uint64 `json:"jobs_retried"`
	JobsHedged     uint64 `json:"jobs_hedged"`
	CacheHits      uint64 `json:"cache_hits"`
	WorkerDeaths   uint64 `json:"worker_deaths"`
	BreakerCloses  uint64 `json:"breaker_closes"`
	ProbeFailures  uint64 `json:"probe_failures"`
	WorkersJoined  uint64 `json:"workers_joined"`
	WorkersRemoved uint64 `json:"workers_removed"`
	// MembershipErrors counts unreadable membership-file reads (the last
	// good view stayed in effect); JournalErrors counts sweeps whose
	// journal stopped persisting (results unaffected, resumability lost).
	MembershipErrors uint64 `json:"membership_errors"`
	JournalErrors    uint64 `json:"journal_errors"`

	// CellsTotal is every matrix cell with a recorded result, however it
	// got one (dispatch or journal resume); CellsRetried counts the
	// distinct cells that needed at least one re-dispatch. SlowestCellMS
	// and SlowestCells retain per-cell completion timing — wall clock from
	// first dispatch to settled result — that the coordinator previously
	// discarded; available even when tracing is off.
	CellsTotal    uint64       `json:"cells_total"`
	CellsRetried  uint64       `json:"cells_retried"`
	SlowestCellMS float64      `json:"slowest_cell_ms"`
	SlowestCells  []CellTiming `json:"slowest_cells,omitempty"`

	Workers []WorkerStats `json:"workers"`
}

// WorkerStats is one endpoint's snapshot.
type WorkerStats struct {
	Endpoint string `json:"endpoint"`
	Alive    bool   `json:"alive"`
	// State is the circuit-breaker state: "live", "suspect" (half-open,
	// probing), "dead" (open, cooling down) or "removed" (retired from the
	// run). Alive means routable: live or suspect.
	State        string `json:"state"`
	Requests     uint64 `json:"requests"`
	Failures     uint64 `json:"failures"`
	Jobs         uint64 `json:"jobs"`
	LatencyNanos uint64 `json:"latency_nanos"`
}

// CacheHitRatio is the coordinator-observed fraction of completed jobs the
// workers answered from their result caches — the number key-affine
// routing exists to maximise on repeat sweeps.
func (s Stats) CacheHitRatio() float64 {
	if s.JobsCompleted == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(s.JobsCompleted)
}

func newMetrics(endpoints []string) *metrics {
	m := &metrics{}
	for _, ep := range endpoints {
		m.worker(ep)
	}
	return m
}

// worker returns ep's metrics, creating them on first sight — endpoints
// can join the pool mid-sweep.
func (m *metrics) worker(endpoint string) *workerMetrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, w := range m.workers {
		if w.endpoint == endpoint {
			return w
		}
	}
	w := &workerMetrics{endpoint: endpoint}
	w.state.Store(wsLive)
	m.workers = append(m.workers, w)
	return w
}

func (m *metrics) workerSnapshot() []WorkerStats {
	m.mu.Lock()
	workers := make([]*workerMetrics, len(m.workers))
	copy(workers, m.workers)
	m.mu.Unlock()
	out := make([]WorkerStats, len(workers))
	for i, w := range workers {
		st := w.state.Load()
		out[i] = WorkerStats{
			Endpoint:     w.endpoint,
			Alive:        st == wsLive || st == wsSuspect,
			State:        stateName(st),
			Requests:     w.requests.Load(),
			Failures:     w.failures.Load(),
			Jobs:         w.jobs.Load(),
			LatencyNanos: w.latencyNanos.Load(),
		}
	}
	return out
}

func (m *metrics) snapshot() Stats {
	slowest := m.slowestSnapshot()
	var slowMS float64
	if len(slowest) > 0 {
		slowMS = slowest[0].MS
	}
	return Stats{
		CellsTotal:    m.jobsCompleted.Load() + m.jobsResumed.Load(),
		CellsRetried:  m.cellsRetried.Load(),
		SlowestCellMS: slowMS,
		SlowestCells:  slowest,

		BatchesDispatched: m.batchesDispatched.Load(),
		JobsDispatched:    m.jobsDispatched.Load(),
		JobsCompleted:     m.jobsCompleted.Load(),
		JobsResumed:       m.jobsResumed.Load(),
		JobsRetried:       m.jobsRetried.Load(),
		JobsHedged:        m.jobsHedged.Load(),
		CacheHits:         m.cacheHits.Load(),
		WorkerDeaths:      m.workerDeaths.Load(),
		BreakerCloses:     m.breakerCloses.Load(),
		ProbeFailures:     m.probeFailures.Load(),
		WorkersJoined:     m.workersJoined.Load(),
		WorkersRemoved:    m.workersRemoved.Load(),
		MembershipErrors:  m.membershipErrors.Load(),
		JournalErrors:     m.journalErrors.Load(),
		Workers:           m.workerSnapshot(),
	}
}

// membershipView condenses the worker snapshot into the operator-facing
// pool view ("removed" workers report as dead — either way they take no
// traffic).
func (m *metrics) membershipView() wire.MembershipView {
	var v wire.MembershipView
	for _, ws := range m.workerSnapshot() {
		state := ws.State
		switch state {
		case "live":
			v.Live++
		case "suspect":
			v.Suspect++
		default:
			state = "dead"
			v.Dead++
		}
		v.Workers = append(v.Workers, wire.MembershipWorker{Endpoint: ws.Endpoint, State: state})
	}
	return v
}

// serveHTTP renders the counters in Prometheus text exposition format.
func (m *metrics) serveHTTP(w http.ResponseWriter, r *http.Request) {
	s := m.snapshot()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	write := func(name, kind, help string, value any) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %v\n", name, help, name, kind, name, value)
	}
	write("boomsim_coordinator_batches_dispatched_total", "counter", "Batches posted to workers.", s.BatchesDispatched)
	write("boomsim_coordinator_jobs_dispatched_total", "counter", "Job dispatches, including retries and hedges.", s.JobsDispatched)
	write("boomsim_coordinator_jobs_completed_total", "counter", "Jobs with a recorded result.", s.JobsCompleted)
	write("boomsim_coordinator_jobs_resumed_total", "counter", "Jobs answered from the sweep journal without dispatch.", s.JobsResumed)
	write("boomsim_coordinator_jobs_retried_total", "counter", "Job re-dispatches after per-job or transport failures.", s.JobsRetried)
	write("boomsim_coordinator_jobs_hedged_total", "counter", "Duplicate dispatches of straggling jobs.", s.JobsHedged)
	write("boomsim_coordinator_cache_hits_total", "counter", "Jobs answered from a worker's result cache.", s.CacheHits)
	write("boomsim_coordinator_cache_hit_ratio", "gauge", "Coordinator-observed worker cache-hit ratio.", s.CacheHitRatio())
	write("boomsim_coordinator_worker_deaths_total", "counter", "Circuit breakers opened (worker declared dead and drained).", s.WorkerDeaths)
	write("boomsim_coordinator_breaker_closes_total", "counter", "Circuit breakers closed after a clean half-open probe.", s.BreakerCloses)
	write("boomsim_coordinator_probe_failures_total", "counter", "Health probes that failed at sweep start.", s.ProbeFailures)
	write("boomsim_coordinator_workers_joined_total", "counter", "Workers admitted by membership changes mid-sweep.", s.WorkersJoined)
	write("boomsim_coordinator_workers_removed_total", "counter", "Workers retired by membership changes mid-sweep.", s.WorkersRemoved)
	write("boomsim_coordinator_membership_errors_total", "counter", "Membership file reads that failed.", s.MembershipErrors)
	write("boomsim_coordinator_journal_errors_total", "counter", "Sweeps whose journal stopped persisting.", s.JournalErrors)
	write("boomsim_coordinator_cells_total", "counter", "Matrix cells with a recorded result (dispatched or journal-resumed).", s.CellsTotal)
	write("boomsim_coordinator_cells_retried_total", "counter", "Distinct cells that needed at least one re-dispatch.", s.CellsRetried)
	write("boomsim_coordinator_slowest_cell_ms", "gauge", "Slowest observed cell completion, first dispatch to settled result.", s.SlowestCellMS)
	perWorker := func(name, kind, help string, value func(WorkerStats) any) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, kind)
		for _, ws := range s.Workers {
			fmt.Fprintf(w, "%s{worker=%q} %v\n", name, ws.Endpoint, value(ws))
		}
	}
	perWorker("boomsim_coordinator_worker_alive", "gauge", "1 while the worker is routable (breaker closed or half-open).",
		func(ws WorkerStats) any { return b2i(ws.Alive) })
	perWorker("boomsim_coordinator_worker_requests_total", "counter", "Batch requests sent to the worker.",
		func(ws WorkerStats) any { return ws.Requests })
	perWorker("boomsim_coordinator_worker_failures_total", "counter", "Batch requests that failed at the transport.",
		func(ws WorkerStats) any { return ws.Failures })
	perWorker("boomsim_coordinator_worker_jobs_total", "counter", "Jobs completed by the worker.",
		func(ws WorkerStats) any { return ws.Jobs })
	perWorker("boomsim_coordinator_worker_latency_seconds_total", "counter", "Wall time spent in the worker's batch requests.",
		func(ws WorkerStats) any { return float64(ws.LatencyNanos) / 1e9 })
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}
