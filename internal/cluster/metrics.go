package cluster

import (
	"fmt"
	"net/http"
	"sync/atomic"
)

// Metrics instruments a Coordinator: plain atomics so Stats() can be read
// live from another goroutine (the kill-switch in the e2e test, boomctl's
// /metrics listener) while the dispatch loop mutates them.
type metrics struct {
	batchesDispatched atomic.Uint64
	jobsDispatched    atomic.Uint64
	jobsCompleted     atomic.Uint64
	jobsRetried       atomic.Uint64
	jobsHedged        atomic.Uint64
	cacheHits         atomic.Uint64
	workerDeaths      atomic.Uint64
	probeFailures     atomic.Uint64

	workers []*workerMetrics
}

// workerMetrics is one endpoint's share; the slice is fixed at New so no
// locking is needed.
type workerMetrics struct {
	endpoint     string
	alive        atomic.Bool
	requests     atomic.Uint64
	failures     atomic.Uint64
	jobs         atomic.Uint64
	latencyNanos atomic.Uint64
}

// Stats snapshots the coordinator counters.
type Stats struct {
	BatchesDispatched uint64 `json:"batches_dispatched"`
	JobsDispatched    uint64 `json:"jobs_dispatched"`
	JobsCompleted     uint64 `json:"jobs_completed"`
	JobsRetried       uint64 `json:"jobs_retried"`
	JobsHedged        uint64 `json:"jobs_hedged"`
	CacheHits         uint64 `json:"cache_hits"`
	WorkerDeaths      uint64 `json:"worker_deaths"`
	ProbeFailures     uint64 `json:"probe_failures"`

	Workers []WorkerStats `json:"workers"`
}

// WorkerStats is one endpoint's snapshot.
type WorkerStats struct {
	Endpoint     string `json:"endpoint"`
	Alive        bool   `json:"alive"`
	Requests     uint64 `json:"requests"`
	Failures     uint64 `json:"failures"`
	Jobs         uint64 `json:"jobs"`
	LatencyNanos uint64 `json:"latency_nanos"`
}

// CacheHitRatio is the coordinator-observed fraction of completed jobs the
// workers answered from their result caches — the number key-affine
// routing exists to maximise on repeat sweeps.
func (s Stats) CacheHitRatio() float64 {
	if s.JobsCompleted == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(s.JobsCompleted)
}

func newMetrics(endpoints []string) *metrics {
	m := &metrics{workers: make([]*workerMetrics, len(endpoints))}
	for i, ep := range endpoints {
		m.workers[i] = &workerMetrics{endpoint: ep}
		m.workers[i].alive.Store(true)
	}
	return m
}

func (m *metrics) worker(endpoint string) *workerMetrics {
	for _, w := range m.workers {
		if w.endpoint == endpoint {
			return w
		}
	}
	return nil
}

func (m *metrics) snapshot() Stats {
	s := Stats{
		BatchesDispatched: m.batchesDispatched.Load(),
		JobsDispatched:    m.jobsDispatched.Load(),
		JobsCompleted:     m.jobsCompleted.Load(),
		JobsRetried:       m.jobsRetried.Load(),
		JobsHedged:        m.jobsHedged.Load(),
		CacheHits:         m.cacheHits.Load(),
		WorkerDeaths:      m.workerDeaths.Load(),
		ProbeFailures:     m.probeFailures.Load(),
		Workers:           make([]WorkerStats, len(m.workers)),
	}
	for i, w := range m.workers {
		s.Workers[i] = WorkerStats{
			Endpoint:     w.endpoint,
			Alive:        w.alive.Load(),
			Requests:     w.requests.Load(),
			Failures:     w.failures.Load(),
			Jobs:         w.jobs.Load(),
			LatencyNanos: w.latencyNanos.Load(),
		}
	}
	return s
}

// serveHTTP renders the counters in Prometheus text exposition format.
func (m *metrics) serveHTTP(w http.ResponseWriter, r *http.Request) {
	s := m.snapshot()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	write := func(name, kind, help string, value any) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %v\n", name, help, name, kind, name, value)
	}
	write("boomsim_coordinator_batches_dispatched_total", "counter", "Batches posted to workers.", s.BatchesDispatched)
	write("boomsim_coordinator_jobs_dispatched_total", "counter", "Job dispatches, including retries and hedges.", s.JobsDispatched)
	write("boomsim_coordinator_jobs_completed_total", "counter", "Jobs with a recorded result.", s.JobsCompleted)
	write("boomsim_coordinator_jobs_retried_total", "counter", "Job re-dispatches after per-job or transport failures.", s.JobsRetried)
	write("boomsim_coordinator_jobs_hedged_total", "counter", "Duplicate dispatches of straggling jobs.", s.JobsHedged)
	write("boomsim_coordinator_cache_hits_total", "counter", "Jobs answered from a worker's result cache.", s.CacheHits)
	write("boomsim_coordinator_cache_hit_ratio", "gauge", "Coordinator-observed worker cache-hit ratio.", s.CacheHitRatio())
	write("boomsim_coordinator_worker_deaths_total", "counter", "Workers declared dead and drained.", s.WorkerDeaths)
	write("boomsim_coordinator_probe_failures_total", "counter", "Health probes that failed at sweep start.", s.ProbeFailures)
	perWorker := func(name, kind, help string, value func(WorkerStats) any) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, kind)
		for _, ws := range s.Workers {
			fmt.Fprintf(w, "%s{worker=%q} %v\n", name, ws.Endpoint, value(ws))
		}
	}
	perWorker("boomsim_coordinator_worker_alive", "gauge", "1 while the worker is considered live.",
		func(ws WorkerStats) any { return b2i(ws.Alive) })
	perWorker("boomsim_coordinator_worker_requests_total", "counter", "Batch requests sent to the worker.",
		func(ws WorkerStats) any { return ws.Requests })
	perWorker("boomsim_coordinator_worker_failures_total", "counter", "Batch requests that failed at the transport.",
		func(ws WorkerStats) any { return ws.Failures })
	perWorker("boomsim_coordinator_worker_jobs_total", "counter", "Jobs completed by the worker.",
		func(ws WorkerStats) any { return ws.Jobs })
	perWorker("boomsim_coordinator_worker_latency_seconds_total", "counter", "Wall time spent in the worker's batch requests.",
		func(ws WorkerStats) any { return float64(ws.LatencyNanos) / 1e9 })
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}
