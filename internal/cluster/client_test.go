package cluster

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func TestRetryClientHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int32
	var gap atomic.Int64
	var last atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		now := time.Now().UnixNano()
		if prev := last.Swap(now); prev != 0 {
			gap.Store(now - prev)
		}
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		w.Write([]byte(`{"ok":true}`))
	}))
	defer srv.Close()

	// BaseDelay alone would retry after ~1–2ms; the 1s Retry-After hint
	// must dominate, capped by MaxDelay.
	c := &RetryClient{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 250 * time.Millisecond}
	raw, err := c.PostJSON(context.Background(), srv.URL, []byte(`{}`))
	if err != nil {
		t.Fatalf("PostJSON: %v", err)
	}
	if string(raw) != `{"ok":true}` {
		t.Fatalf("body = %s", raw)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("server saw %d calls, want 2", got)
	}
	if g := time.Duration(gap.Load()); g < 200*time.Millisecond {
		t.Errorf("retry came after %v; the Retry-After hint (capped at 250ms) was not honored", g)
	}
}

func TestRetryClientDoesNotRetryClientErrors(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "bad scheme", http.StatusBadRequest)
	}))
	defer srv.Close()

	c := &RetryClient{MaxAttempts: 5, BaseDelay: time.Millisecond}
	_, err := c.PostJSON(context.Background(), srv.URL, []byte(`{}`))
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusBadRequest {
		t.Fatalf("err = %v, want StatusError 400", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("server saw %d calls, want 1 — 4xx must not be retried", got)
	}
}

func TestRetryClientRetriesServerErrors(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, "boom", http.StatusInternalServerError)
			return
		}
		w.Write([]byte(`ok`))
	}))
	defer srv.Close()

	c := &RetryClient{MaxAttempts: 3, BaseDelay: time.Millisecond}
	raw, err := c.PostJSON(context.Background(), srv.URL, nil)
	if err != nil || string(raw) != "ok" {
		t.Fatalf("PostJSON = %q, %v; want ok after 2 retries", raw, err)
	}
}

func TestRetryClientGivesUpAfterMaxAttempts(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "overloaded", http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	c := &RetryClient{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond}
	_, err := c.PostJSON(context.Background(), srv.URL, nil)
	if err == nil {
		t.Fatal("want error after exhausting attempts")
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d calls, want 3", got)
	}
}

func TestRetryClientRespectsContextDuringBackoff(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "30")
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	c := &RetryClient{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: time.Minute}
	start := time.Now()
	_, err := c.PostJSON(ctx, srv.URL, nil)
	if err == nil {
		t.Fatal("want context error")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("PostJSON blocked %v through a canceled context", elapsed)
	}
}

// TestRetryClientBackoffUnderStorms drives 429/503 storms through a fake
// clock: the injected sleep hook records every inter-attempt wait instead
// of burning wall time, so the table can assert exactly how Retry-After (in
// both RFC 9110 forms) and the MaxDelay cap shape the backoff schedule.
func TestRetryClientBackoffUnderStorms(t *testing.T) {
	const attempts = 4
	// BaseDelay 1ns keeps the jitter term at most a few nanoseconds, so
	// whenever a Retry-After hint is in play it dominates exactly and the
	// recorded sleeps equal the hint (or its MaxDelay cap).
	tiny := time.Duration(1)
	cases := []struct {
		name     string
		status   int
		header   func(i int32) string // Retry-After for the i-th response
		maxDelay time.Duration
		// check inspects the recorded sleeps (one per retry).
		check func(t *testing.T, sleeps []time.Duration)
	}{
		{
			name:     "429 storm with delay-seconds",
			status:   http.StatusTooManyRequests,
			header:   func(int32) string { return "2" },
			maxDelay: 10 * time.Second,
			check: func(t *testing.T, sleeps []time.Duration) {
				for i, d := range sleeps {
					if d != 2*time.Second {
						t.Errorf("sleep[%d] = %v, want exactly the 2s Retry-After hint", i, d)
					}
				}
			},
		},
		{
			name:     "503 storm with delay-seconds capped by MaxDelay",
			status:   http.StatusServiceUnavailable,
			header:   func(int32) string { return "30" },
			maxDelay: 250 * time.Millisecond,
			check: func(t *testing.T, sleeps []time.Duration) {
				for i, d := range sleeps {
					if d != 250*time.Millisecond {
						t.Errorf("sleep[%d] = %v, want the 250ms MaxDelay cap, not the 30s hint", i, d)
					}
				}
			},
		},
		{
			name:   "429 storm with HTTP-date",
			status: http.StatusTooManyRequests,
			header: func(int32) string {
				return time.Now().Add(3 * time.Second).UTC().Format(http.TimeFormat)
			},
			maxDelay: 10 * time.Second,
			check: func(t *testing.T, sleeps []time.Duration) {
				for i, d := range sleeps {
					// An HTTP-date hint converts through time.Until, so allow
					// scheduling slop below; it must never round up past the
					// hinted instant.
					if d < 2*time.Second || d > 3*time.Second {
						t.Errorf("sleep[%d] = %v, want ~3s from the HTTP-date hint", i, d)
					}
				}
			},
		},
		{
			name:     "503 storm without hints backs off exponentially",
			status:   http.StatusServiceUnavailable,
			header:   func(int32) string { return "" },
			maxDelay: 10 * time.Second,
			check: func(t *testing.T, sleeps []time.Duration) {
				for i, d := range sleeps {
					// Full jitter from BaseDelay=1ns: tiny but non-negative,
					// and certainly no accidental seconds-long stall.
					if d < 0 || d > time.Millisecond {
						t.Errorf("sleep[%d] = %v, want jitter on the order of BaseDelay", i, d)
					}
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var calls atomic.Int32
			srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				i := calls.Add(1) - 1
				if h := tc.header(i); h != "" {
					w.Header().Set("Retry-After", h)
				}
				w.WriteHeader(tc.status)
			}))
			defer srv.Close()

			var sleeps []time.Duration
			c := &RetryClient{
				MaxAttempts: attempts,
				BaseDelay:   tiny,
				MaxDelay:    tc.maxDelay,
				sleep: func(ctx context.Context, d time.Duration) error {
					sleeps = append(sleeps, d)
					return nil
				},
			}
			start := time.Now()
			_, err := c.PostJSON(context.Background(), srv.URL, []byte(`{}`))
			if err == nil {
				t.Fatal("want an error: the storm never relents")
			}
			if got := calls.Load(); got != attempts {
				t.Fatalf("server saw %d calls, want %d", got, attempts)
			}
			if len(sleeps) != attempts-1 {
				t.Fatalf("recorded %d sleeps, want %d", len(sleeps), attempts-1)
			}
			tc.check(t, sleeps)
			// The whole storm must run on the fake clock: no real sleeping.
			if elapsed := time.Since(start); elapsed > 2*time.Second {
				t.Errorf("test burned %v of wall clock; sleeps were supposed to be fake", elapsed)
			}
		})
	}
}

// TestRetryClientRecoversMidStorm pins the happy ending: a 429 storm that
// relents mid-way yields the response, having slept the hinted amount
// before each retry and charged no extra attempts afterwards.
func TestRetryClientRecoversMidStorm(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		w.Write([]byte(`{"ok":true}`))
	}))
	defer srv.Close()

	var sleeps []time.Duration
	c := &RetryClient{
		MaxAttempts: 5,
		BaseDelay:   time.Duration(1),
		MaxDelay:    10 * time.Second,
		sleep: func(ctx context.Context, d time.Duration) error {
			sleeps = append(sleeps, d)
			return nil
		},
	}
	raw, err := c.PostJSON(context.Background(), srv.URL, []byte(`{}`))
	if err != nil || string(raw) != `{"ok":true}` {
		t.Fatalf("PostJSON = %q, %v; want the post-storm body", raw, err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d calls, want 3 (two rejections, one success)", got)
	}
	if len(sleeps) != 2 || sleeps[0] != time.Second || sleeps[1] != time.Second {
		t.Fatalf("sleeps = %v, want two exact 1s waits from the hints", sleeps)
	}
}

func TestParseRetryAfter(t *testing.T) {
	if d, ok := parseRetryAfter("2"); !ok || d != 2*time.Second {
		t.Errorf("parseRetryAfter(2) = %v, %v", d, ok)
	}
	if _, ok := parseRetryAfter(""); ok {
		t.Error("empty Retry-After parsed")
	}
	if _, ok := parseRetryAfter("soon"); ok {
		t.Error("garbage Retry-After parsed")
	}
	future := time.Now().Add(3 * time.Second).UTC().Format(http.TimeFormat)
	if d, ok := parseRetryAfter(future); !ok || d <= 0 || d > 3*time.Second {
		t.Errorf("parseRetryAfter(date) = %v, %v", d, ok)
	}
}
