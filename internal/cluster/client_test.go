package cluster

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func TestRetryClientHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int32
	var gap atomic.Int64
	var last atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		now := time.Now().UnixNano()
		if prev := last.Swap(now); prev != 0 {
			gap.Store(now - prev)
		}
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		w.Write([]byte(`{"ok":true}`))
	}))
	defer srv.Close()

	// BaseDelay alone would retry after ~1–2ms; the 1s Retry-After hint
	// must dominate, capped by MaxDelay.
	c := &RetryClient{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 250 * time.Millisecond}
	raw, err := c.PostJSON(context.Background(), srv.URL, []byte(`{}`))
	if err != nil {
		t.Fatalf("PostJSON: %v", err)
	}
	if string(raw) != `{"ok":true}` {
		t.Fatalf("body = %s", raw)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("server saw %d calls, want 2", got)
	}
	if g := time.Duration(gap.Load()); g < 200*time.Millisecond {
		t.Errorf("retry came after %v; the Retry-After hint (capped at 250ms) was not honored", g)
	}
}

func TestRetryClientDoesNotRetryClientErrors(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "bad scheme", http.StatusBadRequest)
	}))
	defer srv.Close()

	c := &RetryClient{MaxAttempts: 5, BaseDelay: time.Millisecond}
	_, err := c.PostJSON(context.Background(), srv.URL, []byte(`{}`))
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusBadRequest {
		t.Fatalf("err = %v, want StatusError 400", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("server saw %d calls, want 1 — 4xx must not be retried", got)
	}
}

func TestRetryClientRetriesServerErrors(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, "boom", http.StatusInternalServerError)
			return
		}
		w.Write([]byte(`ok`))
	}))
	defer srv.Close()

	c := &RetryClient{MaxAttempts: 3, BaseDelay: time.Millisecond}
	raw, err := c.PostJSON(context.Background(), srv.URL, nil)
	if err != nil || string(raw) != "ok" {
		t.Fatalf("PostJSON = %q, %v; want ok after 2 retries", raw, err)
	}
}

func TestRetryClientGivesUpAfterMaxAttempts(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "overloaded", http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	c := &RetryClient{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond}
	_, err := c.PostJSON(context.Background(), srv.URL, nil)
	if err == nil {
		t.Fatal("want error after exhausting attempts")
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d calls, want 3", got)
	}
}

func TestRetryClientRespectsContextDuringBackoff(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "30")
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	c := &RetryClient{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: time.Minute}
	start := time.Now()
	_, err := c.PostJSON(ctx, srv.URL, nil)
	if err == nil {
		t.Fatal("want context error")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("PostJSON blocked %v through a canceled context", elapsed)
	}
}

func TestParseRetryAfter(t *testing.T) {
	if d, ok := parseRetryAfter("2"); !ok || d != 2*time.Second {
		t.Errorf("parseRetryAfter(2) = %v, %v", d, ok)
	}
	if _, ok := parseRetryAfter(""); ok {
		t.Error("empty Retry-After parsed")
	}
	if _, ok := parseRetryAfter("soon"); ok {
		t.Error("garbage Retry-After parsed")
	}
	future := time.Now().Add(3 * time.Second).UTC().Format(http.TimeFormat)
	if d, ok := parseRetryAfter(future); !ok || d <= 0 || d > 3*time.Second {
		t.Errorf("parseRetryAfter(date) = %v, %v", d, ok)
	}
}
