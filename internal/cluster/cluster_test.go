package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"boomsim/internal/obs"
	"boomsim/internal/wire"
)

// fakeWorker is a minimal boomsimd stand-in: /healthz and /v1/jobs over
// canned per-job behavior, recording which keys it served. Jobs carry their
// key in Req.Scheme so the fake needs no simulator.
type fakeWorker struct {
	srv   *httptest.Server
	delay time.Duration
	// perJob overrides a job's outcome; nil or a nil return means success.
	perJob func(key string, timesSeen int) *wire.JobResult

	mu     sync.Mutex
	served map[string]int
}

func okResult(key string) json.RawMessage {
	return json.RawMessage(fmt.Sprintf(`{"key":%q}`, key))
}

func newFakeWorker(t *testing.T) *fakeWorker {
	t.Helper()
	f := &fakeWorker{served: make(map[string]int)}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"status":"ok"}`))
	})
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		var req wire.JobsRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if f.delay > 0 {
			select {
			case <-time.After(f.delay):
			case <-r.Context().Done():
				return
			}
		}
		resp := wire.JobsResponse{Jobs: make([]wire.JobResult, len(req.Jobs))}
		for i, job := range req.Jobs {
			key := job.Scheme
			f.mu.Lock()
			f.served[key]++
			seen := f.served[key]
			f.mu.Unlock()
			if f.perJob != nil {
				if jr := f.perJob(key, seen); jr != nil {
					resp.Jobs[i] = *jr
					continue
				}
			}
			resp.Jobs[i] = wire.JobResult{Key: key, Cached: seen > 1, Result: okResult(key)}
		}
		json.NewEncoder(w).Encode(resp)
	})
	f.srv = httptest.NewServer(mux)
	t.Cleanup(f.srv.Close)
	return f
}

func (f *fakeWorker) servedKeys() map[string]int {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[string]int, len(f.served))
	for k, v := range f.served {
		out[k] = v
	}
	return out
}

func makeJobs(n int) []Job {
	jobs := make([]Job, n)
	for i := range jobs {
		key := fmt.Sprintf("key-%03d", i)
		jobs[i] = Job{Key: key, Req: wire.RunRequest{Scheme: key}}
	}
	return jobs
}

func testConfig(workers ...*fakeWorker) Config {
	eps := make([]string, len(workers))
	for i, w := range workers {
		eps[i] = w.srv.URL
	}
	return Config{
		Endpoints: eps,
		Client:    &RetryClient{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: 10 * time.Millisecond},
	}
}

func checkResults(t *testing.T, jobs []Job, results []JobResult) {
	t.Helper()
	if len(results) != len(jobs) {
		t.Fatalf("%d results for %d jobs", len(results), len(jobs))
	}
	for i, r := range results {
		var got struct {
			Key string `json:"key"`
		}
		if err := json.Unmarshal(r.Result, &got); err != nil {
			t.Fatalf("results[%d]: %v (%s)", i, err, r.Result)
		}
		if got.Key != jobs[i].Key {
			t.Fatalf("results[%d] is for key %q, want %q — matrix order broken", i, got.Key, jobs[i].Key)
		}
	}
}

func TestCoordinatorRunsAllJobsWithKeyAffinity(t *testing.T) {
	w1, w2, w3 := newFakeWorker(t), newFakeWorker(t), newFakeWorker(t)
	co, err := New(testConfig(w1, w2, w3))
	if err != nil {
		t.Fatal(err)
	}
	jobs := makeJobs(40)
	results, err := co.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	checkResults(t, jobs, results)

	first := map[*fakeWorker]map[string]int{w1: w1.servedKeys(), w2: w2.servedKeys(), w3: w3.servedKeys()}
	active := 0
	for _, served := range first {
		if len(served) > 0 {
			active++
		}
	}
	if active < 2 {
		t.Errorf("only %d of 3 workers served jobs — sharding did not spread the sweep", active)
	}

	// A second identical sweep must route every key to the same worker:
	// that affinity is what keeps worker caches hot.
	if _, err := co.Run(context.Background(), jobs); err != nil {
		t.Fatal(err)
	}
	for w, served := range first {
		for key, n := range w.servedKeys() {
			if served[key] == 0 && n > 0 && served[key] != n {
				t.Errorf("key %q moved workers between identical sweeps", key)
			}
		}
	}
	st := co.Stats()
	if st.JobsCompleted != 80 {
		t.Errorf("JobsCompleted = %d, want 80", st.JobsCompleted)
	}
	if st.CacheHits != 40 {
		t.Errorf("CacheHits = %d, want 40 (second sweep fully cached)", st.CacheHits)
	}
}

func TestCoordinatorRetriesAfterPerJob429(t *testing.T) {
	w := newFakeWorker(t)
	// Reject every job 3 times before accepting it, with MaxAttempts 2:
	// capacity rejections are backpressure, not failures, so they must not
	// consume the job's attempt budget and the sweep must still finish.
	w.perJob = func(key string, seen int) *wire.JobResult {
		if seen <= 3 {
			return &wire.JobResult{Error: "queue full", Status: http.StatusTooManyRequests, RetryAfterMS: 5}
		}
		return nil
	}
	cfg := testConfig(w)
	cfg.MaxAttempts = 2
	co, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	jobs := makeJobs(6)
	results, err := co.Run(context.Background(), jobs)
	if err != nil {
		t.Fatalf("sweep failed under pure backpressure: %v", err)
	}
	checkResults(t, jobs, results)
	if st := co.Stats(); st.JobsRetried == 0 {
		t.Error("JobsRetried = 0, want >0 after per-job 429s")
	}
}

func TestCoordinatorRedistributesOnWorkerDeath(t *testing.T) {
	w1, w2 := newFakeWorker(t), newFakeWorker(t)
	// w1 dies after answering its first batch: subsequent connections are
	// refused, so its remaining keys must fail over to w2.
	var once sync.Once
	w1.perJob = func(key string, seen int) *wire.JobResult {
		once.Do(func() { go w1.srv.Close() })
		return nil
	}
	cfg := testConfig(w1, w2)
	cfg.BatchSize = 2
	cfg.InFlight = 1
	cfg.MaxAttempts = 6
	co, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	jobs := makeJobs(30)
	results, err := co.Run(context.Background(), jobs)
	if err != nil {
		t.Fatalf("sweep failed despite a surviving worker: %v", err)
	}
	checkResults(t, jobs, results)
	st := co.Stats()
	if st.WorkerDeaths == 0 {
		t.Error("WorkerDeaths = 0, want >0 after killing w1")
	}
	if len(w2.servedKeys()) == 0 {
		t.Error("surviving worker served nothing")
	}
}

func TestCoordinatorRetiresDrainingWorker(t *testing.T) {
	draining, healthy := newFakeWorker(t), newFakeWorker(t)
	// A draining boomsimd answers 200 with per-job 503s; it must strike
	// out after DeadAfter batches and its keys must move to the survivor —
	// the 200 wrapper must not keep resetting the strike count.
	draining.perJob = func(key string, seen int) *wire.JobResult {
		return &wire.JobResult{Error: "draining", Status: http.StatusServiceUnavailable}
	}
	cfg := testConfig(draining, healthy)
	cfg.MaxAttempts = 8
	co, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	jobs := makeJobs(20)
	results, err := co.Run(context.Background(), jobs)
	if err != nil {
		t.Fatalf("sweep failed despite a healthy survivor: %v", err)
	}
	checkResults(t, jobs, results)
	if st := co.Stats(); st.WorkerDeaths != 1 {
		t.Errorf("WorkerDeaths = %d, want exactly 1 for one draining worker", st.WorkerDeaths)
	}
}

func TestCoordinatorHedgesStragglers(t *testing.T) {
	slow, fast := newFakeWorker(t), newFakeWorker(t)
	slow.delay = 300 * time.Millisecond
	cfg := testConfig(slow, fast)
	cfg.HedgeAfter = 20 * time.Millisecond
	cfg.BatchSize = 2
	co, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	jobs := makeJobs(12)
	start := time.Now()
	results, err := co.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	checkResults(t, jobs, results)
	st := co.Stats()
	if st.JobsHedged == 0 {
		t.Error("JobsHedged = 0, want >0 with a straggling worker")
	}
	// Without hedging the slow worker's ~6 keys serialize at 300ms per
	// batch; hedged onto the fast worker the sweep finishes far sooner.
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("sweep took %v; hedging should have routed around the straggler", elapsed)
	}
}

func TestCoordinatorFailsWhenPoolDies(t *testing.T) {
	w := newFakeWorker(t)
	cfg := testConfig(w)
	co, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w.srv.Close()
	// Probe sees the dead worker: ErrNoWorkers before anything dispatches.
	if _, err := co.Run(context.Background(), makeJobs(4)); !errors.Is(err, ErrNoWorkers) {
		t.Fatalf("err = %v, want ErrNoWorkers", err)
	}
}

func TestCoordinatorAbortsOnTerminalRejection(t *testing.T) {
	w := newFakeWorker(t)
	w.perJob = func(key string, seen int) *wire.JobResult {
		return &wire.JobResult{Error: "unknown scheme", Status: http.StatusNotFound}
	}
	co, err := New(testConfig(w))
	if err != nil {
		t.Fatal(err)
	}
	_, err = co.Run(context.Background(), makeJobs(3))
	if err == nil || !strings.Contains(err.Error(), "rejected") {
		t.Fatalf("err = %v, want terminal rejection", err)
	}
}

func TestCoordinatorExhaustsJobAttempts(t *testing.T) {
	w1, w2 := newFakeWorker(t), newFakeWorker(t)
	broken := func(key string, seen int) *wire.JobResult {
		return &wire.JobResult{Error: "internal", Status: http.StatusInternalServerError}
	}
	w1.perJob, w2.perJob = broken, broken
	cfg := testConfig(w1, w2)
	cfg.MaxAttempts = 2
	co, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := co.Run(context.Background(), makeJobs(3)); !errors.Is(err, ErrWorkerFailed) {
		t.Fatalf("err = %v, want ErrWorkerFailed", err)
	}
}

func TestNewRejectsEmptyPool(t *testing.T) {
	if _, err := New(Config{}); !errors.Is(err, ErrNoWorkers) {
		t.Fatalf("err = %v, want ErrNoWorkers", err)
	}
	if _, err := New(Config{Endpoints: []string{"", "  "}}); !errors.Is(err, ErrNoWorkers) {
		t.Fatalf("err = %v, want ErrNoWorkers for blank endpoints", err)
	}
}

func TestCoordinatorCancellation(t *testing.T) {
	w := newFakeWorker(t)
	w.delay = time.Second
	co, err := New(testConfig(w))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := co.Run(ctx, makeJobs(4)); err == nil {
		t.Fatal("want cancellation error")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("Run held for %v past cancellation", elapsed)
	}
}

// TestCoordinatorBreakerRecoversWorker pins the circuit-breaker cycle on a
// single-worker pool: the worker drains long enough to open its breaker
// (with nowhere to fail over, its jobs park), the cooldown elapses, the
// half-open probe batch comes back clean, and the sweep finishes on the
// recovered worker. Under the old retire-forever behavior this sweep could
// only fail.
func TestCoordinatorBreakerRecoversWorker(t *testing.T) {
	w := newFakeWorker(t)
	// Every key 503s on first sight and succeeds afterwards: the first two
	// batches open the breaker, and everything after the half-open probe is
	// healthy.
	w.perJob = func(key string, seen int) *wire.JobResult {
		if seen == 1 {
			return &wire.JobResult{Error: "draining", Status: http.StatusServiceUnavailable, RetryAfterMS: 1}
		}
		return nil
	}
	cfg := testConfig(w)
	cfg.MaxAttempts = 6
	cfg.BreakerCooldown = 50 * time.Millisecond
	cfg.BreakerMaxCooldown = 200 * time.Millisecond
	co, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	jobs := makeJobs(8)
	results, err := co.Run(context.Background(), jobs)
	if err != nil {
		t.Fatalf("sweep failed despite the worker recovering: %v", err)
	}
	checkResults(t, jobs, results)
	st := co.Stats()
	if st.WorkerDeaths == 0 {
		t.Error("WorkerDeaths = 0, want >0 — the breaker never opened")
	}
	if st.BreakerCloses == 0 {
		t.Error("BreakerCloses = 0, want >0 — the breaker never closed after its probe")
	}
}

// TestCoordinatorMembershipAddsWorkerMidSweep grows the pool under a
// running sweep: the membership file starts with one slow worker, a second
// is added mid-flight, and by sweep end the newcomer must have been probed,
// admitted and handed its rendezvous share of the keys.
func TestCoordinatorMembershipAddsWorkerMidSweep(t *testing.T) {
	w1, w2 := newFakeWorker(t), newFakeWorker(t)
	w1.delay = 25 * time.Millisecond

	dir := t.TempDir()
	path := filepath.Join(dir, "members.json")
	writeMembers := func(eps ...string) {
		raw, _ := json.Marshal(wire.Membership{Workers: eps})
		tmp := path + ".tmp"
		if err := os.WriteFile(tmp, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.Rename(tmp, path); err != nil {
			t.Fatal(err)
		}
	}
	writeMembers(w1.srv.URL)

	cfg := Config{
		MembershipFile:     path,
		MembershipInterval: 10 * time.Millisecond,
		BatchSize:          2,
		InFlight:           1,
		Client:             &RetryClient{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: 10 * time.Millisecond},
	}
	co, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(80 * time.Millisecond)
		writeMembers(w1.srv.URL, w2.srv.URL)
	}()
	jobs := makeJobs(40)
	results, err := co.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	checkResults(t, jobs, results)
	if st := co.Stats(); st.WorkersJoined == 0 {
		t.Error("WorkersJoined = 0, want >0 after adding w2 to the membership file")
	}
	if len(w2.servedKeys()) == 0 {
		t.Error("joined worker served nothing — rebalance never handed it keys")
	}
}

// TestCoordinatorMembershipRemovesWorkerMidSweep shrinks the pool under a
// running sweep: a worker dropped from the membership file is retired, its
// queued keys move, and the sweep completes on the survivor.
func TestCoordinatorMembershipRemovesWorkerMidSweep(t *testing.T) {
	w1, w2 := newFakeWorker(t), newFakeWorker(t)
	w1.delay = 20 * time.Millisecond
	w2.delay = 20 * time.Millisecond

	path := filepath.Join(t.TempDir(), "members.json")
	writeMembers := func(eps ...string) {
		raw, _ := json.Marshal(wire.Membership{Workers: eps})
		tmp := path + ".tmp"
		if err := os.WriteFile(tmp, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.Rename(tmp, path); err != nil {
			t.Fatal(err)
		}
	}
	writeMembers(w1.srv.URL, w2.srv.URL)

	cfg := Config{
		MembershipFile:     path,
		MembershipInterval: 10 * time.Millisecond,
		BatchSize:          2,
		InFlight:           1,
		Client:             &RetryClient{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: 10 * time.Millisecond},
	}
	co, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(60 * time.Millisecond)
		writeMembers(w2.srv.URL)
	}()
	jobs := makeJobs(30)
	results, err := co.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	checkResults(t, jobs, results)
	if st := co.Stats(); st.WorkersRemoved == 0 {
		t.Error("WorkersRemoved = 0, want >0 after dropping w1 from the membership file")
	}
	view := co.MembershipView()
	var w1State string
	for _, row := range view.Workers {
		if row.Endpoint == w1.srv.URL {
			w1State = row.State
		}
	}
	if w1State != "dead" {
		t.Errorf("removed worker reports state %q in the membership view, want dead", w1State)
	}
}

// TestCoordinatorCellTimeoutCapsRetryWallClock pins the CellTimeout
// semantics: a cell stuck behind an endless 429 storm never exhausts its
// attempt budget (429s are free), but its wall-clock budget still burns and
// the sweep fails with ErrCellTimeout instead of spinning forever.
func TestCoordinatorCellTimeoutCapsRetryWallClock(t *testing.T) {
	w := newFakeWorker(t)
	w.perJob = func(key string, seen int) *wire.JobResult {
		return &wire.JobResult{Error: "queue full", Status: http.StatusTooManyRequests, RetryAfterMS: 5}
	}
	cfg := testConfig(w)
	cfg.MaxAttempts = 1000
	cfg.CellTimeout = 150 * time.Millisecond
	co, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = co.Run(context.Background(), makeJobs(3))
	if !errors.Is(err, ErrCellTimeout) {
		t.Fatalf("err = %v, want ErrCellTimeout", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("sweep spun for %v before timing out; the cap is 150ms", elapsed)
	}
}

// TestCoordinatorResumesFromJournal pins the resume contract: cells already
// in the journal are answered from it byte-for-byte with zero dispatches —
// even against a dead pool for a fully journaled sweep — and only the
// remainder is computed (JobsResumed + JobsCompleted covers the matrix
// exactly).
func TestCoordinatorResumesFromJournal(t *testing.T) {
	w := newFakeWorker(t)
	path := filepath.Join(t.TempDir(), "sweep.journal")
	jobs := makeJobs(12)
	keys := make([]string, len(jobs))
	for i := range jobs {
		keys[i] = jobs[i].Key
	}

	// A prior coordinator journaled the first half before crashing.
	j, err := OpenJournal(path, SweepID(keys), len(keys))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		j.Append(keys[i], okResult(keys[i]))
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	cfg := testConfig(w)
	cfg.JournalPath = path
	co, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	results, err := co.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	checkResults(t, jobs, results)
	st := co.Stats()
	if st.JobsResumed != 6 {
		t.Errorf("JobsResumed = %d, want 6", st.JobsResumed)
	}
	if st.JobsCompleted != 6 {
		t.Errorf("JobsCompleted = %d, want exactly the 6 non-journaled cells", st.JobsCompleted)
	}
	served := w.servedKeys()
	for i := 0; i < 6; i++ {
		if served[keys[i]] != 0 {
			t.Errorf("journaled cell %q was re-dispatched", keys[i])
		}
	}

	// The finished journal now covers the whole sweep: a rerun against a
	// dead pool must still produce every result without touching the
	// network.
	w.srv.Close()
	co2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	results2, err := co2.Run(context.Background(), jobs)
	if err != nil {
		t.Fatalf("fully journaled sweep failed against a dead pool: %v", err)
	}
	checkResults(t, jobs, results2)
	for i := range results {
		if string(results[i].Result) != string(results2[i].Result) {
			t.Fatalf("cell %d not byte-identical across resume", i)
		}
	}
	if st2 := co2.Stats(); st2.JobsResumed != 12 {
		t.Errorf("second run JobsResumed = %d, want 12", st2.JobsResumed)
	}
}

// TestCoordinatorTraceCoversResumedAndRetriedCells pins the sweep-trace
// completeness contract on the two paths the root end-to-end test never
// reaches: journal-resumed cells must still appear exactly once in the
// trace (as zero-length resumed spans at the sweep epoch), and a cell that
// saw a 429 must emit a "retry" instant span and flip the distinct-cell
// CellsRetried counter — which, unlike the trace, must also work with
// tracing off.
func TestCoordinatorTraceCoversResumedAndRetriedCells(t *testing.T) {
	w := newFakeWorker(t)
	// Reject the first offer of every job with a 429 so each dispatched
	// cell is requeued exactly once before succeeding.
	w.perJob = func(key string, seen int) *wire.JobResult {
		if seen == 1 {
			return &wire.JobResult{Error: "queue full", Status: http.StatusTooManyRequests, RetryAfterMS: 1}
		}
		return nil
	}

	path := filepath.Join(t.TempDir(), "sweep.journal")
	jobs := makeJobs(8)
	keys := make([]string, len(jobs))
	for i := range jobs {
		keys[i] = jobs[i].Key
	}
	// A prior coordinator journaled the first half before crashing.
	j, err := OpenJournal(path, SweepID(keys), len(keys))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		j.Append(keys[i], okResult(keys[i]))
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	cfg := testConfig(w)
	cfg.JournalPath = path
	cfg.Trace = obs.NewCollector(0)
	co, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	results, err := co.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	checkResults(t, jobs, results)

	st := co.Stats()
	if st.CellsTotal != 8 {
		t.Errorf("CellsTotal = %d, want 8 (resumed + dispatched)", st.CellsTotal)
	}
	if st.CellsRetried != 4 {
		t.Errorf("CellsRetried = %d, want the 4 dispatched cells (one 429 each)", st.CellsRetried)
	}

	cells := make(map[string]int)    // key -> "cell" span count
	resumed := make(map[string]bool) // key -> resumed arg on its cell span
	retries := make(map[string]int)  // key -> "retry" instant count
	for _, s := range cfg.Trace.Spans() {
		if s.TraceID != cfg.Trace.ID() {
			t.Fatalf("span %q carries trace ID %q, want the run's %q", s.Name, s.TraceID, cfg.Trace.ID())
		}
		args := make(map[string]any, len(s.Args))
		for _, a := range s.Args {
			args[a.Key] = a.Value
		}
		key, _ := args["key"].(string)
		switch s.Name {
		case "cell":
			cells[key]++
			r, _ := args["resumed"].(bool)
			resumed[key] = r
		case "retry":
			if !s.Instant {
				t.Errorf("retry span for %q is not an instant event", key)
			}
			retries[key]++
		}
	}
	for i, key := range keys {
		if cells[key] != 1 {
			t.Errorf("cell %q has %d cell spans, want exactly 1", key, cells[key])
		}
		wantResumed := i < 4
		if resumed[key] != wantResumed {
			t.Errorf("cell %q resumed = %v, want %v", key, resumed[key], wantResumed)
		}
		if wantResumed {
			if retries[key] != 0 {
				t.Errorf("journal-resumed cell %q has %d retry spans, want 0", key, retries[key])
			}
		} else if retries[key] != 1 {
			t.Errorf("dispatched cell %q has %d retry spans, want 1 (one 429)", key, retries[key])
		}
	}
}

func TestMetricsHandlerServesPrometheusText(t *testing.T) {
	w := newFakeWorker(t)
	co, err := New(testConfig(w))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := co.Run(context.Background(), makeJobs(5)); err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	co.MetricsHandler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	body := rec.Body.String()
	for _, want := range []string{
		"boomsim_coordinator_jobs_completed_total 5",
		"boomsim_coordinator_jobs_dispatched_total",
		"boomsim_coordinator_cache_hit_ratio",
		"boomsim_coordinator_worker_alive{worker=",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics output missing %q:\n%s", want, body)
		}
	}
}
