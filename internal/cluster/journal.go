// Sweep journal: the coordinator's write-ahead log of completed matrix
// cells. Each completed cell is appended — key, result digest, result bytes
// — and fsynced before the sweep moves on, so a coordinator that crashes or
// is redeployed mid-sweep resumes from the journal instead of restarting:
// journaled cells are never re-dispatched, and the workers' durable stores
// cover whatever completed but missed the journal.
//
// The format is JSONL with a header line naming the sweep (a digest of the
// cell keys in matrix order), so a journal can never silently resume the
// wrong sweep. Records are individually verified on load: a torn final
// record (crash mid-append) or a corrupted line fails to parse or fails its
// digest and is dropped — that cell simply recomputes. Dropped records are
// counted and reported, never trusted.
package cluster

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync"
)

// ErrJournalMismatch reports a journal whose header names a different sweep
// than the one being run; resuming it would stitch two sweeps together.
var ErrJournalMismatch = errors.New("cluster: journal belongs to a different sweep")

// SweepID content-addresses a sweep: the digest of its cell keys in matrix
// order. Identical matrices — and only identical matrices — share an ID.
func SweepID(keys []string) string {
	h := sha256.New()
	for _, k := range keys {
		h.Write([]byte(k))
		h.Write([]byte{'\n'})
	}
	return "sweep-" + hex.EncodeToString(h.Sum(nil))
}

// journalLine is one JSONL line. A header line has T=="header" and names
// the sweep; a record line carries a completed cell with the digest of its
// result bytes.
type journalLine struct {
	T     string `json:"t,omitempty"`
	Sweep string `json:"sweep,omitempty"`
	Cells int    `json:"cells,omitempty"`

	Key    string          `json:"key,omitempty"`
	Digest string          `json:"digest,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
}

// Journal is a sweep's durable progress log. Safe for use from the one
// event-loop goroutine that owns a Run; Append serialises internally so a
// future concurrent writer stays correct.
type Journal struct {
	path  string
	sweep string

	mu        sync.Mutex
	f         *os.File
	completed map[string]json.RawMessage
	dropped   int
	appendErr error
}

// OpenJournal opens (or creates) the journal at path for the sweep
// identified by sweepID over cells cells. An existing journal for the same
// sweep yields its verified completed cells through Completed; an existing
// journal for a different sweep returns ErrJournalMismatch rather than
// guessing. A journal whose header itself is unreadable (torn at creation)
// is restarted from scratch — its records cannot be attributed to a sweep.
func OpenJournal(path, sweepID string, cells int) (*Journal, error) {
	j := &Journal{path: path, sweep: sweepID, completed: make(map[string]json.RawMessage)}
	raw, err := os.ReadFile(path)
	switch {
	case err == nil && len(raw) > 0:
		ok, err := j.load(raw)
		if err != nil {
			return nil, err
		}
		if !ok {
			// Unattributable header: start fresh.
			if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
				return nil, fmt.Errorf("cluster: resetting journal %s: %w", path, err)
			}
		}
	case err != nil && !os.IsNotExist(err):
		return nil, fmt.Errorf("cluster: reading journal %s: %w", path, err)
	}

	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("cluster: opening journal %s: %w", path, err)
	}
	j.f = f
	if info, err := f.Stat(); err == nil && info.Size() == 0 {
		if err := j.writeLine(journalLine{T: "header", Sweep: sweepID, Cells: cells}); err != nil {
			f.Close()
			return nil, err
		}
	}
	return j, nil
}

// load parses an existing journal body. It returns ok=false when the header
// is unreadable (the journal restarts), ErrJournalMismatch when the header
// names another sweep, and otherwise fills completed with every record that
// parses and passes its digest check — torn or corrupt records are dropped
// and counted.
func (j *Journal) load(raw []byte) (bool, error) {
	sc := bufio.NewScanner(bytes.NewReader(raw))
	sc.Buffer(make([]byte, 1<<20), 64<<20)
	first := true
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var rec journalLine
		if err := json.Unmarshal(line, &rec); err != nil {
			if first {
				return false, nil
			}
			j.dropped++
			continue
		}
		if first {
			first = false
			if rec.T != "header" {
				return false, nil
			}
			if rec.Sweep != j.sweep {
				return true, fmt.Errorf("%w: journal %s holds %.24s…, want %.24s…",
					ErrJournalMismatch, j.path, rec.Sweep, j.sweep)
			}
			continue
		}
		sum := sha256.Sum256(rec.Result)
		if rec.Key == "" || rec.Digest != hex.EncodeToString(sum[:]) {
			j.dropped++
			continue
		}
		j.completed[rec.Key] = rec.Result
	}
	if first {
		return false, nil // nothing but blank lines
	}
	return true, nil
}

func (j *Journal) writeLine(rec journalLine) error {
	raw, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("cluster: encoding journal record: %w", err)
	}
	raw = append(raw, '\n')
	if _, err := j.f.Write(raw); err != nil {
		return fmt.Errorf("cluster: appending to journal %s: %w", j.path, err)
	}
	// The fsync is the durability boundary: a record is only "journaled"
	// once it survives power loss. Sweeps are seconds-per-cell, so one
	// fsync per completed cell is noise.
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("cluster: syncing journal %s: %w", j.path, err)
	}
	return nil
}

// Append durably records one completed cell. Append failures do not fail
// the sweep — they cost resumability, not correctness — but the first one
// is retained for Err so callers can surface it.
func (j *Journal) Append(key string, result json.RawMessage) {
	// Digest the bytes as they will live in the file, not as they arrived:
	// embedding a RawMessage in the record line re-encodes it (compaction,
	// HTML escaping), and the load-time check hashes the file's bytes. One
	// explicit Marshal applies the identical (idempotent) normalisation.
	norm, err := json.Marshal(result)
	j.mu.Lock()
	defer j.mu.Unlock()
	if err != nil {
		if j.appendErr == nil {
			j.appendErr = fmt.Errorf("cluster: journaling %s: %w", key, err)
		}
		return
	}
	sum := sha256.Sum256(norm)
	err = j.writeLine(journalLine{Key: key, Digest: hex.EncodeToString(sum[:]), Result: norm})
	if err != nil && j.appendErr == nil {
		j.appendErr = err
	}
	if err == nil {
		j.completed[key] = norm
	}
}

// Lookup returns the journaled result for key, if any.
func (j *Journal) Lookup(key string) (json.RawMessage, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	raw, ok := j.completed[key]
	return raw, ok
}

// Len reports how many verified completed cells the journal holds.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.completed)
}

// Dropped reports how many torn or corrupt records were discarded on load.
func (j *Journal) Dropped() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.dropped
}

// Err returns the first append failure, if any.
func (j *Journal) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.appendErr
}

// Close releases the journal's file handle. The file stays on disk — it is
// the resume artifact.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}
