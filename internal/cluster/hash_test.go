package cluster

import (
	"fmt"
	"testing"
)

func endpointsN(n int) []string {
	eps := make([]string, n)
	for i := range eps {
		eps[i] = fmt.Sprintf("http://worker-%d:8080", i)
	}
	return eps
}

func TestRendezvousOwnerIsStableAndBalanced(t *testing.T) {
	eps := endpointsN(4)
	counts := make(map[string]int)
	for i := 0; i < 4000; i++ {
		key := fmt.Sprintf("scheme=%d|workload=%d", i%20, i)
		a := rendezvousOwner(key, eps)
		b := rendezvousOwner(key, []string{eps[2], eps[0], eps[3], eps[1]})
		if a != b {
			t.Fatalf("owner depends on slice order: %q vs %q for %q", a, b, key)
		}
		counts[a]++
	}
	for _, ep := range eps {
		if counts[ep] < 4000/4/3 {
			t.Errorf("worker %s owns only %d/4000 keys — distribution badly skewed: %v", ep, counts[ep], counts)
		}
	}
}

func TestRendezvousRankLeadsWithOwner(t *testing.T) {
	eps := endpointsN(5)
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("key-%d", i)
		rank := rendezvousRank(key, eps)
		if len(rank) != len(eps) {
			t.Fatalf("rank has %d entries, want %d", len(rank), len(eps))
		}
		if rank[0] != rendezvousOwner(key, eps) {
			t.Fatalf("rank[0]=%q, owner=%q for %q", rank[0], rendezvousOwner(key, eps), key)
		}
		seen := make(map[string]bool)
		for _, ep := range rank {
			if seen[ep] {
				t.Fatalf("rank repeats %q for %q", ep, key)
			}
			seen[ep] = true
		}
		// Losing the owner promotes exactly rank[1]: the failover order is
		// the rank order.
		var rest []string
		for _, ep := range eps {
			if ep != rank[0] {
				rest = append(rest, ep)
			}
		}
		if got := rendezvousOwner(key, rest); got != rank[1] {
			t.Fatalf("owner after losing rank[0] is %q, want rank[1]=%q", got, rank[1])
		}
	}
}

// FuzzRendezvous pins the two properties the distributed fabric leans on:
// every key maps to exactly one worker of the live set, and removing a
// worker moves only the keys that worker owned — every other key keeps its
// owner, so worker loss cannot thrash the surviving workers' caches.
func FuzzRendezvous(f *testing.F) {
	f.Add("scheme=\"Boomerang\"|workload=\"Apache\"", uint8(3), uint8(1))
	f.Add("", uint8(1), uint8(0))
	f.Add("k", uint8(16), uint8(15))
	f.Add("some|longer|key|with|fields=7", uint8(7), uint8(3))
	f.Fuzz(func(t *testing.T, key string, n, dead uint8) {
		nWorkers := int(n%16) + 1
		eps := endpointsN(nWorkers)
		owner := rendezvousOwner(key, eps)

		// Exactly one owner, in the set, deterministically.
		found := false
		for _, ep := range eps {
			if ep == owner {
				found = true
			}
		}
		if !found {
			t.Fatalf("owner %q not in worker set %v", owner, eps)
		}
		if again := rendezvousOwner(key, eps); again != owner {
			t.Fatalf("non-deterministic owner: %q then %q", owner, again)
		}

		// Remove one worker.
		removed := eps[int(dead)%nWorkers]
		var rest []string
		for _, ep := range eps {
			if ep != removed {
				rest = append(rest, ep)
			}
		}
		if len(rest) == 0 {
			return
		}
		newOwner := rendezvousOwner(key, rest)
		if removed == owner {
			// The dead worker's keys must land on a surviving worker.
			ok := false
			for _, ep := range rest {
				if ep == newOwner {
					ok = true
				}
			}
			if !ok {
				t.Fatalf("reassigned owner %q not in surviving set %v", newOwner, rest)
			}
		} else if newOwner != owner {
			// Keys not owned by the dead worker must not move.
			t.Fatalf("key %q moved from %q to %q when unrelated worker %q died",
				key, owner, newOwner, removed)
		}
	})
}
