package cluster

import "hash/fnv"

// Rendezvous (highest-random-weight) hashing routes every job key to one
// worker endpoint so each worker's content-addressed result cache stays hot
// across sweeps, and so losing a worker redistributes only the keys that
// worker owned — every other key's score ordering is untouched, which is
// exactly the property consistent routing needs and the fuzz test pins.
//
// Scores depend only on the (endpoint, key) pair, never on the candidate
// set, and ties break toward the lexicographically smaller endpoint, so
// ownership is a pure function of the key and the *set* of live endpoints —
// slice order, dead entries and coordinator restarts cannot move a job.

// rendezvousScore is FNV-1a over endpoint NUL key, pushed through a
// murmur3 finalizer. The finalizer matters: raw FNV has poor avalanche, so
// similar keys after a long shared endpoint prefix produce scores whose
// ordering across endpoints barely changes and one worker wins everything;
// fmix64 spreads those low-order differences across the whole word and the
// ownership distribution becomes ~uniform.
func rendezvousScore(endpoint, key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(endpoint))
	h.Write([]byte{0})
	h.Write([]byte(key))
	return fmix64(h.Sum64())
}

// fmix64 is MurmurHash3's 64-bit finalizer: full avalanche in three
// multiply-xorshift rounds.
func fmix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// rendezvousOwner returns the owning endpoint for key among endpoints, or
// "" when endpoints is empty.
func rendezvousOwner(key string, endpoints []string) string {
	best, bestScore := "", uint64(0)
	for _, ep := range endpoints {
		s := rendezvousScore(ep, key)
		if best == "" || s > bestScore || (s == bestScore && ep < best) {
			best, bestScore = ep, s
		}
	}
	return best
}

// rendezvousRank returns endpoints ordered by descending preference for
// key: rank 0 is the owner, rank 1 the worker that inherits the key if the
// owner dies, and so on. Used to pick hedge targets that will own the key's
// cache line should the straggling owner be lost.
func rendezvousRank(key string, endpoints []string) []string {
	ranked := make([]string, len(endpoints))
	copy(ranked, endpoints)
	scores := make(map[string]uint64, len(ranked))
	for _, ep := range ranked {
		scores[ep] = rendezvousScore(ep, key)
	}
	// Insertion sort: worker sets are small (a handful of endpoints).
	for i := 1; i < len(ranked); i++ {
		for j := i; j > 0; j-- {
			a, b := ranked[j-1], ranked[j]
			if scores[b] > scores[a] || (scores[b] == scores[a] && b < a) {
				ranked[j-1], ranked[j] = b, a
			} else {
				break
			}
		}
	}
	return ranked
}
