// Package cluster shards simulation matrices across a pool of boomsimd
// workers: the horizontal scale-out layer over the single-node service.
//
// The coordinator expands a matrix into per-cell jobs identified by their
// configuration Key and routes each job to a worker by rendezvous hashing
// on that Key, so every worker's content-addressed result cache stays hot
// and a repeated sweep collapses to cache hits instead of re-simulating.
// Dispatch is an event loop with explicit backpressure: at most InFlight
// batches per worker, per-job 429/503 responses (and their Retry-After
// hints) cool the worker down, transport failures re-dispatch the affected
// jobs with a capped attempt budget, stragglers can be hedged to the key's
// next-preferred worker, and results reassemble in matrix order regardless
// of completion order, so a distributed sweep is byte-identical to a local
// RunMatrix.
//
// Failure handling is built for pools that change under the sweep:
//
//   - Each worker has a circuit breaker. Repeated failures open it (the
//     worker is "dead", its keys move — the rendezvous property), an
//     elapsed cooldown half-opens it ("suspect", one probe batch), and a
//     clean batch closes it again. A worker restarting on the same address
//     rejoins the sweep without operator action.
//   - The pool itself is dynamic: with a membership file configured, the
//     coordinator re-reads it during the sweep, probing and admitting new
//     workers and retiring removed ones mid-flight.
//   - With a journal configured, every completed cell is durably logged;
//     re-running the same sweep against the same journal re-dispatches
//     only the cells that never completed, so a crashed coordinator
//     resumes instead of restarting.
//
// The package deliberately speaks only internal/wire and the standard
// library: the public boomsim package builds on it, so it cannot import
// boomsim, and the API-boundary test pins it to the wire vocabulary.
package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"boomsim/internal/obs"
	"boomsim/internal/wire"
)

// Sentinel errors; the public boomsim package wraps them into its own
// typed errors.
var (
	// ErrNoWorkers reports an empty or fully-dead worker pool.
	ErrNoWorkers = errors.New("cluster: no live workers")
	// ErrWorkerFailed reports a job that exhausted its dispatch attempts.
	ErrWorkerFailed = errors.New("cluster: worker failed")
	// ErrCellTimeout reports a job that exhausted its retry wall-clock
	// budget: attempts were still available, but CellTimeout elapsed since
	// the cell's first dispatch.
	ErrCellTimeout = errors.New("cluster: cell exceeded its retry wall-clock budget")
)

// Config sizes a Coordinator. Endpoints or MembershipFile is required;
// everything else defaults sensibly.
type Config struct {
	// Endpoints lists worker base URLs (http://host:port). Duplicates and
	// trailing slashes are normalised away.
	Endpoints []string
	// MembershipFile, when set, names a JSON file (wire.Membership) that is
	// the authoritative worker list: it is read at sweep start and
	// re-read every MembershipInterval during the sweep, so the pool can
	// grow and shrink mid-flight. New workers are health-probed before they
	// receive jobs; removed workers are retired and only their keys move.
	// While the file is unreadable the last good view stays in effect, and
	// Endpoints serves as the bootstrap pool.
	MembershipFile string
	// MembershipInterval is the re-read cadence for MembershipFile
	// (default 1s).
	MembershipInterval time.Duration
	// JournalPath, when set, names this sweep's write-ahead log: every
	// completed cell is appended durably, and a rerun of the same matrix
	// against the same journal dispatches only the unfinished cells.
	// A journal recorded for a different matrix is refused
	// (ErrJournalMismatch).
	JournalPath string
	// InFlight bounds concurrently outstanding batches per worker
	// (default 2) — the coordinator-side half of backpressure.
	InFlight int
	// BatchSize bounds jobs per /v1/jobs request (default 4).
	BatchSize int
	// MaxAttempts bounds dispatch attempts per job before the sweep fails
	// with ErrWorkerFailed (default 4).
	MaxAttempts int
	// DeadAfter is the consecutive-failure threshold that opens a worker's
	// circuit breaker: its keys redistribute and it is left alone until
	// BreakerCooldown elapses (default 2).
	DeadAfter int
	// BreakerCooldown is how long an opened breaker rests before
	// half-opening for a single probe batch (default 1s). Each re-open
	// doubles the rest, capped at BreakerMaxCooldown.
	BreakerCooldown time.Duration
	// BreakerMaxCooldown caps the exponential breaker cooldown
	// (default 30s).
	BreakerMaxCooldown time.Duration
	// CellTimeout caps the wall-clock a single cell may spend being
	// retried, measured from its first dispatch; exceeding it fails the
	// sweep with ErrCellTimeout (0 = no cap). MaxAttempts bounds how many
	// times a cell is tried; CellTimeout bounds how long.
	CellTimeout time.Duration
	// HedgeAfter duplicates a batch's unfinished jobs onto each key's
	// next-preferred worker once the batch has been in flight this long
	// (0 = hedging disabled).
	HedgeAfter time.Duration
	// JobTimeoutMS is forwarded as each batch's server-side deadline hint
	// (0 = the worker's own cap).
	JobTimeoutMS int64
	// RequestTimeout caps one batch's total transport time, retries
	// included (default 5m). A worker that accepts connections but never
	// answers burns this budget, strikes out, and its keys move on.
	RequestTimeout time.Duration
	// ProbeTimeout bounds the per-worker /healthz probe at sweep start and
	// on membership joins (default 2s; negative disables probing).
	ProbeTimeout time.Duration
	// Client is the transport (default a zero RetryClient: 3 attempts,
	// 100ms base backoff, Retry-After honored).
	Client *RetryClient
	// Logger receives structured lifecycle events — sweep start/end,
	// journal resume summaries, breaker transitions, membership changes,
	// hedges — at slog levels (nil = discard). The event loop logs
	// synchronously; handlers should be fast.
	Logger *slog.Logger
	// Trace, when set, collects per-cell spans (queue wait, dispatch, sim
	// time, retries, hedges) for the sweep. TraceID overrides the span
	// trace ID and is propagated in every batch request so worker logs
	// correlate; empty uses the collector's own ID.
	Trace   *obs.Collector
	TraceID string
}

func (c Config) withDefaults() Config {
	if c.InFlight <= 0 {
		c.InFlight = 2
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 4
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 4
	}
	if c.DeadAfter <= 0 {
		c.DeadAfter = 2
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = time.Second
	}
	if c.BreakerMaxCooldown <= 0 {
		c.BreakerMaxCooldown = 30 * time.Second
	}
	if c.MembershipInterval <= 0 {
		c.MembershipInterval = time.Second
	}
	if c.ProbeTimeout == 0 {
		c.ProbeTimeout = 2 * time.Second
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 5 * time.Minute
	}
	if c.Client == nil {
		c.Client = &RetryClient{}
	}
	if c.Logger == nil {
		c.Logger = obs.Nop()
	}
	if c.Trace != nil {
		if c.TraceID != "" {
			c.Trace.SetTraceID(c.TraceID)
		} else {
			c.TraceID = c.Trace.ID()
		}
	}
	return c
}

// Job is one matrix cell: the configuration Key it is cached under (the
// routing identity) and its wire request.
type Job struct {
	Key string
	Req wire.RunRequest
}

// JobResult is one completed cell: the raw result JSON and whether the
// worker answered it from cache (journal-resumed cells count as cached —
// they were not recomputed).
type JobResult struct {
	Cached bool
	Result json.RawMessage
}

// Coordinator shards jobs across the configured workers. It is safe for
// sequential reuse across sweeps (worker liveness is re-probed per Run) and
// its Stats/MetricsHandler may be read concurrently with a running sweep.
type Coordinator struct {
	cfg Config
	m   *metrics

	// runMu serialises Run: the event loop owns per-run state exclusively.
	runMu sync.Mutex
}

// normalizeEndpoints trims, deduplicates and strips trailing slashes.
func normalizeEndpoints(raw []string) []string {
	var endpoints []string
	seen := make(map[string]bool)
	for _, ep := range raw {
		ep = strings.TrimRight(strings.TrimSpace(ep), "/")
		if ep == "" || seen[ep] {
			continue
		}
		seen[ep] = true
		endpoints = append(endpoints, ep)
	}
	return endpoints
}

// readMembershipFile parses a wire.Membership document.
func readMembershipFile(path string) ([]string, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m wire.Membership
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("cluster: parsing membership file %s: %w", path, err)
	}
	return normalizeEndpoints(m.Workers), nil
}

// New validates cfg and builds a Coordinator.
func New(cfg Config) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	cfg.Endpoints = normalizeEndpoints(cfg.Endpoints)
	if len(cfg.Endpoints) == 0 && cfg.MembershipFile == "" {
		return nil, ErrNoWorkers
	}
	endpoints := cfg.Endpoints
	if cfg.MembershipFile != "" {
		if fromFile, err := readMembershipFile(cfg.MembershipFile); err == nil && len(fromFile) > 0 {
			endpoints = fromFile
		}
	}
	if len(endpoints) == 0 {
		return nil, fmt.Errorf("%w: no endpoints configured and membership file %s lists none",
			ErrNoWorkers, cfg.MembershipFile)
	}
	return &Coordinator{cfg: cfg, m: newMetrics(endpoints)}, nil
}

// Stats snapshots the coordinator counters; safe during a running sweep.
func (c *Coordinator) Stats() Stats { return c.m.snapshot() }

// MetricsHandler serves the counters in Prometheus text format.
func (c *Coordinator) MetricsHandler() http.Handler { return http.HandlerFunc(c.m.serveHTTP) }

// MembershipView reports the coordinator's live opinion of its pool: one
// row per worker it has ever tracked with its current circuit state. Safe
// during a running sweep.
func (c *Coordinator) MembershipView() wire.MembershipView {
	return c.m.membershipView()
}

// Worker circuit-breaker states. live: breaker closed, full dispatch.
// suspect: breaker half-open, one probe batch at a time. dead: breaker
// open, no dispatch until reopenAt. removed: retired for the run (failed
// the start-of-sweep probe, or dropped from the membership file) — only a
// membership re-add revives it.
const (
	wsLive int32 = iota
	wsSuspect
	wsDead
	wsRemoved
)

func stateName(s int32) string {
	switch s {
	case wsLive:
		return "live"
	case wsSuspect:
		return "suspect"
	case wsDead:
		return "dead"
	default:
		return "removed"
	}
}

// workerState is one endpoint's per-run dispatch state, owned by the event
// loop goroutine.
type workerState struct {
	endpoint      string
	metrics       *workerMetrics
	state         int32
	reopenAt      time.Time // when an open breaker half-opens
	trips         int       // breaker opens this run; drives exponential cooldown
	inflight      int       // outstanding batches
	queue         []int     // job indices awaiting dispatch
	consecFails   int
	cooldownUntil time.Time
}

// routable reports whether the worker may be offered work (and therefore
// participates in rendezvous hashing).
func (w *workerState) routable() bool { return w.state == wsLive || w.state == wsSuspect }

func (w *workerState) setState(s int32) {
	w.state = s
	w.metrics.state.Store(s)
}

type batch struct {
	id      int
	worker  *workerState
	jobs    []int
	started time.Time
	hedged  bool
}

type batchEvent struct {
	batch *batch
	resp  *wire.JobsResponse
	err   error
}

// joinEvent is an async membership-probe verdict for a candidate endpoint.
type joinEvent struct {
	endpoint string
	ok       bool
}

// runState is one sweep's bookkeeping; every field is owned by the Run
// goroutine, with launched batches and membership probes communicating back
// over channels.
type runState struct {
	cfg     Config
	m       *metrics
	ctx     context.Context
	jobs    []Job
	results []JobResult
	done    []bool
	fails   []int // failed dispatch attempts per job
	// firstTry is each job's first dispatch instant: the epoch its
	// CellTimeout budget is measured from.
	firstTry []time.Time
	hedgedJ  []bool
	// tries counts dispatches per job (attempts, hedges included);
	// retriedJ marks jobs that needed at least one re-dispatch.
	tries    []int
	retriedJ []bool
	// queuedAt is the sweep's dispatch epoch: every cell's queue-wait span
	// is measured from it.
	queuedAt time.Time
	workers  []*workerState
	byEP     map[string]*workerState
	// parked holds jobs with no routable owner right now but a reason to
	// hope: an open breaker that will half-open, or a membership file that
	// may add workers. They re-place as soon as the pool has anyone.
	parked  []int
	probing map[string]bool // membership candidates with a probe in flight
	journal *Journal

	remaining int
	inflight  map[int]*batch
	nextID    int
	events    chan batchEvent
	joins     chan joinEvent
}

// Run dispatches jobs across the pool and returns their results in input
// order. On failure every in-flight request is canceled before returning.
func (c *Coordinator) Run(ctx context.Context, jobs []Job) ([]JobResult, error) {
	c.runMu.Lock()
	defer c.runMu.Unlock()
	if len(jobs) == 0 {
		return nil, nil
	}
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	endpoints := c.cfg.Endpoints
	if c.cfg.MembershipFile != "" {
		if fromFile, err := readMembershipFile(c.cfg.MembershipFile); err == nil && len(fromFile) > 0 {
			endpoints = fromFile
		}
	}
	if len(endpoints) == 0 {
		return nil, fmt.Errorf("%w: membership file %s lists no workers", ErrNoWorkers, c.cfg.MembershipFile)
	}

	st := &runState{
		cfg:       c.cfg,
		m:         c.m,
		ctx:       runCtx,
		jobs:      jobs,
		results:   make([]JobResult, len(jobs)),
		done:      make([]bool, len(jobs)),
		fails:     make([]int, len(jobs)),
		firstTry:  make([]time.Time, len(jobs)),
		hedgedJ:   make([]bool, len(jobs)),
		tries:     make([]int, len(jobs)),
		retriedJ:  make([]bool, len(jobs)),
		queuedAt:  time.Now(),
		byEP:      make(map[string]*workerState, len(endpoints)),
		probing:   make(map[string]bool),
		remaining: len(jobs),
		inflight:  make(map[int]*batch),
		events:    make(chan batchEvent, len(endpoints)*c.cfg.InFlight+8),
		joins:     make(chan joinEvent, 8),
	}
	log := c.cfg.Logger
	log.Info("cluster: sweep starting",
		"jobs", len(jobs), "workers", len(endpoints), "trace_id", c.cfg.TraceID)
	for _, ep := range endpoints {
		w := &workerState{endpoint: ep, metrics: c.m.worker(ep)}
		w.setState(wsLive)
		st.workers = append(st.workers, w)
		st.byEP[ep] = w
	}

	// Restore journaled progress before touching the network: a fully
	// journaled sweep completes even against a dead pool.
	if c.cfg.JournalPath != "" {
		keys := make([]string, len(jobs))
		for i := range jobs {
			keys[i] = jobs[i].Key
		}
		j, err := OpenJournal(c.cfg.JournalPath, SweepID(keys), len(jobs))
		if err != nil {
			return nil, err
		}
		st.journal = j
		defer j.Close()
		resumed := 0
		for i := range jobs {
			if st.done[i] {
				continue
			}
			if raw, ok := j.Lookup(jobs[i].Key); ok {
				st.done[i] = true
				st.remaining--
				st.results[i] = JobResult{Cached: true, Result: raw}
				st.m.jobsResumed.Add(1)
				resumed++
				st.cellSpan(i, nil, wire.JobResult{Cached: true}, true)
			}
		}
		log.Info("cluster: journal resume",
			"journal", c.cfg.JournalPath, "journaled", resumed,
			"recomputing", st.remaining, "total", len(jobs))
		if st.remaining == 0 {
			return st.results, nil
		}
	}

	if err := st.probe(runCtx); err != nil {
		return nil, err
	}
	for i := range jobs {
		if st.done[i] {
			continue
		}
		if err := st.placeJob(i); err != nil {
			return nil, err
		}
	}

	timer := time.NewTimer(time.Hour)
	timer.Stop()
	defer timer.Stop()
	var memberC <-chan time.Time
	if c.cfg.MembershipFile != "" {
		ticker := time.NewTicker(c.cfg.MembershipInterval)
		defer ticker.Stop()
		memberC = ticker.C
	}
	for st.remaining > 0 {
		st.schedule()
		if err := st.checkParked(); err != nil {
			return nil, err
		}
		var timerC <-chan time.Time
		if wake, ok := st.nextWake(); ok {
			d := time.Until(wake)
			if d < time.Millisecond {
				d = time.Millisecond
			}
			timer.Reset(d)
			timerC = timer.C
		} else {
			timer.Stop()
		}
		select {
		case ev := <-st.events:
			if err := st.handle(ev); err != nil {
				return nil, err
			}
		case jev := <-st.joins:
			if err := st.handleJoin(jev); err != nil {
				return nil, err
			}
		case <-memberC:
			st.reconcileMembership()
		case <-timerC:
			st.hedgeScan()
		case <-runCtx.Done():
			return nil, fmt.Errorf("cluster: sweep canceled: %w", runCtx.Err())
		}
	}
	if st.journal != nil {
		if err := st.journal.Err(); err != nil {
			// The sweep's results are complete and correct; a journal that
			// stopped persisting costs only resumability. Surface it without
			// failing the sweep.
			st.m.journalErrors.Add(1)
			log.Warn("cluster: journal stopped persisting", "journal", c.cfg.JournalPath, "err", err)
		}
	}
	log.Info("cluster: sweep complete",
		"jobs", len(jobs), "elapsed", time.Since(st.queuedAt).Round(time.Millisecond),
		"trace_id", c.cfg.TraceID)
	return st.results, nil
}

// cellSpan settles one cell's observability: its timing joins the
// slowest-cells leaderboard, and — when the sweep is traced — its spans
// (whole-cell plus queue/dispatch/sim phases) are recorded under the cell's
// matrix index as the trace row. Resumed cells record a zero-length span at
// the sweep epoch so every cell appears in the trace exactly once.
func (st *runState) cellSpan(j int, b *batch, jr wire.JobResult, resumed bool) {
	now := time.Now()
	key := st.jobs[j].Key
	worker := ""
	if b != nil {
		worker = b.worker.endpoint
	}
	if !resumed && !st.firstTry[j].IsZero() {
		st.m.observeCell(key, worker, float64(now.Sub(st.firstTry[j]))/1e6)
	}
	tr := st.cfg.Trace
	if tr == nil {
		return
	}
	short := key
	if len(short) > 12 {
		short = short[:12]
	}
	tr.SetThreadName(j, fmt.Sprintf("cell %d %s", j, short))
	if resumed {
		tr.Add(obs.Span{Name: "cell", Cat: "sweep", Start: st.queuedAt, TID: j, Args: []obs.Arg{
			{Key: "key", Value: key},
			{Key: "resumed", Value: true},
			{Key: "cached", Value: true},
		}})
		return
	}
	first := st.firstTry[j]
	tr.Add(obs.Span{Name: "cell", Cat: "sweep", Start: st.queuedAt, Dur: now.Sub(st.queuedAt), TID: j, Args: []obs.Arg{
		{Key: "key", Value: key},
		{Key: "worker", Value: worker},
		{Key: "attempts", Value: st.tries[j]},
		{Key: "retried", Value: st.retriedJ[j]},
		{Key: "hedged", Value: st.hedgedJ[j]},
		{Key: "cached", Value: jr.Cached},
		{Key: "warm", Value: jr.Warm},
	}})
	tr.Add(obs.Span{Name: "queue", Cat: "phase", Start: st.queuedAt, Dur: first.Sub(st.queuedAt), TID: j,
		Args: []obs.Arg{{Key: "key", Value: key}}})
	tr.Add(obs.Span{Name: "dispatch", Cat: "phase", Start: first, Dur: now.Sub(first), TID: j,
		Args: []obs.Arg{{Key: "key", Value: key}, {Key: "worker", Value: worker}}})
	if jr.SimNanos > 0 {
		d := time.Duration(jr.SimNanos)
		tr.Add(obs.Span{Name: "sim", Cat: "phase", Start: now.Add(-d), Dur: d, TID: j,
			Args: []obs.Arg{{Key: "key", Value: key}, {Key: "warm", Value: jr.Warm}}})
	}
}

// healthProbe checks one endpoint's /healthz within timeout.
func healthProbe(ctx context.Context, httpc *http.Client, endpoint string, timeout time.Duration) bool {
	pctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, endpoint+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := httpc.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// probe checks every worker's /healthz concurrently; unreachable workers
// start the sweep retired so their keys route elsewhere from the first
// batch. (A membership re-add can still revive them mid-sweep.)
func (st *runState) probe(ctx context.Context) error {
	if st.cfg.ProbeTimeout < 0 {
		return nil
	}
	httpc := st.cfg.Client.httpClient()
	failed := make([]bool, len(st.workers))
	var wg sync.WaitGroup
	for i, w := range st.workers {
		wg.Add(1)
		go func(i int, w *workerState) {
			defer wg.Done()
			failed[i] = !healthProbe(ctx, httpc, w.endpoint, st.cfg.ProbeTimeout)
		}(i, w)
	}
	wg.Wait()
	alive := 0
	for i, w := range st.workers {
		if failed[i] {
			w.setState(wsRemoved)
			st.m.probeFailures.Add(1)
		} else {
			alive++
		}
	}
	if alive == 0 {
		return fmt.Errorf("%w: all %d health probes failed", ErrNoWorkers, len(st.workers))
	}
	return nil
}

// routableEndpoints materialises the current routable set for the hash
// functions.
func (st *runState) routableEndpoints() []string {
	eps := make([]string, 0, len(st.workers))
	for _, w := range st.workers {
		if w.routable() {
			eps = append(eps, w.endpoint)
		}
	}
	return eps
}

// ownerOf returns the routable rendezvous owner of key, or nil when no
// worker can take work right now.
func (st *runState) ownerOf(key string) *workerState {
	ep := rendezvousOwner(key, st.routableEndpoints())
	if ep == "" {
		return nil
	}
	return st.byEP[ep]
}

// placeJob routes job j to its rendezvous owner, or parks it when no worker
// is routable but the pool can still recover (a breaker due to half-open,
// or dynamic membership). Only a pool with no path back to life fails the
// sweep.
func (st *runState) placeJob(j int) error {
	if w := st.ownerOf(st.jobs[j].Key); w != nil {
		w.queue = append(w.queue, j)
		return nil
	}
	if st.canRecover() {
		st.parked = append(st.parked, j)
		return nil
	}
	return fmt.Errorf("%w: while placing job %q", ErrNoWorkers, st.jobs[j].Key)
}

// canRecover reports whether an empty routable set might still repopulate:
// an open breaker will half-open, and a membership file can add workers.
func (st *runState) canRecover() bool {
	if st.cfg.MembershipFile != "" {
		return true
	}
	for _, w := range st.workers {
		if w.state == wsDead {
			return true
		}
	}
	return false
}

// schedule advances breaker state and launches as many batches as capacity
// allows: per routable, non-cooling worker, pop up to BatchSize pending
// jobs per free in-flight slot (a half-open worker gets a single probe
// batch). Jobs completed elsewhere in the meantime (hedge duplicates) are
// discarded at pop time.
func (st *runState) schedule() {
	now := time.Now()
	for _, w := range st.workers {
		if w.state == wsDead && !now.Before(w.reopenAt) {
			w.setState(wsSuspect)
		}
	}
	if len(st.parked) > 0 {
		parked := st.parked
		st.parked = nil
		for _, j := range parked {
			if st.done[j] {
				continue
			}
			// placeJob re-parks when the pool is still empty; the error arm
			// is unreachable while parked jobs exist (parking implies
			// recoverability), so jobs are never dropped here.
			if st.placeJob(j) != nil {
				st.parked = append(st.parked, j)
			}
		}
	}
	for _, w := range st.workers {
		if !w.routable() || now.Before(w.cooldownUntil) {
			continue
		}
		limit := st.cfg.InFlight
		if w.state == wsSuspect {
			// Half-open: risk one batch, not the full in-flight budget.
			limit = 1
		}
		for w.inflight < limit && len(w.queue) > 0 {
			var idxs []int
			for len(idxs) < st.cfg.BatchSize && len(w.queue) > 0 {
				j := w.queue[0]
				w.queue = w.queue[1:]
				if st.done[j] {
					continue
				}
				idxs = append(idxs, j)
			}
			if len(idxs) == 0 {
				break
			}
			st.launch(w, idxs)
		}
	}
}

// checkParked fails the sweep when a parked job's CellTimeout budget burns
// out while it waits for the pool to recover.
func (st *runState) checkParked() error {
	if st.cfg.CellTimeout <= 0 {
		return nil
	}
	now := time.Now()
	for _, j := range st.parked {
		if st.done[j] || st.firstTry[j].IsZero() {
			continue
		}
		if now.Sub(st.firstTry[j]) >= st.cfg.CellTimeout {
			return fmt.Errorf("%w: job %q waited out its %v budget with no routable worker",
				ErrCellTimeout, st.jobs[j].Key, st.cfg.CellTimeout)
		}
	}
	return nil
}

func (st *runState) launch(w *workerState, idxs []int) {
	b := &batch{id: st.nextID, worker: w, jobs: idxs, started: time.Now()}
	st.nextID++
	st.inflight[b.id] = b
	w.inflight++
	st.m.batchesDispatched.Add(1)
	st.m.jobsDispatched.Add(uint64(len(idxs)))
	w.metrics.requests.Add(1)

	reqs := make([]wire.RunRequest, len(idxs))
	for k, j := range idxs {
		reqs[k] = st.jobs[j].Req
		st.tries[j]++
		if st.firstTry[j].IsZero() {
			st.firstTry[j] = b.started
		}
	}
	body, err := json.Marshal(wire.JobsRequest{Jobs: reqs, TimeoutMS: st.cfg.JobTimeoutMS,
		TraceID: st.cfg.TraceID})
	if err != nil {
		// Unreachable for wire types; fail through the event path so the
		// loop's accounting stays consistent.
		go st.send(batchEvent{batch: b, err: err})
		return
	}
	client, url := st.cfg.Client, w.endpoint+"/v1/jobs"
	ctx, cancel := context.WithTimeout(st.ctx, st.cfg.RequestTimeout)
	go func() {
		defer cancel()
		raw, err := client.PostJSON(ctx, url, body)
		ev := batchEvent{batch: b, err: err}
		if err == nil {
			var resp wire.JobsResponse
			if uerr := json.Unmarshal(raw, &resp); uerr != nil {
				ev.err = fmt.Errorf("decoding %s response: %w", url, uerr)
			} else {
				ev.resp = &resp
			}
		}
		st.send(ev)
	}()
}

func (st *runState) send(ev batchEvent) {
	select {
	case st.events <- ev:
	case <-st.ctx.Done():
	}
}

func (st *runState) sendJoin(ev joinEvent) {
	select {
	case st.joins <- ev:
	case <-st.ctx.Done():
	}
}

// handle settles one batch: record results, and requeue, cool down, trip or
// close breakers on the way. A non-nil return aborts the sweep.
func (st *runState) handle(ev batchEvent) error {
	b := ev.batch
	delete(st.inflight, b.id)
	w := b.worker
	w.inflight--
	w.metrics.latencyNanos.Add(uint64(time.Since(b.started)))

	if ev.err != nil {
		w.metrics.failures.Add(1)
		return st.handleBatchFailure(b, ev.err)
	}
	if len(ev.resp.Jobs) != len(b.jobs) {
		w.metrics.failures.Add(1)
		return st.handleBatchFailure(b, fmt.Errorf(
			"worker %s returned %d results for %d jobs", w.endpoint, len(ev.resp.Jobs), len(b.jobs)))
	}

	sawDraining := false
	for k, jr := range ev.resp.Jobs {
		j := b.jobs[k]
		if jr.Error == "" {
			if !st.done[j] {
				st.done[j] = true
				st.remaining--
				st.results[j] = JobResult{Cached: jr.Cached, Result: jr.Result}
				st.m.jobsCompleted.Add(1)
				w.metrics.jobs.Add(1)
				if jr.Cached {
					st.m.cacheHits.Add(1)
				}
				if st.journal != nil {
					st.journal.Append(st.jobs[j].Key, jr.Result)
				}
				st.cellSpan(j, b, jr, false)
				st.cfg.Logger.Debug("cluster: job completed",
					"key", st.jobs[j].Key, "worker", w.endpoint,
					"cached", jr.Cached, "warm", jr.Warm,
					"sim_ms", time.Duration(jr.SimNanos).Milliseconds(),
					"attempts", st.tries[j])
			}
			continue
		}
		if st.done[j] {
			continue
		}
		if !jr.Retryable() {
			return fmt.Errorf("cluster: worker %s rejected job %q: %s (http %d)",
				w.endpoint, st.jobs[j].Key, jr.Error, jr.Status)
		}
		if jr.Status == http.StatusServiceUnavailable {
			sawDraining = true
		}
		// Cool the worker down for the server's hinted interval — the
		// in-band Retry-After — before offering it more work.
		cool := time.Duration(jr.RetryAfterMS) * time.Millisecond
		if cool <= 0 {
			cool = 200 * time.Millisecond
		}
		if until := time.Now().Add(cool); until.After(w.cooldownUntil) {
			w.cooldownUntil = until
		}
		// A 429 is a healthy worker saying "not yet": pure backpressure,
		// paced by the cooldown and bounded by the caller's context, so it
		// must not consume the job's failure budget — a busy pool would
		// otherwise abort a long sweep that was making steady progress.
		charge := jr.Status != http.StatusTooManyRequests
		if err := st.requeue(j, charge, fmt.Errorf("worker %s: %s (http %d)", w.endpoint, jr.Error, jr.Status)); err != nil {
			return err
		}
	}
	// A draining worker will 503 everything it is offered; treat it like a
	// transport failure so its breaker opens after DeadAfter strikes. Only a
	// batch free of draining signals clears the strike count — resetting
	// unconditionally would let a 200-wrapped stream of per-job 503s keep
	// the worker alive forever.
	if sawDraining {
		w.consecFails++
		if w.state == wsSuspect || w.consecFails >= st.cfg.DeadAfter {
			return st.trip(w, errors.New("worker draining"))
		}
	} else {
		w.consecFails = 0
		if w.state == wsSuspect {
			// The probe batch came back clean: close the breaker.
			w.setState(wsLive)
			w.trips = 0
			st.m.breakerCloses.Add(1)
			st.cfg.Logger.Info("cluster: breaker closed", "worker", w.endpoint)
		}
	}
	return nil
}

// handleBatchFailure requeues a failed batch's jobs, escalating the worker
// toward an open breaker on repeated strikes (and immediately when a
// half-open probe batch fails). Non-retryable whole-request rejections
// (a 4xx other than 429) are the coordinator's own bug and abort the sweep.
func (st *runState) handleBatchFailure(b *batch, cause error) error {
	w := b.worker
	var se *StatusError
	if errors.As(cause, &se) && se.Code >= 400 && se.Code < 500 && se.Code != http.StatusTooManyRequests {
		return fmt.Errorf("cluster: worker %s rejected batch: %w", w.endpoint, cause)
	}
	w.consecFails++
	if w.routable() && (w.state == wsSuspect || w.consecFails >= st.cfg.DeadAfter) {
		if err := st.trip(w, cause); err != nil {
			return err
		}
	} else if w.state == wsLive {
		w.cooldownUntil = time.Now().Add(time.Duration(w.consecFails) * 200 * time.Millisecond)
	}
	for _, j := range b.jobs {
		if st.done[j] {
			continue
		}
		if err := st.requeue(j, true, fmt.Errorf("worker %s: %w", w.endpoint, cause)); err != nil {
			return err
		}
	}
	return nil
}

// requeue re-dispatches job j to its current owner (or parks it). charge
// says whether the failure counts against the job's attempt budget —
// genuine failures do, capacity rejections (429) do not. Either way the
// job's CellTimeout budget keeps burning: a cell stuck behind an endless
// 429 storm still ends the sweep in bounded time.
func (st *runState) requeue(j int, charge bool, cause error) error {
	if charge {
		st.fails[j]++
	}
	if st.fails[j] >= st.cfg.MaxAttempts {
		return fmt.Errorf("%w: job %q failed %d dispatch attempts, last: %v",
			ErrWorkerFailed, st.jobs[j].Key, st.fails[j], cause)
	}
	if st.cfg.CellTimeout > 0 && !st.firstTry[j].IsZero() && time.Since(st.firstTry[j]) >= st.cfg.CellTimeout {
		return fmt.Errorf("%w: job %q burned its %v budget, last: %v",
			ErrCellTimeout, st.jobs[j].Key, st.cfg.CellTimeout, cause)
	}
	st.m.jobsRetried.Add(1)
	if !st.retriedJ[j] {
		st.retriedJ[j] = true
		st.m.cellsRetried.Add(1)
	}
	if tr := st.cfg.Trace; tr != nil {
		tr.Add(obs.Span{Name: "retry", Cat: "phase", Start: time.Now(), TID: j, Instant: true,
			Args: []obs.Arg{{Key: "key", Value: st.jobs[j].Key}, {Key: "cause", Value: cause.Error()}}})
	}
	st.cfg.Logger.Debug("cluster: job requeued",
		"key", st.jobs[j].Key, "charged", charge, "attempt_fails", st.fails[j], "cause", cause)
	return st.placeJob(j)
}

// trip opens w's circuit breaker: its keys move to the surviving pool (by
// construction only keys w owned move) and w rests until reopenAt, when it
// half-opens for a probe batch. Repeat trips double the rest.
func (st *runState) trip(w *workerState, cause error) error {
	if w.state == wsDead || w.state == wsRemoved {
		return nil
	}
	w.setState(wsDead)
	w.consecFails = 0
	w.trips++
	cool := st.cfg.BreakerCooldown
	for i := 1; i < w.trips && cool < st.cfg.BreakerMaxCooldown; i++ {
		cool *= 2
	}
	if cool > st.cfg.BreakerMaxCooldown {
		cool = st.cfg.BreakerMaxCooldown
	}
	w.reopenAt = time.Now().Add(cool)
	st.m.workerDeaths.Add(1)
	st.cfg.Logger.Warn("cluster: breaker opened",
		"worker", w.endpoint, "cooldown", cool, "trips", w.trips, "cause", cause)
	q := w.queue
	w.queue = nil
	for _, j := range q {
		if st.done[j] {
			continue
		}
		if err := st.placeJob(j); err != nil {
			return fmt.Errorf("%v (after worker %s failed: %v)", err, w.endpoint, cause)
		}
	}
	return nil
}

// reconcileMembership re-reads the membership file and diffs it against the
// tracked pool: unknown endpoints are probed asynchronously and join on a
// passing probe; endpoints no longer listed are retired. An unreadable file
// changes nothing — the last good view stays in effect.
func (st *runState) reconcileMembership() {
	eps, err := readMembershipFile(st.cfg.MembershipFile)
	if err != nil {
		st.m.membershipErrors.Add(1)
		return
	}
	want := make(map[string]bool, len(eps))
	for _, ep := range eps {
		want[ep] = true
	}
	for _, w := range st.workers {
		if !want[w.endpoint] && w.state != wsRemoved {
			st.retire(w)
		}
	}
	httpc := st.cfg.Client.httpClient()
	for _, ep := range eps {
		w := st.byEP[ep]
		if (w == nil || w.state == wsRemoved) && !st.probing[ep] {
			st.probing[ep] = true
			go func(ep string) {
				ok := healthProbe(st.ctx, httpc, ep, st.cfg.ProbeTimeout)
				st.sendJoin(joinEvent{endpoint: ep, ok: ok})
			}(ep)
		}
	}
}

// retire permanently removes w from the run (membership says it is gone);
// unlike a tripped breaker it will not half-open — only a membership
// re-add brings it back.
func (st *runState) retire(w *workerState) {
	w.setState(wsRemoved)
	w.consecFails = 0
	st.m.workersRemoved.Add(1)
	st.cfg.Logger.Info("cluster: worker retired", "worker", w.endpoint)
	q := w.queue
	w.queue = nil
	for _, j := range q {
		if st.done[j] {
			continue
		}
		// Parking is always legal here: a membership file is configured, so
		// the pool can recover by definition.
		if st.placeJob(j) != nil {
			st.parked = append(st.parked, j)
		}
	}
}

// handleJoin settles a membership probe: a passing endpoint joins the pool
// (or revives, if it was retired) and queued work rebalances so the new
// worker immediately owns its rendezvous share.
func (st *runState) handleJoin(ev joinEvent) error {
	delete(st.probing, ev.endpoint)
	if !ev.ok {
		return nil // next reconcile tick re-probes
	}
	w := st.byEP[ev.endpoint]
	if w == nil {
		w = &workerState{endpoint: ev.endpoint, metrics: st.m.worker(ev.endpoint)}
		st.workers = append(st.workers, w)
		st.byEP[ev.endpoint] = w
	} else if w.state != wsRemoved {
		return nil // raced back to life some other way
	}
	w.setState(wsLive)
	w.consecFails = 0
	w.trips = 0
	st.m.workersJoined.Add(1)
	st.cfg.Logger.Info("cluster: worker joined", "worker", w.endpoint)
	return st.rebalance()
}

// rebalance re-places every queued (not in-flight) and parked job so
// ownership reflects the current pool. Cheap — queues hold ints — and only
// keys whose rendezvous owner changed actually move.
func (st *runState) rebalance() error {
	var all []int
	for _, w := range st.workers {
		all = append(all, w.queue...)
		w.queue = nil
	}
	all = append(all, st.parked...)
	st.parked = nil
	for _, j := range all {
		if st.done[j] {
			continue
		}
		if err := st.placeJob(j); err != nil {
			return err
		}
	}
	return nil
}

// hedgeScan duplicates unfinished jobs from batches past the hedge deadline
// onto each key's next-preferred live worker: a straggling or silently
// wedged worker no longer gates the sweep, and because results are pure
// functions of their key, whichever copy finishes first wins and the other
// is discarded on arrival.
func (st *runState) hedgeScan() {
	if st.cfg.HedgeAfter <= 0 {
		return
	}
	now := time.Now()
	for _, b := range st.inflight {
		if b.hedged || now.Sub(b.started) < st.cfg.HedgeAfter {
			continue
		}
		b.hedged = true
		for _, j := range b.jobs {
			if st.done[j] || st.hedgedJ[j] {
				continue
			}
			target := st.hedgeTarget(st.jobs[j].Key, b.worker)
			if target == nil {
				continue
			}
			st.hedgedJ[j] = true
			st.m.jobsHedged.Add(1)
			if tr := st.cfg.Trace; tr != nil {
				tr.Add(obs.Span{Name: "hedge", Cat: "phase", Start: now, TID: j, Instant: true,
					Args: []obs.Arg{
						{Key: "key", Value: st.jobs[j].Key},
						{Key: "from", Value: b.worker.endpoint},
						{Key: "to", Value: target.endpoint},
					}})
			}
			st.cfg.Logger.Debug("cluster: job hedged",
				"key", st.jobs[j].Key, "from", b.worker.endpoint, "to", target.endpoint)
			target.queue = append(target.queue, j)
		}
	}
}

// hedgeTarget picks the highest-ranked routable worker other than the one
// already holding the job.
func (st *runState) hedgeTarget(key string, holder *workerState) *workerState {
	for _, ep := range rendezvousRank(key, st.routableEndpoints()) {
		if w := st.byEP[ep]; w != holder {
			return w
		}
	}
	return nil
}

// nextWake returns the earliest future instant the loop must act without an
// event: a cooled-down worker with runnable work, an open breaker due to
// half-open, a parked job burning its CellTimeout, or a hedge deadline.
func (st *runState) nextWake() (time.Time, bool) {
	var wake time.Time
	consider := func(t time.Time) {
		if wake.IsZero() || t.Before(wake) {
			wake = t
		}
	}
	now := time.Now()
	for _, w := range st.workers {
		if w.routable() && len(w.queue) > 0 && w.inflight < st.cfg.InFlight && w.cooldownUntil.After(now) {
			consider(w.cooldownUntil)
		}
		if w.state == wsDead {
			consider(w.reopenAt)
		}
	}
	if st.cfg.CellTimeout > 0 {
		for _, j := range st.parked {
			if !st.done[j] && !st.firstTry[j].IsZero() {
				consider(st.firstTry[j].Add(st.cfg.CellTimeout))
			}
		}
	}
	if st.cfg.HedgeAfter > 0 {
		for _, b := range st.inflight {
			if !b.hedged {
				consider(b.started.Add(st.cfg.HedgeAfter))
			}
		}
	}
	return wake, !wake.IsZero()
}
