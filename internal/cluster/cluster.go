// Package cluster shards simulation matrices across a pool of boomsimd
// workers: the horizontal scale-out layer over the single-node service.
//
// The coordinator expands a matrix into per-cell jobs identified by their
// configuration Key and routes each job to a worker by rendezvous hashing
// on that Key, so every worker's content-addressed result cache stays hot
// and a repeated sweep collapses to cache hits instead of re-simulating.
// Dispatch is an event loop with explicit backpressure: at most InFlight
// batches per worker, per-job 429/503 responses (and their Retry-After
// hints) cool the worker down, transport failures re-dispatch the affected
// jobs with a capped attempt budget, a worker that keeps failing is
// declared dead and only its keys move (the rendezvous property), and
// stragglers can be hedged to the key's next-preferred worker. Results
// reassemble in matrix order regardless of completion order, so a
// distributed sweep is byte-identical to a local RunMatrix.
//
// The package deliberately speaks only internal/wire and the standard
// library: the public boomsim package builds on it, so it cannot import
// boomsim, and the API-boundary test pins it to the wire vocabulary.
package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"boomsim/internal/wire"
)

// Sentinel errors; the public boomsim package wraps them into its own
// typed errors.
var (
	// ErrNoWorkers reports an empty or fully-dead worker pool.
	ErrNoWorkers = errors.New("cluster: no live workers")
	// ErrWorkerFailed reports a job that exhausted its dispatch attempts.
	ErrWorkerFailed = errors.New("cluster: worker failed")
)

// Config sizes a Coordinator. Endpoints is required; everything else
// defaults sensibly.
type Config struct {
	// Endpoints lists worker base URLs (http://host:port). Duplicates and
	// trailing slashes are normalised away.
	Endpoints []string
	// InFlight bounds concurrently outstanding batches per worker
	// (default 2) — the coordinator-side half of backpressure.
	InFlight int
	// BatchSize bounds jobs per /v1/jobs request (default 4).
	BatchSize int
	// MaxAttempts bounds dispatch attempts per job before the sweep fails
	// with ErrWorkerFailed (default 4).
	MaxAttempts int
	// DeadAfter is the consecutive-failure threshold after which a worker
	// is declared dead and its keys redistribute (default 2).
	DeadAfter int
	// HedgeAfter duplicates a batch's unfinished jobs onto each key's
	// next-preferred worker once the batch has been in flight this long
	// (0 = hedging disabled).
	HedgeAfter time.Duration
	// JobTimeoutMS is forwarded as each batch's server-side deadline hint
	// (0 = the worker's own cap).
	JobTimeoutMS int64
	// RequestTimeout caps one batch's total transport time, retries
	// included (default 5m). A worker that accepts connections but never
	// answers burns this budget, strikes out, and its keys move on.
	RequestTimeout time.Duration
	// ProbeTimeout bounds the per-worker /healthz probe at sweep start
	// (default 2s; negative disables probing).
	ProbeTimeout time.Duration
	// Client is the transport (default a zero RetryClient: 3 attempts,
	// 100ms base backoff, Retry-After honored).
	Client *RetryClient
}

func (c Config) withDefaults() Config {
	if c.InFlight <= 0 {
		c.InFlight = 2
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 4
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 4
	}
	if c.DeadAfter <= 0 {
		c.DeadAfter = 2
	}
	if c.ProbeTimeout == 0 {
		c.ProbeTimeout = 2 * time.Second
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 5 * time.Minute
	}
	if c.Client == nil {
		c.Client = &RetryClient{}
	}
	return c
}

// Job is one matrix cell: the configuration Key it is cached under (the
// routing identity) and its wire request.
type Job struct {
	Key string
	Req wire.RunRequest
}

// JobResult is one completed cell: the raw result JSON and whether the
// worker answered it from cache.
type JobResult struct {
	Cached bool
	Result json.RawMessage
}

// Coordinator shards jobs across the configured workers. It is safe for
// sequential reuse across sweeps (worker liveness is re-probed per Run) and
// its Stats/MetricsHandler may be read concurrently with a running sweep.
type Coordinator struct {
	cfg Config
	m   *metrics

	// runMu serialises Run: the event loop owns per-run state exclusively.
	runMu sync.Mutex
}

// New validates cfg and builds a Coordinator.
func New(cfg Config) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	var endpoints []string
	seen := make(map[string]bool)
	for _, ep := range cfg.Endpoints {
		ep = strings.TrimRight(strings.TrimSpace(ep), "/")
		if ep == "" || seen[ep] {
			continue
		}
		seen[ep] = true
		endpoints = append(endpoints, ep)
	}
	if len(endpoints) == 0 {
		return nil, ErrNoWorkers
	}
	cfg.Endpoints = endpoints
	return &Coordinator{cfg: cfg, m: newMetrics(endpoints)}, nil
}

// Stats snapshots the coordinator counters; safe during a running sweep.
func (c *Coordinator) Stats() Stats { return c.m.snapshot() }

// MetricsHandler serves the counters in Prometheus text format.
func (c *Coordinator) MetricsHandler() http.Handler { return http.HandlerFunc(c.m.serveHTTP) }

// workerState is one endpoint's per-run dispatch state, owned by the event
// loop goroutine.
type workerState struct {
	endpoint      string
	metrics       *workerMetrics
	alive         bool
	probeFailed   bool
	inflight      int   // outstanding batches
	queue         []int // job indices awaiting dispatch
	consecFails   int
	cooldownUntil time.Time
}

type batch struct {
	id      int
	worker  *workerState
	jobs    []int
	started time.Time
	hedged  bool
}

type batchEvent struct {
	batch *batch
	resp  *wire.JobsResponse
	err   error
}

// runState is one sweep's bookkeeping; every field is owned by the Run
// goroutine, with launched batches communicating back over events.
type runState struct {
	cfg     Config
	m       *metrics
	ctx     context.Context
	jobs    []Job
	results []JobResult
	done    []bool
	fails   []int // failed dispatch attempts per job
	hedgedJ []bool
	workers []*workerState
	byEP    map[string]*workerState

	remaining int
	inflight  map[int]*batch
	nextID    int
	events    chan batchEvent
}

// Run dispatches jobs across the pool and returns their results in input
// order. On failure every in-flight request is canceled before returning.
func (c *Coordinator) Run(ctx context.Context, jobs []Job) ([]JobResult, error) {
	c.runMu.Lock()
	defer c.runMu.Unlock()
	if len(jobs) == 0 {
		return nil, nil
	}
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	st := &runState{
		cfg:       c.cfg,
		m:         c.m,
		ctx:       runCtx,
		jobs:      jobs,
		results:   make([]JobResult, len(jobs)),
		done:      make([]bool, len(jobs)),
		fails:     make([]int, len(jobs)),
		hedgedJ:   make([]bool, len(jobs)),
		byEP:      make(map[string]*workerState, len(c.cfg.Endpoints)),
		remaining: len(jobs),
		inflight:  make(map[int]*batch),
		events:    make(chan batchEvent, len(c.cfg.Endpoints)*c.cfg.InFlight+8),
	}
	for _, ep := range c.cfg.Endpoints {
		w := &workerState{endpoint: ep, metrics: c.m.worker(ep), alive: true}
		w.metrics.alive.Store(true)
		st.workers = append(st.workers, w)
		st.byEP[ep] = w
	}

	if err := st.probe(runCtx); err != nil {
		return nil, err
	}
	for i := range jobs {
		w := st.ownerOf(jobs[i].Key)
		if w == nil {
			return nil, ErrNoWorkers
		}
		w.queue = append(w.queue, i)
	}

	timer := time.NewTimer(time.Hour)
	timer.Stop()
	defer timer.Stop()
	for st.remaining > 0 {
		st.schedule()
		var timerC <-chan time.Time
		if wake, ok := st.nextWake(); ok {
			d := time.Until(wake)
			if d < time.Millisecond {
				d = time.Millisecond
			}
			timer.Reset(d)
			timerC = timer.C
		} else {
			timer.Stop()
		}
		select {
		case ev := <-st.events:
			if err := st.handle(ev); err != nil {
				return nil, err
			}
		case <-timerC:
			st.hedgeScan()
		case <-runCtx.Done():
			return nil, fmt.Errorf("cluster: sweep canceled: %w", runCtx.Err())
		}
	}
	return st.results, nil
}

// probe checks every worker's /healthz concurrently; unreachable workers
// start the sweep dead so their keys route elsewhere from the first batch.
func (st *runState) probe(ctx context.Context) error {
	if st.cfg.ProbeTimeout < 0 {
		return nil
	}
	httpc := st.cfg.Client.httpClient()
	var wg sync.WaitGroup
	for _, w := range st.workers {
		wg.Add(1)
		go func(w *workerState) {
			defer wg.Done()
			pctx, cancel := context.WithTimeout(ctx, st.cfg.ProbeTimeout)
			defer cancel()
			req, err := http.NewRequestWithContext(pctx, http.MethodGet, w.endpoint+"/healthz", nil)
			if err != nil {
				w.probeFailed = true
				return
			}
			resp, err := httpc.Do(req)
			if err != nil {
				w.probeFailed = true
				return
			}
			io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				w.probeFailed = true
			}
		}(w)
	}
	wg.Wait()
	alive := 0
	for _, w := range st.workers {
		if w.probeFailed {
			w.alive = false
			w.metrics.alive.Store(false)
			st.m.probeFailures.Add(1)
		} else {
			alive++
		}
	}
	if alive == 0 {
		return fmt.Errorf("%w: all %d health probes failed", ErrNoWorkers, len(st.workers))
	}
	return nil
}

// aliveEndpoints materialises the current live set for the hash functions.
func (st *runState) aliveEndpoints() []string {
	eps := make([]string, 0, len(st.workers))
	for _, w := range st.workers {
		if w.alive {
			eps = append(eps, w.endpoint)
		}
	}
	return eps
}

// ownerOf returns the live rendezvous owner of key, or nil when the pool is
// dead.
func (st *runState) ownerOf(key string) *workerState {
	ep := rendezvousOwner(key, st.aliveEndpoints())
	if ep == "" {
		return nil
	}
	return st.byEP[ep]
}

// schedule launches as many batches as capacity allows: per alive,
// non-cooling worker, pop up to BatchSize pending jobs per free in-flight
// slot. Jobs completed elsewhere in the meantime (hedge duplicates) are
// discarded at pop time.
func (st *runState) schedule() {
	now := time.Now()
	for _, w := range st.workers {
		if !w.alive || now.Before(w.cooldownUntil) {
			continue
		}
		for w.inflight < st.cfg.InFlight && len(w.queue) > 0 {
			var idxs []int
			for len(idxs) < st.cfg.BatchSize && len(w.queue) > 0 {
				j := w.queue[0]
				w.queue = w.queue[1:]
				if st.done[j] {
					continue
				}
				idxs = append(idxs, j)
			}
			if len(idxs) == 0 {
				break
			}
			st.launch(w, idxs)
		}
	}
}

func (st *runState) launch(w *workerState, idxs []int) {
	b := &batch{id: st.nextID, worker: w, jobs: idxs, started: time.Now()}
	st.nextID++
	st.inflight[b.id] = b
	w.inflight++
	st.m.batchesDispatched.Add(1)
	st.m.jobsDispatched.Add(uint64(len(idxs)))
	w.metrics.requests.Add(1)

	reqs := make([]wire.RunRequest, len(idxs))
	for k, j := range idxs {
		reqs[k] = st.jobs[j].Req
	}
	body, err := json.Marshal(wire.JobsRequest{Jobs: reqs, TimeoutMS: st.cfg.JobTimeoutMS})
	if err != nil {
		// Unreachable for wire types; fail through the event path so the
		// loop's accounting stays consistent.
		go st.send(batchEvent{batch: b, err: err})
		return
	}
	client, url := st.cfg.Client, w.endpoint+"/v1/jobs"
	ctx, cancel := context.WithTimeout(st.ctx, st.cfg.RequestTimeout)
	go func() {
		defer cancel()
		raw, err := client.PostJSON(ctx, url, body)
		ev := batchEvent{batch: b, err: err}
		if err == nil {
			var resp wire.JobsResponse
			if uerr := json.Unmarshal(raw, &resp); uerr != nil {
				ev.err = fmt.Errorf("decoding %s response: %w", url, uerr)
			} else {
				ev.resp = &resp
			}
		}
		st.send(ev)
	}()
}

func (st *runState) send(ev batchEvent) {
	select {
	case st.events <- ev:
	case <-st.ctx.Done():
	}
}

// handle settles one batch: record results, and requeue, cool down, or
// declare workers dead on the failure paths. A non-nil return aborts the
// sweep.
func (st *runState) handle(ev batchEvent) error {
	b := ev.batch
	delete(st.inflight, b.id)
	w := b.worker
	w.inflight--
	w.metrics.latencyNanos.Add(uint64(time.Since(b.started)))

	if ev.err != nil {
		w.metrics.failures.Add(1)
		return st.handleBatchFailure(b, ev.err)
	}
	if len(ev.resp.Jobs) != len(b.jobs) {
		w.metrics.failures.Add(1)
		return st.handleBatchFailure(b, fmt.Errorf(
			"worker %s returned %d results for %d jobs", w.endpoint, len(ev.resp.Jobs), len(b.jobs)))
	}

	sawDraining := false
	for k, jr := range ev.resp.Jobs {
		j := b.jobs[k]
		if jr.Error == "" {
			if !st.done[j] {
				st.done[j] = true
				st.remaining--
				st.results[j] = JobResult{Cached: jr.Cached, Result: jr.Result}
				st.m.jobsCompleted.Add(1)
				w.metrics.jobs.Add(1)
				if jr.Cached {
					st.m.cacheHits.Add(1)
				}
			}
			continue
		}
		if st.done[j] {
			continue
		}
		if !jr.Retryable() {
			return fmt.Errorf("cluster: worker %s rejected job %q: %s (http %d)",
				w.endpoint, st.jobs[j].Key, jr.Error, jr.Status)
		}
		if jr.Status == http.StatusServiceUnavailable {
			sawDraining = true
		}
		// Cool the worker down for the server's hinted interval — the
		// in-band Retry-After — before offering it more work.
		cool := time.Duration(jr.RetryAfterMS) * time.Millisecond
		if cool <= 0 {
			cool = 200 * time.Millisecond
		}
		if until := time.Now().Add(cool); until.After(w.cooldownUntil) {
			w.cooldownUntil = until
		}
		// A 429 is a healthy worker saying "not yet": pure backpressure,
		// paced by the cooldown and bounded by the caller's context, so it
		// must not consume the job's failure budget — a busy pool would
		// otherwise abort a long sweep that was making steady progress.
		charge := jr.Status != http.StatusTooManyRequests
		if err := st.requeue(j, charge, fmt.Errorf("worker %s: %s (http %d)", w.endpoint, jr.Error, jr.Status)); err != nil {
			return err
		}
	}
	// A draining worker will 503 everything it is offered; treat it like a
	// transport failure so it is retired after DeadAfter strikes. Only a
	// batch free of draining signals clears the strike count — resetting
	// unconditionally would let a 200-wrapped stream of per-job 503s keep
	// the worker alive forever.
	if sawDraining {
		w.consecFails++
		if w.alive && w.consecFails >= st.cfg.DeadAfter {
			return st.killWorker(w, errors.New("worker draining"))
		}
	} else {
		w.consecFails = 0
	}
	return nil
}

// handleBatchFailure requeues a failed batch's jobs, escalating the worker
// toward death on repeated strikes. Non-retryable whole-request rejections
// (a 4xx other than 429) are the coordinator's own bug and abort the sweep.
func (st *runState) handleBatchFailure(b *batch, cause error) error {
	w := b.worker
	var se *StatusError
	if errors.As(cause, &se) && se.Code >= 400 && se.Code < 500 && se.Code != http.StatusTooManyRequests {
		return fmt.Errorf("cluster: worker %s rejected batch: %w", w.endpoint, cause)
	}
	w.consecFails++
	if w.alive && w.consecFails >= st.cfg.DeadAfter {
		if err := st.killWorker(w, cause); err != nil {
			return err
		}
	} else {
		w.cooldownUntil = time.Now().Add(time.Duration(w.consecFails) * 200 * time.Millisecond)
	}
	for _, j := range b.jobs {
		if st.done[j] {
			continue
		}
		if err := st.requeue(j, true, fmt.Errorf("worker %s: %w", w.endpoint, cause)); err != nil {
			return err
		}
	}
	return nil
}

// requeue re-dispatches job j to its current live owner. charge says
// whether the failure counts against the job's attempt budget — genuine
// failures do, capacity rejections (429) do not.
func (st *runState) requeue(j int, charge bool, cause error) error {
	if charge {
		st.fails[j]++
	}
	if st.fails[j] >= st.cfg.MaxAttempts {
		return fmt.Errorf("%w: job %q failed %d dispatch attempts, last: %v",
			ErrWorkerFailed, st.jobs[j].Key, st.fails[j], cause)
	}
	st.m.jobsRetried.Add(1)
	w := st.ownerOf(st.jobs[j].Key)
	if w == nil {
		return fmt.Errorf("%w: while re-dispatching job %q: %v", ErrNoWorkers, st.jobs[j].Key, cause)
	}
	w.queue = append(w.queue, j)
	return nil
}

// killWorker retires w and re-routes its queued jobs to their new
// rendezvous owners — by construction only keys w owned move.
func (st *runState) killWorker(w *workerState, cause error) error {
	w.alive = false
	w.metrics.alive.Store(false)
	st.m.workerDeaths.Add(1)
	if len(st.aliveEndpoints()) == 0 {
		return fmt.Errorf("%w: last worker %s failed: %v", ErrNoWorkers, w.endpoint, cause)
	}
	q := w.queue
	w.queue = nil
	for _, j := range q {
		if st.done[j] {
			continue
		}
		next := st.ownerOf(st.jobs[j].Key)
		next.queue = append(next.queue, j)
	}
	return nil
}

// hedgeScan duplicates unfinished jobs from batches past the hedge deadline
// onto each key's next-preferred live worker: a straggling or silently
// wedged worker no longer gates the sweep, and because results are pure
// functions of their key, whichever copy finishes first wins and the other
// is discarded on arrival.
func (st *runState) hedgeScan() {
	if st.cfg.HedgeAfter <= 0 {
		return
	}
	now := time.Now()
	for _, b := range st.inflight {
		if b.hedged || now.Sub(b.started) < st.cfg.HedgeAfter {
			continue
		}
		b.hedged = true
		for _, j := range b.jobs {
			if st.done[j] || st.hedgedJ[j] {
				continue
			}
			target := st.hedgeTarget(st.jobs[j].Key, b.worker)
			if target == nil {
				continue
			}
			st.hedgedJ[j] = true
			st.m.jobsHedged.Add(1)
			target.queue = append(target.queue, j)
		}
	}
}

// hedgeTarget picks the highest-ranked live worker other than the one
// already holding the job.
func (st *runState) hedgeTarget(key string, holder *workerState) *workerState {
	for _, ep := range rendezvousRank(key, st.aliveEndpoints()) {
		if w := st.byEP[ep]; w != holder {
			return w
		}
	}
	return nil
}

// nextWake returns the earliest future instant the loop must act without an
// event: a cooled-down worker with runnable work, or a hedge deadline.
func (st *runState) nextWake() (time.Time, bool) {
	var wake time.Time
	consider := func(t time.Time) {
		if wake.IsZero() || t.Before(wake) {
			wake = t
		}
	}
	now := time.Now()
	for _, w := range st.workers {
		if w.alive && len(w.queue) > 0 && w.inflight < st.cfg.InFlight && w.cooldownUntil.After(now) {
			consider(w.cooldownUntil)
		}
	}
	if st.cfg.HedgeAfter > 0 {
		for _, b := range st.inflight {
			if !b.hedged {
				consider(b.started.Add(st.cfg.HedgeAfter))
			}
		}
	}
	return wake, !wake.IsZero()
}
