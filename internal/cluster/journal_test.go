package cluster

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func journalKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%03d", i)
	}
	return keys
}

func TestJournalRoundTripsCompletedCells(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.journal")
	keys := journalKeys(10)
	id := SweepID(keys)

	j, err := OpenJournal(path, id, len(keys))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		j.Append(keys[i], json.RawMessage(fmt.Sprintf(`{"cell":%d}`, i)))
	}
	if err := j.Err(); err != nil {
		t.Fatalf("appends failed: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(path, id, len(keys))
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Len() != 6 {
		t.Fatalf("reopened journal holds %d cells, want 6", j2.Len())
	}
	for i := 0; i < 6; i++ {
		raw, ok := j2.Lookup(keys[i])
		if !ok {
			t.Fatalf("cell %d missing after reopen", i)
		}
		if want := fmt.Sprintf(`{"cell":%d}`, i); string(raw) != want {
			t.Fatalf("cell %d = %s, want %s", i, raw, want)
		}
	}
	if _, ok := j2.Lookup(keys[7]); ok {
		t.Fatal("journal invented a cell it never recorded")
	}
}

func TestJournalRefusesDifferentSweep(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.journal")
	keys := journalKeys(5)
	j, err := OpenJournal(path, SweepID(keys), len(keys))
	if err != nil {
		t.Fatal(err)
	}
	j.Append(keys[0], json.RawMessage(`{}`))
	j.Close()

	other := journalKeys(6)
	if _, err := OpenJournal(path, SweepID(other), len(other)); !errors.Is(err, ErrJournalMismatch) {
		t.Fatalf("err = %v, want ErrJournalMismatch", err)
	}
}

func TestJournalDropsTornFinalRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.journal")
	keys := journalKeys(5)
	id := SweepID(keys)
	j, err := OpenJournal(path, id, len(keys))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		j.Append(keys[i], json.RawMessage(fmt.Sprintf(`{"cell":%d}`, i)))
	}
	j.Close()

	// Crash mid-append: the last record loses its tail (newline included).
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(path, id, len(keys))
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Len() != 2 {
		t.Fatalf("journal holds %d cells after a torn tail, want 2", j2.Len())
	}
	if j2.Dropped() != 1 {
		t.Fatalf("Dropped = %d, want 1", j2.Dropped())
	}
	if _, ok := j2.Lookup(keys[2]); ok {
		t.Fatal("torn record served — its bytes cannot be trusted")
	}
	// The journal must keep accepting appends after recovery.
	j2.Append(keys[2], json.RawMessage(`{"cell":2}`))
	if err := j2.Err(); err != nil {
		t.Fatalf("append after torn recovery failed: %v", err)
	}
}

func TestJournalDropsCorruptRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.journal")
	keys := journalKeys(4)
	id := SweepID(keys)
	j, err := OpenJournal(path, id, len(keys))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		j.Append(keys[i], json.RawMessage(fmt.Sprintf(`{"cell":%d}`, i)))
	}
	j.Close()

	// Flip payload bytes inside the middle record: it still parses as JSON
	// shape-wise no longer matching its digest, so only it is dropped.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	tampered := []byte(string(raw))
	idx := bytes.Index(tampered, []byte(`{"cell":1}`))
	if idx < 0 {
		t.Fatalf("fixture drift: record payload not found in %s", raw)
	}
	tampered[idx+len(`{"cell":`)] = '9'
	if err := os.WriteFile(path, tampered, 0o644); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(path, id, len(keys))
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Len() != 2 || j2.Dropped() != 1 {
		t.Fatalf("Len = %d, Dropped = %d; want 2 kept, 1 dropped", j2.Len(), j2.Dropped())
	}
	if _, ok := j2.Lookup(keys[1]); ok {
		t.Fatal("digest-mismatched record served")
	}
	if _, ok := j2.Lookup(keys[2]); !ok {
		t.Fatal("record after the corrupt one was lost — recovery must not stop at the first bad line")
	}
}

func TestJournalRestartsOnUnreadableHeader(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.journal")
	if err := os.WriteFile(path, []byte(`{"t":"head`), 0o644); err != nil {
		t.Fatal(err)
	}
	keys := journalKeys(3)
	j, err := OpenJournal(path, SweepID(keys), len(keys))
	if err != nil {
		t.Fatalf("a torn header must restart the journal, got %v", err)
	}
	defer j.Close()
	if j.Len() != 0 {
		t.Fatalf("restarted journal holds %d cells, want 0", j.Len())
	}
	j.Append(keys[0], json.RawMessage(`{}`))
	if err := j.Err(); err != nil {
		t.Fatal(err)
	}
}
