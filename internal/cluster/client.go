package cluster

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"strconv"
	"time"
)

// RetryClient posts JSON with bounded retries. It is the one place in the
// module that consumes the backpressure boomsimd emits: a 429 or 503 with a
// Retry-After header sleeps for at least the server's hint, transport
// errors and other 5xx responses back off exponentially with full jitter,
// and non-retryable 4xx responses surface immediately as a *StatusError.
// Both the cluster coordinator and `boomsim -remote` ride on it.
type RetryClient struct {
	// HTTP is the underlying client (default http.DefaultClient).
	HTTP *http.Client
	// MaxAttempts bounds total tries per request (default 3).
	MaxAttempts int
	// BaseDelay seeds the exponential backoff (default 100ms); MaxDelay
	// caps it and any Retry-After hint (default 5s).
	BaseDelay time.Duration
	MaxDelay  time.Duration

	// sleep substitutes the inter-attempt wait in tests (a fake clock that
	// records durations instead of burning wall time). nil = real sleep.
	sleep func(ctx context.Context, d time.Duration) error
}

// StatusError is a non-2xx response that survived (or bypassed) retries.
type StatusError struct {
	Code int
	Body string

	// retryAfter is the server's Retry-After hint, consumed by backoff.
	retryAfter time.Duration
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("http %d: %s", e.Code, snippet(e.Body))
}

func snippet(s string) string {
	if len(s) > 200 {
		return s[:200] + "..."
	}
	return s
}

func (c *RetryClient) attempts() int {
	if c.MaxAttempts > 0 {
		return c.MaxAttempts
	}
	return 3
}

func (c *RetryClient) baseDelay() time.Duration {
	if c.BaseDelay > 0 {
		return c.BaseDelay
	}
	return 100 * time.Millisecond
}

func (c *RetryClient) maxDelay() time.Duration {
	if c.MaxDelay > 0 {
		return c.MaxDelay
	}
	return 5 * time.Second
}

func (c *RetryClient) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// PostJSON posts body to url and returns the response body. Retryable
// failures (transport errors, 429, 5xx) are retried up to MaxAttempts with
// jittered exponential backoff, honoring any Retry-After the server sends;
// other non-2xx statuses return a *StatusError without retrying.
func (c *RetryClient) PostJSON(ctx context.Context, url string, body []byte) ([]byte, error) {
	var lastErr error
	for attempt := 0; attempt < c.attempts(); attempt++ {
		if attempt > 0 {
			sleep := c.sleep
			if sleep == nil {
				sleep = sleepCtx
			}
			if err := sleep(ctx, c.backoff(attempt, lastErr)); err != nil {
				return nil, err
			}
		}
		raw, err := c.postOnce(ctx, url, body)
		if err == nil {
			return raw, nil
		}
		if ctx.Err() != nil {
			return nil, fmt.Errorf("%s: %w", url, ctx.Err())
		}
		if !retryable(err) {
			return nil, fmt.Errorf("%s: %w", url, err)
		}
		lastErr = err
	}
	return nil, fmt.Errorf("%s: giving up after %d attempts: %w", url, c.attempts(), lastErr)
}

func (c *RetryClient) postOnce(ctx context.Context, url string, body []byte) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode/100 != 2 {
		se := &StatusError{Code: resp.StatusCode, Body: string(raw)}
		if d, ok := parseRetryAfter(resp.Header.Get("Retry-After")); ok {
			se.retryAfter = d
		}
		return nil, se
	}
	return raw, nil
}

// retryable classifies an attempt's failure: transport errors, capacity
// (429) and server-side conditions (5xx) may clear on retry; everything
// else is the caller's bug and retrying would only repeat it.
func retryable(err error) bool {
	if se, ok := err.(*StatusError); ok {
		return se.Code == http.StatusTooManyRequests || se.Code >= 500
	}
	return true // transport-level failure
}

// backoff computes the pre-attempt sleep: full-jitter exponential from
// BaseDelay, floored at the server's Retry-After hint when one came back,
// capped at MaxDelay.
func (c *RetryClient) backoff(attempt int, lastErr error) time.Duration {
	// Double up to the cap iteratively: a shift by attempt-1 would
	// overflow int64 for generously configured MaxAttempts.
	ceil, limit := c.baseDelay(), c.maxDelay()
	for i := 1; i < attempt && ceil < limit/2; i++ {
		ceil *= 2
	}
	if ceil > limit {
		ceil = limit
	}
	d := time.Duration(rand.Int64N(int64(ceil))) + ceil/2 // jitter in [ceil/2, 3ceil/2)
	if se, ok := lastErr.(*StatusError); ok && se.retryAfter > d {
		d = se.retryAfter
	}
	if d > limit {
		d = limit
	}
	return d
}

// parseRetryAfter understands both RFC 9110 forms: delay-seconds and an
// HTTP-date.
func parseRetryAfter(v string) (time.Duration, bool) {
	if v == "" {
		return 0, false
	}
	if secs, err := strconv.Atoi(v); err == nil && secs >= 0 {
		return time.Duration(secs) * time.Second, true
	}
	if t, err := http.ParseTime(v); err == nil {
		if d := time.Until(t); d > 0 {
			return d, true
		}
		return 0, true
	}
	return 0, false
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
