package obs

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// ParseLevel maps the CLI -log-level strings onto slog levels.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "", "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("unknown log level %q (want debug, info, warn or error)", s)
}

// NewLogger builds the text-handler logger the binaries share: one line
// per event, level-gated, written to w.
func NewLogger(w io.Writer, level slog.Level) *slog.Logger {
	return slog.New(slog.NewTextHandler(w, &slog.HandlerOptions{Level: level}))
}

// Nop returns a logger that discards everything. Library layers (cluster,
// server, store) take a *slog.Logger and substitute Nop for nil, so their
// code logs unconditionally and the zero-config path stays silent.
func Nop() *slog.Logger {
	return slog.New(slog.DiscardHandler)
}
