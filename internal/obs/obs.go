// Package obs is the observability plane: trace identifiers, a bounded
// in-process span collector, Chrome trace_event JSON export, and slog
// construction helpers shared by the service binaries.
//
// The package is deliberately leaf-level — it imports only the standard
// library and knows nothing about simulations, wire types, or the cluster.
// Every other layer (coordinator, server, CLIs, the public matrix runner)
// records into it through plain values, so the import wall that keeps
// internal/cluster speaking only wire types extends naturally to obs.
package obs

import (
	"crypto/rand"
	"encoding/hex"
)

// NewTraceID mints a 16-byte random identifier rendered as 32 hex digits,
// the same shape as a W3C trace-context trace-id. Collisions across the
// sweeps of one repository's lifetime are not a practical concern.
func NewTraceID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing means the platform entropy source is gone;
		// a fixed ID keeps tracing usable rather than panicking a sweep.
		return "00000000000000000000000000000000"
	}
	return hex.EncodeToString(b[:])
}
