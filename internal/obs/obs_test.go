package obs

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"testing"
	"time"
)

func TestNewTraceID(t *testing.T) {
	hex32 := regexp.MustCompile(`^[0-9a-f]{32}$`)
	a, b := NewTraceID(), NewTraceID()
	if !hex32.MatchString(a) || !hex32.MatchString(b) {
		t.Fatalf("trace IDs not 32 hex digits: %q %q", a, b)
	}
	if a == b {
		t.Fatalf("two minted trace IDs collided: %q", a)
	}
}

func TestCollectorBound(t *testing.T) {
	c := NewCollector(2)
	for i := 0; i < 5; i++ {
		c.Add(Span{Name: "s", Start: time.Unix(0, int64(i))})
	}
	if got := c.Len(); got != 2 {
		t.Fatalf("Len = %d, want 2", got)
	}
	if got := c.Dropped(); got != 3 {
		t.Fatalf("Dropped = %d, want 3", got)
	}
}

func TestCollectorStampsTraceID(t *testing.T) {
	c := NewCollector(0)
	c.SetTraceID("cafe")
	c.Add(Span{Name: "a", Start: time.Unix(1, 0)})
	c.Add(Span{Name: "b", Start: time.Unix(2, 0), TraceID: "other"})
	spans := c.Spans()
	if spans[0].TraceID != "cafe" {
		t.Fatalf("span without ID not stamped: %q", spans[0].TraceID)
	}
	if spans[1].TraceID != "other" {
		t.Fatalf("explicit span ID overwritten: %q", spans[1].TraceID)
	}
}

// goldenCollector builds the fixed trace the golden file pins: two cell
// rows with queue/dispatch/sim phases, one retry instant, deliberately
// added out of timeline order to exercise the deterministic sort.
func goldenCollector() *Collector {
	c := NewCollector(0)
	c.SetTraceID("0123456789abcdef0123456789abcdef")
	base := time.Date(2024, 1, 2, 3, 4, 5, 0, time.UTC)
	c.SetThreadName(1, "cell 1")
	c.SetThreadName(0, "cell 0")
	c.Add(Span{Name: "cell", Cat: "sweep", Start: base.Add(1 * time.Millisecond), Dur: 9 * time.Millisecond, TID: 1,
		Args: []Arg{{"key", "k1"}, {"attempts", 2}, {"cached", false}}})
	c.Add(Span{Name: "retry", Cat: "sweep", Start: base.Add(4 * time.Millisecond), TID: 1, Instant: true,
		Args: []Arg{{"cause", "timeout"}}})
	c.Add(Span{Name: "cell", Cat: "sweep", Start: base, Dur: 5 * time.Millisecond, TID: 0,
		Args: []Arg{{"key", "k0"}, {"attempts", 1}, {"cached", true}}})
	c.Add(Span{Name: "sim", Cat: "sweep", Start: base.Add(6 * time.Millisecond), Dur: 4 * time.Millisecond, TID: 1,
		Args: []Arg{{"warm", "fork"}}})
	return c
}

func TestWriteChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenCollector().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "chrome_trace.golden.json")
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden: %v (regenerate with -run TestWriteChromeTraceGolden -update)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("export drifted from golden file %s\ngot:\n%s\nwant:\n%s", golden, buf.Bytes(), want)
	}
}

// TestWriteChromeTracePerfettoShape checks the structural contract the
// golden bytes imply: the object form with a traceEvents array, every
// event carrying the keys Perfetto's trace_event importer requires, and
// complete events also carrying dur.
func TestWriteChromeTracePerfettoShape(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenCollector().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var top struct {
		DisplayTimeUnit string                   `json:"displayTimeUnit"`
		TraceEvents     []map[string]interface{} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &top); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if top.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q, want ms", top.DisplayTimeUnit)
	}
	if len(top.TraceEvents) != 6 { // 2 thread_name metadata + 4 spans
		t.Fatalf("traceEvents count = %d, want 6", len(top.TraceEvents))
	}
	for i, ev := range top.TraceEvents {
		for _, key := range []string{"name", "ph", "pid", "tid"} {
			if _, ok := ev[key]; !ok {
				t.Fatalf("event %d missing required key %q: %v", i, key, ev)
			}
		}
		switch ph := ev["ph"]; ph {
		case "M":
		case "i", "X":
			if _, ok := ev["ts"]; !ok {
				t.Fatalf("event %d (ph=%v) missing ts: %v", i, ph, ev)
			}
			if ph == "X" {
				if _, ok := ev["dur"]; !ok {
					t.Fatalf("complete event %d missing dur: %v", i, ev)
				}
			}
			args, ok := ev["args"].(map[string]interface{})
			if !ok || args["trace_id"] != "0123456789abcdef0123456789abcdef" {
				t.Fatalf("event %d missing trace_id arg: %v", i, ev)
			}
		default:
			t.Fatalf("event %d has unexpected ph %v", i, ph)
		}
	}
}

// TestWriteChromeTraceStable re-exports the same logical trace from a
// freshly built collector and demands byte equality — insertion order and
// map iteration must not leak into the bytes.
func TestWriteChromeTraceStable(t *testing.T) {
	var a, b bytes.Buffer
	if err := goldenCollector().WriteChromeTrace(&a); err != nil {
		t.Fatal(err)
	}
	if err := goldenCollector().WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("two exports of the same trace differ:\n%s\n%s", a.Bytes(), b.Bytes())
	}
}

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]string{
		"debug": "DEBUG", "info": "INFO", "": "INFO", "WARN": "WARN", "error": "ERROR",
	} {
		lv, err := ParseLevel(in)
		if err != nil {
			t.Fatalf("ParseLevel(%q): %v", in, err)
		}
		if lv.String() != want {
			t.Fatalf("ParseLevel(%q) = %v, want %s", in, lv, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Fatal("ParseLevel accepted an unknown level")
	}
}
