package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"time"
)

// Arg is one key/value pair attached to a span. Args are a slice, not a
// map, so export order is the order the recorder chose — map iteration
// order would make the exported JSON unstable across runs.
type Arg struct {
	Key   string
	Value any
}

// Span is one timed (or instant) event on a trace timeline.
//
// TID groups spans onto rows: the matrix runner and coordinator use the
// cell index, so Perfetto renders one row per sweep cell. Instant spans
// (Instant == true) mark a point in time — a retry, a hedge — and ignore
// Dur.
type Span struct {
	TraceID string
	Name    string
	Cat     string
	Start   time.Time
	Dur     time.Duration
	TID     int
	Instant bool
	Args    []Arg
}

// DefaultMaxSpans bounds a collector at roughly the largest sweep this
// repository runs (18 schemes x 7 workloads x dozens of seeds, a handful
// of spans per cell) with a wide margin; beyond it spans are counted as
// dropped rather than growing without bound inside a long-lived process.
const DefaultMaxSpans = 65536

// Collector is a bounded, concurrency-safe span sink. The zero value is
// not usable; construct with NewCollector. Adds beyond the bound are
// dropped and counted — observability must never turn into an OOM.
type Collector struct {
	mu      sync.Mutex
	id      string
	max     int
	spans   []Span
	threads map[int]string
	dropped uint64
}

// NewCollector returns a collector with a freshly minted trace ID holding
// at most max spans (DefaultMaxSpans when max <= 0).
func NewCollector(max int) *Collector {
	if max <= 0 {
		max = DefaultMaxSpans
	}
	return &Collector{id: NewTraceID(), max: max, threads: map[int]string{}}
}

// ID returns the collector's trace ID. Every span added with an empty
// TraceID inherits it.
func (c *Collector) ID() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.id
}

// SetTraceID overrides the minted trace ID — used when a collector joins
// a trace started elsewhere (a worker merging into a coordinator's sweep).
func (c *Collector) SetTraceID(id string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if id != "" {
		c.id = id
	}
}

// SetThreadName labels a TID row in the exported trace.
func (c *Collector) SetThreadName(tid int, name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.threads[tid] = name
}

// Add records a span, stamping the collector's trace ID if the span has
// none. Over-bound spans are dropped and counted.
func (c *Collector) Add(s Span) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.spans) >= c.max {
		c.dropped++
		return
	}
	if s.TraceID == "" {
		s.TraceID = c.id
	}
	c.spans = append(c.spans, s)
}

// Len reports how many spans the collector holds.
func (c *Collector) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.spans)
}

// Dropped reports how many spans were discarded at the bound.
func (c *Collector) Dropped() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dropped
}

// Spans returns a copy of the collected spans in insertion order.
func (c *Collector) Spans() []Span {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Span, len(c.spans))
	copy(out, c.spans)
	return out
}

// WriteChromeTrace exports the collected spans as Chrome trace_event JSON
// (the object form Perfetto's legacy importer accepts):
//
//	{"displayTimeUnit":"ms","traceEvents":[...]}
//
// The encoding is hand-rolled so the output is byte-stable: fields appear
// in a fixed order (name, cat, ph, ts, dur, pid, tid, args), args keys in
// the order the recorder attached them, and events sorted by (tid, ts,
// name). Timestamps are microseconds relative to the earliest span, so two
// runs of the same sweep differ only where their measured durations do.
// Thread-name metadata events lead, per-span trace IDs ride in args, and
// every event carries the pid/tid/ph/ts keys Perfetto requires.
func (c *Collector) WriteChromeTrace(w io.Writer) error {
	c.mu.Lock()
	spans := make([]Span, len(c.spans))
	copy(spans, c.spans)
	threads := make(map[int]string, len(c.threads))
	for k, v := range c.threads {
		threads[k] = v
	}
	c.mu.Unlock()

	var base time.Time
	for _, s := range spans {
		if base.IsZero() || s.Start.Before(base) {
			base = s.Start
		}
	}
	sort.SliceStable(spans, func(i, j int) bool {
		if spans[i].TID != spans[j].TID {
			return spans[i].TID < spans[j].TID
		}
		if !spans[i].Start.Equal(spans[j].Start) {
			return spans[i].Start.Before(spans[j].Start)
		}
		return spans[i].Name < spans[j].Name
	})
	tids := make([]int, 0, len(threads))
	for tid := range threads {
		tids = append(tids, tid)
	}
	sort.Ints(tids)

	bw := &errWriter{w: w}
	bw.str(`{"displayTimeUnit":"ms","traceEvents":[`)
	first := true
	sep := func() {
		if !first {
			bw.str(",")
		}
		first = false
	}
	for _, tid := range tids {
		sep()
		bw.str(`{"name":"thread_name","ph":"M","pid":1,"tid":`)
		bw.str(strconv.Itoa(tid))
		bw.str(`,"args":{"name":`)
		bw.jsonString(threads[tid])
		bw.str(`}}`)
	}
	for _, s := range spans {
		sep()
		bw.str(`{"name":`)
		bw.jsonString(s.Name)
		bw.str(`,"cat":`)
		bw.jsonString(s.Cat)
		if s.Instant {
			bw.str(`,"ph":"i","s":"t","ts":`)
			bw.str(strconv.FormatInt(s.Start.Sub(base).Microseconds(), 10))
		} else {
			bw.str(`,"ph":"X","ts":`)
			bw.str(strconv.FormatInt(s.Start.Sub(base).Microseconds(), 10))
			bw.str(`,"dur":`)
			bw.str(strconv.FormatInt(s.Dur.Microseconds(), 10))
		}
		bw.str(`,"pid":1,"tid":`)
		bw.str(strconv.Itoa(s.TID))
		bw.str(`,"args":{"trace_id":`)
		bw.jsonString(s.TraceID)
		for _, a := range s.Args {
			bw.str(",")
			bw.jsonString(a.Key)
			bw.str(":")
			bw.jsonValue(a.Value)
		}
		bw.str(`}}`)
	}
	bw.str("]}\n")
	return bw.err
}

// errWriter accumulates the first write error so the export code stays
// linear instead of checking every Fprint.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) str(s string) {
	if e.err != nil {
		return
	}
	_, e.err = io.WriteString(e.w, s)
}

func (e *errWriter) jsonString(s string) {
	b, err := json.Marshal(s)
	if err != nil { // cannot happen for a string
		e.str(`""`)
		return
	}
	e.str(string(b))
}

func (e *errWriter) jsonValue(v any) {
	b, err := json.Marshal(v)
	if err != nil {
		e.jsonString(fmt.Sprintf("%v", v))
		return
	}
	e.str(string(b))
}
