// Package prefetch implements the L1-I prefetchers the paper compares
// against: the next-N-line prefetcher, the discontinuity prefetcher (DIP,
// Spracklen et al.), and the temporal-streaming prefetchers PIF (private
// metadata) and SHIFT (LLC-virtualised shared metadata). All plug into the
// front-end engine through its Prefetcher hook interface.
package prefetch

import (
	"boomsim/internal/cache"
	"boomsim/internal/isa"
	"boomsim/internal/stats"
)

// NextLine prefetches the N lines following every demand access — the
// classic sequential prefetcher that covers the "sequential" share of miss
// cycles (40-54% in Figure 3) but none of the discontinuities.
type NextLine struct {
	hier *cache.Hierarchy
	n    int

	// Issued counts prefetches accepted by the hierarchy.
	Issued uint64
}

// NewNextLine builds a next-N-line prefetcher. The paper's configurations
// use next-2 (their DIP pairing found next-2 more accurate than next-4).
func NewNextLine(hier *cache.Hierarchy, n int) *NextLine {
	if n < 1 {
		n = 1
	}
	return &NextLine{hier: hier, n: n}
}

// Name implements frontend.Prefetcher.
func (p *NextLine) Name() string { return "next-line" }

// OnDemand implements frontend.Prefetcher.
func (p *NextLine) OnDemand(line uint64, miss bool, class isa.DiscontinuityClass, now int64) {
	for i := 1; i <= p.n; i++ {
		if p.hier.Prefetch(line+uint64(i), now) {
			p.Issued++
		}
	}
}

// OnRetire implements frontend.Prefetcher.
func (p *NextLine) OnRetire(uint64, int64) {}

// Tick implements frontend.Prefetcher.
func (p *NextLine) Tick(int64) {}

// NextEvent implements frontend.Prefetcher: next-line issues synchronously
// inside OnDemand, so Tick never has scheduled work.
func (p *NextLine) NextEvent(int64) int64 { return cache.NoEvent }

// PublishStats registers the prefetcher's counters under its namespace of
// the per-component statistics registry.
func (p *NextLine) PublishStats(r *stats.Registry) {
	r.SetUint("degree", uint64(p.n))
	r.SetUint("issued", p.Issued)
}

// DIP is the discontinuity prefetcher: a table keyed by the line preceding a
// control-flow discontinuity, storing the discontinuity's target line. On a
// demand access to a trigger line, the recorded target (and its successor)
// are prefetched. Spracklen et al. pair it with a sequential prefetcher; per
// the paper's methodology we use next-2-line.
type DIP struct {
	hier    *cache.Hierarchy
	table   []dipEntry
	mask    uint64
	seq     *NextLine
	prev    uint64
	havePrv bool

	// Trained counts table installs; Triggered counts prefetch activations.
	Trained   uint64
	Triggered uint64
}

type dipEntry struct {
	tag    uint64
	target uint64
	valid  bool
}

// NewDIP builds a discontinuity prefetcher with the given table capacity
// (8K entries for maximum coverage per the paper) and next-2-line pairing.
func NewDIP(hier *cache.Hierarchy, entries int) *DIP {
	n := 1
	for n*2 <= entries {
		n *= 2
	}
	return &DIP{
		hier:  hier,
		table: make([]dipEntry, n),
		mask:  uint64(n - 1),
		seq:   NewNextLine(hier, 2),
	}
}

// Name implements frontend.Prefetcher.
func (p *DIP) Name() string { return "dip" }

// OnDemand implements frontend.Prefetcher: trains on discontinuity misses and
// triggers on table hits.
func (p *DIP) OnDemand(line uint64, miss bool, class isa.DiscontinuityClass, now int64) {
	p.seq.OnDemand(line, miss, class, now)

	if p.havePrv {
		isDiscontinuity := line != p.prev && line != p.prev+1
		if isDiscontinuity && miss {
			e := &p.table[p.prev&p.mask]
			e.tag = p.prev
			e.target = line
			e.valid = true
			p.Trained++
		}
	}
	p.prev = line
	p.havePrv = true

	if e := &p.table[line&p.mask]; e.valid && e.tag == line {
		p.Triggered++
		p.hier.Prefetch(e.target, now)
		p.hier.Prefetch(e.target+1, now)
	}
}

// OnRetire implements frontend.Prefetcher.
func (p *DIP) OnRetire(uint64, int64) {}

// Tick implements frontend.Prefetcher.
func (p *DIP) Tick(int64) {}

// NextEvent implements frontend.Prefetcher: DIP issues synchronously inside
// OnDemand, so Tick never has scheduled work.
func (p *DIP) NextEvent(int64) int64 { return cache.NoEvent }

// TableEntries returns the table capacity (storage accounting).
func (p *DIP) TableEntries() int { return len(p.table) }

// PublishStats registers the prefetcher's counters under its namespace of
// the per-component statistics registry.
func (p *DIP) PublishStats(r *stats.Registry) {
	r.SetUint("trained", p.Trained)
	r.SetUint("triggered", p.Triggered)
	r.SetUint("table_entries", uint64(len(p.table)))
	r.SetUint("seq_issued", p.seq.Issued)
}
