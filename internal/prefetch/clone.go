// Clone support: deep copies of prefetcher state so a warmed instance can be
// forked and advanced without perturbing the original (see internal/sim's
// warm-state arena). Prefetchers hold a reference to the hierarchy they
// issue into, so each CloneFor takes the cloned hierarchy it should target.
package prefetch

import "boomsim/internal/cache"

// CloneFor returns an independent copy issuing into hier.
func (p *NextLine) CloneFor(hier *cache.Hierarchy) *NextLine {
	c := *p
	c.hier = hier
	return &c
}

// CloneFor returns an independent deep copy issuing into hier.
func (p *DIP) CloneFor(hier *cache.Hierarchy) *DIP {
	c := *p
	c.hier = hier
	c.table = append([]dipEntry(nil), p.table...)
	c.seq = p.seq.CloneFor(hier)
	return &c
}

// CloneFor returns an independent deep copy issuing into hier: history
// buffer, index, FIFO bound, stream state and the delayed-issue queue are
// all duplicated.
func (p *Temporal) CloneFor(hier *cache.Hierarchy) *Temporal {
	c := *p
	c.hier = hier
	c.history = append([]uint64(nil), p.history...)
	c.index = make(map[uint64]int, len(p.index))
	for k, v := range p.index {
		c.index[k] = v
	}
	c.indexQ = append(make([]uint64, 0, cap(p.indexQ)), p.indexQ...)
	c.pending = append(make([]pendingPrefetch, 0, cap(p.pending)), p.pending...)
	return &c
}
