package prefetch

import (
	"boomsim/internal/cache"
	"boomsim/internal/isa"
	"boomsim/internal/stats"
)

// TemporalConfig sizes a temporal-streaming instruction prefetcher. It is
// declarative data — the scheme configuration plane serializes it into JSON
// scheme files and wire requests, so the field tags are part of the scheme
// vocabulary.
type TemporalConfig struct {
	// HistoryEntries is the circular instruction-history buffer length in
	// records (32K for PIF/SHIFT per the paper).
	HistoryEntries int `json:"history_entries"`
	// IndexEntries bounds the region -> history-position index (8K).
	IndexEntries int `json:"index_entries"`
	// RegionLines is the spatial-compaction factor: each history record
	// names a region of this many cache lines. PIF records temporal streams
	// of spatial footprints, which is how 32K records cover a multi-MB
	// instruction working set; 1 degenerates to line-granular streaming.
	RegionLines int `json:"region_lines"`
	// Lookahead is how many history records ahead of the stream pointer the
	// prefetcher keeps in flight; it must cover the LLC round trip.
	Lookahead int `json:"lookahead"`
	// MetadataLatency is charged before replay prefetches can issue after a
	// stream (re)start: zero for PIF's core-private metadata, one LLC round
	// trip for SHIFT's LLC-virtualised history (schemes express the latter
	// declaratively via the prefetcher config's metadata_in_llc flag).
	MetadataLatency int64 `json:"metadata_latency,omitempty"`
	// MaxDeviations ends a stream after this many non-matching retire
	// observations that the index cannot re-synchronise.
	MaxDeviations int `json:"max_deviations"`
	// IssueRate caps prefetch lines issued per cycle (stream buffers drain
	// at link bandwidth; bursts spread instead of monopolising the LLC
	// port). 0 means unlimited.
	IssueRate int `json:"issue_rate"`
}

// DefaultPIFConfig matches the paper's PIF sizing (~200KB of private
// metadata: a 32K-record history of spatial footprints plus an index).
func DefaultPIFConfig() TemporalConfig {
	return TemporalConfig{
		HistoryEntries: 32768,
		IndexEntries:   8192,
		RegionLines:    4,
		Lookahead:      8,
		MaxDeviations:  6,
		IssueRate:      4,
	}
}

// DefaultSHIFTConfig matches the paper's SHIFT sizing; metadataLatency must
// be set to the modelled LLC round trip.
func DefaultSHIFTConfig(llcRoundTrip int64) TemporalConfig {
	c := DefaultPIFConfig()
	c.MetadataLatency = llcRoundTrip
	return c
}

// Temporal is a temporal-streaming instruction prefetcher: it records the
// committed fetch stream as a sequence of spatial regions and, on a trigger
// (a demand miss whose region appears in the history), replays the recorded
// stream ahead of the fetch engine. PIF and SHIFT are both instances; they
// differ in where the metadata lives (latency + storage accounting).
type Temporal struct {
	hier *cache.Hierarchy
	cfg  TemporalConfig

	history []uint64 // region numbers
	hpos    int      // next write position
	filled  bool

	index      map[uint64]int // region -> most recent history position
	indexQ     []uint64       // FIFO bound on the index
	lastRegion uint64
	haveLast   bool

	lastDemRegion uint64
	haveLastDem   bool

	// Active stream state.
	active     bool
	streamPos  int // history position of the next expected region
	deviations int

	// Delayed issue queue (metadata latency).
	pending []pendingPrefetch

	// Stats.
	Triggers     uint64
	Replayed     uint64
	Resyncs      uint64
	StaleIndex   uint64
	StreamDeaths uint64
}

type pendingPrefetch struct {
	region  uint64
	issueAt int64
}

// NewTemporal builds a temporal-streaming prefetcher.
func NewTemporal(hier *cache.Hierarchy, cfg TemporalConfig) *Temporal {
	if cfg.HistoryEntries < 16 {
		cfg.HistoryEntries = 16
	}
	if cfg.RegionLines < 1 {
		cfg.RegionLines = 1
	}
	if cfg.Lookahead < 1 {
		cfg.Lookahead = 1
	}
	if cfg.MaxDeviations < 1 {
		cfg.MaxDeviations = 1
	}
	return &Temporal{
		hier:    hier,
		cfg:     cfg,
		history: make([]uint64, cfg.HistoryEntries),
		index:   make(map[uint64]int, cfg.IndexEntries),
	}
}

// PublishStats registers the streamer's counters under its namespace of the
// per-component statistics registry.
func (t *Temporal) PublishStats(r *stats.Registry) {
	r.SetUint("triggers", t.Triggers)
	r.SetUint("replayed", t.Replayed)
	r.SetUint("resyncs", t.Resyncs)
	r.SetUint("stale_index", t.StaleIndex)
	r.SetUint("stream_deaths", t.StreamDeaths)
	r.SetInt("metadata_latency", t.cfg.MetadataLatency)
	r.SetUint("history_entries", uint64(t.cfg.HistoryEntries))
}

// Name implements frontend.Prefetcher.
func (p *Temporal) Name() string {
	if p.cfg.MetadataLatency > 0 {
		return "shift"
	}
	return "pif"
}

func (p *Temporal) regionOf(line uint64) uint64 {
	return line / uint64(p.cfg.RegionLines)
}

// OnRetire implements frontend.Prefetcher: records the committed stream at
// region granularity (deduplicating consecutive repeats). Recording from
// the retire stream is what exposes PIF to pipeline latency around
// mispredictions (the paper's Section III-A observation); the *replay* side
// advances with the fetch stream (OnDemand), like PIF's stream address
// queue being consumed by the fetch engine.
func (p *Temporal) OnRetire(line uint64, now int64) {
	region := p.regionOf(line)
	if p.haveLast && region == p.lastRegion {
		return
	}
	p.lastRegion = region
	p.haveLast = true
	p.record(region)
}

func (p *Temporal) record(region uint64) {
	p.history[p.hpos] = region
	p.setIndex(region, p.hpos)
	p.hpos++
	if p.hpos == len(p.history) {
		p.hpos = 0
		p.filled = true
	}
}

func (p *Temporal) setIndex(region uint64, pos int) {
	if _, exists := p.index[region]; !exists {
		if len(p.indexQ) >= p.cfg.IndexEntries && p.cfg.IndexEntries > 0 {
			evict := p.indexQ[0]
			p.indexQ = p.indexQ[1:]
			delete(p.index, evict)
		}
		p.indexQ = append(p.indexQ, region)
	}
	p.index[region] = pos
}

// lookup returns the history position of the region, validating against the
// circular buffer (a wrapped history invalidates old index entries).
func (p *Temporal) lookup(region uint64) (int, bool) {
	pos, ok := p.index[region]
	if !ok {
		return 0, false
	}
	if p.history[pos] != region {
		p.StaleIndex++
		delete(p.index, region)
		return 0, false
	}
	return pos, true
}

// OnDemand implements frontend.Prefetcher: the fetch stream consumes the
// replay stream — a demanded region matching the stream window advances the
// stream pointer and extends the in-flight prefetch window; a miss outside
// the stream (re)starts replay from the indexed position.
func (p *Temporal) OnDemand(line uint64, miss bool, class isa.DiscontinuityClass, now int64) {
	region := p.regionOf(line)
	if p.active && !(p.haveLastDem && region == p.lastDemRegion) {
		p.advance(region, now)
	}
	p.lastDemRegion = region
	p.haveLastDem = true
	if !miss {
		return
	}
	pos, ok := p.lookup(region)
	if !ok {
		return
	}
	p.Triggers++
	p.active = true
	p.streamPos = p.next(pos)
	p.deviations = 0
	p.replayAhead(now + p.cfg.MetadataLatency)
}

// advance moves the stream pointer when the retire stream follows the
// recorded history, keeping Lookahead records in flight. On deviation it
// first tries to re-synchronise through the index; only sustained unindexed
// deviation kills the stream.
func (p *Temporal) advance(region uint64, now int64) {
	if !p.active {
		return
	}
	pos := p.streamPos
	for i := 0; i < 8; i++ {
		if p.history[pos] == region {
			p.streamPos = p.next(pos)
			p.deviations = 0
			p.replayAhead(now)
			return
		}
		pos = p.next(pos)
	}
	if ipos, ok := p.lookup(region); ok && ipos != p.prevPos() {
		p.Resyncs++
		p.streamPos = p.next(ipos)
		p.deviations = 0
		p.replayAhead(now + p.cfg.MetadataLatency)
		return
	}
	p.deviations++
	if p.deviations > p.cfg.MaxDeviations {
		p.active = false
		p.StreamDeaths++
	}
}

// prevPos returns the history position written most recently.
func (p *Temporal) prevPos() int {
	if p.hpos == 0 {
		return len(p.history) - 1
	}
	return p.hpos - 1
}

// replayAhead issues (or schedules) prefetches for the next Lookahead
// records of the recorded stream.
func (p *Temporal) replayAhead(issueAt int64) {
	pos := p.streamPos
	for i := 0; i < p.cfg.Lookahead; i++ {
		if !p.filled && pos >= p.hpos {
			break // recording has not reached this far yet
		}
		p.pending = append(p.pending, pendingPrefetch{region: p.history[pos], issueAt: issueAt})
		pos = p.next(pos)
	}
}

func (p *Temporal) next(pos int) int {
	pos++
	if pos == len(p.history) {
		return 0
	}
	return pos
}

// Tick implements frontend.Prefetcher: drains the delayed-issue queue at
// the configured issue rate, expanding each region record into its lines.
// A region already fully present costs no issue bandwidth.
func (p *Temporal) Tick(now int64) {
	budget := p.cfg.IssueRate
	if budget == 0 {
		budget = 1 << 30
	}
	issued := 0
	kept := p.pending[:0]
	for i, pp := range p.pending {
		if pp.issueAt > now || issued >= budget {
			kept = append(kept, p.pending[i:]...)
			break
		}
		base := pp.region * uint64(p.cfg.RegionLines)
		for l := 0; l < p.cfg.RegionLines; l++ {
			if p.hier.Prefetch(base+uint64(l), now) {
				issued++
			}
		}
		p.Replayed++
	}
	p.pending = kept
}

// NextEvent implements frontend.Prefetcher: the earliest queued replay's
// issueAt, or cache.NoEvent when the delayed-issue queue is empty. Tick
// drains the queue in order and stops at the first entry still in the
// future, so the head's issueAt is exactly when the next drain happens; a
// head left ready by an exhausted issue budget reports a cycle <= now,
// which keeps the engine ticking per-cycle while issue is backlogged.
func (p *Temporal) NextEvent(int64) int64 {
	if len(p.pending) == 0 {
		return cache.NoEvent
	}
	return p.pending[0].issueAt
}

// StorageKB estimates the dedicated metadata footprint: ~5 bytes per history
// record (region address + footprint bits) plus the index. For SHIFT this
// storage is virtualised into the LLC (the scheme charges LLC capacity
// instead); the number still reports the metadata volume.
func (p *Temporal) StorageKB() int {
	historyB := len(p.history) * 5
	indexB := p.cfg.IndexEntries * 8
	return (historyB + indexB) / 1024
}
