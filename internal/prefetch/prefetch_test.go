package prefetch

import (
	"testing"

	"boomsim/internal/cache"
	"boomsim/internal/config"
	"boomsim/internal/isa"
)

func hier() *cache.Hierarchy {
	return cache.NewHierarchy(config.Default(), 0)
}

// fill returns a time by which a small burst of prefetches issued "now" has
// certainly completed: the memory round trip plus slack for LLC port
// serialisation across the burst.
func fill(h *cache.Hierarchy) int64 {
	c := config.Default()
	return int64(c.LLCLatency + c.MemLatency + 32*c.LLCPortOccupancy)
}

func TestNextLinePrefetchesFollowers(t *testing.T) {
	h := hier()
	p := NewNextLine(h, 2)
	p.OnDemand(100, true, isa.Sequential, 0)
	t1 := fill(h)
	h.Tick(t1)
	if !h.Present(101, t1) || !h.Present(102, t1) {
		t.Fatal("next-2-line did not prefetch the following lines")
	}
	if h.Present(103, t1) {
		t.Fatal("next-2-line prefetched too far")
	}
}

func TestNextLineClampsDegree(t *testing.T) {
	p := NewNextLine(hier(), 0)
	if p.n != 1 {
		t.Fatal("degree must clamp to >= 1")
	}
}

func TestDIPLearnsDiscontinuity(t *testing.T) {
	h := hier()
	p := NewDIP(h, 8192)
	// Training pass: access 10 then jump to 500 (a miss).
	p.OnDemand(10, true, isa.Sequential, 0)
	p.OnDemand(500, true, isa.Unconditional, 1)
	if p.Trained != 1 {
		t.Fatalf("trained %d entries, want 1", p.Trained)
	}
	// Trigger pass: re-access 10 -> target 500 (and 501) prefetched.
	p.OnDemand(10, false, isa.Sequential, 2)
	if p.Triggered != 1 {
		t.Fatalf("triggered %d, want 1", p.Triggered)
	}
	t1 := fill(h) + 2
	h.Tick(t1)
	if !h.Present(500, t1) || !h.Present(501, t1) {
		t.Fatal("DIP did not prefetch the discontinuity target")
	}
}

func TestDIPIgnoresSequentialAndHits(t *testing.T) {
	h := hier()
	p := NewDIP(h, 1024)
	p.OnDemand(10, true, isa.Sequential, 0)
	p.OnDemand(11, true, isa.Sequential, 1) // sequential: not a discontinuity
	if p.Trained != 0 {
		t.Fatal("DIP trained on a sequential transition")
	}
	p.OnDemand(600, false, isa.Unconditional, 2) // discontinuity but a hit
	if p.Trained != 0 {
		t.Fatal("DIP trained on a non-miss discontinuity")
	}
}

func TestDIPTableCollision(t *testing.T) {
	h := hier()
	p := NewDIP(h, 16)
	// Two triggers mapping to the same slot: the later wins, the earlier no
	// longer triggers.
	a, b := uint64(5), uint64(5+16)
	p.OnDemand(a, true, isa.Sequential, 0)
	p.OnDemand(900, true, isa.Unconditional, 1)
	p.OnDemand(b, true, isa.Sequential, 2)
	p.OnDemand(950, true, isa.Unconditional, 3)
	p.OnDemand(a, false, isa.Sequential, 4)
	if p.Triggered != 0 {
		t.Fatal("evicted DIP entry still triggered")
	}
	p.OnDemand(b, false, isa.Sequential, 5)
	if p.Triggered != 1 {
		t.Fatal("surviving DIP entry did not trigger")
	}
}

// lineCfg returns a line-granular (RegionLines=1) config with unlimited
// issue rate so the classic stream tests exercise mechanics, not pacing.
func lineCfg() TemporalConfig {
	c := DefaultPIFConfig()
	c.RegionLines = 1
	c.IssueRate = 0
	return c
}

func retireSeq(p *Temporal, lines []uint64, start int64) int64 {
	now := start
	for _, l := range lines {
		p.OnRetire(l, now)
		p.Tick(now)
		now++
	}
	return now
}

func TestTemporalRecordsAndReplays(t *testing.T) {
	h := hier()
	cfg := lineCfg()
	cfg.Lookahead = 4
	p := NewTemporal(h, cfg)
	stream := []uint64{100, 101, 205, 206, 310, 311, 400}
	now := retireSeq(p, stream, 0)

	// Trigger: demand miss on the stream head replays successors.
	p.OnDemand(100, true, isa.Sequential, now)
	p.Tick(now)
	if p.Triggers != 1 {
		t.Fatalf("triggers = %d", p.Triggers)
	}
	end := now + fill(h)
	h.Tick(end)
	for _, l := range []uint64{101, 205, 206, 310} {
		if !h.Present(l, end) {
			t.Fatalf("replayed line %d not prefetched", l)
		}
	}
}

func demandSeq(p *Temporal, lines []uint64, start int64) int64 {
	now := start
	for _, l := range lines {
		p.OnDemand(l, false, isa.Sequential, now)
		p.Tick(now)
		now++
	}
	return now
}

func TestTemporalAdvancesWithFetchStream(t *testing.T) {
	// The replay stream is consumed by the fetch engine (PIF's stream
	// address queue): demand accesses matching the recorded stream advance
	// it and keep the lookahead window in flight.
	h := hier()
	cfg := lineCfg()
	cfg.Lookahead = 2
	p := NewTemporal(h, cfg)
	stream := []uint64{10, 20, 30, 40, 50, 60, 70, 80}
	now := retireSeq(p, stream, 0)

	p.OnDemand(10, true, isa.Sequential, now)
	p.Tick(now)
	// Follow the stream with demand accesses; the prefetcher must extend.
	now = demandSeq(p, []uint64{20, 30, 40, 50, 60}, now+1)
	end := now + fill(h)
	h.Tick(end)
	if !h.Present(70, end) {
		t.Fatal("stream did not advance with the fetch stream")
	}
	if p.StreamDeaths != 0 {
		t.Fatal("stream died while being followed")
	}
}

func TestTemporalStreamDiesOnDeviation(t *testing.T) {
	h := hier()
	cfg := lineCfg()
	cfg.MaxDeviations = 2
	p := NewTemporal(h, cfg)
	now := retireSeq(p, []uint64{10, 20, 30, 40, 50}, 0)
	p.OnDemand(10, true, isa.Sequential, now)
	// Demand a completely different, unrecorded stream.
	demandSeq(p, []uint64{900, 910, 920, 930, 940, 950}, now+1)
	if p.StreamDeaths == 0 {
		t.Fatal("deviating stream was never killed")
	}
}

func TestTemporalResyncViaIndex(t *testing.T) {
	// A deviation onto a line the history knows from elsewhere re-syncs the
	// stream instead of killing it.
	h := hier()
	cfg := lineCfg()
	cfg.Lookahead = 2
	p := NewTemporal(h, cfg)
	now := retireSeq(p, []uint64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100,
		110, 500, 510, 520, 530}, 0)
	p.OnDemand(10, true, isa.Sequential, now)
	p.Tick(now)
	// Jump straight to 500 — beyond the stream window, but present in the
	// history with successors.
	demandSeq(p, []uint64{500, 510}, now+1)
	if p.Resyncs == 0 {
		t.Fatal("index re-sync never happened")
	}
	if p.StreamDeaths != 0 {
		t.Fatal("stream died despite a known continuation")
	}
}

func TestTemporalStaleIndexDetected(t *testing.T) {
	h := hier()
	cfg := lineCfg()
	cfg.HistoryEntries = 16
	p := NewTemporal(h, cfg)
	// Record a line, then wrap the history so its record is overwritten.
	p.OnRetire(999, 0)
	for i := uint64(0); i < 20; i++ {
		p.OnRetire(i, int64(i+1))
	}
	p.OnDemand(999, true, isa.Sequential, 100)
	if p.StaleIndex == 0 {
		t.Fatal("stale index entry not detected")
	}
	if p.Triggers != 0 {
		t.Fatal("stale index entry triggered a replay")
	}
}

func TestTemporalIssuePacing(t *testing.T) {
	// With IssueRate=2, a replay burst drains over multiple cycles instead
	// of monopolising the LLC port in one.
	h := hier()
	cfg := DefaultPIFConfig()
	cfg.RegionLines = 1
	cfg.Lookahead = 8
	cfg.IssueRate = 2
	p := NewTemporal(h, cfg)
	now := retireSeq(p, []uint64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}, 0)
	p.OnDemand(10, true, isa.Sequential, now)
	p.Tick(now)
	first := h.Stats().Prefetches
	if first > 2 {
		t.Fatalf("issued %d prefetches in one cycle, cap is 2", first)
	}
	for i := int64(1); i <= 8; i++ {
		p.Tick(now + i)
	}
	if total := h.Stats().Prefetches; total < 6 {
		t.Fatalf("burst never drained: %d prefetches", total)
	}
}

func TestTemporalRegionExpansion(t *testing.T) {
	// With RegionLines=4, replaying one record prefetches the whole region.
	h := hier()
	cfg := DefaultPIFConfig()
	cfg.RegionLines = 4
	cfg.Lookahead = 2
	cfg.IssueRate = 0
	p := NewTemporal(h, cfg)
	// Two regions: lines 0-3 (region 0) and lines 40-43 (region 10).
	now := retireSeq(p, []uint64{0, 40, 80}, 0)
	p.OnDemand(1, true, isa.Sequential, now) // miss in region 0
	p.Tick(now)
	end := now + fill(h)
	h.Tick(end)
	for l := uint64(40); l < 44; l++ {
		if !h.Present(l, end) {
			t.Fatalf("region replay missed line %d", l)
		}
	}
}

func TestSHIFTDelaysReplay(t *testing.T) {
	h := hier()
	llcRT := int64(config.Default().LLCLatency)
	shiftCfg := DefaultSHIFTConfig(llcRT)
	shiftCfg.RegionLines = 1
	p := NewTemporal(h, shiftCfg)
	if p.Name() != "shift" {
		t.Fatal("SHIFT config should name itself shift")
	}
	now := retireSeq(p, []uint64{10, 20, 30, 40}, 0)
	p.OnDemand(10, true, isa.Sequential, now)
	p.Tick(now)
	if p.Replayed != 0 {
		t.Fatal("SHIFT issued replay prefetches before the metadata arrived")
	}
	p.Tick(now + llcRT)
	if p.Replayed == 0 {
		t.Fatal("SHIFT never issued replay prefetches after metadata latency")
	}
}

func TestPIFIssuesImmediately(t *testing.T) {
	h := hier()
	p := NewTemporal(h, lineCfg())
	if p.Name() != "pif" {
		t.Fatal("PIF config should name itself pif")
	}
	now := retireSeq(p, []uint64{10, 20, 30, 40}, 0)
	p.OnDemand(10, true, isa.Sequential, now)
	p.Tick(now)
	if p.Replayed == 0 {
		t.Fatal("PIF replay should issue without metadata latency")
	}
}

func TestTemporalIndexBound(t *testing.T) {
	h := hier()
	cfg := lineCfg()
	cfg.IndexEntries = 8
	p := NewTemporal(h, cfg)
	for i := uint64(0); i < 100; i++ {
		p.OnRetire(i*3, int64(i))
	}
	if len(p.index) > 8 {
		t.Fatalf("index grew to %d entries, bound is 8", len(p.index))
	}
}

func TestTemporalDedupsConsecutiveRetires(t *testing.T) {
	p := NewTemporal(hier(), lineCfg())
	p.OnRetire(5, 0)
	p.OnRetire(5, 1)
	p.OnRetire(5, 2)
	if p.hpos != 1 {
		t.Fatalf("history recorded %d entries for one line", p.hpos)
	}
}

func TestTemporalHistoryWraps(t *testing.T) {
	h := hier()
	cfg := lineCfg()
	cfg.HistoryEntries = 16
	p := NewTemporal(h, cfg)
	for i := uint64(0); i < 40; i++ {
		p.OnRetire(i, int64(i))
	}
	if !p.filled {
		t.Fatal("history should have wrapped")
	}
	// The index for recent lines must point at valid positions.
	pos, ok := p.index[39]
	if !ok || p.history[pos] != 39 {
		t.Fatal("index inconsistent after wrap")
	}
}

func TestTemporalStorageEstimate(t *testing.T) {
	p := NewTemporal(hier(), DefaultPIFConfig())
	kb := p.StorageKB()
	if kb < 150 || kb > 300 {
		t.Fatalf("PIF metadata estimate %d KB, expected ~200 KB", kb)
	}
}

func BenchmarkTemporalRetire(b *testing.B) {
	p := NewTemporal(hier(), DefaultPIFConfig())
	for i := 0; i < b.N; i++ {
		p.OnRetire(uint64(i%4096)*7, int64(i))
	}
}

// TestNextEventContracts pins each prefetcher's event-horizon contract.
// NextLine and DIP act only synchronously inside OnDemand, so they never
// schedule future work; Temporal's delayed-replay queue makes its head's
// issueAt the earliest cycle its Tick can do anything.
func TestNextEventContracts(t *testing.T) {
	h := hier()
	if ev := NewNextLine(h, 2).NextEvent(0); ev != cache.NoEvent {
		t.Fatalf("NextLine.NextEvent = %d, want NoEvent", ev)
	}
	if ev := NewDIP(h, 64).NextEvent(0); ev != cache.NoEvent {
		t.Fatalf("DIP.NextEvent = %d, want NoEvent", ev)
	}

	cfg := lineCfg()
	cfg.Lookahead = 4
	cfg.MetadataLatency = 12
	p := NewTemporal(h, cfg)
	if ev := p.NextEvent(0); ev != cache.NoEvent {
		t.Fatalf("idle Temporal.NextEvent = %d, want NoEvent", ev)
	}
	stream := []uint64{100, 101, 205, 206, 310}
	now := retireSeq(p, stream, 0)

	// A stream-head miss schedules the replay after the metadata round
	// trip: the queue head's issueAt is the next event, and it is exactly
	// when Tick first issues.
	p.OnDemand(100, true, isa.Sequential, now)
	ev := p.NextEvent(now)
	if ev == cache.NoEvent {
		t.Fatal("pending replay must schedule a next event")
	}
	if ev <= now {
		t.Fatalf("replay issueAt %d must be after the trigger at %d (metadata latency)", ev, now)
	}
	p.Tick(ev - 1)
	if got := p.NextEvent(ev - 1); got != ev {
		t.Fatalf("ticking before issueAt must not drain the queue (next event %d, want %d)", got, ev)
	}
	p.Tick(ev)
	if got := p.NextEvent(ev); got != cache.NoEvent {
		t.Fatalf("after the issue cycle the queue must be empty, got %d", got)
	}
}
