// Package sim runs complete simulations: a scheme on a workload under a
// configuration, with a warmup window followed by a measurement window
// (mirroring the paper's SMARTS-style methodology of measuring from warmed
// microarchitectural state). It also provides the comparative metrics the
// figures report — stall-cycle coverage and speedup versus the no-prefetch
// baseline — and a multi-core harness for chip-level throughput.
package sim

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"os"
	"sync"

	"boomsim/internal/cache"
	"boomsim/internal/config"
	"boomsim/internal/frontend"
	"boomsim/internal/prefetch"
	"boomsim/internal/program"
	"boomsim/internal/scheme"
	"boomsim/internal/stats"
	"boomsim/internal/workload"
)

// envNoSkip disables event-horizon cycle skipping process-wide, equivalent
// to DisableCycleSkip on every Spec. CI's golden control leg sets it to
// prove the shipped per-cycle loop still reproduces the corpus bytes.
var envNoSkip = os.Getenv("BOOMSIM_NO_SKIP") == "1"

// Spec describes one simulation.
type Spec struct {
	// Scheme is the configuration under test.
	Scheme scheme.Scheme
	// Workload selects the code image profile.
	Workload workload.Profile
	// Cfg is the core configuration; zero value means config.Default().
	Cfg config.Core
	// ImageSeed/WalkSeed control generation and execution randomness.
	ImageSeed, WalkSeed uint64
	// Predictor overrides the FDIP direction predictor ("" = TAGE).
	Predictor string
	// WarmInstrs run before counters reset; MeasureInstrs are then measured.
	WarmInstrs, MeasureInstrs uint64
	// MaxCycles bounds the measurement window (0 = unbounded).
	MaxCycles int64
	// ReuseWarm lets the run fork memoised warmed state shared with other
	// runs of the same warm-relevant configuration (see the warm arena in
	// warm.go) instead of re-simulating the warm window. Results are
	// byte-identical either way — a fork is indistinguishable from a fresh
	// warm — so this is purely a wall-clock optimisation. DefaultSpec enables
	// it; the zero value is off so hand-built Specs opt in explicitly.
	ReuseWarm bool
	// FlightEvery, when > 0, attaches the flight recorder to the measurement
	// window: windowed counter deltas every FlightEvery cycles, returned as
	// Result.Epochs. It is warm-irrelevant (recording starts after the warm
	// boundary), so recorded and unrecorded runs share warm-arena masters;
	// the measured counters themselves are unaffected.
	FlightEvery int64
	// DisableCycleSkip forces the per-cycle interpretation loop instead of
	// event-horizon cycle skipping (see internal/frontend/skip.go). Results
	// are byte-identical either way — the flag exists for control runs and
	// per-cycle debugging — so the zero value keeps skipping on. It IS
	// warm-relevant for the arena key: skip-on and skip-off runs never share
	// a warm master, keeping the control arm's provenance entirely separate.
	DisableCycleSkip bool
}

// DefaultSpec fills in the standard methodology: Table I config, 200K warm
// instructions, 1M measured.
func DefaultSpec(s scheme.Scheme, w workload.Profile) Spec {
	return Spec{
		Scheme:        s,
		Workload:      w,
		Cfg:           config.Default(),
		ImageSeed:     1,
		WalkSeed:      1,
		WarmInstrs:    200_000,
		MeasureInstrs: 1_000_000,
		MaxCycles:     0,
		ReuseWarm:     true,
	}
}

// Result is one simulation's outcome.
type Result struct {
	SchemeName   string
	WorkloadName string
	Stats        frontend.Stats
	Hier         cache.HierarchyStats
	IPC          float64
	// PredecodedLines counts cache lines run through a predecoder
	// (Boomerang's miss scans; zero for schemes without one).
	PredecodedLines uint64
	// PrefetchMetaBytes estimates prefetcher metadata moved (temporal
	// streamers: history records written plus replayed, ~5B each).
	PrefetchMetaBytes uint64
	// Registry holds every component's counters under its own namespace
	// (frontend, bpu, cache, btb, prefetch, boomerang, ...): the
	// full-fidelity measurement plane the headline fields above are a
	// projection of.
	Registry *stats.Registry
	// Epochs is the flight-recorder timeline (nil unless Spec.FlightEvery
	// was set): windowed counter deltas tiling the measurement window.
	Epochs []frontend.Epoch
}

// The image cache memoises generated images: experiments run many schemes
// over the same workload and image generation is the expensive part. Each
// entry carries a sync.Once so concurrent runs of the same (workload, seed)
// — the common case under the parallel experiment runner — generate the
// image exactly once instead of racing to do duplicate work.
//
// The cache is bounded (LRU): long-running services expose the key's
// parameters (footprint, image seed) to clients, and an unbounded cache of
// multi-megabyte images would grow monotonically under a parameter sweep.
// An evicted-while-generating entry still completes for the runs holding
// it; it is simply not shared afterwards.
const imageCacheEntries = 32

var (
	imageMu    sync.Mutex
	imageLRU   = list.New() // front = most recently used; values are *imageCacheEntry
	imageIndex = map[string]*list.Element{}
)

type imageCacheEntry struct {
	key  string
	once sync.Once
	img  *program.Image
	err  error
}

func imageFor(p workload.Profile, seed uint64) (*program.Image, error) {
	// The key covers the full generator parameterisation, not just the
	// profile name: public-API callers can override the footprint (or
	// register same-named variants), and those must not share an image.
	key := fmt.Sprintf("%s/%d/%+v", p.Name, seed, p.Gen)
	imageMu.Lock()
	var e *imageCacheEntry
	if el, ok := imageIndex[key]; ok {
		imageLRU.MoveToFront(el)
		e = el.Value.(*imageCacheEntry)
	} else {
		e = &imageCacheEntry{key: key}
		imageIndex[key] = imageLRU.PushFront(e)
		for imageLRU.Len() > imageCacheEntries {
			oldest := imageLRU.Back()
			imageLRU.Remove(oldest)
			delete(imageIndex, oldest.Value.(*imageCacheEntry).key)
		}
	}
	imageMu.Unlock()
	// Generation runs outside the lock; the Once makes concurrent callers
	// of the same entry share one generation.
	e.once.Do(func() {
		e.img, e.err = p.Image(seed)
	})
	return e.img, e.err
}

// Hooks customises a context-aware run. The zero value means "no
// observation": the simulation runs in one uninterrupted stretch.
type Hooks struct {
	// ProgressEvery is the instruction granularity (within the measurement
	// window) at which the run checks ctx and reports progress. 0 uses
	// DefaultProgressEvery when the context is cancellable or Progress is
	// set, and disables chunking otherwise.
	ProgressEvery uint64
	// Progress, if non-nil, is called after every chunk with the retired
	// instruction count so far and the measurement target. It runs on the
	// simulating goroutine; keep it cheap.
	Progress func(done, total uint64)
	// OnWarm, if non-nil, is called once when the warmed instance is
	// resolved, with "fork" (served from the warm arena) or "fresh" (warmed
	// privately). It exists for observability — trace spans record how a
	// cell's warm state was obtained — and runs on the simulating goroutine.
	OnWarm func(source string)
}

// DefaultProgressEvery is the chunk size used when Hooks.ProgressEvery is
// zero but chunking is needed. At ~150ns/instruction it bounds cancellation
// latency to single-digit milliseconds.
const DefaultProgressEvery = 50_000

// Run executes one simulation.
func Run(spec Spec) (Result, error) {
	return RunContext(context.Background(), spec, Hooks{})
}

// RunContext executes one simulation with cooperative cancellation: the
// simulation loop checks ctx every Hooks.ProgressEvery retired instructions
// (warmup and measurement alike) and returns ctx's error if it fired.
func RunContext(ctx context.Context, spec Spec, h Hooks) (Result, error) {
	if spec.Cfg == (config.Core{}) {
		spec.Cfg = config.Default()
	}
	if err := spec.Cfg.Validate(); err != nil {
		return Result{}, err
	}
	// Schemes are declarative data that may arrive from JSON files or wire
	// requests; validate before the generic builder interprets (and would
	// panic on) a malformed config.
	if err := spec.Scheme.Validate(); err != nil {
		return Result{}, err
	}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	chunk := h.ProgressEvery
	if chunk == 0 && (ctx.Done() != nil || h.Progress != nil) {
		chunk = DefaultProgressEvery
	}

	var inst *scheme.Instance
	if spec.ReuseWarm {
		f, err, ok := forkWarm(ctx, spec, chunk)
		if err != nil {
			return Result{}, err
		}
		if ok {
			inst = f
		}
	}
	warmSource := "fork"
	if inst == nil {
		var err error
		inst, err = buildWarm(ctx, spec, chunk)
		if err != nil {
			return Result{}, err
		}
		warmSource = "fresh"
	}
	if h.OnWarm != nil {
		h.OnWarm(warmSource)
	}
	// The recorder attaches after the warm boundary (buildWarm resets stats
	// post-warm; forks inherit that reset), so epoch zero starts at measured
	// cycle zero and epochs tile exactly the measurement window.
	if spec.FlightEvery > 0 {
		inst.Engine.StartFlightRecorder(spec.FlightEvery, 0)
	}
	if err := runWindow(ctx, inst.Engine, spec.MeasureInstrs, spec.MaxCycles, chunk, h.Progress); err != nil {
		return Result{}, err
	}
	r := collectResult(spec, inst)
	if spec.FlightEvery > 0 {
		r.Epochs = inst.Engine.StopFlightRecorder()
	}
	return r, nil
}

// buildWarm performs everything up to the measurement window: image
// generation, scheme construction, LLC preload, the warm window and the
// stats reset. It is both RunContext's non-shared path and the builder the
// warm arena memoises masters with.
func buildWarm(ctx context.Context, spec Spec, chunk uint64) (*scheme.Instance, error) {
	img, err := imageFor(spec.Workload, spec.ImageSeed)
	if err != nil {
		return nil, err
	}
	inst := spec.Scheme.Build(scheme.Env{
		Cfg:       spec.Cfg,
		Img:       img,
		WalkSeed:  spec.WalkSeed,
		Predictor: spec.Predictor,
	})
	// Applied before the warm window so warm and measurement run the same
	// loop; BOOMSIM_NO_SKIP=1 disables skipping process-wide (the CI golden
	// control leg uses it to exercise the per-cycle loop end to end).
	inst.Engine.SetCycleSkip(!spec.DisableCycleSkip && !envNoSkip)
	// The paper measures from SMARTS checkpoints with warmed caches: all 16
	// cores run the same binary, so its text is LLC-resident. Preload it.
	warmLLCWithImage(inst, img)
	if spec.WarmInstrs > 0 {
		if err := runWindow(ctx, inst.Engine, spec.WarmInstrs, 0, chunk, nil); err != nil {
			return nil, err
		}
		inst.Engine.ResetStats()
	}
	return inst, nil
}

// collectResult assembles a Result from an instance whose measurement window
// has completed.
func collectResult(spec Spec, inst *scheme.Instance) Result {
	st := inst.Engine.Stats()
	r := Result{
		SchemeName:   spec.Scheme.Name,
		WorkloadName: spec.Workload.Name,
		Stats:        st,
		Hier:         inst.Hier.Stats(),
		IPC:          st.IPC(),
	}
	if inst.Boom != nil {
		r.PredecodedLines = inst.Boom.Stats().LinesScanned
	}
	if inst.Predec != nil {
		r.PredecodedLines += inst.Predec.LinesDecoded
	}
	if tp, ok := inst.PF.(*prefetch.Temporal); ok {
		// One ~5-byte record written per recorded region and read per
		// replayed record.
		r.PrefetchMetaBytes = 5 * (tp.Replayed + tp.Triggers)
	}
	// Collect the per-component registry once, after the measurement window:
	// the hot loop never touches it.
	reg := stats.NewRegistry()
	inst.PublishStats(reg)
	r.Registry = reg
	return r
}

// ErrNoProgress reports a simulation window that stopped retiring
// instructions: a chunk ran to its full cycle allowance without a single
// retirement, which no healthy configuration does (worst-case miss chains
// retire orders of magnitude faster). It indicates a wedged engine — a
// malformed scheme or a simulator bug — not a slow workload.
var ErrNoProgress = errors.New("sim: simulation made no forward progress")

// windowEngine is the slice of frontend.Engine that runWindow drives. Run
// advances until target instructions have retired since the last stats reset
// or the absolute cycle bound is reached, whichever is first.
type windowEngine interface {
	Run(targetInstrs uint64, maxCycles int64) frontend.Stats
}

// Cycle allowance granted to a chunk before it is declared wedged: chunk
// instructions at an IPC far below any real configuration (the worst
// memory-bound runs stay under ~50 cycles/instruction; the allowance grants
// 400), floored high enough that even a single-instruction chunk can absorb
// a full squash-plus-memory-miss chain many times over.
const (
	noProgressCyclesPerInstr = 400
	noProgressCycleFloor     = 1 << 20
)

// runWindow advances the engine until target instructions have retired
// since the last stats reset (or maxCycles elapsed), in chunks of chunk
// instructions with a ctx check between chunks. chunk == 0 runs the whole
// window in one call with no checks — the hot path stays branch-free.
//
// With chunking and no cycle bound, each chunk runs under a synthetic cycle
// allowance so that a wedged engine — one that stops retiring entirely —
// returns control instead of spinning inside Engine.Run forever; a chunk
// that exhausts its allowance without retiring anything fails with
// ErrNoProgress. Healthy runs never come near the allowance, so their cycle
// trajectory (and every result) is unchanged.
func runWindow(ctx context.Context, eng windowEngine, target uint64, maxCycles int64, chunk uint64, progress func(done, total uint64)) error {
	if chunk == 0 {
		eng.Run(target, maxCycles)
		return nil
	}
	done := uint64(0)
	prevCycles := int64(0)
	for {
		next := done + chunk
		if next > target {
			next = target
		}
		budget := maxCycles
		if budget == 0 {
			// Engine.Run's bound is absolute (cycles since the last stats
			// reset), so the allowance extends from the cycles already spent.
			allowance := int64(chunk) * noProgressCyclesPerInstr
			if allowance < noProgressCycleFloor {
				allowance = noProgressCycleFloor
			}
			budget = prevCycles + allowance
		}
		st := eng.Run(next, budget)
		if err := ctx.Err(); err != nil {
			return err
		}
		if progress != nil {
			reached := st.RetiredInstrs
			if reached > target {
				reached = target
			}
			progress(reached, target)
		}
		if st.RetiredInstrs >= target {
			return nil
		}
		if maxCycles > 0 && st.Cycles >= maxCycles {
			return nil // cycle budget exhausted before the instruction target
		}
		if st.RetiredInstrs == done {
			return fmt.Errorf("%w: %d instructions retired after %d cycles (target %d)",
				ErrNoProgress, st.RetiredInstrs, st.Cycles, target)
		}
		done = st.RetiredInstrs
		prevCycles = st.Cycles
	}
}

func warmLLCWithImage(inst *scheme.Instance, img *program.Image) {
	lines := make([]cache.Line, 0, (img.Limit-img.Base)/64+1)
	for addr := img.Base; addr < img.Limit; addr += 64 {
		lines = append(lines, cache.LineOf(addr))
	}
	inst.Hier.WarmLLC(lines)
}

// WarmInstance performs everything Run does up to the measurement window —
// image generation, scheme construction, LLC preload, the warm window, the
// stats reset — and hands back the warmed instance. Benchmarks drive
// inst.Engine.Run directly from there, so setup and warm-up cost stay out
// of the timed region and the measured loop is genuinely steady-state.
func WarmInstance(spec Spec) (*scheme.Instance, error) {
	if spec.Cfg == (config.Core{}) {
		spec.Cfg = config.Default()
	}
	if err := spec.Cfg.Validate(); err != nil {
		return nil, err
	}
	if err := spec.Scheme.Validate(); err != nil {
		return nil, err
	}
	return buildWarm(context.Background(), spec, 0)
}

// MustRun is Run for tests and examples with known-good specs.
func MustRun(spec Spec) Result {
	r, err := Run(spec)
	if err != nil {
		panic(err)
	}
	return r
}

// Speedup returns r's performance relative to base (same workload).
func Speedup(base, r Result) float64 {
	if base.IPC == 0 {
		return 0
	}
	return r.IPC / base.IPC
}

// Coverage returns the fraction of the baseline's front-end stall cycles
// that r eliminated — the paper's "stall cycles covered" metric. Stall
// cycles are normalised per retired instruction so windows of different
// lengths compare fairly. When the baseline barely stalls (e.g. an LLC
// latency below the pipelined L1-I hit time) there is nothing to cover and
// the metric is defined as zero rather than a noise-amplified ratio.
func Coverage(base, r Result) float64 {
	return CoverageFromStalls(base.Stats.FetchStallCycles, base.Stats.RetiredInstrs,
		r.Stats.FetchStallCycles, r.Stats.RetiredInstrs)
}

// CoverageFromStalls is the coverage metric on raw counters. It is the one
// definition of the formula — the public boomsim package computes coverage
// from its own Result type through this function, so the noise floor and
// normalisation stay calibrated in exactly one place.
func CoverageFromStalls(baseStalls, baseInstrs, stalls, instrs uint64) float64 {
	const floor = 0.002 // stall cycles per instruction
	b := stallsPerInstr(baseStalls, baseInstrs)
	if b < floor {
		return 0
	}
	return 1 - stallsPerInstr(stalls, instrs)/b
}

func stallsPerInstr(stalls, instrs uint64) float64 {
	if instrs == 0 {
		return 0
	}
	return float64(stalls) / float64(instrs)
}

// CMPSpec describes a chip-level run: N independent cores executing the
// same workload from distinct walk seeds (the paper's homogeneous server
// consolidation), each with its share of the shared LLC.
type CMPSpec struct {
	Spec
	Cores int
}

// CMPResult aggregates chip throughput: the paper measures the ratio of
// application instructions to total cycles.
type CMPResult struct {
	PerCore []Result
	// Throughput is total retired instructions divided by the slowest
	// core's cycles (all cores run the same instruction budget).
	Throughput float64
}

// RunCMP runs the cores concurrently (they are microarchitecturally
// independent; sharing is modelled through the LLC capacity each hierarchy
// is built with).
func RunCMP(spec CMPSpec) (CMPResult, error) {
	return RunCMPContext(context.Background(), spec, Hooks{})
}

// RunCMPContext is RunCMP with cooperative cancellation: every core's
// simulation loop checks ctx at h.ProgressEvery granularity, so canceling
// stops the whole chip promptly. h.Progress is not propagated — the cores
// run concurrently, so per-core progress callbacks would interleave
// meaninglessly.
//
// Per-core errors reduce under the same policy RunMatrix documents: genuine
// simulation failures outrank cancellation noise, and among genuine failures
// the lowest core index wins, so the same failure surfaces no matter how the
// cores' cancellations interleave.
func RunCMPContext(ctx context.Context, spec CMPSpec, h Hooks) (CMPResult, error) {
	if spec.Cores <= 0 {
		spec.Cores = config.DefaultCMP().Cores
	}
	results := make([]Result, spec.Cores)
	errs := make([]error, spec.Cores)
	var wg sync.WaitGroup
	for i := 0; i < spec.Cores; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s := spec.Spec
			s.WalkSeed = spec.WalkSeed + uint64(i)*7919
			// All cores execute the same binary, so the shared LLC holds one
			// copy of the code: each core sees the full capacity for
			// instructions (the paper's homogeneous-consolidation setup).
			results[i], errs[i] = RunContext(ctx, s, Hooks{ProgressEvery: h.ProgressEvery})
		}(i)
	}
	wg.Wait()
	if err := firstGenuineError(errs); err != nil {
		return CMPResult{}, err
	}
	var instrs uint64
	var maxCycles int64
	for _, r := range results {
		instrs += r.Stats.RetiredInstrs
		if r.Stats.Cycles > maxCycles {
			maxCycles = r.Stats.Cycles
		}
	}
	out := CMPResult{PerCore: results}
	if maxCycles > 0 {
		out.Throughput = float64(instrs) / float64(maxCycles)
	}
	return out, nil
}

// firstGenuineError reduces per-worker errors under the matrix policy:
// genuine simulation failures outrank cancellation noise and the lowest
// index wins; when only cancellation remains, the lowest-index cancellation
// is returned. At this layer cancellation appears as the raw context
// sentinels (the public package wraps them in its ErrCanceled afterwards).
func firstGenuineError(errs []error) error {
	var cancel error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			if cancel == nil {
				cancel = err
			}
			continue
		}
		return err
	}
	return cancel
}
