package sim

import (
	"testing"

	"boomsim/internal/config"
	"boomsim/internal/frontend"
	"boomsim/internal/program"
	"boomsim/internal/scheme"
	"boomsim/internal/workload"
)

// fastProfile shrinks a workload for test runtime while keeping its shape.
func fastProfile(name string) workload.Profile {
	p, ok := workload.ByName(name)
	if !ok {
		panic("unknown workload " + name)
	}
	p.Gen.FootprintKB = 384
	p.Name = name + "-test"
	return p
}

func fastSpec(s scheme.Scheme, w workload.Profile) Spec {
	spec := DefaultSpec(s, w)
	spec.WarmInstrs = 100_000
	spec.MeasureInstrs = 400_000
	spec.MaxCycles = 50_000_000
	return spec
}

func TestRunAllSchemes(t *testing.T) {
	w := fastProfile("Apache")
	for _, s := range scheme.All() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			r := MustRun(fastSpec(s, w))
			if r.Stats.RetiredInstrs < 400_000 {
				t.Fatalf("%s retired only %d", s.Name, r.Stats.RetiredInstrs)
			}
			if r.IPC <= 0 || r.IPC > 3 {
				t.Fatalf("%s IPC %v implausible", s.Name, r.IPC)
			}
		})
	}
}

func TestSchemeOrdering(t *testing.T) {
	// The headline sanity property: every prefetching scheme beats Base,
	// and the full control-flow-delivery schemes (Boomerang) beat plain
	// FDIP on a BTB-pressured workload.
	w := fastProfile("DB2")
	base := MustRun(fastSpec(scheme.Base(), w))
	fdip := MustRun(fastSpec(scheme.FDIP(), w))
	boom := MustRun(fastSpec(scheme.Boomerang(), w))

	if s := Speedup(base, fdip); s <= 1.0 {
		t.Fatalf("FDIP speedup %v <= 1", s)
	}
	if s := Speedup(base, boom); s <= 1.0 {
		t.Fatalf("Boomerang speedup %v <= 1", s)
	}
	if boom.IPC <= fdip.IPC {
		t.Fatalf("Boomerang (%.3f) must beat FDIP (%.3f) on a BTB-heavy workload",
			boom.IPC, fdip.IPC)
	}
}

func TestBoomerangKillsBTBMissSquashes(t *testing.T) {
	w := fastProfile("DB2")
	fdip := MustRun(fastSpec(scheme.FDIP(), w))
	boom := MustRun(fastSpec(scheme.Boomerang(), w))
	fRate := fdip.Stats.SquashesPerKI(frontend.SquashBTBMiss)
	bRate := boom.Stats.SquashesPerKI(frontend.SquashBTBMiss)
	if fRate == 0 {
		t.Fatal("FDIP should suffer BTB-miss squashes on DB2")
	}
	reduction := 1 - bRate/fRate
	if reduction < 0.85 {
		t.Fatalf("Boomerang eliminated only %.0f%% of BTB-miss squashes (paper: >85%%)",
			reduction*100)
	}
}

func TestConfluenceReducesBTBMissSquashes(t *testing.T) {
	w := fastProfile("Apache")
	shift := MustRun(fastSpec(scheme.SHIFT(), w))
	conf := MustRun(fastSpec(scheme.Confluence(), w))
	sRate := shift.Stats.SquashesPerKI(frontend.SquashBTBMiss)
	cRate := conf.Stats.SquashesPerKI(frontend.SquashBTBMiss)
	if cRate >= sRate {
		t.Fatalf("Confluence BTB-miss squash rate %.2f >= SHIFT %.2f", cRate, sRate)
	}
}

func TestCoverageMetric(t *testing.T) {
	w := fastProfile("Zeus")
	base := MustRun(fastSpec(scheme.Base(), w))
	fdip := MustRun(fastSpec(scheme.FDIP(), w))
	cov := Coverage(base, fdip)
	if cov < 0.2 || cov > 1 {
		t.Fatalf("FDIP coverage %v out of plausible range", cov)
	}
	if Coverage(base, base) != 0 {
		t.Fatal("self-coverage must be 0")
	}
}

func TestPerfectSchemesBound(t *testing.T) {
	w := fastProfile("Nutch")
	base := MustRun(fastSpec(scheme.Base(), w))
	pl1 := MustRun(fastSpec(scheme.PerfectL1I(), w))
	pcf := MustRun(fastSpec(scheme.PerfectCF(), w))
	if Speedup(base, pl1) <= 1.0 {
		t.Fatal("perfect L1-I must speed up the baseline")
	}
	if pcf.IPC <= pl1.IPC {
		t.Fatal("perfect BTB must add speedup over perfect L1-I")
	}
	if pcf.Stats.Squashes[frontend.SquashBTBMiss] != 0 {
		t.Fatal("perfect CF must have zero BTB-miss squashes")
	}
}

func TestRunDeterminism(t *testing.T) {
	w := fastProfile("Zeus")
	a := MustRun(fastSpec(scheme.Boomerang(), w))
	b := MustRun(fastSpec(scheme.Boomerang(), w))
	if a.IPC != b.IPC || a.Stats.TotalSquashes() != b.Stats.TotalSquashes() {
		t.Fatal("identical specs produced different results")
	}
}

func TestPredictorOverride(t *testing.T) {
	w := fastProfile("Apache")
	spec := fastSpec(scheme.FDIP(), w)
	spec.Predictor = "never-taken"
	r := MustRun(spec)
	if r.Stats.RetiredInstrs < 400_000 {
		t.Fatal("never-taken FDIP did not complete")
	}
	tage := MustRun(fastSpec(scheme.FDIP(), w))
	if r.Stats.TotalSquashes() <= tage.Stats.TotalSquashes() {
		t.Fatal("never-taken must squash more than TAGE")
	}
}

func TestImageCacheReuse(t *testing.T) {
	w := fastProfile("Zeus")
	img1, err := imageFor(w, 3)
	if err != nil {
		t.Fatal(err)
	}
	img2, err := imageFor(w, 3)
	if err != nil {
		t.Fatal(err)
	}
	if img1 != img2 {
		t.Fatal("image cache returned distinct images for the same key")
	}
	var img3 *program.Image
	if img3, err = imageFor(w, 4); err != nil {
		t.Fatal(err)
	}
	if img3 == img1 {
		t.Fatal("different seeds must give different images")
	}
}

func TestInvalidConfigRejected(t *testing.T) {
	w := fastProfile("Zeus")
	spec := fastSpec(scheme.Base(), w)
	spec.Cfg = config.Default()
	spec.Cfg.FetchWidth = 0
	if _, err := Run(spec); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestRunCMP(t *testing.T) {
	w := fastProfile("Nutch")
	spec := CMPSpec{Spec: fastSpec(scheme.FDIP(), w), Cores: 4}
	spec.MeasureInstrs = 150_000
	spec.WarmInstrs = 50_000
	res, err := RunCMP(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerCore) != 4 {
		t.Fatalf("expected 4 cores, got %d", len(res.PerCore))
	}
	if res.Throughput <= res.PerCore[0].IPC {
		t.Fatal("chip throughput should exceed one core's IPC")
	}
	// Distinct walk seeds must give (at least slightly) distinct behaviour.
	if res.PerCore[0].Stats.Cycles == res.PerCore[1].Stats.Cycles &&
		res.PerCore[0].Stats.TotalSquashes() == res.PerCore[1].Stats.TotalSquashes() {
		t.Fatal("per-core runs look identical; walk seeds not applied")
	}
}

func TestSchemeByNameComplete(t *testing.T) {
	for _, name := range []string{"Base", "Next Line", "DIP", "FDIP", "PIF", "SHIFT",
		"Confluence", "Boomerang", "Perfect L1-I", "Perfect L1-I + BTB"} {
		if _, ok := scheme.ByName(name); !ok {
			t.Errorf("scheme %q not found", name)
		}
	}
	if _, ok := scheme.ByName("nonsense"); ok {
		t.Error("bogus scheme name resolved")
	}
}

func TestBoomerangStorageTiny(t *testing.T) {
	// Section VI-D: Boomerang's overhead is 540 bytes; Confluence's SHIFT
	// machinery alone is two orders of magnitude bigger in aggregate.
	b := scheme.Boomerang()
	if b.StorageOverheadKB > 1 {
		t.Fatalf("Boomerang overhead %.2f KB, want < 1 KB", b.StorageOverheadKB)
	}
	p := scheme.PIF()
	if p.StorageOverheadKB < 100 {
		t.Fatalf("PIF overhead %.0f KB implausibly small", p.StorageOverheadKB)
	}
}
