package sim

import (
	"sync"

	"boomsim/internal/frontend"
	"boomsim/internal/stats"
)

// SampledResult aggregates repeated measurements of one configuration across
// independent execution seeds — the reproduction of the paper's SMARTS
// methodology, which reports means with 95% confidence intervals.
type SampledResult struct {
	// IPC samples instructions per cycle.
	IPC stats.Sample
	// StallPerKI samples front-end stall cycles per kilo-instruction.
	StallPerKI stats.Sample
	// SquashPerKI samples total pipeline squashes per kilo-instruction.
	SquashPerKI stats.Sample
	// BTBMissSquashPerKI samples the BTB-miss-induced share.
	BTBMissSquashPerKI stats.Sample
}

// RunSampled executes spec `samples` times with distinct walk seeds
// (concurrently — each run is self-contained) and aggregates the headline
// metrics.
func RunSampled(spec Spec, samples int) (SampledResult, error) {
	if samples < 1 {
		samples = 1
	}
	results := make([]Result, samples)
	errs := make([]error, samples)
	var wg sync.WaitGroup
	for i := 0; i < samples; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s := spec
			s.WalkSeed = spec.WalkSeed + uint64(i)*104729
			results[i], errs[i] = Run(s)
		}(i)
	}
	wg.Wait()
	var out SampledResult
	for i := 0; i < samples; i++ {
		if errs[i] != nil {
			return SampledResult{}, errs[i]
		}
		r := results[i]
		ki := float64(r.Stats.RetiredInstrs) / 1000
		out.IPC.Add(r.IPC)
		out.StallPerKI.Add(float64(r.Stats.FetchStallCycles) / ki)
		out.SquashPerKI.Add(float64(r.Stats.TotalSquashes()) / ki)
		out.BTBMissSquashPerKI.Add(r.Stats.SquashesPerKI(frontend.SquashBTBMiss))
	}
	return out, nil
}
