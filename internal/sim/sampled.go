package sim

import (
	"context"
	"runtime"

	"boomsim/internal/frontend"
	"boomsim/internal/par"
	"boomsim/internal/stats"
)

// SampledResult aggregates repeated measurements of one configuration across
// independent execution seeds — the reproduction of the paper's SMARTS
// methodology, which reports means with 95% confidence intervals.
type SampledResult struct {
	// IPC samples instructions per cycle.
	IPC stats.Sample
	// StallPerKI samples front-end stall cycles per kilo-instruction.
	StallPerKI stats.Sample
	// SquashPerKI samples total pipeline squashes per kilo-instruction.
	SquashPerKI stats.Sample
	// BTBMissSquashPerKI samples the BTB-miss-induced share.
	BTBMissSquashPerKI stats.Sample
}

// RunSampled executes spec `samples` times with distinct walk seeds and
// aggregates the headline metrics. Samples are dispatched through the
// bounded par.ForEach worker pool (GOMAXPROCS wide) rather than one
// goroutine per sample, so a large sample count cannot fan out an unbounded
// number of concurrent simulations.
func RunSampled(spec Spec, samples int) (SampledResult, error) {
	if samples < 1 {
		samples = 1
	}
	results := make([]Result, samples)
	errs := make([]error, samples)
	par.ForEach(context.Background(), runtime.GOMAXPROCS(0), samples, func(i int) {
		s := spec
		s.WalkSeed = spec.WalkSeed + uint64(i)*104729
		results[i], errs[i] = Run(s)
	})
	var out SampledResult
	for i := 0; i < samples; i++ {
		if errs[i] != nil {
			return SampledResult{}, errs[i]
		}
		r := results[i]
		out.IPC.Add(r.IPC)
		// A MaxCycles-bounded run can retire nothing; its per-KI rates are
		// recorded as zero (matching frontend.Stats' own zero-denominator
		// convention) rather than poisoning the means and CIs with Inf/NaN.
		var stallPerKI, squashPerKI float64
		if ki := float64(r.Stats.RetiredInstrs) / 1000; ki > 0 {
			stallPerKI = float64(r.Stats.FetchStallCycles) / ki
			squashPerKI = float64(r.Stats.TotalSquashes()) / ki
		}
		out.StallPerKI.Add(stallPerKI)
		out.SquashPerKI.Add(squashPerKI)
		out.BTBMissSquashPerKI.Add(r.Stats.SquashesPerKI(frontend.SquashBTBMiss))
	}
	return out, nil
}
