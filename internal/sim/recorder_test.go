package sim

import (
	"context"
	"testing"

	"boomsim/internal/scheme"
)

// TestFlightRecorderEpochsTileWindow pins the epoch-boundary contract: the
// recorded epochs exactly tile the measurement window — contiguous, no gap,
// no overlap, no double-count at the window end — and every epoch counter
// sums back to the run total.
func TestFlightRecorderEpochsTileWindow(t *testing.T) {
	spec := fastSpec(scheme.Boomerang(), fastProfile("Apache"))
	spec.FlightEvery = 10_000
	r, err := RunContext(context.Background(), spec, Hooks{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Epochs) < 2 {
		t.Fatalf("expected multiple epochs over %d measured cycles, got %d",
			r.Stats.Cycles, len(r.Epochs))
	}
	var cursor int64
	var cycles, instrs, stalls, ftqEmpty, btbMisses, squashes, prefetches, pfHits, misses uint64
	for i, ep := range r.Epochs {
		if ep.StartCycle != cursor {
			t.Fatalf("epoch %d starts at cycle %d, want %d (gap or overlap)", i, ep.StartCycle, cursor)
		}
		if ep.Cycles <= 0 {
			t.Fatalf("epoch %d has non-positive length %d", i, ep.Cycles)
		}
		if i < len(r.Epochs)-1 && ep.Cycles != spec.FlightEvery {
			t.Fatalf("interior epoch %d spans %d cycles, want exactly %d", i, ep.Cycles, spec.FlightEvery)
		}
		cursor += ep.Cycles
		cycles += uint64(ep.Cycles)
		instrs += ep.Instructions
		stalls += ep.FetchStallCycles
		ftqEmpty += ep.FTQEmptyCycles
		btbMisses += ep.BTBMisses
		squashes += ep.Squashes
		prefetches += ep.Prefetches
		pfHits += ep.PrefetchHits
		misses += ep.DemandMisses
	}
	if cursor != r.Stats.Cycles {
		t.Fatalf("epochs cover %d cycles, measurement window ran %d", cursor, r.Stats.Cycles)
	}
	if cycles != uint64(r.Stats.Cycles) {
		t.Fatalf("epoch cycle sum %d != window cycles %d", cycles, r.Stats.Cycles)
	}
	if instrs != r.Stats.RetiredInstrs {
		t.Fatalf("epoch instruction sum %d != retired %d", instrs, r.Stats.RetiredInstrs)
	}
	if stalls != r.Stats.FetchStallCycles {
		t.Fatalf("epoch stall sum %d != total %d", stalls, r.Stats.FetchStallCycles)
	}
	if ftqEmpty != r.Stats.FTQEmptyCycles {
		t.Fatalf("epoch FTQ-empty sum %d != total %d", ftqEmpty, r.Stats.FTQEmptyCycles)
	}
	if btbMisses != r.Stats.BTBMisses {
		t.Fatalf("epoch BTB-miss sum %d != total %d", btbMisses, r.Stats.BTBMisses)
	}
	if squashes != r.Stats.TotalSquashes() {
		t.Fatalf("epoch squash sum %d != total %d", squashes, r.Stats.TotalSquashes())
	}
	if misses != r.Stats.DemandLineMisses {
		t.Fatalf("epoch demand-miss sum %d != total %d", misses, r.Stats.DemandLineMisses)
	}
	// Hierarchy counters are not rebased at the warm boundary (Result.Hier
	// spans warm + measure), so check them by granularity invariance: a
	// single coarse epoch covering the whole window must equal the
	// fine-grained sums field for field.
	coarse := spec
	coarse.FlightEvery = 1 << 40 // one partial epoch, flushed at stop
	cr, err := RunContext(context.Background(), coarse, Hooks{})
	if err != nil {
		t.Fatal(err)
	}
	if len(cr.Epochs) != 1 {
		t.Fatalf("coarse run recorded %d epochs, want 1", len(cr.Epochs))
	}
	one := cr.Epochs[0]
	if one.Prefetches != prefetches {
		t.Fatalf("coarse prefetches %d != fine-grained sum %d", one.Prefetches, prefetches)
	}
	if one.PrefetchHits != pfHits {
		t.Fatalf("coarse prefetch hits %d != fine-grained sum %d", one.PrefetchHits, pfHits)
	}
	if int64(cycles) != one.Cycles || one.Instructions != instrs {
		t.Fatalf("coarse epoch (%d cycles, %d instrs) != fine-grained sums (%d, %d)",
			one.Cycles, one.Instructions, cycles, instrs)
	}
}

// TestFlightRecorderDoesNotPerturbRun pins that recording is observation
// only: a recorded run's measured counters are byte-identical to an
// unrecorded run of the same spec.
func TestFlightRecorderDoesNotPerturbRun(t *testing.T) {
	spec := fastSpec(scheme.FDIP(), fastProfile("Apache"))
	plain := MustRun(spec)
	rec := spec
	rec.FlightEvery = 7_777 // deliberately not a divisor of anything
	recorded, err := RunContext(context.Background(), rec, Hooks{})
	if err != nil {
		t.Fatal(err)
	}
	if len(recorded.Epochs) == 0 {
		t.Fatal("recorded run returned no epochs")
	}
	recorded.Epochs = nil
	requireResultsEqual(t, "recorded vs plain", plain, recorded)
}

// TestFlightRecorderOnWarmHook pins the warm-source observation: a fresh
// warm reports "fresh", a warm-arena fork reports "fork".
func TestFlightRecorderOnWarmHook(t *testing.T) {
	spec := fastSpec(scheme.Base(), fastProfile("Zeus"))
	spec.ReuseWarm = false
	var src string
	if _, err := RunContext(context.Background(), spec, Hooks{OnWarm: func(s string) { src = s }}); err != nil {
		t.Fatal(err)
	}
	if src != "fresh" {
		t.Fatalf("non-reuse run reported warm source %q, want fresh", src)
	}
	spec.ReuseWarm = true
	if _, err := RunContext(context.Background(), spec, Hooks{OnWarm: func(s string) { src = s }}); err != nil {
		t.Fatal(err)
	}
	if src != "fork" {
		t.Fatalf("reuse run reported warm source %q, want fork", src)
	}
}
