package sim

import (
	"container/list"
	"context"
	"encoding/json"
	"fmt"
	"sync"

	"boomsim/internal/scheme"
)

// The warm arena memoises warmed instances — the snapshot/fork plane that
// makes sweeps sub-linear in their warm cost. A sweep re-simulates the same
// 200K-instruction warm window for every run that shares a warm-relevant
// configuration (repeated matrix runs, parameter sweeps over the measurement
// window, benchmark iterations); the arena instead warms one master per
// configuration and hands every run a deep fork of it, so only the
// measurement window is re-simulated.
//
// Correctness rests on two invariants:
//   - A fork is indistinguishable from a fresh warm: Instance.Clone
//     duplicates every piece of mutable state, so results are byte-identical
//     with reuse on or off (the golden corpus pins this).
//   - The master never advances past the warm boundary: every consumer —
//     including the first — receives a clone, and clones never write through
//     to the master.
//
// The key must cover everything that shapes warmed state. That includes the
// full scheme config — warm microarchitectural contents (caches, BTB,
// predictor, prefetcher history, even the walker's exact stopping point) are
// scheme-dependent — serialised as canonical JSON because scheme.Config
// holds pointer sub-configs whose Go-syntax formatting would key on
// addresses. MeasureInstrs and MaxCycles are deliberately excluded: they
// only shape the measurement window, so sweeps over them share one master.
//
// Like the image cache above it, the arena is bounded LRU with a sync.Once
// per entry: concurrent runs of the same configuration warm one master
// between them, and a parameter sweep cannot grow the arena monotonically.
// Masters are a few MB each (dominated by the LLC tag array), so the bound
// also caps resident memory (~1 GB worst case). It is sized so a full
// 18-scheme x 7-workload matrix (126 entries, the sweep shape the paper's
// figures and this repo's benchmarks re-run most) stays resident even with
// dozens of other warmed configurations already in the arena — at a tighter
// bound a process mixing a full matrix with other sweeps evicts matrix
// masters mid-sweep and rebuilds them every pass.
const warmArenaEntries = 256

var (
	warmMu    sync.Mutex
	warmLRU   = list.New() // front = most recently used; values are *warmArenaEntry
	warmIndex = map[string]*list.Element{}
)

type warmArenaEntry struct {
	key  string
	once sync.Once
	inst *scheme.Instance
	err  error
}

// warmKeyOf projects spec onto its warm-relevant parameters. ok is false
// when the scheme config cannot be serialised (no such built-in exists, but
// user-authored configs are arbitrary data) — the caller then skips reuse.
func warmKeyOf(spec Spec) (key string, ok bool) {
	cfg, err := json.Marshal(spec.Scheme)
	if err != nil {
		return "", false
	}
	// The skip flag is result-irrelevant (byte-identity; see
	// internal/frontend/skip.go) but still keyed: a control arm asking for
	// the per-cycle loop must not be handed a master warmed by the skipping
	// loop, or the control would no longer exercise what it claims to.
	return fmt.Sprintf("scheme=%s|workload=%s/%d/%+v|walk=%d|pred=%q|core=%+v|warm=%d|noskip=%t",
		cfg, spec.Workload.Name, spec.ImageSeed, spec.Workload.Gen,
		spec.WalkSeed, spec.Predictor, spec.Cfg, spec.WarmInstrs,
		spec.DisableCycleSkip || envNoSkip), true
}

// forkWarm returns a private fork of the memoised warmed instance for spec.
// ok reports whether the arena could serve the request; on ok == false (key
// not derivable, shared warm failed for a reason other than the caller's own
// context, or a component was not clonable) the caller falls back to
// building a private instance. A non-nil err is returned only for the
// caller's own cancellation.
func forkWarm(ctx context.Context, spec Spec, chunk uint64) (*scheme.Instance, error, bool) {
	key, keyed := warmKeyOf(spec)
	if !keyed {
		return nil, nil, false
	}
	warmMu.Lock()
	var e *warmArenaEntry
	if el, hit := warmIndex[key]; hit {
		warmLRU.MoveToFront(el)
		e = el.Value.(*warmArenaEntry)
	} else {
		e = &warmArenaEntry{key: key}
		warmIndex[key] = warmLRU.PushFront(e)
		for warmLRU.Len() > warmArenaEntries {
			oldest := warmLRU.Back()
			warmLRU.Remove(oldest)
			delete(warmIndex, oldest.Value.(*warmArenaEntry).key)
		}
	}
	warmMu.Unlock()
	// Warming runs outside the lock; the Once makes concurrent runs of the
	// same configuration share one master. An evicted-while-warming entry
	// still completes for the runs holding it.
	e.once.Do(func() {
		e.inst, e.err = buildWarm(ctx, spec, chunk)
	})
	if e.err != nil {
		// The failure may be another caller's cancellation, which must not
		// poison the configuration for everyone: drop the entry so future
		// runs retry. Our own cancellation surfaces directly; anything else
		// falls back to the private path, which reproduces the error (or
		// succeeds if it was transient).
		warmMu.Lock()
		if el, hit := warmIndex[key]; hit && el.Value.(*warmArenaEntry) == e {
			warmLRU.Remove(el)
			delete(warmIndex, key)
		}
		warmMu.Unlock()
		if err := ctx.Err(); err != nil {
			return nil, err, true
		}
		return nil, nil, false
	}
	// The master is immutable once warmed, so concurrent forks are safe.
	if c := e.inst.Clone(); c != nil {
		return c, nil, true
	}
	return nil, nil, false
}
