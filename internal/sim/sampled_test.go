package sim

import (
	"math"
	"testing"

	"boomsim/internal/scheme"
)

func TestRunSampled(t *testing.T) {
	w := fastProfile("Zeus")
	spec := fastSpec(scheme.Boomerang(), w)
	spec.MeasureInstrs = 200_000
	spec.WarmInstrs = 50_000
	res, err := RunSampled(spec, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.IPC.N() != 5 {
		t.Fatalf("expected 5 samples, got %d", res.IPC.N())
	}
	if res.IPC.Mean() <= 0 {
		t.Fatal("IPC mean must be positive")
	}
	// Distinct seeds must produce some spread (not identical runs).
	if res.IPC.StdDev() == 0 {
		t.Fatal("samples identical — walk seeds not applied")
	}
	// The paper reports <2% relative error at 95% confidence; at this tiny
	// scale we only require the estimate to be reasonably tight.
	if re := res.IPC.RelativeError95(); re > 0.2 {
		t.Fatalf("IPC relative error %.3f too large", re)
	}
	if res.BTBMissSquashPerKI.Max() != 0 {
		t.Fatal("Boomerang must have zero BTB-miss squashes in every sample")
	}
}

func TestRunSampledClampsN(t *testing.T) {
	w := fastProfile("Zeus")
	spec := fastSpec(scheme.Base(), w)
	spec.MeasureInstrs = 100_000
	spec.WarmInstrs = 20_000
	res, err := RunSampled(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.IPC.N() != 1 {
		t.Fatalf("samples = %d, want clamp to 1", res.IPC.N())
	}
}

func TestRunSampledPropagatesErrors(t *testing.T) {
	w := fastProfile("Zeus")
	spec := fastSpec(scheme.Base(), w)
	spec.Cfg.FetchWidth = -1
	if _, err := RunSampled(spec, 2); err == nil {
		t.Fatal("invalid config accepted")
	}
}

// TestRunSampledNoRetirement is the regression test for the NaN/Inf
// poisoning bug: a MaxCycles-bounded run that retires nothing must record
// zero per-KI rates, not divide by zero into the sample means and CIs.
func TestRunSampledNoRetirement(t *testing.T) {
	spec := Spec{
		Scheme:        scheme.Base(),
		Workload:      fastProfile("Apache"),
		MeasureInstrs: 1_000,
		MaxCycles:     1, // one cycle: nothing can retire
	}
	res, err := RunSampled(spec, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.StallPerKI.N() != 3 || res.SquashPerKI.N() != 3 {
		t.Fatalf("expected 3 samples, got %d/%d", res.StallPerKI.N(), res.SquashPerKI.N())
	}
	for name, v := range map[string]float64{
		"IPC mean":          res.IPC.Mean(),
		"StallPerKI mean":   res.StallPerKI.Mean(),
		"StallPerKI CI95":   res.StallPerKI.CI95(),
		"SquashPerKI mean":  res.SquashPerKI.Mean(),
		"SquashPerKI CI95":  res.SquashPerKI.CI95(),
		"BTBMissPerKI mean": res.BTBMissSquashPerKI.Mean(),
	} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("%s is %v; zero-retirement runs must not poison the sample", name, v)
		}
	}
	if m := res.StallPerKI.Mean(); m != 0 {
		t.Fatalf("StallPerKI mean %v, want 0 for zero-retirement runs", m)
	}
}
