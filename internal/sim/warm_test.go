package sim

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"boomsim/internal/frontend"
	"boomsim/internal/scheme"
)

// requireResultsEqual fails unless a and b are byte-identical outcomes:
// every headline field and every registry counter.
func requireResultsEqual(t *testing.T, label string, a, b Result) {
	t.Helper()
	if a.Stats != b.Stats {
		t.Fatalf("%s: Stats differ:\n a=%+v\n b=%+v", label, a.Stats, b.Stats)
	}
	if a.Hier != b.Hier {
		t.Fatalf("%s: Hier stats differ:\n a=%+v\n b=%+v", label, a.Hier, b.Hier)
	}
	if a.IPC != b.IPC {
		t.Fatalf("%s: IPC %v != %v", label, a.IPC, b.IPC)
	}
	if a.PredecodedLines != b.PredecodedLines {
		t.Fatalf("%s: PredecodedLines %d != %d", label, a.PredecodedLines, b.PredecodedLines)
	}
	if a.PrefetchMetaBytes != b.PrefetchMetaBytes {
		t.Fatalf("%s: PrefetchMetaBytes %d != %d", label, a.PrefetchMetaBytes, b.PrefetchMetaBytes)
	}
	if !reflect.DeepEqual(a.Registry.Map(), b.Registry.Map()) {
		t.Fatalf("%s: registries differ:\n a=%v\n b=%v", label, a.Registry.Map(), b.Registry.Map())
	}
}

// builtinSchemes is every built-in configuration: the seven figure schemes,
// the limit studies, PIF, the hierarchical-BTB alternatives, and the
// throttle variants — the same set the public registry exposes.
func builtinSchemes() []scheme.Config {
	out := append(scheme.All(), scheme.PIF(), scheme.PerfectL1I(), scheme.PerfectCF(),
		scheme.TwoLevelBTB(), scheme.PhantomBTBScheme(), scheme.BoomerangUnthrottled())
	for _, n := range []int{0, 1, 4, 8} {
		s := scheme.BoomerangThrottled(n)
		s.Name = fmt.Sprintf("Boomerang-N%d", n)
		out = append(out, s)
	}
	return out
}

// TestWarmMeasureBoundary pins the invariant the snapshot plane relies on:
// WarmInstance followed by a measured Engine.Run is byte-identical to Run of
// the full spec. The full-spec results themselves are pinned by the golden
// corpus, so this transitively anchors the split run to the goldens.
func TestWarmMeasureBoundary(t *testing.T) {
	w := fastProfile("Apache")
	for _, s := range []scheme.Config{scheme.Base(), scheme.FDIP(), scheme.Boomerang(), scheme.Confluence()} {
		spec := fastSpec(s, w)
		spec.ReuseWarm = false
		full, err := Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		inst, err := WarmInstance(spec)
		if err != nil {
			t.Fatal(err)
		}
		inst.Engine.Run(spec.MeasureInstrs, spec.MaxCycles)
		requireResultsEqual(t, s.Name, full, collectResult(spec, inst))
	}
}

// TestForkMatchesFreshWarm proves, for every built-in scheme, that a forked
// snapshot is indistinguishable from a fresh warm — and that forking and
// running a fork leaves the master untouched (a second, later fork behaves
// identically to the first).
func TestForkMatchesFreshWarm(t *testing.T) {
	w := fastProfile("DB2")
	for _, s := range builtinSchemes() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			spec := fastSpec(s, w)
			spec.ReuseWarm = false
			spec.WarmInstrs = 30_000
			spec.MeasureInstrs = 60_000

			master, err := WarmInstance(spec)
			if err != nil {
				t.Fatal(err)
			}
			fork := master.Clone()
			if fork == nil {
				t.Fatalf("%s: instance not clonable", s.Name)
			}
			fresh, err := WarmInstance(spec)
			if err != nil {
				t.Fatal(err)
			}
			fork.Engine.Run(spec.MeasureInstrs, spec.MaxCycles)
			fresh.Engine.Run(spec.MeasureInstrs, spec.MaxCycles)
			requireResultsEqual(t, s.Name+" fork-vs-fresh",
				collectResult(spec, fork), collectResult(spec, fresh))

			// The measured fork must not have written through to the master:
			// a second fork taken afterwards behaves identically.
			fork2 := master.Clone()
			if fork2 == nil {
				t.Fatalf("%s: second fork not clonable", s.Name)
			}
			fork2.Engine.Run(spec.MeasureInstrs, spec.MaxCycles)
			requireResultsEqual(t, s.Name+" refork-vs-fresh",
				collectResult(spec, fork2), collectResult(spec, fresh))
		})
	}
}

// TestRunContextWarmReuse pins that RunContext with reuse on — both the
// arena-miss (build master, measure a fork) and arena-hit (measure a fork of
// the cached master) paths — matches reuse off exactly.
func TestRunContextWarmReuse(t *testing.T) {
	spec := fastSpec(scheme.Boomerang(), fastProfile("Zeus"))
	spec.ReuseWarm = false
	off, err := RunContext(context.Background(), spec, Hooks{})
	if err != nil {
		t.Fatal(err)
	}
	spec.ReuseWarm = true
	miss, err := RunContext(context.Background(), spec, Hooks{})
	if err != nil {
		t.Fatal(err)
	}
	hit, err := RunContext(context.Background(), spec, Hooks{})
	if err != nil {
		t.Fatal(err)
	}
	requireResultsEqual(t, "arena miss vs reuse off", miss, off)
	requireResultsEqual(t, "arena hit vs reuse off", hit, off)

	// Chunked execution (a cancellable ctx forces chunking) must not change
	// results either way.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	chunked, err := RunContext(ctx, spec, Hooks{})
	if err != nil {
		t.Fatal(err)
	}
	requireResultsEqual(t, "chunked arena hit vs reuse off", chunked, off)
}

// wedgedEngine models an engine that stops retiring: Run consumes its full
// cycle allowance (its bound is absolute, like frontend.Engine's) without
// retiring anything beyond the preset count.
type wedgedEngine struct {
	retired uint64
	cycles  int64
}

func (w *wedgedEngine) Run(target uint64, maxCycles int64) frontend.Stats {
	if maxCycles > 0 && maxCycles > w.cycles {
		w.cycles = maxCycles
	}
	return frontend.Stats{RetiredInstrs: w.retired, Cycles: w.cycles}
}

func TestRunWindowNoProgress(t *testing.T) {
	// A wedged engine under chunking with no cycle bound must surface
	// ErrNoProgress instead of looping forever.
	err := runWindow(context.Background(), &wedgedEngine{}, 1_000, 0, 100, nil)
	if !errors.Is(err, ErrNoProgress) {
		t.Fatalf("wedged engine: got %v, want ErrNoProgress", err)
	}

	// Partial progress that then stops is still a wedge.
	err = runWindow(context.Background(), &wedgedEngine{retired: 500}, 1_000, 0, 100, nil)
	if !errors.Is(err, ErrNoProgress) {
		t.Fatalf("stalled engine: got %v, want ErrNoProgress", err)
	}

	// With a cycle budget the window ends at the budget, as documented —
	// that is a bounded run, not a wedge.
	if err := runWindow(context.Background(), &wedgedEngine{}, 1_000, 5_000, 100, nil); err != nil {
		t.Fatalf("cycle-bounded run: got %v, want nil", err)
	}

	// A healthy real engine is unaffected: full window, no error.
	spec := fastSpec(scheme.Base(), fastProfile("Apache"))
	spec.ReuseWarm = false
	inst, err := WarmInstance(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := runWindow(context.Background(), inst.Engine, 50_000, 0, 10_000, nil); err != nil {
		t.Fatalf("healthy engine: got %v, want nil", err)
	}
}

func TestFirstGenuineError(t *testing.T) {
	genuine := errors.New("simulation exploded")
	wrapped := fmt.Errorf("core 3: %w", context.Canceled)
	cases := []struct {
		name string
		errs []error
		want error
	}{
		{"all nil", []error{nil, nil}, nil},
		{"cancellation before genuine failure", []error{context.Canceled, genuine}, genuine},
		{"genuine failure before cancellation", []error{genuine, context.Canceled}, genuine},
		{"wrapped cancellation before genuine failure", []error{nil, wrapped, genuine}, genuine},
		{"deadline before genuine failure", []error{context.DeadlineExceeded, genuine}, genuine},
		{"only cancellation", []error{nil, wrapped, context.Canceled}, wrapped},
	}
	for _, tc := range cases {
		if got := firstGenuineError(tc.errs); got != tc.want {
			t.Errorf("%s: got %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestRunCMPContextCancellation pins the unified policy end to end: a chip
// run whose cores were all cancelled reports the cancellation (not a
// fabricated success), and the error is the raw context sentinel for the
// public layer to wrap.
func TestRunCMPContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	spec := CMPSpec{Spec: fastSpec(scheme.Base(), fastProfile("Apache")), Cores: 2}
	_, err := RunCMPContext(ctx, spec, Hooks{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}
