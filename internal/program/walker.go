package program

import (
	"fmt"

	"boomsim/internal/isa"
	"boomsim/internal/xrand"
)

// Step is one committed basic block of oracle (correct-path) execution.
type Step struct {
	// Block is the executed basic block.
	Block *Block
	// Taken is the terminator's resolved direction (always true for
	// unconditional branches).
	Taken bool
	// Target is the resolved next block start.
	Target isa.Addr
	// EntryClass says how control arrived AT this block (fall-through,
	// taken conditional, or unconditional redirect) — the attribution the
	// paper's Figure 3 uses for the block's fetch misses.
	EntryClass isa.DiscontinuityClass
}

// Walker deterministically executes a code image along the architecturally
// correct path: the paper's "retire stream". All branch outcomes are pure
// functions of (branch PC, per-branch occurrence count, seed), so execution
// is replayable and independent of any predictor state.
type Walker struct {
	img  *Image
	seed uint64

	pc    isa.Addr
	stack []isa.Addr
	// occ counts per-branch occurrences, indexed by block index (every block
	// has exactly one terminator). A flat slice instead of a map keyed by
	// branch PC: this counter is read and written once per executed block,
	// making it one of the hottest accesses in the simulator.
	occ []uint32

	steps      uint64
	instrs     uint64
	maxDepth   int
	entryClass isa.DiscontinuityClass
}

// MaxCallDepth is a safety bound; the layered call DAG keeps real depth far
// below it, and exceeding it indicates a generator bug.
const MaxCallDepth = 512

// NewWalker starts execution at the image's root dispatcher.
func NewWalker(img *Image, seed uint64) *Walker {
	return &Walker{
		img:   img,
		seed:  seed,
		pc:    img.Functions[0].Entry,
		stack: make([]isa.Addr, 0, MaxCallDepth),
		occ:   make([]uint32, len(img.Blocks)),
	}
}

// PC returns the start address of the next block to execute.
func (w *Walker) PC() isa.Addr { return w.pc }

// Steps returns the number of blocks executed so far.
func (w *Walker) Steps() uint64 { return w.steps }

// Instructions returns the number of instructions executed so far.
func (w *Walker) Instructions() uint64 { return w.instrs }

// CallDepth returns the current call-stack depth.
func (w *Walker) CallDepth() int { return len(w.stack) }

// MaxCallDepthSeen returns the deepest call stack observed.
func (w *Walker) MaxCallDepthSeen() int { return w.maxDepth }

// Next executes one basic block and returns its committed Step.
func (w *Walker) Next() Step {
	bi, ok := w.img.BlockIndex(w.pc)
	if !ok {
		panic(fmt.Sprintf("program: walker at %#x which is not a block start", w.pc))
	}
	b := &w.img.Blocks[bi]
	pc := b.BranchPC()
	occ := w.occ[bi]
	w.occ[bi] = occ + 1

	taken, target := w.resolve(b, pc, occ)

	step := Step{Block: b, Taken: taken, Target: target, EntryClass: w.entryClass}
	w.entryClass = isa.ClassOf(b.Term.Kind, taken)
	w.pc = target
	w.steps++
	w.instrs += uint64(b.NInstr)
	return step
}

// Resolve computes a terminator outcome without advancing the walker. It is
// exported so timing models can ask "what would this branch do" when they
// need resolution information out of band (e.g. training on wrong-path
// discovery); it uses the occurrence count the next Next() call will see.
func (w *Walker) Resolve(b *Block) (taken bool, target isa.Addr) {
	var occ uint32
	if bi, ok := w.img.BlockIndex(b.Addr); ok {
		occ = w.occ[bi]
	}
	return w.resolve(b, b.BranchPC(), occ)
}

func (w *Walker) resolve(b *Block, pc isa.Addr, occ uint32) (bool, isa.Addr) {
	t := &b.Term
	switch t.Kind {
	case isa.CondDirect:
		taken := w.condOutcome(t, pc, occ)
		if taken {
			return true, t.Target
		}
		return false, b.FallThrough()

	case isa.UncondDirect:
		return true, t.Target

	case isa.CallDirect:
		w.push(b.FallThrough())
		return true, t.Target

	case isa.Return:
		return true, w.pop()

	case isa.IndirectJump:
		return true, w.indirectTarget(t, pc, occ)

	case isa.IndirectCall:
		w.push(b.FallThrough())
		return true, w.indirectTarget(t, pc, occ)
	}
	panic(fmt.Sprintf("program: block %#x has invalid terminator", b.Addr))
}

func (w *Walker) condOutcome(t *Terminator, pc isa.Addr, occ uint32) bool {
	switch t.Behaviour {
	case BehaviourLoop:
		if t.Trip == 0 {
			return true
		}
		return occ%t.Trip != t.Trip-1
	case BehaviourBias:
		key := uint64(occ)
		if t.Phase > 0 {
			key = uint64(occ) / uint64(t.Phase)
		}
		return xrand.HashBool(pc, key, w.seed, t.Bias)
	}
	panic(fmt.Sprintf("program: conditional at %#x without behaviour", pc))
}

func (w *Walker) indirectTarget(t *Terminator, pc isa.Addr, occ uint32) isa.Addr {
	phase := uint64(occ) / uint64(t.Phase)
	// Quadratic skew toward low indices models the hot/cold request mix of
	// real servers: a few services take most dispatches (and therefore
	// recur within prefetcher history), the tail stays cold.
	u := float64(xrand.Hash64(pc, phase, w.seed)>>11) / (1 << 53)
	idx := int(u * u * float64(len(t.Targets)))
	if idx >= len(t.Targets) {
		idx = len(t.Targets) - 1
	}
	return t.Targets[idx]
}

func (w *Walker) push(ret isa.Addr) {
	if len(w.stack) >= MaxCallDepth {
		panic("program: call depth exceeded MaxCallDepth (generator DAG violated)")
	}
	w.stack = append(w.stack, ret)
	if len(w.stack) > w.maxDepth {
		w.maxDepth = len(w.stack)
	}
}

func (w *Walker) pop() isa.Addr {
	if len(w.stack) == 0 {
		// The root never returns by construction; tolerate a bare return by
		// restarting the dispatch loop rather than crashing a long run.
		return w.img.Functions[0].Entry
	}
	ret := w.stack[len(w.stack)-1]
	w.stack = w.stack[:len(w.stack)-1]
	return ret
}

// DynamicStats aggregates properties of an executed window; used both for
// profile calibration and for the Figure 4 reproduction.
type DynamicStats struct {
	Steps        uint64
	Instrs       uint64
	Branches     uint64
	CondBranches uint64
	TakenConds   uint64
	Calls        uint64
	Returns      uint64
	// TakenCondDist[d] counts taken conditionals whose target lies d cache
	// blocks away (the last bucket accumulates everything beyond).
	TakenCondDist []uint64
	// UncondDist is the same histogram for unconditional transfers.
	UncondDist []uint64
	// TouchedLines is the number of distinct instruction cache lines
	// executed (the dynamic code footprint).
	TouchedLines int
}

// Measure executes steps blocks and aggregates dynamic statistics.
// distBuckets sets the histogram width (Figure 4 uses 9 buckets: 0..8+).
func Measure(w *Walker, steps uint64, distBuckets int) DynamicStats {
	st := DynamicStats{
		TakenCondDist: make([]uint64, distBuckets),
		UncondDist:    make([]uint64, distBuckets),
	}
	lines := make(map[uint64]struct{})
	for i := uint64(0); i < steps; i++ {
		s := w.Next()
		st.Steps++
		st.Instrs += uint64(s.Block.NInstr)
		st.Branches++
		first := isa.BlockIndex(s.Block.Addr)
		lastLine := isa.BlockIndex(s.Block.FallThrough() - 1)
		for l := first; l <= lastLine; l++ {
			lines[l] = struct{}{}
		}
		kind := s.Block.Term.Kind
		switch {
		case kind.IsConditional():
			st.CondBranches++
			if s.Taken {
				st.TakenConds++
				bucket(st.TakenCondDist, isa.BlockDistance(s.Block.BranchPC(), s.Target))
			}
		case kind.IsCall():
			st.Calls++
		case kind.IsReturn():
			st.Returns++
		}
		if kind.IsUnconditional() {
			bucket(st.UncondDist, isa.BlockDistance(s.Block.BranchPC(), s.Target))
		}
	}
	st.TouchedLines = len(lines)
	return st
}

func bucket(h []uint64, d uint64) {
	if int(d) >= len(h) {
		d = uint64(len(h) - 1)
	}
	h[d]++
}

// CDF converts a histogram into a cumulative distribution in [0,1].
func CDF(h []uint64) []float64 {
	var total uint64
	for _, v := range h {
		total += v
	}
	out := make([]float64, len(h))
	if total == 0 {
		return out
	}
	var acc uint64
	for i, v := range h {
		acc += v
		out[i] = float64(acc) / float64(total)
	}
	return out
}
