// Package program models a static code image: modules, functions, and
// basic blocks with their terminating branches. It is the substrate the
// paper's SPARC server binaries provide in the original evaluation — a
// multi-megabyte instruction footprint with realistic control-flow structure
// — and the thing every component under test (BTB, predecoder, prefetchers,
// oracle execution) queries.
//
// A basic block here follows the paper's definition (Section IV-A): a
// straight-line instruction sequence ending with a branch instruction. Every
// block's last instruction is its terminator; fall-through from block i goes
// to block i+1 of the same function.
package program

import (
	"fmt"
	"sort"

	"boomsim/internal/flatmap"
	"boomsim/internal/isa"
)

// Behaviour selects how the oracle resolves a conditional or indirect
// terminator at run time.
type Behaviour uint8

const (
	// BehaviourNone applies to unconditional direct branches and returns.
	BehaviourNone Behaviour = iota
	// BehaviourBias makes a conditional branch taken with probability Bias,
	// decided statelessly per occurrence (replayable).
	BehaviourBias
	// BehaviourLoop makes a conditional back-edge taken Trip-1 consecutive
	// times then not taken (a counted loop). Trip == 0 means always taken.
	BehaviourLoop
	// BehaviourPhase makes an indirect branch pick among Targets, changing
	// its choice every Phase occurrences (models request-type dispatch).
	BehaviourPhase
)

// Terminator describes the branch instruction that ends a basic block,
// including the behavioural parameters the oracle uses to resolve it.
type Terminator struct {
	Kind isa.BranchKind
	// Target is the static (encoded) target for direct branches. Zero for
	// returns and indirect branches, whose targets are not in the encoding —
	// exactly the information a predecoder cannot extract.
	Target isa.Addr
	// Behaviour and its parameters drive the oracle outcome.
	Behaviour Behaviour
	// Bias is the taken probability for BehaviourBias.
	Bias float64
	// Trip is the loop trip count for BehaviourLoop.
	Trip uint32
	// Phase is the occurrence stride at which BehaviourPhase re-picks its
	// target; for BehaviourBias, a non-zero Phase makes the direction
	// stable for runs of Phase occurrences.
	Phase uint32
	// Targets lists candidate targets for indirect branches.
	Targets []isa.Addr
}

// Block is one basic block.
type Block struct {
	// Addr is the block's start address (also its identity).
	Addr isa.Addr
	// NInstr is the instruction count including the terminator.
	NInstr uint16
	// Func indexes the owning function in Image.Functions.
	Func int32
	Term Terminator
}

// BranchPC returns the address of the terminating branch instruction.
func (b *Block) BranchPC() isa.Addr {
	return b.Addr + isa.Addr(b.NInstr-1)*isa.InstrBytes
}

// FallThrough returns the address immediately after the block.
func (b *Block) FallThrough() isa.Addr {
	return b.Addr + isa.Addr(b.NInstr)*isa.InstrBytes
}

// Bytes returns the block size in bytes.
func (b *Block) Bytes() uint64 { return uint64(b.NInstr) * isa.InstrBytes }

// Function is a contiguous run of basic blocks with a single entry.
type Function struct {
	// Entry is the address of the first block.
	Entry isa.Addr
	// FirstBlock and NBlocks locate the function's blocks in Image.Blocks.
	FirstBlock int32
	NBlocks    int32
	// Module is the layer/service this function belongs to.
	Module int
}

// Image is a complete static code image.
type Image struct {
	// Blocks holds every basic block, sorted by address.
	Blocks []Block
	// Functions holds every function, sorted by entry address.
	Functions []Function
	// Modules is the module (software layer) count.
	Modules int
	// Base and Limit bound the text segment [Base, Limit).
	Base, Limit isa.Addr

	// byStart maps a block start address to its index in Blocks. It is an
	// open-addressed table rather than a Go map because the oracle walker
	// consults it once per executed basic block — one of the simulator's
	// hottest lookups.
	byStart flatmap.Map

	// lineFirstBlock maps each cache line of the text segment to the index
	// of the first block whose byte range reaches into or past it (the block
	// a per-line predecode scan starts from). Precomputing it turns the
	// binary search at the head of every AppendBranchesInLine /
	// FirstBranchAtOrAfter call — the hottest predecoder operation — into an
	// array load.
	lineFirstBlock []int32
}

// buildIndex (re)constructs the exact-start lookup table. Generators call it
// once after assembling Blocks.
func (img *Image) buildIndex() {
	img.byStart = *flatmap.New(len(img.Blocks))
	for i := range img.Blocks {
		img.byStart.Set(uint64(img.Blocks[i].Addr), int32(i))
	}

	baseLine := isa.BlockAddr(img.Base)
	nLines := int((img.Limit - baseLine + isa.BlockBytes - 1) / isa.BlockBytes)
	img.lineFirstBlock = make([]int32, nLines)
	bi := 0
	for li := 0; li < nLines; li++ {
		line := baseLine + isa.Addr(li)*isa.BlockBytes
		for bi < len(img.Blocks) && img.Blocks[bi].FallThrough() <= line {
			bi++
		}
		img.lineFirstBlock[li] = int32(bi)
	}
}

// firstBlockForLine returns the index of the first block with
// FallThrough() > line (line must be cache-line aligned) — identical to the
// binary search `sort.Search(..., FallThrough() > line)` but O(1) via the
// precomputed per-line index. Out-of-segment lines resolve the same way the
// search would: 0 below the text segment, len(Blocks) past it.
func (img *Image) firstBlockForLine(line isa.Addr) int {
	baseLine := isa.BlockAddr(img.Base)
	if line < baseLine {
		return 0
	}
	li := int((line - baseLine) / isa.BlockBytes)
	if li >= len(img.lineFirstBlock) {
		return len(img.Blocks)
	}
	return int(img.lineFirstBlock[li])
}

// BlockIndex returns the index in Blocks of the block starting exactly at
// addr. Callers that need per-block side state (e.g. the walker's occurrence
// counters) key it by this index instead of by address.
func (img *Image) BlockIndex(addr isa.Addr) (int32, bool) {
	return img.byStart.Get(uint64(addr))
}

// BlockAt returns the block starting exactly at addr.
func (img *Image) BlockAt(addr isa.Addr) (*Block, bool) {
	i, ok := img.byStart.Get(uint64(addr))
	if !ok {
		return nil, false
	}
	return &img.Blocks[i], true
}

// BlockContaining returns the block whose byte range covers pc.
func (img *Image) BlockContaining(pc isa.Addr) (*Block, bool) {
	i := sort.Search(len(img.Blocks), func(i int) bool {
		return img.Blocks[i].Addr > pc
	}) - 1
	if i < 0 {
		return nil, false
	}
	b := &img.Blocks[i]
	if pc >= b.Addr && pc < b.FallThrough() {
		return b, true
	}
	return nil, false
}

// FunctionOf returns the function owning the block.
func (img *Image) FunctionOf(b *Block) *Function { return &img.Functions[b.Func] }

// PredecodedBranch is one branch a predecoder extracts from a cache block:
// the branch PC plus everything needed to synthesise a basic-block BTB entry
// for the block that ends at this branch.
type PredecodedBranch struct {
	// PC is the branch instruction's address.
	PC isa.Addr
	// BlockStart is the start of the basic block the branch terminates.
	BlockStart isa.Addr
	// NInstr is that block's instruction count.
	NInstr uint16
	// Kind is the branch class.
	Kind isa.BranchKind
	// Target is the decoded direct target; zero when the encoding does not
	// carry one (returns, indirect jumps/calls).
	Target isa.Addr
}

// AppendBranchesInLine appends, in address order, every branch instruction
// whose PC lies within the 64-byte cache line containing lineAddr, and
// returns the extended slice. This is what Boomerang's and Confluence's
// predecoder extracts from an arriving block; the append-into-caller-buffer
// form lets per-miss predecode reuse scratch storage instead of allocating.
func (img *Image) AppendBranchesInLine(dst []PredecodedBranch, lineAddr isa.Addr) []PredecodedBranch {
	line := isa.BlockAddr(lineAddr)
	end := line + isa.BlockBytes
	// Find the first block that could have a branch in the line: the block
	// containing the line start, or the first block after it.
	i := img.firstBlockForLine(line)
	for ; i < len(img.Blocks); i++ {
		b := &img.Blocks[i]
		if b.Addr >= end {
			break
		}
		pc := b.BranchPC()
		if pc < line || pc >= end {
			continue
		}
		dst = append(dst, PredecodedBranch{
			PC:         pc,
			BlockStart: b.Addr,
			NInstr:     b.NInstr,
			Kind:       b.Term.Kind,
			Target:     directTarget(&b.Term),
		})
	}
	return dst
}

// BranchesInLine is AppendBranchesInLine into a fresh slice.
func (img *Image) BranchesInLine(lineAddr isa.Addr) []PredecodedBranch {
	return img.AppendBranchesInLine(nil, lineAddr)
}

// FirstBranchAtOrAfter returns the first branch with PC >= pc inside pc's
// cache line. Boomerang's BTB-miss resolution uses this: starting from the
// missing entry's start address, scan the fetched line for the terminating
// branch; if the line holds none at or after pc, the caller probes the next
// sequential line.
func (img *Image) FirstBranchAtOrAfter(pc isa.Addr) (PredecodedBranch, bool) {
	line := isa.BlockAddr(pc)
	end := line + isa.BlockBytes
	i := img.firstBlockForLine(line)
	for ; i < len(img.Blocks); i++ {
		b := &img.Blocks[i]
		if b.Addr >= end {
			break
		}
		bpc := b.BranchPC()
		if bpc < pc || bpc >= end {
			continue
		}
		return PredecodedBranch{
			PC:         bpc,
			BlockStart: b.Addr,
			NInstr:     b.NInstr,
			Kind:       b.Term.Kind,
			Target:     directTarget(&b.Term),
		}, true
	}
	return PredecodedBranch{}, false
}

func directTarget(t *Terminator) isa.Addr {
	if t.Kind == isa.CondDirect || t.Kind == isa.UncondDirect || t.Kind == isa.CallDirect {
		return t.Target
	}
	return 0
}

// Bytes returns the total text-segment footprint in bytes.
func (img *Image) Bytes() uint64 { return uint64(img.Limit - img.Base) }

// Stats summarises the static image for documentation and sanity checks.
type Stats struct {
	Functions    int
	Blocks       int
	Instructions uint64
	FootprintKB  uint64
	ByKind       [isa.NumBranchKinds]int
	MeanBlock    float64
}

// ComputeStats walks the image once and aggregates static properties.
func (img *Image) ComputeStats() Stats {
	var s Stats
	s.Functions = len(img.Functions)
	s.Blocks = len(img.Blocks)
	for i := range img.Blocks {
		b := &img.Blocks[i]
		s.Instructions += uint64(b.NInstr)
		s.ByKind[b.Term.Kind]++
	}
	s.FootprintKB = img.Bytes() / 1024
	if s.Blocks > 0 {
		s.MeanBlock = float64(s.Instructions) / float64(s.Blocks)
	}
	return s
}

func (s Stats) String() string {
	return fmt.Sprintf("funcs=%d blocks=%d instrs=%d footprint=%dKB meanBlock=%.2f",
		s.Functions, s.Blocks, s.Instructions, s.FootprintKB, s.MeanBlock)
}

// Validate checks the structural invariants every generated image must hold:
// sorted non-overlapping blocks, in-bounds direct targets landing on block
// starts, functions that end in control transfers that never fall off the
// end, and behaviour parameters consistent with branch kinds.
func (img *Image) Validate() error {
	if len(img.Blocks) == 0 {
		return fmt.Errorf("program: empty image")
	}
	for i := range img.Blocks {
		b := &img.Blocks[i]
		if b.NInstr == 0 {
			return fmt.Errorf("program: block %#x has zero instructions", b.Addr)
		}
		if i > 0 && img.Blocks[i-1].FallThrough() > b.Addr {
			return fmt.Errorf("program: blocks overlap at %#x", b.Addr)
		}
		if !b.Term.Kind.IsBranch() {
			return fmt.Errorf("program: block %#x lacks a terminator", b.Addr)
		}
		if t := directTarget(&b.Term); t != 0 {
			if _, ok := img.BlockAt(t); !ok {
				return fmt.Errorf("program: block %#x targets %#x which is not a block start", b.Addr, t)
			}
		}
		for _, t := range b.Term.Targets {
			if _, ok := img.BlockAt(t); !ok {
				return fmt.Errorf("program: block %#x indirect target %#x is not a block start", b.Addr, t)
			}
		}
	}
	for fi := range img.Functions {
		f := &img.Functions[fi]
		if f.NBlocks == 0 {
			return fmt.Errorf("program: function %d empty", fi)
		}
		last := &img.Blocks[f.FirstBlock+f.NBlocks-1]
		k := last.Term.Kind
		if k == isa.CondDirect || k == isa.CallDirect || k == isa.IndirectCall {
			return fmt.Errorf("program: function %d can fall off its end (last block %#x ends with %v)",
				fi, last.Addr, k)
		}
	}
	return nil
}
