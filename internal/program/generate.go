package program

import (
	"fmt"

	"boomsim/internal/isa"
	"boomsim/internal/xrand"
)

// GenParams parameterises the synthetic code-image generator. The defaults
// (DefaultGenParams) produce the control-flow shape the paper attributes to
// server software: a deep layered stack, multi-MB footprint, short basic
// blocks, taken conditional branches landing within a few cache blocks, and
// far unconditional call/return discontinuities.
type GenParams struct {
	// Seed makes generation deterministic.
	Seed uint64
	// Layers is the number of software layers below the root dispatcher
	// (web server -> caching -> CGI -> database -> kernel, etc.). Calls flow
	// from lower to higher layer index, so layer depth bounds call depth.
	Layers int
	// FootprintKB is the target text-segment size across all layers.
	FootprintKB int
	// RootBlocks sizes the top-level dispatch loop function.
	RootBlocks int
	// DispatchFanout is how many layer-1 service entries the root's indirect
	// calls select among (the "request type" fanout).
	DispatchFanout int

	// MeanBlockInstrs is the mean basic-block length in instructions.
	MeanBlockInstrs int
	// MeanFuncBlocks is the mean function length in basic blocks.
	MeanFuncBlocks int

	// Terminator mix for non-final blocks. PCond is implied by the remainder
	// 1 - PCall - PJump - PIndJump.
	PCall    float64
	PJump    float64
	PIndJump float64
	// CallDecay scales the call probability per layer (deeper layers call
	// less, bounding the per-transaction fan-out).
	CallDecay float64
	// IndCallFrac is the fraction of calls made through a register.
	IndCallFrac float64
	// IndFanout is the candidate-target count of non-root indirect calls
	// and switch-style indirect jumps.
	IndFanout int
	// PhaseLen is the occurrence stride at which non-root indirect branches
	// re-pick their target.
	PhaseLen int
	// DispatchPhase is the re-pick stride of the root's dispatch calls.
	// 1 means every request picks a (pseudo-random) service — the property
	// that gives server workloads their large active instruction footprint.
	DispatchPhase int

	// LoopFrac is the fraction of conditional branches that are counted
	// loop back-edges.
	LoopFrac float64
	// LoopSpanMax bounds how many blocks a back-edge may jump over.
	LoopSpanMax int
	// LoopTripMax bounds loop trip counts (trips skew low).
	LoopTripMax int
	// CondSkipMax bounds forward conditional skip distance in blocks. This
	// knob controls the Figure 4 taken-branch distance distribution.
	CondSkipMax int
	// BiasMix describes the taken-probability mixture of non-loop
	// conditional branches. Fractions should sum to ~1.
	BiasMix []BiasLevel

	// CrossLayerFrac is the fraction of calls that skip layers.
	CrossLayerFrac float64
	// HelperFrac is the fraction of calls that stay within the caller's
	// layer, targeting its helper region (the last quarter of the layer).
	HelperFrac float64
	// CalleeZipfTheta skews callee popularity within a layer (hot/cold code).
	CalleeZipfTheta float64
}

// BiasLevel is one component of the conditional-branch bias mixture: a Frac
// share of branches draw their taken probability uniformly from [Lo, Hi].
// Phase > 0 makes the outcome stable for runs of Phase occurrences (the
// branch direction follows slowly-changing program state rather than
// per-instance noise), which is what makes real server code paths
// repeatable enough for temporal-streaming prefetchers.
type BiasLevel struct {
	Frac, Lo, Hi float64
	Phase        uint32
}

// DefaultGenParams returns a baseline parameter set giving a ~2 MB image
// with server-like control flow.
func DefaultGenParams() GenParams {
	return GenParams{
		Seed:           1,
		Layers:         8,
		FootprintKB:    2048,
		RootBlocks:     48,
		DispatchFanout: 32,

		MeanBlockInstrs: 6,
		MeanFuncBlocks:  12,

		PCall:         0.18,
		PJump:         0.05,
		PIndJump:      0.01,
		CallDecay:     0.97,
		IndCallFrac:   0.12,
		IndFanout:     4,
		PhaseLen:      16,
		DispatchPhase: 1,

		LoopFrac:    0.14,
		LoopSpanMax: 4,
		LoopTripMax: 24,
		CondSkipMax: 10,
		BiasMix: []BiasLevel{
			{Frac: 0.45, Lo: 0.02, Hi: 0.10},            // rarely-taken checks (noisy)
			{Frac: 0.30, Lo: 0.90, Hi: 0.98},            // mostly-taken (noisy)
			{Frac: 0.25, Lo: 0.25, Hi: 0.75, Phase: 64}, // data-dependent, phase-stable
		},

		CrossLayerFrac:  0.15,
		HelperFrac:      0.25,
		CalleeZipfTheta: 0.45,
	}
}

// Validate reports the first incoherent parameter.
func (p GenParams) Validate() error {
	switch {
	case p.Layers < 1:
		return fmt.Errorf("program: Layers must be >= 1")
	case p.FootprintKB < 16:
		return fmt.Errorf("program: FootprintKB must be >= 16")
	case p.RootBlocks < 4:
		return fmt.Errorf("program: RootBlocks must be >= 4")
	case p.DispatchFanout < 1:
		return fmt.Errorf("program: DispatchFanout must be >= 1")
	case p.MeanBlockInstrs < 2:
		return fmt.Errorf("program: MeanBlockInstrs must be >= 2")
	case p.MeanFuncBlocks < 4:
		return fmt.Errorf("program: MeanFuncBlocks must be >= 4")
	case p.PCall < 0 || p.PJump < 0 || p.PIndJump < 0 ||
		p.PCall+p.PJump+p.PIndJump > 0.9:
		return fmt.Errorf("program: terminator mix out of range")
	case p.LoopFrac < 0 || p.LoopFrac > 1:
		return fmt.Errorf("program: LoopFrac out of range")
	case p.LoopTripMax < 2:
		return fmt.Errorf("program: LoopTripMax must be >= 2")
	case p.CondSkipMax < 1:
		return fmt.Errorf("program: CondSkipMax must be >= 1")
	case len(p.BiasMix) == 0:
		return fmt.Errorf("program: BiasMix must be non-empty")
	case p.IndFanout < 1:
		return fmt.Errorf("program: IndFanout must be >= 1")
	case p.PhaseLen < 1:
		return fmt.Errorf("program: PhaseLen must be >= 1")
	case p.DispatchPhase < 1:
		return fmt.Errorf("program: DispatchPhase must be >= 1")
	}
	return nil
}

const imageBase isa.Addr = 0x400000

// Generate builds a deterministic synthetic code image from p.
func Generate(p GenParams) (*Image, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	g := &generator{
		p:   p,
		rng: xrand.New(p.Seed),
		img: &Image{Base: imageBase, Modules: p.Layers + 1},
	}
	g.layout()
	g.assignTerminators()
	g.img.buildIndex()
	if err := g.img.Validate(); err != nil {
		return nil, fmt.Errorf("program: generated image invalid: %w", err)
	}
	return g.img, nil
}

// MustGenerate is Generate for tests and examples with known-good params.
func MustGenerate(p GenParams) *Image {
	img, err := Generate(p)
	if err != nil {
		panic(err)
	}
	return img
}

type generator struct {
	p   GenParams
	rng *xrand.Stream
	img *Image

	// layerFuncs[l] lists function indices in layer l (layer 0 = root only).
	layerFuncs [][]int32
	// zipf[l] skews callee choice within layer l.
	zipf []*xrand.Zipf
}

// layout performs pass 1: carve functions and blocks, assign addresses.
func (g *generator) layout() {
	lay := g.rng.Split()
	g.layerFuncs = make([][]int32, g.p.Layers+1)

	// Root dispatcher: layer 0, one function.
	g.addFunction(lay, 0, g.p.RootBlocks)

	rootBytes := g.img.Limit - g.img.Base
	perLayer := uint64(g.p.FootprintKB)*1024 - uint64(rootBytes)
	perLayer /= uint64(g.p.Layers)

	for l := 1; l <= g.p.Layers; l++ {
		start := g.cursor()
		for uint64(g.cursor()-start) < perLayer {
			nb := g.funcBlocks(lay)
			g.addFunction(lay, l, nb)
		}
	}

	g.zipf = make([]*xrand.Zipf, g.p.Layers+1)
	for l := 1; l <= g.p.Layers; l++ {
		g.zipf[l] = xrand.NewZipf(len(g.layerFuncs[l]), g.p.CalleeZipfTheta)
	}
}

func (g *generator) cursor() isa.Addr {
	if g.img.Limit == 0 {
		return g.img.Base
	}
	return g.img.Limit
}

func (g *generator) addFunction(lay *xrand.Stream, layer, nBlocks int) {
	fi := int32(len(g.img.Functions))
	cursor := g.cursor()
	f := Function{
		Entry:      cursor,
		FirstBlock: int32(len(g.img.Blocks)),
		NBlocks:    int32(nBlocks),
		Module:     layer,
	}
	for b := 0; b < nBlocks; b++ {
		n := g.blockInstrs(lay)
		g.img.Blocks = append(g.img.Blocks, Block{
			Addr:   cursor,
			NInstr: uint16(n),
			Func:   fi,
		})
		cursor += isa.Addr(n) * isa.InstrBytes
	}
	// Align the next function entry to 16 bytes, like real linkers do.
	cursor = (cursor + 15) &^ 15
	g.img.Limit = cursor
	g.img.Functions = append(g.img.Functions, f)
	g.layerFuncs[layer] = append(g.layerFuncs[layer], fi)
}

func (g *generator) blockInstrs(s *xrand.Stream) int {
	mean := g.p.MeanBlockInstrs
	n := 1 + s.Geometric(1.0/float64(mean), 4*mean)
	if n < 1 {
		n = 1
	}
	return n
}

func (g *generator) funcBlocks(s *xrand.Stream) int {
	mean := g.p.MeanFuncBlocks
	n := 4 + s.Geometric(1.0/float64(mean-3), 5*mean)
	return n
}

// assignTerminators performs pass 2 once all addresses are known.
func (g *generator) assignTerminators() {
	term := g.rng.Split()
	for fi := range g.img.Functions {
		g.assignFunc(term, int32(fi))
	}
}

func (g *generator) assignFunc(s *xrand.Stream, fi int32) {
	f := &g.img.Functions[fi]
	blocks := g.img.Blocks[f.FirstBlock : f.FirstBlock+f.NBlocks]
	last := len(blocks) - 1
	pCall := g.p.PCall
	for d := 0; d < f.Module; d++ {
		pCall *= g.p.CallDecay
	}
	for i := range blocks {
		b := &blocks[i]
		if i == last {
			if fi == 0 {
				// The root dispatcher loops forever.
				b.Term = Terminator{Kind: isa.UncondDirect, Target: f.Entry}
			} else {
				b.Term = Terminator{Kind: isa.Return}
			}
			continue
		}
		r := s.Float64()
		switch {
		case r < pCall:
			b.Term = g.makeCall(s, fi, f.Module, blocks, i, last)
		case r < pCall+g.p.PJump && i+2 <= last:
			j := s.Range(i+2, min(i+2+g.p.CondSkipMax, last))
			b.Term = Terminator{Kind: isa.UncondDirect, Target: blocks[j].Addr}
		case r < pCall+g.p.PJump+g.p.PIndJump && i+3 <= last:
			b.Term = g.makeSwitch(s, blocks, i, last)
		default:
			b.Term = g.makeCond(s, blocks, i, last)
		}
	}
}

// makeCall produces a call terminator honouring the layering rules: calls go
// to deeper layers (usually the next one), occasionally skip layers, or stay
// within-layer targeting the helper region.
func (g *generator) makeCall(s *xrand.Stream, fi int32, layer int, blocks []Block, i, last int) Terminator {
	indirect := s.Bool(g.p.IndCallFrac)
	fanout := g.p.IndFanout
	phase := uint32(g.p.PhaseLen)
	if fi == 0 {
		// The root's calls are the request dispatch: always indirect, with
		// a wide fanout over layer-1 service entries, re-picked per request
		// so the active instruction footprint stays wide.
		indirect = true
		fanout = g.p.DispatchFanout
		phase = uint32(g.p.DispatchPhase)
	}
	if indirect {
		targets := g.pickCallees(s, fi, layer, fanout)
		if len(targets) == 0 {
			return g.makeCond(s, blocks, i, last)
		}
		return Terminator{
			Kind:      isa.IndirectCall,
			Behaviour: BehaviourPhase,
			Phase:     phase,
			Targets:   targets,
		}
	}
	targets := g.pickCallees(s, fi, layer, 1)
	if len(targets) == 0 {
		return g.makeCond(s, blocks, i, last)
	}
	return Terminator{Kind: isa.CallDirect, Target: targets[0]}
}

// pickCallees returns up to n distinct callee entry addresses legal for a
// caller in the given layer.
func (g *generator) pickCallees(s *xrand.Stream, fi int32, layer, n int) []isa.Addr {
	seen := make(map[isa.Addr]bool, n)
	var out []isa.Addr
	for attempt := 0; attempt < 6*n && len(out) < n; attempt++ {
		target, ok := g.pickCallee(s, fi, layer)
		if !ok {
			break
		}
		if !seen[target] {
			seen[target] = true
			out = append(out, target)
		}
	}
	return out
}

func (g *generator) pickCallee(s *xrand.Stream, fi int32, layer int) (isa.Addr, bool) {
	// Within-layer helper call: target the last quarter of the own layer,
	// and only from callers outside that quarter (helpers don't call
	// sideways, which bounds within-layer call depth at 1).
	if layer >= 1 && s.Bool(g.p.HelperFrac) {
		funcs := g.layerFuncs[layer]
		helperStart := len(funcs) * 3 / 4
		if helperStart < len(funcs) {
			pos := posInLayer(funcs, fi)
			if pos >= 0 && pos < helperStart {
				j := funcs[helperStart+s.Intn(len(funcs)-helperStart)]
				return g.img.Functions[j].Entry, true
			}
		}
	}
	// Deeper-layer call.
	targetLayer := layer + 1
	if s.Bool(g.p.CrossLayerFrac) && layer+2 <= g.p.Layers {
		targetLayer = s.Range(layer+2, g.p.Layers)
	}
	if targetLayer > g.p.Layers {
		return 0, false // leaf layer: no deeper calls
	}
	funcs := g.layerFuncs[targetLayer]
	if len(funcs) == 0 {
		return 0, false
	}
	var j int32
	if fi == 0 {
		// The root's dispatch list spans the service layer uniformly: request
		// types are distinct entry points, not popularity-shared helpers.
		// (Popularity skew is applied at run time by the walker.)
		j = funcs[s.Intn(len(funcs))]
	} else {
		j = funcs[g.zipf[targetLayer].Sample(s)]
	}
	return g.img.Functions[j].Entry, true
}

func posInLayer(funcs []int32, fi int32) int {
	for i, f := range funcs {
		if f == fi {
			return i
		}
	}
	return -1
}

// makeSwitch emits a switch-style indirect jump over forward blocks.
func (g *generator) makeSwitch(s *xrand.Stream, blocks []Block, i, last int) Terminator {
	n := min(g.p.IndFanout, last-i-1)
	if n < 2 {
		return g.makeCond(s, blocks, i, last)
	}
	targets := make([]isa.Addr, 0, n)
	for k := 0; k < n; k++ {
		j := s.Range(i+1, last)
		targets = append(targets, blocks[j].Addr)
	}
	return Terminator{
		Kind:      isa.IndirectJump,
		Behaviour: BehaviourPhase,
		Phase:     uint32(g.p.PhaseLen),
		Targets:   targets,
	}
}

// makeCond emits either a counted loop back-edge or a biased forward skip.
func (g *generator) makeCond(s *xrand.Stream, blocks []Block, i, last int) Terminator {
	if s.Bool(g.p.LoopFrac) {
		j := s.Range(max(0, i-g.p.LoopSpanMax), i)
		trip := 2 + s.Geometric(0.25, g.p.LoopTripMax-2)
		return Terminator{
			Kind:      isa.CondDirect,
			Target:    blocks[j].Addr,
			Behaviour: BehaviourLoop,
			Trip:      uint32(trip),
		}
	}
	hi := min(i+1+g.p.CondSkipMax, last)
	j := i + 1
	if hi > i+1 {
		j = s.Range(i+1, hi)
	}
	bias, phase := g.sampleBias(s)
	return Terminator{
		Kind:      isa.CondDirect,
		Target:    blocks[j].Addr,
		Behaviour: BehaviourBias,
		Bias:      bias,
		Phase:     phase,
	}
}

func (g *generator) sampleBias(s *xrand.Stream) (bias float64, phase uint32) {
	r := s.Float64()
	acc := 0.0
	lvl := g.p.BiasMix[len(g.p.BiasMix)-1]
	for _, l := range g.p.BiasMix {
		acc += l.Frac
		if r < acc {
			lvl = l
			break
		}
	}
	return lvl.Lo + s.Float64()*(lvl.Hi-lvl.Lo), lvl.Phase
}
