package program

import (
	"testing"
	"testing/quick"

	"boomsim/internal/isa"
)

func smallParams(seed uint64) GenParams {
	p := DefaultGenParams()
	p.Seed = seed
	p.FootprintKB = 128
	p.Layers = 4
	return p
}

func TestGenerateValid(t *testing.T) {
	img := MustGenerate(smallParams(1))
	if err := img.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := MustGenerate(smallParams(5))
	b := MustGenerate(smallParams(5))
	if len(a.Blocks) != len(b.Blocks) || len(a.Functions) != len(b.Functions) {
		t.Fatal("same seed produced different shapes")
	}
	for i := range a.Blocks {
		x, y := a.Blocks[i], b.Blocks[i]
		if x.Addr != y.Addr || x.NInstr != y.NInstr || x.Term.Kind != y.Term.Kind ||
			x.Term.Target != y.Term.Target {
			t.Fatalf("block %d differs between identical seeds", i)
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	a := MustGenerate(smallParams(1))
	b := MustGenerate(smallParams(2))
	if len(a.Blocks) == len(b.Blocks) {
		same := true
		for i := range a.Blocks {
			if a.Blocks[i].Term.Target != b.Blocks[i].Term.Target {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical images")
		}
	}
}

func TestFootprintNearTarget(t *testing.T) {
	p := smallParams(3)
	p.FootprintKB = 512
	img := MustGenerate(p)
	kb := img.Bytes() / 1024
	if kb < 450 || kb > 650 {
		t.Errorf("footprint %d KB, want ~512 KB", kb)
	}
}

func TestBlockLookup(t *testing.T) {
	img := MustGenerate(smallParams(7))
	for i := range img.Blocks {
		b := &img.Blocks[i]
		got, ok := img.BlockAt(b.Addr)
		if !ok || got != b {
			t.Fatalf("BlockAt(%#x) failed", b.Addr)
		}
		mid := b.Addr + isa.Addr(b.NInstr/2)*isa.InstrBytes
		got, ok = img.BlockContaining(mid)
		if !ok || got != b {
			t.Fatalf("BlockContaining(%#x) failed for block %#x", mid, b.Addr)
		}
	}
}

func TestBlockContainingMisses(t *testing.T) {
	img := MustGenerate(smallParams(7))
	if _, ok := img.BlockContaining(img.Base - 4); ok {
		t.Error("found block below base")
	}
	if _, ok := img.BlockContaining(img.Limit + 1024); ok {
		t.Error("found block above limit")
	}
}

func TestBranchPCWithinBlock(t *testing.T) {
	img := MustGenerate(smallParams(9))
	for i := range img.Blocks {
		b := &img.Blocks[i]
		pc := b.BranchPC()
		if pc < b.Addr || pc >= b.FallThrough() {
			t.Fatalf("branch PC %#x outside block [%#x,%#x)", pc, b.Addr, b.FallThrough())
		}
	}
}

func TestBranchesInLineComplete(t *testing.T) {
	img := MustGenerate(smallParams(11))
	// Every block's terminator must be discoverable by predecoding the line
	// holding its branch PC.
	for i := range img.Blocks {
		b := &img.Blocks[i]
		line := isa.BlockAddr(b.BranchPC())
		found := false
		for _, br := range img.BranchesInLine(line) {
			if br.PC == b.BranchPC() {
				found = true
				if br.BlockStart != b.Addr || br.NInstr != b.NInstr || br.Kind != b.Term.Kind {
					t.Fatalf("predecode mismatch at %#x", br.PC)
				}
			}
		}
		if !found {
			t.Fatalf("terminator of block %#x not predecoded from line %#x", b.Addr, line)
		}
	}
}

func TestBranchesInLineOrderedAndBounded(t *testing.T) {
	img := MustGenerate(smallParams(13))
	for line := isa.BlockAddr(img.Base); line < img.Limit; line += isa.BlockBytes {
		brs := img.BranchesInLine(line)
		for i, br := range brs {
			if br.PC < line || br.PC >= line+isa.BlockBytes {
				t.Fatalf("branch %#x outside its line %#x", br.PC, line)
			}
			if i > 0 && brs[i-1].PC >= br.PC {
				t.Fatalf("branches in line %#x not strictly ordered", line)
			}
		}
	}
}

func TestPredecodeHidesIndirectTargets(t *testing.T) {
	img := MustGenerate(smallParams(15))
	sawIndirect := false
	for i := range img.Blocks {
		b := &img.Blocks[i]
		if !b.Term.Kind.IsIndirect() {
			continue
		}
		sawIndirect = true
		br, ok := img.FirstBranchAtOrAfter(b.BranchPC())
		if !ok || br.PC != b.BranchPC() {
			t.Fatalf("FirstBranchAtOrAfter missed terminator of %#x", b.Addr)
		}
		if br.Target != 0 {
			t.Fatalf("predecode leaked an indirect target at %#x", br.PC)
		}
	}
	if !sawIndirect {
		t.Skip("no indirect branches generated at this size")
	}
}

func TestFirstBranchAtOrAfter(t *testing.T) {
	img := MustGenerate(smallParams(17))
	for i := range img.Blocks {
		b := &img.Blocks[i]
		br, ok := img.FirstBranchAtOrAfter(b.Addr)
		if isa.BlockAddr(b.Addr) != isa.BlockAddr(b.BranchPC()) {
			// The terminator is in a later line; the query may legitimately
			// return a different (earlier-in-line) result or nothing.
			continue
		}
		if !ok {
			t.Fatalf("no branch found at/after %#x within its line", b.Addr)
		}
		if br.PC < b.Addr {
			t.Fatalf("branch %#x precedes query %#x", br.PC, b.Addr)
		}
	}
}

func TestCallLayering(t *testing.T) {
	img := MustGenerate(smallParams(19))
	for i := range img.Blocks {
		b := &img.Blocks[i]
		if b.Term.Kind != isa.CallDirect && b.Term.Kind != isa.IndirectCall {
			continue
		}
		caller := img.FunctionOf(b)
		targets := b.Term.Targets
		if b.Term.Kind == isa.CallDirect {
			targets = []isa.Addr{b.Term.Target}
		}
		for _, tgt := range targets {
			cb, ok := img.BlockAt(tgt)
			if !ok {
				t.Fatalf("call target %#x not a block", tgt)
			}
			callee := img.FunctionOf(cb)
			if callee.Entry != tgt {
				t.Fatalf("call target %#x is not a function entry", tgt)
			}
			if callee.Module < caller.Module {
				t.Fatalf("call from layer %d up to layer %d violates DAG",
					caller.Module, callee.Module)
			}
		}
	}
}

func TestNoRecursionWithinLayer(t *testing.T) {
	// Within-layer calls may only target the helper region, and helpers must
	// not call within-layer, so within-layer call chains have depth <= 1.
	img := MustGenerate(smallParams(21))
	type funcPos struct{ layer, pos, layerSize int }
	pos := make(map[isa.Addr]funcPos)
	perLayer := map[int][]int32{}
	for fi := range img.Functions {
		f := &img.Functions[fi]
		perLayer[f.Module] = append(perLayer[f.Module], int32(fi))
	}
	for l, fns := range perLayer {
		for i, fi := range fns {
			pos[img.Functions[fi].Entry] = funcPos{l, i, len(fns)}
		}
	}
	for i := range img.Blocks {
		b := &img.Blocks[i]
		if !b.Term.Kind.IsCall() {
			continue
		}
		caller := img.FunctionOf(b)
		targets := b.Term.Targets
		if b.Term.Kind == isa.CallDirect {
			targets = []isa.Addr{b.Term.Target}
		}
		for _, tgt := range targets {
			fp := pos[tgt]
			if fp.layer != caller.Module {
				continue
			}
			if fp.pos < fp.layerSize*3/4 {
				t.Fatalf("within-layer call to non-helper function at %#x", tgt)
			}
			callerPos := pos[caller.Entry]
			if callerPos.pos >= callerPos.layerSize*3/4 {
				t.Fatalf("helper at %#x makes a within-layer call", caller.Entry)
			}
		}
	}
}

func TestRootLoopsForever(t *testing.T) {
	img := MustGenerate(smallParams(23))
	root := &img.Functions[0]
	lastBlock := &img.Blocks[root.FirstBlock+root.NBlocks-1]
	if lastBlock.Term.Kind != isa.UncondDirect || lastBlock.Term.Target != root.Entry {
		t.Fatal("root's final block must jump back to its entry")
	}
}

func TestLoopTripsBounded(t *testing.T) {
	p := smallParams(25)
	img := MustGenerate(p)
	for i := range img.Blocks {
		b := &img.Blocks[i]
		if b.Term.Behaviour != BehaviourLoop {
			continue
		}
		if b.Term.Trip < 2 || int(b.Term.Trip) > p.LoopTripMax {
			t.Fatalf("loop trip %d out of [2,%d]", b.Term.Trip, p.LoopTripMax)
		}
		if b.Term.Target > b.Addr {
			t.Fatalf("loop back-edge at %#x targets forward %#x", b.Addr, b.Term.Target)
		}
	}
}

func TestBiasesInRange(t *testing.T) {
	img := MustGenerate(smallParams(27))
	for i := range img.Blocks {
		b := &img.Blocks[i]
		if b.Term.Behaviour != BehaviourBias {
			continue
		}
		if b.Term.Bias <= 0 || b.Term.Bias >= 1 {
			t.Fatalf("bias %v out of (0,1)", b.Term.Bias)
		}
	}
}

func TestComputeStats(t *testing.T) {
	img := MustGenerate(smallParams(29))
	s := img.ComputeStats()
	if s.Functions != len(img.Functions) || s.Blocks != len(img.Blocks) {
		t.Error("stats counts wrong")
	}
	if s.MeanBlock < 2 || s.MeanBlock > 15 {
		t.Errorf("mean block size %v implausible", s.MeanBlock)
	}
	if s.ByKind[isa.None] != 0 {
		t.Error("blocks without terminators counted")
	}
	if s.String() == "" {
		t.Error("empty stats string")
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	bad := []func(*GenParams){
		func(p *GenParams) { p.Layers = 0 },
		func(p *GenParams) { p.FootprintKB = 1 },
		func(p *GenParams) { p.MeanBlockInstrs = 1 },
		func(p *GenParams) { p.MeanFuncBlocks = 2 },
		func(p *GenParams) { p.PCall = 0.95 },
		func(p *GenParams) { p.LoopFrac = 1.5 },
		func(p *GenParams) { p.LoopTripMax = 1 },
		func(p *GenParams) { p.CondSkipMax = 0 },
		func(p *GenParams) { p.BiasMix = nil },
		func(p *GenParams) { p.IndFanout = 0 },
		func(p *GenParams) { p.PhaseLen = 0 },
	}
	for i, mutate := range bad {
		p := DefaultGenParams()
		mutate(&p)
		if _, err := Generate(p); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestBlockGeometryProperty(t *testing.T) {
	img := MustGenerate(smallParams(31))
	n := len(img.Blocks)
	if err := quick.Check(func(raw uint32) bool {
		b := &img.Blocks[int(raw)%n]
		return b.FallThrough()-b.Addr == isa.Addr(b.NInstr)*isa.InstrBytes &&
			b.BranchPC() == b.FallThrough()-isa.InstrBytes
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkGenerate2MB(b *testing.B) {
	p := DefaultGenParams()
	for i := 0; i < b.N; i++ {
		p.Seed = uint64(i + 1)
		if _, err := Generate(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBranchesInLine(b *testing.B) {
	img := MustGenerate(smallParams(33))
	lines := int((img.Limit - img.Base) / isa.BlockBytes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		line := img.Base + isa.Addr(i%lines)*isa.BlockBytes
		_ = img.BranchesInLine(line)
	}
}

func TestGenerateMinimalParams(t *testing.T) {
	// The smallest legal configuration must still produce a valid,
	// executable image (single service layer, minimum footprint).
	p := DefaultGenParams()
	p.Layers = 1
	p.FootprintKB = 16
	p.DispatchFanout = 1
	img, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(img.Functions) < 2 {
		t.Fatal("need at least root + one service function")
	}
}

func TestGenerateNoCallsStillTerminates(t *testing.T) {
	// With call probability zero the image degenerates to the dispatcher
	// plus leaf services; generation and validation must still succeed.
	p := DefaultGenParams()
	p.FootprintKB = 64
	p.Layers = 2
	p.PCall = 0
	img, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := img.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFunctionEntriesAligned(t *testing.T) {
	img := MustGenerate(smallParams(41))
	for _, f := range img.Functions {
		if f.Entry%16 != 0 {
			t.Fatalf("function entry %#x not 16-byte aligned", f.Entry)
		}
	}
}
