package program

import "boomsim/internal/isa"

// Clone returns an independent copy of the walker at the same execution
// point: subsequent Next calls on the clone and the original produce the
// same step stream without sharing mutable state. The immutable image is
// shared.
func (w *Walker) Clone() *Walker {
	c := *w
	c.stack = append(make([]isa.Addr, 0, cap(w.stack)), w.stack...)
	c.occ = append([]uint32(nil), w.occ...)
	return &c
}
